// Command miniredisd runs the embedded Redis-compatible server standalone,
// for poking at it with any RESP client or for hosting the Redis mappings
// out-of-process.
//
// Usage:
//
//	miniredisd -addr 127.0.0.1:6379
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/miniredis"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "listen address")
		opDelay = flag.Duration("op-delay", 0, "artificial per-command service delay")
	)
	flag.Parse()

	srv := miniredis.NewServer(miniredis.Options{
		Addr:    *addr,
		OpDelay: *opDelay,
		Logf:    log.Printf,
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miniredisd listening on %s\n", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		log.Print(err)
	}
	time.Sleep(50 * time.Millisecond)
}
