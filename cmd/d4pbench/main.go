// Command d4pbench regenerates the paper's evaluation: every figure and
// table of Section 5, written as aligned text and CSV under -out.
//
// Usage:
//
//	d4pbench                  # full suite (paper-scale sweeps, ~minutes)
//	d4pbench -quick           # seconds-scale smoke run
//	d4pbench -fig 8           # only Figure 8
//	d4pbench -table 1         # only Table 1 (runs the figures it needs)
//	d4pbench -out results     # output directory (default "results")
//	d4pbench -sweep           # batching sweep (batch sizes 1, 8, 64, auto),
//	                          # writes BENCH_batching.json
//	d4pbench -recovery        # exactly-once recovery overhead (fenced vs
//	                          # unfenced managed state), writes BENCH_recovery.json
//	d4pbench -openloop        # open-loop steady-state sweep (paced arrival
//	                          # rates, p50/p99 latency, max sustainable
//	                          # throughput), writes BENCH_codec.json
//	d4pbench -shards          # shard-scaling sweep: the zipfian sessionization
//	                          # open-loop ladder at 1, 2, and 4 Redis shards,
//	                          # writes BENCH_shard.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/diagnosis"
	_ "repro/internal/dynamic"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/miniredis"
	_ "repro/internal/mpi"
	_ "repro/internal/multiproc"
	"repro/internal/redisclient"
	_ "repro/internal/redismap"
	"repro/internal/state"
	"repro/internal/telemetry"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run the seconds-scale smoke configuration")
		fig      = flag.Int("fig", 0, "run only this figure (8-13); 0 means all")
		table    = flag.Int("table", 0, "run only this table (1-3); 0 means all")
		outDir   = flag.String("out", "results", "output directory")
		reps     = flag.Int("reps", 1, "repetitions per point (averaged)")
		opDelay  = flag.Duration("redis-op-delay", 0, "extra per-command service delay in the embedded Redis")
		jsonOut  = flag.Bool("json", false, "additionally write BENCH_<name>.json result files (machine-readable perf trajectory)")
		sweep    = flag.Bool("sweep", false, "run the batching sweep (batch sizes 1, 8, 64, auto) and write BENCH_batching.json instead of the figure suite")
		recovery = flag.Bool("recovery", false, "run the exactly-once recovery scenario (fenced vs unfenced managed state on the batched Redis path) and write BENCH_recovery.json")
		openloop = flag.Bool("openloop", false, "run the open-loop steady-state sweep (paced arrival rates over the packed-frame Redis path) and write BENCH_codec.json")
		shards   = flag.Bool("shards", false, "run the shard-scaling sweep (sessionization rate ladder at 1, 2, 4 Redis shards) and write BENCH_shard.json")
		dispatch = flag.Duration("redis-dispatch-delay", 120*time.Microsecond, "per-shard single-threaded service time modeled by the shard sweep (held under the embedded server's dispatch lock)")
		telAddr  = flag.String("telemetry-addr", "", "serve the suite's live telemetry on this address (/metrics, /flights, /debug/pprof); empty disables")
	)
	flag.Parse()

	// One registry and one diagnosis accumulate across every run of the
	// invocation; the final snapshot and diagnosis report are embedded in
	// BENCH_<name>.json outputs and optionally served live while the suite
	// executes.
	reg := telemetry.New(telemetry.Config{})
	diag := diagnosis.New(diagnosis.Config{})
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "d4pbench: telemetry endpoint:", err)
			os.Exit(1)
		}
		defer srv.Close()
		diag.Attach(srv, reg)
		fmt.Printf("telemetry at http://%s/metrics (diagnosis at /diagnosis, journal at /journal)\n", srv.Addr())
	}

	if *sweep {
		if err := runSweep(*quick, *outDir, *reps, *opDelay, reg, diag); err != nil {
			fmt.Fprintln(os.Stderr, "d4pbench:", err)
			os.Exit(1)
		}
		return
	}
	if *recovery {
		if err := runRecovery(*quick, *outDir, *reps, *opDelay, reg, diag); err != nil {
			fmt.Fprintln(os.Stderr, "d4pbench:", err)
			os.Exit(1)
		}
		return
	}
	if *openloop {
		if err := runOpenLoop(*quick, *outDir, *opDelay, reg, diag); err != nil {
			fmt.Fprintln(os.Stderr, "d4pbench:", err)
			os.Exit(1)
		}
		return
	}
	if *shards {
		if err := runShards(*quick, *outDir, *dispatch, reg, diag); err != nil {
			fmt.Fprintln(os.Stderr, "d4pbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*quick, *fig, *table, *outDir, *reps, *opDelay, *jsonOut, reg, diag); err != nil {
		fmt.Fprintln(os.Stderr, "d4pbench:", err)
		os.Exit(1)
	}
}

// runSweep executes the batched emit+consume sweep and writes its txt/csv
// renderings plus BENCH_batching.json, the machine-readable point of the
// perf trajectory CI tracks across PRs.
func runSweep(quick bool, outDir string, reps int, opDelay time.Duration, reg *telemetry.Registry, diag *diagnosis.Diag) error {
	scale := harness.FullScale()
	if quick {
		scale = harness.QuickScale()
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	runner := &harness.Runner{Out: os.Stdout, Repetitions: reps, RedisOpDelay: opDelay, Telemetry: reg, Diag: diag}
	defer runner.Close()

	var all []metrics.Series
	for _, e := range harness.SweepBatching(scale) {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		series, err := runner.RunExperiment(e)
		if err != nil {
			return err
		}
		// One series per (technique, window): fold the experiment's window
		// label into the series label so the sweep reads as one grid.
		window := strings.TrimPrefix(e.ID, "batching-")
		for j := range series {
			series[j].Label = series[j].Label + " " + window
		}
		all = append(all, series...)
	}
	if err := writeFile(outDir, "batching.txt", metrics.RenderSeries("Batched emit+consume sweep (galaxy, server)", all)); err != nil {
		return err
	}
	if err := writeFile(outDir, "batching.csv", metrics.CSV(all)); err != nil {
		return err
	}
	return writeBenchJSON(outDir, "batching", all, reg, diag)
}

// runRecovery executes the exactly-once recovery scenario — the managed-
// state sentiment workload on the batched dyn_redis path, with replay
// recovery (and therefore sequence fencing) off versus on — and writes its
// txt/csv renderings plus BENCH_recovery.json, recording what exactly-once-
// effect recovery costs on a healthy run.
func runRecovery(quick bool, outDir string, reps int, opDelay time.Duration, reg *telemetry.Registry, diag *diagnosis.Diag) error {
	scale := harness.FullScale()
	if quick {
		scale = harness.QuickScale()
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if err := assertFencedRoundTrips(); err != nil {
		return err
	}
	runner := &harness.Runner{Out: os.Stdout, Repetitions: reps, RedisOpDelay: opDelay, Telemetry: reg, Diag: diag}
	defer runner.Close()

	var all []metrics.Series
	for _, e := range harness.SweepRecovery(scale) {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		series, err := runner.RunExperiment(e)
		if err != nil {
			return err
		}
		// One series per variant: fold the experiment's fencing label into
		// the series label so the pair reads as one comparison.
		label := strings.TrimPrefix(e.ID, "recovery-")
		for j := range series {
			series[j].Label = series[j].Label + " " + label
		}
		all = append(all, series...)
	}
	if len(all) == 2 && len(all[0].Points) == 1 && len(all[1].Points) == 1 {
		base, fenced := all[0].Points[0].Runtime, all[1].Points[0].Runtime
		fmt.Printf("fencing overhead: %+.2f%% (unfenced %v → fenced %v)\n",
			100*(fenced.Seconds()-base.Seconds())/base.Seconds(), base, fenced)
	}
	if err := writeFile(outDir, "recovery.txt", metrics.RenderSeries("Exactly-once recovery overhead (sentiment managed, dyn_redis, server)", all)); err != nil {
		return err
	}
	if err := writeFile(outDir, "recovery.csv", metrics.CSV(all)); err != nil {
		return err
	}
	return writeBenchJSON(outDir, "recovery", all, reg, diag)
}

// assertFencedRoundTrips pins the structural half of the recovery-overhead
// claim: a fenced Put/AddInt/Delete each costs exactly ONE client round trip
// (the FENCEAPPLY compound command), down from the two-op record-then-apply
// sequence the fence originally needed. Wall-clock overhead in the sweep can
// drown in scheduler noise; the round-trip count cannot.
func assertFencedRoundTrips() error {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		return err
	}
	defer srv.Close()
	cl := redisclient.Dial(srv.Addr())
	defer cl.Close()
	b := state.NewRedisBackend(cl, "rt")
	st, err := b.Open("probe")
	if err != nil {
		return err
	}
	scope := state.NewFencedStore(st).NewScope()
	scope.SetToken(state.Token{Src: 1, Seq: 1})
	defer scope.ClearToken()

	check := func(op string, fn func() error) error {
		before := cl.Stats().RoundTrips
		if err := fn(); err != nil {
			return fmt.Errorf("fenced %s: %w", op, err)
		}
		if got := cl.Stats().RoundTrips - before; got != 1 {
			return fmt.Errorf("fenced %s cost %d round trips, want 1 (compound write path regressed)", op, got)
		}
		return nil
	}
	if err := check("Put", func() error { return scope.Put("k", "v") }); err != nil {
		return err
	}
	if err := check("AddInt", func() error { _, err := scope.AddInt("n", 3); return err }); err != nil {
		return err
	}
	if err := check("Delete", func() error { return scope.Delete("k") }); err != nil {
		return err
	}
	fmt.Println("fenced round trips: Put/AddInt/Delete each 1 (compound FENCEAPPLY path)")
	return nil
}

// runOpenLoop executes the open-loop steady-state sweep: for each workload, a
// rate ladder of sustained paced runs over the packed-frame dyn_redis path,
// reporting p50/p99 latency per rate and the maximum sustainable throughput.
// Unlike the closed-loop figures (sources emit as fast as the pipeline
// admits, so only total runtime is observable), the paced source exposes the
// latency-vs-load curve and the throughput wall — the steady-state numbers
// the codec and frame-packing work targets. Writes openloop.txt/csv and
// BENCH_codec.json.
func runOpenLoop(quick bool, outDir string, opDelay time.Duration, reg *telemetry.Registry, diag *diagnosis.Diag) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	runner := &harness.Runner{Out: os.Stdout, RedisOpDelay: opDelay, Telemetry: reg, Diag: diag}
	defer runner.Close()

	base := harness.OpenLoopConfig{
		Mapping:   "dyn_redis",
		Processes: 8,
		Duration:  30 * time.Second,
		Users:     1_000_000,
		Seed:      17,
	}
	rates := []float64{1000, 2000, 4000, 8000, 16000}
	if quick {
		base.Duration = 2 * time.Second
		base.Users = 50_000
		rates = []float64{500, 2000}
	}

	var all []harness.OpenLoopPoint
	maxSustainable := map[string]float64{}
	saturation := map[string]*diagnosis.Verdict{}
	for _, workload := range []string{"relay", "session"} {
		cfg := base
		cfg.Workload = workload
		fmt.Printf("== openloop-%s: paced %s workload on %s (%v per rate)\n", workload, workload, cfg.Mapping, cfg.Duration)
		pts, max, err := runner.OpenLoopSweep(cfg, rates)
		if err != nil {
			return err
		}
		all = append(all, pts...)
		maxSustainable[workload] = max
		// The last point of a sweep is the first unsustainable rate (or the
		// top of the ladder): its verdict names what the workload saturated on.
		if len(pts) > 0 && pts[len(pts)-1].Verdict != nil {
			saturation[workload] = pts[len(pts)-1].Verdict
		}
	}
	for workload, max := range maxSustainable {
		fmt.Printf("max sustainable %-8s %.0f events/s\n", workload, max)
		if v := saturation[workload]; v != nil {
			fmt.Printf("  saturation verdict: bottleneck=%s stage=%s util=%.2f ceiling=%.0f/s\n",
				v.Bottleneck, v.Stage, v.Utilization, v.CeilingPerSec)
		}
	}
	report := diag.Diagnose(reg)
	fmt.Print(diagnosis.Render(report))
	title := fmt.Sprintf("Open-loop steady state (%s, %d workers, packed frames)", base.Mapping, base.Processes)
	if err := writeFile(outDir, "openloop.txt", harness.RenderOpenLoop(title, all)); err != nil {
		return err
	}
	if err := writeFile(outDir, "openloop.csv", harness.OpenLoopCSV(all)); err != nil {
		return err
	}
	return writeOpenLoopJSON(outDir, all, maxSustainable, saturation, reg, &report)
}

// openLoopJSONPoint is one open-loop run in the machine-readable schema.
// Latencies are milliseconds, rates events/second.
type openLoopJSONPoint struct {
	Workload      string             `json:"workload"`
	Mapping       string             `json:"mapping"`
	Processes     int                `json:"processes"`
	TargetRate    float64            `json:"target_rate"`
	OfferedRate   float64            `json:"offered_rate"`
	DeliveredRate float64            `json:"delivered_rate"`
	Offered       int64              `json:"offered"`
	Delivered     int64              `json:"delivered"`
	GenSeconds    float64            `json:"gen_seconds"`
	DrainSeconds  float64            `json:"drain_seconds"`
	P50Millis     float64            `json:"p50_ms"`
	P99Millis     float64            `json:"p99_ms"`
	MaxMillis     float64            `json:"max_ms"`
	Sustainable   bool               `json:"sustainable"`
	Verdict       *diagnosis.Verdict `json:"verdict,omitempty"`
}

// writeOpenLoopJSON writes BENCH_codec.json: the open-loop points (each with
// its bottleneck verdict), the per-workload max sustainable throughput and
// saturation verdict, the suite's telemetry snapshot, and the final diagnosis
// report (verdict, flow ledger, blame, journal).
func writeOpenLoopJSON(dir string, pts []harness.OpenLoopPoint, maxSustainable map[string]float64,
	saturation map[string]*diagnosis.Verdict, reg *telemetry.Registry, report *diagnosis.Report) error {
	out := struct {
		Name           string                        `json:"name"`
		Points         []openLoopJSONPoint           `json:"points"`
		MaxSustainable map[string]float64            `json:"max_sustainable_rate"`
		Saturation     map[string]*diagnosis.Verdict `json:"saturation_verdict,omitempty"`
		Telemetry      *telemetry.Snapshot           `json:"telemetry,omitempty"`
		Diagnosis      *diagnosis.Report             `json:"diagnosis,omitempty"`
	}{Name: "codec", MaxSustainable: maxSustainable, Saturation: saturation, Diagnosis: report}
	for _, p := range pts {
		out.Points = append(out.Points, openLoopJSONPoint{
			Workload:      p.Workload,
			Mapping:       p.Mapping,
			Processes:     p.Processes,
			TargetRate:    p.TargetRate,
			OfferedRate:   p.OfferedRate,
			DeliveredRate: p.DeliveredRate,
			Offered:       p.Offered,
			Delivered:     p.Delivered,
			GenSeconds:    p.GenSeconds,
			DrainSeconds:  p.DrainSeconds,
			P50Millis:     float64(p.P50) / 1e6,
			P99Millis:     float64(p.P99) / 1e6,
			MaxMillis:     float64(p.Max) / 1e6,
			Sustainable:   p.Sustainable,
			Verdict:       p.Verdict,
		})
	}
	if reg != nil {
		snap := reg.Snapshot()
		out.Telemetry = &snap
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(dir, "BENCH_codec.json", string(body))
}

// runShards executes the shard-scaling sweep: the zipfian sessionization
// open-loop ladder at 1, 2, and 4 Redis shards, with AddInt coalescing on
// (the hot path this workload exercises). Each shard is an embedded server
// whose dispatch lock holds a fixed per-command service time — the
// single-threaded bandwidth model of a real Redis shard, which in-process
// servers sharing this machine's CPUs cannot exhibit natively. Adding shards
// multiplies that aggregate bandwidth exactly the way added Redis servers
// would, so the max-sustainable-rate ratio across shard counts measures what
// the consistent-hash data plane actually buys: whether routing, packing,
// per-shard acks and scatter-gather drains spread the command stream evenly
// enough to harvest the added capacity. Writes shard.txt/csv and
// BENCH_shard.json.
func runShards(quick bool, outDir string, dispatchDelay time.Duration, reg *telemetry.Registry, diag *diagnosis.Diag) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	base := harness.OpenLoopConfig{
		Mapping:       "dyn_redis",
		Workload:      "session",
		Processes:     8,
		Duration:      8 * time.Second,
		Users:         200_000,
		Seed:          17,
		StateCoalesce: true,
	}
	rates := []float64{100, 200, 300, 400, 600, 800, 1200, 1600, 2400, 3200}
	if quick {
		base.Duration = 1500 * time.Millisecond
		base.Users = 20_000
		rates = []float64{150, 300, 600}
	}

	shardCounts := []int{1, 2, 4}
	type ladder struct {
		shards int
		pts    []harness.OpenLoopPoint
		max    float64
	}
	var ladders []ladder
	for _, n := range shardCounts {
		fmt.Printf("== shard-%d: paced session workload on %s, %d shard(s), dispatch delay %v\n",
			n, base.Mapping, n, dispatchDelay)
		runner := &harness.Runner{
			Out:                os.Stdout,
			Shards:             n,
			RedisDispatchDelay: dispatchDelay,
			Telemetry:          reg,
			Diag:               diag,
		}
		pts, max, err := runner.OpenLoopSweep(base, rates)
		runner.Close()
		if err != nil {
			return err
		}
		ladders = append(ladders, ladder{shards: n, pts: pts, max: max})
		fmt.Printf("max sustainable at %d shard(s): %.0f events/s\n", n, max)
	}

	speedup := 0.0
	if first, last := ladders[0], ladders[len(ladders)-1]; first.max > 0 {
		speedup = last.max / first.max
		fmt.Printf("shard scaling: %.2fx max sustainable rate at %d shards vs %d\n",
			speedup, last.shards, first.shards)
	}

	var txt, csv strings.Builder
	csv.WriteString("shards,workload,mapping,processes,target_rate,offered_rate,delivered_rate,p50_ms,p99_ms,drain_seconds,sustainable\n")
	for _, l := range ladders {
		txt.WriteString(harness.RenderOpenLoop(fmt.Sprintf("%d shard(s)", l.shards), l.pts))
		for _, p := range l.pts {
			fmt.Fprintf(&csv, "%d,%s,%s,%d,%.0f,%.2f,%.2f,%.3f,%.3f,%.3f,%v\n",
				l.shards, p.Workload, p.Mapping, p.Processes, p.TargetRate, p.OfferedRate,
				p.DeliveredRate, float64(p.P50)/1e6, float64(p.P99)/1e6, p.DrainSeconds, p.Sustainable)
		}
	}
	title := fmt.Sprintf("Shard scaling (%s session, %d workers, coalesced state, %v dispatch delay)",
		base.Mapping, base.Processes, dispatchDelay)
	if err := writeFile(outDir, "shard.txt", title+"\n"+txt.String()); err != nil {
		return err
	}
	if err := writeFile(outDir, "shard.csv", csv.String()); err != nil {
		return err
	}

	out := struct {
		Name            string              `json:"name"`
		DispatchDelayMs float64             `json:"dispatch_delay_ms"`
		Ladders         []shardLadderJSON   `json:"ladders"`
		Speedup         float64             `json:"speedup_max_shards_vs_one"`
		Telemetry       *telemetry.Snapshot `json:"telemetry,omitempty"`
	}{Name: "shard", DispatchDelayMs: float64(dispatchDelay) / 1e6, Speedup: speedup}
	for _, l := range ladders {
		lj := shardLadderJSON{Shards: l.shards, MaxSustainableRate: l.max}
		for _, p := range l.pts {
			lj.Points = append(lj.Points, openLoopJSONPoint{
				Workload:      p.Workload,
				Mapping:       p.Mapping,
				Processes:     p.Processes,
				TargetRate:    p.TargetRate,
				OfferedRate:   p.OfferedRate,
				DeliveredRate: p.DeliveredRate,
				Offered:       p.Offered,
				Delivered:     p.Delivered,
				GenSeconds:    p.GenSeconds,
				DrainSeconds:  p.DrainSeconds,
				P50Millis:     float64(p.P50) / 1e6,
				P99Millis:     float64(p.P99) / 1e6,
				MaxMillis:     float64(p.Max) / 1e6,
				Sustainable:   p.Sustainable,
			})
		}
		out.Ladders = append(out.Ladders, lj)
	}
	if reg != nil {
		snap := reg.Snapshot()
		out.Telemetry = &snap
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(outDir, "BENCH_shard.json", string(body))
}

// shardLadderJSON is one shard count's rate ladder in BENCH_shard.json.
type shardLadderJSON struct {
	Shards             int                 `json:"shards"`
	MaxSustainableRate float64             `json:"max_sustainable_rate"`
	Points             []openLoopJSONPoint `json:"points"`
}

func run(quick bool, fig, table int, outDir string, reps int, opDelay time.Duration, jsonOut bool, reg *telemetry.Registry, diag *diagnosis.Diag) error {
	scale := harness.FullScale()
	if quick {
		scale = harness.QuickScale()
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	runner := &harness.Runner{Out: os.Stdout, Repetitions: reps, RedisOpDelay: opDelay, Telemetry: reg, Diag: diag}
	defer runner.Close()

	wantFig := func(n int) bool {
		if table != 0 {
			// Tables pull in their figures.
			switch table {
			case 1:
				return n >= 8 && n <= 10
			case 2:
				return n == 11
			case 3:
				return n == 12
			}
		}
		return fig == 0 && table == 0 || fig == n
	}

	// figure panels by figure number, kept for table construction.
	panels := map[int][][]metrics.Series{}
	runFigure := func(n int, exps []harness.Experiment) error {
		if !wantFig(n) {
			return nil
		}
		var rendered []string
		var allSeries []metrics.Series
		for _, e := range exps {
			fmt.Printf("== %s: %s\n", e.ID, e.Title)
			series, err := runner.RunExperiment(e)
			if err != nil {
				return err
			}
			panels[n] = append(panels[n], series)
			rendered = append(rendered, metrics.RenderSeries(e.Title, series))
			allSeries = append(allSeries, series...)
		}
		name := fmt.Sprintf("fig%02d", n)
		if err := writeFile(outDir, name+".txt", strings.Join(rendered, "\n")); err != nil {
			return err
		}
		if err := writeFile(outDir, name+".csv", metrics.CSV(allSeries)); err != nil {
			return err
		}
		if jsonOut {
			return writeBenchJSON(outDir, name, allSeries, reg, diag)
		}
		return nil
	}

	if err := runFigure(8, harness.Fig8(scale)); err != nil {
		return err
	}
	if err := runFigure(9, harness.Fig9(scale)); err != nil {
		return err
	}
	if err := runFigure(10, harness.Fig10(scale)); err != nil {
		return err
	}
	if err := runFigure(11, harness.Fig11(scale)); err != nil {
		return err
	}
	if err := runFigure(12, harness.Fig12(scale)); err != nil {
		return err
	}

	if wantFig(13) && table == 0 {
		var rendered []string
		for _, e := range harness.Fig13(scale) {
			fmt.Printf("== %s: %s\n", e.ID, e.Title)
			trace, rep, err := runner.RunTrace(e)
			if err != nil {
				return err
			}
			fmt.Printf("  %s\n", rep)
			rendered = append(rendered, harness.RenderTrace(e.Title, trace))
			if err := writeFile(outDir, e.ID+".csv", harness.TraceCSV(trace)); err != nil {
				return err
			}
		}
		if err := writeFile(outDir, "fig13.txt", strings.Join(rendered, "\n")); err != nil {
			return err
		}
	}

	// Tables from the collected figure panels.
	writeTables := func(n int, platformPanels map[string][]int, pairs []harness.TablePair) error {
		if table != 0 && table != n {
			return nil
		}
		if table == 0 && fig != 0 {
			return nil
		}
		var rendered []string
		for _, plat := range []string{"server", "cloud", "hpc"} {
			figNums, ok := platformPanels[plat]
			if !ok {
				continue
			}
			var pool [][]metrics.Series
			for _, fn := range figNums {
				pool = append(pool, panels[fn]...)
			}
			for _, tb := range harness.BuildTables(plat, pairs, pool) {
				rendered = append(rendered, tb.Render())
			}
		}
		body := strings.Join(rendered, "\n")
		fmt.Printf("== Table %d\n%s\n", n, body)
		return writeFile(outDir, fmt.Sprintf("table%d.txt", n), body)
	}

	if err := writeTables(1, map[string][]int{"server": {8}, "cloud": {9}, "hpc": {10}}, harness.Table1Pairs); err != nil {
		return err
	}
	// Table 2 uses the same pairs as Table 1, over the seismic panels. The
	// fig11 slice holds server, cloud, hpc panels in order.
	if wantFig(11) && (table == 0 || table == 2) && len(panels[11]) == 3 {
		var rendered []string
		for i, plat := range []string{"server", "cloud", "hpc"} {
			for _, tb := range harness.BuildTables(plat, harness.Table1Pairs, [][]metrics.Series{panels[11][i]}) {
				rendered = append(rendered, tb.Render())
			}
		}
		body := strings.Join(rendered, "\n")
		fmt.Printf("== Table 2\n%s\n", body)
		if err := writeFile(outDir, "table2.txt", body); err != nil {
			return err
		}
	}
	if wantFig(12) && (table == 0 || table == 3) && len(panels[12]) == 2 {
		var rendered []string
		for i, plat := range []string{"server", "cloud"} {
			for _, tb := range harness.BuildTables(plat, harness.Table3Pairs, [][]metrics.Series{panels[12][i]}) {
				rendered = append(rendered, tb.Render())
			}
		}
		body := strings.Join(rendered, "\n")
		fmt.Printf("== Table 3\n%s\n", body)
		if err := writeFile(outDir, "table3.txt", body); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(dir, name, body string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchPoint is one run in the machine-readable result schema. Durations are
// seconds so downstream tooling can diff the perf trajectory across PRs
// without parsing Go duration strings.
type benchPoint struct {
	Workflow           string  `json:"workflow"`
	Mapping            string  `json:"mapping"`
	Platform           string  `json:"platform"`
	Processes          int     `json:"processes"`
	RuntimeSeconds     float64 `json:"runtime_seconds"`
	ProcessTimeSeconds float64 `json:"process_time_seconds"`
	Tasks              int64   `json:"tasks"`
	Outputs            int64   `json:"outputs"`
	StateOps           int64   `json:"state_ops,omitempty"`
}

// benchSeries is one technique's sweep in the JSON schema.
type benchSeries struct {
	Label  string       `json:"label"`
	Points []benchPoint `json:"points"`
}

// writeBenchJSON writes BENCH_<name>.json, the machine-readable counterpart
// of a figure's txt/csv outputs. The suite's final telemetry snapshot rides
// along so the perf trajectory carries latency distributions (pull/ack/emit
// p50/p99), not just end-to-end durations; the diagnosis report adds the
// bottleneck verdict and the per-PE flow ledger.
func writeBenchJSON(dir, name string, series []metrics.Series, reg *telemetry.Registry, diag *diagnosis.Diag) error {
	out := struct {
		Name      string              `json:"name"`
		Series    []benchSeries       `json:"series"`
		Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
		Diagnosis *diagnosis.Report   `json:"diagnosis,omitempty"`
	}{Name: name}
	for _, s := range series {
		bs := benchSeries{Label: s.Label, Points: make([]benchPoint, 0, len(s.Points))}
		for _, p := range s.Points {
			bs.Points = append(bs.Points, benchPoint{
				Workflow:           p.Workflow,
				Mapping:            p.Mapping,
				Platform:           p.Platform,
				Processes:          p.Processes,
				RuntimeSeconds:     p.Runtime.Seconds(),
				ProcessTimeSeconds: p.ProcessTime.Seconds(),
				Tasks:              p.Tasks,
				Outputs:            p.Outputs,
				StateOps:           p.State.Total(),
			})
		}
		out.Series = append(out.Series, bs)
	}
	if reg != nil {
		snap := reg.Snapshot()
		out.Telemetry = &snap
	}
	if diag != nil {
		report := diag.Diagnose(reg)
		out.Diagnosis = &report
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(dir, "BENCH_"+name+".json", string(body))
}
