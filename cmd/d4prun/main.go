// Command d4prun executes one of the paper's workflows under a chosen
// mapping, printing the run report — the workflow-developer's entry point.
//
// Usage:
//
//	d4prun -workflow galaxy -mapping dyn_auto_multi -processes 12
//	d4prun -workflow sentiment -mapping hybrid_redis -processes 10
//	d4prun -workflow seismic -mapping multi -processes 12 -platform cloud
//	d4prun -list
//
// Redis-backed mappings start an embedded mini-Redis automatically unless
// -redis addr points at an external server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/diagnosis"
	_ "repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/mpi"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
	_ "repro/internal/redismap"
	"repro/internal/statics"
	"repro/internal/telemetry"
	"repro/internal/workflows/galaxy"
	"repro/internal/workflows/seismic"
	"repro/internal/workflows/sentiment"
)

func main() {
	var (
		workflowName = flag.String("workflow", "galaxy", "workflow: galaxy, seismic, sentiment")
		mappingName  = flag.String("mapping", "dyn_multi", "mapping name (see -list)")
		processes    = flag.Int("processes", 8, "worker process budget")
		platformName = flag.String("platform", "server", "platform: server, cloud, hpc")
		seed         = flag.Int64("seed", 1, "run seed")
		scaleX       = flag.Int("x", 1, "galaxy workload multiplier (1X = 100 galaxies)")
		heavy        = flag.Bool("heavy", false, "galaxy heavy workload (beta(2,5) delays)")
		stations     = flag.Int("stations", 50, "seismic station count")
		articles     = flag.Int("articles", 120, "sentiment article count")
		managed      = flag.Bool("managed", false, "sentiment: declare managed state (required for the dynamic Redis mappings)")
		redisAddr    = flag.String("redis", "", "external Redis address(es), comma-separated in shard ring order (empty = embedded mini-Redis)")
		shards       = flag.Int("shards", 0, "embedded Redis shard count for the Redis mappings (0/1 = single server; ignored with -redis)")
		staging      = flag.Bool("staging", false, "apply the static staging optimization before mapping")
		dot          = flag.Bool("dot", false, "print the abstract workflow in Graphviz dot format and exit")
		list         = flag.Bool("list", false, "list available mappings and exit")
		telAddr      = flag.String("telemetry-addr", "", "serve live telemetry on this address (/metrics, /flights, /diagnosis, /journal, /debug/pprof); empty disables")
		telEvery     = flag.Duration("telemetry-every", 0, "flight-recorder snapshot period (0 disables)")
		telSample    = flag.Int("telemetry-sample", 0, "trace one task path per N emissions (0 = default 64, negative disables tracing)")
		telHold      = flag.Duration("telemetry-hold", 0, "keep serving telemetry this long after the run finishes (so scrapers can read the final snapshot)")
		journalRing  = flag.Int("journal-ring", diagnosis.DefaultJournalRing, "run-event journal capacity (entries kept; oldest overwritten)")
	)
	flag.Parse()

	if *list {
		fmt.Println("mappings:", strings.Join(mapping.Names(), ", "))
		fmt.Println("workflows: galaxy, seismic, sentiment")
		return
	}
	tel := telemetryConfig{Addr: *telAddr, Every: *telEvery, SampleEvery: *telSample, Hold: *telHold, JournalRing: *journalRing}
	if err := run(*workflowName, *mappingName, *processes, *platformName, *seed,
		*scaleX, *heavy, *stations, *articles, *managed, *redisAddr, *shards, *staging, *dot, tel); err != nil {
		fmt.Fprintln(os.Stderr, "d4prun:", err)
		os.Exit(1)
	}
}

// telemetryConfig bundles the -telemetry-* flags.
type telemetryConfig struct {
	Addr        string
	Every       time.Duration
	SampleEvery int
	Hold        time.Duration
	JournalRing int
}

func (tc telemetryConfig) enabled() bool {
	return tc.Addr != "" || tc.Every > 0 || tc.SampleEvery != 0 || tc.Hold > 0
}

func run(workflowName, mappingName string, processes int, platformName string, seed int64,
	scaleX int, heavy bool, stations, articles int, managed bool, redisAddr string, shards int, staging, dot bool,
	tel telemetryConfig) error {

	plat, err := platform.ByName(platformName)
	if err != nil {
		return err
	}
	m, err := mapping.Get(mappingName)
	if err != nil {
		return err
	}

	var g *graph.Graph
	switch workflowName {
	case "galaxy":
		g = galaxy.New(galaxy.Config{Galaxies: galaxy.BaseGalaxies * scaleX, Heavy: heavy})
	case "seismic":
		g = seismic.New(seismic.Config{Stations: stations})
	case "sentiment":
		var shown bool
		g = sentiment.New(sentiment.Config{Articles: articles, ManagedState: managed, OnTop3: func(top []sentiment.StateScore) {
			if shown {
				return
			}
			shown = true
			fmt.Println("top 3 happiest states:")
			for i, s := range top {
				fmt.Printf("  %d. %-15s %.2f\n", i+1, s.State, s.Score)
			}
		}})
	default:
		return fmt.Errorf("unknown workflow %q (want galaxy, seismic or sentiment)", workflowName)
	}

	if staging {
		fused, err := statics.Staging(g)
		if err != nil {
			return fmt.Errorf("staging: %w", err)
		}
		fmt.Printf("staging: %d PEs fused into %d\n", len(g.Nodes()), len(fused.Nodes()))
		g = fused
	}
	if dot {
		fmt.Print(g.DOT())
		return nil
	}

	opts := mapping.Options{Processes: processes, Platform: plat, Seed: seed}
	if redisAddr != "" {
		// A comma-separated -redis list is the external form of a shard ring;
		// a single address keeps the classic one-server data plane.
		addrs := strings.Split(redisAddr, ",")
		opts.RedisAddr = addrs[0]
		opts.RedisAddrs = addrs
	} else if strings.Contains(mappingName, "redis") {
		n := shards
		if n <= 0 {
			n = 1
		}
		addrs := make([]string, n)
		for i := range addrs {
			srv, err := miniredis.StartTestServer()
			if err != nil {
				return fmt.Errorf("start embedded redis: %w", err)
			}
			defer srv.Close()
			addrs[i] = srv.Addr()
		}
		opts.RedisAddr = addrs[0]
		opts.RedisAddrs = addrs
		fmt.Printf("embedded mini-redis shards at %s\n", strings.Join(addrs, ", "))
	}

	var reg *telemetry.Registry
	var diag *diagnosis.Diag
	if tel.enabled() {
		reg = telemetry.New(telemetry.Config{TraceSampleEvery: tel.SampleEvery})
		diag = diagnosis.New(diagnosis.Config{JournalRing: tel.JournalRing})
		opts.Telemetry = reg
		opts.Diagnosis = diag
		opts.TelemetryEvery = tel.Every
		if tel.Addr != "" {
			srv, err := telemetry.Serve(tel.Addr, reg)
			if err != nil {
				return fmt.Errorf("telemetry endpoint: %w", err)
			}
			defer srv.Close()
			diag.Attach(srv, reg)
			fmt.Printf("telemetry at http://%s/metrics (diagnosis at /diagnosis, journal at /journal)\n", srv.Addr())
		}
	}

	rep, err := m.Execute(g, opts)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if reg != nil {
		snap := reg.Snapshot()
		fmt.Printf("telemetry: pulls=%d p99=%v acks=%d tasks=%d idle_polls=%d traces=%d\n",
			snap.Workers.Pull.Count, time.Duration(snap.Workers.Pull.P99),
			snap.Workers.Ack.Count, snap.Workers.Tasks, snap.Workers.IdlePolls, len(snap.Traces))
		if diag != nil {
			fmt.Print(diagnosis.Render(diag.Diagnose(reg)))
		}
		if body, err := json.MarshalIndent(snap, "", "  "); err == nil && tel.Addr == "" && tel.Hold == 0 {
			// No endpoint to scrape: the snapshot goes to stdout instead.
			fmt.Println(string(body))
		}
		if tel.Hold > 0 {
			fmt.Printf("holding telemetry endpoint for %v\n", tel.Hold)
			time.Sleep(tel.Hold)
		}
	}
	return nil
}
