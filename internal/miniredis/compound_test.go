package miniredis_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/redisclient"
)

// TestFenceApplySetDel exercises the SET and DEL forms: first execution
// applies, duplicates are dropped, and the ledger count keeps growing.
func TestFenceApplySetDel(t *testing.T) {
	_, cl := newPair(t)

	applied, err := cl.FenceApplySet("h", "ledger:1", "k", "v1")
	if err != nil || !applied {
		t.Fatalf("first FenceApplySet: applied=%v err=%v", applied, err)
	}
	if v, ok, _ := cl.HGet("h", "k"); !ok || v != "v1" {
		t.Fatalf("after apply: k=%q ok=%v", v, ok)
	}
	applied, err = cl.FenceApplySet("h", "ledger:1", "k", "v2")
	if err != nil || applied {
		t.Fatalf("duplicate FenceApplySet: applied=%v err=%v", applied, err)
	}
	if v, _, _ := cl.HGet("h", "k"); v != "v1" {
		t.Fatalf("duplicate mutated value: %q", v)
	}
	if cnt, _, _ := cl.HGet("h", "ledger:1"); cnt != "2" {
		t.Fatalf("ledger count: %q want 2", cnt)
	}

	// A distinct ledger field is an independent gate.
	applied, err = cl.FenceApplyDel("h", "ledger:2", "k")
	if err != nil || !applied {
		t.Fatalf("FenceApplyDel: applied=%v err=%v", applied, err)
	}
	if _, ok, _ := cl.HGet("h", "k"); ok {
		t.Fatal("key survived fenced delete")
	}
	applied, err = cl.FenceApplyDel("h", "ledger:2", "k")
	if err != nil || applied {
		t.Fatalf("duplicate FenceApplyDel: applied=%v err=%v", applied, err)
	}
}

// TestFenceApplyIncr checks the INCR form returns the effective value on
// both the applied and the duplicate branch.
func TestFenceApplyIncr(t *testing.T) {
	_, cl := newPair(t)

	applied, n, err := cl.FenceApplyIncr("h", "lf", "cnt", 5)
	if err != nil || !applied || n != 5 {
		t.Fatalf("first: applied=%v n=%d err=%v", applied, n, err)
	}
	applied, n, err = cl.FenceApplyIncr("h", "lf", "cnt", 5)
	if err != nil || applied || n != 5 {
		t.Fatalf("duplicate: applied=%v n=%d err=%v", applied, n, err)
	}
	applied, n, err = cl.FenceApplyIncr("h", "lf2", "cnt", 2)
	if err != nil || !applied || n != 7 {
		t.Fatalf("second gate: applied=%v n=%d err=%v", applied, n, err)
	}
}

// TestFenceApplyValidation: malformed requests error without touching the
// store — validation precedes the ledger record and the mutation.
func TestFenceApplyValidation(t *testing.T) {
	_, cl := newPair(t)

	var se redisclient.ServerError
	if _, err := cl.Do("FENCEAPPLY", "h", "lf", "NOPE", "k"); !errors.As(err, &se) {
		t.Fatalf("unsupported op: %v", err)
	}
	if _, err := cl.Do("FENCEAPPLY", "h", "lf", "INCR", "k", "notanint"); !errors.As(err, &se) {
		t.Fatalf("bad delta: %v", err)
	}
	if _, err := cl.Do("FENCEAPPLY", "h", "lf", "SET", "k"); !errors.As(err, &se) {
		t.Fatalf("SET arity: %v", err)
	}
	// Nothing was recorded by the failed attempts.
	if _, ok, _ := cl.HGet("h", "lf"); ok {
		t.Fatal("failed FENCEAPPLY left a ledger record")
	}
	// Wrong key type errors too.
	if err := cl.Set("s", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FenceApplySet("s", "lf", "k", "v"); !errors.As(err, &se) || !strings.HasPrefix(string(se), "WRONGTYPE") {
		t.Fatalf("wrongtype: %v", err)
	}
}

// TestFenceXAckOwnership: only entries pending under the named consumer are
// acked; entries claimed by another consumer hold their weight, and the
// direct decrement applies regardless.
func TestFenceXAckOwnership(t *testing.T) {
	_, cl := newPair(t)

	if err := cl.XGroupCreate("q", "g", "0"); err != nil {
		t.Fatal(err)
	}
	id1, err := cl.XAddValues("q", "task", "a")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.XAddValues("q", "task", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.IncrBy("pending", 10); err != nil {
		t.Fatal(err)
	}
	// w0 reads both entries into its PEL, then w1 claims the second away.
	if _, err := cl.XReadGroup("g", "w0", 10, 0, "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XClaimJustID("q", "g", "w1", 0, []string{id2}); err != nil {
		t.Fatal(err)
	}

	acked, dec, pending, err := cl.FenceXAck("q", "g", "w0", "pending", 1,
		[]string{id1, id2}, []int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if acked != 1 {
		t.Fatalf("acked=%d want 1 (id2 is owned by w1)", acked)
	}
	if dec != 4 { // weight 3 for id1 + direct 1; id2's 4 withheld
		t.Fatalf("dec=%d want 4", dec)
	}
	if pending != 6 {
		t.Fatalf("pending=%d want 6", pending)
	}
	// id2 is still pending for w1 and releasable by it.
	owned, err := cl.XPendingIDs("q", "g", "w1", 10)
	if err != nil || len(owned) != 1 || owned[0] != id2 {
		t.Fatalf("w1 PEL: %v %v", owned, err)
	}
	acked, dec, pending, err = cl.FenceXAck("q", "g", "w1", "pending", 0,
		[]string{id2}, []int64{4})
	if err != nil || acked != 1 || dec != 4 || pending != 2 {
		t.Fatalf("w1 release: acked=%d dec=%d pending=%d err=%v", acked, dec, pending, err)
	}
	// Re-acking is a no-op for the counter: nothing owned, direct 0.
	acked, dec, pending, err = cl.FenceXAck("q", "g", "w1", "pending", 0,
		[]string{id2}, []int64{4})
	if err != nil || acked != 0 || dec != 0 || pending != 2 {
		t.Fatalf("re-ack: acked=%d dec=%d pending=%d err=%v", acked, dec, pending, err)
	}
}

// TestFenceXAckNoGroup: a missing group acks nothing but still applies the
// direct decrement (it covers work outside the stream).
func TestFenceXAckNoGroup(t *testing.T) {
	_, cl := newPair(t)
	if _, err := cl.IncrBy("pending", 5); err != nil {
		t.Fatal(err)
	}
	acked, dec, pending, err := cl.FenceXAck("nostream", "nogroup", "w0", "pending", 2, nil, nil)
	if err != nil || acked != 0 || dec != 2 || pending != 3 {
		t.Fatalf("acked=%d dec=%d pending=%d err=%v", acked, dec, pending, err)
	}
}

// TestSinkAppend: a whole output batch (counter increment, stream entries,
// list pushes) lands atomically behind one ledger gate, and a duplicate
// applies none of it.
func TestSinkAppend(t *testing.T) {
	_, cl := newPair(t)

	batch := [][]string{
		{"INCRBY", "pending", "2"},
		{"XADD", "q", "*", "task", "payload-1"},
		{"XADD", "q", "*", "task", "payload-2"},
		{"RPUSH", "priv", "frame-a", "frame-b"},
	}
	applied, err := cl.SinkAppend("st", "gate:1", batch)
	if err != nil || !applied {
		t.Fatalf("first SinkAppend: applied=%v err=%v", applied, err)
	}
	if v, _, _ := cl.Get("pending"); v != "2" {
		t.Fatalf("pending=%q want 2", v)
	}
	if n, _ := cl.XLen("q"); n != 2 {
		t.Fatalf("stream len=%d want 2", n)
	}
	if n, _ := cl.LLen("priv"); n != 2 {
		t.Fatalf("list len=%d want 2", n)
	}

	applied, err = cl.SinkAppend("st", "gate:1", batch)
	if err != nil || applied {
		t.Fatalf("duplicate SinkAppend: applied=%v err=%v", applied, err)
	}
	if v, _, _ := cl.Get("pending"); v != "2" {
		t.Fatalf("duplicate incremented pending: %q", v)
	}
	if n, _ := cl.XLen("q"); n != 2 {
		t.Fatalf("duplicate appended to stream: %d", n)
	}

	// An empty batch still records its gate.
	applied, err = cl.SinkAppend("st", "gate:2", nil)
	if err != nil || !applied {
		t.Fatalf("empty batch: applied=%v err=%v", applied, err)
	}
	if cnt, ok, _ := cl.HGet("st", "gate:2"); !ok || cnt != "1" {
		t.Fatalf("empty-batch gate: %q %v", cnt, ok)
	}
}

// TestSinkAppendValidateAllThenApply: any invalid subcommand fails the whole
// batch before anything — including the ledger record — is applied.
func TestSinkAppendValidateAllThenApply(t *testing.T) {
	_, cl := newPair(t)
	var se redisclient.ServerError

	bad := [][]string{
		{"XADD", "q", "*", "task", "ok"},
		{"DEL", "q"}, // not whitelisted
	}
	if _, err := cl.SinkAppend("st", "gate", bad); !errors.As(err, &se) {
		t.Fatalf("unwhitelisted subcommand: %v", err)
	}
	if n, _ := cl.XLen("q"); n != 0 {
		t.Fatalf("partial apply: stream len=%d", n)
	}
	if _, ok, _ := cl.HGet("st", "gate"); ok {
		t.Fatal("failed batch recorded its gate")
	}

	// Type conflicts are caught during validation too.
	if _, err := cl.RPush("q", "now-a-list"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SinkAppend("st", "gate", [][]string{{"XADD", "q", "*", "f", "v"}}); !errors.As(err, &se) {
		t.Fatalf("XADD onto list: %v", err)
	}
	// Explicit IDs are rejected: only the auto-ID form the transport emits.
	if _, err := cl.SinkAppend("st", "gate", [][]string{{"XADD", "q2", "1-1", "f", "v"}}); !errors.As(err, &se) {
		t.Fatalf("explicit-ID XADD: %v", err)
	}
	// Malformed framing (bad argv count) is rejected.
	if _, err := cl.Do("SINKAPPEND", "st", "gate", "1", "5", "RPUSH", "k", "v"); !errors.As(err, &se) {
		t.Fatalf("bad framing: %v", err)
	}
	if _, ok, _ := cl.HGet("st", "gate"); ok {
		t.Fatal("failed batch recorded its gate")
	}
}

// TestCompoundAtomicityUnderRaces hammers one gate from many goroutines: the
// server-side transaction must admit exactly one applier however the racing
// duplicates interleave.
func TestCompoundAtomicityUnderRaces(t *testing.T) {
	_, cl := newPair(t)
	const racers = 8
	applies := make(chan bool, racers)
	errs := make(chan error, racers)
	for i := 0; i < racers; i++ {
		go func() {
			applied, _, err := cl.FenceApplyIncr("h", "gate", "cnt", 10)
			applies <- applied
			errs <- err
		}()
	}
	wins := 0
	for i := 0; i < racers; i++ {
		if <-applies {
			wins++
		}
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if wins != 1 {
		t.Fatalf("appliers=%d want exactly 1", wins)
	}
	if v, _, _ := cl.HGet("h", "cnt"); v != "10" {
		t.Fatalf("cnt=%q want 10", v)
	}
}
