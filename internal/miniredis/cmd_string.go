package miniredis

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/resp"
)

func init() {
	register("SET", 2, -1, cmdSet)
	register("SETNX", 2, 2, cmdSetNX)
	register("GET", 1, 1, cmdGet)
	register("GETSET", 2, 2, cmdGetSet)
	register("APPEND", 2, 2, cmdAppend)
	register("STRLEN", 1, 1, cmdStrLen)
	register("INCR", 1, 1, cmdIncr)
	register("DECR", 1, 1, cmdDecr)
	register("INCRBY", 2, 2, cmdIncrBy)
	register("DECRBY", 2, 2, cmdDecrBy)
	register("MSET", 2, -1, cmdMSet)
	register("MGET", 1, -1, cmdMGet)
}

// setString stores a string value, preserving nothing from prior entries.
func (d *db) setString(key, val string) {
	d.keys[key] = &entry{kind: kindString, str: val}
}

func cmdSet(s *Server, args []string) resp.Value {
	key, val := args[0], args[1]
	var nx, xx bool
	var ttl time.Duration
	for i := 2; i < len(args); i++ {
		switch strings.ToUpper(args[i]) {
		case "NX":
			nx = true
		case "XX":
			xx = true
		case "EX", "PX":
			if i+1 >= len(args) {
				return resp.Err("ERR syntax error")
			}
			n, err := strconv.ParseInt(args[i+1], 10, 64)
			if err != nil || n <= 0 {
				return resp.Err("ERR invalid expire time in 'set' command")
			}
			if strings.EqualFold(args[i], "EX") {
				ttl = time.Duration(n) * time.Second
			} else {
				ttl = time.Duration(n) * time.Millisecond
			}
			i++
		default:
			return resp.Err("ERR syntax error")
		}
	}
	now := time.Now()
	existing := s.db.lookup(key, now)
	if nx && existing != nil {
		return resp.Nil
	}
	if xx && existing == nil {
		return resp.Nil
	}
	s.db.setString(key, val)
	if ttl > 0 {
		s.db.keys[key].expireAt = now.Add(ttl)
	}
	s.notifyKey(key)
	return resp.OK
}

func cmdSetNX(s *Server, args []string) resp.Value {
	if s.db.lookup(args[0], time.Now()) != nil {
		return resp.Int(0)
	}
	s.db.setString(args[0], args[1])
	s.notifyKey(args[0])
	return resp.Int(1)
}

func cmdGet(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindString, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Nil
	}
	return resp.Str(e.str)
}

func cmdGetSet(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindString, time.Now())
	if err != nil {
		return errValue(err)
	}
	old := resp.Nil
	if e != nil {
		old = resp.Str(e.str)
	}
	s.db.setString(args[0], args[1])
	s.notifyKey(args[0])
	return old
}

func cmdAppend(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindString, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		s.db.setString(args[0], args[1])
		return resp.Int(int64(len(args[1])))
	}
	e.str += args[1]
	return resp.Int(int64(len(e.str)))
}

func cmdStrLen(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindString, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	return resp.Int(int64(len(e.str)))
}

func addToString(s *Server, key string, delta int64) resp.Value {
	e, err := s.db.lookupKind(key, kindString, time.Now())
	if err != nil {
		return errValue(err)
	}
	var cur int64
	if e != nil {
		cur, err = strconv.ParseInt(e.str, 10, 64)
		if err != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
	}
	cur += delta
	s.db.setString(key, strconv.FormatInt(cur, 10))
	return resp.Int(cur)
}

func cmdIncr(s *Server, args []string) resp.Value { return addToString(s, args[0], 1) }
func cmdDecr(s *Server, args []string) resp.Value { return addToString(s, args[0], -1) }

func cmdIncrBy(s *Server, args []string) resp.Value {
	n, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	return addToString(s, args[0], n)
}

func cmdDecrBy(s *Server, args []string) resp.Value {
	n, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	return addToString(s, args[0], -n)
}

func cmdMSet(s *Server, args []string) resp.Value {
	if len(args)%2 != 0 {
		return resp.Err("ERR wrong number of arguments for 'mset' command")
	}
	for i := 0; i < len(args); i += 2 {
		s.db.setString(args[i], args[i+1])
		s.notifyKey(args[i])
	}
	return resp.OK
}

func cmdMGet(s *Server, args []string) resp.Value {
	now := time.Now()
	out := make([]resp.Value, len(args))
	for i, key := range args {
		e := s.db.lookup(key, now)
		if e == nil || e.kind != kindString {
			out[i] = resp.Nil
		} else {
			out[i] = resp.Str(e.str)
		}
	}
	return resp.Arr(out...)
}
