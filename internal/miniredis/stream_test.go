package miniredis_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/redisclient"
)

func TestXAddXLenXRange(t *testing.T) {
	_, cl := newPair(t)
	id1, err := cl.XAddValues("st", "k", "v1")
	if err != nil || id1 == "" {
		t.Fatalf("XADD: %q %v", id1, err)
	}
	id2, err := cl.XAddValues("st", "k", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if !(id1 < id2) && !streamIDLess(id1, id2) {
		t.Fatalf("IDs not increasing: %q then %q", id1, id2)
	}
	n, err := cl.XLen("st")
	mustInt(t, n, err, 2, "XLEN")

	v, err := cl.Do("XRANGE", "st", "-", "+")
	if err != nil || len(v.Array) != 2 {
		t.Fatalf("XRANGE: %+v %v", v, err)
	}
	first := v.Array[0]
	if first.Array[0].Str != id1 {
		t.Fatalf("first entry id %q want %q", first.Array[0].Str, id1)
	}
	fields := first.Array[1]
	if fields.Array[0].Str != "k" || fields.Array[1].Str != "v1" {
		t.Fatalf("first entry fields: %+v", fields)
	}

	// COUNT limit.
	v, err = cl.Do("XRANGE", "st", "-", "+", "COUNT", "1")
	if err != nil || len(v.Array) != 1 {
		t.Fatalf("XRANGE COUNT: %+v %v", v, err)
	}
	// XREVRANGE returns newest first.
	v, err = cl.Do("XREVRANGE", "st", "+", "-")
	if err != nil || len(v.Array) != 2 || v.Array[0].Array[0].Str != id2 {
		t.Fatalf("XREVRANGE: %+v %v", v, err)
	}
}

// streamIDLess compares "ms-seq" ids numerically.
func streamIDLess(a, b string) bool {
	pa := strings.SplitN(a, "-", 2)
	pb := strings.SplitN(b, "-", 2)
	if pa[0] != pb[0] {
		return len(pa[0]) < len(pb[0]) || pa[0] < pb[0]
	}
	return len(pa[1]) < len(pb[1]) || pa[1] < pb[1]
}

func TestXAddExplicitIDMonotonic(t *testing.T) {
	_, cl := newPair(t)
	if _, err := cl.Do("XADD", "st", "5-1", "a", "1"); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Do("XADD", "st", "5-1", "a", "2")
	var se redisclient.ServerError
	if !errors.As(err, &se) || !strings.Contains(string(se), "equal or smaller") {
		t.Fatalf("expected monotonic error, got %v", err)
	}
	if _, err := cl.Do("XADD", "st", "5-2", "a", "3"); err != nil {
		t.Fatal(err)
	}
	// "ms-*" auto-sequence form.
	v, err := cl.Do("XADD", "st", "5-*", "a", "4")
	if err != nil || v.Str != "5-3" {
		t.Fatalf("XADD 5-*: %+v %v", v, err)
	}
}

func TestXAddMaxLen(t *testing.T) {
	_, cl := newPair(t)
	for i := 0; i < 10; i++ {
		if _, err := cl.Do("XADD", "st", "MAXLEN", "5", "*", "i", "x"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := cl.XLen("st")
	mustInt(t, n, err, 5, "XLEN after MAXLEN")
}

func TestConsumerGroupLifecycle(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("tasks", "workers", "0"); err != nil {
		t.Fatal(err)
	}
	// Duplicate create is swallowed by the client helper.
	if err := cl.XGroupCreate("tasks", "workers", "0"); err != nil {
		t.Fatalf("duplicate create: %v", err)
	}

	id1, err := cl.XAddValues("tasks", "job", "a")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.XAddValues("tasks", "job", "b")
	if err != nil {
		t.Fatal(err)
	}

	entries, err := cl.XReadGroup("workers", "w1", 1, 0, "tasks")
	if err != nil || len(entries) != 1 || entries[0].ID != id1 {
		t.Fatalf("XREADGROUP first: %+v %v", entries, err)
	}
	if entries[0].Fields["job"] != "a" {
		t.Fatalf("fields: %+v", entries[0].Fields)
	}
	entries, err = cl.XReadGroup("workers", "w2", 10, 0, "tasks")
	if err != nil || len(entries) != 1 || entries[0].ID != id2 {
		t.Fatalf("XREADGROUP second consumer: %+v %v", entries, err)
	}
	// Nothing new left.
	entries, err = cl.XReadGroup("workers", "w1", 1, 0, "tasks")
	if err != nil || len(entries) != 0 {
		t.Fatalf("XREADGROUP drained: %+v %v", entries, err)
	}

	sum, err := cl.XPendingSummary("tasks", "workers")
	if err != nil || sum.Count != 2 {
		t.Fatalf("XPENDING: %+v %v", sum, err)
	}
	if sum.PerConsumer["w1"] != 1 || sum.PerConsumer["w2"] != 1 {
		t.Fatalf("per-consumer: %+v", sum.PerConsumer)
	}

	n, err := cl.XAck("tasks", "workers", id1)
	mustInt(t, n, err, 1, "XACK")
	sum, err = cl.XPendingSummary("tasks", "workers")
	if err != nil || sum.Count != 1 {
		t.Fatalf("XPENDING after ack: %+v %v", sum, err)
	}
	// Double-ack is a no-op.
	n, err = cl.XAck("tasks", "workers", id1)
	mustInt(t, n, err, 0, "double XACK")
}

func TestXReadGroupReplayPending(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("tasks", "g", "0"); err != nil {
		t.Fatal(err)
	}
	id, err := cl.XAddValues("tasks", "job", "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XReadGroup("g", "w1", 1, 0, "tasks"); err != nil {
		t.Fatal(err)
	}
	// Replay from 0 returns the un-acked entry.
	v, err := cl.Do("XREADGROUP", "GROUP", "g", "w1", "STREAMS", "tasks", "0")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Array) != 1 {
		t.Fatalf("replay reply: %+v", v)
	}
	entries := v.Array[0].Array[1].Array
	if len(entries) != 1 || entries[0].Array[0].Str != id {
		t.Fatalf("replay entries: %+v", entries)
	}
}

func TestXReadGroupBlocking(t *testing.T) {
	srv, cl := newPair(t)
	if err := cl.XGroupCreate("tasks", "g", "$"); err != nil {
		t.Fatal(err)
	}
	producer := redisclient.Dial(srv.Addr())
	defer producer.Close()

	done := make(chan string, 1)
	go func() {
		entries, err := cl.XReadGroup("g", "w1", 1, 5*time.Second, "tasks")
		if err != nil || len(entries) != 1 {
			done <- "error"
			return
		}
		done <- entries[0].Fields["job"]
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := producer.XAddValues("tasks", "job", "late"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "late" {
			t.Fatalf("blocking read woke with %q", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("XREADGROUP BLOCK did not wake")
	}
}

func TestXReadGroupBlockTimesOut(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("tasks", "g", "$"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	entries, err := cl.XReadGroup("g", "w1", 1, 60*time.Millisecond, "tasks")
	if err != nil || entries != nil {
		t.Fatalf("timeout read: %+v %v", entries, err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("returned before timeout")
	}
}

func TestNoGroupError(t *testing.T) {
	_, cl := newPair(t)
	if _, err := cl.XAddValues("st", "a", "b"); err != nil {
		t.Fatal(err)
	}
	_, err := cl.XReadGroup("absent", "c", 1, 0, "st")
	var se redisclient.ServerError
	if !errors.As(err, &se) || !strings.HasPrefix(string(se), "NOGROUP") {
		t.Fatalf("expected NOGROUP, got %v", err)
	}
}

func TestXPendingExtendedAndIdle(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	id, err := cl.XAddValues("st", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XReadGroup("g", "w1", 1, 0, "st"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	v, err := cl.Do("XPENDING", "st", "g", "-", "+", "10")
	if err != nil || len(v.Array) != 1 {
		t.Fatalf("XPENDING ext: %+v %v", v, err)
	}
	row := v.Array[0].Array
	if row[0].Str != id || row[1].Str != "w1" {
		t.Fatalf("row: %+v", row)
	}
	if row[2].Int < 10 {
		t.Fatalf("idle too small: %d", row[2].Int)
	}
	if row[3].Int != 1 {
		t.Fatalf("delivery count: %d", row[3].Int)
	}
	// IDLE filter excludes fresh entries.
	v, err = cl.Do("XPENDING", "st", "g", "IDLE", "60000", "-", "+", "10")
	if err != nil || len(v.Array) != 0 {
		t.Fatalf("XPENDING IDLE filter: %+v %v", v, err)
	}
}

func TestXClaimAndAutoClaim(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	id, err := cl.XAddValues("st", "task", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XReadGroup("g", "dead", 1, 0, "st"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)

	// XCLAIM with min-idle 0 moves it immediately.
	v, err := cl.Do("XCLAIM", "st", "g", "alive", "0", id)
	if err != nil || len(v.Array) != 1 {
		t.Fatalf("XCLAIM: %+v %v", v, err)
	}
	sum, err := cl.XPendingSummary("st", "g")
	if err != nil || sum.PerConsumer["alive"] != 1 || sum.PerConsumer["dead"] != 0 {
		t.Fatalf("after claim: %+v %v", sum, err)
	}

	// XAUTOCLAIM with huge min-idle claims nothing.
	_, claimed, err := cl.XAutoClaim("st", "g", "third", time.Hour, "0-0", 10)
	if err != nil || len(claimed) != 0 {
		t.Fatalf("XAUTOCLAIM high idle: %+v %v", claimed, err)
	}
	// With zero min-idle it takes the entry over.
	_, claimed, err = cl.XAutoClaim("st", "g", "third", 0, "0-0", 10)
	if err != nil || len(claimed) != 1 || claimed[0].ID != id {
		t.Fatalf("XAUTOCLAIM: %+v %v", claimed, err)
	}
}

func TestXInfo(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XAddValues("st", "a", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XReadGroup("g", "w1", 1, 0, "st"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(12 * time.Millisecond)
	infos, err := cl.XInfoConsumers("st", "g")
	if err != nil || len(infos) != 1 {
		t.Fatalf("XINFO CONSUMERS: %+v %v", infos, err)
	}
	if infos[0].Name != "w1" || infos[0].Pending != 1 || infos[0].Idle < 10*time.Millisecond {
		t.Fatalf("consumer info: %+v", infos[0])
	}
	v, err := cl.Do("XINFO", "STREAM", "st")
	if err != nil {
		t.Fatal(err)
	}
	// Reply is a flat [name, value, ...] array; index it into a map.
	props := map[string]string{}
	for i := 0; i+1 < len(v.Array); i += 2 {
		props[v.Array[i].Str] = v.Array[i+1].Text()
	}
	if props["length"] != "1" || props["groups"] != "1" {
		t.Fatalf("XINFO STREAM: %+v", props)
	}
	v, err = cl.Do("XINFO", "GROUPS", "st")
	if err != nil || len(v.Array) != 1 {
		t.Fatalf("XINFO GROUPS: %+v %v", v, err)
	}
}

func TestXDelAndXTrim(t *testing.T) {
	_, cl := newPair(t)
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := cl.XAddValues("st", "i", "x")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	n, err := cl.DoInt("XDEL", "st", ids[0], ids[1], "99999999999-0")
	mustInt(t, n, err, 2, "XDEL")
	n, err = cl.XLen("st")
	mustInt(t, n, err, 3, "XLEN after XDEL")
	n, err = cl.DoInt("XTRIM", "st", "MAXLEN", "1")
	mustInt(t, n, err, 2, "XTRIM")
	n, err = cl.XLen("st")
	mustInt(t, n, err, 1, "XLEN after XTRIM")
}

func TestXRead(t *testing.T) {
	_, cl := newPair(t)
	id1, err := cl.XAddValues("st", "a", "1")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.XAddValues("st", "a", "2")
	if err != nil {
		t.Fatal(err)
	}
	// Read everything after 0.
	v, err := cl.Do("XREAD", "COUNT", "10", "STREAMS", "st", "0")
	if err != nil {
		t.Fatal(err)
	}
	entries := v.Array[0].Array[1].Array
	if len(entries) != 2 || entries[0].Array[0].Str != id1 {
		t.Fatalf("XREAD: %+v", entries)
	}
	// Read after id1 returns only id2.
	v, err = cl.Do("XREAD", "STREAMS", "st", id1)
	if err != nil {
		t.Fatal(err)
	}
	entries = v.Array[0].Array[1].Array
	if len(entries) != 1 || entries[0].Array[0].Str != id2 {
		t.Fatalf("XREAD after id1: %+v", entries)
	}
	// Non-blocking read past the end is a nil array.
	v, err = cl.Do("XREAD", "STREAMS", "st", id2)
	if err != nil || !v.IsNull() {
		t.Fatalf("XREAD drained: %+v %v", v, err)
	}
}

func TestXGroupConsumerManagement(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	n, err := cl.DoInt("XGROUP", "CREATECONSUMER", "st", "g", "w1")
	mustInt(t, n, err, 1, "CREATECONSUMER")
	n, err = cl.DoInt("XGROUP", "CREATECONSUMER", "st", "g", "w1")
	mustInt(t, n, err, 0, "CREATECONSUMER duplicate")
	// Give w1 a pending entry, then delete the consumer.
	if _, err := cl.XAddValues("st", "a", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XReadGroup("g", "w1", 1, 0, "st"); err != nil {
		t.Fatal(err)
	}
	n, err = cl.DoInt("XGROUP", "DELCONSUMER", "st", "g", "w1")
	mustInt(t, n, err, 1, "DELCONSUMER returns pending count")
	sum, err := cl.XPendingSummary("st", "g")
	if err != nil || sum.Count != 0 {
		t.Fatalf("PEL after DELCONSUMER: %+v %v", sum, err)
	}
	n, err = cl.DoInt("XGROUP", "DESTROY", "st", "g")
	mustInt(t, n, err, 1, "DESTROY")
}
