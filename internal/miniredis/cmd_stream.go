package miniredis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/resp"
)

func init() {
	register("XADD", 4, -1, cmdXAdd)
	register("XLEN", 1, 1, cmdXLen)
	register("XRANGE", 3, 5, cmdXRange)
	register("XREVRANGE", 3, 5, cmdXRevRange)
	register("XREAD", 3, -1, cmdXRead)
	register("XGROUP", 2, -1, cmdXGroup)
	register("XREADGROUP", 6, -1, cmdXReadGroup)
	register("XACK", 3, -1, cmdXAck)
	register("XPENDING", 2, -1, cmdXPending)
	register("XCLAIM", 5, -1, cmdXClaim)
	register("XAUTOCLAIM", 4, -1, cmdXAutoClaim)
	register("XDEL", 2, -1, cmdXDel)
	register("XTRIM", 3, 4, cmdXTrim)
	register("XINFO", 2, 3, cmdXInfo)
	register("XSETID", 2, 2, cmdXSetID)
}

var errNoGroup = func(key, group string) resp.Value {
	return resp.Errf("NOGROUP No such consumer group '%s' for key name '%s'", group, key)
}

// entryValue renders one stream entry as [id, [f1, v1, ...]].
func entryValue(e streamEntry) resp.Value {
	return resp.Arr(resp.Str(e.id.String()), resp.StrArray(e.fields...))
}

// entriesValue renders a list of entries.
func entriesValue(entries []streamEntry) resp.Value {
	out := make([]resp.Value, len(entries))
	for i, e := range entries {
		out[i] = entryValue(e)
	}
	return resp.Arr(out...)
}

func (d *db) streamFor(key string, create bool, now time.Time) (*entry, error) {
	e, err := d.lookupKind(key, kindStream, now)
	if err != nil || e != nil {
		return e, err
	}
	if !create {
		return nil, nil
	}
	e = &entry{kind: kindStream, stream: newStream()}
	d.keys[key] = e
	return e, nil
}

func cmdXAdd(s *Server, args []string) resp.Value {
	key := args[0]
	i := 1
	nomkstream := false
	maxLen := int64(-1)
	for i < len(args) {
		switch strings.ToUpper(args[i]) {
		case "NOMKSTREAM":
			nomkstream = true
			i++
		case "MAXLEN":
			i++
			if i < len(args) && (args[i] == "~" || args[i] == "=") {
				i++
			}
			if i >= len(args) {
				return resp.Err("ERR syntax error")
			}
			n, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil || n < 0 {
				return resp.Err("ERR value is not an integer or out of range")
			}
			maxLen = n
			i++
		default:
			goto idArg
		}
	}
idArg:
	if i >= len(args) {
		return resp.Err("ERR wrong number of arguments for 'xadd' command")
	}
	idArgStr := args[i]
	i++
	fields := args[i:]
	if len(fields) == 0 || len(fields)%2 != 0 {
		return resp.Err("ERR wrong number of arguments for 'xadd' command")
	}

	now := time.Now()
	e, err := s.db.streamFor(key, !nomkstream, now)
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Nil // NOMKSTREAM and no stream
	}
	st := e.stream

	var id StreamID
	switch {
	case idArgStr == "*":
		id = st.nextAutoID(now)
	case strings.HasSuffix(idArgStr, "-*"):
		ms, perr := strconv.ParseUint(strings.TrimSuffix(idArgStr, "-*"), 10, 64)
		if perr != nil {
			return resp.Err("ERR Invalid stream ID specified as stream command argument")
		}
		if ms < st.lastID.Ms {
			return resp.Err("ERR The ID specified in XADD is equal or smaller than the target stream top item")
		}
		if ms == st.lastID.Ms {
			id = StreamID{Ms: ms, Seq: st.lastID.Seq + 1}
		} else {
			id = StreamID{Ms: ms, Seq: 0}
		}
	default:
		id, err = parseStreamID(idArgStr, 0)
		if err != nil {
			return errValue(err)
		}
		if !st.lastID.Less(id) {
			return resp.Err("ERR The ID specified in XADD is equal or smaller than the target stream top item")
		}
	}
	st.add(id, append([]string(nil), fields...))
	if maxLen >= 0 {
		st.trimMaxLen(maxLen)
	}
	s.notifyKey(key)
	return resp.Str(id.String())
}

func cmdXLen(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindStream, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	return resp.Int(int64(len(e.stream.entries)))
}

func xrange(s *Server, args []string, reverse bool) resp.Value {
	e, err := s.db.lookupKind(args[0], kindStream, time.Now())
	if err != nil {
		return errValue(err)
	}
	count := 0
	if len(args) >= 5 {
		if !strings.EqualFold(args[3], "COUNT") {
			return resp.Err("ERR syntax error")
		}
		count, err = strconv.Atoi(args[4])
		if err != nil || count < 0 {
			return resp.Err("ERR value is not an integer or out of range")
		}
	} else if len(args) == 4 {
		return resp.Err("ERR syntax error")
	}
	loStr, hiStr := args[1], args[2]
	if reverse {
		loStr, hiStr = hiStr, loStr
	}
	// Exclusive bounds "(id" supported for completeness.
	lo, hi, err := parseRangeBounds(loStr, hiStr)
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Arr()
	}
	entries := e.stream.rangeEntries(lo, hi, 0)
	if reverse {
		for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
			entries[i], entries[j] = entries[j], entries[i]
		}
	}
	if count > 0 && len(entries) > count {
		entries = entries[:count]
	}
	return entriesValue(entries)
}

func parseRangeBounds(loStr, hiStr string) (StreamID, StreamID, error) {
	loExcl := strings.HasPrefix(loStr, "(")
	hiExcl := strings.HasPrefix(hiStr, "(")
	lo, err := parseStreamID(strings.TrimPrefix(loStr, "("), 0)
	if err != nil {
		return StreamID{}, StreamID{}, err
	}
	hi, err := parseStreamID(strings.TrimPrefix(hiStr, "("), ^uint64(0))
	if err != nil {
		return StreamID{}, StreamID{}, err
	}
	if loExcl {
		lo = lo.Next()
	}
	if hiExcl {
		if hi.IsZero() {
			return StreamID{}, StreamID{}, fmt.Errorf("ERR invalid range item")
		}
		if hi.Seq == 0 {
			hi = StreamID{Ms: hi.Ms - 1, Seq: ^uint64(0)}
		} else {
			hi = StreamID{Ms: hi.Ms, Seq: hi.Seq - 1}
		}
	}
	return lo, hi, nil
}

func cmdXRange(s *Server, args []string) resp.Value    { return xrange(s, args, false) }
func cmdXRevRange(s *Server, args []string) resp.Value { return xrange(s, args, true) }

// parseStreamsClause parses the trailing "STREAMS key... id..." section.
func parseStreamsClause(args []string, i int) (keys, ids []string, err error) {
	if i >= len(args) || !strings.EqualFold(args[i], "STREAMS") {
		return nil, nil, fmt.Errorf("ERR syntax error")
	}
	rest := args[i+1:]
	if len(rest) == 0 || len(rest)%2 != 0 {
		return nil, nil, fmt.Errorf("ERR Unbalanced XREAD list of streams: for each stream key an ID or '$' must be specified")
	}
	half := len(rest) / 2
	return rest[:half], rest[half:], nil
}

func cmdXRead(s *Server, args []string) resp.Value {
	count := 0
	blockMs := int64(-1)
	i := 0
	for i < len(args) {
		switch strings.ToUpper(args[i]) {
		case "COUNT":
			if i+1 >= len(args) {
				return resp.Err("ERR syntax error")
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			count = n
			i += 2
		case "BLOCK":
			if i+1 >= len(args) {
				return resp.Err("ERR syntax error")
			}
			n, err := strconv.ParseInt(args[i+1], 10, 64)
			if err != nil || n < 0 {
				return resp.Err("ERR timeout is not an integer or out of range")
			}
			blockMs = n
			i += 2
		default:
			goto streams
		}
	}
streams:
	keys, idStrs, err := parseStreamsClause(args, i)
	if err != nil {
		return errValue(err)
	}
	now := time.Now()
	from := make([]StreamID, len(keys))
	for j, idStr := range idStrs {
		if idStr == "$" {
			e, lerr := s.db.lookupKind(keys[j], kindStream, now)
			if lerr != nil {
				return errValue(lerr)
			}
			if e != nil {
				from[j] = e.stream.lastID
			}
			continue
		}
		from[j], err = parseStreamID(idStr, 0)
		if err != nil {
			return errValue(err)
		}
	}

	var deadline time.Time
	if blockMs > 0 {
		deadline = time.Now().Add(time.Duration(blockMs) * time.Millisecond)
	}
	for {
		var out []resp.Value
		for j, key := range keys {
			e, lerr := s.db.lookupKind(key, kindStream, time.Now())
			if lerr != nil {
				return errValue(lerr)
			}
			if e == nil {
				continue
			}
			entries := e.stream.rangeEntries(from[j].Next(), maxStreamID, count)
			if len(entries) > 0 {
				out = append(out, resp.Arr(resp.Str(key), entriesValue(entries)))
			}
		}
		if len(out) > 0 {
			return resp.Arr(out...)
		}
		if blockMs < 0 {
			return resp.NilArray()
		}
		if !s.awaitKeys(keys, deadline) {
			return resp.NilArray()
		}
	}
}

func cmdXGroup(s *Server, args []string) resp.Value {
	sub := strings.ToUpper(args[0])
	now := time.Now()
	switch sub {
	case "CREATE":
		if len(args) < 4 {
			return resp.Err("ERR wrong number of arguments for 'xgroup' command")
		}
		key, groupName, idStr := args[1], args[2], args[3]
		mkstream := len(args) >= 5 && strings.EqualFold(args[4], "MKSTREAM")
		e, err := s.db.streamFor(key, mkstream, now)
		if err != nil {
			return errValue(err)
		}
		if e == nil {
			return resp.Err("ERR The XGROUP subcommand requires the key to exist. Note that for CREATE you may want to use the MKSTREAM option to create an empty stream automatically.")
		}
		st := e.stream
		if _, dup := st.groups[groupName]; dup {
			return resp.Err("BUSYGROUP Consumer Group name already exists")
		}
		var last StreamID
		if idStr == "$" {
			last = st.lastID
		} else {
			var perr error
			last, perr = parseStreamID(idStr, 0)
			if perr != nil {
				return errValue(perr)
			}
		}
		st.groups[groupName] = newGroup(last)
		return resp.OK
	case "DESTROY":
		if len(args) != 3 {
			return resp.Err("ERR wrong number of arguments for 'xgroup' command")
		}
		e, err := s.db.lookupKind(args[1], kindStream, now)
		if err != nil {
			return errValue(err)
		}
		if e == nil {
			return resp.Int(0)
		}
		if _, ok := e.stream.groups[args[2]]; !ok {
			return resp.Int(0)
		}
		delete(e.stream.groups, args[2])
		return resp.Int(1)
	case "CREATECONSUMER":
		if len(args) != 4 {
			return resp.Err("ERR wrong number of arguments for 'xgroup' command")
		}
		g, errv := lookupGroup(s, args[1], args[2], now)
		if errv != nil {
			return *errv
		}
		if _, exists := g.consumers[args[3]]; exists {
			return resp.Int(0)
		}
		g.consumerNamed(args[3], now)
		return resp.Int(1)
	case "DELCONSUMER":
		if len(args) != 4 {
			return resp.Err("ERR wrong number of arguments for 'xgroup' command")
		}
		g, errv := lookupGroup(s, args[1], args[2], now)
		if errv != nil {
			return *errv
		}
		c, exists := g.consumers[args[3]]
		if !exists {
			return resp.Int(0)
		}
		n := int64(len(c.pending))
		for id := range c.pending {
			delete(g.pending, id)
		}
		delete(g.consumers, args[3])
		return resp.Int(n)
	case "SETID":
		if len(args) != 4 {
			return resp.Err("ERR wrong number of arguments for 'xgroup' command")
		}
		g, errv := lookupGroup(s, args[1], args[2], now)
		if errv != nil {
			return *errv
		}
		var last StreamID
		if args[3] == "$" {
			e, _ := s.db.lookupKind(args[1], kindStream, now)
			last = e.stream.lastID
		} else {
			var perr error
			last, perr = parseStreamID(args[3], 0)
			if perr != nil {
				return errValue(perr)
			}
		}
		g.lastDelivered = last
		return resp.OK
	default:
		return resp.Errf("ERR Unknown XGROUP subcommand or wrong number of arguments for '%s'", args[0])
	}
}

// lookupGroup finds a stream consumer group or returns the appropriate error
// reply.
func lookupGroup(s *Server, key, groupName string, now time.Time) (*group, *resp.Value) {
	e, err := s.db.lookupKind(key, kindStream, now)
	if err != nil {
		v := errValue(err)
		return nil, &v
	}
	if e == nil {
		v := errNoGroup(key, groupName)
		return nil, &v
	}
	g, ok := e.stream.groups[groupName]
	if !ok {
		v := errNoGroup(key, groupName)
		return nil, &v
	}
	return g, nil
}

func cmdXReadGroup(s *Server, args []string) resp.Value {
	if !strings.EqualFold(args[0], "GROUP") {
		return resp.Err("ERR syntax error")
	}
	groupName, consumerName := args[1], args[2]
	count := 0
	blockMs := int64(-1)
	noack := false
	i := 3
	for i < len(args) {
		switch strings.ToUpper(args[i]) {
		case "COUNT":
			if i+1 >= len(args) {
				return resp.Err("ERR syntax error")
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			count = n
			i += 2
		case "BLOCK":
			if i+1 >= len(args) {
				return resp.Err("ERR syntax error")
			}
			n, err := strconv.ParseInt(args[i+1], 10, 64)
			if err != nil || n < 0 {
				return resp.Err("ERR timeout is not an integer or out of range")
			}
			blockMs = n
			i += 2
		case "NOACK":
			noack = true
			i++
		default:
			goto streams
		}
	}
streams:
	keys, idStrs, err := parseStreamsClause(args, i)
	if err != nil {
		return errValue(err)
	}

	wantNew := make([]bool, len(keys))
	replayFrom := make([]StreamID, len(keys))
	for j, idStr := range idStrs {
		if idStr == ">" {
			wantNew[j] = true
			continue
		}
		replayFrom[j], err = parseStreamID(idStr, 0)
		if err != nil {
			return errValue(err)
		}
	}

	var deadline time.Time
	if blockMs > 0 {
		deadline = time.Now().Add(time.Duration(blockMs) * time.Millisecond)
	}
	for {
		now := time.Now()
		var out []resp.Value
		anyNewRequested := false
		for j, key := range keys {
			g, errv := lookupGroup(s, key, groupName, now)
			if errv != nil {
				return *errv
			}
			e, _ := s.db.lookupKind(key, kindStream, now)
			st := e.stream
			c := g.consumerNamed(consumerName, now)
			if !wantNew[j] {
				// Replay this consumer's PEL from the given ID.
				var entries []streamEntry
				for _, id := range g.sortedPending(consumerName) {
					if id.Less(replayFrom[j].Next()) {
						continue
					}
					if se := st.entryAt(id); se != nil {
						entries = append(entries, *se)
					} else {
						entries = append(entries, streamEntry{id: id})
					}
					if count > 0 && len(entries) >= count {
						break
					}
				}
				out = append(out, resp.Arr(resp.Str(key), entriesValue(entries)))
				continue
			}
			anyNewRequested = true
			entries := st.rangeEntries(g.lastDelivered.Next(), maxStreamID, count)
			if len(entries) == 0 {
				continue
			}
			c.activeTime = now
			for _, se := range entries {
				g.lastDelivered = se.id
				g.entriesRead++
				if !noack {
					g.pending[se.id] = &pendingEntry{
						consumer:      consumerName,
						deliveryTime:  now,
						deliveryCount: 1,
					}
					c.pending[se.id] = struct{}{}
				}
			}
			out = append(out, resp.Arr(resp.Str(key), entriesValue(entries)))
		}
		if len(out) > 0 || !anyNewRequested {
			if len(out) == 0 {
				return resp.NilArray()
			}
			return resp.Arr(out...)
		}
		if blockMs < 0 {
			return resp.NilArray()
		}
		if !s.awaitKeys(keys, deadline) {
			return resp.NilArray()
		}
	}
}

func cmdXAck(s *Server, args []string) resp.Value {
	now := time.Now()
	g, errv := lookupGroup(s, args[0], args[1], now)
	if errv != nil {
		// Redis returns 0 for missing key/group on XACK.
		if strings.HasPrefix(errv.Str, "NOGROUP") {
			return resp.Int(0)
		}
		return *errv
	}
	var n int64
	for _, idStr := range args[2:] {
		id, err := parseStreamID(idStr, 0)
		if err != nil {
			return errValue(err)
		}
		pe, ok := g.pending[id]
		if !ok {
			continue
		}
		delete(g.pending, id)
		if c, ok := g.consumers[pe.consumer]; ok {
			delete(c.pending, id)
		}
		n++
	}
	return resp.Int(n)
}

func cmdXPending(s *Server, args []string) resp.Value {
	now := time.Now()
	g, errv := lookupGroup(s, args[0], args[1], now)
	if errv != nil {
		return *errv
	}
	if len(args) == 2 {
		// Summary form: [count, min-id, max-id, [[consumer, count]...]].
		if len(g.pending) == 0 {
			return resp.Arr(resp.Int(0), resp.Nil, resp.Nil, resp.NilArray())
		}
		ids := g.sortedPending("")
		perConsumer := map[string]int64{}
		for _, pe := range g.pending {
			perConsumer[pe.consumer]++
		}
		names := make([]string, 0, len(perConsumer))
		for name := range perConsumer {
			names = append(names, name)
		}
		sort.Strings(names)
		consumers := make([]resp.Value, len(names))
		for i, name := range names {
			consumers[i] = resp.Arr(resp.Str(name), resp.Str(strconv.FormatInt(perConsumer[name], 10)))
		}
		return resp.Arr(
			resp.Int(int64(len(g.pending))),
			resp.Str(ids[0].String()),
			resp.Str(ids[len(ids)-1].String()),
			resp.Arr(consumers...),
		)
	}

	// Extended form: [IDLE ms] start end count [consumer].
	i := 2
	var minIdle time.Duration
	if strings.EqualFold(args[i], "IDLE") {
		if i+1 >= len(args) {
			return resp.Err("ERR syntax error")
		}
		ms, err := strconv.ParseInt(args[i+1], 10, 64)
		if err != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
		minIdle = time.Duration(ms) * time.Millisecond
		i += 2
	}
	if len(args)-i < 3 {
		return resp.Err("ERR syntax error")
	}
	lo, hi, err := parseRangeBounds(args[i], args[i+1])
	if err != nil {
		return errValue(err)
	}
	count, cerr := strconv.Atoi(args[i+2])
	if cerr != nil || count < 0 {
		return resp.Err("ERR value is not an integer or out of range")
	}
	onlyConsumer := ""
	if len(args)-i == 4 {
		onlyConsumer = args[i+3]
	}
	var rows []resp.Value
	for _, id := range g.sortedPending(onlyConsumer) {
		if id.Less(lo) || hi.Less(id) {
			continue
		}
		pe := g.pending[id]
		idle := now.Sub(pe.deliveryTime)
		if idle < minIdle {
			continue
		}
		rows = append(rows, resp.Arr(
			resp.Str(id.String()),
			resp.Str(pe.consumer),
			resp.Int(int64(idle/time.Millisecond)),
			resp.Int(pe.deliveryCount),
		))
		if len(rows) >= count {
			break
		}
	}
	return resp.Arr(rows...)
}

func cmdXClaim(s *Server, args []string) resp.Value {
	now := time.Now()
	key, groupName, consumerName := args[0], args[1], args[2]
	minIdleMs, err := strconv.ParseInt(args[3], 10, 64)
	if err != nil {
		return resp.Err("ERR Invalid min-idle-time argument for XCLAIM")
	}
	g, errv := lookupGroup(s, key, groupName, now)
	if errv != nil {
		return *errv
	}
	e, _ := s.db.lookupKind(key, kindStream, now)
	justID := false
	var ids []StreamID
	for _, a := range args[4:] {
		if strings.EqualFold(a, "JUSTID") {
			justID = true
			continue
		}
		if strings.EqualFold(a, "FORCE") {
			continue // FORCE accepted; claimed entries must still exist below
		}
		id, perr := parseStreamID(a, 0)
		if perr != nil {
			return errValue(perr)
		}
		ids = append(ids, id)
	}
	dst := g.consumerNamed(consumerName, now)
	minIdle := time.Duration(minIdleMs) * time.Millisecond
	var out []resp.Value
	for _, id := range ids {
		pe, ok := g.pending[id]
		if !ok {
			continue
		}
		if now.Sub(pe.deliveryTime) < minIdle {
			continue
		}
		if prev, ok := g.consumers[pe.consumer]; ok {
			delete(prev.pending, id)
		}
		pe.consumer = consumerName
		pe.deliveryTime = now
		if !justID {
			pe.deliveryCount++
		}
		dst.pending[id] = struct{}{}
		se := e.stream.entryAt(id)
		if justID {
			out = append(out, resp.Str(id.String()))
		} else if se != nil {
			out = append(out, entryValue(*se))
		}
	}
	if len(out) > 0 {
		dst.activeTime = now
	}
	return resp.Arr(out...)
}

func cmdXAutoClaim(s *Server, args []string) resp.Value {
	now := time.Now()
	key, groupName, consumerName := args[0], args[1], args[2]
	minIdleMs, err := strconv.ParseInt(args[3], 10, 64)
	if err != nil {
		return resp.Err("ERR Invalid min-idle-time argument for XAUTOCLAIM")
	}
	start := StreamID{}
	if len(args) >= 5 {
		start, err = parseStreamID(args[4], 0)
		if err != nil {
			return errValue(err)
		}
	}
	count := 100
	justID := false
	for i := 5; i < len(args); i++ {
		switch strings.ToUpper(args[i]) {
		case "COUNT":
			if i+1 >= len(args) {
				return resp.Err("ERR syntax error")
			}
			count, err = strconv.Atoi(args[i+1])
			if err != nil || count <= 0 {
				return resp.Err("ERR value is not an integer or out of range")
			}
			i++
		case "JUSTID":
			justID = true
		default:
			return resp.Err("ERR syntax error")
		}
	}
	g, errv := lookupGroup(s, key, groupName, now)
	if errv != nil {
		return *errv
	}
	e, _ := s.db.lookupKind(key, kindStream, now)
	dst := g.consumerNamed(consumerName, now)
	minIdle := time.Duration(minIdleMs) * time.Millisecond

	var claimed []resp.Value
	var deletedIDs []resp.Value
	cursor := "0-0"
	ids := g.sortedPending("")
	for _, id := range ids {
		if id.Less(start) {
			continue
		}
		if len(claimed) >= count {
			cursor = id.String()
			break
		}
		pe := g.pending[id]
		if now.Sub(pe.deliveryTime) < minIdle {
			continue
		}
		se := e.stream.entryAt(id)
		if se == nil {
			// Entry deleted from the stream: drop from PEL, report in third
			// reply element (Redis 7 behaviour).
			if prev, ok := g.consumers[pe.consumer]; ok {
				delete(prev.pending, id)
			}
			delete(g.pending, id)
			deletedIDs = append(deletedIDs, resp.Str(id.String()))
			continue
		}
		if prev, ok := g.consumers[pe.consumer]; ok {
			delete(prev.pending, id)
		}
		pe.consumer = consumerName
		pe.deliveryTime = now
		if !justID {
			pe.deliveryCount++
		}
		dst.pending[id] = struct{}{}
		if justID {
			claimed = append(claimed, resp.Str(id.String()))
		} else {
			claimed = append(claimed, entryValue(*se))
		}
	}
	if len(claimed) > 0 {
		dst.activeTime = now
	}
	return resp.Arr(resp.Str(cursor), resp.Arr(claimed...), resp.Arr(deletedIDs...))
}

func cmdXDel(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindStream, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	ids := make([]StreamID, 0, len(args)-1)
	for _, idStr := range args[1:] {
		id, perr := parseStreamID(idStr, 0)
		if perr != nil {
			return errValue(perr)
		}
		ids = append(ids, id)
	}
	return resp.Int(e.stream.delete(ids))
}

func cmdXTrim(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindStream, time.Now())
	if err != nil {
		return errValue(err)
	}
	i := 1
	if !strings.EqualFold(args[i], "MAXLEN") {
		return resp.Err("ERR syntax error")
	}
	i++
	if i < len(args) && (args[i] == "~" || args[i] == "=") {
		i++
	}
	if i >= len(args) {
		return resp.Err("ERR syntax error")
	}
	n, cerr := strconv.ParseInt(args[i], 10, 64)
	if cerr != nil || n < 0 {
		return resp.Err("ERR value is not an integer or out of range")
	}
	if e == nil {
		return resp.Int(0)
	}
	return resp.Int(e.stream.trimMaxLen(n))
}

func cmdXInfo(s *Server, args []string) resp.Value {
	now := time.Now()
	sub := strings.ToUpper(args[0])
	switch sub {
	case "STREAM":
		if len(args) != 2 {
			return resp.Err("ERR wrong number of arguments for 'xinfo' command")
		}
		e, err := s.db.lookupKind(args[1], kindStream, now)
		if err != nil {
			return errValue(err)
		}
		if e == nil {
			return resp.Err("ERR no such key")
		}
		st := e.stream
		return resp.Arr(
			resp.Str("length"), resp.Int(int64(len(st.entries))),
			resp.Str("last-generated-id"), resp.Str(st.lastID.String()),
			resp.Str("max-deleted-entry-id"), resp.Str(st.maxDeleted.String()),
			resp.Str("entries-added"), resp.Int(st.added),
			resp.Str("groups"), resp.Int(int64(len(st.groups))),
		)
	case "GROUPS":
		if len(args) != 2 {
			return resp.Err("ERR wrong number of arguments for 'xinfo' command")
		}
		e, err := s.db.lookupKind(args[1], kindStream, now)
		if err != nil {
			return errValue(err)
		}
		if e == nil {
			return resp.Err("ERR no such key")
		}
		names := make([]string, 0, len(e.stream.groups))
		for name := range e.stream.groups {
			names = append(names, name)
		}
		sort.Strings(names)
		rows := make([]resp.Value, len(names))
		for i, name := range names {
			g := e.stream.groups[name]
			rows[i] = resp.Arr(
				resp.Str("name"), resp.Str(name),
				resp.Str("consumers"), resp.Int(int64(len(g.consumers))),
				resp.Str("pending"), resp.Int(int64(len(g.pending))),
				resp.Str("last-delivered-id"), resp.Str(g.lastDelivered.String()),
				resp.Str("entries-read"), resp.Int(g.entriesRead),
			)
		}
		return resp.Arr(rows...)
	case "CONSUMERS":
		if len(args) != 3 {
			return resp.Err("ERR wrong number of arguments for 'xinfo' command")
		}
		g, errv := lookupGroup(s, args[1], args[2], now)
		if errv != nil {
			return *errv
		}
		names := make([]string, 0, len(g.consumers))
		for name := range g.consumers {
			names = append(names, name)
		}
		sort.Strings(names)
		rows := make([]resp.Value, len(names))
		for i, name := range names {
			c := g.consumers[name]
			rows[i] = resp.Arr(
				resp.Str("name"), resp.Str(name),
				resp.Str("pending"), resp.Int(int64(len(c.pending))),
				resp.Str("idle"), resp.Int(int64(now.Sub(c.seenTime)/time.Millisecond)),
				resp.Str("inactive"), resp.Int(int64(now.Sub(c.activeTime)/time.Millisecond)),
			)
		}
		return resp.Arr(rows...)
	default:
		return resp.Errf("ERR Unknown XINFO subcommand or wrong number of arguments for '%s'", args[0])
	}
}

func cmdXSetID(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindStream, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Err("ERR The XSETID command requires the key to exist.")
	}
	id, perr := parseStreamID(args[1], 0)
	if perr != nil {
		return errValue(perr)
	}
	e.stream.lastID = id
	return resp.OK
}
