package miniredis

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/resp"
)

// Compound commands: server-side transactions purpose-built for the engine's
// exactly-once machinery. Every command dispatches under the one server lock
// (see Server.dispatch), so each compound below is atomic with respect to all
// other commands — the fence ledger record and the mutation it guards either
// both happen or neither does, which is the property the client-side
// two-round-trip sequences could not give.
//
//	FENCEAPPLY hash ledgerField SET field value   -> [applied, nil]
//	FENCEAPPLY hash ledgerField DEL field         -> [applied, nil]
//	FENCEAPPLY hash ledgerField INCR field delta  -> [applied, value]
//	FENCEXACK stream group consumer pendingKey direct [id weight]...
//	                                              -> [acked, dec, newPending]
//	SINKAPPEND hash ledgerField ncmds (n argv...)... -> applied
//
// All three validate their full argument block before mutating anything, so a
// malformed request leaves the store untouched.
func init() {
	register("FENCEAPPLY", 4, 5, cmdFenceApply)
	register("FENCEXACK", 5, -1, cmdFenceXAck)
	register("SINKAPPEND", 3, -1, cmdSinkAppend)
}

// ledgerRecord bumps the applied-ledger field in hash e and reports whether
// this call was the first record (the mutation must be applied) or a
// duplicate (it must be skipped).
func ledgerRecord(e *entry, ledgerField string) (first bool, errv *resp.Value) {
	var cnt int64
	if v, ok := e.hash[ledgerField]; ok {
		var err error
		if cnt, err = strconv.ParseInt(v, 10, 64); err != nil {
			v := resp.Err("ERR fence ledger value is not an integer")
			return false, &v
		}
	}
	e.hash[ledgerField] = strconv.FormatInt(cnt+1, 10)
	return cnt == 0, nil
}

// cmdFenceApply is fence-check + ledger record + one hash mutation in a
// single atomic step. The reply is a two-element array: applied (1 when the
// mutation ran, 0 when the ledger already held a record and it was skipped)
// and, for INCR, the field's current value either way (nil for SET/DEL).
func cmdFenceApply(s *Server, args []string) resp.Value {
	hashKey, ledgerField, op := args[0], args[1], strings.ToUpper(args[2])
	var field string
	var delta int64
	switch op {
	case "SET":
		if len(args) != 5 {
			return resp.Err("ERR wrong number of arguments for 'fenceapply' SET")
		}
		field = args[3]
	case "DEL":
		if len(args) != 4 {
			return resp.Err("ERR wrong number of arguments for 'fenceapply' DEL")
		}
		field = args[3]
	case "INCR":
		if len(args) != 5 {
			return resp.Err("ERR wrong number of arguments for 'fenceapply' INCR")
		}
		field = args[3]
		var err error
		if delta, err = strconv.ParseInt(args[4], 10, 64); err != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
	default:
		return resp.Errf("ERR FENCEAPPLY unsupported op '%s'", args[2])
	}

	e, err := s.db.hashFor(hashKey, time.Now())
	if err != nil {
		return errValue(err)
	}
	// INCR must be able to report the current value on both branches, so
	// parse it before recording the ledger.
	var cur int64
	if op == "INCR" {
		if v, ok := e.hash[field]; ok {
			if cur, err = strconv.ParseInt(v, 10, 64); err != nil {
				return resp.Err("ERR hash value is not an integer")
			}
		}
	}
	first, errv := ledgerRecord(e, ledgerField)
	if errv != nil {
		return *errv
	}
	if !first {
		// Duplicate execution: the ledger shows the mutation already applied.
		if op == "INCR" {
			return resp.Arr(resp.Int(0), resp.Int(cur))
		}
		return resp.Arr(resp.Int(0), resp.Nil)
	}
	switch op {
	case "SET":
		e.hash[field] = args[4]
		s.notifyKey(hashKey)
		return resp.Arr(resp.Int(1), resp.Nil)
	case "DEL":
		delete(e.hash, field)
		return resp.Arr(resp.Int(1), resp.Nil)
	default: // INCR
		cur += delta
		e.hash[field] = strconv.FormatInt(cur, 10)
		s.notifyKey(hashKey)
		return resp.Arr(resp.Int(1), resp.Int(cur))
	}
}

// cmdFenceXAck acknowledges stream entries *owned by the named consumer* and
// applies their pending-counter weights plus a direct decrement, all in one
// step. Entries pending under another consumer (reclaimed while this worker
// stalled) are left untouched and contribute nothing to the decrement, so a
// stale worker can never release live work it no longer owns. The reply is
// [acked, dec, newPending].
func cmdFenceXAck(s *Server, args []string) resp.Value {
	stream, groupName, consumer, pendingKey := args[0], args[1], args[2], args[3]
	direct, err := strconv.ParseInt(args[4], 10, 64)
	if err != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	rest := args[5:]
	if len(rest)%2 != 0 {
		return resp.Err("ERR wrong number of arguments for 'fencexack' command")
	}
	ids := make([]StreamID, 0, len(rest)/2)
	weights := make([]int64, 0, len(rest)/2)
	for i := 0; i < len(rest); i += 2 {
		id, perr := parseStreamID(rest[i], 0)
		if perr != nil {
			return errValue(perr)
		}
		w, werr := strconv.ParseInt(rest[i+1], 10, 64)
		if werr != nil || w < 0 {
			return resp.Err("ERR value is not an integer or out of range")
		}
		ids = append(ids, id)
		weights = append(weights, w)
	}

	now := time.Now()
	var acked, dec int64
	g, errv := lookupGroup(s, stream, groupName, now)
	if errv != nil {
		// Like XACK, a missing key/group acks nothing — but the direct
		// decrement still applies (it covers work outside the stream).
		if !strings.HasPrefix(errv.Str, "NOGROUP") {
			return *errv
		}
	}
	if g != nil {
		for i, id := range ids {
			pe, ok := g.pending[id]
			if !ok || pe.consumer != consumer {
				continue
			}
			delete(g.pending, id)
			if c, ok := g.consumers[pe.consumer]; ok {
				delete(c.pending, id)
			}
			acked++
			dec += weights[i]
		}
	}
	dec += direct

	var newPending int64
	if dec != 0 {
		v := addToString(s, pendingKey, -dec)
		if v.Type == resp.Error {
			return v
		}
		newPending = v.Int
	} else {
		e, lerr := s.db.lookupKind(pendingKey, kindString, now)
		if lerr != nil {
			return errValue(lerr)
		}
		if e != nil {
			if newPending, err = strconv.ParseInt(e.str, 10, 64); err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
		}
	}
	return resp.Arr(resp.Int(acked), resp.Int(dec), resp.Int(newPending))
}

// sinkCmd is one validated SINKAPPEND subcommand.
type sinkCmd struct {
	op    string // XADD | RPUSH | INCRBY
	key   string
	args  []string // XADD fields / RPUSH values
	delta int64    // INCRBY
}

// cmdSinkAppend is the fenced transactional append: record the applied-ledger
// field in the state hash and enqueue a whole output batch — pending-counter
// increment, stream entries, private-list pushes — as one atomic step. A
// duplicate (ledger already recorded) applies nothing and replies 0. The
// whole block is validated, including key types, before any mutation, so a
// bad request cannot leave a half-applied batch.
func cmdSinkAppend(s *Server, args []string) resp.Value {
	ledgerKey, ledgerField := args[0], args[1]
	ncmds, err := strconv.Atoi(args[2])
	if err != nil || ncmds < 0 {
		return resp.Err("ERR value is not an integer or out of range")
	}
	now := time.Now()

	// Parse + validate every subcommand upfront.
	if _, lerr := s.db.lookupKind(ledgerKey, kindHash, now); lerr != nil {
		return errValue(lerr)
	}
	cmds := make([]sinkCmd, 0, ncmds)
	i := 3
	for c := 0; c < ncmds; c++ {
		if i >= len(args) {
			return resp.Err("ERR SINKAPPEND malformed command block")
		}
		n, nerr := strconv.Atoi(args[i])
		if nerr != nil || n < 1 || i+1+n > len(args) {
			return resp.Err("ERR SINKAPPEND malformed command block")
		}
		argv := args[i+1 : i+1+n]
		i += 1 + n
		op := strings.ToUpper(argv[0])
		switch op {
		case "XADD":
			// Only the auto-ID form the transport emits is supported.
			if n < 5 || argv[2] != "*" || (n-3)%2 != 0 {
				return resp.Err("ERR SINKAPPEND malformed XADD")
			}
			if _, lerr := s.db.lookupKind(argv[1], kindStream, now); lerr != nil {
				return errValue(lerr)
			}
			cmds = append(cmds, sinkCmd{op: op, key: argv[1], args: argv[3:]})
		case "RPUSH":
			if n < 3 {
				return resp.Err("ERR SINKAPPEND malformed RPUSH")
			}
			if _, lerr := s.db.lookupKind(argv[1], kindList, now); lerr != nil {
				return errValue(lerr)
			}
			cmds = append(cmds, sinkCmd{op: op, key: argv[1], args: argv[2:]})
		case "INCRBY":
			if n != 3 {
				return resp.Err("ERR SINKAPPEND malformed INCRBY")
			}
			delta, derr := strconv.ParseInt(argv[2], 10, 64)
			if derr != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			e, lerr := s.db.lookupKind(argv[1], kindString, now)
			if lerr != nil {
				return errValue(lerr)
			}
			if e != nil {
				if _, perr := strconv.ParseInt(e.str, 10, 64); perr != nil {
					return resp.Err("ERR value is not an integer or out of range")
				}
			}
			cmds = append(cmds, sinkCmd{op: op, key: argv[1], delta: delta})
		default:
			return resp.Errf("ERR SINKAPPEND unsupported subcommand '%s'", argv[0])
		}
	}
	if i != len(args) {
		return resp.Err("ERR SINKAPPEND malformed command block")
	}

	// Gate on the applied ledger, then apply the whole batch.
	e, herr := s.db.hashFor(ledgerKey, now)
	if herr != nil {
		return errValue(herr)
	}
	first, errv := ledgerRecord(e, ledgerField)
	if errv != nil {
		return *errv
	}
	if !first {
		return resp.Int(0)
	}
	for _, c := range cmds {
		switch c.op {
		case "XADD":
			se, _ := s.db.streamFor(c.key, true, now)
			st := se.stream
			st.add(st.nextAutoID(now), append([]string(nil), c.args...))
			s.notifyKey(c.key)
		case "RPUSH":
			le, _ := s.db.listFor(c.key, now)
			le.list = append(le.list, c.args...)
			s.notifyKey(c.key)
		default: // INCRBY
			if v := addToString(s, c.key, c.delta); v.Type == resp.Error {
				return v // unreachable after validation; defensive
			}
		}
	}
	return resp.Int(1)
}
