package miniredis

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/resp"
)

func init() {
	register("HSET", 3, -1, cmdHSet)
	register("HGET", 2, 2, cmdHGet)
	register("HDEL", 2, -1, cmdHDel)
	register("HGETALL", 1, 1, cmdHGetAll)
	register("HLEN", 1, 1, cmdHLen)
	register("HEXISTS", 2, 2, cmdHExists)
	register("HINCRBY", 3, 3, cmdHIncrBy)
	register("HKEYS", 1, 1, cmdHKeys)
	register("HVALS", 1, 1, cmdHVals)
	register("HMGET", 2, -1, cmdHMGet)

	register("SADD", 2, -1, cmdSAdd)
	register("SREM", 2, -1, cmdSRem)
	register("SISMEMBER", 2, 2, cmdSIsMember)
	register("SMEMBERS", 1, 1, cmdSMembers)
	register("SCARD", 1, 1, cmdSCard)
}

func (d *db) hashFor(key string, now time.Time) (*entry, error) {
	e, err := d.lookupKind(key, kindHash, now)
	if err != nil || e != nil {
		return e, err
	}
	e = &entry{kind: kindHash, hash: make(map[string]string)}
	d.keys[key] = e
	return e, nil
}

func cmdHSet(s *Server, args []string) resp.Value {
	if (len(args)-1)%2 != 0 {
		return resp.Err("ERR wrong number of arguments for 'hset' command")
	}
	e, err := s.db.hashFor(args[0], time.Now())
	if err != nil {
		return errValue(err)
	}
	var added int64
	for i := 1; i < len(args); i += 2 {
		if _, ok := e.hash[args[i]]; !ok {
			added++
		}
		e.hash[args[i]] = args[i+1]
	}
	s.notifyKey(args[0])
	return resp.Int(added)
}

func cmdHGet(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Nil
	}
	v, ok := e.hash[args[1]]
	if !ok {
		return resp.Nil
	}
	return resp.Str(v)
}

func cmdHDel(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	var n int64
	for _, f := range args[1:] {
		if _, ok := e.hash[f]; ok {
			delete(e.hash, f)
			n++
		}
	}
	if len(e.hash) == 0 {
		delete(s.db.keys, args[0])
	}
	return resp.Int(n)
}

func sortedHashFields(h map[string]string) []string {
	fields := make([]string, 0, len(h))
	for f := range h {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}

func cmdHGetAll(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Arr()
	}
	out := make([]resp.Value, 0, 2*len(e.hash))
	for _, f := range sortedHashFields(e.hash) {
		out = append(out, resp.Str(f), resp.Str(e.hash[f]))
	}
	return resp.Arr(out...)
}

func cmdHLen(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	return resp.Int(int64(len(e.hash)))
}

func cmdHExists(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	if _, ok := e.hash[args[1]]; ok {
		return resp.Int(1)
	}
	return resp.Int(0)
}

func cmdHIncrBy(s *Server, args []string) resp.Value {
	delta, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	e, lerr := s.db.hashFor(args[0], time.Now())
	if lerr != nil {
		return errValue(lerr)
	}
	var cur int64
	if v, ok := e.hash[args[1]]; ok {
		cur, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			return resp.Err("ERR hash value is not an integer")
		}
	}
	cur += delta
	e.hash[args[1]] = strconv.FormatInt(cur, 10)
	return resp.Int(cur)
}

func cmdHKeys(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Arr()
	}
	return resp.StrArray(sortedHashFields(e.hash)...)
}

func cmdHVals(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Arr()
	}
	vals := make([]string, 0, len(e.hash))
	for _, f := range sortedHashFields(e.hash) {
		vals = append(vals, e.hash[f])
	}
	return resp.StrArray(vals...)
}

func cmdHMGet(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindHash, time.Now())
	if err != nil {
		return errValue(err)
	}
	out := make([]resp.Value, len(args)-1)
	for i, f := range args[1:] {
		if e == nil {
			out[i] = resp.Nil
			continue
		}
		if v, ok := e.hash[f]; ok {
			out[i] = resp.Str(v)
		} else {
			out[i] = resp.Nil
		}
	}
	return resp.Arr(out...)
}

func (d *db) setFor(key string, now time.Time) (*entry, error) {
	e, err := d.lookupKind(key, kindSet, now)
	if err != nil || e != nil {
		return e, err
	}
	e = &entry{kind: kindSet, set: make(map[string]struct{})}
	d.keys[key] = e
	return e, nil
}

func cmdSAdd(s *Server, args []string) resp.Value {
	e, err := s.db.setFor(args[0], time.Now())
	if err != nil {
		return errValue(err)
	}
	var n int64
	for _, m := range args[1:] {
		if _, ok := e.set[m]; !ok {
			e.set[m] = struct{}{}
			n++
		}
	}
	s.notifyKey(args[0])
	return resp.Int(n)
}

func cmdSRem(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindSet, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	var n int64
	for _, m := range args[1:] {
		if _, ok := e.set[m]; ok {
			delete(e.set, m)
			n++
		}
	}
	if len(e.set) == 0 {
		delete(s.db.keys, args[0])
	}
	return resp.Int(n)
}

func cmdSIsMember(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindSet, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	if _, ok := e.set[args[1]]; ok {
		return resp.Int(1)
	}
	return resp.Int(0)
}

func cmdSMembers(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindSet, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Arr()
	}
	members := make([]string, 0, len(e.set))
	for m := range e.set {
		members = append(members, m)
	}
	sort.Strings(members)
	return resp.StrArray(members...)
}

func cmdSCard(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindSet, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	return resp.Int(int64(len(e.set)))
}
