package miniredis

import (
	"strconv"
	"time"

	"repro/internal/resp"
)

func init() {
	register("LPUSH", 2, -1, cmdLPush)
	register("RPUSH", 2, -1, cmdRPush)
	register("LPOP", 1, 2, cmdLPop)
	register("RPOP", 1, 2, cmdRPop)
	register("LLEN", 1, 1, cmdLLen)
	register("LRANGE", 3, 3, cmdLRange)
	register("LINDEX", 2, 2, cmdLIndex)
	register("LTRIM", 3, 3, cmdLTrim)
	register("BLPOP", 2, -1, cmdBLPop)
	register("BRPOP", 2, -1, cmdBRPop)
}

func (d *db) listFor(key string, now time.Time) (*entry, error) {
	e, err := d.lookupKind(key, kindList, now)
	if err != nil || e != nil {
		return e, err
	}
	e = &entry{kind: kindList}
	d.keys[key] = e
	return e, nil
}

func push(s *Server, args []string, left bool) resp.Value {
	e, err := s.db.listFor(args[0], time.Now())
	if err != nil {
		return errValue(err)
	}
	for _, v := range args[1:] {
		if left {
			e.list = append([]string{v}, e.list...)
		} else {
			e.list = append(e.list, v)
		}
	}
	s.notifyKey(args[0])
	return resp.Int(int64(len(e.list)))
}

func cmdLPush(s *Server, args []string) resp.Value { return push(s, args, true) }
func cmdRPush(s *Server, args []string) resp.Value { return push(s, args, false) }

func pop(s *Server, args []string, left bool) resp.Value {
	e, err := s.db.lookupKind(args[0], kindList, time.Now())
	if err != nil {
		return errValue(err)
	}
	count := 1
	withCount := len(args) == 2
	if withCount {
		count, err = strconv.Atoi(args[1])
		if err != nil || count < 0 {
			return resp.Err("ERR value is out of range, must be positive")
		}
	}
	if e == nil || len(e.list) == 0 {
		if withCount {
			return resp.NilArray()
		}
		return resp.Nil
	}
	if count > len(e.list) {
		count = len(e.list)
	}
	popped := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if left {
			popped = append(popped, e.list[0])
			e.list = e.list[1:]
		} else {
			popped = append(popped, e.list[len(e.list)-1])
			e.list = e.list[:len(e.list)-1]
		}
	}
	if len(e.list) == 0 {
		delete(s.db.keys, args[0])
	}
	if withCount {
		return resp.StrArray(popped...)
	}
	return resp.Str(popped[0])
}

func cmdLPop(s *Server, args []string) resp.Value { return pop(s, args, true) }
func cmdRPop(s *Server, args []string) resp.Value { return pop(s, args, false) }

func cmdLLen(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindList, time.Now())
	if err != nil {
		return errValue(err)
	}
	if e == nil {
		return resp.Int(0)
	}
	return resp.Int(int64(len(e.list)))
}

// clampRange resolves Redis start/stop (possibly negative) indices against a
// list of length n, returning an empty=false range [i, j] inclusive.
func clampRange(start, stop, n int) (int, int, bool) {
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || start >= n {
		return 0, 0, false
	}
	return start, stop, true
}

func cmdLRange(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindList, time.Now())
	if err != nil {
		return errValue(err)
	}
	start, err1 := strconv.Atoi(args[1])
	stop, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	if e == nil {
		return resp.Arr()
	}
	i, j, ok := clampRange(start, stop, len(e.list))
	if !ok {
		return resp.Arr()
	}
	return resp.StrArray(e.list[i : j+1]...)
}

func cmdLIndex(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindList, time.Now())
	if err != nil {
		return errValue(err)
	}
	idx, cerr := strconv.Atoi(args[1])
	if cerr != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	if e == nil {
		return resp.Nil
	}
	if idx < 0 {
		idx += len(e.list)
	}
	if idx < 0 || idx >= len(e.list) {
		return resp.Nil
	}
	return resp.Str(e.list[idx])
}

func cmdLTrim(s *Server, args []string) resp.Value {
	e, err := s.db.lookupKind(args[0], kindList, time.Now())
	if err != nil {
		return errValue(err)
	}
	start, err1 := strconv.Atoi(args[1])
	stop, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	if e == nil {
		return resp.OK
	}
	i, j, ok := clampRange(start, stop, len(e.list))
	if !ok {
		delete(s.db.keys, args[0])
		return resp.OK
	}
	e.list = append([]string(nil), e.list[i:j+1]...)
	return resp.OK
}

func blockingPop(s *Server, args []string, left bool) resp.Value {
	keys := args[:len(args)-1]
	secs, err := strconv.ParseFloat(args[len(args)-1], 64)
	if err != nil || secs < 0 {
		return resp.Err("ERR timeout is not a float or out of range")
	}
	var deadline time.Time
	if secs > 0 {
		deadline = time.Now().Add(time.Duration(secs * float64(time.Second)))
	}
	for {
		for _, key := range keys {
			e, err := s.db.lookupKind(key, kindList, time.Now())
			if err != nil {
				return errValue(err)
			}
			if e == nil || len(e.list) == 0 {
				continue
			}
			var v string
			if left {
				v, e.list = e.list[0], e.list[1:]
			} else {
				v, e.list = e.list[len(e.list)-1], e.list[:len(e.list)-1]
			}
			if len(e.list) == 0 {
				delete(s.db.keys, key)
			}
			return resp.StrArray(key, v)
		}
		if !s.awaitKeys(keys, deadline) {
			return resp.NilArray()
		}
	}
}

func cmdBLPop(s *Server, args []string) resp.Value { return blockingPop(s, args, true) }
func cmdBRPop(s *Server, args []string) resp.Value { return blockingPop(s, args, false) }
