package miniredis_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
)

// newPair starts a server and a client against it, with cleanup registered.
func newPair(t *testing.T) (*miniredis.Server, *redisclient.Client) {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	cl := redisclient.Dial(srv.Addr())
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return srv, cl
}

func mustInt(t *testing.T, got int64, err error, want int64, what string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if got != want {
		t.Fatalf("%s: got %d want %d", what, got, want)
	}
}

func TestPingEcho(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Do("ECHO", "hello world")
	if err != nil || v.Str != "hello world" {
		t.Fatalf("ECHO: %q %v", v.Str, err)
	}
}

func TestStringCommands(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.Set("k", "v1"); err != nil {
		t.Fatal(err)
	}
	s, ok, err := cl.Get("k")
	if err != nil || !ok || s != "v1" {
		t.Fatalf("GET: %q %v %v", s, ok, err)
	}
	_, ok, err = cl.Get("missing")
	if err != nil || ok {
		t.Fatalf("GET missing: ok=%v err=%v", ok, err)
	}
	n, err := cl.Incr("ctr")
	mustInt(t, n, err, 1, "INCR fresh")
	n, err = cl.IncrBy("ctr", 41)
	mustInt(t, n, err, 42, "INCRBY")
	n, err = cl.DoInt("DECRBY", "ctr", "2")
	mustInt(t, n, err, 40, "DECRBY")
	n, err = cl.DoInt("APPEND", "k", "-more")
	mustInt(t, n, err, int64(len("v1-more")), "APPEND")
	n, err = cl.DoInt("STRLEN", "k")
	mustInt(t, n, err, int64(len("v1-more")), "STRLEN")

	// MSET/MGET round trip including a hole.
	if _, err := cl.Do("MSET", "a", "1", "b", "2"); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Do("MGET", "a", "nope", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Array) != 3 || v.Array[0].Str != "1" || !v.Array[1].IsNull() || v.Array[2].Str != "2" {
		t.Fatalf("MGET: %+v", v)
	}
}

func TestSetNXAndXXOptions(t *testing.T) {
	_, cl := newPair(t)
	v, err := cl.Do("SET", "k", "a", "NX")
	if err != nil || v.Str != "OK" {
		t.Fatalf("SET NX fresh: %+v %v", v, err)
	}
	v, err = cl.Do("SET", "k", "b", "NX")
	if err != nil || !v.IsNull() {
		t.Fatalf("SET NX existing should be nil: %+v %v", v, err)
	}
	v, err = cl.Do("SET", "other", "x", "XX")
	if err != nil || !v.IsNull() {
		t.Fatalf("SET XX missing should be nil: %+v %v", v, err)
	}
}

func TestWrongTypeErrors(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.Set("str", "x"); err != nil {
		t.Fatal(err)
	}
	_, err := cl.RPush("str", "a")
	var se redisclient.ServerError
	if !errors.As(err, &se) || !strings.HasPrefix(string(se), "WRONGTYPE") {
		t.Fatalf("expected WRONGTYPE, got %v", err)
	}
}

func TestListCommands(t *testing.T) {
	_, cl := newPair(t)
	n, err := cl.RPush("q", "a", "b", "c")
	mustInt(t, n, err, 3, "RPUSH")
	n, err = cl.LPush("q", "z")
	mustInt(t, n, err, 4, "LPUSH")
	n, err = cl.LLen("q")
	mustInt(t, n, err, 4, "LLEN")

	v, err := cl.Do("LRANGE", "q", "0", "-1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"z", "a", "b", "c"}
	for i, w := range want {
		if v.Array[i].Str != w {
			t.Fatalf("LRANGE[%d]=%q want %q", i, v.Array[i].Str, w)
		}
	}
	s, ok, err := cl.LPop("q")
	if err != nil || !ok || s != "z" {
		t.Fatalf("LPOP: %q %v %v", s, ok, err)
	}
	s, ok, err = cl.DoString("RPOP", "q")
	if err != nil || !ok || s != "c" {
		t.Fatalf("RPOP: %q %v %v", s, ok, err)
	}
	s, ok, err = cl.DoString("LINDEX", "q", "-1")
	if err != nil || !ok || s != "b" {
		t.Fatalf("LINDEX: %q %v %v", s, ok, err)
	}
	if _, err := cl.Do("LTRIM", "q", "0", "0"); err != nil {
		t.Fatal(err)
	}
	n, err = cl.LLen("q")
	mustInt(t, n, err, 1, "LLEN after LTRIM")
	// Popping the last element removes the key.
	if _, _, err := cl.LPop("q"); err != nil {
		t.Fatal(err)
	}
	n, err = cl.DoInt("EXISTS", "q")
	mustInt(t, n, err, 0, "EXISTS after drain")
}

func TestBLPopImmediate(t *testing.T) {
	_, cl := newPair(t)
	if _, err := cl.RPush("q", "x"); err != nil {
		t.Fatal(err)
	}
	key, val, ok, err := cl.BLPop(time.Second, "q")
	if err != nil || !ok || key != "q" || val != "x" {
		t.Fatalf("BLPOP: %q %q %v %v", key, val, ok, err)
	}
}

func TestBLPopBlocksUntilPush(t *testing.T) {
	srv, cl := newPair(t)
	pusher := redisclient.Dial(srv.Addr())
	defer pusher.Close()

	done := make(chan string, 1)
	go func() {
		_, val, ok, err := cl.BLPop(5*time.Second, "q")
		if err != nil || !ok {
			done <- "error"
			return
		}
		done <- val
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := pusher.RPush("q", "late"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "late" {
			t.Fatalf("BLPOP woke with %q", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("BLPOP did not wake")
	}
}

func TestBLPopTimesOut(t *testing.T) {
	_, cl := newPair(t)
	start := time.Now()
	_, _, ok, err := cl.BLPop(80*time.Millisecond, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("BLPOP returned a value from an empty list")
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("BLPOP returned too quickly: %v", elapsed)
	}
}

func TestHashCommands(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.HSet("h", "f1", "v1", "f2", "v2"); err != nil {
		t.Fatal(err)
	}
	all, err := cl.HGetAll("h")
	if err != nil || len(all) != 2 || all["f1"] != "v1" || all["f2"] != "v2" {
		t.Fatalf("HGETALL: %v %v", all, err)
	}
	s, ok, err := cl.DoString("HGET", "h", "f1")
	if err != nil || !ok || s != "v1" {
		t.Fatalf("HGET: %q %v %v", s, ok, err)
	}
	n, err := cl.DoInt("HLEN", "h")
	mustInt(t, n, err, 2, "HLEN")
	n, err = cl.DoInt("HEXISTS", "h", "f2")
	mustInt(t, n, err, 1, "HEXISTS")
	n, err = cl.DoInt("HINCRBY", "h", "count", "5")
	mustInt(t, n, err, 5, "HINCRBY fresh")
	n, err = cl.DoInt("HDEL", "h", "f1", "f9")
	mustInt(t, n, err, 1, "HDEL")
	v, err := cl.Do("HMGET", "h", "f2", "gone")
	if err != nil || v.Array[0].Str != "v2" || !v.Array[1].IsNull() {
		t.Fatalf("HMGET: %+v %v", v, err)
	}
}

func TestSetCommands(t *testing.T) {
	_, cl := newPair(t)
	n, err := cl.DoInt("SADD", "s", "a", "b", "a")
	mustInt(t, n, err, 2, "SADD")
	n, err = cl.DoInt("SCARD", "s")
	mustInt(t, n, err, 2, "SCARD")
	n, err = cl.DoInt("SISMEMBER", "s", "a")
	mustInt(t, n, err, 1, "SISMEMBER present")
	n, err = cl.DoInt("SREM", "s", "a")
	mustInt(t, n, err, 1, "SREM")
	v, err := cl.Do("SMEMBERS", "s")
	if err != nil || len(v.Array) != 1 || v.Array[0].Str != "b" {
		t.Fatalf("SMEMBERS: %+v %v", v, err)
	}
}

func TestGenericCommands(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.Set("one", "1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set("two", "2"); err != nil {
		t.Fatal(err)
	}
	n, err := cl.DoInt("EXISTS", "one", "two", "three")
	mustInt(t, n, err, 2, "EXISTS multi")
	v, err := cl.Do("TYPE", "one")
	if err != nil || v.Str != "string" {
		t.Fatalf("TYPE: %+v %v", v, err)
	}
	v, err = cl.Do("KEYS", "*")
	if err != nil || len(v.Array) != 2 {
		t.Fatalf("KEYS: %+v %v", v, err)
	}
	n, err = cl.DoInt("DEL", "one", "nope")
	mustInt(t, n, err, 1, "DEL")
	n, err = cl.DoInt("DBSIZE")
	mustInt(t, n, err, 1, "DBSIZE")
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	n, err = cl.DoInt("DBSIZE")
	mustInt(t, n, err, 0, "DBSIZE after FLUSHALL")
}

func TestExpiry(t *testing.T) {
	_, cl := newPair(t)
	if err := cl.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	n, err := cl.DoInt("PEXPIRE", "k", "40")
	mustInt(t, n, err, 1, "PEXPIRE")
	n, err = cl.DoInt("PTTL", "k")
	if err != nil || n <= 0 || n > 40 {
		t.Fatalf("PTTL: %d %v", n, err)
	}
	time.Sleep(60 * time.Millisecond)
	_, ok, err := cl.Get("k")
	if err != nil || ok {
		t.Fatalf("expired key still visible: ok=%v err=%v", ok, err)
	}
	// TTL of missing key is -2; of a persistent key is -1.
	n, err = cl.DoInt("TTL", "k")
	mustInt(t, n, err, -2, "TTL missing")
	if err := cl.Set("p", "v"); err != nil {
		t.Fatal(err)
	}
	n, err = cl.DoInt("TTL", "p")
	mustInt(t, n, err, -1, "TTL persistent")
}

func TestUnknownCommandAndArity(t *testing.T) {
	_, cl := newPair(t)
	_, err := cl.Do("NOSUCHCMD")
	var se redisclient.ServerError
	if !errors.As(err, &se) || !strings.Contains(string(se), "unknown command") {
		t.Fatalf("unknown command: %v", err)
	}
	_, err = cl.Do("GET")
	if !errors.As(err, &se) || !strings.Contains(string(se), "wrong number of arguments") {
		t.Fatalf("arity error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, cl := newPair(t)
	_ = srv
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := cl.Incr("shared"); err != nil {
					t.Errorf("INCR: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, err := cl.DoInt("GET", "shared")
	if err == nil {
		t.Fatalf("GET via DoInt should fail on bulk reply, got %d", n)
	}
	s, ok, err := cl.Get("shared")
	if err != nil || !ok || s != "400" {
		t.Fatalf("final counter: %q %v %v", s, ok, err)
	}
}
