package miniredis_test

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/miniredis"
)

// rawConn dials the server directly, bypassing the client library, to test
// wire-level behaviour (inline commands, pipelining, malformed input).
func rawConn(t *testing.T) (net.Conn, *bufio.Reader) {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		srv.Close()
	})
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn, bufio.NewReader(conn)
}

func readLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

func TestInlinePing(t *testing.T) {
	conn, r := rawConn(t)
	if _, err := conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, r); got != "+PONG" {
		t.Fatalf("inline PING: %q", got)
	}
}

func TestPipelinedBurst(t *testing.T) {
	conn, r := rawConn(t)
	// Send 50 INCRs in one write; replies must come back in order.
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.WriteString("*2\r\n$4\r\nINCR\r\n$1\r\nn\r\n")
	}
	if _, err := conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		got := readLine(t, r)
		if got != ":"+itoa(i) {
			t.Fatalf("pipelined reply %d: %q", i, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestQuitClosesConnection(t *testing.T) {
	conn, r := rawConn(t)
	if _, err := conn.Write([]byte("QUIT\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, r); got != "+OK" {
		t.Fatalf("QUIT: %q", got)
	}
	// Server closes its side: the next read returns EOF.
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

func TestMalformedFrameDropsConnection(t *testing.T) {
	conn, r := rawConn(t)
	if _, err := conn.Write([]byte("*1\r\n$oops\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("server kept a connection with a corrupt frame")
	}
}

func TestBinarySafeValues(t *testing.T) {
	conn, r := rawConn(t)
	payload := "a\x00b\r\nc\xffd"
	cmd := "*3\r\n$3\r\nSET\r\n$3\r\nbin\r\n$" + itoa(len(payload)) + "\r\n" + payload + "\r\n"
	if _, err := conn.Write([]byte(cmd)); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, r); got != "+OK" {
		t.Fatalf("SET: %q", got)
	}
	if _, err := conn.Write([]byte("*2\r\n$3\r\nGET\r\n$3\r\nbin\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, r); got != "$"+itoa(len(payload)) {
		t.Fatalf("GET length line: %q", got)
	}
	buf := make([]byte, len(payload)+2)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:len(payload)]) != payload {
		t.Fatalf("payload corrupted: %q", buf)
	}
}

func TestServerCloseUnblocksBlockedClient(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer conn.Close()
	// Block on an empty list with no timeout, then close the server.
	if _, err := conn.Write([]byte("*3\r\n$5\r\nBLPOP\r\n$1\r\nq\r\n$1\r\n0\r\n")); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, _ = conn.Read(buf) // nil-array reply or EOF; either unblocks us
	}()
	srv.Close()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("blocked client not released by server Close")
	}
}
