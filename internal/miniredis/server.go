package miniredis

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resp"
)

// Options configures a Server.
type Options struct {
	// Addr is the TCP listen address. Empty means "127.0.0.1:0" (an
	// OS-assigned port, retrievable via Server.Addr).
	Addr string
	// OpDelay is an artificial per-command service delay. The paper observes
	// that Redis mappings are heavier than in-process multiprocessing queues
	// ("Redis supports more features ... which render Redis more
	// resource-intensive"); OpDelay lets the benchmark harness model that
	// extra cost explicitly and lets the ablation bench sweep it.
	OpDelay time.Duration
	// DispatchDelay is an artificial per-command delay held *inside* the
	// dispatch lock. Where OpDelay models per-connection latency (sleeps
	// overlap across connections), DispatchDelay models the server's bounded
	// single-threaded command bandwidth: real Redis executes commands on one
	// thread, so a shard caps out near 1/serviceTime ops/s no matter how many
	// clients pipeline at it. The shard-scaling bench sets it so that adding
	// shards multiplies aggregate bandwidth the way added Redis servers would,
	// which an in-process server on shared CPUs otherwise cannot exhibit.
	DispatchDelay time.Duration
	// Logf receives server diagnostics. Nil silences logging.
	Logf func(format string, args ...any)
}

// Server is an in-memory Redis-compatible server.
type Server struct {
	opts Options
	ln   net.Listener

	mu    sync.Mutex
	db    *db
	watch map[string][]chan struct{} // key write notification channels

	connMu sync.Mutex
	active map[net.Conn]struct{}

	closed   atomic.Bool
	conns    sync.WaitGroup
	commands atomic.Int64
}

// NewServer creates a server without starting it.
func NewServer(opts Options) *Server {
	return &Server{
		opts:   opts,
		db:     newDB(),
		watch:  make(map[string][]chan struct{}),
		active: make(map[net.Conn]struct{}),
	}
}

// Start begins listening and serving connections.
func (s *Server) Start() error {
	addr := s.opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("miniredis: listen: %w", err)
	}
	s.ln = ln
	s.conns.Add(1)
	go s.acceptLoop()
	return nil
}

// StartTestServer starts a server on an ephemeral port and returns it. It is
// a convenience for tests and examples.
func StartTestServer() (*Server, error) {
	s := NewServer(Options{})
	if err := s.Start(); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Commands reports how many commands the server has processed.
func (s *Server) Commands() int64 { return s.commands.Load() }

// Close stops the listener, disconnects every client (including ones
// blocked mid-read), wakes all blocked commands, and waits for connection
// goroutines to drain.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for key, chans := range s.watch {
		for _, ch := range chans {
			close(ch)
		}
		delete(s.watch, key)
	}
	s.mu.Unlock()
	s.connMu.Lock()
	for conn := range s.active {
		conn.Close()
	}
	s.connMu.Unlock()
	s.conns.Done()
	s.conns.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.closed.Load() {
				s.logf("miniredis: accept: %v", err)
			}
			return
		}
		s.conns.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.conns.Done()
	defer conn.Close()
	s.connMu.Lock()
	s.active[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.active, conn)
		s.connMu.Unlock()
	}()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	for {
		argv, err := r.ReadCommand()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !s.closed.Load() {
				s.logf("miniredis: read: %v", err)
			}
			return
		}
		if s.closed.Load() {
			return
		}
		s.commands.Add(1)
		if s.opts.OpDelay > 0 {
			time.Sleep(s.opts.OpDelay)
		}
		reply, quit := s.dispatch(argv)
		if err := w.WriteValue(reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// notifyKey wakes every waiter blocked on key. Callers must hold s.mu.
func (s *Server) notifyKey(key string) {
	chans := s.watch[key]
	if len(chans) == 0 {
		return
	}
	for _, ch := range chans {
		close(ch)
	}
	delete(s.watch, key)
}

// awaitKeys blocks until one of keys is written, the timeout elapses (zero
// timeout means wait forever), or the server closes. It must be called with
// s.mu held; it releases the lock while waiting and reacquires before
// returning. The return value is false on timeout/closure.
func (s *Server) awaitKeys(keys []string, deadline time.Time) bool {
	ch := make(chan struct{})
	for _, k := range keys {
		s.watch[k] = append(s.watch[k], ch)
	}
	s.mu.Unlock()
	var ok bool
	if deadline.IsZero() {
		<-ch
		ok = !s.closed.Load()
	} else {
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			ok = !s.closed.Load()
		case <-timer.C:
			ok = false
		}
		timer.Stop()
	}
	s.mu.Lock()
	// Deregister our channel wherever it is still present (timeout path).
	for _, k := range keys {
		chans := s.watch[k]
		for i, c := range chans {
			if c == ch {
				s.watch[k] = append(chans[:i], chans[i+1:]...)
				break
			}
		}
		if len(s.watch[k]) == 0 {
			delete(s.watch, k)
		}
	}
	return ok
}

// dispatch executes one command under the server lock. The second result
// requests connection termination (QUIT).
func (s *Server) dispatch(argv []string) (resp.Value, bool) {
	cmd := strings.ToUpper(argv[0])
	args := argv[1:]

	// QUIT is handled outside the table for its connection side effect.
	if cmd == "QUIT" {
		return resp.OK, true
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.DispatchDelay > 0 {
		time.Sleep(s.opts.DispatchDelay)
	}

	h, ok := commandTable[cmd]
	if !ok {
		return resp.Errf("ERR unknown command '%s'", argv[0]), false
	}
	if len(args) < h.minArgs || (h.maxArgs >= 0 && len(args) > h.maxArgs) {
		return resp.Errf("ERR wrong number of arguments for '%s' command", strings.ToLower(cmd)), false
	}
	return h.fn(s, args), false
}

// handler describes one command implementation.
type handler struct {
	fn      func(s *Server, args []string) resp.Value
	minArgs int
	maxArgs int // -1 = unbounded
}

// commandTable maps command names to handlers. Populated by init functions in
// the cmd_*.go files.
var commandTable = map[string]handler{}

func register(name string, minArgs, maxArgs int, fn func(s *Server, args []string) resp.Value) {
	if _, dup := commandTable[name]; dup {
		log.Panicf("miniredis: duplicate command %q", name)
	}
	commandTable[name] = handler{fn: fn, minArgs: minArgs, maxArgs: maxArgs}
}

// errValue converts an error produced by store helpers into a RESP error,
// preserving pre-formatted Redis error codes (WRONGTYPE, ERR ...).
func errValue(err error) resp.Value {
	msg := err.Error()
	if strings.HasPrefix(msg, "ERR ") || strings.HasPrefix(msg, "WRONGTYPE") ||
		strings.HasPrefix(msg, "BUSYGROUP") || strings.HasPrefix(msg, "NOGROUP") {
		return resp.Err(msg)
	}
	return resp.Err("ERR " + msg)
}
