package miniredis

import (
	"testing"
	"testing/quick"
	"time"
)

func TestStreamIDOrdering(t *testing.T) {
	a := StreamID{Ms: 1, Seq: 5}
	b := StreamID{Ms: 1, Seq: 6}
	c := StreamID{Ms: 2, Seq: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("ordering broken")
	}
	if !a.LessEq(a) || !a.LessEq(b) || b.LessEq(a) {
		t.Error("LessEq broken")
	}
	if !(StreamID{}).IsZero() || a.IsZero() {
		t.Error("IsZero")
	}
}

func TestStreamIDNext(t *testing.T) {
	if got := (StreamID{Ms: 3, Seq: 7}).Next(); got != (StreamID{Ms: 3, Seq: 8}) {
		t.Errorf("Next: %v", got)
	}
	// Sequence overflow carries into the ms part.
	if got := (StreamID{Ms: 3, Seq: ^uint64(0)}).Next(); got != (StreamID{Ms: 4, Seq: 0}) {
		t.Errorf("Next overflow: %v", got)
	}
}

func TestParseStreamID(t *testing.T) {
	cases := []struct {
		in      string
		seqDef  uint64
		want    StreamID
		wantErr bool
	}{
		{"5-3", 0, StreamID{Ms: 5, Seq: 3}, false},
		{"5", 0, StreamID{Ms: 5, Seq: 0}, false},
		{"5", 9, StreamID{Ms: 5, Seq: 9}, false},
		{"-", 0, StreamID{}, false},
		{"+", 0, maxStreamID, false},
		{"x-1", 0, StreamID{}, true},
		{"1-x", 0, StreamID{}, true},
		{"", 0, StreamID{}, true},
	}
	for _, tc := range cases {
		got, err := parseStreamID(tc.in, tc.seqDef)
		if (err != nil) != tc.wantErr {
			t.Errorf("%q: err=%v", tc.in, err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("%q: got %v want %v", tc.in, got, tc.want)
		}
	}
}

func TestQuickParseFormatRoundTrip(t *testing.T) {
	f := func(ms, seq uint64) bool {
		id := StreamID{Ms: ms, Seq: seq}
		got, err := parseStreamID(id.String(), 0)
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamAddAndRange(t *testing.T) {
	s := newStream()
	for i := uint64(1); i <= 5; i++ {
		s.add(StreamID{Ms: i}, []string{"k", "v"})
	}
	if s.lastID != (StreamID{Ms: 5}) || s.added != 5 {
		t.Errorf("stream meta: %+v", s)
	}
	got := s.rangeEntries(StreamID{Ms: 2}, StreamID{Ms: 4}, 0)
	if len(got) != 3 || got[0].id.Ms != 2 || got[2].id.Ms != 4 {
		t.Errorf("range: %+v", got)
	}
	got = s.rangeEntries(StreamID{}, maxStreamID, 2)
	if len(got) != 2 {
		t.Errorf("count limit: %+v", got)
	}
	if e := s.entryAt(StreamID{Ms: 3}); e == nil || e.id.Ms != 3 {
		t.Error("entryAt hit")
	}
	if e := s.entryAt(StreamID{Ms: 99}); e != nil {
		t.Error("entryAt miss should be nil")
	}
}

func TestStreamDeleteAndTrim(t *testing.T) {
	s := newStream()
	for i := uint64(1); i <= 6; i++ {
		s.add(StreamID{Ms: i}, nil)
	}
	removed := s.delete([]StreamID{{Ms: 2}, {Ms: 99}})
	if removed != 1 || len(s.entries) != 5 {
		t.Errorf("delete: %d, %d entries", removed, len(s.entries))
	}
	if s.maxDeleted != (StreamID{Ms: 2}) {
		t.Errorf("maxDeleted: %v", s.maxDeleted)
	}
	evicted := s.trimMaxLen(2)
	if evicted != 3 || len(s.entries) != 2 {
		t.Errorf("trim: %d, %d entries", evicted, len(s.entries))
	}
	if s.entries[0].id.Ms != 5 {
		t.Errorf("trim kept wrong entries: %+v", s.entries)
	}
	if s.trimMaxLen(10) != 0 {
		t.Error("trim above length should evict nothing")
	}
}

func TestNextAutoIDMonotonic(t *testing.T) {
	s := newStream()
	now := time.Now()
	id1 := s.nextAutoID(now)
	s.add(id1, nil)
	id2 := s.nextAutoID(now)
	if !id1.Less(id2) {
		t.Errorf("auto IDs not increasing: %v then %v", id1, id2)
	}
	// A stream with a future lastID keeps sequencing after it.
	s2 := newStream()
	s2.add(StreamID{Ms: ^uint64(0) - 1, Seq: 3}, nil)
	id3 := s2.nextAutoID(now)
	if !s2.lastID.Less(id3) {
		t.Errorf("auto ID after future lastID: %v", id3)
	}
}

func TestGroupPendingBookkeeping(t *testing.T) {
	g := newGroup(StreamID{})
	now := time.Now()
	c := g.consumerNamed("w1", now)
	id := StreamID{Ms: 1}
	g.pending[id] = &pendingEntry{consumer: "w1", deliveryTime: now, deliveryCount: 1}
	c.pending[id] = struct{}{}
	ids := g.sortedPending("")
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("sortedPending: %v", ids)
	}
	if got := g.sortedPending("other"); len(got) != 0 {
		t.Errorf("consumer filter: %v", got)
	}
	// consumerNamed is idempotent and updates seenTime.
	c2 := g.consumerNamed("w1", now.Add(time.Second))
	if c2 != c {
		t.Error("consumerNamed created a duplicate")
	}
	if !c2.seenTime.After(now) {
		t.Error("seenTime not refreshed")
	}
}

func TestDBLazyExpiry(t *testing.T) {
	d := newDB()
	d.setString("k", "v")
	d.keys["k"].expireAt = time.Now().Add(-time.Second)
	if d.lookup("k", time.Now()) != nil {
		t.Error("expired key visible")
	}
	if _, ok := d.keys["k"]; ok {
		t.Error("expired key not removed on access")
	}
}

func TestLookupKindMismatch(t *testing.T) {
	d := newDB()
	d.setString("k", "v")
	if _, err := d.lookupKind("k", kindList, time.Now()); err == nil {
		t.Error("wrong type must error")
	}
	e, err := d.lookupKind("missing", kindList, time.Now())
	if e != nil || err != nil {
		t.Error("missing key should be nil, nil")
	}
}

func TestKeyKindString(t *testing.T) {
	names := map[keyKind]string{
		kindString: "string", kindList: "list", kindHash: "hash",
		kindSet: "set", kindStream: "stream",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v → %q", k, k.String())
		}
	}
}

func TestClampRange(t *testing.T) {
	cases := []struct {
		start, stop, n int
		i, j           int
		ok             bool
	}{
		{0, -1, 5, 0, 4, true},
		{1, 3, 5, 1, 3, true},
		{-2, -1, 5, 3, 4, true},
		{3, 1, 5, 0, 0, false},
		{9, 12, 5, 0, 0, false},
		{0, 99, 5, 0, 4, true},
	}
	for _, tc := range cases {
		i, j, ok := clampRange(tc.start, tc.stop, tc.n)
		if ok != tc.ok || (ok && (i != tc.i || j != tc.j)) {
			t.Errorf("clampRange(%d,%d,%d) = %d,%d,%v want %d,%d,%v",
				tc.start, tc.stop, tc.n, i, j, ok, tc.i, tc.j, tc.ok)
		}
	}
}
