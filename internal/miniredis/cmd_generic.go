package miniredis

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/resp"
)

func init() {
	register("PING", 0, 1, cmdPing)
	register("ECHO", 1, 1, cmdEcho)
	register("SELECT", 1, 1, func(s *Server, args []string) resp.Value { return resp.OK })
	register("CLIENT", 1, -1, func(s *Server, args []string) resp.Value { return resp.OK })
	register("CONFIG", 1, -1, cmdConfig)
	register("FLUSHALL", 0, 1, cmdFlushAll)
	register("FLUSHDB", 0, 1, cmdFlushAll)
	register("DBSIZE", 0, 0, cmdDBSize)
	register("DEL", 1, -1, cmdDel)
	register("UNLINK", 1, -1, cmdDel)
	register("EXISTS", 1, -1, cmdExists)
	register("TYPE", 1, 1, cmdType)
	register("KEYS", 1, 1, cmdKeys)
	register("EXPIRE", 2, 2, cmdExpire)
	register("PEXPIRE", 2, 2, cmdPExpire)
	register("TTL", 1, 1, cmdTTL)
	register("PTTL", 1, 1, cmdPTTL)
	register("PERSIST", 1, 1, cmdPersist)
	register("INFO", 0, -1, cmdInfo)
	register("TIME", 0, 0, cmdTime)
}

func cmdPing(s *Server, args []string) resp.Value {
	if len(args) == 1 {
		return resp.Str(args[0])
	}
	return resp.Pong
}

func cmdEcho(s *Server, args []string) resp.Value { return resp.Str(args[0]) }

func cmdConfig(s *Server, args []string) resp.Value {
	if strings.EqualFold(args[0], "GET") {
		// Return an empty map-style array: we have no exposed config.
		return resp.Arr()
	}
	return resp.OK
}

func cmdFlushAll(s *Server, args []string) resp.Value {
	s.db = newDB()
	for key := range s.watch {
		s.notifyKey(key)
	}
	return resp.OK
}

func cmdDBSize(s *Server, args []string) resp.Value {
	now := time.Now()
	var n int64
	for key := range s.db.keys {
		if s.db.lookup(key, now) != nil {
			n++
		}
	}
	return resp.Int(n)
}

func cmdDel(s *Server, args []string) resp.Value {
	now := time.Now()
	var n int64
	for _, key := range args {
		if s.db.lookup(key, now) != nil {
			delete(s.db.keys, key)
			n++
		}
	}
	return resp.Int(n)
}

func cmdExists(s *Server, args []string) resp.Value {
	now := time.Now()
	var n int64
	for _, key := range args {
		if s.db.lookup(key, now) != nil {
			n++
		}
	}
	return resp.Int(n)
}

func cmdType(s *Server, args []string) resp.Value {
	e := s.db.lookup(args[0], time.Now())
	if e == nil {
		return resp.Simple("none")
	}
	return resp.Simple(e.kind.String())
}

func cmdKeys(s *Server, args []string) resp.Value {
	now := time.Now()
	var keys []string
	for key := range s.db.keys {
		if s.db.lookup(key, now) == nil {
			continue
		}
		ok, err := path.Match(args[0], key)
		if err == nil && ok {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return resp.StrArray(keys...)
}

func cmdExpire(s *Server, args []string) resp.Value {
	secs, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	return expireIn(s, args[0], time.Duration(secs)*time.Second)
}

func cmdPExpire(s *Server, args []string) resp.Value {
	ms, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return resp.Err("ERR value is not an integer or out of range")
	}
	return expireIn(s, args[0], time.Duration(ms)*time.Millisecond)
}

func expireIn(s *Server, key string, d time.Duration) resp.Value {
	e := s.db.lookup(key, time.Now())
	if e == nil {
		return resp.Int(0)
	}
	if d <= 0 {
		delete(s.db.keys, key)
	} else {
		e.expireAt = time.Now().Add(d)
	}
	return resp.Int(1)
}

func cmdTTL(s *Server, args []string) resp.Value {
	return ttlValue(s, args[0], time.Second)
}

func cmdPTTL(s *Server, args []string) resp.Value {
	return ttlValue(s, args[0], time.Millisecond)
}

func ttlValue(s *Server, key string, unit time.Duration) resp.Value {
	e := s.db.lookup(key, time.Now())
	if e == nil {
		return resp.Int(-2)
	}
	if e.expireAt.IsZero() {
		return resp.Int(-1)
	}
	return resp.Int(int64(time.Until(e.expireAt) / unit))
}

func cmdPersist(s *Server, args []string) resp.Value {
	e := s.db.lookup(args[0], time.Now())
	if e == nil || e.expireAt.IsZero() {
		return resp.Int(0)
	}
	e.expireAt = time.Time{}
	return resp.Int(1)
}

func cmdInfo(s *Server, args []string) resp.Value {
	body := fmt.Sprintf("# Server\r\nredis_version:7.0-miniredis\r\n"+
		"# Stats\r\ntotal_commands_processed:%d\r\n# Keyspace\r\ndb0:keys=%d\r\n",
		s.commands.Load(), len(s.db.keys))
	return resp.Str(body)
}

func cmdTime(s *Server, args []string) resp.Value {
	now := time.Now()
	return resp.StrArray(
		strconv.FormatInt(now.Unix(), 10),
		strconv.FormatInt(int64(now.Nanosecond())/1000, 10),
	)
}
