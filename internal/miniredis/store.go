// Package miniredis implements an in-memory Redis server speaking RESP2 over
// TCP. It exists because the paper's dyn_redis / dyn_auto_redis /
// hybrid_redis mappings require a Redis 5+ server with Streams and consumer
// groups, and this reproduction must be self-contained (stdlib only).
//
// The implemented command surface covers strings, lists (including blocking
// pops), hashes, sets, key management with lazy expiry, and streams with
// consumer groups (XADD, XREADGROUP, XACK, XPENDING, XCLAIM, XAUTOCLAIM,
// XINFO, ...). Semantics follow the Redis documentation closely enough that
// generic RESP tooling can talk to the server, but exotic options outside the
// needs of the workflow engine are rejected with clear errors rather than
// silently misbehaving.
package miniredis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// keyKind enumerates the value types a key can hold.
type keyKind uint8

const (
	kindString keyKind = iota
	kindList
	kindHash
	kindSet
	kindStream
)

func (k keyKind) String() string {
	switch k {
	case kindString:
		return "string"
	case kindList:
		return "list"
	case kindHash:
		return "hash"
	case kindSet:
		return "set"
	case kindStream:
		return "stream"
	default:
		return "unknown"
	}
}

// entry is one keyspace slot.
type entry struct {
	kind     keyKind
	str      string
	list     []string
	hash     map[string]string
	set      map[string]struct{}
	stream   *stream
	expireAt time.Time // zero means no TTL
}

func (e *entry) expired(now time.Time) bool {
	return !e.expireAt.IsZero() && now.After(e.expireAt)
}

// db is a single keyspace. The server owns exactly one (SELECT is accepted
// and ignored, like many embedded Redis stand-ins).
type db struct {
	keys map[string]*entry
}

func newDB() *db { return &db{keys: make(map[string]*entry)} }

// lookup returns the live entry for key, applying lazy expiry.
func (d *db) lookup(key string, now time.Time) *entry {
	e, ok := d.keys[key]
	if !ok {
		return nil
	}
	if e.expired(now) {
		delete(d.keys, key)
		return nil
	}
	return e
}

// lookupKind fetches key and enforces its type, returning wrongType error
// text when it holds another kind.
func (d *db) lookupKind(key string, kind keyKind, now time.Time) (*entry, error) {
	e := d.lookup(key, now)
	if e == nil {
		return nil, nil
	}
	if e.kind != kind {
		return nil, errWrongType
	}
	return e, nil
}

var errWrongType = fmt.Errorf("WRONGTYPE Operation against a key holding the wrong kind of value")

// StreamID is a Redis stream entry ID (milliseconds-sequence pair).
type StreamID struct {
	Ms  uint64
	Seq uint64
}

// String renders the canonical "ms-seq" form.
func (id StreamID) String() string {
	return strconv.FormatUint(id.Ms, 10) + "-" + strconv.FormatUint(id.Seq, 10)
}

// Less reports strict ordering of stream IDs.
func (id StreamID) Less(o StreamID) bool {
	if id.Ms != o.Ms {
		return id.Ms < o.Ms
	}
	return id.Seq < o.Seq
}

// LessEq reports id <= o.
func (id StreamID) LessEq(o StreamID) bool { return !o.Less(id) }

// IsZero reports the zero ID ("0-0").
func (id StreamID) IsZero() bool { return id.Ms == 0 && id.Seq == 0 }

// Next returns the smallest ID strictly greater than id.
func (id StreamID) Next() StreamID {
	if id.Seq == ^uint64(0) {
		return StreamID{Ms: id.Ms + 1, Seq: 0}
	}
	return StreamID{Ms: id.Ms, Seq: id.Seq + 1}
}

// maxStreamID is the largest representable ID ("+" in range queries).
var maxStreamID = StreamID{Ms: ^uint64(0), Seq: ^uint64(0)}

// parseStreamID parses "ms", "ms-seq", "-", "+" forms. When seqDefault is
// what an absent sequence part should default to (0 for range starts, max
// for range ends).
func parseStreamID(s string, seqDefault uint64) (StreamID, error) {
	switch s {
	case "-":
		return StreamID{}, nil
	case "+":
		return maxStreamID, nil
	}
	ms := s
	seq := seqDefault
	if i := strings.IndexByte(s, '-'); i >= 0 {
		ms = s[:i]
		var err error
		seq, err = strconv.ParseUint(s[i+1:], 10, 64)
		if err != nil {
			return StreamID{}, fmt.Errorf("ERR Invalid stream ID specified as stream command argument")
		}
	}
	msv, err := strconv.ParseUint(ms, 10, 64)
	if err != nil {
		return StreamID{}, fmt.Errorf("ERR Invalid stream ID specified as stream command argument")
	}
	return StreamID{Ms: msv, Seq: seq}, nil
}

// streamEntry is one entry in a stream: its ID plus flat field-value pairs.
type streamEntry struct {
	id     StreamID
	fields []string // alternating field, value
}

// pendingEntry is one row of a consumer group's pending entries list (PEL).
type pendingEntry struct {
	consumer      string
	deliveryTime  time.Time
	deliveryCount int64
}

// consumer is one named consumer inside a group.
type consumer struct {
	name       string
	pending    map[StreamID]struct{}
	seenTime   time.Time // last command naming this consumer
	activeTime time.Time // last successful entry delivery (Redis 7 "inactive")
}

// group is a stream consumer group.
type group struct {
	lastDelivered StreamID
	pending       map[StreamID]*pendingEntry
	consumers     map[string]*consumer
	entriesRead   int64
}

func newGroup(last StreamID) *group {
	return &group{
		lastDelivered: last,
		pending:       make(map[StreamID]*pendingEntry),
		consumers:     make(map[string]*consumer),
	}
}

func (g *group) consumerNamed(name string, now time.Time) *consumer {
	c, ok := g.consumers[name]
	if !ok {
		c = &consumer{name: name, pending: make(map[StreamID]struct{}), seenTime: now, activeTime: now}
		g.consumers[name] = c
	}
	c.seenTime = now
	return c
}

// sortedPending returns the PEL IDs in ascending order, optionally filtered
// to one consumer.
func (g *group) sortedPending(onlyConsumer string) []StreamID {
	ids := make([]StreamID, 0, len(g.pending))
	for id, pe := range g.pending {
		if onlyConsumer != "" && pe.consumer != onlyConsumer {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// stream is the stream datatype: an append-only log plus consumer groups.
type stream struct {
	entries    []streamEntry // ascending by id
	lastID     StreamID
	maxDeleted StreamID
	added      int64 // entries-added counter (survives XDEL/XTRIM)
	groups     map[string]*group
}

func newStream() *stream {
	return &stream{groups: make(map[string]*group)}
}

// add appends an entry. id must be strictly greater than lastID.
func (s *stream) add(id StreamID, fields []string) {
	s.entries = append(s.entries, streamEntry{id: id, fields: fields})
	s.lastID = id
	s.added++
}

// nextAutoID computes the ID "*"" would allocate at wall time now.
func (s *stream) nextAutoID(now time.Time) StreamID {
	ms := uint64(now.UnixMilli())
	if ms > s.lastID.Ms {
		return StreamID{Ms: ms, Seq: 0}
	}
	return StreamID{Ms: s.lastID.Ms, Seq: s.lastID.Seq + 1}
}

// searchIdx returns the index of the first entry with id >= want.
func (s *stream) searchIdx(want StreamID) int {
	return sort.Search(len(s.entries), func(i int) bool {
		return !s.entries[i].id.Less(want)
	})
}

// entryAt returns the entry with exactly id, or nil.
func (s *stream) entryAt(id StreamID) *streamEntry {
	i := s.searchIdx(id)
	if i < len(s.entries) && s.entries[i].id == id {
		return &s.entries[i]
	}
	return nil
}

// rangeEntries returns entries in [from, to] inclusive, up to count
// (count <= 0 means unlimited).
func (s *stream) rangeEntries(from, to StreamID, count int) []streamEntry {
	var out []streamEntry
	for i := s.searchIdx(from); i < len(s.entries); i++ {
		if to.Less(s.entries[i].id) {
			break
		}
		out = append(out, s.entries[i])
		if count > 0 && len(out) >= count {
			break
		}
	}
	return out
}

// delete removes ids that exist, returning how many were removed.
func (s *stream) delete(ids []StreamID) int64 {
	var removed int64
	for _, id := range ids {
		i := s.searchIdx(id)
		if i < len(s.entries) && s.entries[i].id == id {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			if s.maxDeleted.Less(id) {
				s.maxDeleted = id
			}
			removed++
		}
	}
	return removed
}

// trimMaxLen keeps only the newest max entries, returning evicted count.
func (s *stream) trimMaxLen(max int64) int64 {
	if int64(len(s.entries)) <= max {
		return 0
	}
	cut := int64(len(s.entries)) - max
	for _, e := range s.entries[:cut] {
		if s.maxDeleted.Less(e.id) {
			s.maxDeleted = e.id
		}
	}
	s.entries = append([]streamEntry(nil), s.entries[cut:]...)
	return cut
}
