package platform

import (
	"sync"
	"testing"
	"time"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"server", "cloud", "hpc"} {
		p, err := ByName(name)
		if err != nil || p.Name != name || p.Cores <= 0 {
			t.Errorf("ByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ByName("laptop"); err == nil {
		t.Error("unknown platform should error")
	}
}

func TestWorkParallelWithinCores(t *testing.T) {
	h := NewHost(Platform{Name: "t", Cores: 4})
	const d = 40 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Work(d)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Four units on four cores should take ~1 unit, not 4.
	if elapsed > 3*d {
		t.Errorf("4 tasks on 4 cores took %v, want ≈ %v", elapsed, d)
	}
}

func TestWorkSerializesBeyondCores(t *testing.T) {
	h := NewHost(Platform{Name: "t", Cores: 1})
	const d = 25 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Work(d)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 3*d-5*time.Millisecond {
		t.Errorf("3 tasks on 1 core took %v, want ≥ %v", elapsed, 3*d)
	}
}

func TestWorkZeroIsImmediate(t *testing.T) {
	h := NewHost(Server)
	start := time.Now()
	h.Work(0)
	h.Work(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("zero work should not block")
	}
}

func TestProcessAccounting(t *testing.T) {
	h := NewHost(Server)
	p := h.NewProcess("w0")
	if p.Active() {
		t.Fatal("fresh process should be inactive")
	}
	if got := p.ActiveTime(time.Now()); got != 0 {
		t.Fatalf("fresh process active time %v", got)
	}
	p.Activate()
	time.Sleep(30 * time.Millisecond)
	p.Deactivate()
	span1 := p.ActiveTime(time.Now())
	if span1 < 20*time.Millisecond {
		t.Errorf("active span too short: %v", span1)
	}
	// Idle period must not accrue.
	time.Sleep(30 * time.Millisecond)
	if got := p.ActiveTime(time.Now()); got != span1 {
		t.Errorf("idle time accrued: %v vs %v", got, span1)
	}
	// Second span accrues on top.
	p.Activate()
	time.Sleep(20 * time.Millisecond)
	p.Deactivate()
	if got := p.ActiveTime(time.Now()); got < span1+10*time.Millisecond {
		t.Errorf("second span missing: %v", got)
	}
	if p.Spans() != 2 {
		t.Errorf("spans=%d want 2", p.Spans())
	}
}

func TestActivateIdempotent(t *testing.T) {
	h := NewHost(Server)
	p := h.NewProcess("w")
	p.Activate()
	p.Activate()
	if p.Spans() != 1 {
		t.Errorf("double activate created %d spans", p.Spans())
	}
	p.Deactivate()
	p.Deactivate() // no panic, no negative time
	if got := p.ActiveTime(time.Now()); got < 0 {
		t.Errorf("negative active time %v", got)
	}
}

func TestTotalProcessTimeSums(t *testing.T) {
	h := NewHost(Server)
	a := h.NewProcess("a")
	b := h.NewProcess("b")
	a.Activate()
	b.Activate()
	time.Sleep(25 * time.Millisecond)
	a.Deactivate()
	b.Deactivate()
	total := h.TotalProcessTime()
	if total < 40*time.Millisecond {
		t.Errorf("total %v, want ≥ ~50ms", total)
	}
	if h.ProcessCount() != 2 {
		t.Errorf("process count %d", h.ProcessCount())
	}
}

func TestOpenSpanCountsInTotal(t *testing.T) {
	h := NewHost(Server)
	p := h.NewProcess("open")
	p.Activate()
	time.Sleep(20 * time.Millisecond)
	if total := h.TotalProcessTime(); total < 10*time.Millisecond {
		t.Errorf("open span not counted: %v", total)
	}
	p.Deactivate()
}

func TestNewHostDefaultsCores(t *testing.T) {
	h := NewHost(Platform{Name: "broken", Cores: 0})
	done := make(chan struct{})
	go func() {
		h.Work(time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Work deadlocked with zero cores")
	}
}

func TestProcessWorkUsesHostGate(t *testing.T) {
	h := NewHost(Platform{Name: "t", Cores: 1})
	p1 := h.NewProcess("p1")
	p2 := h.NewProcess("p2")
	const d = 20 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p1.Work(d) }()
	go func() { defer wg.Done(); p2.Work(d) }()
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 2*d-5*time.Millisecond {
		t.Errorf("two processes on one core overlapped: %v", elapsed)
	}
}
