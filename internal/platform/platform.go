// Package platform simulates the execution hosts the paper evaluates on
// (server: 16 cores, cloud: 8 cores, HPC: 64 cores) and provides the process
// accounting behind the paper's two metrics:
//
//   - runtime: wall-clock duration of a workflow run, and
//   - total process time: the sum over processes of the time each spent in
//     the *active* state (the paper: "process time accounts for all active
//     process durations, reflecting overall efficiency").
//
// A Host owns a core gate — a counting semaphore with one slot per simulated
// core. Workers executing PE service time hold a slot for the duration, so
// oversubscribing a small host (more worker processes than cores, the cloud
// scenario) stops improving runtime and instead inflates process time,
// exactly the effect in the paper's Figures 9 and 12b.
//
// Workloads express PE cost as a duration; Host.Work parks the calling
// goroutine for that long while holding a core slot. On a real machine the
// sleeps of many workers overlap exactly as busy CPU work would across real
// cores, so measured wall-clock shapes match the paper's without requiring
// actual multi-core hardware.
package platform

import (
	"fmt"
	"sync"
	"time"
)

// Platform describes a host type.
type Platform struct {
	// Name identifies the platform in reports ("server", "cloud", "hpc").
	Name string
	// Cores is the number of simultaneously usable cores.
	Cores int
	// QueueOpCost is the serialized synchronization cost of one global-queue
	// operation (lock + copy). Dynamic mappings pay it on every task fetch
	// and result push, which is what makes total process time creep upward
	// as active process counts grow.
	QueueOpCost time.Duration
}

// The paper's three evaluation platforms. Core counts are the paper's; the
// queue-op costs are calibrated so that relative overheads (multi vs Redis
// vs dynamic) land in the paper's observed ranges at the harness timescale.
var (
	Server = Platform{Name: "server", Cores: 16, QueueOpCost: 25 * time.Microsecond}
	Cloud  = Platform{Name: "cloud", Cores: 8, QueueOpCost: 40 * time.Microsecond}
	HPC    = Platform{Name: "hpc", Cores: 64, QueueOpCost: 20 * time.Microsecond}
)

// ByName returns a built-in platform by name.
func ByName(name string) (Platform, error) {
	switch name {
	case "server":
		return Server, nil
	case "cloud":
		return Cloud, nil
	case "hpc":
		return HPC, nil
	default:
		return Platform{}, fmt.Errorf("platform: unknown platform %q (want server, cloud or hpc)", name)
	}
}

// Host is a live instance of a Platform: a core gate plus a process registry.
// A fresh Host is created per workflow run so process-time accounting starts
// from zero.
type Host struct {
	plat Platform
	gate chan struct{}

	mu    sync.Mutex
	procs []*Process
}

// NewHost creates a host for the given platform.
func NewHost(p Platform) *Host {
	if p.Cores <= 0 {
		p.Cores = 1
	}
	return &Host{plat: p, gate: make(chan struct{}, p.Cores)}
}

// Platform returns the host's platform description.
func (h *Host) Platform() Platform { return h.plat }

// Work occupies one core for d. Zero or negative d returns immediately.
func (h *Host) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	h.gate <- struct{}{}
	time.Sleep(d)
	<-h.gate
}

// SyncCost returns the platform's per-queue-op synchronization cost. Queue
// implementations spin this long while holding their lock, so contending
// workers serialize behind each other the same way processes serialize on a
// multiprocessing.Queue's internal lock.
func (h *Host) SyncCost() time.Duration { return h.plat.QueueOpCost }

// SpinWait busy-waits for d. Sub-millisecond costs cannot use time.Sleep —
// the runtime timer granularity would inflate a 25µs sleep to ~1ms, wildly
// overstating queue costs — so short synchronization delays burn cycles on
// a monotonic clock instead, exactly like a lock-holder doing real work.
func SpinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// NewProcess registers a new simulated process. It starts inactive; callers
// activate it when the worker begins participating in execution.
func (h *Host) NewProcess(name string) *Process {
	p := &Process{host: h, name: name}
	h.mu.Lock()
	p.id = len(h.procs)
	h.procs = append(h.procs, p)
	h.mu.Unlock()
	return p
}

// TotalProcessTime sums the active spans of all registered processes,
// including spans still open at call time.
func (h *Host) TotalProcessTime() time.Duration {
	h.mu.Lock()
	procs := append([]*Process(nil), h.procs...)
	h.mu.Unlock()
	var total time.Duration
	now := time.Now()
	for _, p := range procs {
		total += p.ActiveTime(now)
	}
	return total
}

// ProcessCount returns how many processes were registered.
func (h *Host) ProcessCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.procs)
}

// Process is one simulated OS process with active-span accounting. The
// active state corresponds to the paper's auto-scaler states: an active
// process accrues process time; an idle (deactivated) one does not.
type Process struct {
	host *Host
	name string
	id   int

	mu          sync.Mutex
	active      bool
	activeSince time.Time
	accumulated time.Duration
	spans       int
}

// ID returns the process's registration index on its host.
func (p *Process) ID() int { return p.id }

// Name returns the process name given at creation.
func (p *Process) Name() string { return p.name }

// Activate begins an active span. Activating an already-active process is a
// no-op, so callers on the scale-up path need no extra state.
func (p *Process) Activate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active {
		return
	}
	p.active = true
	p.activeSince = time.Now()
	p.spans++
}

// Deactivate ends the current active span (idle / low-energy standby in the
// paper's terms). Deactivating an inactive process is a no-op.
func (p *Process) Deactivate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return
	}
	p.active = false
	p.accumulated += time.Since(p.activeSince)
}

// Active reports whether the process is currently accruing process time.
func (p *Process) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Spans reports how many activation spans the process has begun; the
// auto-scaling analysis uses it to show processes cycling between states.
func (p *Process) Spans() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spans
}

// ActiveTime returns the total active duration accrued up to now.
func (p *Process) ActiveTime(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.accumulated
	if p.active {
		total += now.Sub(p.activeSince)
	}
	return total
}

// Work occupies a core on the owning host for d. It is a convenience so
// worker loops carry only the Process.
func (p *Process) Work(d time.Duration) { p.host.Work(d) }
