package diagnosis

import (
	"testing"

	"repro/internal/telemetry"
)

// TestAnalyzePathsGolden decomposes a hand-built two-path trace set and checks
// every derived number: per-hop segments, path totals, and the blame ranking's
// aggregation, ordering, and shares.
func TestAnalyzePathsGolden(t *testing.T) {
	us := int64(1000) // 1µs in ns, keeps the fixture readable
	traces := []telemetry.Trace{
		{
			ID:       "a:0",
			Complete: true,
			Hops: []telemetry.Hop{
				// Source Generate: synthesized root, carries no timestamps worth
				// decomposing and must stay out of the blame ranking.
				{ID: "a:0", PE: "source", Worker: 0, EndedAt: 10 * us, Synthesized: true},
				// fast: 2µs queue, 3µs service, 1µs ack.
				{ID: "b:0", PE: "fast", Worker: 1, EnqueuedAt: 10 * us, StartedAt: 12 * us, EndedAt: 15 * us, AckedAt: 16 * us, Executions: 1},
				// slow: 4µs queue, 20µs service, 2µs ack — replayed once.
				{ID: "c:0", PE: "slow", Worker: 2, EnqueuedAt: 16 * us, StartedAt: 20 * us, EndedAt: 40 * us, AckedAt: 42 * us, Executions: 2},
			},
		},
		{
			ID:       "a:1",
			Complete: false,
			Hops: []telemetry.Hop{
				// slow again: 5µs queue, 25µs service, no ack captured.
				{ID: "d:0", PE: "slow", Worker: 3, EnqueuedAt: 100 * us, StartedAt: 105 * us, EndedAt: 130 * us, Executions: 1},
			},
		},
	}

	pa := AnalyzePaths(traces)

	if pa.CompletePaths != 1 {
		t.Fatalf("CompletePaths = %d, want 1", pa.CompletePaths)
	}
	if pa.TotalPaths != 2 {
		t.Fatalf("TotalPaths = %d, want 2", pa.TotalPaths)
	}
	if len(pa.Paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(pa.Paths))
	}
	// Path 1: fast (2+3+1) + slow (4+20+2) = 32µs; the synthesized root adds 0.
	if want := 32 * us; pa.Paths[0].TotalNs != want {
		t.Fatalf("path 0 TotalNs = %d, want %d", pa.Paths[0].TotalNs, want)
	}
	// Path 2: slow alone, 5+25 = 30µs.
	if want := 30 * us; pa.Paths[1].TotalNs != want {
		t.Fatalf("path 1 TotalNs = %d, want %d", pa.Paths[1].TotalNs, want)
	}
	if want := 62 * us; pa.TotalNs != want {
		t.Fatalf("TotalNs = %d, want %d", pa.TotalNs, want)
	}

	hop := pa.Paths[0].Hops[2]
	if hop.QueueNs != 4*us || hop.SvcNs != 20*us || hop.AckNs != 2*us || !hop.Replayed {
		t.Fatalf("slow hop decomposition = %+v, want queue=4µs svc=20µs ack=2µs replayed", hop)
	}

	// Blame: slow (56µs over 2 hops, 1 replayed) above fast (6µs); the
	// synthesized source hop is excluded.
	if len(pa.Blame) != 2 {
		t.Fatalf("blame has %d rows (%+v), want 2", len(pa.Blame), pa.Blame)
	}
	slow, fast := pa.Blame[0], pa.Blame[1]
	if slow.PE != "slow" || fast.PE != "fast" {
		t.Fatalf("blame order = [%s %s], want [slow fast]", slow.PE, fast.PE)
	}
	if slow.Hops != 2 || slow.QueueNs != 9*us || slow.SvcNs != 45*us || slow.AckNs != 2*us || slow.Replayed != 1 {
		t.Fatalf("slow blame = %+v, want hops=2 queue=9µs svc=45µs ack=2µs replayed=1", slow)
	}
	if got, want := slow.Share, float64(56*us)/float64(62*us); got != want {
		t.Fatalf("slow share = %v, want %v", got, want)
	}

	// The verdict built from trace-only evidence (no ledger rows) names the
	// blame leader with service dominating (45µs svc > 9µs queue).
	v := verdict(FlowSnapshot{}, pa, nil)
	if v.Bottleneck != "slow" || v.Stage != "service" {
		t.Fatalf("trace-only verdict = %+v, want slow/service", v)
	}
}

func TestAnalyzePathsEmpty(t *testing.T) {
	pa := AnalyzePaths(nil)
	if pa.TotalNs != 0 || len(pa.Blame) != 0 || len(pa.Paths) != 0 {
		t.Fatalf("empty analysis = %+v, want zero value", pa)
	}
	if v := verdict(FlowSnapshot{}, pa, nil); v.Bottleneck != "" {
		t.Fatalf("verdict on no evidence = %+v, want empty", v)
	}
}
