package diagnosis

import (
	"sort"

	"repro/internal/telemetry"
)

// StragglerConfig tunes the detector. The zero value resolves to the
// defaults.
type StragglerConfig struct {
	// MinFlights is the minimum number of flight-recorder snapshots a worker
	// must span before it can be judged; 0 means 3.
	MinFlights int
	// Ratio flags a worker whose per-flight task progress falls below
	// Ratio × pool median; 0 means 0.5.
	Ratio float64
	// MinMedian suppresses verdicts when the pool median progress is below
	// this many tasks per flight (an idle pool has no stragglers); 0 means 1.
	MinMedian float64
}

func (c StragglerConfig) withDefaults() StragglerConfig {
	if c.MinFlights <= 0 {
		c.MinFlights = 3
	}
	if c.Ratio <= 0 {
		c.Ratio = 0.5
	}
	if c.MinMedian <= 0 {
		c.MinMedian = 1
	}
	return c
}

// Straggler is one flagged worker: its task cadence diverged below the pool
// median between flight-recorder snapshots.
type Straggler struct {
	Worker         int     `json:"worker"`
	TasksPerFlight float64 `json:"tasks_per_flight"`
	PoolMedian     float64 `json:"pool_median"`
	Ratio          float64 `json:"ratio"` // TasksPerFlight / PoolMedian
}

// DetectStragglers compares each worker's task-progress rate across the
// flight-recorder ring against the pool median and flags divergent workers.
// It is a pure function over recorded flights — no extra goroutine, no races
// with the run. Note the comparison is pool-wide: under pinned plans where
// different PEs legitimately run at different rates, read it as "slowest
// stage's workers", not necessarily a fault.
func DetectStragglers(flights []telemetry.Snapshot, cfg StragglerConfig) []Straggler {
	cfg = cfg.withDefaults()
	if len(flights) < cfg.MinFlights {
		return nil
	}
	// Per worker: task counts are cumulative, so progress between the first
	// and last flight the worker appears in, divided by the flights spanned,
	// is its per-flight cadence.
	type span struct {
		first, last int
		firstTasks  int64
		lastTasks   int64
	}
	spans := map[int]*span{}
	for fi, fl := range flights {
		for _, ws := range fl.PerWorker {
			s, ok := spans[ws.Worker]
			if !ok {
				spans[ws.Worker] = &span{first: fi, last: fi, firstTasks: ws.Tasks, lastTasks: ws.Tasks}
				continue
			}
			s.last = fi
			s.lastTasks = ws.Tasks
		}
	}
	type rate struct {
		worker int
		perFl  float64
	}
	var rates []rate
	for w, s := range spans {
		if s.last-s.first < cfg.MinFlights-1 {
			continue
		}
		rates = append(rates, rate{worker: w, perFl: float64(s.lastTasks-s.firstTasks) / float64(s.last-s.first)})
	}
	if len(rates) < 2 {
		return nil
	}
	sorted := make([]float64, len(rates))
	for i, r := range rates {
		sorted[i] = r.perFl
	}
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	if median < cfg.MinMedian {
		return nil
	}
	var out []Straggler
	for _, r := range rates {
		if r.perFl < cfg.Ratio*median {
			out = append(out, Straggler{Worker: r.worker, TasksPerFlight: r.perFl,
				PoolMedian: median, Ratio: r.perFl / median})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}
