package diagnosis

import (
	"sync"
	"time"
)

// Journal event kinds, matching the runtime lifecycle moments they record.
const (
	EvRunStart    = "run_start"
	EvRunEnd      = "run_end"
	EvWorkerStart = "worker_start"
	EvWorkerExit  = "worker_exit"
	EvReclaim     = "reclaim"      // XAUTOCLAIM adopted stalled deliveries
	EvLease       = "lease_extend" // progress-heartbeat XCLAIM JUSTID
	EvFenceDrop   = "fence_drop"   // exactly-once fence dropped a duplicate
	EvPill        = "pill"         // poison-pill routing
	EvCheckpoint  = "checkpoint"   // managed-state checkpoint written
	EvResize      = "resize"       // BatchSizer changed a batch window
	EvDrain       = "drain"        // coordinator drain/finalize milestones
	EvFault       = "fault"        // injected fault fired (internal/faultinject)
)

// Event is one sequence-numbered journal entry. Worker is -1 for events not
// tied to a worker slot.
type Event struct {
	Seq    uint64 `json:"seq"`
	At     int64  `json:"at"` // UnixNano
	Kind   string `json:"kind"`
	Worker int    `json:"worker"`
	PE     string `json:"pe,omitempty"`
	Detail string `json:"detail,omitempty"`
	N      int64  `json:"n,omitempty"`
}

// Journal is a bounded ring of lifecycle events. Append takes one short mutex
// hold and allocates nothing once the ring is full — cheap enough for every
// lifecycle moment, which arrive at human rates, not task rates. Entries carry
// monotone sequence numbers so tailers can resume from where they left off
// even across ring evictions.
type Journal struct {
	mu     sync.Mutex
	ring   []Event
	at     int
	filled bool
	seq    uint64 // total appended; next entry gets seq+1
}

// DefaultJournalRing bounds the journal when Config.JournalRing is zero.
const DefaultJournalRing = 1024

// NewJournal creates a journal retaining the last capacity events
// (DefaultJournalRing when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalRing
	}
	return &Journal{ring: make([]Event, 0, capacity)}
}

// Append records one event, stamping the sequence number and timestamp.
// Nil-receiver safe.
func (j *Journal) Append(kind string, worker int, pe, detail string, n int64) {
	if j == nil {
		return
	}
	at := time.Now().UnixNano()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e := Event{Seq: j.seq, At: at, Kind: kind, Worker: worker, PE: pe, Detail: detail, N: n}
	if !j.filled && len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
		if len(j.ring) == cap(j.ring) {
			j.filled = true
		}
		return
	}
	j.ring[j.at] = e
	j.at = (j.at + 1) % len(j.ring)
}

// Total returns the number of events ever appended (evicted ones included).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if !j.filled {
		return append(out, j.ring...)
	}
	out = append(out, j.ring[j.at:]...)
	return append(out, j.ring[:j.at]...)
}

// Tail returns the most recent n retained events, oldest first.
func (j *Journal) Tail(n int) []Event {
	evs := j.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Since returns retained events with Seq > seq, oldest first — the resume
// cursor for tailers: pass the last Seq you saw.
func (j *Journal) Since(seq uint64) []Event {
	evs := j.Events()
	for i, e := range evs {
		if e.Seq > seq {
			return evs[i:]
		}
	}
	return nil
}
