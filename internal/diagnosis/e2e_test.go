package diagnosis_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/platform"
	_ "repro/internal/redismap" // register dyn_redis
	"repro/internal/telemetry"
)

// slowPipeGraph builds gen → fast → slow → sink where slow sleeps per task —
// the deliberately bottlenecked pipeline of the acceptance scenario.
func slowPipeGraph(items int, slowBy time.Duration, delivered *atomic.Int64) *graph.Graph {
	g := graph.New("slowpipe")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < items; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("fast", func(ctx *core.Context, v any) (any, error) {
			return v.(int) + 1, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("slow", func(ctx *core.Context, v any) (any, error) {
			time.Sleep(slowBy)
			return v, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			delivered.Add(1)
			return nil
		})
	})
	g.Pipe("gen", "fast")
	g.Pipe("fast", "slow")
	g.Pipe("slow", "sink")
	return g
}

// TestDiagnosisNamesSlowPEOnDynRedis is the acceptance scenario: a dyn_redis
// run with one deliberately slow PE must yield a verdict naming that PE as the
// bottleneck, with queue-wait/service decomposition behind it, a populated
// flow ledger, and a journal covering the run lifecycle.
func TestDiagnosisNamesSlowPEOnDynRedis(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var delivered atomic.Int64
	const items = 60
	g := slowPipeGraph(items, 2*time.Millisecond, &delivered)

	m, err := mapping.Get("dyn_redis")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New(telemetry.Config{TraceSampleEvery: 1})
	diag := diagnosis.New(diagnosis.Config{})
	opts := mapping.Options{
		Processes: 4,
		Platform:  platform.Platform{Name: "test", Cores: 4},
		Seed:      7,
		RedisAddr: srv.Addr(),
		Telemetry: reg,
		Diagnosis: diag,
		// Flights at a few-ms cadence so the straggler scan has material.
		TelemetryEvery: 3 * time.Millisecond,
	}
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != items {
		t.Fatalf("delivered %d values, want %d", got, items)
	}

	report := diag.Diagnose(reg)

	if report.Verdict.Bottleneck != "slow" {
		t.Fatalf("verdict blames %q (%+v), want the deliberately slow PE", report.Verdict.Bottleneck, report.Verdict)
	}
	if report.Verdict.Stage != "service" && report.Verdict.Stage != "queue_wait" {
		t.Fatalf("verdict stage = %q, want service or queue_wait", report.Verdict.Stage)
	}
	if report.Verdict.Utilization <= 0 || report.Verdict.CeilingPerSec <= 0 {
		t.Fatalf("verdict lacks capacity figures: %+v", report.Verdict)
	}

	// Flow ledger: every PE has a row; the slow PE's service histogram has
	// observed every delivery at >= the injected delay, and queue-wait was
	// sampled (TraceSampleEvery=1 ⇒ every task carries an emission stamp).
	rows := map[string]diagnosis.PEFlowSnapshot{}
	for _, pe := range report.Flow.PEs {
		rows[pe.PE] = pe
	}
	for _, name := range []string{"gen", "fast", "slow", "sink"} {
		if _, ok := rows[name]; !ok {
			t.Fatalf("flow ledger missing PE %q (have %v)", name, report.Flow.PEs)
		}
	}
	slow := rows["slow"]
	if slow.TasksIn < items {
		t.Errorf("slow tasks_in = %d, want >= %d", slow.TasksIn, items)
	}
	if slow.Service.Count < items || slow.Service.Mean < float64(2*time.Millisecond) {
		t.Errorf("slow service histogram = %+v, want >= %d obs with mean >= 2ms", slow.Service, items)
	}
	if slow.QueueWait.Count == 0 {
		t.Error("slow queue-wait histogram empty despite full trace sampling")
	}
	if !rows["gen"].Source {
		t.Error("gen not marked as source")
	}
	if rows["gen"].Service.Count != 0 {
		t.Error("source Generate leaked into the service histogram")
	}
	edge := diagnosis.EdgeName("fast", "out", "slow", "in")
	found := false
	for _, e := range report.Flow.Edges {
		if strings.HasPrefix(e.Edge, "fast:") && strings.Contains(e.Edge, "->slow:") {
			found = true
			if e.Tasks != items {
				t.Errorf("edge %s carried %d tasks, want %d", e.Edge, e.Tasks, items)
			}
		}
	}
	if !found {
		t.Errorf("no fast→slow edge row (looked for %s-like among %v)", edge, report.Flow.Edges)
	}

	// Critical-path analysis assembled real paths with the slow PE leading the
	// blame ranking.
	if report.Paths.TotalNs == 0 || len(report.Paths.Blame) == 0 {
		t.Fatalf("path analysis empty: %+v", report.Paths)
	}
	if report.Paths.Blame[0].PE != "slow" {
		t.Errorf("blame leader = %q, want slow (%+v)", report.Paths.Blame[0].PE, report.Paths.Blame)
	}

	// Journal: lifecycle coverage.
	evs := diag.Journal.Events()
	kinds := map[string]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	for _, k := range []string{diagnosis.EvRunStart, diagnosis.EvRunEnd, diagnosis.EvWorkerStart, diagnosis.EvWorkerExit, diagnosis.EvPill} {
		if kinds[k] == 0 {
			t.Errorf("journal has no %s events (kinds: %v)", k, kinds)
		}
	}
	if kinds[diagnosis.EvWorkerStart] != kinds[diagnosis.EvWorkerExit] {
		t.Errorf("worker_start (%d) and worker_exit (%d) unbalanced", kinds[diagnosis.EvWorkerStart], kinds[diagnosis.EvWorkerExit])
	}
}

// TestDiagnosisEndpoints smokes the /diagnosis and /journal endpoints mounted
// on the telemetry server, plus the /metrics?traces=0 fast path.
func TestDiagnosisEndpoints(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := telemetry.New(telemetry.Config{TraceSampleEvery: 1})
	diag := diagnosis.New(diagnosis.Config{JournalRing: 128})
	web, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer web.Close()
	diag.Attach(web, reg)

	var delivered atomic.Int64
	m, _ := mapping.Get("dyn_redis")
	opts := mapping.Options{
		Processes: 4,
		Platform:  platform.Platform{Name: "test", Cores: 4},
		Seed:      7,
		RedisAddr: srv.Addr(),
		Telemetry: reg,
		Diagnosis: diag,
	}
	if _, err := m.Execute(slowPipeGraph(40, time.Millisecond, &delivered), opts); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", web.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var report diagnosis.Report
	if err := json.Unmarshal(get("/diagnosis"), &report); err != nil {
		t.Fatalf("decode /diagnosis: %v", err)
	}
	if report.Verdict.Bottleneck != "slow" {
		t.Errorf("/diagnosis verdict blames %q, want slow", report.Verdict.Bottleneck)
	}
	if len(report.Flow.PEs) == 0 || report.JournalEvents == 0 {
		t.Errorf("/diagnosis report incomplete: %d PEs, %d journal events", len(report.Flow.PEs), report.JournalEvents)
	}

	text := string(get("/diagnosis?format=text"))
	if !strings.Contains(text, "== diagnosis ==") || !strings.Contains(text, "slow") {
		t.Errorf("/diagnosis?format=text rendering off:\n%s", text)
	}

	var journal struct {
		Total  uint64            `json:"total"`
		Events []diagnosis.Event `json:"events"`
	}
	if err := json.Unmarshal(get("/journal"), &journal); err != nil {
		t.Fatalf("decode /journal: %v", err)
	}
	if journal.Total == 0 || len(journal.Events) == 0 {
		t.Fatal("/journal empty after an instrumented run")
	}
	if err := json.Unmarshal(get("/journal?kind=worker_exit"), &journal); err != nil {
		t.Fatal(err)
	}
	for _, e := range journal.Events {
		if e.Kind != "worker_exit" {
			t.Fatalf("kind filter leaked %+v", e)
		}
	}
	if err := json.Unmarshal(get("/journal?n=3"), &journal); err != nil {
		t.Fatal(err)
	}
	if len(journal.Events) > 3 {
		t.Fatalf("/journal?n=3 returned %d events", len(journal.Events))
	}
	mid := journal.Events[0].Seq
	if err := json.Unmarshal(get(fmt.Sprintf("/journal?since=%d", mid)), &journal); err != nil {
		t.Fatal(err)
	}
	for _, e := range journal.Events {
		if e.Seq <= mid {
			t.Fatalf("since filter leaked seq %d <= %d", e.Seq, mid)
		}
	}
	if resp, err := http.Get(fmt.Sprintf("http://%s/journal?since=bogus", web.Addr())); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad since cursor returned %s, want 400", resp.Status)
		}
		resp.Body.Close()
	}

	// Satellite: /metrics?traces=0 skips trace assembly but keeps the rest.
	var snap telemetry.Snapshot
	if err := json.Unmarshal(get("/metrics?traces=0"), &snap); err != nil {
		t.Fatalf("decode /metrics?traces=0: %v", err)
	}
	if len(snap.Traces) != 0 {
		t.Errorf("traces=0 still assembled %d traces", len(snap.Traces))
	}
	if snap.Workers.Tasks == 0 {
		t.Error("traces=0 snapshot lost worker metrics")
	}
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Traces) == 0 {
		t.Error("full /metrics carries no traces despite sampling every task")
	}
}
