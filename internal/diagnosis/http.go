package diagnosis

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/telemetry"
)

// Attach mounts the /diagnosis and /journal endpoints on a telemetry server.
// reg may be nil (ledger-only diagnosis). /diagnosis serves the full Report
// as JSON, or the rendered text block with ?format=text. /journal serves
// {"total": N, "events": [...]} and supports ?n= (tail), ?since= (resume from
// a sequence number), and ?kind= (filter).
func (d *Diag) Attach(srv *telemetry.Server, reg *telemetry.Registry) {
	srv.Handle("/diagnosis", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := d.Diagnose(reg)
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(Render(rep)))
			return
		}
		writeJSON(w, rep)
	}))
	srv.Handle("/journal", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var j *Journal
		if d != nil {
			j = d.Journal
		}
		evs := j.Events()
		if s := q.Get("since"); s != "" {
			seq, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			evs = j.Since(seq)
		}
		if kind := q.Get("kind"); kind != "" {
			kept := evs[:0:0]
			for _, e := range evs {
				if e.Kind == kind {
					kept = append(kept, e)
				}
			}
			evs = kept
		}
		if s := q.Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			if n >= 0 && len(evs) > n {
				evs = evs[len(evs)-n:]
			}
		}
		writeJSON(w, struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}{Total: j.Total(), Events: evs})
	}))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
