package diagnosis

import (
	"testing"

	"repro/internal/telemetry"
)

// flightSeq builds a flight-recorder sequence where each worker's cumulative
// task count advances by its per-flight rate.
func flightSeq(flights int, rates map[int]int64) []telemetry.Snapshot {
	out := make([]telemetry.Snapshot, flights)
	for fi := 0; fi < flights; fi++ {
		var per []telemetry.WorkerSnapshot
		for w, r := range rates {
			per = append(per, telemetry.WorkerSnapshot{Worker: w, Tasks: int64(fi+1) * r})
		}
		out[fi] = telemetry.Snapshot{PerWorker: per}
	}
	return out
}

func TestDetectStragglersFlagsSlowWorker(t *testing.T) {
	// Three healthy workers at 10 tasks/flight, one crawling at 2.
	flights := flightSeq(5, map[int]int64{0: 10, 1: 10, 2: 10, 3: 2})
	got := DetectStragglers(flights, StragglerConfig{})
	if len(got) != 1 {
		t.Fatalf("flagged %d workers (%+v), want exactly worker 3", len(got), got)
	}
	s := got[0]
	if s.Worker != 3 || s.TasksPerFlight != 2 || s.PoolMedian != 10 || s.Ratio != 0.2 {
		t.Fatalf("straggler = %+v, want worker=3 rate=2 median=10 ratio=0.2", s)
	}
}

func TestDetectStragglersHealthyPool(t *testing.T) {
	flights := flightSeq(5, map[int]int64{0: 10, 1: 9, 2: 11, 3: 10})
	if got := DetectStragglers(flights, StragglerConfig{}); len(got) != 0 {
		t.Fatalf("healthy pool flagged %+v", got)
	}
}

func TestDetectStragglersSuppressed(t *testing.T) {
	// Too few flights to judge.
	if got := DetectStragglers(flightSeq(2, map[int]int64{0: 10, 1: 1}), StragglerConfig{}); got != nil {
		t.Fatalf("2 flights should be below MinFlights, got %+v", got)
	}
	// Idle pool: median below MinMedian — nothing to diverge from.
	if got := DetectStragglers(flightSeq(5, map[int]int64{0: 0, 1: 0, 2: 0}), StragglerConfig{}); got != nil {
		t.Fatalf("idle pool flagged %+v", got)
	}
	// A single rated worker has no pool to compare against.
	if got := DetectStragglers(flightSeq(5, map[int]int64{0: 10}), StragglerConfig{}); got != nil {
		t.Fatalf("single worker flagged %+v", got)
	}
}

func TestDetectStragglersLateJoiner(t *testing.T) {
	// Worker 4 appears only in the last two flights (autoscale spin-up): its
	// span is below MinFlights, so it must not be judged against the veterans.
	flights := flightSeq(5, map[int]int64{0: 10, 1: 10, 2: 10})
	for fi := 3; fi < 5; fi++ {
		flights[fi].PerWorker = append(flights[fi].PerWorker,
			telemetry.WorkerSnapshot{Worker: 4, Tasks: int64(fi-2) * 1})
	}
	if got := DetectStragglers(flights, StragglerConfig{}); len(got) != 0 {
		t.Fatalf("late joiner flagged %+v", got)
	}
}
