package diagnosis

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// PEFlow is one PE's row in the flow ledger. The worker loop and router cache
// the pointer once per worker (no map lookups per task) and update fields with
// the same lock-free primitives the telemetry shards use. All methods are
// nil-receiver safe so call sites stay unconditional under the
// nil-costs-nothing discipline.
type PEFlow struct {
	name   string
	source atomic.Bool // saw a Generate execution (pacing source, not a stage)

	tasksIn  telemetry.Counter
	tasksOut telemetry.Counter
	bytesIn  telemetry.Counter
	bytesOut telemetry.Counter

	// FenceDrops and Replays are exported so the state layer (fence drop
	// attribution) and the transports (XAUTOCLAIM replay attribution) can be
	// handed the counters directly without importing this package's internals.
	FenceDrops telemetry.Counter
	Replays    telemetry.Counter

	service   *telemetry.Histogram // every Process/Finalize execution
	queueWait *telemetry.Histogram // sampled: traced deliveries only (emit→start)

	servers atomic.Int64 // worker slots able to execute this PE
	firstNs atomic.Int64 // first observed execution start (UnixNano)
	lastNs  atomic.Int64 // last observed execution end (UnixNano)
}

// AddServer registers one worker slot as able to execute this PE (called once
// per worker at build time; pool workers register for every pooled PE).
func (f *PEFlow) AddServer() {
	if f == nil {
		return
	}
	f.servers.Add(1)
}

// ObserveExec records one execution span plus the delivered value's
// approximate payload size. generate marks a source Generate execution, which
// is excluded from the service histogram (one Generate spans the whole run,
// so its "service time" would always win the blame ranking by construction).
func (f *PEFlow) ObserveExec(startNs, endNs, bytes int64, generate bool) {
	if f == nil {
		return
	}
	f.tasksIn.Inc()
	f.bytesIn.Add(bytes)
	f.firstNs.CompareAndSwap(0, startNs)
	if endNs > f.lastNs.Load() {
		f.lastNs.Store(endNs)
	}
	if generate {
		f.source.Store(true)
		return
	}
	if d := endNs - startNs; d >= 0 {
		f.service.Observe(d)
	}
}

// ObserveQueueWait records a sampled emit→start wait (traced tasks carry the
// emission timestamp on the wire; untraced ones don't, so this histogram is a
// sample, not a census).
func (f *PEFlow) ObserveQueueWait(ns int64) {
	if f == nil || ns < 0 {
		return
	}
	f.queueWait.Observe(ns)
}

// ObserveOut records one task emitted by this PE.
func (f *PEFlow) ObserveOut(bytes int64) {
	if f == nil {
		return
	}
	f.tasksOut.Inc()
	f.bytesOut.Add(bytes)
}

// EdgeFlow is one graph edge's row in the flow ledger.
type EdgeFlow struct {
	name  string
	tasks telemetry.Counter
	bytes telemetry.Counter
}

// ObserveTask records one task routed over this edge.
func (e *EdgeFlow) ObserveTask(bytes int64) {
	if e == nil {
		return
	}
	e.tasks.Inc()
	e.bytes.Add(bytes)
}

// EdgeName builds the canonical edge key used by the ledger.
func EdgeName(from, fromPort, to, toPort string) string {
	return from + ":" + fromPort + "->" + to + ":" + toPort
}

// FlowLedger keys PEFlow/EdgeFlow rows by PE name and edge. Resolution takes
// a lock but happens only at worker-build time (rows are cached by the hot
// paths); Snapshot is the only other locked path.
type FlowLedger struct {
	mu    sync.Mutex
	pes   map[string]*PEFlow
	edges map[string]*EdgeFlow
}

// NewFlowLedger creates an empty ledger.
func NewFlowLedger() *FlowLedger {
	return &FlowLedger{pes: map[string]*PEFlow{}, edges: map[string]*EdgeFlow{}}
}

// PE resolves (creating on first use) the ledger row for a PE name.
func (l *FlowLedger) PE(name string) *PEFlow {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.pes[name]
	if !ok {
		f = &PEFlow{name: name,
			service:   telemetry.NewLatencyHistogram(),
			queueWait: telemetry.NewLatencyHistogram()}
		l.pes[name] = f
	}
	return f
}

// Edge resolves (creating on first use) the ledger row for an edge key.
func (l *FlowLedger) Edge(name string) *EdgeFlow {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.edges[name]
	if !ok {
		e = &EdgeFlow{name: name}
		l.edges[name] = e
	}
	return e
}

// PEFlowSnapshot is the JSON view of one PE's ledger row plus the derived
// capacity figures the verdict is built from.
type PEFlowSnapshot struct {
	PE       string `json:"pe"`
	Source   bool   `json:"source,omitempty"`
	Servers  int64  `json:"servers"`
	TasksIn  int64  `json:"tasks_in"`
	TasksOut int64  `json:"tasks_out"`
	BytesIn  int64  `json:"bytes_in"`
	BytesOut int64  `json:"bytes_out"`
	// FenceDrops counts duplicate mutations the exactly-once fence dropped for
	// this PE; Replays counts tasks re-delivered to it via XAUTOCLAIM.
	FenceDrops int64                       `json:"fence_drops,omitempty"`
	Replays    int64                       `json:"replays,omitempty"`
	Service    telemetry.HistogramSnapshot `json:"service"`
	QueueWait  telemetry.HistogramSnapshot `json:"queue_wait"`
	// Utilization is busy time (service sum) over servers × active window;
	// CeilingPerSec is the offered-rate ceiling servers/mean-service implies.
	WindowSeconds float64 `json:"window_seconds,omitempty"`
	Utilization   float64 `json:"utilization,omitempty"`
	CeilingPerSec float64 `json:"ceiling_per_sec,omitempty"`
}

// EdgeFlowSnapshot is the JSON view of one edge's ledger row.
type EdgeFlowSnapshot struct {
	Edge  string `json:"edge"`
	Tasks int64  `json:"tasks"`
	Bytes int64  `json:"bytes"`
}

// FlowSnapshot is the ledger's point-in-time view, sorted by name.
type FlowSnapshot struct {
	PEs   []PEFlowSnapshot   `json:"pes,omitempty"`
	Edges []EdgeFlowSnapshot `json:"edges,omitempty"`
}

// Snapshot captures every row. Derived figures (utilization, ceiling) are
// computed here, on the cold path.
func (l *FlowLedger) Snapshot() FlowSnapshot {
	if l == nil {
		return FlowSnapshot{}
	}
	l.mu.Lock()
	pes := make([]*PEFlow, 0, len(l.pes))
	for _, f := range l.pes {
		pes = append(pes, f)
	}
	edges := make([]*EdgeFlow, 0, len(l.edges))
	for _, e := range l.edges {
		edges = append(edges, e)
	}
	l.mu.Unlock()

	var out FlowSnapshot
	for _, f := range pes {
		s := PEFlowSnapshot{
			PE:         f.name,
			Source:     f.source.Load(),
			Servers:    f.servers.Load(),
			TasksIn:    f.tasksIn.Load(),
			TasksOut:   f.tasksOut.Load(),
			BytesIn:    f.bytesIn.Load(),
			BytesOut:   f.bytesOut.Load(),
			FenceDrops: f.FenceDrops.Load(),
			Replays:    f.Replays.Load(),
			Service:    f.service.Snapshot(),
			QueueWait:  f.queueWait.Snapshot(),
		}
		first, last := f.firstNs.Load(), f.lastNs.Load()
		if last > first && first > 0 {
			s.WindowSeconds = float64(last-first) / float64(time.Second)
		}
		if s.Servers > 0 && s.WindowSeconds > 0 && s.Service.Count > 0 {
			busy := float64(s.Service.Sum) / float64(time.Second)
			s.Utilization = busy / (s.WindowSeconds * float64(s.Servers))
		}
		if s.Service.Count > 0 && s.Service.Mean > 0 {
			s.CeilingPerSec = float64(s.Servers) * float64(time.Second) / s.Service.Mean
		}
		out.PEs = append(out.PEs, s)
	}
	for _, e := range edges {
		out.Edges = append(out.Edges, EdgeFlowSnapshot{Edge: e.name, Tasks: e.tasks.Load(), Bytes: e.bytes.Load()})
	}
	sort.Slice(out.PEs, func(i, j int) bool { return out.PEs[i].PE < out.PEs[j].PE })
	sort.Slice(out.Edges, func(i, j int) bool { return out.Edges[i].Edge < out.Edges[j].Edge })
	return out
}

// ValueBytes approximates a task payload's size: exact for strings and byte
// slices, scalar width for numbers, and a flat floor for opaque structs — a
// throughput-shape signal, not an accounting figure.
func ValueBytes(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case string:
		return int64(len(x))
	case []byte:
		return int64(len(x))
	case bool:
		return 1
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, uintptr, float32, float64:
		return 8
	default:
		return 16
	}
}
