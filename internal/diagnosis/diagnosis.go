// Package diagnosis is the bottleneck-attribution layer on top of
// internal/telemetry: it answers "which PE or edge is the wall, and why —
// service time, queue wait, stragglers, or replay churn?".
//
// It bundles four instruments: a per-PE / per-edge flow ledger fed by the
// worker loop and router (tasks, bytes, fence drops, replays, service-time
// and sampled queue-wait histograms), critical-path analysis over the
// tracer's assembled source→sink paths, a bounded sequence-numbered run-event
// journal of lifecycle moments, and a straggler detector over the
// flight-recorder ring. Diagnose fuses them into a Report whose Verdict names
// the bottleneck PE, the dominant stage, its utilization, and the
// offered-rate ceiling it implies — the sensor suite the feedback autoscaler
// (ROADMAP item 4) subscribes to.
//
// Like telemetry, the package imports only the standard library plus
// telemetry itself, so every layer above (state, runtime, transports,
// mappings, harness) can feed it without import cycles. All hot-path entry
// points are nil-safe: a nil *Diag (or nil ledger/journal inside one) costs a
// pointer test and nothing else.
package diagnosis

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Config sizes a Diag. The zero value gives useful defaults.
type Config struct {
	// JournalRing bounds the run-event journal; 0 means DefaultJournalRing.
	JournalRing int
	// Straggler tunes the flight-recorder straggler detector.
	Straggler StragglerConfig
}

// Diag is one diagnosis plane: the flow ledger plus the run-event journal.
// Like a telemetry.Registry it may outlive a single run — the harness shares
// one across repetitions, in which case ledger rows accumulate.
type Diag struct {
	Flow    *FlowLedger
	Journal *Journal

	straggler StragglerConfig
}

// New creates a diagnosis plane.
func New(cfg Config) *Diag {
	return &Diag{Flow: NewFlowLedger(), Journal: NewJournal(cfg.JournalRing), straggler: cfg.Straggler}
}

// PE resolves the flow-ledger row for a PE. Nil-safe: returns nil on a nil
// Diag, and every PEFlow method is in turn nil-safe.
func (d *Diag) PE(name string) *PEFlow {
	if d == nil {
		return nil
	}
	return d.Flow.PE(name)
}

// Edge resolves the flow-ledger row for an edge key (see EdgeName). Nil-safe.
func (d *Diag) Edge(name string) *EdgeFlow {
	if d == nil {
		return nil
	}
	return d.Flow.Edge(name)
}

// Log appends a journal event. Nil-safe.
func (d *Diag) Log(kind string, worker int, pe, detail string, n int64) {
	if d == nil {
		return
	}
	d.Journal.Append(kind, worker, pe, detail, n)
}

// Verdict names the bottleneck and the stage that makes it one.
type Verdict struct {
	// Bottleneck is the PE the evidence points at; empty when the run produced
	// no attributable service time.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Stage is what dominates at the bottleneck: "service" (the PE itself is
	// the wall), "queue_wait" (work outruns its capacity — under-provisioned),
	// or "replay" (reclaim/fence churn is eating it).
	Stage string `json:"stage,omitempty"`
	// Utilization is the bottleneck's busy share of its worker slots over its
	// active window.
	Utilization float64 `json:"utilization,omitempty"`
	// CeilingPerSec is the offered-rate ceiling the bottleneck's mean service
	// time and server count imply (tasks/sec through that PE).
	CeilingPerSec float64 `json:"ceiling_per_sec,omitempty"`
	// Detail is a one-line human rendering of the evidence.
	Detail string `json:"detail,omitempty"`
}

// Report is the full diagnosis payload: verdict, blame ranking, flow ledger,
// decomposed paths, stragglers, and the journal's high-water mark. It is the
// /diagnosis endpoint's body and what BENCH_*.json embeds.
type Report struct {
	At            time.Time    `json:"at"`
	Verdict       Verdict      `json:"verdict"`
	Flow          FlowSnapshot `json:"flow"`
	Paths         PathAnalysis `json:"paths"`
	Stragglers    []Straggler  `json:"stragglers,omitempty"`
	JournalEvents uint64       `json:"journal_events"`
}

// Diagnose fuses the ledger, the registry's traces and flights, and the
// journal into a Report. reg may be nil, in which case the report is
// ledger-only (no path decomposition, no straggler scan).
func (d *Diag) Diagnose(reg *telemetry.Registry) Report {
	rep := Report{At: time.Now()}
	if d == nil {
		return rep
	}
	rep.Flow = d.Flow.Snapshot()
	rep.JournalEvents = d.Journal.Total()
	if reg != nil {
		if tr := reg.Tracer(); tr != nil {
			rep.Paths = AnalyzePaths(tr.Assemble(64))
		}
		rep.Stragglers = DetectStragglers(reg.Flights(), d.straggler)
	}
	rep.Verdict = verdict(rep.Flow, rep.Paths, rep.Stragglers)
	return rep
}

// replayStageShare is the replay fraction of a PE's deliveries above which
// the verdict blames replay churn rather than raw capacity.
const replayStageShare = 0.25

// verdict picks the bottleneck PE by ledger utilization (falling back to the
// trace blame ranking when utilization is unavailable) and decides which
// stage dominates there. Sources are excluded — a pacing Generate is busy by
// construction, not a wall.
func verdict(flow FlowSnapshot, paths PathAnalysis, stragglers []Straggler) Verdict {
	var v Verdict
	var pick *PEFlowSnapshot
	for i := range flow.PEs {
		pe := &flow.PEs[i]
		if pe.Source || pe.Service.Count == 0 {
			continue
		}
		if pick == nil || pe.Utilization > pick.Utilization {
			pick = pe
		}
	}
	if pick == nil {
		// No ledger service data (e.g. analysis over traces alone): fall back
		// to the heaviest PE in the blame ranking.
		for _, b := range paths.Blame {
			v.Bottleneck = b.PE
			v.Stage = "service"
			if b.QueueNs > b.SvcNs {
				v.Stage = "queue_wait"
			}
			v.Detail = fmt.Sprintf("%s carries %.0f%% of sampled path time (trace-only evidence)",
				b.PE, 100*b.Share)
			return v
		}
		return v
	}
	v.Bottleneck = pick.PE
	v.Utilization = pick.Utilization
	v.CeilingPerSec = pick.CeilingPerSec

	// Stage: replay churn first, then queue-wait vs service by which segment
	// dominates at the bottleneck (trace blame when available, the ledger's
	// sampled queue-wait histogram otherwise).
	queueNs, svcNs := float64(pick.QueueWait.Mean), float64(pick.Service.Mean)
	for _, b := range paths.Blame {
		if b.PE == pick.PE && b.Hops > 0 {
			queueNs = float64(b.QueueNs) / float64(b.Hops)
			svcNs = float64(b.SvcNs) / float64(b.Hops)
			break
		}
	}
	switch {
	case pick.TasksIn > 0 && float64(pick.Replays+pick.FenceDrops) > replayStageShare*float64(pick.TasksIn):
		v.Stage = "replay"
		v.Detail = fmt.Sprintf("%s: %d replays + %d fence drops over %d deliveries — recovery churn dominates",
			pick.PE, pick.Replays, pick.FenceDrops, pick.TasksIn)
	case queueNs > svcNs:
		v.Stage = "queue_wait"
		v.Detail = fmt.Sprintf("%s: tasks wait %s queued vs %s service (util %.0f%%, ceiling ≈%.0f/s) — under-provisioned",
			pick.PE, time.Duration(queueNs), time.Duration(svcNs), 100*pick.Utilization, pick.CeilingPerSec)
	default:
		v.Stage = "service"
		v.Detail = fmt.Sprintf("%s: service %s/task at %.0f%% utilization caps offered rate at ≈%.0f/s",
			pick.PE, time.Duration(svcNs), 100*pick.Utilization, pick.CeilingPerSec)
	}
	if len(stragglers) > 0 {
		v.Detail += fmt.Sprintf("; %d straggler worker(s) flagged", len(stragglers))
	}
	return v
}
