package diagnosis

import (
	"fmt"
	"strings"
	"time"
)

// Render formats a Report as the text block d4prun/d4pbench print: the
// verdict line, the blame ranking, the flow ledger, and any stragglers.
func Render(r Report) string {
	var b strings.Builder
	b.WriteString("== diagnosis ==\n")
	if r.Verdict.Bottleneck == "" {
		b.WriteString("verdict: no attributable bottleneck (no service time recorded)\n")
	} else {
		fmt.Fprintf(&b, "verdict: bottleneck=%s stage=%s", r.Verdict.Bottleneck, r.Verdict.Stage)
		if r.Verdict.Utilization > 0 {
			fmt.Fprintf(&b, " util=%.0f%%", 100*r.Verdict.Utilization)
		}
		if r.Verdict.CeilingPerSec > 0 {
			fmt.Fprintf(&b, " ceiling≈%.0f/s", r.Verdict.CeilingPerSec)
		}
		b.WriteByte('\n')
		if r.Verdict.Detail != "" {
			fmt.Fprintf(&b, "  %s\n", r.Verdict.Detail)
		}
	}

	if len(r.Paths.Blame) > 0 {
		fmt.Fprintf(&b, "blame (over %d sampled paths, %d complete):\n",
			r.Paths.TotalPaths, r.Paths.CompletePaths)
		fmt.Fprintf(&b, "  %-16s %6s %10s %10s %10s %7s\n", "pe", "hops", "queue", "service", "ack", "share")
		for _, bl := range r.Paths.Blame {
			fmt.Fprintf(&b, "  %-16s %6d %10s %10s %10s %6.1f%%\n",
				bl.PE, bl.Hops, time.Duration(bl.QueueNs), time.Duration(bl.SvcNs),
				time.Duration(bl.AckNs), 100*bl.Share)
		}
	}

	if len(r.Flow.PEs) > 0 {
		b.WriteString("flow ledger:\n")
		fmt.Fprintf(&b, "  %-16s %4s %8s %8s %10s %10s %6s %9s %7s %7s\n",
			"pe", "srv", "in", "out", "svc.mean", "svc.max", "util", "ceil/s", "replay", "fdrops")
		for _, pe := range r.Flow.PEs {
			name := pe.PE
			if pe.Source {
				name += "*"
			}
			svcMean, svcMax := "-", "-"
			if pe.Service.Count > 0 {
				svcMean = time.Duration(int64(pe.Service.Mean)).String()
				svcMax = time.Duration(pe.Service.Max).String()
			}
			fmt.Fprintf(&b, "  %-16s %4d %8d %8d %10s %10s %5.0f%% %9.0f %7d %7d\n",
				name, pe.Servers, pe.TasksIn, pe.TasksOut, svcMean, svcMax,
				100*pe.Utilization, pe.CeilingPerSec, pe.Replays, pe.FenceDrops)
		}
		b.WriteString("  (* = source; Generate spans excluded from service)\n")
	}
	if len(r.Flow.Edges) > 0 {
		b.WriteString("edges:\n")
		for _, e := range r.Flow.Edges {
			fmt.Fprintf(&b, "  %-40s %8d tasks %12d bytes\n", e.Edge, e.Tasks, e.Bytes)
		}
	}
	for _, s := range r.Stragglers {
		fmt.Fprintf(&b, "straggler: worker %d at %.1f tasks/flight vs pool median %.1f (%.0f%%)\n",
			s.Worker, s.TasksPerFlight, s.PoolMedian, 100*s.Ratio)
	}
	fmt.Fprintf(&b, "journal: %d events\n", r.JournalEvents)
	return b.String()
}
