package diagnosis

import (
	"sync"
	"testing"
)

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(EvWorkerStart, i, "pe", "", 0)
	}
	if got := j.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first, with monotone sequence numbers 7..10 surviving.
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if tail := j.Tail(2); len(tail) != 2 || tail[1].Seq != 10 {
		t.Fatalf("Tail(2) = %+v, want last two entries ending at seq 10", tail)
	}
	if since := j.Since(8); len(since) != 2 || since[0].Seq != 9 {
		t.Fatalf("Since(8) = %+v, want seqs 9,10", since)
	}
	if since := j.Since(10); since != nil {
		t.Fatalf("Since(10) = %+v, want nil", since)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(EvRunStart, -1, "", "", 0) // must not panic
	if j.Total() != 0 || j.Events() != nil || j.Tail(3) != nil || j.Since(0) != nil {
		t.Fatal("nil journal should report empty everything")
	}
	var d *Diag
	d.Log(EvRunStart, -1, "", "", 0)
	d.PE("x").ObserveExec(1, 2, 3, false)
	d.Edge("a->b").ObserveTask(1)
	if rep := d.Diagnose(nil); rep.JournalEvents != 0 {
		t.Fatal("nil Diag should diagnose to an empty report")
	}
}

// TestJournalConcurrentAppendTail hammers Append from many goroutines while
// tailers read concurrently — the invariants under -race are: no data race, no
// panic, sequence numbers strictly increasing within any returned slice, and
// the final Total equal to the number of appends.
func TestJournalConcurrentAppendTail(t *testing.T) {
	j := NewJournal(64)
	const writers, perWriter, readers = 8, 500, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := j.Since(lastSeen)
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("non-monotone seqs %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
				if len(evs) > 0 {
					lastSeen = evs[len(evs)-1].Seq
				}
				j.Tail(16)
				j.Total()
			}
		}()
	}
	var writeWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWg.Add(1)
		go func(w int) {
			defer writeWg.Done()
			for i := 0; i < perWriter; i++ {
				j.Append(EvPill, w, "pe", "detail", int64(i))
			}
		}(w)
	}
	writeWg.Wait()
	close(stop)
	wg.Wait()
	if got := j.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	if evs := j.Events(); len(evs) != 64 {
		t.Fatalf("retained %d events, want ring capacity 64", len(evs))
	}
}
