package diagnosis

import (
	"sort"

	"repro/internal/telemetry"
)

// HopCost is one hop of a sampled trace decomposed into its three segments:
// queue wait (emission → execution start, i.e. transport + prefetch), service
// (execution span), and ack (execution end → delivery release).
type HopCost struct {
	ID       string `json:"id"`
	PE       string `json:"pe,omitempty"`
	Worker   int    `json:"worker"`
	QueueNs  int64  `json:"queue_ns"`
	SvcNs    int64  `json:"service_ns"`
	AckNs    int64  `json:"ack_ns"`
	Replayed bool   `json:"replayed,omitempty"` // >1 recorded execution
}

// PathCost is one sampled source→sink path's decomposition, root first.
type PathCost struct {
	ID       string    `json:"id"`
	Complete bool      `json:"complete"`
	TotalNs  int64     `json:"total_ns"`
	Hops     []HopCost `json:"hops"`
}

// PEBlame is one PE's aggregate share of sampled path time — the blame
// ranking's row.
type PEBlame struct {
	PE       string  `json:"pe"`
	Hops     int     `json:"hops"`
	QueueNs  int64   `json:"queue_ns"`
	SvcNs    int64   `json:"service_ns"`
	AckNs    int64   `json:"ack_ns"`
	TotalNs  int64   `json:"total_ns"`
	Share    float64 `json:"share"` // of the summed decomposed path time
	Replayed int     `json:"replayed,omitempty"`
}

// PathAnalysis is the critical-path view over a set of assembled traces.
type PathAnalysis struct {
	// Paths holds at most maxReportPaths decomposed paths (complete first, as
	// ordered by Tracer.Assemble); Blame aggregates over all of them.
	Paths         []PathCost `json:"paths,omitempty"`
	Blame         []PEBlame  `json:"blame,omitempty"`
	TotalNs       int64      `json:"total_ns"`
	TotalPaths    int        `json:"total_paths"`
	CompletePaths int        `json:"complete_paths"`
}

// maxReportPaths caps how many raw decomposed paths a report embeds (the
// blame ranking still aggregates every analyzed trace).
const maxReportPaths = 8

// AnalyzePaths decomposes assembled traces hop by hop and aggregates a per-PE
// blame ranking. Synthesized hops (the untraced root execution) and hops with
// incomplete timestamps contribute only the segments they actually carry.
func AnalyzePaths(traces []telemetry.Trace) PathAnalysis {
	var out PathAnalysis
	blame := map[string]*PEBlame{}
	for _, tr := range traces {
		pc := PathCost{ID: tr.ID, Complete: tr.Complete}
		for _, h := range tr.Hops {
			hc := HopCost{ID: h.ID, PE: h.PE, Worker: h.Worker, Replayed: h.Executions > 1}
			if h.StartedAt > 0 && h.EnqueuedAt > 0 && h.StartedAt > h.EnqueuedAt {
				hc.QueueNs = h.StartedAt - h.EnqueuedAt
			}
			if h.EndedAt > 0 && h.StartedAt > 0 && h.EndedAt > h.StartedAt {
				hc.SvcNs = h.EndedAt - h.StartedAt
			}
			if h.AckedAt > 0 && h.EndedAt > 0 && h.AckedAt > h.EndedAt {
				hc.AckNs = h.AckedAt - h.EndedAt
			}
			pc.TotalNs += hc.QueueNs + hc.SvcNs + hc.AckNs
			pc.Hops = append(pc.Hops, hc)
			if h.Synthesized || h.PE == "" {
				continue
			}
			b, ok := blame[h.PE]
			if !ok {
				b = &PEBlame{PE: h.PE}
				blame[h.PE] = b
			}
			b.Hops++
			b.QueueNs += hc.QueueNs
			b.SvcNs += hc.SvcNs
			b.AckNs += hc.AckNs
			b.TotalNs += hc.QueueNs + hc.SvcNs + hc.AckNs
			if hc.Replayed {
				b.Replayed++
			}
		}
		out.TotalNs += pc.TotalNs
		out.TotalPaths++
		if tr.Complete {
			out.CompletePaths++
		}
		if len(out.Paths) < maxReportPaths {
			out.Paths = append(out.Paths, pc)
		}
	}
	for _, b := range blame {
		if out.TotalNs > 0 {
			b.Share = float64(b.TotalNs) / float64(out.TotalNs)
		}
		out.Blame = append(out.Blame, *b)
	}
	sort.Slice(out.Blame, func(i, j int) bool {
		if out.Blame[i].TotalNs != out.Blame[j].TotalNs {
			return out.Blame[i].TotalNs > out.Blame[j].TotalNs
		}
		return out.Blame[i].PE < out.Blame[j].PE
	})
	return out
}
