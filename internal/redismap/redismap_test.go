package redismap_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	_ "repro/internal/multiproc" // register multi for conformance comparison
	"repro/internal/platform"
	_ "repro/internal/redismap" // register redis mappings
)

func init() {
	codec.Register(keyed{})
}

type keyed struct {
	Key string
	Val int
}

func startRedis(t *testing.T) string {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func redisOpts(t *testing.T, procs int) mapping.Options {
	return mapping.Options{
		Processes: procs,
		Platform:  platform.Platform{Name: "test", Cores: 4, QueueOpCost: 0},
		Seed:      11,
		RedisAddr: startRedis(t),
	}
}

type collector struct {
	mu    sync.Mutex
	sum   int64
	count int64
}

func (c *collector) add(v int64) {
	c.mu.Lock()
	c.sum += v
	c.count++
	c.mu.Unlock()
}

func (c *collector) snapshot() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum, c.count
}

func pipelineGraph(n int, col *collector) *graph.Graph {
	g := graph.New("redispipe")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 1; i <= n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("square", func(ctx *core.Context, v any) (any, error) {
			return v.(int) * v.(int), nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sum", func(ctx *core.Context, v any) error {
			col.add(int64(v.(int)))
			return nil
		})
	})
	g.Pipe("gen", "square")
	g.Pipe("square", "sum")
	return g
}

func wantSquareSum(n int) int64 {
	var s int64
	for i := 1; i <= n; i++ {
		s += int64(i * i)
	}
	return s
}

func TestDynRedisPipeline(t *testing.T) {
	for _, name := range []string{"dyn_redis", "dyn_auto_redis", "hybrid_redis"} {
		t.Run(name, func(t *testing.T) {
			const n = 30
			col := &collector{}
			g := pipelineGraph(n, col)
			m, err := mapping.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.Execute(g, redisOpts(t, 4))
			if err != nil {
				t.Fatal(err)
			}
			sum, count := col.snapshot()
			if sum != wantSquareSum(n) || count != n {
				t.Errorf("sum=%d count=%d want sum=%d count=%d", sum, count, wantSquareSum(n), n)
			}
			if rep.Outputs != n || rep.Tasks == 0 {
				t.Errorf("report: %+v", rep)
			}
		})
	}
}

func TestDynRedisRequiresRedisAddr(t *testing.T) {
	col := &collector{}
	g := pipelineGraph(5, col)
	m, _ := mapping.Get("dyn_redis")
	opts := mapping.Options{Processes: 2, Platform: platform.Server}
	if _, err := m.Execute(g, opts); err == nil || !strings.Contains(err.Error(), "RedisAddr") {
		t.Fatalf("want RedisAddr error, got %v", err)
	}
}

func TestDynRedisRejectsStateful(t *testing.T) {
	col := &collector{}
	g := pipelineGraph(5, col)
	g.Node("square").SetStateful(true)
	for _, name := range []string{"dyn_redis", "dyn_auto_redis"} {
		m, _ := mapping.Get(name)
		if _, err := m.Execute(g, redisOpts(t, 2)); err == nil || !strings.Contains(err.Error(), "stateful") {
			t.Errorf("%s: want stateful rejection, got %v", name, err)
		}
	}
}

// statefulCountPE counts per-key occurrences and flushes (key,count) pairs
// at Final.
type statefulCountPE struct {
	core.Base
	counts map[string]int
}

func newStatefulCount() core.PE {
	return &statefulCountPE{
		Base:   core.NewBase("kcount", core.In(), core.Out()),
		counts: map[string]int{},
	}
}

func (p *statefulCountPE) Process(ctx *core.Context, port string, v any) error {
	p.counts[v.(keyed).Key]++
	return nil
}

func (p *statefulCountPE) Final(ctx *core.Context) error {
	for k, n := range p.counts {
		if err := ctx.EmitDefault(keyed{Key: k, Val: n}); err != nil {
			return err
		}
	}
	return nil
}

// statefulGraph builds gen → kcount(group-by, 3 inst) → collect.
func statefulGraph(n int, results *sync.Map) *graph.Graph {
	g := graph.New("stateful")
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < n; i++ {
				if err := ctx.EmitDefault(keyed{Key: keys[i%len(keys)], Val: i}); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(newStatefulCount).SetInstances(3).SetStateful(true)
	g.Add(func() core.PE {
		return core.NewSink("collect", func(ctx *core.Context, v any) error {
			kv := v.(keyed)
			if prev, loaded := results.LoadOrStore(kv.Key, kv.Val); loaded {
				results.Store(kv.Key, prev.(int)+kv.Val)
			}
			return nil
		})
	})
	g.Pipe("gen", "kcount").SetGrouping(graph.GroupByKey(func(v any) string { return v.(keyed).Key }))
	g.Pipe("kcount", "collect")
	return g
}

func TestHybridStatefulGroupByAndFinal(t *testing.T) {
	const n = 50
	var results sync.Map
	g := statefulGraph(n, &results)
	m, _ := mapping.Get("hybrid_redis")
	rep, err := m.Execute(g, redisOpts(t, 5)) // 3 stateful + 2 stateless
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	distinct := 0
	results.Range(func(k, v any) bool {
		total += v.(int)
		distinct++
		return true
	})
	if total != n {
		t.Errorf("aggregated count %d want %d", total, n)
	}
	if distinct != 5 {
		t.Errorf("distinct keys %d want 5", distinct)
	}
	if rep.Tasks == 0 {
		t.Error("no tasks recorded")
	}
}

func TestHybridAgreesWithMultiOnStatefulWorkflow(t *testing.T) {
	const n = 40
	var hybridRes, multiRes sync.Map
	hg := statefulGraph(n, &hybridRes)
	mg := statefulGraph(n, &multiRes)

	hm, _ := mapping.Get("hybrid_redis")
	if _, err := hm.Execute(hg, redisOpts(t, 5)); err != nil {
		t.Fatal(err)
	}
	mm, _ := mapping.Get("multi")
	if _, err := mm.Execute(mg, mapping.Options{
		Processes: 6, Platform: platform.Platform{Name: "test", Cores: 4}, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	hybridRes.Range(func(k, hv any) bool {
		mv, ok := multiRes.Load(k)
		if !ok || mv.(int) != hv.(int) {
			t.Errorf("key %v: hybrid=%v multi=%v", k, hv, mv)
		}
		return true
	})
}

func TestHybridMinimumProcesses(t *testing.T) {
	var results sync.Map
	g := statefulGraph(10, &results)
	m, _ := mapping.Get("hybrid_redis")
	// 3 stateful instances need at least 4 processes.
	if _, err := m.Execute(g, redisOpts(t, 3)); err == nil || !strings.Contains(err.Error(), "at least") {
		t.Fatalf("want minimum-processes error, got %v", err)
	}
}

func TestHybridRejectsStatefulSource(t *testing.T) {
	col := &collector{}
	g := pipelineGraph(5, col)
	g.Node("gen").SetStateful(true)
	m, _ := mapping.Get("hybrid_redis")
	if _, err := m.Execute(g, redisOpts(t, 4)); err == nil || !strings.Contains(err.Error(), "source") {
		t.Fatalf("want stateful-source rejection, got %v", err)
	}
}

func TestHybridRejectsGroupedEdgeIntoStateless(t *testing.T) {
	col := &collector{}
	g := pipelineGraph(5, col)
	g.OutEdges("gen")[0].SetGrouping(graph.GlobalGrouping())
	m, _ := mapping.Get("hybrid_redis")
	if _, err := m.Execute(g, redisOpts(t, 4)); err == nil || !strings.Contains(err.Error(), "stateless") {
		t.Fatalf("want grouped-into-stateless rejection, got %v", err)
	}
}

func TestHybridGlobalGroupingSingleInstance(t *testing.T) {
	var instances sync.Map
	g := graph.New("global")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 20; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("one", func(ctx *core.Context, v any) error {
			instances.Store(ctx.Instance(), true)
			return nil
		})
	}).SetInstances(3).SetStateful(true)
	g.Pipe("gen", "one").SetGrouping(graph.GlobalGrouping())

	m, _ := mapping.Get("hybrid_redis")
	if _, err := m.Execute(g, redisOpts(t, 5)); err != nil {
		t.Fatal(err)
	}
	count := 0
	instances.Range(func(k, v any) bool { count++; return true })
	if count != 1 {
		t.Errorf("global grouping hit %d instances, want 1", count)
	}
}

func TestDynAutoRedisTrace(t *testing.T) {
	const n = 40
	col := &collector{}
	g := graph.New("traced")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 1; i <= n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("work", func(ctx *core.Context, v any) (any, error) {
			ctx.Work(2 * time.Millisecond)
			return v, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			col.add(int64(v.(int)))
			return nil
		})
	})
	g.Pipe("gen", "work")
	g.Pipe("work", "sink")

	trace := &autoscale.Trace{}
	opts := redisOpts(t, 6)
	opts.Trace = trace
	m, _ := mapping.Get("dyn_auto_redis")
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	_, count := col.snapshot()
	if count != n {
		t.Errorf("sink saw %d values want %d", count, n)
	}
	if len(trace.Points()) == 0 {
		t.Error("no auto-scaler trace points recorded")
	}
}

func TestRedisErrorPropagates(t *testing.T) {
	g := graph.New("failing")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 5; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("boom", func(ctx *core.Context, v any) error {
			if v.(int) == 3 {
				return errBoom{}
			}
			return nil
		})
	})
	g.Pipe("gen", "boom")
	for _, name := range []string{"dyn_redis", "hybrid_redis"} {
		m, _ := mapping.Get(name)
		if _, err := m.Execute(g, redisOpts(t, 3)); err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("%s: error not propagated: %v", name, err)
		}
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "kaboom" }
