package redismap_test

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/state"
)

// TestDynRedisRecoversAbandonedTask injects a failure: a rogue consumer
// joins the worker group before the run, steals the first task from the
// stream and never acknowledges or processes it — the observable behaviour
// of a worker process that crashed mid-task. With RecoverStale the real
// workers must reclaim the pending entry via XAUTOCLAIM and finish the
// workflow completely.
func TestDynRedisRecoversAbandonedTask(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 15
	col := &collector{}
	g := graph.New("recovery")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 1; i <= n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			col.add(int64(v.(int)))
			return nil
		})
	})
	g.Pipe("gen", "sink")

	opts := mapping.Options{
		Processes:    3,
		Platform:     platformForTest(),
		Seed:         77,
		RedisAddr:    srv.Addr(),
		RecoverStale: true,
		PollTimeout:  2 * time.Millisecond,
		Retries:      40, // generous: termination must wait out the recovery
	}

	// The rogue consumer must steal the seeded source task before workers
	// start. Execute seeds the stream before launching workers, so we
	// pre-create the group, seed a marker... instead: run the theft
	// concurrently with a tiny head start for Execute's seeding.
	rogue := redisclient.Dial(srv.Addr())
	defer rogue.Close()

	theft := make(chan string, 1)
	go func() {
		// Poll until the run's queue appears, then steal one entry under a
		// consumer that will never ack it.
		for i := 0; i < 2000; i++ {
			keysReply, err := rogue.Do("KEYS", "d4p:recovery:*:queue")
			if err != nil || len(keysReply.Array) == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			queue := keysReply.Array[0].Str
			entries, err := rogue.XReadGroup("workers", "rogue", 1, 0, queue)
			if err == nil && len(entries) == 1 {
				theft <- entries[0].ID
				return
			}
			time.Sleep(time.Millisecond)
		}
		theft <- ""
	}()

	m, _ := mapping.Get("dyn_redis")
	rep, err := m.Execute(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	stolen := <-theft
	if stolen == "" {
		t.Skip("rogue consumer never managed to steal a task; nothing to assert")
	}
	// All n values must have reached the sink despite the theft: the stolen
	// task was reclaimed and re-executed by a live worker.
	_, count := col.snapshot()
	if count < n {
		t.Fatalf("sink saw %d values, want ≥ %d (stolen task %s not recovered)", count, n, stolen)
	}
	if rep.Tasks < n {
		t.Errorf("tasks=%d want ≥ %d", rep.Tasks, n)
	}
}

// TestDynRedisWithoutRecoveryDocumentsTheGap shows the inverse: with
// RecoverStale off, a stolen task stays pending forever, so the pending
// counter never reaches zero and the run would hang. We assert the
// precondition (pending stuck above zero) on a manually-constructed queue
// rather than hanging a full run.
func TestDynRedisWithoutRecoveryDocumentsTheGap(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := redisclient.Dial(srv.Addr())
	defer cl.Close()

	if err := cl.XGroupCreate("q", "workers", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XAddValues("q", "task", "payload"); err != nil {
		t.Fatal(err)
	}
	// Consumer reads and "dies".
	if _, err := cl.XReadGroup("workers", "dead", 1, 0, "q"); err != nil {
		t.Fatal(err)
	}
	// Without reclaim, nothing new is readable and the entry stays pending.
	entries, err := cl.XReadGroup("workers", "alive", 1, 0, "q")
	if err != nil || len(entries) != 0 {
		t.Fatalf("live consumer should see nothing new: %+v %v", entries, err)
	}
	sum, err := cl.XPendingSummary("q", "workers")
	if err != nil || sum.Count != 1 || sum.PerConsumer["dead"] != 1 {
		t.Fatalf("pending: %+v %v", sum, err)
	}
	// With reclaim (what RecoverStale does), the live consumer gets it.
	_, claimed, err := cl.XAutoClaim("q", "workers", "alive", 0, "0-0", 10)
	if err != nil || len(claimed) != 1 {
		t.Fatalf("XAUTOCLAIM: %+v %v", claimed, err)
	}
}

func platformForTest() platform.Platform {
	return platform.Platform{Name: "test", Cores: 4}
}

// replayItem is the keyed payload of the exactly-once replay tests.
type replayItem struct {
	Key string
	Val int64
}

func init() { codec.Register(replayItem{}) }

// slowKeyedCountPE is a managed keyed aggregator that dawdles on every
// update, so its deliveries sit unacknowledged long enough for XAUTOCLAIM
// to hand them to a second worker while the first is still processing.
type slowKeyedCountPE struct {
	core.Base
	delay time.Duration
}

func (p *slowKeyedCountPE) Process(ctx *core.Context, port string, v any) error {
	it := v.(replayItem)
	time.Sleep(p.delay)
	_, err := ctx.State().AddInt(it.Key, it.Val)
	return err
}

func (p *slowKeyedCountPE) Final(ctx *core.Context) error {
	entries, err := state.SortedEntries(ctx.State())
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := ctx.EmitDefault(e.Key + "=" + e.Value); err != nil {
			return err
		}
	}
	return nil
}

// replayAggGraph builds gen → slow keyed count (managed) → sink.
func replayAggGraph(items []replayItem, delay time.Duration, collect func(string)) *graph.Graph {
	g := graph.New("replayagg")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for _, it := range items {
				if err := ctx.EmitDefault(it); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return &slowKeyedCountPE{Base: core.NewBase("count", core.In(), core.Out()), delay: delay}
	}).SetKeyedState()
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			collect(v.(string))
			return nil
		})
	})
	g.Pipe("gen", "count").SetGrouping(graph.GroupByKey(func(v any) string { return v.(replayItem).Key }))
	g.Pipe("count", "sink")
	return g
}

// TestDynRedisExactlyOnceStateUnderLiveReplay runs a managed keyed
// aggregation through the real dyn_redis mapping with RecoverStale on and a
// poll timeout small enough that the XAUTOCLAIM idle threshold (8× the
// timeout) expires while a live worker is still chewing through its pulled
// batch: pending entries are genuinely claimed to other workers and both
// executions race — the seed's rejected combination, now the fenced path.
// The final aggregates must be byte-identical to an undisturbed sequential
// run: no double-applied updates, no lost updates, no early termination.
func TestDynRedisExactlyOnceStateUnderLiveReplay(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	items := make([]replayItem, 0, 40)
	for i := 0; i < 40; i++ {
		items = append(items, replayItem{Key: keys[i%len(keys)], Val: int64(i + 1)})
	}

	run := func(name string, opts mapping.Options, delay time.Duration) []string {
		var mu sync.Mutex
		var got []string
		g := replayAggGraph(items, delay, func(s string) {
			mu.Lock()
			got = append(got, s)
			mu.Unlock()
		})
		m, err := mapping.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Execute(g, opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mu.Lock()
		defer mu.Unlock()
		sort.Strings(got)
		return got
	}

	want := run("simple", mapping.Options{Processes: 1, Platform: platformForTest(), Seed: 31}, 0)
	if len(want) != len(keys) {
		t.Fatalf("reference flush: %v", want)
	}

	opts := mapping.Options{
		Processes:    3,
		Platform:     platformForTest(),
		Seed:         31,
		RedisAddr:    srv.Addr(),
		RecoverStale: true, // implies ExactlyOnceState for the managed PE
		PollTimeout:  time.Millisecond,
		Retries:      60,
	}
	got := run("dyn_redis", opts, 4*time.Millisecond)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("aggregates diverge under live replay:\n got %v\nwant %v", got, want)
	}
}
