package redismap_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/platform"
	"repro/internal/redisclient"
)

// TestDynRedisRecoversAbandonedTask injects a failure: a rogue consumer
// joins the worker group before the run, steals the first task from the
// stream and never acknowledges or processes it — the observable behaviour
// of a worker process that crashed mid-task. With RecoverStale the real
// workers must reclaim the pending entry via XAUTOCLAIM and finish the
// workflow completely.
func TestDynRedisRecoversAbandonedTask(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 15
	col := &collector{}
	g := graph.New("recovery")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 1; i <= n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			col.add(int64(v.(int)))
			return nil
		})
	})
	g.Pipe("gen", "sink")

	opts := mapping.Options{
		Processes:    3,
		Platform:     platformForTest(),
		Seed:         77,
		RedisAddr:    srv.Addr(),
		RecoverStale: true,
		PollTimeout:  2 * time.Millisecond,
		Retries:      40, // generous: termination must wait out the recovery
	}

	// The rogue consumer must steal the seeded source task before workers
	// start. Execute seeds the stream before launching workers, so we
	// pre-create the group, seed a marker... instead: run the theft
	// concurrently with a tiny head start for Execute's seeding.
	rogue := redisclient.Dial(srv.Addr())
	defer rogue.Close()

	theft := make(chan string, 1)
	go func() {
		// Poll until the run's queue appears, then steal one entry under a
		// consumer that will never ack it.
		for i := 0; i < 2000; i++ {
			keysReply, err := rogue.Do("KEYS", "d4p:recovery:*:queue")
			if err != nil || len(keysReply.Array) == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			queue := keysReply.Array[0].Str
			entries, err := rogue.XReadGroup("workers", "rogue", 1, 0, queue)
			if err == nil && len(entries) == 1 {
				theft <- entries[0].ID
				return
			}
			time.Sleep(time.Millisecond)
		}
		theft <- ""
	}()

	m, _ := mapping.Get("dyn_redis")
	rep, err := m.Execute(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	stolen := <-theft
	if stolen == "" {
		t.Skip("rogue consumer never managed to steal a task; nothing to assert")
	}
	// All n values must have reached the sink despite the theft: the stolen
	// task was reclaimed and re-executed by a live worker.
	_, count := col.snapshot()
	if count < n {
		t.Fatalf("sink saw %d values, want ≥ %d (stolen task %s not recovered)", count, n, stolen)
	}
	if rep.Tasks < n {
		t.Errorf("tasks=%d want ≥ %d", rep.Tasks, n)
	}
}

// TestDynRedisWithoutRecoveryDocumentsTheGap shows the inverse: with
// RecoverStale off, a stolen task stays pending forever, so the pending
// counter never reaches zero and the run would hang. We assert the
// precondition (pending stuck above zero) on a manually-constructed queue
// rather than hanging a full run.
func TestDynRedisWithoutRecoveryDocumentsTheGap(t *testing.T) {
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := redisclient.Dial(srv.Addr())
	defer cl.Close()

	if err := cl.XGroupCreate("q", "workers", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XAddValues("q", "task", "payload"); err != nil {
		t.Fatal(err)
	}
	// Consumer reads and "dies".
	if _, err := cl.XReadGroup("workers", "dead", 1, 0, "q"); err != nil {
		t.Fatal(err)
	}
	// Without reclaim, nothing new is readable and the entry stays pending.
	entries, err := cl.XReadGroup("workers", "alive", 1, 0, "q")
	if err != nil || len(entries) != 0 {
		t.Fatalf("live consumer should see nothing new: %+v %v", entries, err)
	}
	sum, err := cl.XPendingSummary("q", "workers")
	if err != nil || sum.Count != 1 || sum.PerConsumer["dead"] != 1 {
		t.Fatalf("pending: %+v %v", sum, err)
	}
	// With reclaim (what RecoverStale does), the live consumer gets it.
	_, claimed, err := cl.XAutoClaim("q", "workers", "alive", 0, "0-0", 10)
	if err != nil || len(claimed) != 1 {
		t.Fatalf("XAUTOCLAIM: %+v %v", claimed, err)
	}
}

func platformForTest() platform.Platform {
	return platform.Platform{Name: "test", Cores: 4}
}
