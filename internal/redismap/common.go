// Package redismap implements the paper's Redis-backed mappings:
//
//   - dyn_redis (Section 3.1.1): dynamic scheduling whose global queue is a
//     Redis Stream consumed through a consumer group, replacing the
//     multiprocessing queue of dyn_multi;
//   - dyn_auto_redis (Section 3.2.2): dyn_redis plus the Algorithm 1
//     auto-scaler driven by the consumer group's average idle time;
//   - hybrid_redis (Section 3.1.2): stateful PE instances pinned to
//     dedicated processes with private Redis list queues, while stateless
//     PEs keep dynamic scheduling on the global stream;
//   - hybrid_auto_redis: hybrid_redis with the auto-scaler on its stateless
//     pool.
//
// The mappings are planners over runtime.RedisTransport: tasks are
// gob-encoded (package codec) and shipped through a real TCP connection to
// the Redis server (internal/miniredis in this repository, or any
// RESP2-compatible server), so the cost structure of the Redis mappings —
// heavier than in-process queues, as the paper observes — is physically
// present rather than assumed. With Options.EmitBatch the transport
// pipelines the XADD/RPUSH commands of a batch into one round trip.
package redismap

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/redisclient"
)

// requireRedis validates the Redis address option.
func requireRedis(opts mapping.Options, technique string) (*redisclient.Client, error) {
	if opts.RedisAddr == "" {
		return nil, fmt.Errorf("%s: Options.RedisAddr is required (start internal/miniredis or point at a Redis server)", technique)
	}
	cl := redisclient.Dial(opts.RedisAddr)
	if err := cl.Ping(); err != nil {
		cl.Close()
		return nil, fmt.Errorf("%s: redis unreachable at %s: %w", technique, opts.RedisAddr, err)
	}
	return cl, nil
}
