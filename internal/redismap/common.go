// Package redismap implements the paper's Redis-backed mappings:
//
//   - dyn_redis (Section 3.1.1): dynamic scheduling whose global queue is a
//     Redis Stream consumed through a consumer group, replacing the
//     multiprocessing queue of dyn_multi;
//   - dyn_auto_redis (Section 3.2.2): dyn_redis plus the Algorithm 1
//     auto-scaler driven by the consumer group's average idle time;
//   - hybrid_redis (Section 3.1.2): stateful PE instances pinned to
//     dedicated processes with private Redis stream partitions, while
//     stateless PEs keep dynamic scheduling on the global stream;
//   - hybrid_auto_redis: hybrid_redis with the auto-scaler on its stateless
//     pool.
//
// The mappings are planners over runtime.RedisTransport: tasks are
// flat-binary-encoded (package codec) and shipped through real TCP
// connections to the Redis servers (internal/miniredis in this repository,
// or any RESP2-compatible server), so the cost structure of the Redis
// mappings — heavier than in-process queues, as the paper observes — is
// physically present rather than assumed. With Options.EmitBatch the
// transport pipelines the XADD commands of a batch into one round trip per
// shard.
//
// Every Redis-touching component of a run — transport, state backend, fence
// ledger, autoscale monitor — shares one redisclient.Cluster built here, so
// they agree on shard placement (the co-location invariant behind
// single-shard FENCEAPPLY/SINKAPPEND transactions) and no code path opens
// its own unrouted connection.
package redismap

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/redisclient"
)

// requireCluster validates the Redis data-plane addresses and dials the
// run's shared shard cluster. The caller owns the handle (defer Close).
func requireCluster(opts mapping.Options, technique string) (*redisclient.Cluster, error) {
	addrs := opts.ShardAddrs()
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%s: Options.RedisAddr or RedisAddrs is required (start internal/miniredis or point at Redis servers)", technique)
	}
	cluster, err := redisclient.NewCluster(addrs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", technique, err)
	}
	if err := cluster.Ping(); err != nil {
		cluster.Close()
		return nil, fmt.Errorf("%s: redis unreachable: %w", technique, err)
	}
	return cluster, nil
}
