// Package redismap implements the paper's three Redis-backed mappings:
//
//   - dyn_redis (Section 3.1.1): dynamic scheduling whose global queue is a
//     Redis Stream consumed through a consumer group, replacing the
//     multiprocessing queue of dyn_multi;
//   - dyn_auto_redis (Section 3.2.2): dyn_redis plus the Algorithm 1
//     auto-scaler driven by the consumer group's average idle time;
//   - hybrid_redis (Section 3.1.2): stateful PE instances pinned to
//     dedicated processes with private Redis list queues, while stateless
//     PEs keep dynamic scheduling on the global stream. Outputs of any
//     worker are routed either back to the global stream (stateless
//     destination) or to the private queue selected by the edge grouping
//     (stateful destination) — the design that gives dynamic optimization
//     stateful and grouping support without global state synchronization.
//
// Tasks are gob-encoded (package codec) and shipped through a real TCP
// connection to the Redis server (internal/miniredis in this repository, or
// any RESP2-compatible server), so the cost structure of the Redis mappings
// — heavier than in-process queues, as the paper observes — is physically
// present rather than assumed.
package redismap

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/redisclient"
)

// runNonce disambiguates concurrent runs against one server.
var runNonce atomic.Int64

// runKeys holds the Redis key names of one execution.
type runKeys struct {
	prefix  string
	queue   string // global stream
	group   string // consumer group name
	pending string // outstanding-task counter
}

func newRunKeys(g *graph.Graph, seed int64) runKeys {
	prefix := fmt.Sprintf("d4p:%s:%d:%d", g.Name, seed, runNonce.Add(1))
	return runKeys{
		prefix:  prefix,
		queue:   prefix + ":queue",
		group:   "workers",
		pending: prefix + ":pending",
	}
}

// privKey is the private queue (Redis list) of one stateful PE instance.
func (k runKeys) privKey(pe string, instance int) string {
	return fmt.Sprintf("%s:priv:%s:%d", k.prefix, pe, instance)
}

// taskField is the stream entry field carrying the encoded task.
const taskField = "task"

// pushStream INCRs the pending counter and appends an encoded task to the
// global stream. The counter is incremented first so that pending == 0
// implies no queued or in-flight work anywhere.
func pushStream(cl *redisclient.Client, k runKeys, t codec.Task) error {
	payload, err := codec.Encode(t)
	if err != nil {
		return err
	}
	if !t.Poison {
		if _, err := cl.Incr(k.pending); err != nil {
			return err
		}
	}
	_, err = cl.XAddValues(k.queue, taskField, payload)
	return err
}

// pushPrivate INCRs pending and RPUSHes an encoded task onto a stateful
// instance's private list.
func pushPrivate(cl *redisclient.Client, k runKeys, pe string, instance int, t codec.Task) error {
	payload, err := codec.Encode(t)
	if err != nil {
		return err
	}
	if !t.Poison {
		if _, err := cl.Incr(k.pending); err != nil {
			return err
		}
	}
	_, err = cl.RPush(k.privKey(pe, instance), payload)
	return err
}

// taskDone decrements the pending counter after a task is fully processed
// (its children already pushed).
func taskDone(cl *redisclient.Client, k runKeys) error {
	_, err := cl.IncrBy(k.pending, -1)
	return err
}

// pendingCount reads the outstanding-task counter.
func pendingCount(cl *redisclient.Client, k runKeys) (int64, error) {
	s, ok, err := cl.Get(k.pending)
	if err != nil || !ok {
		return 0, err
	}
	var n int64
	_, err = fmt.Sscanf(s, "%d", &n)
	return n, err
}

// cleanup removes the run's keys from the server.
func cleanup(cl *redisclient.Client, k runKeys, g *graph.Graph) {
	keys := []string{k.queue, k.pending}
	for _, n := range g.Nodes() {
		if n.Stateful {
			for i := 0; i < statefulInstances(n); i++ {
				keys = append(keys, k.privKey(n.Name, i))
			}
		}
	}
	_, _ = cl.Do(append([]string{"DEL"}, keys...)...)
}

// statefulInstances is the pinned instance count of a stateful node
// (explicit Instances, defaulting to 1).
func statefulInstances(n *graph.Node) int {
	if n.Instances > 0 {
		return n.Instances
	}
	return 1
}

// requireRedis validates the Redis address option.
func requireRedis(opts mapping.Options, technique string) (*redisclient.Client, error) {
	if opts.RedisAddr == "" {
		return nil, fmt.Errorf("%s: Options.RedisAddr is required (start internal/miniredis or point at a Redis server)", technique)
	}
	cl := redisclient.Dial(opts.RedisAddr)
	if err := cl.Ping(); err != nil {
		cl.Close()
		return nil, fmt.Errorf("%s: redis unreachable at %s: %w", technique, opts.RedisAddr, err)
	}
	return cl, nil
}

// popPrivate BLPOPs one encoded task from a private queue.
func popPrivate(cl *redisclient.Client, key string, timeout time.Duration) (codec.Task, bool, error) {
	_, payload, ok, err := cl.BLPop(timeout, key)
	if err != nil || !ok {
		return codec.Task{}, false, err
	}
	t, err := codec.Decode(payload)
	if err != nil {
		return codec.Task{}, false, err
	}
	return t, true, nil
}
