package redismap_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
)

func TestHybridAutoRegistered(t *testing.T) {
	if _, err := mapping.Get("hybrid_auto_redis"); err != nil {
		t.Fatal(err)
	}
}

func TestHybridAutoStatefulCorrectness(t *testing.T) {
	const n = 50
	var results sync.Map
	g := statefulGraph(n, &results)
	m, _ := mapping.Get("hybrid_auto_redis")
	rep, err := m.Execute(g, redisOpts(t, 8)) // 3 stateful + 5 stateless
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	results.Range(func(k, v any) bool {
		total += v.(int)
		return true
	})
	if total != n {
		t.Errorf("aggregated %d want %d", total, n)
	}
	if rep.Mapping != "hybrid_auto_redis" {
		t.Errorf("report mapping: %q", rep.Mapping)
	}
}

func TestHybridAutoRecordsTrace(t *testing.T) {
	const n = 60
	col := &collector{}
	g := graph.New("traced")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 1; i <= n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewMap("work", func(ctx *core.Context, v any) (any, error) {
			ctx.Work(2 * time.Millisecond)
			return v, nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error {
			col.add(int64(v.(int)))
			return nil
		})
	})
	g.Pipe("gen", "work")
	g.Pipe("work", "sink")

	trace := &autoscale.Trace{}
	opts := redisOpts(t, 6)
	opts.Trace = trace
	m, _ := mapping.Get("hybrid_auto_redis")
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	_, count := col.snapshot()
	if count != n {
		t.Errorf("sink saw %d values want %d", count, n)
	}
	if len(trace.Points()) == 0 {
		t.Error("hybrid_auto_redis recorded no trace points")
	}
}

func TestHybridAutoUsesCustomStrategy(t *testing.T) {
	const n = 30
	col := &collector{}
	g := pipelineGraph(n, col)
	opts := redisOpts(t, 6)
	opts.Strategy = &autoscale.ProportionalQueueStrategy{TargetPerWorker: 1}
	m, _ := mapping.Get("hybrid_auto_redis")
	if _, err := m.Execute(g, opts); err != nil {
		t.Fatal(err)
	}
	if sum, _ := col.snapshot(); sum != wantSquareSum(n) {
		t.Errorf("sum=%d want %d", sum, wantSquareSum(n))
	}
}
