package redismap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autoscale"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/state"
	"repro/internal/synth"
)

// Hybrid is the hybrid_redis mapping: stateful PE instances are pinned to
// dedicated processes with private queues; stateless PEs share a dynamic
// pool on the global stream. It is the only dynamic-scheduling mapping that
// supports stateful PEs and groupings.
type Hybrid struct{}

// HybridAuto is hybrid_auto_redis: the hybrid mapping with the Algorithm 1
// auto-scaler applied to its stateless pool. The paper leaves this
// combination explicitly for future work ("given we did not equip
// auto-scaling optimization to it, hybrid_redis does not achieve the same
// efficiency"); this mapping closes that gap. Stateful pinned processes are
// never scaled (their state is place-bound); only the dynamic stateless
// workers cycle between active and idle.
type HybridAuto struct{}

func init() {
	mapping.Register(Hybrid{})
	mapping.Register(HybridAuto{})
}

// Name implements mapping.Mapping.
func (Hybrid) Name() string { return "hybrid_redis" }

// Name implements mapping.Mapping.
func (HybridAuto) Name() string { return "hybrid_auto_redis" }

// Execute implements mapping.Mapping.
func (HybridAuto) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeHybrid(g, opts, "hybrid_auto_redis", true)
}

// hybridPlan is the process split: which (PE, instance) pairs get pinned
// processes and how many dynamic stateless workers remain.
type hybridPlan struct {
	stateful  []pinned
	stateless int
}

type pinned struct {
	node     *graph.Node
	instance int
}

// planHybrid computes the split, enforcing the paper's minimum (every
// stateful instance needs a dedicated process, plus at least one stateless
// worker: "stateless PE instances are assigned to the available processes
// that are not dedicated to stateful tasks ... N − number of stateful PE
// instances").
func planHybrid(g *graph.Graph, processes int) (hybridPlan, error) {
	var plan hybridPlan
	for _, n := range g.Nodes() {
		if !n.Stateful {
			continue
		}
		if n.IsSource() {
			return plan, fmt.Errorf("hybrid_redis: source PE %s cannot be stateful", n.Name)
		}
		for i := 0; i < statefulInstances(n); i++ {
			plan.stateful = append(plan.stateful, pinned{node: n, instance: i})
		}
	}
	plan.stateless = processes - len(plan.stateful)
	if plan.stateless < 1 {
		return plan, fmt.Errorf(
			"hybrid_redis: workflow %s needs at least %d processes (%d stateful instances + 1 stateless worker), got %d",
			g.Name, len(plan.stateful)+1, len(plan.stateful), processes)
	}
	return plan, nil
}

// validateHybrid checks the stateless part of the graph against dynamic
// scheduling's limits: stateless PEs cannot carry Final hooks, and grouped
// edges must target stateful nodes (a grouped edge into a stateless pool has
// no stable instance identity to route to).
func validateHybrid(g *graph.Graph) error {
	for _, n := range g.Nodes() {
		if n.Stateful {
			continue
		}
		if _, ok := n.Prototype.(core.Finalizer); ok {
			return fmt.Errorf("hybrid_redis: stateless PE %s implements Final; mark it stateful to give it pinned instances", n.Name)
		}
	}
	for _, e := range g.Edges() {
		if e.Grouping.Kind != graph.Shuffle && !g.Node(e.To).Stateful {
			return fmt.Errorf("hybrid_redis: edge %s→%s uses %s grouping into a stateless PE; mark %s stateful", e.From, e.To, e.Grouping.Kind, e.To)
		}
	}
	return nil
}

// Execute implements mapping.Mapping.
func (Hybrid) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeHybrid(g, opts, "hybrid_redis", false)
}

func executeHybrid(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := validateHybrid(g); err != nil {
		return metrics.Report{}, err
	}
	plan, err := planHybrid(g, opts.Processes)
	if err != nil {
		return metrics.Report{}, err
	}
	cl, err := requireRedis(opts, name)
	if err != nil {
		return metrics.Report{}, err
	}
	defer cl.Close()

	keys := newRunKeys(g, opts.Seed)
	defer cleanup(cl, keys, g)
	if err := cl.XGroupCreate(keys.queue, keys.group, "0"); err != nil {
		return metrics.Report{}, fmt.Errorf("%s: create consumer group: %w", name, err)
	}

	ms, err := mapping.OpenManagedState(g, opts, func() state.Backend {
		return state.NewRedisBackend(cl, keys.prefix+":state")
	})
	if err != nil {
		return metrics.Report{}, err
	}
	runOK := false
	defer func() { ms.Finish(g, runOK) }()

	var ctrl *autoscale.Controller
	if auto && plan.stateless > 1 {
		cfg := autoscale.Config{MaxPoolSize: plan.stateless}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = plan.stateless
		}
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.IdleTimeStrategy{Threshold: 4 * opts.PollTimeout}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		monCl := redisclient.Dial(opts.RedisAddr)
		defer monCl.Close()
		go ctrl.RunMonitor(func() float64 {
			infos, err := monCl.XInfoConsumers(keys.queue, keys.group)
			if err != nil || len(infos) == 0 {
				return 0
			}
			active := ctrl.ActiveSize()
			var sum float64
			var n int
			for _, info := range infos {
				var w int
				if _, err := fmt.Sscanf(info.Name, "w%d", &w); err != nil || w >= active {
					continue
				}
				sum += float64(info.Inactive.Milliseconds())
				n++
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
		defer ctrl.Terminate()
	}

	host := platform.NewHost(opts.Platform)
	var tasks, outputs atomic.Int64
	var failed atomic.Bool
	var firstErr error
	var errMu sync.Mutex
	var poisoned atomic.Bool
	poisonAll := func() {
		if poisoned.Swap(true) {
			return
		}
		for i := 0; i < plan.stateless; i++ {
			_ = pushStream(cl, keys, codec.Task{Poison: true})
		}
		for _, p := range plan.stateful {
			_ = pushPrivate(cl, keys, p.node.Name, p.instance, codec.Task{Poison: true})
		}
	}
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
		poisonAll()
	}

	for _, src := range g.Sources() {
		if err := pushStream(cl, keys, codec.Task{PE: src.Name, Instance: -1}); err != nil {
			return metrics.Report{}, fmt.Errorf("%s: seed source: %w", name, err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	// Stateless dynamic pool.
	for w := 0; w < plan.stateless; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runHybridStateless(g, host, opts, name, w, keys, ctrl, &tasks, &outputs, fail)
		}(w)
	}
	// Pinned stateful processes.
	for _, p := range plan.stateful {
		wg.Add(1)
		go func(p pinned) {
			defer wg.Done()
			runHybridStateful(g, host, opts, p, keys, ms, &tasks, &outputs, fail)
		}(p)
	}

	// Coordinator: drain, then finalize stateful nodes in topological order,
	// then terminate everyone with poison pills.
	coordErr := func() error {
		if err := awaitDrain(cl, keys, opts, &failed); err != nil {
			return err
		}
		order, err := g.TopoSort()
		if err != nil {
			return err
		}
		for _, name := range order {
			n := g.Node(name)
			if !n.Stateful {
				continue
			}
			if _, ok := n.Prototype.(core.Finalizer); !ok {
				continue
			}
			// Managed-state nodes share one namespace across instances, so
			// their Final runs exactly once (on instance 0); legacy
			// field-state nodes flush every instance's private state.
			finalizeInstances := statefulInstances(n)
			if n.HasManagedState() {
				finalizeInstances = 1
			}
			for i := 0; i < finalizeInstances; i++ {
				if err := pushPrivate(cl, keys, n.Name, i, codec.Task{PE: n.Name, Instance: i, Finalize: true}); err != nil {
					return err
				}
			}
			if err := awaitDrain(cl, keys, opts, &failed); err != nil {
				return err
			}
		}
		return nil
	}()
	if coordErr != nil && !failed.Load() {
		fail(coordErr)
	}
	poisonAll()
	if ctrl != nil {
		// Release workers parked in the idle state so they can observe
		// their poison pills (or exit directly).
		ctrl.Terminate()
	}
	wg.Wait()
	runtime := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	runOK = true
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     name,
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
		State:       ms.Ops(),
	}, nil
}

// awaitDrain waits for the pending counter to stay zero across the retry
// budget (the coordinator's version of the retry termination check).
func awaitDrain(cl *redisclient.Client, keys runKeys, opts mapping.Options, failed *atomic.Bool) error {
	zeros := 0
	for {
		if failed.Load() {
			return fmt.Errorf("aborted")
		}
		n, err := pendingCount(cl, keys)
		if err != nil {
			return err
		}
		if n == 0 {
			zeros++
			if zeros > opts.Retries {
				return nil
			}
		} else {
			zeros = 0
		}
		time.Sleep(opts.PollTimeout)
	}
}

// newHybridEmit builds the routing closure shared by both worker kinds:
// stateless destinations go to the global stream, stateful destinations to
// the private queue chosen by the edge grouping.
func newHybridEmit(
	g *graph.Graph,
	cl *redisclient.Client,
	keys runKeys,
	node string,
	outputs *atomic.Int64,
) func(port string, value any) error {
	seq := make(map[*graph.Edge]*uint64)
	for _, e := range g.OutEdges(node) {
		var c uint64
		seq[e] = &c
	}
	return func(port string, value any) error {
		for _, e := range g.OutEdges(node) {
			if e.FromPort != port {
				continue
			}
			if len(g.OutEdges(e.To)) == 0 {
				outputs.Add(1)
			}
			dst := g.Node(e.To)
			if !dst.Stateful {
				if err := pushStream(cl, keys, codec.Task{PE: e.To, Port: e.ToPort, Value: value, Instance: -1}); err != nil {
					return err
				}
				continue
			}
			nInst := statefulInstances(dst)
			idx := e.Grouping.RouteInstance(value, atomic.AddUint64(seq[e], 1)-1, nInst)
			if idx < 0 { // one-to-all
				for i := 0; i < nInst; i++ {
					if err := pushPrivate(cl, keys, e.To, i, codec.Task{PE: e.To, Port: e.ToPort, Value: value, Instance: i}); err != nil {
						return err
					}
				}
				continue
			}
			if err := pushPrivate(cl, keys, e.To, idx, codec.Task{PE: e.To, Port: e.ToPort, Value: value, Instance: idx}); err != nil {
				return err
			}
		}
		return nil
	}
}

// runHybridStateless is one worker of the dynamic stateless pool. Under
// hybrid_auto_redis a controller gates it into the idle state when the
// stateless pool shrinks.
func runHybridStateless(
	g *graph.Graph,
	host *platform.Host,
	opts mapping.Options,
	technique string,
	w int,
	keys runKeys,
	ctrl *autoscale.Controller,
	tasks, outputs *atomic.Int64,
	fail func(error),
) {
	cl := redisclient.Dial(opts.RedisAddr)
	defer cl.Close()
	proc := host.NewProcess(fmt.Sprintf("%s:w%d", technique, w))
	proc.Activate()
	defer proc.Deactivate()
	consumer := fmt.Sprintf("w%d", w)

	pes := make(map[string]core.PE)
	ctxs := make(map[string]*core.Context)
	for _, n := range g.Nodes() {
		if n.Stateful {
			continue
		}
		pes[n.Name] = n.Factory()
		ctxs[n.Name] = core.NewContext(n.Name, w, host,
			synth.NewRand(opts.Seed^int64(w*7919)^int64(nodeHash(n.Name))),
			newHybridEmit(g, cl, keys, n.Name, outputs))
	}
	for name, pe := range pes {
		if ini, ok := pe.(core.Initializer); ok {
			if err := ini.Init(ctxs[name]); err != nil {
				fail(fmt.Errorf("stateless worker %d: init %s: %w", w, name, err))
				return
			}
		}
	}

	for {
		if ctrl != nil && ctrl.Idle(w) {
			proc.Deactivate()
			if !ctrl.Admit(w) {
				return
			}
			proc.Activate()
		}
		entries, err := cl.XReadGroup(keys.group, consumer, 1, opts.PollTimeout, keys.queue)
		if err != nil {
			fail(fmt.Errorf("stateless worker %d: read queue: %w", w, err))
			return
		}
		for _, entry := range entries {
			t, err := codec.Decode(entry.Fields[taskField])
			if err != nil {
				fail(fmt.Errorf("stateless worker %d: %w", w, err))
				return
			}
			if t.Poison {
				_, _ = cl.XAck(keys.queue, keys.group, entry.ID)
				return
			}
			tasks.Add(1)
			if err := runRedisTask(g, pes, ctxs, t); err != nil {
				_ = taskDone(cl, keys)
				fail(fmt.Errorf("stateless worker %d: %w", w, err))
				return
			}
			if err := taskDone(cl, keys); err != nil {
				fail(fmt.Errorf("stateless worker %d: task done: %w", w, err))
				return
			}
			if _, err := cl.XAck(keys.queue, keys.group, entry.ID); err != nil {
				fail(fmt.Errorf("stateless worker %d: ack: %w", w, err))
				return
			}
		}
	}
}

// runHybridStateful is one pinned stateful instance process: it consumes its
// private queue only, keeping all state local ("eliminating the need for
// continuous state synchronization").
func runHybridStateful(
	g *graph.Graph,
	host *platform.Host,
	opts mapping.Options,
	p pinned,
	keys runKeys,
	ms *mapping.ManagedState,
	tasks, outputs *atomic.Int64,
	fail func(error),
) {
	cl := redisclient.Dial(opts.RedisAddr)
	defer cl.Close()
	proc := host.NewProcess(fmt.Sprintf("hybrid_redis:%s:%d", p.node.Name, p.instance))
	proc.Activate()
	defer proc.Deactivate()

	pe := p.node.Factory()
	ctx := core.NewContext(p.node.Name, p.instance, host,
		synth.NewRand(opts.Seed^int64(p.instance*104729)^int64(nodeHash(p.node.Name))),
		newHybridEmit(g, cl, keys, p.node.Name, outputs))
	if st := ms.Store(p.node.Name); st != nil {
		ctx = ctx.WithStore(st)
	}
	if ini, ok := pe.(core.Initializer); ok {
		if err := ini.Init(ctx); err != nil {
			fail(fmt.Errorf("stateful %s[%d]: init: %w", p.node.Name, p.instance, err))
			return
		}
	}

	privKey := keys.privKey(p.node.Name, p.instance)
	for {
		t, ok, err := popPrivate(cl, privKey, opts.PollTimeout)
		if err != nil {
			fail(fmt.Errorf("stateful %s[%d]: pop: %w", p.node.Name, p.instance, err))
			return
		}
		if !ok {
			continue // coordinator owns termination
		}
		if t.Poison {
			return
		}
		if t.Finalize {
			if fin, ok := pe.(core.Finalizer); ok {
				if err := fin.Final(ctx); err != nil {
					_ = taskDone(cl, keys)
					fail(fmt.Errorf("stateful %s[%d]: final: %w", p.node.Name, p.instance, err))
					return
				}
			}
			if err := taskDone(cl, keys); err != nil {
				fail(fmt.Errorf("stateful %s[%d]: finalize done: %w", p.node.Name, p.instance, err))
				return
			}
			continue
		}
		tasks.Add(1)
		if err := pe.Process(ctx, t.Port, t.Value); err != nil {
			_ = taskDone(cl, keys)
			fail(fmt.Errorf("stateful %s[%d]: %w", p.node.Name, p.instance, err))
			return
		}
		if err := taskDone(cl, keys); err != nil {
			fail(fmt.Errorf("stateful %s[%d]: done: %w", p.node.Name, p.instance, err))
			return
		}
	}
}
