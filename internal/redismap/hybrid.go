package redismap

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/state"
)

// Hybrid is the hybrid_redis mapping: stateful PE instances are pinned to
// dedicated processes with private queues; stateless PEs share a dynamic
// pool on the global stream. It is the only dynamic-scheduling mapping that
// supports stateful PEs and groupings.
type Hybrid struct{}

// HybridAuto is hybrid_auto_redis: the hybrid mapping with the Algorithm 1
// auto-scaler applied to its stateless pool. The paper leaves this
// combination explicitly for future work ("given we did not equip
// auto-scaling optimization to it, hybrid_redis does not achieve the same
// efficiency"); this mapping closes that gap. Stateful pinned processes are
// never scaled (their state is place-bound); only the dynamic stateless
// workers cycle between active and idle.
type HybridAuto struct{}

func init() {
	mapping.Register(Hybrid{})
	mapping.Register(HybridAuto{})
}

// Name implements mapping.Mapping.
func (Hybrid) Name() string { return "hybrid_redis" }

// Name implements mapping.Mapping.
func (HybridAuto) Name() string { return "hybrid_auto_redis" }

// Execute implements mapping.Mapping.
func (Hybrid) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeHybrid(g, opts, "hybrid_redis", false)
}

// Execute implements mapping.Mapping.
func (HybridAuto) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeHybrid(g, opts, "hybrid_auto_redis", true)
}

// planHybrid computes the process split as a runtime plan: every stateful
// instance gets a pinned worker with a private queue, and the remaining
// budget forms the dynamic stateless pool, enforcing the paper's minimum
// ("stateless PE instances are assigned to the available processes that are
// not dedicated to stateful tasks ... N − number of stateful PE instances").
func planHybrid(g *graph.Graph, processes int) (runtime.Plan, error) {
	var pinned []runtime.WorkerSpec
	instances := make(map[string]int, len(g.Nodes()))
	for _, n := range g.Nodes() {
		if !n.Stateful {
			instances[n.Name] = 0
			continue
		}
		if n.IsSource() {
			return runtime.Plan{}, fmt.Errorf("hybrid_redis: source PE %s cannot be stateful", n.Name)
		}
		count := statefulInstances(n)
		instances[n.Name] = count
		for i := 0; i < count; i++ {
			pinned = append(pinned, runtime.WorkerSpec{PE: n.Name, Instance: i})
		}
	}
	stateless := processes - len(pinned)
	if stateless < 1 {
		return runtime.Plan{}, fmt.Errorf(
			"hybrid_redis: workflow %s needs at least %d processes (%d stateful instances + 1 stateless worker), got %d",
			g.Name, len(pinned)+1, len(pinned), processes)
	}
	workers := make([]runtime.WorkerSpec, stateless)
	workers = append(workers, pinned...)
	return runtime.NewPlan(workers, instances), nil
}

// statefulInstances is the pinned instance count of a stateful node
// (explicit Instances, defaulting to 1).
func statefulInstances(n *graph.Node) int {
	if n.Instances > 0 {
		return n.Instances
	}
	return 1
}

// validateHybrid checks the stateless part of the graph against dynamic
// scheduling's limits: stateless PEs cannot carry Final hooks, and grouped
// edges must target stateful nodes (a grouped edge into a stateless pool has
// no stable instance identity to route to).
func validateHybrid(g *graph.Graph) error {
	for _, n := range g.Nodes() {
		if n.Stateful {
			continue
		}
		if _, ok := n.Prototype.(core.Finalizer); ok {
			return fmt.Errorf("hybrid_redis: stateless PE %s implements Final; mark it stateful to give it pinned instances", n.Name)
		}
	}
	for _, e := range g.Edges() {
		if e.Grouping.Kind != graph.Shuffle && !g.Node(e.To).Stateful {
			return fmt.Errorf("hybrid_redis: edge %s→%s uses %s grouping into a stateless PE; mark %s stateful", e.From, e.To, e.Grouping.Kind, e.To)
		}
	}
	return nil
}

func executeHybrid(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	// Redis round trips dominate this mapping's per-task cost, so batching
	// defaults on, adaptively sized (pass an explicit 1 to disable).
	opts = opts.ResolveBatching(mapping.AutoBatch, mapping.AutoBatch).WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := validateHybrid(g); err != nil {
		return metrics.Report{}, err
	}
	plan, err := planHybrid(g, opts.Processes)
	if err != nil {
		return metrics.Report{}, err
	}
	cluster, err := requireCluster(opts, name)
	if err != nil {
		return metrics.Report{}, err
	}
	defer cluster.Close()

	// RecoverStale covers both halves of the hybrid: stale pool deliveries
	// are reclaimed via XAUTOCLAIM (with fenced acks and, for managed-state
	// PEs, fenced store writes), and the pinned private queues are now
	// per-shard stream partitions with the same consumer-group PEL — pulled
	// frames sit pending until acked, so a stalled delivery is reclaimable
	// instead of lost with its list element.
	keys := runtime.NewRunKeys(g.Name, opts.Seed)
	tr, err := runtime.NewRedisTransport(cluster, keys, plan, opts.RecoverStale)
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	tr.RecoverIdle = opts.RecoverIdle
	tr.SetDiagnosis(opts.Diagnosis)
	defer tr.Cleanup(g)

	var ctrl *autoscale.Controller
	if auto && plan.Pool > 1 {
		cfg := autoscale.Config{MaxPoolSize: plan.Pool}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = plan.Pool
		}
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.IdleTimeStrategy{Threshold: 4 * opts.PollTimeout}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		go ctrl.RunMonitor(consumerIdleMonitor(cluster, keys, ctrl))
		defer ctrl.Terminate()
	}

	return runtime.Execute(g, opts, runtime.Config{
		Name:       name,
		Plan:       plan,
		Transport:  tr,
		Host:       platform.NewHost(opts.Platform),
		Controller: ctrl,
		NewStateBackend: func() state.Backend {
			return newStateBackend(cluster, keys, opts)
		},
	})
}
