package redismap_test

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mapping"
	"repro/internal/miniredis"
	"repro/internal/state"
)

// TestKillMidFinalFlushThenResume is the end-to-end crash-consistency
// proof for the transactional Final path, on both Redis mappings:
//
//   - Run 1 executes the workflow against an external state backend with a
//     kill fault armed inside the Final window (after the Final hook ran,
//     before its fenced output flush). The run must fail, and because the
//     gate and the output ride one SINKAPPEND transaction, the sink must
//     see nothing — a crashed Final leaves no partial output behind.
//   - Run 2 resumes onto the surviving namespaces with the same seed. Every
//     task re-executes, the applied ledger drops every duplicate mutation,
//     the Final re-runs against intact aggregates, and the sink output is
//     byte-identical to an undisturbed sequential reference run.
//
// A second fault stays armed at the legacy record-then-apply window through
// both runs; it must never fire — on the built-in backends that window no
// longer exists.
func TestKillMidFinalFlushThenResume(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"dyn_redis", 1},
		{"hybrid_redis", 1},
		{"dyn_redis-2shard", 2},
		{"dyn_redis-4shard", 4},
	} {
		name := strings.TrimSuffix(strings.TrimSuffix(tc.name, "-2shard"), "-4shard")
		t.Run(tc.name, func(t *testing.T) {
			addrs := make([]string, tc.shards)
			for i := range addrs {
				srv, err := miniredis.StartTestServer()
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				addrs[i] = srv.Addr()
			}

			keys := []string{"alpha", "beta", "gamma", "delta"}
			items := make([]replayItem, 0, 24)
			for i := 0; i < 24; i++ {
				items = append(items, replayItem{Key: keys[i%len(keys)], Val: int64(i + 1)})
			}

			// Undisturbed sequential reference.
			var mu sync.Mutex
			var want []string
			refG := replayAggGraph(items, 0, func(s string) {
				mu.Lock()
				want = append(want, s)
				mu.Unlock()
			})
			m, err := mapping.Get("simple")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Execute(refG, mapping.Options{Processes: 1, Platform: platformForTest(), Seed: 31}); err != nil {
				t.Fatal(err)
			}
			sort.Strings(want)
			if len(want) != len(keys) {
				t.Fatalf("reference run: %v", want)
			}

			backend := state.DialRedisClusterBackend(addrs, "chaosbk")
			defer backend.Close()
			opts := mapping.Options{
				Processes:    3,
				Platform:     platformForTest(),
				Seed:         31,
				RedisAddr:    addrs[0],
				RedisAddrs:   addrs,
				RecoverStale: true,
				PollTimeout:  2 * time.Millisecond,
				Retries:      40,
				StateBackend: backend,
			}
			m, err = mapping.Get(name)
			if err != nil {
				t.Fatal(err)
			}

			// Run 1: killed inside the Final window.
			inj := faultinject.New(1).
				Schedule(faultinject.Fault{Probe: faultinject.ProbeMidFinalFlush, Kind: faultinject.Kill, Hits: 1}).
				Schedule(faultinject.Fault{Probe: faultinject.ProbeAfterRecord, Kind: faultinject.Kill, Hits: 1})
			faultinject.Arm(inj)
			t.Cleanup(faultinject.Disarm)

			var run1 []string
			g := replayAggGraph(items, 0, func(s string) {
				mu.Lock()
				run1 = append(run1, s)
				mu.Unlock()
			})
			if _, err := m.Execute(g, opts); !errors.Is(err, faultinject.ErrKill) {
				t.Fatalf("run 1 should die on the injected kill, got %v", err)
			}
			if got := inj.FiredCount(faultinject.ProbeMidFinalFlush); got != 1 {
				t.Fatalf("mid-final-flush fault fired %d times, want 1", got)
			}
			mu.Lock()
			leaked := len(run1)
			mu.Unlock()
			if leaked != 0 {
				t.Fatalf("crashed Final leaked %d sink values: %v", leaked, run1)
			}

			// Run 2: resume. Only the after-record fault stays armed, and it
			// must never find its window.
			inj2 := faultinject.New(1).
				Schedule(faultinject.Fault{Probe: faultinject.ProbeAfterRecord, Kind: faultinject.Kill, Hits: 1})
			faultinject.Arm(inj2)

			var got []string
			opts.StateResume = true
			g2 := replayAggGraph(items, 0, func(s string) {
				mu.Lock()
				got = append(got, s)
				mu.Unlock()
			})
			if _, err := m.Execute(g2, opts); err != nil {
				t.Fatalf("resume run: %v", err)
			}
			mu.Lock()
			sort.Strings(got)
			mu.Unlock()
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("resumed aggregates diverge:\n got %v\nwant %v", got, want)
			}
			if fired := inj.FiredCount(faultinject.ProbeAfterRecord) + inj2.FiredCount(faultinject.ProbeAfterRecord); fired != 0 {
				t.Fatalf("record-then-apply window fired %d times; it should no longer exist", fired)
			}
		})
	}
}
