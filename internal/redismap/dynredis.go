package redismap

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/runtime"
	"repro/internal/state"
)

// DynRedis is the dyn_redis mapping.
type DynRedis struct{}

// DynAutoRedis is the dyn_auto_redis mapping.
type DynAutoRedis struct{}

func init() {
	mapping.Register(DynRedis{})
	mapping.Register(DynAutoRedis{})
}

// Name implements mapping.Mapping.
func (DynRedis) Name() string { return "dyn_redis" }

// Name implements mapping.Mapping.
func (DynAutoRedis) Name() string { return "dyn_auto_redis" }

// Execute implements mapping.Mapping.
func (DynRedis) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeDynRedis(g, opts, "dyn_redis", false)
}

// Execute implements mapping.Mapping.
func (DynAutoRedis) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeDynRedis(g, opts, "dyn_auto_redis", true)
}

func executeDynRedis(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	// Redis round trips dominate this mapping's per-task cost, so batching
	// defaults on, adaptively sized (pass an explicit 1 to disable).
	opts = opts.ResolveBatching(mapping.AutoBatch, mapping.AutoBatch).WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := runtime.ValidateDynamic(g, name); err != nil {
		return metrics.Report{}, err
	}
	// RecoverStale + managed state is safe since the exactly-once fence:
	// OpenManagedState (inside runtime.Execute) implies ExactlyOnceState,
	// which stamps every task with a deterministic identity and drops
	// store mutations a replayed execution already applied, while the
	// transport's fenced acknowledgements keep the pending counter exact
	// when a claimed-away consumer's late XACK lands.
	cluster, err := requireCluster(opts, name)
	if err != nil {
		return metrics.Report{}, err
	}
	defer cluster.Close()

	plan := runtime.PoolPlan(g, opts.Processes)
	keys := runtime.NewRunKeys(g.Name, opts.Seed)
	tr, err := runtime.NewRedisTransport(cluster, keys, plan, opts.RecoverStale)
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	tr.RecoverIdle = opts.RecoverIdle
	tr.SetDiagnosis(opts.Diagnosis)
	defer tr.Cleanup(g)

	var ctrl *autoscale.Controller
	if auto {
		cfg := autoscale.Config{MaxPoolSize: opts.Processes}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = opts.Processes
		}
		// The paper's dyn_auto_redis threshold is the time worth a process
		// reactivation/redeployment; at our millisecond timescale the poll
		// timeout is that order of magnitude.
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.IdleTimeStrategy{Threshold: 4 * opts.PollTimeout}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		go ctrl.RunMonitor(consumerIdleMonitor(cluster, keys, ctrl))
		defer ctrl.Terminate()
	}

	return runtime.Execute(g, opts, runtime.Config{
		Name:       name,
		Plan:       plan,
		Transport:  tr,
		Host:       platform.NewHost(opts.Platform),
		Controller: ctrl,
		NewStateBackend: func() state.Backend {
			return newStateBackend(cluster, keys, opts)
		},
	})
}

// newStateBackend builds the run's private state backend on the shared
// cluster, with hot-path AddInt coalescing when the options ask for it.
func newStateBackend(cluster *redisclient.Cluster, keys runtime.RedisKeys, opts mapping.Options) state.Backend {
	b := state.NewRedisClusterBackend(cluster, keys.Prefix+":state")
	if opts.StateCoalesce {
		b.EnableCoalescing()
	}
	return b
}

// consumerIdleMonitor builds the dyn_auto_redis monitoring metric: the mean
// Inactive time of the pool's active consumers in the run's consumer group.
// The stream is partitioned per shard and a consumer is active wherever it
// last found work, so the probe scatter-gathers XINFO CONSUMERS across the
// shards and scores each consumer by its most recent activity anywhere
// (minimum Inactive across shards) — a worker busy draining shard 1 is not
// idle just because shard 0 hasn't seen it lately.
func consumerIdleMonitor(cluster *redisclient.Cluster, keys runtime.RedisKeys, ctrl *autoscale.Controller) func() float64 {
	return func() float64 {
		active := ctrl.ActiveSize()
		idle := map[int]float64{}
		for s := 0; s < cluster.NumShards(); s++ {
			infos, err := cluster.Shard(s).XInfoConsumers(keys.Queue, keys.Group)
			if err != nil {
				continue
			}
			for _, info := range infos {
				var w int
				if _, err := fmt.Sscanf(info.Name, "w%d", &w); err != nil || w >= active {
					continue
				}
				ms := float64(info.Inactive.Milliseconds())
				if cur, ok := idle[w]; !ok || ms < cur {
					idle[w] = ms
				}
			}
		}
		if len(idle) == 0 {
			return 0
		}
		var sum float64
		for _, ms := range idle {
			sum += ms
		}
		return sum / float64(len(idle))
	}
}
