package redismap

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/runtime"
	"repro/internal/state"
)

// DynRedis is the dyn_redis mapping.
type DynRedis struct{}

// DynAutoRedis is the dyn_auto_redis mapping.
type DynAutoRedis struct{}

func init() {
	mapping.Register(DynRedis{})
	mapping.Register(DynAutoRedis{})
}

// Name implements mapping.Mapping.
func (DynRedis) Name() string { return "dyn_redis" }

// Name implements mapping.Mapping.
func (DynAutoRedis) Name() string { return "dyn_auto_redis" }

// Execute implements mapping.Mapping.
func (DynRedis) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeDynRedis(g, opts, "dyn_redis", false)
}

// Execute implements mapping.Mapping.
func (DynAutoRedis) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeDynRedis(g, opts, "dyn_auto_redis", true)
}

func executeDynRedis(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	// Redis round trips dominate this mapping's per-task cost, so batching
	// defaults on, adaptively sized (pass an explicit 1 to disable).
	opts = opts.ResolveBatching(mapping.AutoBatch, mapping.AutoBatch).WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := runtime.ValidateDynamic(g, name); err != nil {
		return metrics.Report{}, err
	}
	// RecoverStale + managed state is safe since the exactly-once fence:
	// OpenManagedState (inside runtime.Execute) implies ExactlyOnceState,
	// which stamps every task with a deterministic identity and drops
	// store mutations a replayed execution already applied, while the
	// transport's fenced acknowledgements keep the pending counter exact
	// when a claimed-away consumer's late XACK lands.
	cl, err := requireRedis(opts, name)
	if err != nil {
		return metrics.Report{}, err
	}
	defer cl.Close()

	plan := runtime.PoolPlan(g, opts.Processes)
	keys := runtime.NewRunKeys(g.Name, opts.Seed)
	tr, err := runtime.NewRedisTransport(cl, keys, plan, opts.RecoverStale)
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	tr.RecoverIdle = opts.RecoverIdle
	tr.SetDiagnosis(opts.Diagnosis)
	defer tr.Cleanup(g)

	var ctrl *autoscale.Controller
	if auto {
		cfg := autoscale.Config{MaxPoolSize: opts.Processes}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = opts.Processes
		}
		// The paper's dyn_auto_redis threshold is the time worth a process
		// reactivation/redeployment; at our millisecond timescale the poll
		// timeout is that order of magnitude.
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.IdleTimeStrategy{Threshold: 4 * opts.PollTimeout}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		monCl := redisclient.Dial(opts.RedisAddr)
		defer monCl.Close()
		go ctrl.RunMonitor(consumerIdleMonitor(monCl, keys, ctrl))
		defer ctrl.Terminate()
	}

	return runtime.Execute(g, opts, runtime.Config{
		Name:       name,
		Plan:       plan,
		Transport:  tr,
		Host:       platform.NewHost(opts.Platform),
		Controller: ctrl,
		NewStateBackend: func() state.Backend {
			return state.NewRedisBackend(cl, keys.Prefix+":state")
		},
	})
}

// consumerIdleMonitor builds the dyn_auto_redis monitoring metric: the mean
// Inactive time of the pool's active consumers in the run's consumer group.
func consumerIdleMonitor(monCl *redisclient.Client, keys runtime.RedisKeys, ctrl *autoscale.Controller) func() float64 {
	return func() float64 {
		infos, err := monCl.XInfoConsumers(keys.Queue, keys.Group)
		if err != nil || len(infos) == 0 {
			return 0
		}
		active := ctrl.ActiveSize()
		var sum float64
		var n int
		for _, info := range infos {
			var w int
			if _, err := fmt.Sscanf(info.Name, "w%d", &w); err != nil || w >= active {
				continue
			}
			sum += float64(info.Inactive.Milliseconds())
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
}
