package redismap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autoscale"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/redisclient"
	"repro/internal/state"
	"repro/internal/synth"
)

// DynRedis is the dyn_redis mapping.
type DynRedis struct{}

// DynAutoRedis is the dyn_auto_redis mapping.
type DynAutoRedis struct{}

func init() {
	mapping.Register(DynRedis{})
	mapping.Register(DynAutoRedis{})
}

// Name implements mapping.Mapping.
func (DynRedis) Name() string { return "dyn_redis" }

// Name implements mapping.Mapping.
func (DynAutoRedis) Name() string { return "dyn_auto_redis" }

// Execute implements mapping.Mapping.
func (DynRedis) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeDynRedis(g, opts, "dyn_redis", false)
}

// Execute implements mapping.Mapping.
func (DynAutoRedis) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return executeDynRedis(g, opts, "dyn_auto_redis", true)
}

func executeDynRedis(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := dynamic.ValidateDynamic(g, name); err != nil {
		return metrics.Report{}, err
	}
	cl, err := requireRedis(opts, name)
	if err != nil {
		return metrics.Report{}, err
	}
	defer cl.Close()

	keys := newRunKeys(g, opts.Seed)
	defer cleanup(cl, keys, g)
	if err := cl.XGroupCreate(keys.queue, keys.group, "0"); err != nil {
		return metrics.Report{}, fmt.Errorf("%s: create consumer group: %w", name, err)
	}

	if g.HasManagedState() && opts.RecoverStale {
		// XAUTOCLAIM replay re-runs Process (and possibly Finalize) for
		// tasks whose worker stalled past the idle threshold; managed store
		// mutations are not yet idempotent (no sequence-number fencing, see
		// ROADMAP), so the combination would silently double-apply state.
		return metrics.Report{}, fmt.Errorf("%s: Options.RecoverStale is not supported with managed-state PEs (at-least-once replay would double-apply store mutations)", name)
	}
	ms, err := mapping.OpenManagedState(g, opts, func() state.Backend {
		return state.NewRedisBackend(cl, keys.prefix+":state")
	})
	if err != nil {
		return metrics.Report{}, err
	}
	success := false
	defer func() { ms.Finish(g, success) }()
	// Managed-state graphs run in coordinated mode (see package dynamic):
	// the coordinator drains the stream, flushes managed Finals once each,
	// then poisons the pool; workers never self-terminate.
	coordinated := g.HasManagedState()

	host := platform.NewHost(opts.Platform)
	var tasks, outputs atomic.Int64

	for _, src := range g.Sources() {
		if err := pushStream(cl, keys, codec.Task{PE: src.Name, Instance: -1}); err != nil {
			return metrics.Report{}, fmt.Errorf("%s: seed source: %w", name, err)
		}
	}

	var ctrl *autoscale.Controller
	if auto {
		cfg := autoscale.Config{MaxPoolSize: opts.Processes}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = opts.Processes
		}
		// The paper's dyn_auto_redis threshold is the time worth a process
		// reactivation/redeployment; at our millisecond timescale the poll
		// timeout is that order of magnitude.
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.IdleTimeStrategy{Threshold: 4 * opts.PollTimeout}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		monCl := redisclient.Dial(opts.RedisAddr)
		defer monCl.Close()
		go ctrl.RunMonitor(func() float64 {
			infos, err := monCl.XInfoConsumers(keys.queue, keys.group)
			if err != nil || len(infos) == 0 {
				return 0
			}
			active := ctrl.ActiveSize()
			var sum float64
			var n int
			for _, info := range infos {
				var w int
				if _, err := fmt.Sscanf(info.Name, "w%d", &w); err != nil || w >= active {
					continue
				}
				sum += float64(info.Inactive.Milliseconds())
				n++
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
		defer ctrl.Terminate()
	}

	var firstErr error
	var errMu sync.Mutex
	var poisoned atomic.Bool
	var failed atomic.Bool
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
		broadcastPills(cl, keys, opts.Processes, &poisoned)
		if ctrl != nil {
			ctrl.Terminate()
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Processes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runRedisWorker(g, host, opts, name, w, keys, ctrl, ms, coordinated, &tasks, &outputs, &poisoned, fail)
		}(w)
	}
	if coordinated {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runStreamCoordinator(g, cl, keys, opts, &failed); err != nil && !failed.Load() {
				fail(err)
				return
			}
			broadcastPills(cl, keys, opts.Processes, &poisoned)
			if ctrl != nil {
				ctrl.Terminate()
			}
		}()
	}
	wg.Wait()
	runtime := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	success = true
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     name,
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
		State:       ms.Ops(),
	}, nil
}

// runStreamCoordinator is the managed-state termination protocol of the
// dynamic Redis mappings: drain the global stream, then push one Finalize
// task per managed node carrying a Final hook (topological order, draining
// between nodes so flushed values propagate through the pool).
func runStreamCoordinator(g *graph.Graph, cl *redisclient.Client, keys runKeys, opts mapping.Options, failed *atomic.Bool) error {
	// drain distinguishes "a worker already failed" (fail() owns the
	// unwind; report nothing) from a real Redis error mid-drain, which must
	// propagate or the run would report success with Finals never flushed.
	drain := func() (aborted bool, err error) {
		if err := awaitDrain(cl, keys, opts, failed); err != nil {
			if failed.Load() {
				return true, nil
			}
			return false, err
		}
		return false, nil
	}
	if aborted, err := drain(); aborted || err != nil {
		return err
	}
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, name := range order {
		n := g.Node(name)
		if !n.HasManagedState() {
			continue
		}
		if _, ok := n.Prototype.(core.Finalizer); !ok {
			continue
		}
		if err := pushStream(cl, keys, codec.Task{PE: n.Name, Instance: -1, Finalize: true}); err != nil {
			return err
		}
		if aborted, err := drain(); aborted || err != nil {
			return err
		}
	}
	return nil
}

// broadcastPills pushes one poison pill per worker, once.
func broadcastPills(cl *redisclient.Client, keys runKeys, n int, poisoned *atomic.Bool) {
	if poisoned.Swap(true) {
		return
	}
	for i := 0; i < n; i++ {
		_ = pushStream(cl, keys, codec.Task{Poison: true})
	}
}

// runRedisWorker is one dynamic Redis process: a consumer in the group with
// a private workflow copy and its own client connection (processes do not
// share sockets).
func runRedisWorker(
	g *graph.Graph,
	host *platform.Host,
	opts mapping.Options,
	technique string,
	w int,
	keys runKeys,
	ctrl *autoscale.Controller,
	ms *mapping.ManagedState,
	coordinated bool,
	tasks, outputs *atomic.Int64,
	poisoned *atomic.Bool,
	fail func(error),
) {
	cl := redisclient.Dial(opts.RedisAddr)
	defer cl.Close()
	proc := host.NewProcess(fmt.Sprintf("%s:w%d", technique, w))
	proc.Activate()
	defer proc.Deactivate()
	consumer := fmt.Sprintf("w%d", w)

	pes := make(map[string]core.PE, len(g.Nodes()))
	ctxs := make(map[string]*core.Context, len(g.Nodes()))
	for _, n := range g.Nodes() {
		n := n
		pes[n.Name] = n.Factory()
		emit := func(port string, value any) error {
			for _, e := range g.OutEdges(n.Name) {
				if e.FromPort != port {
					continue
				}
				if len(g.OutEdges(e.To)) == 0 {
					outputs.Add(1)
				}
				if err := pushStream(cl, keys, codec.Task{PE: e.To, Port: e.ToPort, Value: value, Instance: -1}); err != nil {
					return err
				}
			}
			return nil
		}
		ctx := core.NewContext(n.Name, w, host,
			synth.NewRand(opts.Seed^int64(w*7919)^int64(nodeHash(n.Name))), emit)
		if st := ms.Store(n.Name); st != nil {
			ctx = ctx.WithStore(st)
		}
		ctxs[n.Name] = ctx
	}
	for name, pe := range pes {
		if ini, ok := pe.(core.Initializer); ok {
			if err := ini.Init(ctxs[name]); err != nil {
				fail(fmt.Errorf("worker %d: init %s: %w", w, name, err))
				return
			}
		}
	}

	retries := 0
	for {
		if ctrl != nil && ctrl.Idle(w) {
			proc.Deactivate()
			if !ctrl.Admit(w) {
				return
			}
			proc.Activate()
		}
		entries, err := cl.XReadGroup(keys.group, consumer, 1, opts.PollTimeout, keys.queue)
		if err != nil {
			fail(fmt.Errorf("worker %d: read queue: %w", w, err))
			return
		}
		if len(entries) == 0 {
			retries++
			if opts.RecoverStale {
				// Reclaim tasks whose consumer stopped acknowledging them
				// (crashed or descheduled). XAUTOCLAIM moves idle pending
				// entries into this worker's PEL so the stream's
				// at-least-once guarantee actually holds under failures.
				_, claimed, err := cl.XAutoClaim(keys.queue, keys.group, consumer,
					8*opts.PollTimeout, "0-0", 1)
				if err == nil && len(claimed) > 0 {
					entries = claimed
					goto process
				}
			}
			if !coordinated && retries > opts.Retries {
				// In coordinated (managed-state) mode the coordinator owns
				// termination; workers just keep polling until poisoned.
				n, err := pendingCount(cl, keys)
				if err != nil {
					fail(fmt.Errorf("worker %d: pending count: %w", w, err))
					return
				}
				if n == 0 {
					broadcastPills(cl, keys, host.ProcessCount(), poisoned)
					if ctrl != nil {
						ctrl.Terminate()
					}
					return
				}
			}
			continue
		}
	process:
		retries = 0
		for _, entry := range entries {
			t, err := codec.Decode(entry.Fields[taskField])
			if err != nil {
				fail(fmt.Errorf("worker %d: %w", w, err))
				return
			}
			if t.Poison {
				_, _ = cl.XAck(keys.queue, keys.group, entry.ID)
				return
			}
			if t.Finalize {
				if fin, ok := pes[t.PE].(core.Finalizer); ok {
					if err := fin.Final(ctxs[t.PE]); err != nil {
						_ = taskDone(cl, keys)
						fail(fmt.Errorf("worker %d: final %s: %w", w, t.PE, err))
						return
					}
				}
				if err := taskDone(cl, keys); err != nil {
					fail(fmt.Errorf("worker %d: finalize done: %w", w, err))
					return
				}
				if _, err := cl.XAck(keys.queue, keys.group, entry.ID); err != nil {
					fail(fmt.Errorf("worker %d: ack: %w", w, err))
					return
				}
				continue
			}
			tasks.Add(1)
			if err := runRedisTask(g, pes, ctxs, t); err != nil {
				_ = taskDone(cl, keys)
				fail(fmt.Errorf("worker %d: %w", w, err))
				return
			}
			if err := taskDone(cl, keys); err != nil {
				fail(fmt.Errorf("worker %d: task done: %w", w, err))
				return
			}
			if _, err := cl.XAck(keys.queue, keys.group, entry.ID); err != nil {
				fail(fmt.Errorf("worker %d: ack: %w", w, err))
				return
			}
		}
	}
}

// runRedisTask executes one decoded task.
func runRedisTask(g *graph.Graph, pes map[string]core.PE, ctxs map[string]*core.Context, t codec.Task) error {
	pe, ok := pes[t.PE]
	if !ok {
		return fmt.Errorf("task for unknown PE %q", t.PE)
	}
	if t.Port == "" {
		src, ok := pe.(core.Source)
		if !ok {
			return fmt.Errorf("generate task for non-source PE %q", t.PE)
		}
		return src.Generate(ctxs[t.PE])
	}
	return pe.Process(ctxs[t.PE], t.Port, t.Value)
}

// nodeHash gives a stable per-node seed component.
func nodeHash(name string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}
