package synth

import (
	"fmt"
	"math"
)

// Trace is one synthetic seismic waveform: samples from a station channel,
// standing in for the MiniSEED segments the real Seismic Cross-Correlation
// workflow pulls from FDSN stations.
type Trace struct {
	// Station is the originating station code.
	Station string
	// SampleRate is samples per second.
	SampleRate float64
	// Samples is the waveform data.
	Samples []float64
}

// Stations generates n synthetic station codes.
func Stations(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("ST%03d", i)
	}
	return out
}

// MakeTrace synthesizes a waveform for one station: a sum of sinusoids (the
// "signal"), a linear drift (exercised by the detrend PE), a DC offset
// (exercised by the demean PE), and uniform noise.
func MakeTrace(station string, samples int, seed int64) Trace {
	rng := NewRand(seed)
	data := make([]float64, samples)
	freq1 := 0.5 + rng.Float64()*2
	freq2 := 4 + rng.Float64()*8
	offset := rng.Float64()*20 - 10
	drift := (rng.Float64()*2 - 1) / float64(samples)
	for i := range data {
		t := float64(i) / 100.0
		data[i] = math.Sin(2*math.Pi*freq1*t) +
			0.4*math.Sin(2*math.Pi*freq2*t) +
			offset + drift*float64(i) +
			(rng.Float64()*2-1)*0.25
	}
	return Trace{Station: station, SampleRate: 100, Samples: data}
}

// Mean returns the arithmetic mean of samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Detrend removes the least-squares linear trend in place and returns the
// slice for chaining.
func Detrend(samples []float64) []float64 {
	n := float64(len(samples))
	if n < 2 {
		return samples
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, v := range samples {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return samples
	}
	slope := (n*sumXY - sumX*sumY) / denom
	intercept := (sumY - slope*sumX) / n
	for i := range samples {
		samples[i] -= intercept + slope*float64(i)
	}
	return samples
}

// Demean subtracts the mean in place and returns the slice.
func Demean(samples []float64) []float64 {
	m := Mean(samples)
	for i := range samples {
		samples[i] -= m
	}
	return samples
}

// Decimate keeps every factor-th sample.
func Decimate(samples []float64, factor int) []float64 {
	if factor <= 1 {
		return samples
	}
	out := make([]float64, 0, len(samples)/factor+1)
	for i := 0; i < len(samples); i += factor {
		out = append(out, samples[i])
	}
	return out
}

// LowPassFIR applies a simple moving-average FIR filter of the given window,
// a stand-in for the band-pass filtering stage.
func LowPassFIR(samples []float64, window int) []float64 {
	if window <= 1 || len(samples) == 0 {
		return samples
	}
	out := make([]float64, len(samples))
	var acc float64
	for i, v := range samples {
		acc += v
		if i >= window {
			acc -= samples[i-window]
			out[i] = acc / float64(window)
		} else {
			out[i] = acc / float64(i+1)
		}
	}
	return out
}

// Whiten normalizes each sample by the RMS over a sliding window, the
// spectral-whitening stand-in.
func Whiten(samples []float64, window int) []float64 {
	if window <= 1 || len(samples) == 0 {
		return samples
	}
	out := make([]float64, len(samples))
	var acc float64
	sq := make([]float64, len(samples))
	for i, v := range samples {
		sq[i] = v * v
		acc += sq[i]
		if i >= window {
			acc -= sq[i-window]
		}
		n := window
		if i < window {
			n = i + 1
		}
		rms := math.Sqrt(acc / float64(n))
		if rms == 0 {
			out[i] = 0
		} else {
			out[i] = v / rms
		}
	}
	return out
}

// OneBitNormalize applies sign-bit temporal normalization.
func OneBitNormalize(samples []float64) []float64 {
	out := make([]float64, len(samples))
	for i, v := range samples {
		switch {
		case v > 0:
			out[i] = 1
		case v < 0:
			out[i] = -1
		}
	}
	return out
}

// CrossCorrelate computes the normalized cross-correlation of two equal-rate
// traces at the given lag range, returning the correlation series. It backs
// the phase-2 PE used by the extended example.
func CrossCorrelate(a, b []float64, maxLag int) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, 2*maxLag+1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		var sum float64
		for i := 0; i < n; i++ {
			j := i + lag
			if j < 0 || j >= n {
				continue
			}
			sum += a[i] * b[j]
		}
		out[lag+maxLag] = sum / float64(n)
	}
	return out
}
