package synth

import (
	"fmt"
	"math/rand"
)

// SessionEvent is one clickstream event of the sessionization workload: a
// user key drawn from a zipfian distribution over a large key space — the
// skewed, high-cardinality shape a real per-user service sees, where a few
// hot users dominate while the long tail keeps the key space enormous.
type SessionEvent struct {
	// User is the session key ("u<rank>"; low ranks are the hot keys).
	User string
	// Action is the event kind.
	Action string
	// Seq numbers the event within its generator stream.
	Seq int64
	// At is the emission timestamp (UnixNano), stamped by the open-loop
	// generator at send time; latency is measured against it downstream.
	At int64
}

// SessionUpdate is the sessionize PE's output: the user's running event
// count after folding one event into managed keyed state, carrying the
// originating event's timestamp through for end-to-end latency measurement.
type SessionUpdate struct {
	User  string
	Count int64
	At    int64
}

// sessionActions is the small action alphabet events cycle through.
var sessionActions = [...]string{"view", "click", "scroll", "search", "buy"}

// SessionGen deterministically generates SessionEvents with zipfian user
// keys. Distinct seeds give independent streams (one per source instance).
type SessionGen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int64
}

// NewSessionGen builds a generator over a key space of users ranks. skew is
// the zipf s parameter (must be > 1; larger is more skewed — 1.1 is a
// typical web-traffic shape). users is clamped to at least 1.
func NewSessionGen(seed int64, users int, skew float64) *SessionGen {
	if users < 1 {
		users = 1
	}
	if skew <= 1 {
		skew = 1.1
	}
	rng := NewRand(seed)
	return &SessionGen{
		rng:  rng,
		zipf: rand.NewZipf(rng, skew, 1, uint64(users-1)),
	}
}

// Next returns the next event. At is left zero — the pacer stamps it when
// the event actually leaves the source.
func (g *SessionGen) Next() SessionEvent {
	rank := g.zipf.Uint64()
	ev := SessionEvent{
		User:   fmt.Sprintf("u%d", rank),
		Action: sessionActions[g.rng.Intn(len(sessionActions))],
		Seq:    g.seq,
	}
	g.seq++
	return ev
}
