package synth

import (
	"fmt"
	"math"
)

// Galaxy is one record of the synthetic galaxy catalog consumed by the
// Internal Extinction of Galaxies workflow. It plays the role of a row in
// the coordinate input file the paper's readRaDec PE parses.
type Galaxy struct {
	// Name is a catalog identifier.
	Name string
	// RA is right ascension in degrees [0, 360).
	RA float64
	// Dec is declination in degrees [-90, 90].
	Dec float64
	// MorphType is the numeric morphological type code (de Vaucouleurs T),
	// which the extinction computation weights.
	MorphType float64
	// LogR25 is the decimal log of the major/minor isophotal axis ratio, the
	// quantity the internal extinction formula is applied to.
	LogR25 float64
}

// GalaxyCatalog deterministically generates n synthetic galaxies. The value
// distributions are loosely modeled on the HyperLEDA columns the real
// workflow downloads via VO tables; what matters for the reproduction is a
// stable per-record payload with plausible numeric ranges.
func GalaxyCatalog(seed int64, n int) []Galaxy {
	rng := NewRand(seed)
	out := make([]Galaxy, n)
	for i := range out {
		out[i] = Galaxy{
			Name:      fmt.Sprintf("SYN%05d", i),
			RA:        rng.Float64() * 360,
			Dec:       rng.Float64()*180 - 90,
			MorphType: math.Round(rng.Float64()*10*10) / 10, // 0.0 .. 10.0
			LogR25:    rng.Float64() * 0.9,                  // axis ratios up to ~8:1
		}
	}
	return out
}

// VOTableRow is one row of the synthetic "VO table" the getVOTable PE emits
// for a galaxy: a set of named columns, most of which the filterColumns PE
// discards.
type VOTableRow struct {
	Columns map[string]float64
}

// VOTableColumns is the full column set produced for each galaxy.
var VOTableColumns = []string{
	"ra", "dec", "t", "logr25", "bt", "vmax", "modz", "e_t", "e_logr25", "ag",
}

// ExtinctionColumns is the subset the internal extinction computation needs.
var ExtinctionColumns = []string{"t", "logr25"}

// MakeVOTable builds the synthetic VO table rows for one galaxy. rows
// controls the table length (the real service returns a small table per
// coordinate query).
func MakeVOTable(g Galaxy, rows int, seed int64) []VOTableRow {
	rng := NewRand(seed ^ int64(len(g.Name)))
	out := make([]VOTableRow, rows)
	for i := range out {
		cols := map[string]float64{
			"ra":       g.RA,
			"dec":      g.Dec,
			"t":        g.MorphType,
			"logr25":   g.LogR25,
			"bt":       10 + rng.Float64()*8,
			"vmax":     50 + rng.Float64()*400,
			"modz":     30 + rng.Float64()*5,
			"e_t":      rng.Float64(),
			"e_logr25": rng.Float64() * 0.1,
			"ag":       rng.Float64() * 0.3,
		}
		out[i] = VOTableRow{Columns: cols}
	}
	return out
}

// InternalExtinction applies the classic Bottinelli et al. style internal
// extinction correction used by the real workflow: A_int = gamma(T) * logR25,
// where the wavelength-dependent coefficient gamma depends on morphological
// type T and vanishes for early types.
func InternalExtinction(morphType, logR25 float64) float64 {
	var gamma float64
	switch {
	case morphType < 0:
		gamma = 0
	case morphType <= 5:
		gamma = 1.5 - 0.03*(morphType-5)*(morphType-5)
	default:
		gamma = 1.5
	}
	if gamma < 0 {
		gamma = 0
	}
	return gamma * logR25
}
