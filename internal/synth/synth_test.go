package synth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetaMeanAndRange(t *testing.T) {
	rng := NewRand(1)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := Beta(rng, 2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("beta sample out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	// Beta(2,5) has mean 2/7 ≈ 0.2857.
	if math.Abs(mean-2.0/7.0) > 0.01 {
		t.Errorf("beta(2,5) mean %.4f, want ≈ %.4f", mean, 2.0/7.0)
	}
}

func TestGammaMean(t *testing.T) {
	rng := NewRand(2)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += Gamma(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("gamma(%v) mean %.3f, want ≈ %.3f", shape, mean, shape)
		}
	}
}

func TestGammaDegenerate(t *testing.T) {
	rng := NewRand(3)
	if Gamma(rng, 0) != 0 || Gamma(rng, -1) != 0 {
		t.Error("non-positive shape should sample 0")
	}
}

func TestBetaDelaySamplerDeterministic(t *testing.T) {
	a := NewBetaDelaySampler(7)
	b := NewBetaDelaySampler(7)
	for i := 0; i < 100; i++ {
		if a.Fraction() != b.Fraction() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestGalaxyCatalogDeterministicAndBounded(t *testing.T) {
	a := GalaxyCatalog(11, 100)
	b := GalaxyCatalog(11, 100)
	if len(a) != 100 {
		t.Fatalf("len=%d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("catalog not deterministic")
		}
		if a[i].RA < 0 || a[i].RA >= 360 || a[i].Dec < -90 || a[i].Dec > 90 {
			t.Errorf("galaxy %d coordinates out of range: %+v", i, a[i])
		}
		if a[i].LogR25 < 0 {
			t.Errorf("galaxy %d negative logR25", i)
		}
	}
	if GalaxyCatalog(12, 100)[0] == a[0] {
		t.Error("different seeds should differ")
	}
}

func TestMakeVOTableHasAllColumns(t *testing.T) {
	g := GalaxyCatalog(1, 1)[0]
	rows := MakeVOTable(g, 3, 5)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, col := range VOTableColumns {
		if _, ok := rows[0].Columns[col]; !ok {
			t.Errorf("missing column %q", col)
		}
	}
	if rows[0].Columns["t"] != g.MorphType || rows[0].Columns["logr25"] != g.LogR25 {
		t.Error("extinction columns must carry the galaxy values")
	}
}

func TestInternalExtinction(t *testing.T) {
	if got := InternalExtinction(-3, 0.5); got != 0 {
		t.Errorf("early types have no internal extinction, got %v", got)
	}
	if got := InternalExtinction(7, 0.4); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("late type: got %v want 0.6", got)
	}
	// Monotone in logR25 for fixed late type.
	if InternalExtinction(7, 0.2) >= InternalExtinction(7, 0.8) {
		t.Error("extinction should grow with axis ratio")
	}
}

func TestInternalExtinctionNonNegativeProperty(t *testing.T) {
	f := func(tRaw, rRaw uint16) bool {
		morph := float64(tRaw%120)/10 - 1 // -1.0 .. 10.9
		logr := float64(rRaw%900) / 1000  // 0 .. 0.9
		return InternalExtinction(morph, logr) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeTraceAndTransforms(t *testing.T) {
	tr := MakeTrace("ST001", 2000, 42)
	if len(tr.Samples) != 2000 || tr.Station != "ST001" {
		t.Fatalf("trace: %d samples", len(tr.Samples))
	}
	// Demean drives the mean to ~0.
	demeaned := Demean(append([]float64(nil), tr.Samples...))
	if m := Mean(demeaned); math.Abs(m) > 1e-9 {
		t.Errorf("mean after demean: %v", m)
	}
	// Detrend removes a pure linear ramp entirely.
	ramp := make([]float64, 100)
	for i := range ramp {
		ramp[i] = 3 + 0.5*float64(i)
	}
	Detrend(ramp)
	for i, v := range ramp {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("detrended ramp[%d] = %v", i, v)
		}
	}
	// Decimate keeps ceil(n/factor) samples.
	if got := len(Decimate(make([]float64, 10), 4)); got != 3 {
		t.Errorf("decimate len=%d want 3", got)
	}
	if got := len(Decimate(make([]float64, 10), 1)); got != 10 {
		t.Errorf("decimate factor 1 should be identity, len=%d", got)
	}
}

func TestOneBitNormalize(t *testing.T) {
	out := OneBitNormalize([]float64{-2.5, 0, 3.7})
	want := []float64{-1, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("onebit[%d]=%v want %v", i, out[i], want[i])
		}
	}
}

func TestWhitenBoundsEnergy(t *testing.T) {
	tr := MakeTrace("ST000", 1000, 9)
	w := Whiten(append([]float64(nil), tr.Samples...), 50)
	for i, v := range w {
		if math.Abs(v) > 25 {
			t.Fatalf("whitened sample %d too large: %v", i, v)
		}
	}
}

func TestLowPassReducesVariance(t *testing.T) {
	tr := MakeTrace("ST000", 2000, 13)
	raw := append([]float64(nil), tr.Samples...)
	Demean(raw)
	filtered := LowPassFIR(append([]float64(nil), raw...), 20)
	varOf := func(x []float64) float64 {
		m := Mean(x)
		var s float64
		for _, v := range x {
			s += (v - m) * (v - m)
		}
		return s / float64(len(x))
	}
	if varOf(filtered) >= varOf(raw) {
		t.Error("low-pass should reduce variance of a noisy signal")
	}
}

func TestCrossCorrelateSelfPeaksAtZeroLag(t *testing.T) {
	tr := MakeTrace("ST000", 500, 17)
	x := Demean(append([]float64(nil), tr.Samples...))
	cc := CrossCorrelate(x, x, 10)
	peak := cc[10] // zero lag
	for i, v := range cc {
		if i != 10 && v > peak {
			t.Fatalf("autocorrelation peak not at zero lag: cc[%d]=%v > %v", i, v, peak)
		}
	}
}

func TestArticlesDeterministic(t *testing.T) {
	a := Articles(3, 50)
	b := Articles(3, 50)
	for i := range a {
		if a[i].Body != b[i].Body || a[i].State != b[i].State {
			t.Fatal("articles not deterministic")
		}
	}
	states := map[string]bool{}
	for _, art := range a {
		states[art.State] = true
		if len(art.Body) == 0 {
			t.Fatal("empty body")
		}
	}
	if len(states) < 5 {
		t.Errorf("only %d distinct states in 50 articles", len(states))
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Happy days, HAPPY nights! 42 joy.")
	want := []string{"happy", "days", "happy", "nights", "joy"}
	if len(got) != len(want) {
		t.Fatalf("tokens: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d]=%q want %q", i, got[i], want[i])
		}
	}
}

func TestScoreAFINNAndSWN3Agreement(t *testing.T) {
	pos := "happy joy wonderful triumph love"
	neg := "terrible disaster hate awful grief"
	if ScoreAFINN(pos) <= 0 {
		t.Error("positive text should score > 0 on AFINN")
	}
	if ScoreAFINN(neg) >= 0 {
		t.Error("negative text should score < 0 on AFINN")
	}
	if ScoreSWN3(Tokenize(pos)) <= 0 {
		t.Error("positive text should score > 0 on SWN3")
	}
	if ScoreSWN3(Tokenize(neg)) >= 0 {
		t.Error("negative text should score < 0 on SWN3")
	}
}

func TestSWN3CoversAFINN(t *testing.T) {
	for w := range AFINN {
		e, ok := SWN3[w]
		if !ok {
			t.Fatalf("SWN3 missing %q", w)
		}
		if e.Pos < 0 || e.Pos > 1 || e.Neg < 0 || e.Neg > 1 {
			t.Fatalf("SWN3[%q] out of range: %+v", w, e)
		}
	}
}

func TestSortStrings(t *testing.T) {
	ss := []string{"pear", "apple", "fig"}
	sortStrings(ss)
	if ss[0] != "apple" || ss[1] != "fig" || ss[2] != "pear" {
		t.Errorf("sorted: %v", ss)
	}
}

func TestStateBiasStableAndBounded(t *testing.T) {
	for _, s := range USStates {
		b := stateBias(s)
		if b < 0 || b > 0.13 {
			t.Errorf("bias(%s)=%v out of range", s, b)
		}
		if b != stateBias(s) {
			t.Errorf("bias(%s) not stable", s)
		}
	}
}

func TestStationsNames(t *testing.T) {
	st := Stations(3)
	if len(st) != 3 || st[0] != "ST000" || st[2] != "ST002" {
		t.Errorf("stations: %v", st)
	}
}
