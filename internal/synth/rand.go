// Package synth provides the deterministic synthetic inputs the benchmark
// workflows consume: seeded random sources, the beta(2,5) delay distribution
// the paper uses for "heavy" workloads, galaxy catalogs, seismic waveforms,
// news articles, and sentiment lexicons.
//
// All generators are deterministic under a caller-supplied seed so that
// experiment runs are reproducible and tests can assert on exact outputs.
package synth

import (
	"math"
	"math/rand"
)

// NewRand returns a seeded *rand.Rand. Use distinct seeds per logical stream
// so that concurrent components do not share (unsynchronized) state.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Beta samples the Beta(alpha, beta) distribution using the ratio of gamma
// variates: X/(X+Y) with X~Gamma(alpha), Y~Gamma(beta).
func Beta(rng *rand.Rand, alpha, beta float64) float64 {
	x := Gamma(rng, alpha)
	y := Gamma(rng, beta)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// Gamma samples Gamma(shape, 1) using the Marsaglia–Tsang method, with the
// standard boost for shape < 1.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1.0 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// BetaDelaySampler samples the paper's "heavy workload" PE delay: a
// beta(2,5)-distributed fraction of Max ("random sleep time sampled from a
// beta(2,5) distribution ... ranging from 0 to 1 second", scaled down by the
// harness).
type BetaDelaySampler struct {
	rng   *rand.Rand
	alpha float64
	beta  float64
}

// NewBetaDelaySampler builds the paper's beta(2,5) sampler.
func NewBetaDelaySampler(seed int64) *BetaDelaySampler {
	return &BetaDelaySampler{rng: NewRand(seed), alpha: 2, beta: 5}
}

// Fraction returns the next delay as a fraction in [0, 1).
func (s *BetaDelaySampler) Fraction() float64 { return Beta(s.rng, s.alpha, s.beta) }
