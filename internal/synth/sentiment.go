package synth

import (
	"fmt"
	"strings"
)

// Article is one synthetic news article, standing in for the Kaggle "News
// Articles" dataset rows the paper's sentiment workflow reads.
type Article struct {
	// ID is a sequential article identifier.
	ID int
	// State is the US state of the publication location; the happyState PE
	// groups by this field.
	State string
	// Title is a short headline.
	Title string
	// Body is the article text that the sentiment PEs score.
	Body string
}

// USStates is the grouping domain for the happyState PE.
var USStates = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
	"Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New Hampshire", "New Jersey", "New Mexico", "New York",
	"North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
	"Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
	"Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
	"West Virginia", "Wisconsin", "Wyoming",
}

// AFINN is a compact AFINN-111-style valence lexicon: word → score in
// [-5, 5]. It is a representative subset sufficient for scoring the
// synthetic corpus; the real workflow ships the full lexicon but the engine
// behaviour under test is identical.
var AFINN = map[string]int{
	"abandon": -2, "abhor": -3, "accept": 1, "acclaim": 2, "accomplish": 2,
	"ache": -2, "admire": 3, "adore": 3, "adverse": -2, "afraid": -2,
	"aggressive": -2, "agree": 1, "alarm": -2, "amazing": 4, "anger": -3,
	"angry": -3, "anguish": -3, "annoy": -2, "anxious": -2, "appalled": -2,
	"applaud": 2, "appreciate": 2, "approve": 2, "atrocious": -3, "awful": -3,
	"bad": -3, "beautiful": 3, "benefit": 2, "best": 3, "betray": -3,
	"bless": 2, "bliss": 3, "bonus": 2, "boost": 1, "bright": 1,
	"brilliant": 4, "broken": -1, "calm": 2, "catastrophe": -3, "celebrate": 3,
	"champion": 2, "chaos": -2, "charming": 3, "cheer": 2, "cheerful": 2,
	"collapse": -2, "comfort": 2, "confident": 2, "crash": -2, "crisis": -3,
	"cruel": -3, "damage": -3, "danger": -2, "dead": -3, "defeat": -2,
	"delight": 3, "despair": -3, "destroy": -3, "disaster": -3, "dismal": -2,
	"distrust": -3, "dream": 1, "dread": -2, "eager": 2, "ecstatic": 4,
	"elegant": 2, "encourage": 2, "enjoy": 2, "enthusiastic": 3, "evil": -3,
	"excellent": 3, "excited": 3, "fabulous": 4, "fail": -2, "failure": -2,
	"fantastic": 4, "fear": -2, "fine": 2, "flawless": 2, "fraud": -4,
	"free": 1, "fun": 4, "generous": 2, "glad": 3, "gloom": -2,
	"good": 3, "grand": 3, "grateful": 3, "great": 3, "grief": -2,
	"happy": 3, "hate": -3, "heartbreaking": -3, "hero": 2, "honest": 2,
	"hope": 2, "hopeful": 2, "horrible": -3, "hurt": -2, "improve": 2,
	"inspire": 2, "joy": 3, "jubilant": 4, "kill": -3, "kind": 2,
	"laugh": 1, "lose": -3, "loss": -3, "love": 3, "lovely": 3,
	"lucky": 3, "mad": -3, "marvelous": 3, "miserable": -3, "miss": -2,
	"murder": -2, "nice": 3, "optimistic": 2, "outstanding": 5, "pain": -2,
	"panic": -3, "peace": 2, "perfect": 3, "pleased": 3, "poverty": -1,
	"praise": 3, "pride": 1, "prosper": 2, "proud": 2, "rejoice": 4,
	"relief": 1, "rich": 2, "ruin": -2, "sad": -2, "safe": 1,
	"scandal": -3, "scared": -2, "share": 1, "shine": 2, "sick": -2,
	"smile": 2, "sorrow": -2, "splendid": 3, "strong": 2, "succeed": 3,
	"success": 2, "suffer": -2, "superb": 5, "support": 2, "terrible": -3,
	"terrific": 4, "terror": -3, "thankful": 2, "threat": -2, "thrilled": 5,
	"tragedy": -2, "triumph": 4, "trouble": -2, "trust": 1, "ugly": -3,
	"unhappy": -2, "victory": 3, "vibrant": 3, "violence": -3, "warm": 1,
	"welcome": 2, "win": 4, "wonderful": 4, "worry": -3, "worst": -3,
	"wrong": -2,
}

// SWN3Entry is a SentiWordNet-3-style lexicon row: independent positive and
// negative strengths in [0, 1].
type SWN3Entry struct {
	Pos float64
	Neg float64
}

// SWN3 is a compact SentiWordNet-style lexicon derived from AFINN so the two
// scorers agree in sign but differ in magnitude, mirroring the two pathways
// of the paper's workflow.
var SWN3 = func() map[string]SWN3Entry {
	out := make(map[string]SWN3Entry, len(AFINN))
	for w, s := range AFINN {
		e := SWN3Entry{}
		if s > 0 {
			e.Pos = float64(s) / 5
			e.Neg = 0.05
		} else {
			e.Neg = float64(-s) / 5
			e.Pos = 0.05
		}
		out[w] = e
	}
	return out
}()

// positiveWords / negativeWords index the lexicon by sign for the corpus
// generator.
var positiveWords, negativeWords = func() (pos, neg []string) {
	for w, s := range AFINN {
		if s > 0 {
			pos = append(pos, w)
		} else {
			neg = append(neg, w)
		}
	}
	return
}()

var fillerWords = []string{
	"the", "a", "mayor", "council", "report", "local", "today", "market",
	"community", "residents", "officials", "announced", "during", "meeting",
	"weather", "traffic", "school", "budget", "project", "season", "team",
	"downtown", "new", "plan", "vote", "study", "data", "year", "river",
}

// Articles deterministically generates n synthetic articles. Each state has
// a fixed "happiness bias" derived from its index so that aggregate state
// scores (and therefore the top-3 result) are stable across runs, while the
// two lexicons still disagree slightly in magnitude.
func Articles(seed int64, n int) []Article {
	rng := NewRand(seed)
	sortPositive := append([]string(nil), positiveWords...)
	sortNegative := append([]string(nil), negativeWords...)
	sortStrings(sortPositive)
	sortStrings(sortNegative)
	out := make([]Article, n)
	for i := range out {
		state := USStates[rng.Intn(len(USStates))]
		bias := stateBias(state)
		words := make([]string, 0, 60)
		for w := 0; w < 50; w++ {
			r := rng.Float64()
			switch {
			case r < 0.18+bias:
				words = append(words, sortPositive[rng.Intn(len(sortPositive))])
			case r < 0.36:
				words = append(words, sortNegative[rng.Intn(len(sortNegative))])
			default:
				words = append(words, fillerWords[rng.Intn(len(fillerWords))])
			}
		}
		out[i] = Article{
			ID:    i,
			State: state,
			Title: fmt.Sprintf("Dispatch %d from %s", i, state),
			Body:  strings.Join(words, " "),
		}
	}
	return out
}

// stateBias gives each state a stable happiness offset in [0, 0.12].
func stateBias(state string) float64 {
	var h uint32
	for _, c := range state {
		h = h*31 + uint32(c)
	}
	return float64(h%13) / 100.0
}

// sortStrings is a tiny insertion sort to avoid importing sort for two calls
// at init-time... it is clearer to just use the stdlib; kept as a named
// helper for testability.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Tokenize lower-cases and splits text on non-letter runes, the tokenizeWD
// PE's job.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z')
	})
}

// ScoreAFINN computes the AFINN sentiment score of text (sum of word
// valences).
func ScoreAFINN(text string) int {
	var score int
	for _, w := range Tokenize(text) {
		score += AFINN[w]
	}
	return score
}

// ScoreSWN3 computes the SWN3 sentiment score of tokens (sum of positive
// minus negative strengths).
func ScoreSWN3(tokens []string) float64 {
	var score float64
	for _, w := range tokens {
		if e, ok := SWN3[w]; ok {
			score += e.Pos - e.Neg
		}
	}
	return score
}
