package synth

import "testing"

func TestSessionGenDeterministic(t *testing.T) {
	a, b := NewSessionGen(7, 1000, 1.2), NewSessionGen(7, 1000, 1.2)
	for i := 0; i < 200; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("event %d diverged: %+v vs %+v", i, x, y)
		}
		if x.Seq != int64(i) {
			t.Fatalf("event %d carries Seq %d", i, x.Seq)
		}
		if x.At != 0 {
			t.Fatalf("generator must leave At for the pacer, got %d", x.At)
		}
	}
	if c := NewSessionGen(8, 1000, 1.2).Next(); c == NewSessionGen(7, 1000, 1.2).Next() {
		t.Fatal("distinct seeds produced the same first event")
	}
}

func TestSessionGenZipfSkew(t *testing.T) {
	const users, n = 10000, 20000
	g := NewSessionGen(42, users, 1.1)
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		ev := g.Next()
		counts[ev.User]++
		if ev.Action == "" {
			t.Fatal("empty action")
		}
	}
	// Zipfian skew: the hottest key takes far more than a uniform share
	// (n/users = 2), while the key space stays high-cardinality.
	if counts["u0"] < 50*n/users {
		t.Errorf("hot key u0 drew %d of %d events — not skewed (uniform share is %d)", counts["u0"], n, n/users)
	}
	if len(counts) < users/100 {
		t.Errorf("only %d distinct users over %d events — cardinality collapsed", len(counts), n)
	}
}
