package redisclient

import (
	"fmt"
	"strconv"

	"repro/internal/resp"
)

// Typed wrappers for the miniredis compound commands (see
// internal/miniredis/cmd_compound.go). Each is one atomic server-side
// transaction and — together with the applied-ledger gating — retry-safe, so
// the client's retry loop can re-send them across a lost reply without
// double-applying.

// FenceApplySet records ledgerField in the applied ledger of hashKey and sets
// field to value, atomically. applied=false means the ledger already held a
// record (a duplicate execution) and the mutation was skipped.
func (c *Client) FenceApplySet(hashKey, ledgerField, field, value string) (applied bool, err error) {
	v, err := c.Do("FENCEAPPLY", hashKey, ledgerField, "SET", field, value)
	if err != nil {
		return false, err
	}
	return fenceApplied(v)
}

// FenceApplyDel is FenceApplySet for a field deletion.
func (c *Client) FenceApplyDel(hashKey, ledgerField, field string) (applied bool, err error) {
	v, err := c.Do("FENCEAPPLY", hashKey, ledgerField, "DEL", field)
	if err != nil {
		return false, err
	}
	return fenceApplied(v)
}

// FenceApplyIncr atomically records ledgerField and adds delta to field,
// returning the field's value — post-increment when applied, current when the
// duplicate was dropped — so the caller always observes the effective count.
func (c *Client) FenceApplyIncr(hashKey, ledgerField, field string, delta int64) (applied bool, value int64, err error) {
	v, err := c.Do("FENCEAPPLY", hashKey, ledgerField, "INCR", field, strconv.FormatInt(delta, 10))
	if err != nil {
		return false, 0, err
	}
	if len(v.Array) != 2 {
		return false, 0, fmt.Errorf("redisclient: FENCEAPPLY: unexpected reply shape")
	}
	return v.Array[0].Int == 1, v.Array[1].Int, nil
}

// fenceApplied decodes the [applied, value] FENCEAPPLY reply.
func fenceApplied(v resp.Value) (bool, error) {
	if len(v.Array) < 1 {
		return false, fmt.Errorf("redisclient: FENCEAPPLY: unexpected reply shape")
	}
	return v.Array[0].Int == 1, nil
}

// FenceXAck acknowledges stream ids still owned by consumer and applies their
// pending-counter weights plus a direct decrement in one atomic server-side
// step. It returns how many entries were acked, the total counter decrement
// applied, and the pending counter's new value. ids and weights run in
// parallel (weights[i] is released only if ids[i] was acked).
func (c *Client) FenceXAck(stream, group, consumer, pendingKey string, direct int64, ids []string, weights []int64) (acked, dec, newPending int64, err error) {
	if len(ids) != len(weights) {
		return 0, 0, 0, fmt.Errorf("redisclient: FENCEXACK: %d ids vs %d weights", len(ids), len(weights))
	}
	args := make([]string, 0, 6+2*len(ids))
	args = append(args, "FENCEXACK", stream, group, consumer, pendingKey, strconv.FormatInt(direct, 10))
	for i, id := range ids {
		args = append(args, id, strconv.FormatInt(weights[i], 10))
	}
	v, err := c.Do(args...)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(v.Array) != 3 {
		return 0, 0, 0, fmt.Errorf("redisclient: FENCEXACK: unexpected reply shape")
	}
	return v.Array[0].Int, v.Array[1].Int, v.Array[2].Int, nil
}

// SinkAppend runs a whitelisted command batch (XADD auto-ID / RPUSH / INCRBY)
// gated on the applied ledger of ledgerKey/ledgerField, all in one atomic
// server-side transaction: the fenced exactly-once Final/sink flush.
// applied=false means the gate was already recorded and nothing ran.
func (c *Client) SinkAppend(ledgerKey, ledgerField string, cmds [][]string) (applied bool, err error) {
	args := make([]string, 0, 4+len(cmds)*4)
	args = append(args, "SINKAPPEND", ledgerKey, ledgerField, strconv.Itoa(len(cmds)))
	for _, argv := range cmds {
		args = append(args, strconv.Itoa(len(argv)))
		args = append(args, argv...)
	}
	v, err := c.Do(args...)
	if err != nil {
		return false, err
	}
	return v.Int == 1, nil
}
