package redisclient

import (
	"fmt"
	"testing"

	"repro/internal/miniredis"
)

// fakeCluster builds an n-shard cluster over undial-ed clients — ring-only
// tests never touch the network because Dial is lazy.
func fakeCluster(n int) *Cluster {
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = Dial(fmt.Sprintf("shard-%d.invalid:0", i))
	}
	return clusterOver(clients)
}

func TestShardForDistribution(t *testing.T) {
	c := fakeCluster(4)
	const keys = 10_000
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		counts[c.ShardFor(fmt.Sprintf("run:st:{user%d}", i))]++
	}
	for s, n := range counts {
		frac := float64(n) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %d owns %.1f%% of the keyspace; 64 vnodes should keep shards within [10%%, 45%%]", s, 100*frac)
		}
	}
}

// TestRingStabilityUnderGrowth pins the consistent-hash property the ring
// exists for: adding a shard moves roughly 1/(N+1) of the keys, not a full
// modulo reshuffle.
func TestRingStabilityUnderGrowth(t *testing.T) {
	before, after := fakeCluster(3), fakeCluster(4)
	const keys = 10_000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("run:st:{user%d}", i)
		if before.ShardFor(k) != after.ShardFor(k) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac == 0 {
		t.Fatal("no keys moved when a shard was added — the new shard owns nothing")
	}
	// Ideal is 1/4; anything far above that means placement is not
	// arc-stable (a modulo hash moves ~3/4 here).
	if frac > 0.40 {
		t.Errorf("%.1f%% of keys moved when growing 3→4 shards; consistent hashing should move ~25%%", 100*frac)
	}
}

// TestHashTagColocation pins the co-location invariant the fence depends on:
// every key embedding the same {namespace} tag hashes to one shard, so a
// task's gate, ledger entry and sink land in single-shard transactions.
func TestHashTagColocation(t *testing.T) {
	c := fakeCluster(4)
	for _, ns := range []string{"sessionize/0", "count:7", "weird{inner"} {
		keys := []string{
			"run:state:st:{" + ns + "}",
			"run:state:ck:{" + ns + "}",
			"run:state:lock:{" + ns + "}",
			"completely-different-prefix:{" + ns + "}:suffix",
		}
		want := c.ShardFor(keys[0])
		for _, k := range keys[1:] {
			if got := c.ShardFor(k); got != want {
				t.Errorf("key %q on shard %d, sibling %q on shard %d; same tag must co-locate", keys[0], want, k, got)
			}
		}
	}
}

func TestHashTag(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"a:{tag}:b":    "tag",
		"a:{}:b":       "a:{}:b", // empty tag falls back to the whole key
		"a:{open":      "a:{open",
		"{first}{two}": "first",
	}
	for key, want := range cases {
		if got := hashTag(key); got != want {
			t.Errorf("hashTag(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestSingleShardFastPath(t *testing.T) {
	cl := Dial("unused.invalid:0")
	c := Single(cl)
	if c.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", c.NumShards())
	}
	for _, k := range []string{"", "x", "a:{tag}:b"} {
		if got := c.ShardFor(k); got != 0 {
			t.Errorf("ShardFor(%q) = %d on a single-shard cluster, want 0", k, got)
		}
	}
	// Single wraps a caller-owned client: Close must leave it usable.
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestClusterRoutesToDistinctServers(t *testing.T) {
	const shards = 3
	addrs := make([]string, shards)
	servers := make([]*miniredis.Server, shards)
	for i := range addrs {
		srv, err := miniredis.StartTestServer()
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	c, err := NewCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, srv := range servers {
			srv.Close()
		}
	})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Writes through For(key) must be readable on the shard ShardFor names
	// and absent everywhere else.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("probe:{k%d}", i)
		if err := c.For(key).Set(key, "v"); err != nil {
			t.Fatal(err)
		}
		home := c.ShardFor(key)
		for s := 0; s < shards; s++ {
			got, ok, err := c.Shard(s).Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if s == home && (!ok || got != "v") {
				t.Fatalf("key %q missing on its home shard %d", key, home)
			}
			if s != home && ok {
				t.Fatalf("key %q leaked onto shard %d (home %d)", key, s, home)
			}
		}
	}

	// SumInt totals across shards.
	total, err := c.SumInt(func(shard int, cl *Client) (int64, error) {
		return cl.HIncrBy("cnt", "f", int64(shard+1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1+2+3 {
		t.Fatalf("SumInt = %d, want 6", total)
	}
}
