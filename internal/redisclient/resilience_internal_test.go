package redisclient

import (
	"testing"
	"time"
)

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},                          // block forever
		{-time.Second, "0"},               // negative: block forever, never "-1.000"
		{500 * time.Microsecond, "0.001"}, // sub-ms clamps up, never "0.000"
		{time.Millisecond, "0.001"},
		{1500 * time.Millisecond, "1.500"},
		{2 * time.Second, "2.000"},
	}
	for _, c := range cases {
		if got := formatSeconds(c.d); got != c.want {
			t.Errorf("formatSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		argv []string
		want bool
	}{
		{[]string{"GET", "k"}, true},
		{[]string{"HSET", "h", "f", "v"}, true},
		{[]string{"DEL", "k"}, true},
		{[]string{"SET", "k", "v"}, true},
		{[]string{"SET", "k", "v", "NX", "PX", "100"}, false}, // lock-stuck hazard
		{[]string{"INCRBY", "k", "1"}, false},                 // relative effect
		{[]string{"XADD", "q", "*", "f", "v"}, false},
		{[]string{"RPUSH", "k", "v"}, false},
		{[]string{"BLPOP", "k", "0"}, false},
		{[]string{"XREADGROUP", "GROUP", "g", "w0"}, false},
		{[]string{"FENCEAPPLY", "h", "lf", "SET", "k", "v"}, true}, // ledger-gated
		{[]string{"SINKAPPEND", "h", "lf", "0"}, true},
		{[]string{"FENCEXACK", "q", "g", "w0", "p", "0", "1-1", "2"}, true},
		{[]string{"FENCEXACK", "q", "g", "w0", "p", "3", "1-1", "2"}, false}, // direct dec not idempotent
		{[]string{"XCLAIM", "q", "g", "w0", "0", "1-1", "JUSTID"}, true},
		{[]string{"XCLAIM", "q", "g", "w0", "0", "1-1"}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Retryable(c.argv); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.argv, got, c.want)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	for attempt := 1; attempt <= 6; attempt++ {
		d := backoff(2*time.Millisecond, 50*time.Millisecond, attempt)
		// ±50% jitter around the capped doubling: never zero, never past
		// 1.5× the cap.
		if d <= 0 || d > 75*time.Millisecond {
			t.Fatalf("backoff(attempt=%d) = %v out of bounds", attempt, d)
		}
	}
	if d := backoff(0, 0, 1); d <= 0 {
		t.Fatalf("zero-base backoff = %v", d)
	}
}
