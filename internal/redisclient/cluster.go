package redisclient

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// ringVnodes is how many ring points each shard owns. More points smooth the
// key distribution; 128 keeps placement within a few percent of uniform while
// the ring stays small enough for binary search to be free.
const ringVnodes = 128

// Cluster routes keys across N Redis shards with a consistent-hash ring.
// It is the single answer to "which server holds this key?" for every layer
// of the data plane: the transport routes stream partitions by explicit
// shard index, the state backend routes namespace hashes by hashed key, and
// both agree because they share one Cluster (and therefore one ring).
//
// Placement follows the Redis Cluster hash-tag convention: when a key
// contains a "{tag}" substring, only the tag is hashed. The state backend's
// live hash, checkpoint, lock and fence-ledger keys of one namespace all
// embed the same "{namespace}" tag, so they land on one shard by
// construction — that co-location is what keeps FENCEAPPLY and SINKAPPEND
// single-shard transactions.
//
// The ring makes placement stable under shard-count changes: growing from N
// to N+1 shards only moves the keys whose ring arc the new shard's virtual
// nodes capture (~1/(N+1) of the keyspace), not a full reshuffle.
type Cluster struct {
	clients []*Client
	ring    []ringPoint
	owns    bool
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard index.
type ringPoint struct {
	hash  uint64
	shard int
}

// NewCluster dials one client per address and assembles the ring. The
// cluster owns the clients: Close closes them. Ring positions depend only on
// the shard index, not the address, so a shard keeps its arc when its server
// is restarted elsewhere.
func NewCluster(addrs []string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("redisclient: cluster needs at least one address")
	}
	clients := make([]*Client, len(addrs))
	for i, addr := range addrs {
		if addr == "" {
			return nil, fmt.Errorf("redisclient: cluster shard %d has an empty address", i)
		}
		clients[i] = Dial(addr)
	}
	c := clusterOver(clients)
	c.owns = true
	return c, nil
}

// Single wraps an existing client as a one-shard cluster. The caller keeps
// ownership of cl (Close does not close it) — the back-compat path for every
// API that used to take a bare *Client.
func Single(cl *Client) *Cluster {
	return clusterOver([]*Client{cl})
}

// clusterOver builds the ring over the given clients.
func clusterOver(clients []*Client) *Cluster {
	ring := make([]ringPoint, 0, len(clients)*ringVnodes)
	for shard := range clients {
		for v := 0; v < ringVnodes; v++ {
			ring = append(ring, ringPoint{hash: hash64(fmt.Sprintf("shard%d#%d", shard, v)), shard: shard})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return &Cluster{clients: clients, ring: ring}
}

// NumShards is the shard count.
func (c *Cluster) NumShards() int { return len(c.clients) }

// Shard returns the client of shard i — the explicit-placement path used by
// the transport, whose partitions are addressed by index rather than by key.
func (c *Cluster) Shard(i int) *Client { return c.clients[i] }

// ShardFor maps a key to its owning shard index by consistent hash.
func (c *Cluster) ShardFor(key string) int {
	if len(c.clients) == 1 {
		return 0
	}
	h := hash64(hashTag(key))
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0
	}
	return c.ring[i].shard
}

// For returns the client owning key.
func (c *Cluster) For(key string) *Client { return c.clients[c.ShardFor(key)] }

// hashTag extracts the routable part of a key: the substring of the first
// "{...}" pair when present and non-empty (the Redis Cluster convention),
// else the whole key.
func hashTag(key string) string {
	if open := strings.IndexByte(key, '{'); open >= 0 {
		if close := strings.IndexByte(key[open+1:], '}'); close > 0 {
			return key[open+1 : open+1+close]
		}
	}
	return key
}

// hash64 is FNV-1a finished with a splitmix64 round, stable across processes
// (placement must agree between the run's workers and any external observer
// sharing the ring). The finalizer matters: bare FNV-1a diffuses a trailing
// character change weakly into the high bits, and the ring orders points by
// the full 64-bit value — without the mix, vnode points ("shard0#1",
// "shard0#2", ...) clump and shards end up with arcs several times their fair
// share no matter how many vnodes are added.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ping verifies every shard is reachable.
func (c *Cluster) Ping() error {
	for i, cl := range c.clients {
		if err := cl.Ping(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Each runs fn sequentially on every shard, stopping at the first error.
func (c *Cluster) Each(fn func(shard int, cl *Client) error) error {
	for i, cl := range c.clients {
		if err := fn(i, cl); err != nil {
			return err
		}
	}
	return nil
}

// Gather runs fn concurrently on every shard (the scatter-gather primitive
// behind multi-key drains) and returns the first error. With one shard it
// degenerates to a plain call — no goroutine, no extra latency at N=1.
func (c *Cluster) Gather(fn func(shard int, cl *Client) error) error {
	if len(c.clients) == 1 {
		return fn(0, c.clients[0])
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			errs[i] = fn(i, cl)
		}(i, cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SumInt scatter-gathers an integer metric (queue depth, pending count)
// across shards and returns the total.
func (c *Cluster) SumInt(fn func(shard int, cl *Client) (int64, error)) (int64, error) {
	var mu sync.Mutex
	var total int64
	err := c.Gather(func(i int, cl *Client) error {
		n, err := fn(i, cl)
		if err != nil {
			return err
		}
		mu.Lock()
		total += n
		mu.Unlock()
		return nil
	})
	return total, err
}

// Stats sums the per-shard client statistics.
func (c *Cluster) Stats() Stats {
	var out Stats
	for _, cl := range c.clients {
		s := cl.Stats()
		out.RoundTrips += s.RoundTrips
		out.Retries += s.Retries
	}
	return out
}

// Close closes the shard clients when the cluster owns them (NewCluster);
// clusters wrapping caller-owned clients (Single) leave them open.
func (c *Cluster) Close() error {
	if !c.owns {
		return nil
	}
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
