package redisclient_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
)

func newPair(t *testing.T) *redisclient.Client {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	cl := redisclient.Dial(srv.Addr())
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return cl
}

func TestPingAndPoolReuse(t *testing.T) {
	cl := newPair(t)
	for i := 0; i < 20; i++ {
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDialUnreachable(t *testing.T) {
	cl := redisclient.Dial("127.0.0.1:1")
	cl.DialTimeout = 200 * time.Millisecond
	defer cl.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("ping to closed port should fail")
	}
}

func TestClosedClient(t *testing.T) {
	cl := newPair(t)
	cl.Close()
	if _, err := cl.Do("PING"); !errors.Is(err, redisclient.ErrClosed) {
		t.Fatalf("err=%v want ErrClosed", err)
	}
}

func TestServerErrorSurface(t *testing.T) {
	cl := newPair(t)
	_, err := cl.Do("GET", "a", "b", "c")
	var se redisclient.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want ServerError, got %v", err)
	}
	if se.Error() == "" {
		t.Error("empty error text")
	}
}

func TestTypedHelpers(t *testing.T) {
	cl := newPair(t)
	if err := cl.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	if s, ok, err := cl.Get("k"); err != nil || !ok || s != "v" {
		t.Fatalf("Get: %q %v %v", s, ok, err)
	}
	if n, err := cl.IncrBy("c", 5); err != nil || n != 5 {
		t.Fatalf("IncrBy: %d %v", n, err)
	}
	if err := cl.HSet("h", "f", "1"); err != nil {
		t.Fatal(err)
	}
	all, err := cl.HGetAll("h")
	if err != nil || all["f"] != "1" {
		t.Fatalf("HGetAll: %v %v", all, err)
	}
	if _, err := cl.RPush("l", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.LLen("l"); err != nil || n != 2 {
		t.Fatalf("LLen: %d %v", n, err)
	}
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get("k"); ok {
		t.Error("key survived FlushAll")
	}
}

func TestStreamHelpers(t *testing.T) {
	cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	id, err := cl.XAddValues("st", "f", "payload")
	if err != nil || id == "" {
		t.Fatalf("XAddValues: %q %v", id, err)
	}
	if n, err := cl.XLen("st"); err != nil || n != 1 {
		t.Fatalf("XLen: %d %v", n, err)
	}
	entries, err := cl.XReadGroup("g", "c1", 5, 0, "st")
	if err != nil || len(entries) != 1 || entries[0].Fields["f"] != "payload" {
		t.Fatalf("XReadGroup: %+v %v", entries, err)
	}
	sum, err := cl.XPendingSummary("st", "g")
	if err != nil || sum.Count != 1 || sum.PerConsumer["c1"] != 1 {
		t.Fatalf("XPendingSummary: %+v %v", sum, err)
	}
	infos, err := cl.XInfoConsumers("st", "g")
	if err != nil || len(infos) != 1 || infos[0].Name != "c1" {
		t.Fatalf("XInfoConsumers: %+v %v", infos, err)
	}
	if n, err := cl.XAck("st", "g", id); err != nil || n != 1 {
		t.Fatalf("XAck: %d %v", n, err)
	}
	// XAdd from a map form.
	if _, err := cl.XAdd("st", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	// XAutoClaim empty PEL is a no-op.
	cursor, claimed, err := cl.XAutoClaim("st", "g", "c2", 0, "0-0", 10)
	if err != nil || len(claimed) != 0 || cursor == "" {
		t.Fatalf("XAutoClaim: %q %+v %v", cursor, claimed, err)
	}
}

func TestXAckBatchedIDs(t *testing.T) {
	// One XACK command releases several deliveries at once — the pipelined
	// ack path of the batched consume loop relies on this being a single
	// round trip rather than one command per entry.
	cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		id, err := cl.XAddValues("st", "f", "v")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	entries, err := cl.XReadGroup("g", "c1", 5, 0, "st")
	if err != nil || len(entries) != 5 {
		t.Fatalf("XReadGroup: %d entries, %v", len(entries), err)
	}
	if n, err := cl.XAck("st", "g", ids...); err != nil || n != 5 {
		t.Fatalf("batched XAck: %d %v, want 5", n, err)
	}
	sum, err := cl.XPendingSummary("st", "g")
	if err != nil || sum.Count != 0 {
		t.Fatalf("PEL after batched ack: %+v %v", sum, err)
	}
	// Already-acked and never-delivered IDs count zero, mixed with a live one.
	id, err := cl.XAddValues("st", "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.XReadGroup("g", "c1", 1, 0, "st"); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.XAck("st", "g", ids[0], id, "99999-0"); err != nil || n != 1 {
		t.Fatalf("mixed XAck: %d %v, want 1", n, err)
	}
}

func TestXAckEach(t *testing.T) {
	// XAckEach tells the caller WHICH entries its ack removed — the fenced
	// entry-range ack path maps each removal count onto that entry's packed
	// task weight, so per-ID resolution is load-bearing.
	cl := newPair(t)
	if err := cl.XGroupCreate("st", "g", "0"); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := cl.XAddValues("st", "f", "v")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := cl.XReadGroup("g", "c1", 3, 0, "st"); err != nil {
		t.Fatal(err)
	}
	// Pre-ack the middle entry so the per-ID replies are distinguishable.
	if _, err := cl.XAck("st", "g", ids[1]); err != nil {
		t.Fatal(err)
	}
	got, err := cl.XAckEach("st", "g", []string{ids[0], ids[1], ids[2], "99999-0"})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 0, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("XAckEach replies: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("XAckEach replies: %v, want %v", got, want)
		}
	}
	if out, err := cl.XAckEach("st", "g", nil); err != nil || out != nil {
		t.Fatalf("empty XAckEach: %v %v, want nil nil", out, err)
	}
}

func TestLPopCount(t *testing.T) {
	cl := newPair(t)
	if _, err := cl.RPush("q", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.LPopCount("q", 2)
	if err != nil || len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("LPopCount(2): %v %v", got, err)
	}
	// Count past the remaining length drains the list.
	got, err = cl.LPopCount("q", 10)
	if err != nil || len(got) != 1 || got[0] != "c" {
		t.Fatalf("LPopCount(10): %v %v", got, err)
	}
	// Empty and missing lists return nil, not an error.
	if got, err := cl.LPopCount("q", 4); err != nil || len(got) != 0 {
		t.Fatalf("LPopCount empty: %v %v", got, err)
	}
	if got, err := cl.LPopCount("nosuch", 4); err != nil || len(got) != 0 {
		t.Fatalf("LPopCount missing: %v %v", got, err)
	}
}

func TestConcurrentPoolUse(t *testing.T) {
	cl := newPair(t)
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := cl.Incr("n"); err != nil {
					t.Errorf("incr: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s, ok, err := cl.Get("n")
	if err != nil || !ok || s != "250" {
		t.Fatalf("final: %q %v %v", s, ok, err)
	}
}

func TestBLPopAgainstServer(t *testing.T) {
	cl := newPair(t)
	if _, err := cl.RPush("q", "v"); err != nil {
		t.Fatal(err)
	}
	key, val, ok, err := cl.BLPop(time.Second, "q")
	if err != nil || !ok || key != "q" || val != "v" {
		t.Fatalf("BLPop: %q %q %v %v", key, val, ok, err)
	}
	_, _, ok, err = cl.BLPop(50*time.Millisecond, "q")
	if err != nil || ok {
		t.Fatalf("BLPop timeout: %v %v", ok, err)
	}
}
