// Package redisclient is a minimal Redis client used by the Redis-backed
// workflow mappings. It implements a connection pool over RESP2 plus typed
// helpers for exactly the command surface the engine needs (lists, streams
// with consumer groups, hashes, counters). It works against any RESP2 server;
// in this repository it talks to internal/miniredis.
package redisclient

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/resp"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("redisclient: client closed")

// ServerError is an error reply from the server (for example NOGROUP or
// WRONGTYPE).
type ServerError string

// Error implements the error interface.
func (e ServerError) Error() string { return "redis: " + string(e) }

// Client is a pooled Redis client, safe for concurrent use.
type Client struct {
	addr string

	mu     sync.Mutex
	idle   []*conn
	closed bool

	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// MaxIdle bounds the number of pooled idle connections.
	MaxIdle int
	// Dialer, when set, replaces the default TCP dialer — the hook tests and
	// proxies use to interpose on connection establishment.
	Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)
	// CmdTimeout bounds each command round trip with a connection deadline
	// (blocking commands add their block duration on top; a block-forever
	// command runs without a deadline). Zero disables deadlines.
	CmdTimeout time.Duration
	// Retries is how many times a failed *retry-safe* command (see Retryable)
	// is re-sent after a transient failure. Zero disables retries.
	Retries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it (with jitter) up to RetryMaxBackoff.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff.
	RetryMaxBackoff time.Duration

	statRoundTrips atomic.Int64
	statRetries    atomic.Int64
}

// conn is one pooled connection.
type conn struct {
	nc net.Conn
	r  *resp.Reader
	w  *resp.Writer
}

// Dial creates a client for the server at addr. Connections are created
// lazily. The returned client retries retry-safe commands twice with
// exponential backoff and bounds every round trip with a generous deadline;
// zero any of the knobs to opt out.
func Dial(addr string) *Client {
	return &Client{
		addr:            addr,
		DialTimeout:     5 * time.Second,
		MaxIdle:         64,
		CmdTimeout:      30 * time.Second,
		Retries:         2,
		RetryBackoff:    2 * time.Millisecond,
		RetryMaxBackoff: 50 * time.Millisecond,
	}
}

// Stats are cumulative client-side counters: server round trips attempted
// (one per Do attempt or pipeline flush) and retries among them.
type Stats struct {
	RoundTrips int64
	Retries    int64
}

// Stats returns the client's cumulative counters. The recovery bench asserts
// on round-trip deltas to prove fenced mutations cost one trip, not two.
func (c *Client) Stats() Stats {
	return Stats{RoundTrips: c.statRoundTrips.Load(), Retries: c.statRetries.Load()}
}

// Close releases all pooled connections. In-flight commands fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cn := range c.idle {
		cn.nc.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) getConn() (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	dial := c.Dialer
	if dial == nil {
		dial = net.DialTimeout
	}
	nc, err := dial("tcp", c.addr, c.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("redisclient: dial %s: %w", c.addr, err)
	}
	return &conn{nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}, nil
}

func (c *Client) putConn(cn *conn, broken bool) {
	if broken {
		cn.nc.Close()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.MaxIdle {
		cn.nc.Close()
		return
	}
	c.idle = append(c.idle, cn)
}

// Do sends one command and returns the reply value. Failures come back as a
// *CmdError naming the failing command; server error replies wrap a
// ServerError. Retry-safe commands (see Retryable) are transparently retried
// with exponential backoff on transient failures.
func (c *Client) Do(argv ...string) (resp.Value, error) {
	return c.do(0, false, argv)
}

// do is the shared command path. blockFor extends the per-command deadline
// for blocking commands; noDeadline disables the deadline entirely (a
// block-forever command must be allowed to outwait CmdTimeout).
func (c *Client) do(blockFor time.Duration, noDeadline bool, argv []string) (resp.Value, error) {
	if blockFor < 0 {
		blockFor = 0
	}
	attempts := 1
	if c.Retries > 0 && Retryable(argv) {
		attempts = c.Retries + 1
	}
	var v resp.Value
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.statRetries.Add(1)
			time.Sleep(backoff(c.RetryBackoff, c.RetryMaxBackoff, a))
		}
		c.statRoundTrips.Add(1)
		v, err = c.doOnce(blockFor, noDeadline, argv)
		if err == nil || !retryableError(err) {
			break
		}
	}
	if err != nil {
		return resp.Value{}, &CmdError{Cmd: argv[0], Err: err}
	}
	return v, nil
}

// doOnce performs one command round trip on one pooled connection.
func (c *Client) doOnce(blockFor time.Duration, noDeadline bool, argv []string) (resp.Value, error) {
	if err := faultinject.FireCmd(faultinject.ProbeConnWrite, argv[0]); err != nil {
		return resp.Value{}, err
	}
	cn, err := c.getConn()
	if err != nil {
		return resp.Value{}, err
	}
	hasDeadline := c.CmdTimeout > 0 && !noDeadline
	if hasDeadline {
		_ = cn.nc.SetDeadline(time.Now().Add(c.CmdTimeout + blockFor))
	}
	if err := cn.w.WriteCommand(argv...); err != nil {
		c.putConn(cn, true)
		return resp.Value{}, fmt.Errorf("write: %w", err)
	}
	// The command is on the wire: a fault or conn error from here on leaves
	// the client unable to know whether the server executed it — the window
	// only retry-safe commands may cross.
	if err := faultinject.FireCmd(faultinject.ProbeConnRead, argv[0]); err != nil {
		c.putConn(cn, true)
		return resp.Value{}, err
	}
	v, err := cn.r.ReadValue()
	if err != nil {
		c.putConn(cn, true)
		return resp.Value{}, fmt.Errorf("read reply: %w", err)
	}
	if hasDeadline {
		_ = cn.nc.SetDeadline(time.Time{})
	}
	c.putConn(cn, false)
	if v.Type == resp.Error {
		return resp.Value{}, ServerError(v.Str)
	}
	return v, nil
}

// Pipeline writes all commands over one connection before reading any reply,
// so the batch costs a single network round trip instead of one per command.
// Replies come back in command order; the first server error reply is
// returned as a *CmdError naming the failing command (later replies are still
// drained so the connection stays reusable). The whole pipeline is retried on
// transient transport failures only when every command in it is retry-safe.
func (c *Client) Pipeline(cmds [][]string) ([]resp.Value, error) {
	if len(cmds) == 0 {
		return nil, nil
	}
	attempts := 1
	if c.Retries > 0 {
		allRetryable := true
		for _, argv := range cmds {
			if !Retryable(argv) {
				allRetryable = false
				break
			}
		}
		if allRetryable {
			attempts = c.Retries + 1
		}
	}
	var replies []resp.Value
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.statRetries.Add(1)
			time.Sleep(backoff(c.RetryBackoff, c.RetryMaxBackoff, a))
		}
		c.statRoundTrips.Add(1)
		replies, err = c.pipelineOnce(cmds)
		// Retry only transport-level failures (no replies came back); a
		// server error reply is a delivered result, not a transient fault.
		if replies != nil || err == nil || !retryableError(err) {
			break
		}
	}
	return replies, err
}

// pipelineOnce performs one pipelined round trip.
func (c *Client) pipelineOnce(cmds [][]string) ([]resp.Value, error) {
	if err := faultinject.FireCmd(faultinject.ProbeConnWrite, cmds[0][0]); err != nil {
		return nil, &CmdError{Cmd: cmds[0][0], Err: err}
	}
	cn, err := c.getConn()
	if err != nil {
		return nil, &CmdError{Cmd: cmds[0][0], Err: err}
	}
	hasDeadline := c.CmdTimeout > 0
	if hasDeadline {
		_ = cn.nc.SetDeadline(time.Now().Add(c.CmdTimeout))
	}
	for _, argv := range cmds {
		if err := cn.w.WriteCommandBuffered(argv...); err != nil {
			c.putConn(cn, true)
			return nil, &CmdError{Cmd: argv[0], Err: fmt.Errorf("pipeline write: %w", err)}
		}
	}
	if err := cn.w.Flush(); err != nil {
		c.putConn(cn, true)
		return nil, &CmdError{Cmd: cmds[0][0], Err: fmt.Errorf("pipeline flush: %w", err)}
	}
	if err := faultinject.FireCmd(faultinject.ProbeConnRead, cmds[0][0]); err != nil {
		c.putConn(cn, true)
		return nil, &CmdError{Cmd: cmds[0][0], Err: err}
	}
	replies := make([]resp.Value, 0, len(cmds))
	var firstErr error
	for i := range cmds {
		v, err := cn.r.ReadValue()
		if err != nil {
			c.putConn(cn, true)
			return nil, &CmdError{Cmd: cmds[i][0], Err: fmt.Errorf("pipeline read reply: %w", err)}
		}
		if v.Type == resp.Error && firstErr == nil {
			firstErr = &CmdError{Cmd: cmds[i][0], Err: ServerError(v.Str)}
		}
		replies = append(replies, v)
	}
	if hasDeadline {
		_ = cn.nc.SetDeadline(time.Time{})
	}
	c.putConn(cn, false)
	return replies, firstErr
}

// DoInt runs a command expecting an integer reply.
func (c *Client) DoInt(argv ...string) (int64, error) {
	v, err := c.Do(argv...)
	if err != nil {
		return 0, err
	}
	if v.Type != resp.Integer {
		return 0, fmt.Errorf("redisclient: %s: expected integer reply, got %s", argv[0], v.Type)
	}
	return v.Int, nil
}

// DoString runs a command expecting a (possibly nil) string reply. Nil
// replies return ok=false.
func (c *Client) DoString(argv ...string) (string, bool, error) {
	v, err := c.Do(argv...)
	if err != nil {
		return "", false, err
	}
	if v.IsNull() {
		return "", false, nil
	}
	return v.Text(), true, nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v.Str != "PONG" {
		return fmt.Errorf("redisclient: unexpected PING reply %q", v.Str)
	}
	return nil
}

// FlushAll clears the server keyspace.
func (c *Client) FlushAll() error {
	_, err := c.Do("FLUSHALL")
	return err
}

// --- Lists -----------------------------------------------------------------

// RPush appends values to a list, returning the new length.
func (c *Client) RPush(key string, values ...string) (int64, error) {
	return c.DoInt(append([]string{"RPUSH", key}, values...)...)
}

// LPush prepends values to a list, returning the new length.
func (c *Client) LPush(key string, values ...string) (int64, error) {
	return c.DoInt(append([]string{"LPUSH", key}, values...)...)
}

// LLen returns the list length.
func (c *Client) LLen(key string) (int64, error) { return c.DoInt("LLEN", key) }

// LPop pops from the head; ok=false when the list is empty.
func (c *Client) LPop(key string) (string, bool, error) {
	return c.DoString("LPOP", key)
}

// LPopCount pops up to count elements from the head in one round trip
// (LPOP key count); an empty or missing list returns a nil slice. It is the
// non-blocking refill of the batched private-queue consume path.
func (c *Client) LPopCount(key string, count int) ([]string, error) {
	v, err := c.Do("LPOP", key, strconv.Itoa(count))
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, nil
	}
	out := make([]string, 0, len(v.Array))
	for _, e := range v.Array {
		out = append(out, e.Str)
	}
	return out, nil
}

// BLPop blocks until one of keys has an element or the timeout elapses.
// It returns the key and value; ok=false on timeout. A zero or negative
// timeout blocks forever (matching Redis "0" semantics).
func (c *Client) BLPop(timeout time.Duration, keys ...string) (key, value string, ok bool, err error) {
	args := append([]string{"BLPOP"}, keys...)
	args = append(args, formatSeconds(timeout))
	v, err := c.do(timeout, timeout <= 0, args)
	if err != nil {
		return "", "", false, err
	}
	if v.IsNull() || len(v.Array) != 2 {
		return "", "", false, nil
	}
	return v.Array[0].Str, v.Array[1].Str, true, nil
}

// formatSeconds renders a blocking timeout for the wire. Zero and negative
// durations mean "block forever", which RESP spells "0" — formatting the raw
// value would either send a negative float the server rejects or round a
// sub-millisecond positive timeout to "0.000" and block forever by accident.
func formatSeconds(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

// --- Counters / hashes -------------------------------------------------------

// Incr increments a counter key.
func (c *Client) Incr(key string) (int64, error) { return c.DoInt("INCR", key) }

// IncrBy adds delta to a counter key.
func (c *Client) IncrBy(key string, delta int64) (int64, error) {
	return c.DoInt("INCRBY", key, strconv.FormatInt(delta, 10))
}

// Get fetches a string key; ok=false when missing.
func (c *Client) Get(key string) (string, bool, error) { return c.DoString("GET", key) }

// Set stores a string key.
func (c *Client) Set(key, value string) error {
	_, err := c.Do("SET", key, value)
	return err
}

// HSet sets hash fields given alternating field/value pairs.
func (c *Client) HSet(key string, fieldValues ...string) error {
	_, err := c.Do(append([]string{"HSET", key}, fieldValues...)...)
	return err
}

// HGetAll fetches all fields of a hash.
func (c *Client) HGetAll(key string) (map[string]string, error) {
	v, err := c.Do("HGETALL", key)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(v.Array)/2)
	for i := 0; i+1 < len(v.Array); i += 2 {
		out[v.Array[i].Str] = v.Array[i+1].Str
	}
	return out, nil
}

// HGet fetches one hash field; ok=false when the field is missing.
func (c *Client) HGet(key, field string) (string, bool, error) {
	return c.DoString("HGET", key, field)
}

// HDel removes hash fields, returning how many existed.
func (c *Client) HDel(key string, fields ...string) (int64, error) {
	return c.DoInt(append([]string{"HDEL", key}, fields...)...)
}

// HKeys lists the field names of a hash.
func (c *Client) HKeys(key string) ([]string, error) {
	v, err := c.Do("HKEYS", key)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(v.Array))
	for _, f := range v.Array {
		out = append(out, f.Str)
	}
	return out, nil
}

// HLen returns the number of fields in a hash.
func (c *Client) HLen(key string) (int64, error) { return c.DoInt("HLEN", key) }

// HIncrBy adds delta to an integer hash field, returning the new value. The
// increment is atomic on the server, which makes it the fast path for keyed
// counter state.
func (c *Client) HIncrBy(key, field string, delta int64) (int64, error) {
	return c.DoInt("HINCRBY", key, field, strconv.FormatInt(delta, 10))
}

// SetNX sets key only when absent, reporting whether it was set; a non-zero
// ttl expires the key (SET NX PX, one atomic command). It is the primitive
// behind the state layer's per-key update locks.
func (c *Client) SetNX(key, value string, ttl time.Duration) (bool, error) {
	args := []string{"SET", key, value, "NX"}
	if ttl > 0 {
		args = append(args, "PX", strconv.FormatInt(ttl.Milliseconds(), 10))
	}
	v, err := c.Do(args...)
	if err != nil {
		return false, err
	}
	return !v.IsNull(), nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	return c.DoInt(append([]string{"DEL"}, keys...)...)
}

// --- Streams -----------------------------------------------------------------

// StreamEntry is one stream record as seen by a client.
type StreamEntry struct {
	ID     string
	Fields map[string]string
}

// StreamMessages groups the entries read from one stream key.
type StreamMessages struct {
	Key     string
	Entries []StreamEntry
}

// XAdd appends an entry with auto ID, returning the assigned ID.
func (c *Client) XAdd(key string, fields map[string]string) (string, error) {
	args := []string{"XADD", key, "*"}
	for f, v := range fields {
		args = append(args, f, v)
	}
	s, _, err := c.DoString(args...)
	return s, err
}

// XAddValues appends an entry from alternating field/value pairs, preserving
// order (map iteration order is randomized; the engine wants determinism).
func (c *Client) XAddValues(key string, fieldValues ...string) (string, error) {
	args := append([]string{"XADD", key, "*"}, fieldValues...)
	s, _, err := c.DoString(args...)
	return s, err
}

// XLen returns the number of entries in the stream.
func (c *Client) XLen(key string) (int64, error) { return c.DoInt("XLEN", key) }

// XGroupCreate creates a consumer group at the given start ("0" or "$"),
// creating the stream when necessary. Existing groups are not an error.
func (c *Client) XGroupCreate(key, group, start string) error {
	_, err := c.Do("XGROUP", "CREATE", key, group, start, "MKSTREAM")
	var se ServerError
	if errors.As(err, &se) && len(se) >= 9 && se[:9] == "BUSYGROUP" {
		return nil
	}
	return err
}

// XReadGroup reads new entries (id ">") for a consumer, blocking up to block
// (0 means non-blocking). It returns nil when nothing is available.
func (c *Client) XReadGroup(group, consumer string, count int, block time.Duration, key string) ([]StreamEntry, error) {
	args := []string{"XREADGROUP", "GROUP", group, consumer}
	if count > 0 {
		args = append(args, "COUNT", strconv.Itoa(count))
	}
	if block > 0 {
		args = append(args, "BLOCK", strconv.FormatInt(block.Milliseconds(), 10))
	}
	args = append(args, "STREAMS", key, ">")
	v, err := c.do(block, false, args)
	if err != nil {
		return nil, err
	}
	msgs := parseStreamsReply(v)
	for _, m := range msgs {
		if m.Key == key {
			return m.Entries, nil
		}
	}
	return nil, nil
}

// XAck acknowledges processed entries, returning how many were pending.
func (c *Client) XAck(key, group string, ids ...string) (int64, error) {
	return c.DoInt(append([]string{"XACK", key, group}, ids...)...)
}

// XAckEach acknowledges every ID with its own XACK in one pipelined round
// trip and returns the per-ID removal counts in order — the caller learns
// which specific entries its acknowledgement actually removed, which a
// multi-ID XACK's summed reply cannot tell it.
func (c *Client) XAckEach(key, group string, ids []string) ([]int64, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	cmds := make([][]string, len(ids))
	for i, id := range ids {
		cmds[i] = []string{"XACK", key, group, id}
	}
	replies, err := c.Pipeline(cmds)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(replies))
	for i, r := range replies {
		out[i] = r.Int
	}
	return out, nil
}

// PendingSummary is the XPENDING summary reply.
type PendingSummary struct {
	Count       int64
	MinID       string
	MaxID       string
	PerConsumer map[string]int64
}

// XPendingSummary fetches the group's PEL summary.
func (c *Client) XPendingSummary(key, group string) (PendingSummary, error) {
	v, err := c.Do("XPENDING", key, group)
	if err != nil {
		return PendingSummary{}, err
	}
	sum := PendingSummary{PerConsumer: map[string]int64{}}
	if len(v.Array) >= 4 {
		sum.Count = v.Array[0].Int
		sum.MinID = v.Array[1].Str
		sum.MaxID = v.Array[2].Str
		for _, row := range v.Array[3].Array {
			if len(row.Array) == 2 {
				n, _ := strconv.ParseInt(row.Array[1].Str, 10, 64)
				sum.PerConsumer[row.Array[0].Str] = n
			}
		}
	}
	return sum, nil
}

// XPendingIDs lists up to count entry IDs currently pending for one
// consumer (the XPENDING extended form with a consumer filter). The fenced
// acknowledgement path uses it to verify the acker still owns its
// deliveries after an XAUTOCLAIM may have moved them to another consumer.
func (c *Client) XPendingIDs(key, group, consumer string, count int) ([]string, error) {
	v, err := c.Do("XPENDING", key, group, "-", "+", strconv.Itoa(count), consumer)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(v.Array))
	for _, row := range v.Array {
		if len(row.Array) >= 1 {
			out = append(out, row.Array[0].Str)
		}
	}
	return out, nil
}

// ConsumerInfo is one row of XINFO CONSUMERS.
type ConsumerInfo struct {
	Name    string
	Pending int64
	// Idle is the time since the consumer's last attempted interaction.
	Idle time.Duration
	// Inactive is the time since the consumer's last successful entry
	// delivery (Redis 7 semantics) — the dyn_auto_redis monitor metric,
	// because polling consumers reset Idle on every empty read.
	Inactive time.Duration
}

// XInfoConsumers lists consumers of a group with their idle times. The
// dyn_auto_redis monitoring strategy averages the Idle values.
func (c *Client) XInfoConsumers(key, group string) ([]ConsumerInfo, error) {
	v, err := c.Do("XINFO", "CONSUMERS", key, group)
	if err != nil {
		return nil, err
	}
	out := make([]ConsumerInfo, 0, len(v.Array))
	for _, row := range v.Array {
		info := ConsumerInfo{}
		for i := 0; i+1 < len(row.Array); i += 2 {
			switch row.Array[i].Str {
			case "name":
				info.Name = row.Array[i+1].Str
			case "pending":
				info.Pending = row.Array[i+1].Int
			case "idle":
				info.Idle = time.Duration(row.Array[i+1].Int) * time.Millisecond
			case "inactive":
				info.Inactive = time.Duration(row.Array[i+1].Int) * time.Millisecond
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// XClaimJustID claims ids onto consumer with XCLAIM ... JUSTID, returning the
// IDs actually claimed. JUSTID resets each entry's idle clock without bumping
// its delivery counter, so a worker claiming its own pending entries acts as
// a lease heartbeat: the entries stay ineligible for XAUTOCLAIM as long as
// the worker keeps making progress.
func (c *Client) XClaimJustID(key, group, consumer string, minIdle time.Duration, ids []string) ([]string, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	args := make([]string, 0, len(ids)+6)
	args = append(args, "XCLAIM", key, group, consumer, strconv.FormatInt(minIdle.Milliseconds(), 10))
	args = append(args, ids...)
	args = append(args, "JUSTID")
	v, err := c.Do(args...)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(v.Array))
	for _, e := range v.Array {
		out = append(out, e.Str)
	}
	return out, nil
}

// XAutoClaim claims entries idle for at least minIdle onto consumer, starting
// the PEL scan at start ("0-0" to scan from the beginning). It returns the
// next cursor and the claimed entries.
func (c *Client) XAutoClaim(key, group, consumer string, minIdle time.Duration, start string, count int) (string, []StreamEntry, error) {
	args := []string{
		"XAUTOCLAIM", key, group, consumer,
		strconv.FormatInt(minIdle.Milliseconds(), 10), start,
		"COUNT", strconv.Itoa(count),
	}
	v, err := c.Do(args...)
	if err != nil {
		return "", nil, err
	}
	if len(v.Array) < 2 {
		return "0-0", nil, nil
	}
	return v.Array[0].Str, parseEntries(v.Array[1]), nil
}

// parseStreamsReply decodes the [[key, [entries...]]...] XREAD/XREADGROUP shape.
func parseStreamsReply(v resp.Value) []StreamMessages {
	if v.IsNull() {
		return nil
	}
	out := make([]StreamMessages, 0, len(v.Array))
	for _, sv := range v.Array {
		if len(sv.Array) != 2 {
			continue
		}
		out = append(out, StreamMessages{
			Key:     sv.Array[0].Str,
			Entries: parseEntries(sv.Array[1]),
		})
	}
	return out
}

// parseEntries decodes [[id, [f, v, ...]]...].
func parseEntries(v resp.Value) []StreamEntry {
	entries := make([]StreamEntry, 0, len(v.Array))
	for _, ev := range v.Array {
		if len(ev.Array) != 2 {
			continue
		}
		e := StreamEntry{ID: ev.Array[0].Str, Fields: map[string]string{}}
		fv := ev.Array[1].Array
		for i := 0; i+1 < len(fv); i += 2 {
			e.Fields[fv[i].Str] = fv[i+1].Str
		}
		entries = append(entries, e)
	}
	return entries
}
