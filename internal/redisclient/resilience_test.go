package redisclient_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/redisclient"
)

// arm installs a process-global injector for the duration of one test.
// Fault arming is global, so none of these tests may run in parallel.
func arm(t *testing.T, faults ...faultinject.Fault) *faultinject.Injector {
	t.Helper()
	inj := faultinject.New(1)
	for _, f := range faults {
		inj.Schedule(f)
	}
	faultinject.Arm(inj)
	t.Cleanup(faultinject.Disarm)
	return inj
}

// TestRetryOnConnDrop: a dropped connection mid-read is retried
// transparently for a retry-safe command.
func TestRetryOnConnDrop(t *testing.T) {
	cl := newPair(t)
	if err := cl.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	arm(t, faultinject.Fault{
		Probe: faultinject.ProbeConnRead, Cmd: "GET", Hits: 1, Kind: faultinject.ConnDrop,
	})
	before := cl.Stats()
	v, ok, err := cl.Get("k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("Get after drop: %q %v %v", v, ok, err)
	}
	after := cl.Stats()
	if after.Retries-before.Retries < 1 {
		t.Fatalf("no retry recorded: %+v -> %+v", before, after)
	}
}

// TestReplyLostExactlyOnce: the reply to a FENCEAPPLY is lost after the
// server executed it. The client's retry re-sends the command; the
// server-side applied ledger absorbs the duplicate, so the effect lands
// exactly once and the retry still reports the effective value.
func TestReplyLostExactlyOnce(t *testing.T) {
	cl := newPair(t)
	arm(t, faultinject.Fault{
		Probe: faultinject.ProbeConnRead, Cmd: "FENCEAPPLY", Hits: 1, Kind: faultinject.ConnDrop,
	})
	_, n, err := cl.FenceApplyIncr("h", "gate", "cnt", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Whichever of the two server-side executions wins the race to apply,
	// the observed value is exact and the effect lands once.
	if n != 7 {
		t.Fatalf("n=%d want 7", n)
	}
	if v, _, _ := cl.HGet("h", "cnt"); v != "7" {
		t.Fatalf("cnt=%q want 7 (double-applied?)", v)
	}
	// Both executions recorded their ledger hit; one applied.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c, _, _ := cl.HGet("h", "gate"); c == "2" {
			break
		}
		if time.Now().After(deadline) {
			c, _, _ := cl.HGet("h", "gate")
			t.Fatalf("ledger count=%q want 2", c)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNonRetryableSurfacesDrop: XADD is a relative-effect write, so a lost
// reply must surface as an error rather than risk a duplicate entry.
func TestNonRetryableSurfacesDrop(t *testing.T) {
	cl := newPair(t)
	arm(t, faultinject.Fault{
		Probe: faultinject.ProbeConnRead, Cmd: "XADD", Hits: 1, Kind: faultinject.ConnDrop,
	})
	before := cl.Stats()
	_, err := cl.XAddValues("q", "f", "v")
	if !errors.Is(err, faultinject.ErrConnDrop) {
		t.Fatalf("want ErrConnDrop, got %v", err)
	}
	if got := cl.Stats().Retries - before.Retries; got != 0 {
		t.Fatalf("non-retryable command retried %d times", got)
	}
	// The abandoned attempt was already on the wire, so the server still
	// executes it — asynchronously to the client's error return.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := cl.XLen("q"); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			n, _ := cl.XLen("q")
			t.Fatalf("stream len=%d want 1 (the attempt did execute)", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCmdErrorNamesCommand: failures carry the command verb and classify
// terminal server replies as non-retryable.
func TestCmdErrorNamesCommand(t *testing.T) {
	cl := newPair(t)
	_, err := cl.Do("HGET", "h") // bad arity
	if err == nil {
		t.Fatal("bad arity accepted")
	}
	if !strings.Contains(err.Error(), "HGET") {
		t.Fatalf("error does not name the command: %v", err)
	}
	var ce *redisclient.CmdError
	if !errors.As(err, &ce) {
		t.Fatalf("not a CmdError: %v", err)
	}
	if ce.Retryable() {
		t.Fatal("arity error classified retryable")
	}
	var se redisclient.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("ServerError not reachable through CmdError: %v", err)
	}
}

// TestKillFaultIsTerminal: a Kill fault must abort immediately — no retry
// may paper over a simulated process death.
func TestKillFaultIsTerminal(t *testing.T) {
	cl := newPair(t)
	arm(t, faultinject.Fault{
		Probe: faultinject.ProbeConnWrite, Cmd: "GET", Hits: 1, Kind: faultinject.Kill,
	})
	before := cl.Stats()
	_, _, err := cl.Get("k")
	if !errors.Is(err, faultinject.ErrKill) {
		t.Fatalf("want ErrKill, got %v", err)
	}
	if got := cl.Stats().Retries - before.Retries; got != 0 {
		t.Fatalf("kill fault retried %d times", got)
	}
}

// TestBLPopTimeoutBehavior: a positive sub-second timeout must actually
// time out (not block forever via a "0" encoding), and zero/negative
// timeouts with a value present return it immediately.
func TestBLPopTimeoutBehavior(t *testing.T) {
	cl := newPair(t)
	start := time.Now()
	_, _, ok, err := cl.BLPop(50*time.Millisecond, "empty")
	if err != nil || ok {
		t.Fatalf("BLPop on empty: ok=%v err=%v", ok, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("sub-second timeout blocked far too long")
	}
	if _, err := cl.RPush("l", "x"); err != nil {
		t.Fatal(err)
	}
	k, v, ok, err := cl.BLPop(-time.Second, "l")
	if err != nil || !ok || k != "l" || v != "x" {
		t.Fatalf("BLPop with value present: %q %q %v %v", k, v, ok, err)
	}
}
