package redisclient

import (
	"errors"
	"math/rand"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// CmdError wraps a command failure with the name of the command that failed,
// so callers see "redisclient: FENCEAPPLY: ..." instead of a bare error
// string with no context. It unwraps to the underlying cause, keeping
// errors.Is(err, ErrClosed) and errors.As(err, &ServerError) working.
type CmdError struct {
	// Cmd is the command verb that failed, as sent.
	Cmd string
	// Err is the underlying cause: a ServerError for error replies, a
	// transport error otherwise.
	Err error
}

// Error implements the error interface.
func (e *CmdError) Error() string {
	return "redisclient: " + strings.ToUpper(e.Cmd) + ": " + e.Err.Error()
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CmdError) Unwrap() error { return e.Err }

// Retryable classifies the failure: true for transient faults (broken
// connections, timeouts, LOADING/BUSY/TRYAGAIN replies) where re-sending a
// retry-safe command may succeed, false for terminal replies (WRONGTYPE,
// NOGROUP, malformed arguments) where it cannot.
func (e *CmdError) Retryable() bool { return retryableError(e.Err) }

// retryableError reports whether an underlying failure is transient.
func retryableError(err error) bool {
	if errors.Is(err, ErrClosed) || errors.Is(err, faultinject.ErrKill) {
		return false
	}
	var se ServerError
	if errors.As(err, &se) {
		s := string(se)
		return strings.HasPrefix(s, "LOADING") ||
			strings.HasPrefix(s, "BUSY ") ||
			strings.HasPrefix(s, "TRYAGAIN")
	}
	var sf faultinject.ServerFault
	if errors.As(err, &sf) {
		return false
	}
	// Everything else is transport-level: refused dials, broken pipes, read
	// timeouts, injected connection drops.
	return true
}

// Retryable reports whether a command is safe to re-send when its reply was
// lost — the server may or may not have executed the first attempt, so only
// commands whose double execution is indistinguishable from a single one
// qualify. Three groups pass:
//
//   - reads, which have no effect to double;
//   - absolute-effect writes (SET, HSET, DEL, XACK...), where applying twice
//     equals applying once;
//   - fenced compounds (FENCEAPPLY, SINKAPPEND), where the server-side
//     applied ledger absorbs the duplicate.
//
// Relative-effect writes (INCRBY, XADD, RPUSH, pops, group reads) stay
// single-shot. The classification is argv-aware where it must be: SET..NX is
// excluded (a lost "acquired" reply would leave the lock stuck while the
// retry reports failure), and FENCEXACK is retryable only when its direct
// decrement is zero — the PEL acks are ownership-fenced but the direct
// counter adjustment is not idempotent.
func Retryable(argv []string) bool {
	if len(argv) == 0 {
		return false
	}
	switch strings.ToUpper(argv[0]) {
	case "PING", "ECHO", "EXISTS", "TYPE", "KEYS",
		"GET", "MGET", "STRLEN",
		"HGET", "HGETALL", "HKEYS", "HVALS", "HLEN", "HEXISTS", "HMGET",
		"LLEN", "LRANGE", "LINDEX",
		"XLEN", "XRANGE", "XREVRANGE", "XPENDING", "XINFO",
		"SISMEMBER", "SMEMBERS", "SCARD",
		"DEL", "HDEL", "XACK", "SREM", "XDEL",
		"HSET", "MSET", "LTRIM", "XGROUP",
		"FLUSHALL",
		"FENCEAPPLY", "SINKAPPEND":
		return true
	case "SET":
		for _, a := range argv[2:] {
			if strings.EqualFold(a, "NX") {
				return false
			}
		}
		return true
	case "XCLAIM":
		// JUSTID claims only refresh idle clocks — repeating is harmless.
		for _, a := range argv[4:] {
			if strings.EqualFold(a, "JUSTID") {
				return true
			}
		}
		return false
	case "FENCEXACK":
		return len(argv) > 5 && argv[5] == "0"
	default:
		return false
	}
}

// backoff computes the sleep before retry attempt (1-based): base doubled
// per attempt, capped, with ±50% jitter so colliding retriers spread out.
func backoff(base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << (attempt - 1)
	if cap > 0 && d > cap {
		d = cap
	}
	// Jitter in [0.5, 1.5); the top-level rand functions are thread-safe.
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}
