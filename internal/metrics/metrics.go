// Package metrics defines the run reports and ratio tables the paper's
// evaluation section is built from: per-run (runtime, total process time)
// pairs, series over process counts, and the A/B ratio summaries of
// Tables 1–3 (best-by-runtime row, best-by-process-time row, and the
// [mean, std] of the ratios across the sweep).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// StateOps summarizes managed-state store traffic of one run: how often PEs
// hit the state layer, broken down by operation. It is the state-subsystem
// analogue of Tasks/Outputs, letting the benches compare the cost of
// field-state vs. managed-state (memory and Redis backends).
type StateOps struct {
	// Gets/Puts/Deletes/Adds/Updates count single-key operations.
	Gets, Puts, Deletes, Adds, Updates int64
	// Lists counts whole-namespace reads (Keys/Len/Snapshot sweeps).
	Lists int64
	// Snapshots/Restores count whole-store snapshot round-trips.
	Snapshots, Restores int64
	// Checkpoints counts durable checkpoint writes.
	Checkpoints int64
}

// Total sums all counted operations.
func (s StateOps) Total() int64 {
	return s.Gets + s.Puts + s.Deletes + s.Adds + s.Updates + s.Lists + s.Snapshots + s.Restores + s.Checkpoints
}

// Sub returns the element-wise difference s - o (for diffing a shared
// counter around one run).
func (s StateOps) Sub(o StateOps) StateOps {
	return StateOps{
		Gets: s.Gets - o.Gets, Puts: s.Puts - o.Puts, Deletes: s.Deletes - o.Deletes,
		Adds: s.Adds - o.Adds, Updates: s.Updates - o.Updates, Lists: s.Lists - o.Lists,
		Snapshots: s.Snapshots - o.Snapshots, Restores: s.Restores - o.Restores,
		Checkpoints: s.Checkpoints - o.Checkpoints,
	}
}

// String renders the non-zero counters compactly.
func (s StateOps) String() string {
	if s.Total() == 0 {
		return "state=∅"
	}
	return fmt.Sprintf("state[get=%d put=%d del=%d add=%d upd=%d list=%d snap=%d restore=%d ckpt=%d]",
		s.Gets, s.Puts, s.Deletes, s.Adds, s.Updates, s.Lists, s.Snapshots, s.Restores, s.Checkpoints)
}

// StateCounter is the concurrency-safe accumulator behind StateOps. State
// backends carry one and increment it on every store operation.
type StateCounter struct {
	gets, puts, deletes, adds, updates, lists, snapshots, restores, checkpoints atomic.Int64
}

// IncGet counts one Get.
func (c *StateCounter) IncGet() { c.gets.Add(1) }

// IncPut counts one Put.
func (c *StateCounter) IncPut() { c.puts.Add(1) }

// IncDelete counts one Delete.
func (c *StateCounter) IncDelete() { c.deletes.Add(1) }

// IncAdd counts one AddInt.
func (c *StateCounter) IncAdd() { c.adds.Add(1) }

// IncUpdate counts one atomic Update.
func (c *StateCounter) IncUpdate() { c.updates.Add(1) }

// IncList counts one whole-namespace read.
func (c *StateCounter) IncList() { c.lists.Add(1) }

// IncSnapshot counts one Snapshot.
func (c *StateCounter) IncSnapshot() { c.snapshots.Add(1) }

// IncRestore counts one Restore.
func (c *StateCounter) IncRestore() { c.restores.Add(1) }

// IncCheckpoint counts one checkpoint write.
func (c *StateCounter) IncCheckpoint() { c.checkpoints.Add(1) }

// Snapshot reads the current totals.
func (c *StateCounter) Snapshot() StateOps {
	return StateOps{
		Gets: c.gets.Load(), Puts: c.puts.Load(), Deletes: c.deletes.Load(),
		Adds: c.adds.Load(), Updates: c.updates.Load(), Lists: c.lists.Load(),
		Snapshots: c.snapshots.Load(), Restores: c.restores.Load(),
		Checkpoints: c.checkpoints.Load(),
	}
}

// Report captures one workflow execution.
type Report struct {
	// Workflow is the workflow graph name.
	Workflow string
	// Mapping is the technique name (multi, dyn_multi, ...).
	Mapping string
	// Platform is the simulated host name.
	Platform string
	// Processes is the worker process budget of the run.
	Processes int
	// Runtime is the wall-clock execution time.
	Runtime time.Duration
	// ProcessTime is the total active process time (the efficiency metric).
	ProcessTime time.Duration
	// Tasks counts data units processed by PE instances.
	Tasks int64
	// Outputs counts values that reached sink PEs.
	Outputs int64
	// State summarizes managed-state store traffic (zero when the workflow
	// uses no managed state).
	State StateOps
}

// String renders a one-line summary.
func (r Report) String() string {
	s := fmt.Sprintf("%-10s %-16s %-7s procs=%-3d runtime=%-9s proctime=%-10s tasks=%-6d outputs=%d",
		r.Workflow, r.Mapping, r.Platform, r.Processes,
		r.Runtime.Round(time.Millisecond), r.ProcessTime.Round(time.Millisecond),
		r.Tasks, r.Outputs)
	if r.State.Total() > 0 {
		s += " " + r.State.String()
	}
	return s
}

// Series is a sweep of runs of one technique over process counts.
type Series struct {
	// Label names the technique.
	Label string
	// Points are the runs, ordered by Processes.
	Points []Report
}

// Sort orders points by process count.
func (s *Series) Sort() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Processes < s.Points[j].Processes })
}

// At returns the point with the given process count.
func (s *Series) At(processes int) (Report, bool) {
	for _, p := range s.Points {
		if p.Processes == processes {
			return p, true
		}
	}
	return Report{}, false
}

// RatioRow is one prioritized row of the paper's comparison tables.
type RatioRow struct {
	// PrioritizedBy is "runtime" or "process time".
	PrioritizedBy string
	// Processes is the sweep point the row was taken from.
	Processes int
	// RuntimeRatio is runtime(A)/runtime(B) at that point.
	RuntimeRatio float64
	// ProcessTimeRatio is processTime(A)/processTime(B) at that point.
	ProcessTimeRatio float64
}

// RatioTable is the paper's Table 1/2/3 cell for one platform and one A/B
// technique pair: the ratio rows prioritized by each metric plus the mean
// and standard deviation of the ratios across all shared sweep points.
type RatioTable struct {
	// Platform names the host.
	Platform string
	// A and B are the compared technique labels (A is the proposal).
	A, B string
	// Rows holds the prioritized rows (runtime-first, then process time).
	Rows []RatioRow
	// RuntimeMean/RuntimeStd summarize all runtime ratios.
	RuntimeMean, RuntimeStd float64
	// ProcessTimeMean/ProcessTimeStd summarize all process-time ratios.
	ProcessTimeMean, ProcessTimeStd float64
	// N is the number of shared sweep points.
	N int
}

// RatioPair is one A/B comparison point.
type RatioPair struct {
	// Processes is the sweep point.
	Processes int
	// Runtime and ProcessTime are the A/B ratios at that point.
	Runtime, ProcessTime float64
}

// PairsFromSeries computes the A/B ratio pairs over shared process counts.
func PairsFromSeries(a, b Series) []RatioPair {
	var pairs []RatioPair
	for _, pa := range a.Points {
		pb, ok := b.At(pa.Processes)
		if !ok || pb.Runtime <= 0 || pb.ProcessTime <= 0 {
			continue
		}
		pairs = append(pairs, RatioPair{
			Processes:   pa.Processes,
			Runtime:     pa.Runtime.Seconds() / pb.Runtime.Seconds(),
			ProcessTime: pa.ProcessTime.Seconds() / pb.ProcessTime.Seconds(),
		})
	}
	return pairs
}

// BuildRatioTable summarizes pooled ratio pairs (possibly from several
// workload panels on the same platform, as the paper's tables do) into the
// Table 1/2/3 layout.
func BuildRatioTable(platform, aLabel, bLabel string, pairs []RatioPair) (RatioTable, error) {
	if len(pairs) == 0 {
		return RatioTable{}, fmt.Errorf("metrics: no shared points between %q and %q", aLabel, bLabel)
	}
	sorted := append([]RatioPair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Processes < sorted[j].Processes })

	bestRt, bestProc := sorted[0], sorted[0]
	var rts, procs []float64
	for _, p := range sorted {
		if p.Runtime < bestRt.Runtime {
			bestRt = p
		}
		if p.ProcessTime < bestProc.ProcessTime {
			bestProc = p
		}
		rts = append(rts, p.Runtime)
		procs = append(procs, p.ProcessTime)
	}
	rtMean, rtStd := MeanStd(rts)
	procMean, procStd := MeanStd(procs)
	return RatioTable{
		Platform: platform,
		A:        aLabel,
		B:        bLabel,
		Rows: []RatioRow{
			{PrioritizedBy: "runtime", Processes: bestRt.Processes, RuntimeRatio: bestRt.Runtime, ProcessTimeRatio: bestRt.ProcessTime},
			{PrioritizedBy: "process time", Processes: bestProc.Processes, RuntimeRatio: bestProc.Runtime, ProcessTimeRatio: bestProc.ProcessTime},
		},
		RuntimeMean: rtMean, RuntimeStd: rtStd,
		ProcessTimeMean: procMean, ProcessTimeStd: procStd,
		N: len(pairs),
	}, nil
}

// CompareSeries builds the ratio table for A/B over their shared process
// counts. It returns an error when the series share no points.
func CompareSeries(platform string, a, b Series) (RatioTable, error) {
	return BuildRatioTable(platform, a.Label, b.Label, PairsFromSeries(a, b))
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Render formats the table in the paper's layout.
func (t RatioTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %s / %s   (n=%d)\n", t.Platform, t.A, t.B, t.N)
	fmt.Fprintf(&b, "  %-14s %-8s %-14s %s\n", "prioritized", "procs", "runtime ratio", "process time ratio")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-14s %-8d %-14.2f %.2f\n", r.PrioritizedBy, r.Processes, r.RuntimeRatio, r.ProcessTimeRatio)
	}
	fmt.Fprintf(&b, "  %-14s %-8s [%.2f, %.2f]     [%.2f, %.2f]\n", "[mean, std]", "-",
		t.RuntimeMean, t.RuntimeStd, t.ProcessTimeMean, t.ProcessTimeStd)
	return b.String()
}

// RenderSeries prints aligned runtime/process-time columns for a figure:
// one row per process count, one column pair per series.
func RenderSeries(title string, series []Series) string {
	procSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			procSet[p.Processes] = true
		}
	}
	procs := make([]int, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Ints(procs)

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-7s", "procs")
	for _, s := range series {
		fmt.Fprintf(&b, " | %-22s", s.Label+" rt/pt")
	}
	b.WriteByte('\n')
	for _, pc := range procs {
		fmt.Fprintf(&b, "%-7d", pc)
		for _, s := range series {
			if r, ok := s.At(pc); ok {
				fmt.Fprintf(&b, " | %9s / %-10s",
					r.Runtime.Round(time.Millisecond), r.ProcessTime.Round(time.Millisecond))
			} else {
				fmt.Fprintf(&b, " | %-22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as long-form CSV rows: the run columns
// (workflow,mapping,platform,processes,runtime_s,proctime_s,tasks,outputs)
// followed by the per-operation managed-state counters (all zero for
// workflows without managed state).
func CSV(series []Series) string {
	var b strings.Builder
	b.WriteString("workflow,mapping,platform,processes,runtime_s,proctime_s,tasks,outputs," +
		"state_gets,state_puts,state_deletes,state_adds,state_updates,state_lists," +
		"state_snapshots,state_restores,state_checkpoints\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%s,%d,%.4f,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				p.Workflow, p.Mapping, p.Platform, p.Processes,
				p.Runtime.Seconds(), p.ProcessTime.Seconds(), p.Tasks, p.Outputs,
				p.State.Gets, p.State.Puts, p.State.Deletes, p.State.Adds, p.State.Updates,
				p.State.Lists, p.State.Snapshots, p.State.Restores, p.State.Checkpoints)
		}
	}
	return b.String()
}
