package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func pt(procs int, rt, proc time.Duration) Report {
	return Report{
		Workflow: "wf", Mapping: "m", Platform: "server",
		Processes: procs, Runtime: rt, ProcessTime: proc, Tasks: 10, Outputs: 5,
	}
}

func TestSeriesSortAndAt(t *testing.T) {
	s := Series{Label: "a", Points: []Report{pt(16, 1, 1), pt(4, 2, 2), pt(8, 3, 3)}}
	s.Sort()
	if s.Points[0].Processes != 4 || s.Points[2].Processes != 16 {
		t.Errorf("sorted: %+v", s.Points)
	}
	if _, ok := s.At(8); !ok {
		t.Error("At(8)")
	}
	if _, ok := s.At(99); ok {
		t.Error("At(99) should miss")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || math.Abs(std-2) > 1e-9 {
		t.Errorf("mean=%v std=%v", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Error("empty input")
	}
}

func TestPairsFromSeries(t *testing.T) {
	a := Series{Label: "a", Points: []Report{
		pt(4, 900*time.Millisecond, 3*time.Second),
		pt(8, 500*time.Millisecond, 4*time.Second),
		pt(12, 400*time.Millisecond, 5*time.Second),
	}}
	b := Series{Label: "b", Points: []Report{
		pt(4, 1000*time.Millisecond, 4*time.Second),
		pt(8, 500*time.Millisecond, 5*time.Second),
	}}
	pairs := PairsFromSeries(a, b)
	if len(pairs) != 2 {
		t.Fatalf("pairs: %+v", pairs)
	}
	if math.Abs(pairs[0].Runtime-0.9) > 1e-9 || math.Abs(pairs[0].ProcessTime-0.75) > 1e-9 {
		t.Errorf("pair 0: %+v", pairs[0])
	}
}

func TestBuildRatioTable(t *testing.T) {
	pairs := []RatioPair{
		{Processes: 4, Runtime: 0.9, ProcessTime: 0.8},
		{Processes: 8, Runtime: 1.1, ProcessTime: 0.5},
		{Processes: 16, Runtime: 1.4, ProcessTime: 0.6},
	}
	tb, err := BuildRatioTable("server", "auto", "dyn", pairs)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0].PrioritizedBy != "runtime" || tb.Rows[0].Processes != 4 {
		t.Errorf("runtime row: %+v", tb.Rows[0])
	}
	if tb.Rows[1].PrioritizedBy != "process time" || tb.Rows[1].Processes != 8 {
		t.Errorf("process-time row: %+v", tb.Rows[1])
	}
	if tb.N != 3 {
		t.Errorf("N=%d", tb.N)
	}
	wantMean := (0.9 + 1.1 + 1.4) / 3
	if math.Abs(tb.RuntimeMean-wantMean) > 1e-9 {
		t.Errorf("runtime mean: %v", tb.RuntimeMean)
	}
	out := tb.Render()
	for _, want := range []string{"server", "auto / dyn", "runtime", "process time", "[mean, std]"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBuildRatioTableEmpty(t *testing.T) {
	if _, err := BuildRatioTable("server", "a", "b", nil); err == nil {
		t.Error("empty pairs must error")
	}
}

func TestCompareSeriesNoSharedPoints(t *testing.T) {
	a := Series{Label: "a", Points: []Report{pt(4, 1, 1)}}
	b := Series{Label: "b", Points: []Report{pt(8, 1, 1)}}
	if _, err := CompareSeries("server", a, b); err == nil {
		t.Error("disjoint sweeps must error")
	}
}

func TestRenderSeriesAlignsMissingPoints(t *testing.T) {
	a := Series{Label: "multi", Points: []Report{pt(12, time.Second, 2*time.Second)}}
	b := Series{Label: "dyn", Points: []Report{pt(4, time.Second, time.Second), pt(12, time.Second, time.Second)}}
	out := RenderSeries("panel", []Series{a, b})
	if !strings.Contains(out, "panel") || !strings.Contains(out, "-") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + two process rows.
	if len(lines) != 4 {
		t.Errorf("lines: %d\n%s", len(lines), out)
	}
}

func TestCSVFormat(t *testing.T) {
	s := Series{Label: "m", Points: []Report{pt(4, 1500*time.Millisecond, 3*time.Second)}}
	s.Points[0].State = StateOps{Gets: 7, Adds: 3, Checkpoints: 1}
	out := CSV([]Series{s})
	wantHeader := "workflow,mapping,platform,processes,runtime_s,proctime_s,tasks,outputs," +
		"state_gets,state_puts,state_deletes,state_adds,state_updates,state_lists," +
		"state_snapshots,state_restores,state_checkpoints\n"
	if !strings.HasPrefix(out, wantHeader) {
		t.Errorf("header: %q", out)
	}
	if !strings.Contains(out, "wf,m,server,4,1.5000,3.0000,10,5,7,0,0,3,0,0,0,0,1\n") {
		t.Errorf("row: %q", out)
	}
	if got := len(strings.Split(strings.TrimSuffix(wantHeader, "\n"), ",")); got != 17 {
		t.Errorf("header columns: %d", got)
	}
}

// Golden render of the paper-table layout: a formatting regression (shifted
// columns, reordered rows) should fail loudly, not drift silently.
func TestRatioTableRenderGolden(t *testing.T) {
	tb := RatioTable{
		Platform: "server", A: "auto", B: "dyn",
		Rows: []RatioRow{
			{PrioritizedBy: "runtime", Processes: 4, RuntimeRatio: 0.9, ProcessTimeRatio: 0.8},
			{PrioritizedBy: "process time", Processes: 8, RuntimeRatio: 1.1, ProcessTimeRatio: 0.5},
		},
		RuntimeMean: 1.0, RuntimeStd: 0.1,
		ProcessTimeMean: 0.65, ProcessTimeStd: 0.15,
		N: 2,
	}
	want := "server  auto / dyn   (n=2)\n" +
		"  prioritized    procs    runtime ratio  process time ratio\n" +
		"  runtime        4        0.90           0.80\n" +
		"  process time   8        1.10           0.50\n" +
		"  [mean, std]    -        [1.00, 0.10]     [0.65, 0.15]\n"
	if got := tb.Render(); got != want {
		t.Errorf("Render drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderSeriesGolden(t *testing.T) {
	a := Series{Label: "multi", Points: []Report{pt(12, time.Second, 2*time.Second)}}
	b := Series{Label: "dyn", Points: []Report{pt(4, time.Second, time.Second), pt(12, time.Second, time.Second)}}
	want := "panel\n" +
		"procs   | multi rt/pt            | dyn rt/pt             \n" +
		"4       | -                      |        1s / 1s        \n" +
		"12      |        1s / 2s         |        1s / 1s        \n"
	if got := RenderSeries("panel", []Series{a, b}); got != want {
		t.Errorf("RenderSeries drifted:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// StateCounter is shared by every worker of a run; hammer it from many
// goroutines (meaningful under -race) and check the totals are exact.
func TestStateCounterConcurrent(t *testing.T) {
	var c StateCounter
	const workers, perWorker = 16, 500
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perWorker; i++ {
				c.IncGet()
				c.IncPut()
				c.IncDelete()
				c.IncAdd()
				c.IncUpdate()
				c.IncList()
				c.IncSnapshot()
				c.IncRestore()
				c.IncCheckpoint()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	got := c.Snapshot()
	want := StateOps{
		Gets: workers * perWorker, Puts: workers * perWorker, Deletes: workers * perWorker,
		Adds: workers * perWorker, Updates: workers * perWorker, Lists: workers * perWorker,
		Snapshots: workers * perWorker, Restores: workers * perWorker, Checkpoints: workers * perWorker,
	}
	if got != want {
		t.Errorf("snapshot: %+v want %+v", got, want)
	}
	if got.Total() != int64(9*workers*perWorker) {
		t.Errorf("total: %d", got.Total())
	}
}

func TestReportString(t *testing.T) {
	out := pt(4, time.Second, 2*time.Second).String()
	for _, want := range []string{"wf", "m", "server", "procs=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

// Property: best-by-runtime row is never above any other pair's runtime.
func TestQuickBestRowProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		pairs := make([]RatioPair, len(raw))
		for i, r := range raw {
			pairs[i] = RatioPair{
				Processes:   i + 1,
				Runtime:     0.1 + float64(r%300)/100,
				ProcessTime: 0.1 + float64(r%177)/100,
			}
		}
		tb, err := BuildRatioTable("p", "a", "b", pairs)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			if tb.Rows[0].RuntimeRatio > p.Runtime+1e-12 {
				return false
			}
			if tb.Rows[1].ProcessTimeRatio > p.ProcessTime+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
