// Package core defines the dispel4py-style processing-element (PE)
// programming model: the PE interface, the execution Context PEs emit
// through, and functional helpers for building common PE shapes (sources,
// maps, filters, sinks).
//
// Users compose PEs into an abstract workflow with package graph and execute
// it with one of the mappings (simple, multi, dyn_multi, dyn_auto_multi,
// dyn_redis, dyn_auto_redis, hybrid_redis). PEs are written once and run
// unchanged under every mapping, which is the central promise of the
// dispel4py design the paper builds on.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/platform"
	"repro/internal/state"
)

// Default port names. Most PEs have a single input and a single output.
const (
	PortIn  = "in"
	PortOut = "out"
)

// PE is one processing element: the computational building block of a
// workflow. Implementations must be safe to use from a single goroutine;
// the engine creates one PE value per instance (via the node factory), so a
// PE may keep per-instance state in its fields. A PE whose state influences
// results across Process calls must be declared stateful on its graph node.
type PE interface {
	// Name identifies the PE within a workflow graph.
	Name() string
	// InPorts lists input port names. Source PEs return nil.
	InPorts() []string
	// OutPorts lists output port names. Sink PEs return nil.
	OutPorts() []string
	// Process handles one data unit arriving on port, emitting any outputs
	// through ctx. Returning an error aborts the workflow run.
	Process(ctx *Context, port string, value any) error
}

// Source is a PE that produces the workflow's input stream. The engine calls
// Generate exactly once (on instance 0) instead of feeding Process.
type Source interface {
	PE
	// Generate emits the source stream through ctx and returns when the
	// stream is exhausted.
	Generate(ctx *Context) error
}

// Initializer is an optional PE lifecycle hook run once per instance before
// any data is processed.
type Initializer interface {
	Init(ctx *Context) error
}

// Finalizer is an optional PE lifecycle hook run once per instance after the
// instance's input stream is exhausted. Stateful aggregators flush their
// results here (for example the sentiment workflow's top-3 ranking).
type Finalizer interface {
	Final(ctx *Context) error
}

// Context is the handle a PE instance uses to interact with the engine: it
// emits outputs, models service time on the simulated platform, and exposes
// a deterministic per-instance random source.
type Context struct {
	peName   string
	instance int
	host     *platform.Host
	rng      *rand.Rand
	emit     func(port string, value any) error
	store    state.Store
}

// NewContext builds a Context. Mappings construct one per PE instance; emit
// routes an output value to the connected destinations. host may be nil when
// no platform simulation is wanted (plain library use).
func NewContext(peName string, instance int, host *platform.Host, rng *rand.Rand, emit func(port string, value any) error) *Context {
	return &Context{peName: peName, instance: instance, host: host, rng: rng, emit: emit}
}

// PEName returns the owning PE's name.
func (c *Context) PEName() string { return c.peName }

// Instance returns the zero-based instance index of the PE copy running.
func (c *Context) Instance() int { return c.instance }

// State returns the PE's managed state store. It panics when the node
// declared no managed state (graph.Node.SetKeyedState/SetSingletonState) —
// a composition-time programming error, mirroring graph's panics.
func (c *Context) State() state.Store {
	if c.store == nil {
		panic(fmt.Sprintf("core: PE %s has no managed state store; declare one with SetKeyedState or SetSingletonState on its graph node", c.peName))
	}
	return c.store
}

// HasState reports whether a managed state store is wired.
func (c *Context) HasState() bool { return c.store != nil }

// WithStore returns a copy of the context carrying the managed state store.
// Mappings call it when constructing contexts for managed-state nodes.
func (c *Context) WithStore(st state.Store) *Context {
	cp := *c
	cp.store = st
	return &cp
}

// Emit sends value out of the named port. It blocks until the value is
// accepted by the transport (channel, queue or Redis stream).
func (c *Context) Emit(port string, value any) error {
	if c.emit == nil {
		return fmt.Errorf("core: PE %s emitted on %q outside an execution context", c.peName, port)
	}
	return c.emit(port, value)
}

// EmitDefault sends value on the default output port.
func (c *Context) EmitDefault(value any) error { return c.Emit(PortOut, value) }

// Work models d of PE service time: the calling instance occupies one
// simulated core for that long. PEs use it to express compute/IO cost; under
// a nil host it degrades to a plain sleep so behaviour is consistent.
func (c *Context) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.host != nil {
		c.host.Work(d)
		return
	}
	time.Sleep(d)
}

// Rand returns the instance's deterministic random source (never nil).
func (c *Context) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	return c.rng
}

// WithPE returns a copy of the context relabeled for another PE name,
// sharing the host, random source and emit routing. Composite PEs use it to
// give their inner stages correctly-labeled contexts.
func (c *Context) WithPE(peName string) *Context {
	cp := *c
	cp.peName = peName
	return &cp
}

// WithEmit returns a copy of the context with a different PE name and emit
// function, sharing the host and random source.
func (c *Context) WithEmit(peName string, emit func(port string, value any) error) *Context {
	cp := *c
	cp.peName = peName
	cp.emit = emit
	return &cp
}

// Base provides Name/InPorts/OutPorts plumbing for PE implementations.
// Embed it and implement Process (plus Generate for sources).
type Base struct {
	name string
	in   []string
	out  []string
}

// NewBase constructs the embedded plumbing for a PE with the given ports.
func NewBase(name string, in, out []string) Base {
	return Base{name: name, in: in, out: out}
}

// Name implements PE.
func (b *Base) Name() string { return b.name }

// InPorts implements PE.
func (b *Base) InPorts() []string { return b.in }

// OutPorts implements PE.
func (b *Base) OutPorts() []string { return b.out }

// In returns the single input port set, for one-in PEs.
func In() []string { return []string{PortIn} }

// Out returns the single output port set, for one-out PEs.
func Out() []string { return []string{PortOut} }

// --- Functional PE constructors ---------------------------------------------

// MapPE applies a function to each input value, emitting the result on the
// default output port. A nil result (with nil error) emits nothing, so MapPE
// doubles as a filter-map.
type MapPE struct {
	Base
	fn func(ctx *Context, value any) (any, error)
}

// NewMap builds a one-in one-out PE from fn.
func NewMap(name string, fn func(ctx *Context, value any) (any, error)) *MapPE {
	return &MapPE{Base: NewBase(name, In(), Out()), fn: fn}
}

// Process implements PE.
func (m *MapPE) Process(ctx *Context, port string, value any) error {
	out, err := m.fn(ctx, value)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return ctx.EmitDefault(out)
}

// EachPE invokes a function per input value; the function may emit zero or
// more outputs itself. It is the general-purpose streaming PE.
type EachPE struct {
	Base
	fn func(ctx *Context, value any) error
}

// NewEach builds a one-in one-out PE whose function emits explicitly.
func NewEach(name string, fn func(ctx *Context, value any) error) *EachPE {
	return &EachPE{Base: NewBase(name, In(), Out()), fn: fn}
}

// Process implements PE.
func (e *EachPE) Process(ctx *Context, port string, value any) error {
	return e.fn(ctx, value)
}

// FilterPE passes through values satisfying a predicate.
type FilterPE struct {
	Base
	pred func(value any) bool
}

// NewFilter builds a predicate filter PE.
func NewFilter(name string, pred func(value any) bool) *FilterPE {
	return &FilterPE{Base: NewBase(name, In(), Out()), pred: pred}
}

// Process implements PE.
func (f *FilterPE) Process(ctx *Context, port string, value any) error {
	if f.pred(value) {
		return ctx.EmitDefault(value)
	}
	return nil
}

// SourcePE produces a stream from a generator function.
type SourcePE struct {
	Base
	gen func(ctx *Context) error
}

// NewSource builds a source PE whose generator emits on the default port.
func NewSource(name string, gen func(ctx *Context) error) *SourcePE {
	return &SourcePE{Base: NewBase(name, nil, Out()), gen: gen}
}

// Process implements PE; sources receive no input.
func (s *SourcePE) Process(ctx *Context, port string, value any) error {
	return fmt.Errorf("core: source PE %s received unexpected input on %q", s.Name(), port)
}

// Generate implements Source.
func (s *SourcePE) Generate(ctx *Context) error { return s.gen(ctx) }

// SinkPE consumes values without emitting.
type SinkPE struct {
	Base
	fn func(ctx *Context, value any) error
}

// NewSink builds a terminal PE from fn.
func NewSink(name string, fn func(ctx *Context, value any) error) *SinkPE {
	return &SinkPE{Base: NewBase(name, In(), nil), fn: fn}
}

// Process implements PE.
func (s *SinkPE) Process(ctx *Context, port string, value any) error {
	return s.fn(ctx, value)
}

// Compile-time interface checks for the helper PEs.
var (
	_ PE     = (*MapPE)(nil)
	_ PE     = (*EachPE)(nil)
	_ PE     = (*FilterPE)(nil)
	_ Source = (*SourcePE)(nil)
	_ PE     = (*SinkPE)(nil)
)
