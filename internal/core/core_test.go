package core

import (
	"errors"
	"testing"
	"time"
)

// collectContext builds a Context that appends emissions to a slice.
func collectContext(pe string) (*Context, *[]any) {
	var got []any
	ctx := NewContext(pe, 0, nil, nil, func(port string, v any) error {
		got = append(got, v)
		return nil
	})
	return ctx, &got
}

func TestMapPE(t *testing.T) {
	pe := NewMap("double", func(ctx *Context, v any) (any, error) {
		return v.(int) * 2, nil
	})
	if pe.Name() != "double" || len(pe.InPorts()) != 1 || len(pe.OutPorts()) != 1 {
		t.Fatalf("ports: %v %v", pe.InPorts(), pe.OutPorts())
	}
	ctx, got := collectContext("double")
	if err := pe.Process(ctx, PortIn, 21); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].(int) != 42 {
		t.Fatalf("emissions: %v", *got)
	}
}

func TestMapPENilSkips(t *testing.T) {
	pe := NewMap("skip", func(ctx *Context, v any) (any, error) { return nil, nil })
	ctx, got := collectContext("skip")
	if err := pe.Process(ctx, PortIn, 1); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("nil result should emit nothing, got %v", *got)
	}
}

func TestMapPEError(t *testing.T) {
	boom := errors.New("boom")
	pe := NewMap("bad", func(ctx *Context, v any) (any, error) { return nil, boom })
	ctx, _ := collectContext("bad")
	if err := pe.Process(ctx, PortIn, 1); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
}

func TestEachPEMultipleEmissions(t *testing.T) {
	pe := NewEach("fan", func(ctx *Context, v any) error {
		for i := 0; i < v.(int); i++ {
			if err := ctx.EmitDefault(i); err != nil {
				return err
			}
		}
		return nil
	})
	ctx, got := collectContext("fan")
	if err := pe.Process(ctx, PortIn, 3); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("emissions: %v", *got)
	}
}

func TestFilterPE(t *testing.T) {
	pe := NewFilter("evens", func(v any) bool { return v.(int)%2 == 0 })
	ctx, got := collectContext("evens")
	for i := 0; i < 6; i++ {
		if err := pe.Process(ctx, PortIn, i); err != nil {
			t.Fatal(err)
		}
	}
	if len(*got) != 3 {
		t.Fatalf("filtered: %v", *got)
	}
}

func TestSourcePE(t *testing.T) {
	pe := NewSource("gen", func(ctx *Context) error {
		for i := 0; i < 4; i++ {
			if err := ctx.EmitDefault(i); err != nil {
				return err
			}
		}
		return nil
	})
	if pe.InPorts() != nil {
		t.Fatal("source must have no inputs")
	}
	ctx, got := collectContext("gen")
	if err := pe.Generate(ctx); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 4 {
		t.Fatalf("generated: %v", *got)
	}
	// Feeding a source input is an error.
	if err := pe.Process(ctx, PortIn, 1); err == nil {
		t.Fatal("source Process should reject input")
	}
}

func TestSinkPE(t *testing.T) {
	var sunk []any
	pe := NewSink("drain", func(ctx *Context, v any) error {
		sunk = append(sunk, v)
		return nil
	})
	if pe.OutPorts() != nil {
		t.Fatal("sink must have no outputs")
	}
	ctx, _ := collectContext("drain")
	if err := pe.Process(ctx, PortIn, "x"); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 1 {
		t.Fatalf("sunk: %v", sunk)
	}
}

func TestContextEmitWithoutEngine(t *testing.T) {
	ctx := NewContext("pe", 0, nil, nil, nil)
	if err := ctx.EmitDefault(1); err == nil {
		t.Fatal("emit without engine should error")
	}
}

func TestContextWorkNilHostSleeps(t *testing.T) {
	ctx := NewContext("pe", 0, nil, nil, nil)
	start := time.Now()
	ctx.Work(15 * time.Millisecond)
	if time.Since(start) < 10*time.Millisecond {
		t.Error("Work under nil host should still take the duration")
	}
	ctx.Work(0) // no-op
}

func TestContextRandNeverNil(t *testing.T) {
	ctx := NewContext("pe", 3, nil, nil, nil)
	if ctx.Rand() == nil {
		t.Fatal("Rand returned nil")
	}
	if ctx.Instance() != 3 || ctx.PEName() != "pe" {
		t.Error("accessors")
	}
}
