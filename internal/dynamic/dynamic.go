package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/state"
	"repro/internal/synth"
)

// Dyn is the dyn_multi mapping: dynamic scheduling over the in-process
// global queue, without auto-scaling.
type Dyn struct{}

// DynAuto is the dyn_auto_multi mapping: Dyn plus the Algorithm 1
// auto-scaler driven by the queue-size strategy.
type DynAuto struct{}

func init() {
	mapping.Register(Dyn{})
	mapping.Register(DynAuto{})
}

// Name implements mapping.Mapping.
func (Dyn) Name() string { return "dyn_multi" }

// Name implements mapping.Mapping.
func (DynAuto) Name() string { return "dyn_auto_multi" }

// Execute implements mapping.Mapping.
func (Dyn) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return execute(g, opts, "dyn_multi", false)
}

// Execute implements mapping.Mapping.
func (DynAuto) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return execute(g, opts, "dyn_auto_multi", true)
}

// ValidateDynamic rejects workflow features plain dynamic scheduling cannot
// honor, mirroring the paper's limitation statement ("dynamic scheduling
// exclusively manages stateless PEs and lacks support for grouping") — with
// one extension beyond the paper: nodes whose state is *managed* (package
// state) are accepted, because their state lives in a shared atomic store
// rather than in worker-local PE fields, so any worker may process any task
// and a coordinator flushes each managed node's Final exactly once.
func ValidateDynamic(g *graph.Graph, technique string) error {
	if g.HasUnmanagedStateful() {
		return fmt.Errorf("%s: workflow %s has stateful PEs with unmanaged field state; dynamic scheduling supports only stateless or managed-state PEs (declare SetKeyedState/SetSingletonState, or use hybrid_redis or multi)", technique, g.Name)
	}
	for _, e := range g.Edges() {
		if e.Grouping.Kind == graph.Shuffle {
			continue
		}
		dst := g.Node(e.To)
		if e.Grouping.Kind == graph.OneToAll {
			// Broadcast needs per-instance delivery, which a dynamic pool
			// cannot express regardless of how the state is managed.
			return fmt.Errorf("%s: edge %s→%s uses one-to-all grouping; dynamic scheduling has no instance identity to broadcast to (use hybrid_redis or multi)", technique, e.From, e.To)
		}
		if dst.HasManagedState() {
			// Routing affinity is unnecessary: keyed/global semantics come
			// from the shared store, not from which worker runs the task.
			continue
		}
		return fmt.Errorf("%s: edge %s→%s uses %s grouping into a PE without managed state; dynamic scheduling supports only the default shuffle grouping (use hybrid_redis or multi)", technique, e.From, e.To, e.Grouping.Kind)
	}
	for _, n := range g.Nodes() {
		if _, ok := n.Prototype.(core.Finalizer); ok && !n.HasManagedState() {
			return fmt.Errorf("%s: PE %s implements Final without managed state; per-instance finalization requires a stateful mapping (hybrid_redis or multi)", technique, n.Name)
		}
	}
	return nil
}

func execute(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := ValidateDynamic(g, name); err != nil {
		return metrics.Report{}, err
	}

	host := platform.NewHost(opts.Platform)
	q := NewQueue(host.SyncCost())
	var pending atomic.Int64 // queued + in-flight real tasks
	var tasks, outputs atomic.Int64

	ms, err := mapping.OpenManagedState(g, opts, func() state.Backend { return state.NewMemoryBackend() })
	if err != nil {
		return metrics.Report{}, err
	}
	success := false
	defer func() { ms.Finish(g, success) }()
	// Managed-state graphs run in coordinated mode: workers never
	// self-terminate; a coordinator drains the queue, flushes each managed
	// node's Final exactly once (topological order), then poisons the pool.
	coordinated := g.HasManagedState()

	// Seed one generate task per source.
	for _, src := range g.Sources() {
		pending.Add(1)
		q.Push(Task{PE: src.Name})
	}

	var ctrl *autoscale.Controller
	if auto {
		cfg := autoscale.Config{MaxPoolSize: opts.Processes}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = opts.Processes
		}
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.QueueSizeStrategy{Floor: 2}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		go ctrl.RunMonitor(func() float64 { return float64(q.Len()) })
		defer ctrl.Terminate()
	}

	var firstErr error
	var errMu sync.Mutex
	var failed atomic.Bool
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
		// Poison everyone so the run unwinds promptly.
		for i := 0; i < opts.Processes; i++ {
			q.Push(Task{Poison: true})
		}
		if ctrl != nil {
			ctrl.Terminate()
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Processes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(g, host, opts, name, w, q, ctrl, ms, coordinated, &pending, &tasks, &outputs, fail)
		}(w)
	}
	if coordinated {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runCoordinator(g, q, opts, &pending, &failed); err != nil && !failed.Load() {
				fail(err)
				return
			}
			for i := 0; i < opts.Processes; i++ {
				q.Push(Task{Poison: true})
			}
			if ctrl != nil {
				ctrl.Terminate()
			}
		}()
	}
	wg.Wait()
	runtime := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	success = true
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     name,
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
		State:       ms.Ops(),
	}, nil
}

// runCoordinator owns termination for managed-state graphs: it waits for the
// queue to drain, then pushes one Finalize task per managed node carrying a
// Final hook (topological order, draining between nodes so flushed values
// propagate), mirroring hybrid_redis's coordinated flush phase.
func runCoordinator(g *graph.Graph, q *Queue, opts mapping.Options, pending *atomic.Int64, failed *atomic.Bool) error {
	// awaitDrain reports false when the run failed first — fail() owns that
	// unwind, so the coordinator just stops. (Unlike the Redis variant there
	// is no transport here, hence no error path of its own.)
	awaitDrain := func() bool {
		zeros := 0
		for {
			if failed.Load() {
				return false
			}
			if pending.Load() == 0 {
				zeros++
				if zeros > opts.Retries {
					return true
				}
			} else {
				zeros = 0
			}
			time.Sleep(opts.PollTimeout)
		}
	}
	if !awaitDrain() {
		return nil
	}
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, name := range order {
		n := g.Node(name)
		if !n.HasManagedState() {
			continue
		}
		if _, ok := n.Prototype.(core.Finalizer); !ok {
			continue
		}
		pending.Add(1)
		q.Push(Task{PE: n.Name, Finalize: true})
		if !awaitDrain() {
			return nil
		}
	}
	return nil
}

// runWorker is one dynamic process: it owns a private copy of every PE and
// loops on the global queue until poisoned or terminated.
func runWorker(
	g *graph.Graph,
	host *platform.Host,
	opts mapping.Options,
	technique string,
	w int,
	q *Queue,
	ctrl *autoscale.Controller,
	ms *mapping.ManagedState,
	coordinated bool,
	pending, tasks, outputs *atomic.Int64,
	fail func(error),
) {
	proc := host.NewProcess(fmt.Sprintf("%s:w%d", technique, w))
	proc.Activate()
	defer proc.Deactivate()

	// Private workflow copy (the paper's cp_graph ← DeepCopy(graph)).
	pes := make(map[string]core.PE, len(g.Nodes()))
	ctxs := make(map[string]*core.Context, len(g.Nodes()))
	for _, n := range g.Nodes() {
		n := n
		pes[n.Name] = n.Factory()
		emit := func(port string, value any) error {
			for _, e := range g.OutEdges(n.Name) {
				if e.FromPort != port {
					continue
				}
				if len(g.OutEdges(e.To)) == 0 {
					outputs.Add(1)
				}
				pending.Add(1)
				q.Push(Task{PE: e.To, Port: e.ToPort, Value: value})
			}
			return nil
		}
		ctx := core.NewContext(n.Name, w, host,
			synth.NewRand(opts.Seed^int64(w*7919)^int64(nodeHash(n.Name))), emit)
		if st := ms.Store(n.Name); st != nil {
			ctx = ctx.WithStore(st)
		}
		ctxs[n.Name] = ctx
	}
	for name, pe := range pes {
		if ini, ok := pe.(core.Initializer); ok {
			if err := ini.Init(ctxs[name]); err != nil {
				fail(fmt.Errorf("worker %d: init %s: %w", w, name, err))
				return
			}
		}
	}

	retries := 0
	for {
		if ctrl != nil && ctrl.Idle(w) {
			// Idle state: stop accruing process time until readmitted.
			proc.Deactivate()
			if !ctrl.Admit(w) {
				return
			}
			proc.Activate()
		}
		t, ok := q.Pop(opts.PollTimeout)
		if !ok {
			retries++
			if !coordinated && retries > opts.Retries && pending.Load() == 0 {
				// Termination: broadcast poison pills to wake the others,
				// then exit (Section 3.2.3's retry + poison pill protocol).
				// In coordinated (managed-state) mode the coordinator owns
				// termination instead.
				for i := 0; i < host.ProcessCount(); i++ {
					q.Push(Task{Poison: true})
				}
				if ctrl != nil {
					ctrl.Terminate()
				}
				return
			}
			continue
		}
		retries = 0
		if t.Poison {
			return
		}
		if t.Finalize {
			if fin, ok := pes[t.PE].(core.Finalizer); ok {
				if err := fin.Final(ctxs[t.PE]); err != nil {
					pending.Add(-1)
					fail(fmt.Errorf("worker %d: final %s: %w", w, t.PE, err))
					return
				}
			}
			pending.Add(-1)
			continue
		}
		tasks.Add(1)
		if err := runTask(g, pes, ctxs, t); err != nil {
			pending.Add(-1)
			fail(fmt.Errorf("worker %d: %w", w, err))
			return
		}
		pending.Add(-1)
	}
}

// runTask executes one task against the worker's private PE copies.
func runTask(g *graph.Graph, pes map[string]core.PE, ctxs map[string]*core.Context, t Task) error {
	pe, ok := pes[t.PE]
	if !ok {
		return fmt.Errorf("task for unknown PE %q", t.PE)
	}
	if t.Port == "" {
		src, ok := pe.(core.Source)
		if !ok {
			return fmt.Errorf("generate task for non-source PE %q", t.PE)
		}
		if err := src.Generate(ctxs[t.PE]); err != nil {
			return fmt.Errorf("source %s: %w", t.PE, err)
		}
		return nil
	}
	if err := pe.Process(ctxs[t.PE], t.Port, t.Value); err != nil {
		return fmt.Errorf("PE %s: %w", t.PE, err)
	}
	return nil
}

// nodeHash gives a stable per-node seed component.
func nodeHash(name string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}
