package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/synth"
)

// Dyn is the dyn_multi mapping: dynamic scheduling over the in-process
// global queue, without auto-scaling.
type Dyn struct{}

// DynAuto is the dyn_auto_multi mapping: Dyn plus the Algorithm 1
// auto-scaler driven by the queue-size strategy.
type DynAuto struct{}

func init() {
	mapping.Register(Dyn{})
	mapping.Register(DynAuto{})
}

// Name implements mapping.Mapping.
func (Dyn) Name() string { return "dyn_multi" }

// Name implements mapping.Mapping.
func (DynAuto) Name() string { return "dyn_auto_multi" }

// Execute implements mapping.Mapping.
func (Dyn) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return execute(g, opts, "dyn_multi", false)
}

// Execute implements mapping.Mapping.
func (DynAuto) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return execute(g, opts, "dyn_auto_multi", true)
}

// ValidateDynamic rejects workflow features plain dynamic scheduling cannot
// honor, mirroring the paper's limitation statement ("dynamic scheduling
// exclusively manages stateless PEs and lacks support for grouping").
func ValidateDynamic(g *graph.Graph, technique string) error {
	if g.HasStateful() {
		return fmt.Errorf("%s: workflow %s has stateful PEs; dynamic scheduling supports only stateless PEs (use hybrid_redis or multi)", technique, g.Name)
	}
	if g.HasNonShuffleGrouping() {
		return fmt.Errorf("%s: workflow %s uses groupings; dynamic scheduling supports only the default shuffle grouping (use hybrid_redis or multi)", technique, g.Name)
	}
	for _, n := range g.Nodes() {
		if _, ok := n.Prototype.(core.Finalizer); ok {
			return fmt.Errorf("%s: PE %s implements Final; per-instance finalization requires a stateful mapping (hybrid_redis or multi)", technique, n.Name)
		}
	}
	return nil
}

func execute(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := ValidateDynamic(g, name); err != nil {
		return metrics.Report{}, err
	}

	host := platform.NewHost(opts.Platform)
	q := NewQueue(host.SyncCost())
	var pending atomic.Int64 // queued + in-flight real tasks
	var tasks, outputs atomic.Int64

	// Seed one generate task per source.
	for _, src := range g.Sources() {
		pending.Add(1)
		q.Push(Task{PE: src.Name})
	}

	var ctrl *autoscale.Controller
	if auto {
		cfg := autoscale.Config{MaxPoolSize: opts.Processes}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = opts.Processes
		}
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.QueueSizeStrategy{Floor: 2}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		go ctrl.RunMonitor(func() float64 { return float64(q.Len()) })
		defer ctrl.Terminate()
	}

	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		// Poison everyone so the run unwinds promptly.
		for i := 0; i < opts.Processes; i++ {
			q.Push(Task{Poison: true})
		}
		if ctrl != nil {
			ctrl.Terminate()
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Processes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(g, host, opts, name, w, q, ctrl, &pending, &tasks, &outputs, fail)
		}(w)
	}
	wg.Wait()
	runtime := time.Since(start)

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", name, err)
	}
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     name,
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
	}, nil
}

// runWorker is one dynamic process: it owns a private copy of every PE and
// loops on the global queue until poisoned or terminated.
func runWorker(
	g *graph.Graph,
	host *platform.Host,
	opts mapping.Options,
	technique string,
	w int,
	q *Queue,
	ctrl *autoscale.Controller,
	pending, tasks, outputs *atomic.Int64,
	fail func(error),
) {
	proc := host.NewProcess(fmt.Sprintf("%s:w%d", technique, w))
	proc.Activate()
	defer proc.Deactivate()

	// Private workflow copy (the paper's cp_graph ← DeepCopy(graph)).
	pes := make(map[string]core.PE, len(g.Nodes()))
	ctxs := make(map[string]*core.Context, len(g.Nodes()))
	for _, n := range g.Nodes() {
		n := n
		pes[n.Name] = n.Factory()
		emit := func(port string, value any) error {
			for _, e := range g.OutEdges(n.Name) {
				if e.FromPort != port {
					continue
				}
				if len(g.OutEdges(e.To)) == 0 {
					outputs.Add(1)
				}
				pending.Add(1)
				q.Push(Task{PE: e.To, Port: e.ToPort, Value: value})
			}
			return nil
		}
		ctxs[n.Name] = core.NewContext(n.Name, w, host,
			synth.NewRand(opts.Seed^int64(w*7919)^int64(nodeHash(n.Name))), emit)
	}
	for name, pe := range pes {
		if ini, ok := pe.(core.Initializer); ok {
			if err := ini.Init(ctxs[name]); err != nil {
				fail(fmt.Errorf("worker %d: init %s: %w", w, name, err))
				return
			}
		}
	}

	retries := 0
	for {
		if ctrl != nil && ctrl.Idle(w) {
			// Idle state: stop accruing process time until readmitted.
			proc.Deactivate()
			if !ctrl.Admit(w) {
				return
			}
			proc.Activate()
		}
		t, ok := q.Pop(opts.PollTimeout)
		if !ok {
			retries++
			if retries > opts.Retries && pending.Load() == 0 {
				// Termination: broadcast poison pills to wake the others,
				// then exit (Section 3.2.3's retry + poison pill protocol).
				for i := 0; i < host.ProcessCount(); i++ {
					q.Push(Task{Poison: true})
				}
				if ctrl != nil {
					ctrl.Terminate()
				}
				return
			}
			continue
		}
		retries = 0
		if t.Poison {
			return
		}
		tasks.Add(1)
		if err := runTask(g, pes, ctxs, t); err != nil {
			pending.Add(-1)
			fail(fmt.Errorf("worker %d: %w", w, err))
			return
		}
		pending.Add(-1)
	}
}

// runTask executes one task against the worker's private PE copies.
func runTask(g *graph.Graph, pes map[string]core.PE, ctxs map[string]*core.Context, t Task) error {
	pe, ok := pes[t.PE]
	if !ok {
		return fmt.Errorf("task for unknown PE %q", t.PE)
	}
	if t.Port == "" {
		src, ok := pe.(core.Source)
		if !ok {
			return fmt.Errorf("generate task for non-source PE %q", t.PE)
		}
		if err := src.Generate(ctxs[t.PE]); err != nil {
			return fmt.Errorf("source %s: %w", t.PE, err)
		}
		return nil
	}
	if err := pe.Process(ctxs[t.PE], t.Port, t.Value); err != nil {
		return fmt.Errorf("PE %s: %w", t.PE, err)
	}
	return nil
}

// nodeHash gives a stable per-node seed component.
func nodeHash(name string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}
