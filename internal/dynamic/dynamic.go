// Package dynamic implements the paper's dynamic scheduling optimization
// over the in-process global queue (the dyn_multi mapping) and its
// auto-scaling extension (dyn_auto_multi). Workers hold a private copy of
// the whole workflow, fetch (PE, data) tasks from the shared queue, execute
// them, and push the results back — the "dynamic PE-Process mode" of the
// paper's Figure 2.
//
// The worker loop, queue and termination protocol live in package runtime;
// this package is a planner: it validates the workflow against dynamic
// scheduling's limits, builds a pool plan over the queue transport, and —
// for dyn_auto_multi — attaches the Algorithm 1 auto-scaler driven by the
// queue-size strategy.
package dynamic

import (
	"repro/internal/autoscale"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/state"
)

// Dyn is the dyn_multi mapping: dynamic scheduling over the in-process
// global queue, without auto-scaling.
type Dyn struct{}

// DynAuto is the dyn_auto_multi mapping: Dyn plus the Algorithm 1
// auto-scaler driven by the queue-size strategy.
type DynAuto struct{}

func init() {
	mapping.Register(Dyn{})
	mapping.Register(DynAuto{})
}

// Name implements mapping.Mapping.
func (Dyn) Name() string { return "dyn_multi" }

// Name implements mapping.Mapping.
func (DynAuto) Name() string { return "dyn_auto_multi" }

// Execute implements mapping.Mapping.
func (Dyn) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return execute(g, opts, "dyn_multi", false)
}

// Execute implements mapping.Mapping.
func (DynAuto) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	return execute(g, opts, "dyn_auto_multi", true)
}

func execute(g *graph.Graph, opts mapping.Options, name string, auto bool) (metrics.Report, error) {
	// Batching stays off by default: the per-op queue synchronization cost
	// IS the multiprocessing overhead the paper's dyn_multi curves measure,
	// so amortizing it silently would change the reproduced baselines. Opt
	// in with Options.EmitBatch/PullBatch (AutoBatch sizes adaptively).
	opts = opts.ResolveBatching(1, 1).WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if err := runtime.ValidateDynamic(g, name); err != nil {
		return metrics.Report{}, err
	}

	host := platform.NewHost(opts.Platform)
	q := runtime.NewQueue(host.SyncCost())

	var ctrl *autoscale.Controller
	if auto {
		cfg := autoscale.Config{MaxPoolSize: opts.Processes}
		if opts.AutoScale != nil {
			cfg = *opts.AutoScale
			cfg.MaxPoolSize = opts.Processes
		}
		strategy := opts.Strategy
		if strategy == nil {
			strategy = &autoscale.QueueSizeStrategy{Floor: 2}
		}
		ctrl = autoscale.NewController(cfg, strategy, opts.Trace)
		go ctrl.RunMonitor(func() float64 { return float64(q.Len()) })
		defer ctrl.Terminate()
	}

	return runtime.Execute(g, opts, runtime.Config{
		Name:            name,
		Plan:            runtime.PoolPlan(g, opts.Processes),
		Transport:       runtime.NewQueueTransport(q),
		Host:            host,
		Controller:      ctrl,
		NewStateBackend: func() state.Backend { return state.NewMemoryBackend() },
	})
}
