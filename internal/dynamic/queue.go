// Package dynamic implements the paper's dynamic scheduling optimization
// over an in-process global queue (the dyn_multi mapping) and its
// auto-scaling extension (dyn_auto_multi). Workers hold a private copy of
// the whole workflow, fetch (PE, data) tasks from the shared queue, execute
// them, and push the results back — the "dynamic PE-Process mode" of the
// paper's Figure 2.
//
// Termination follows Section 3.2.3: a worker that finds the queue empty
// waits a configurable poll timeout and retries a bounded number of times;
// once the retry budget is exhausted *and* no task is still in flight, it
// broadcasts poison pills so the remaining workers exit without waiting out
// their own retry budgets.
package dynamic

import (
	"sync"
	"time"

	"repro/internal/platform"
)

// Task is one schedulable unit: run PE's Process with value on port, or run
// the PE's Generate when Port is empty (a source task), or terminate the
// receiving worker when Poison is set. Finalize asks whichever worker pops
// the task to run the PE's Final hook (the coordinator's once-per-run flush
// of a managed-state node).
type Task struct {
	PE       string
	Port     string
	Value    any
	Poison   bool
	Finalize bool
}

// Queue is the dynamic global queue. Every operation holds the queue lock
// for the platform's synchronization cost, so contending workers serialize
// exactly as processes serialize on a multiprocessing.Queue — the overhead
// that makes total process time creep upward with larger active pools.
type Queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []Task
	syncCost time.Duration
	pushes   int64
	pops     int64
}

// NewQueue creates a queue with the given per-op synchronization cost.
func NewQueue(syncCost time.Duration) *Queue {
	q := &Queue{syncCost: syncCost}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a task.
func (q *Queue) Push(t Task) {
	q.mu.Lock()
	platform.SpinWait(q.syncCost)
	q.items = append(q.items, t)
	q.pushes++
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop removes the head task, blocking up to timeout when the queue is
// empty. ok is false on timeout.
func (q *Queue) Pop(timeout time.Duration) (t Task, ok bool) {
	deadline := time.Now().Add(timeout)
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Task{}, false
		}
		// sync.Cond has no timed wait; poll in small slices so empty-queue
		// workers wake up to run the retry/termination protocol. The slice
		// is a fraction of the poll timeout to keep wake-up latency low
		// without busy-spinning.
		q.mu.Unlock()
		slice := remaining
		if slice > time.Millisecond {
			slice = time.Millisecond
		}
		time.Sleep(slice)
		q.mu.Lock()
	}
	platform.SpinWait(q.syncCost)
	t = q.items[0]
	q.items = q.items[1:]
	q.pops++
	return t, true
}

// Len returns the current queue length (the dyn_auto_multi monitor metric).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Ops reports total pushes and pops, for tests and diagnostics.
func (q *Queue) Ops() (pushes, pops int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushes, q.pops
}
