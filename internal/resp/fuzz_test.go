package resp_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"repro/internal/resp"
)

// FuzzReadValue throws arbitrary bytes at the reader. It must never panic,
// and anything it accepts must be canonical: re-encoding the parsed value
// and parsing it again yields the same value.
func FuzzReadValue(f *testing.F) {
	seeds := []string{
		"+OK\r\n",
		"-ERR boom\r\n",
		":123\r\n",
		"$5\r\nhello\r\n",
		"$-1\r\n",
		"*-1\r\n",
		"*2\r\n$1\r\na\r\n:9\r\n",
		"*1\r\n*1\r\n$0\r\n\r\n",
		// Malformed shapes: bad prefix, length lies, missing terminators,
		// oversized headers, bare LF lines.
		"?huh\r\n",
		":notanint\r\n",
		"$5\r\nhi\r\n",
		"$67108865\r\n",
		"*3\r\n:1\r\n",
		"*9999999999\r\n",
		"$3\r\nabcXY",
		"+OK\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := resp.NewReader(bytes.NewReader(data)).ReadValue()
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := resp.NewWriter(&buf)
		if err := w.WriteValue(v); err != nil {
			t.Fatalf("parsed value failed to encode: %v (%+v)", err, v)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		v2, err := resp.NewReader(&buf).ReadValue()
		if err != nil {
			t.Fatalf("re-encoded value failed to parse: %v (%+v)", err, v)
		}
		if !v.Equal(v2) {
			t.Fatalf("round trip diverged:\n in %+v\nout %+v", v, v2)
		}
	})
}

// FuzzCommandRoundTrip: any argv the writer emits, the reader hands back
// verbatim — including empty strings, CRLF payloads, and binary junk.
func FuzzCommandRoundTrip(f *testing.F) {
	f.Add("GET", "key", "")
	f.Add("SET", "k\r\n", "\x00binary\xff")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		argv := []string{a, b, c}
		var buf bytes.Buffer
		if err := resp.NewWriter(&buf).WriteCommand(argv...); err != nil {
			t.Fatal(err)
		}
		got, err := resp.NewReader(&buf).ReadCommand()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(argv) {
			t.Fatalf("arity: %v vs %v", got, argv)
		}
		for i := range argv {
			if got[i] != argv[i] {
				t.Fatalf("argv[%d]: %q vs %q", i, got[i], argv[i])
			}
		}
	})
}

// TestReaderSurvivesFragmentation: a value delivered one byte at a time —
// the worst TCP segmentation — parses identically to one delivered whole.
func TestReaderSurvivesFragmentation(t *testing.T) {
	want := resp.Arr(
		resp.Str("hello"),
		resp.Int(-42),
		resp.Nil,
		resp.Arr(resp.Simple("OK"), resp.Err("ERR nested")),
	)
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	if err := w.WriteValue(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := resp.NewReader(iotest.OneByteReader(bytes.NewReader(buf.Bytes()))).ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("fragmented parse diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestReaderPipelinedPartialDelivery: several commands written back to back
// parse in order even when the tail of the stream arrives late; a command
// cut off mid-frame surfaces an IO error, not a wrong parse.
func TestReaderPipelinedPartialDelivery(t *testing.T) {
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	for _, argv := range [][]string{
		{"HSET", "h", "f", "v"},
		{"HGET", "h", "f"},
		{"DEL", "h"},
	} {
		if err := w.WriteCommandBuffered(argv...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Whole pipeline present: all three commands come back in order.
	r := resp.NewReader(bytes.NewReader(full))
	for _, wantCmd := range []string{"HSET", "HGET", "DEL"} {
		argv, err := r.ReadCommand()
		if err != nil {
			t.Fatal(err)
		}
		if argv[0] != wantCmd {
			t.Fatalf("command order: got %q want %q", argv[0], wantCmd)
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("drained pipeline: %v", err)
	}

	// Cut the stream mid-second-command at every byte offset: the first
	// command must still parse, the truncated one must fail with an IO
	// error — never a silent short read or a protocol mis-parse.
	first := len(full)
	for i := 1; i < len(full); i++ {
		if r := resp.NewReader(bytes.NewReader(full[:i])); true {
			if _, err := r.ReadCommand(); err == nil {
				first = i
				break
			}
		}
	}
	for cut := first; cut < len(full); cut++ {
		r := resp.NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.ReadCommand(); err != nil {
			t.Fatalf("cut=%d: first command lost: %v", cut, err)
		}
		_, err := r.ReadCommand()
		if err == nil {
			continue // cut landed on a later frame boundary
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, resp.ErrProtocol) {
			t.Fatalf("cut=%d: unexpected error class: %v", cut, err)
		}
	}
}

// TestOversizedHeadersRejectedWithoutAllocation: hostile length headers are
// rejected by the bound check before any payload buffer is allocated — a
// multi-gigabyte claim must not cost multi-gigabyte memory.
func TestOversizedHeadersRejectedWithoutAllocation(t *testing.T) {
	for _, in := range []string{
		"$67108865\r\n",    // MaxBulkLen + 1
		"$99999999999\r\n", // absurd
		"*1048577\r\n",     // MaxArrayLen + 1
	} {
		_, err := resp.NewReader(strings.NewReader(in)).ReadValue()
		if !errors.Is(err, resp.ErrProtocol) {
			t.Fatalf("%q: want ErrProtocol, got %v", in, err)
		}
	}
	// At the boundary the reader honestly tries to read the payload and
	// reports truncation, not a protocol error.
	_, err := resp.NewReader(strings.NewReader("$67108864\r\n")).ReadValue()
	if err == nil || errors.Is(err, resp.ErrProtocol) {
		t.Fatalf("boundary bulk: %v", err)
	}
}
