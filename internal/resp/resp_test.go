package resp

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteValue(v); err != nil {
		t.Fatalf("WriteValue: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf).ReadValue()
	if err != nil {
		t.Fatalf("ReadValue: %v", err)
	}
	return got
}

func TestRoundTripSimpleString(t *testing.T) {
	v := Simple("OK")
	if got := roundTrip(t, v); !got.Equal(v) {
		t.Errorf("got %+v want %+v", got, v)
	}
}

func TestRoundTripError(t *testing.T) {
	v := Err("ERR something broke")
	got := roundTrip(t, v)
	if got.Type != Error || got.Str != "ERR something broke" {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripInteger(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, -9223372036854775808, 9223372036854775807} {
		v := Int(n)
		if got := roundTrip(t, v); got.Int != n {
			t.Errorf("int %d round-tripped to %d", n, got.Int)
		}
	}
}

func TestRoundTripBulkString(t *testing.T) {
	cases := []string{"", "hello", "with\r\nCRLF inside", strings.Repeat("x", 100000), "unicode £€ 日本"}
	for _, s := range cases {
		v := Str(s)
		if got := roundTrip(t, v); got.Str != s {
			t.Errorf("bulk %q round-tripped to %q", s, got.Str)
		}
	}
}

func TestRoundTripNil(t *testing.T) {
	got := roundTrip(t, Nil)
	if !got.IsNull() || got.Type != BulkString {
		t.Errorf("nil bulk round-tripped to %+v", got)
	}
	got = roundTrip(t, NilArray())
	if !got.IsNull() || got.Type != Array {
		t.Errorf("nil array round-tripped to %+v", got)
	}
}

func TestRoundTripNestedArray(t *testing.T) {
	v := Arr(
		Str("XADD"),
		Int(7),
		Arr(Str("inner"), Nil, Arr()),
		Simple("nested"),
	)
	if got := roundTrip(t, v); !got.Equal(v) {
		t.Errorf("nested array mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestReadCommandArrayForm(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteCommand("SET", "key", "value with spaces"); err != nil {
		t.Fatal(err)
	}
	argv, err := NewReader(&buf).ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SET", "key", "value with spaces"}
	if len(argv) != len(want) {
		t.Fatalf("argv %v", argv)
	}
	for i := range want {
		if argv[i] != want[i] {
			t.Errorf("argv[%d]=%q want %q", i, argv[i], want[i])
		}
	}
}

func TestReadCommandInlineForm(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\nECHO hello\r\n"))
	argv, err := r.ReadCommand()
	if err != nil || len(argv) != 1 || argv[0] != "PING" {
		t.Fatalf("inline PING: argv=%v err=%v", argv, err)
	}
	argv, err = r.ReadCommand()
	if err != nil || len(argv) != 2 || argv[1] != "hello" {
		t.Fatalf("inline ECHO: argv=%v err=%v", argv, err)
	}
}

func TestReadCommandRejectsEmptyArray(t *testing.T) {
	r := NewReader(strings.NewReader("*0\r\n"))
	if _, err := r.ReadCommand(); err == nil {
		t.Fatal("expected error for empty command array")
	}
}

func TestReadValueRejectsGarbagePrefix(t *testing.T) {
	r := NewReader(strings.NewReader("?what\r\n"))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("expected protocol error")
	}
}

func TestReadValueRejectsOverlongBulk(t *testing.T) {
	r := NewReader(strings.NewReader("$99999999999\r\n"))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("expected length-cap error")
	}
}

func TestReadValueRejectsMissingCRLF(t *testing.T) {
	r := NewReader(strings.NewReader("$3\r\nabcXY"))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("expected terminator error")
	}
}

func TestReadValueTruncatedInput(t *testing.T) {
	for _, in := range []string{"*2\r\n:1\r\n", "$5\r\nab", ":12"} {
		r := NewReader(strings.NewReader(in))
		if _, err := r.ReadValue(); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestValueText(t *testing.T) {
	if Int(42).Text() != "42" {
		t.Error("integer Text")
	}
	if Str("abc").Text() != "abc" {
		t.Error("bulk Text")
	}
}

func TestEqualMismatches(t *testing.T) {
	if Str("a").Equal(Simple("a")) {
		t.Error("different types compare equal")
	}
	if Arr(Int(1)).Equal(Arr(Int(1), Int(2))) {
		t.Error("different lengths compare equal")
	}
	if Nil.Equal(Str("")) {
		t.Error("nil bulk equals empty bulk")
	}
}

func TestStrArray(t *testing.T) {
	v := StrArray("a", "b")
	if len(v.Array) != 2 || v.Array[0].Str != "a" || v.Array[1].Str != "b" {
		t.Errorf("StrArray: %+v", v)
	}
}

// Property: any command argv survives WriteCommand/ReadCommand, as long as it
// is non-empty and the words have no interior NUL (arbitrary bytes are fine
// because the array form length-prefixes payloads).
func TestQuickCommandRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		if len(words) == 0 {
			words = []string{"PING"}
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteCommand(words...); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadCommand()
		if err != nil || len(got) != len(words) {
			return false
		}
		for i := range words {
			if got[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated Value round-trips to a deep-equal Value.
func TestQuickValueRoundTrip(t *testing.T) {
	gen := func(depth int, s string, n int64, kind uint8) Value {
		switch kind % 6 {
		case 0:
			return Simple(strings.Map(sanitizeLine, s))
		case 1:
			return Err(strings.Map(sanitizeLine, s))
		case 2:
			return Int(n)
		case 3:
			return Str(s)
		case 4:
			return Nil
		default:
			if depth <= 0 {
				return Int(n)
			}
			return Arr(Str(s), Int(n))
		}
	}
	f := func(s string, n int64, kind uint8) bool {
		v := gen(1, s, n, kind)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteValue(v); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadValue()
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// sanitizeLine strips CR/LF which are illegal inside simple strings/errors.
func sanitizeLine(r rune) rune {
	if r == '\r' || r == '\n' {
		return '_'
	}
	return r
}

func TestWriterStreamsMultipleValues(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.WriteValue(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 10; i++ {
		v, err := r.ReadValue()
		if err != nil {
			t.Fatal(err)
		}
		if v.Int != int64(i) {
			t.Fatalf("value %d: got %d", i, v.Int)
		}
	}
	if _, err := r.ReadValue(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTypeString(t *testing.T) {
	if SimpleString.String() != "simple-string" || Array.String() != "array" {
		t.Error("Type.String naming")
	}
	if !strings.Contains(Type('?').String(), "unknown") {
		t.Error("unknown type naming")
	}
}
