// Package resp implements the RESP2 wire protocol used by Redis clients and
// servers. It provides a value model plus buffered Reader/Writer types that
// parse and serialize protocol frames. Only the subset of the protocol needed
// by the dispel4py-style Redis mappings is implemented, but that subset is
// complete enough to talk to generic Redis tooling: simple strings, errors,
// integers, bulk strings (including nil) and (nested) arrays, as well as the
// inline command form some clients use for PING.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Type identifies the kind of a RESP value.
type Type byte

// RESP value kinds.
const (
	SimpleString Type = '+'
	Error        Type = '-'
	Integer      Type = ':'
	BulkString   Type = '$'
	Array        Type = '*'
)

// String returns a human-readable name for the type.
func (t Type) String() string {
	switch t {
	case SimpleString:
		return "simple-string"
	case Error:
		return "error"
	case Integer:
		return "integer"
	case BulkString:
		return "bulk-string"
	case Array:
		return "array"
	default:
		return fmt.Sprintf("unknown(%c)", byte(t))
	}
}

// Value is a single RESP protocol value. Nil bulk strings and nil arrays are
// represented with Null set to true.
type Value struct {
	Type  Type
	Str   string  // SimpleString, Error, BulkString payload
	Int   int64   // Integer payload
	Array []Value // Array payload
	Null  bool    // nil bulk string / nil array
}

// Common reusable values.
var (
	OK   = Value{Type: SimpleString, Str: "OK"}
	Pong = Value{Type: SimpleString, Str: "PONG"}
	Nil  = Value{Type: BulkString, Null: true}
)

// Str returns a bulk string value.
func Str(s string) Value { return Value{Type: BulkString, Str: s} }

// Simple returns a simple string value.
func Simple(s string) Value { return Value{Type: SimpleString, Str: s} }

// Int returns an integer value.
func Int(n int64) Value { return Value{Type: Integer, Int: n} }

// Err returns an error value with the conventional upper-case prefix already
// included by the caller (for example "ERR unknown command").
func Err(msg string) Value { return Value{Type: Error, Str: msg} }

// Errf formats an error value.
func Errf(format string, args ...any) Value {
	return Err(fmt.Sprintf(format, args...))
}

// Arr returns an array value.
func Arr(vals ...Value) Value { return Value{Type: Array, Array: vals} }

// NilArray is the nil array reply (e.g. BLPOP timeout).
func NilArray() Value { return Value{Type: Array, Null: true} }

// StrArray builds an array of bulk strings.
func StrArray(ss ...string) Value {
	vals := make([]Value, len(ss))
	for i, s := range ss {
		vals[i] = Str(s)
	}
	return Arr(vals...)
}

// IsNull reports whether the value is a nil bulk string or nil array.
func (v Value) IsNull() bool { return v.Null }

// Text returns the string payload of a value, converting integers when
// necessary. It is what a Redis client means by "the reply, as a string".
func (v Value) Text() string {
	switch v.Type {
	case Integer:
		return strconv.FormatInt(v.Int, 10)
	default:
		return v.Str
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type || v.Null != o.Null {
		return false
	}
	switch v.Type {
	case Integer:
		return v.Int == o.Int
	case Array:
		if len(v.Array) != len(o.Array) {
			return false
		}
		for i := range v.Array {
			if !v.Array[i].Equal(o.Array[i]) {
				return false
			}
		}
		return true
	default:
		return v.Str == o.Str
	}
}

// ErrProtocol is returned when the peer sends malformed RESP data.
var ErrProtocol = errors.New("resp: protocol error")

// MaxBulkLen caps bulk string payloads to guard against hostile or corrupt
// length prefixes. 64 MiB is far above anything the workflow engine sends.
const MaxBulkLen = 64 << 20

// MaxArrayLen caps array element counts for the same reason.
const MaxArrayLen = 1 << 20

// Reader decodes RESP values from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a RESP decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 16*1024)}
}

// ReadValue reads one complete RESP value.
func (r *Reader) ReadValue() (Value, error) {
	prefix, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Type(prefix) {
	case SimpleString, Error:
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: Type(prefix), Str: string(line)}, nil
	case Integer:
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return Value{Type: Integer, Int: n}, nil
	case BulkString:
		return r.readBulk()
	case Array:
		return r.readArray()
	default:
		return Value{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, prefix)
	}
}

// ReadCommand reads one client command: either a RESP array of bulk strings
// or an inline command line ("PING\r\n"). It returns the argv.
func (r *Reader) ReadCommand() ([]string, error) {
	prefix, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if Type(prefix) == Array {
		v, err := r.readArray()
		if err != nil {
			return nil, err
		}
		if v.Null || len(v.Array) == 0 {
			return nil, fmt.Errorf("%w: empty command array", ErrProtocol)
		}
		argv := make([]string, len(v.Array))
		for i, elem := range v.Array {
			if elem.Type != BulkString || elem.Null {
				return nil, fmt.Errorf("%w: command element %d is %s, want bulk string", ErrProtocol, i, elem.Type)
			}
			argv[i] = elem.Str
		}
		return argv, nil
	}
	// Inline command: the prefix byte is part of the first word.
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	full := append([]byte{prefix}, line...)
	fields := bytes.Fields(full)
	if len(fields) == 0 {
		return nil, fmt.Errorf("%w: empty inline command", ErrProtocol)
	}
	argv := make([]string, len(fields))
	for i, f := range fields {
		argv[i] = string(f)
	}
	return argv, nil
}

func (r *Reader) readBulk() (Value, error) {
	line, err := r.readLine()
	if err != nil {
		return Value{}, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
	}
	if n == -1 {
		return Value{Type: BulkString, Null: true}, nil
	}
	if n < 0 || n > MaxBulkLen {
		return Value{}, fmt.Errorf("%w: bulk length %d out of range", ErrProtocol, n)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Value{}, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return Value{}, fmt.Errorf("%w: bulk string missing CRLF terminator", ErrProtocol)
	}
	return Value{Type: BulkString, Str: string(buf[:n])}, nil
}

func (r *Reader) readArray() (Value, error) {
	line, err := r.readLine()
	if err != nil {
		return Value{}, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
	}
	if n == -1 {
		return Value{Type: Array, Null: true}, nil
	}
	if n < 0 || n > MaxArrayLen {
		return Value{}, fmt.Errorf("%w: array length %d out of range", ErrProtocol, n)
	}
	vals := make([]Value, 0, n)
	for i := int64(0); i < n; i++ {
		v, err := r.ReadValue()
		if err != nil {
			return Value{}, err
		}
		vals = append(vals, v)
	}
	return Value{Type: Array, Array: vals}, nil
}

// readLine reads up to CRLF and returns the line without the terminator.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

// Writer encodes RESP values onto a stream.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w in a RESP encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16*1024)}
}

// WriteValue serializes one value. Call Flush to push buffered bytes.
func (w *Writer) WriteValue(v Value) error {
	switch v.Type {
	case SimpleString:
		return w.line('+', v.Str)
	case Error:
		return w.line('-', v.Str)
	case Integer:
		return w.line(':', strconv.FormatInt(v.Int, 10))
	case BulkString:
		if v.Null {
			return w.line('$', "-1")
		}
		if err := w.line('$', strconv.Itoa(len(v.Str))); err != nil {
			return err
		}
		if _, err := w.bw.WriteString(v.Str); err != nil {
			return err
		}
		_, err := w.bw.WriteString("\r\n")
		return err
	case Array:
		if v.Null {
			return w.line('*', "-1")
		}
		if err := w.line('*', strconv.Itoa(len(v.Array))); err != nil {
			return err
		}
		for _, elem := range v.Array {
			if err := w.WriteValue(elem); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("resp: cannot encode type %q", byte(v.Type))
	}
}

// WriteCommand serializes argv as an array of bulk strings and flushes.
func (w *Writer) WriteCommand(argv ...string) error {
	if err := w.WriteCommandBuffered(argv...); err != nil {
		return err
	}
	return w.Flush()
}

// WriteCommandBuffered serializes argv without flushing, so several commands
// can share one network write — the primitive behind client pipelining.
func (w *Writer) WriteCommandBuffered(argv ...string) error {
	if err := w.line('*', strconv.Itoa(len(argv))); err != nil {
		return err
	}
	for _, a := range argv {
		if err := w.WriteValue(Str(a)); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

func (w *Writer) line(prefix byte, body string) error {
	if err := w.bw.WriteByte(prefix); err != nil {
		return err
	}
	if _, err := w.bw.WriteString(body); err != nil {
		return err
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}
