package harness

import (
	"strings"
	"testing"
	"time"

	_ "repro/internal/dynamic"
	_ "repro/internal/redismap"
)

// quickOpenLoop is a sub-second open-loop configuration for tests.
func quickOpenLoop(mappingName, workload string) OpenLoopConfig {
	return OpenLoopConfig{
		Mapping:  mappingName,
		Workload: workload,
		// Small worker count keeps the embedded server light.
		Processes: 3,
		Rate:      400,
		Duration:  300 * time.Millisecond,
		Users:     500,
		Seed:      11,
	}
}

func TestRunOpenLoopSessionDynMulti(t *testing.T) {
	r := &Runner{}
	p, err := r.RunOpenLoop(quickOpenLoop("dyn_multi", "session"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Offered == 0 {
		t.Fatal("pacer offered no events")
	}
	if p.Delivered != p.Offered {
		t.Fatalf("delivered %d of %d offered — events lost or duplicated", p.Delivered, p.Offered)
	}
	if p.P50 <= 0 || p.P99 < p.P50 || p.Max < p.P99 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v max=%v", p.P50, p.P99, p.Max)
	}
	if p.OfferedRate <= 0 || p.GenSeconds <= 0 {
		t.Fatalf("rate accounting empty: %+v", p)
	}
}

func TestRunOpenLoopRelayDynRedis(t *testing.T) {
	r := &Runner{}
	defer r.Close()
	p, err := r.RunOpenLoop(quickOpenLoop("dyn_redis", "relay"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Offered == 0 || p.Delivered != p.Offered {
		t.Fatalf("relay through dyn_redis lost events: delivered %d of %d", p.Delivered, p.Offered)
	}
}

func TestOpenLoopRenderers(t *testing.T) {
	pts := []OpenLoopPoint{{
		Workload: "session", Mapping: "dyn_redis", Processes: 8,
		TargetRate: 1000, OfferedRate: 998, DeliveredRate: 995,
		Offered: 29940, Delivered: 29940, GenSeconds: 30, DrainSeconds: 0.2,
		P50: 2 * time.Millisecond, P99: 9 * time.Millisecond, Max: 30 * time.Millisecond,
		Sustainable: true,
	}}
	table := RenderOpenLoop("open loop", pts)
	if !strings.Contains(table, "dyn_redis") || !strings.Contains(table, "sustainable") {
		t.Fatalf("table missing columns:\n%s", table)
	}
	csv := OpenLoopCSV(pts)
	if !strings.Contains(csv, "p99_ms") || !strings.Contains(csv, "session,dyn_redis,8,1000") {
		t.Fatalf("csv missing fields:\n%s", csv)
	}
}
