package harness

import (
	"time"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/workflows/galaxy"
	"repro/internal/workflows/seismic"
	"repro/internal/workflows/sentiment"
)

// AllTechniques is the paper's full technique set (Section 5's legend).
var AllTechniques = []string{
	"dyn_multi", "dyn_auto_multi", "dyn_redis", "dyn_auto_redis", "multi", "hybrid_redis",
}

// MultiFamily is the subset evaluated on HPC ("Redis cannot be deployed on
// the HPC, [so] no mapping based on Redis [runs] on HPC").
var MultiFamily = []string{"dyn_multi", "dyn_auto_multi", "multi"}

// Scale selects the experiment size. Full reproduces the paper's sweep;
// Quick shrinks stream lengths and sweeps so the whole suite runs in
// seconds (used by tests and -short benches).
type Scale struct {
	// GalaxyX multiplies the 100-galaxy 1X workload per X step.
	GalaxyBase int
	// HeavyMax is the heavy-delay maximum.
	HeavyMax time.Duration
	// Stations, Samples size the seismic workload.
	Stations, Samples int
	// Articles sizes the sentiment corpus.
	Articles int
	// ServerProcs, HPCProcs, SentimentProcs are the process sweeps.
	ServerProcs, HPCProcs, SentimentProcs []int
	// TraceProcs is the worker budget of the Figure 13 traces.
	TraceProcsServer, TraceProcsHPC int
}

// FullScale is the paper's configuration (times scaled to milliseconds).
func FullScale() Scale {
	return Scale{
		GalaxyBase:       100,
		HeavyMax:         20 * time.Millisecond,
		Stations:         50,
		Samples:          3000,
		Articles:         120,
		ServerProcs:      []int{4, 8, 12, 16},
		HPCProcs:         []int{4, 8, 16, 32, 64},
		SentimentProcs:   []int{8, 10, 12, 14, 16},
		TraceProcsServer: 16,
		TraceProcsHPC:    64,
	}
}

// QuickScale is the seconds-scale smoke configuration.
func QuickScale() Scale {
	return Scale{
		GalaxyBase:       12,
		HeavyMax:         4 * time.Millisecond,
		Stations:         10,
		Samples:          600,
		Articles:         30,
		ServerProcs:      []int{4, 8},
		HPCProcs:         []int{4, 16},
		SentimentProcs:   []int{8, 14},
		TraceProcsServer: 8,
		TraceProcsHPC:    16,
	}
}

// galaxyGraph builds a galaxy workflow factory at x times the base stream.
func (s Scale) galaxyGraph(x int, heavy bool) func() *graph.Graph {
	return func() *graph.Graph {
		return galaxy.New(galaxy.Config{
			Galaxies: s.GalaxyBase * x,
			Heavy:    heavy,
			HeavyMax: s.HeavyMax,
		})
	}
}

func (s Scale) seismicGraph() func() *graph.Graph {
	return func() *graph.Graph {
		return seismic.New(seismic.Config{Stations: s.Stations, Samples: s.Samples})
	}
}

func (s Scale) sentimentGraph() func() *graph.Graph {
	return func() *graph.Graph {
		return sentiment.New(sentiment.Config{Articles: s.Articles})
	}
}

// Fig8 is the galaxy workload sweep on the server (Figure 8): three panels
// (1X standard, 5X standard, 1X heavy), all six techniques.
func Fig8(s Scale) []Experiment {
	return galaxyPanels("fig8", platform.Server, s.ServerProcs, AllTechniques, s)
}

// Fig9 is Figure 8's grid on the cloud platform (Figure 9).
func Fig9(s Scale) []Experiment {
	return galaxyPanels("fig9", platform.Cloud, s.ServerProcs, AllTechniques, s)
}

func galaxyPanels(id string, plat platform.Platform, procs []int, techniques []string, s Scale) []Experiment {
	return []Experiment{
		{
			ID: id + "-1x-std", Title: "Internal Extinction, 1X standard workload (" + plat.Name + ")",
			Platform: plat, Techniques: techniques, Processes: procs,
			MakeGraph: s.galaxyGraph(1, false), Seed: 101,
		},
		{
			ID: id + "-5x-std", Title: "Internal Extinction, 5X standard workload (" + plat.Name + ")",
			Platform: plat, Techniques: techniques, Processes: procs,
			MakeGraph: s.galaxyGraph(5, false), Seed: 102,
		},
		{
			ID: id + "-1x-heavy", Title: "Internal Extinction, 1X heavy workload (" + plat.Name + ")",
			Platform: plat, Techniques: techniques, Processes: procs,
			MakeGraph: s.galaxyGraph(1, true), Seed: 103,
		},
	}
}

// Fig10 is the galaxy sweep on HPC (Figure 10): 5X/10X standard and 5X
// heavy, multi family only, up to 64 processes.
func Fig10(s Scale) []Experiment {
	return []Experiment{
		{
			ID: "fig10-5x-std", Title: "Internal Extinction, 5X standard workload (hpc)",
			Platform: platform.HPC, Techniques: MultiFamily, Processes: s.HPCProcs,
			MakeGraph: s.galaxyGraph(5, false), Seed: 104,
		},
		{
			ID: "fig10-10x-std", Title: "Internal Extinction, 10X standard workload (hpc)",
			Platform: platform.HPC, Techniques: MultiFamily, Processes: s.HPCProcs,
			MakeGraph: s.galaxyGraph(10, false), Seed: 105,
		},
		{
			ID: "fig10-5x-heavy", Title: "Internal Extinction, 5X heavy workload (hpc)",
			Platform: platform.HPC, Techniques: MultiFamily, Processes: s.HPCProcs,
			MakeGraph: s.galaxyGraph(5, true), Seed: 106,
		},
	}
}

// Fig11 is the seismic evaluation (Figure 11): server, cloud (all six
// techniques; multi appears only at ≥ 12 processes because the workflow has
// 9 PEs) and HPC (multi family).
func Fig11(s Scale) []Experiment {
	return []Experiment{
		{
			ID: "fig11a", Title: "Seismic Cross-Correlation (server)",
			Platform: platform.Server, Techniques: AllTechniques, Processes: s.ServerProcs,
			MakeGraph: s.seismicGraph(), Seed: 111,
		},
		{
			ID: "fig11b", Title: "Seismic Cross-Correlation (cloud)",
			Platform: platform.Cloud, Techniques: AllTechniques, Processes: s.ServerProcs,
			MakeGraph: s.seismicGraph(), Seed: 112,
		},
		{
			ID: "fig11c", Title: "Seismic Cross-Correlation (hpc)",
			Platform: platform.HPC, Techniques: MultiFamily, Processes: s.HPCProcs,
			MakeGraph: s.seismicGraph(), Seed: 113,
		},
	}
}

// Fig12 is the stateful sentiment evaluation (Figure 12): hybrid_redis vs
// multi on server and cloud. multi appears only at ≥ 14 processes.
func Fig12(s Scale) []Experiment {
	techniques := []string{"multi", "hybrid_redis"}
	return []Experiment{
		{
			ID: "fig12a", Title: "Sentiment Analyses for News Articles (server)",
			Platform: platform.Server, Techniques: techniques, Processes: s.SentimentProcs,
			MakeGraph: s.sentimentGraph(), Seed: 121,
		},
		{
			ID: "fig12b", Title: "Sentiment Analyses for News Articles (cloud)",
			Platform: platform.Cloud, Techniques: techniques, Processes: s.SentimentProcs,
			MakeGraph: s.sentimentGraph(), Seed: 122,
		},
	}
}

// Fig13 is the auto-scaler analysis (Figure 13): active size vs monitored
// metric over iterations, six panels.
func Fig13(s Scale) []TraceExperiment {
	return []TraceExperiment{
		{
			ID: "fig13a", Title: "Galaxy on server, dyn_auto_multi (active vs queue size)",
			Technique: "dyn_auto_multi", Platform: platform.Server, Processes: s.TraceProcsServer,
			MakeGraph: s.galaxyGraph(1, false), Seed: 131,
		},
		{
			ID: "fig13b", Title: "Galaxy on server, dyn_auto_redis (active vs avg idle time)",
			Technique: "dyn_auto_redis", Platform: platform.Server, Processes: s.TraceProcsServer,
			MakeGraph: s.galaxyGraph(1, false), Seed: 132,
		},
		{
			ID: "fig13c", Title: "Galaxy on HPC, dyn_auto_multi (active vs queue size)",
			Technique: "dyn_auto_multi", Platform: platform.HPC, Processes: s.TraceProcsHPC,
			MakeGraph: s.galaxyGraph(5, false), Seed: 133,
		},
		{
			ID: "fig13d", Title: "Seismic on server, dyn_auto_multi (active vs queue size)",
			Technique: "dyn_auto_multi", Platform: platform.Server, Processes: s.TraceProcsServer,
			MakeGraph: s.seismicGraph(), Seed: 134,
		},
		{
			ID: "fig13e", Title: "Seismic on server, dyn_auto_redis (active vs avg idle time)",
			Technique: "dyn_auto_redis", Platform: platform.Server, Processes: s.TraceProcsServer,
			MakeGraph: s.seismicGraph(), Seed: 135,
		},
		{
			ID: "fig13f", Title: "Seismic on HPC, dyn_auto_multi (active vs queue size)",
			Technique: "dyn_auto_multi", Platform: platform.HPC, Processes: s.TraceProcsHPC,
			MakeGraph: s.seismicGraph(), Seed: 136,
		},
	}
}

// BatchWindow is one point of the batching sweep grid.
type BatchWindow struct {
	// Label names the point in series labels and file names.
	Label string
	// Size is the EmitBatch/PullBatch value (mapping.AutoBatch for auto).
	Size int
}

// BatchWindows is the d4pbench -sweep grid: unbatched, two fixed windows,
// and the adaptive sizer.
func BatchWindows() []BatchWindow {
	return []BatchWindow{
		{Label: "batch=1", Size: 1},
		{Label: "batch=8", Size: 8},
		{Label: "batch=64", Size: 64},
		{Label: "auto", Size: mapping.AutoBatch},
	}
}

// SweepBatching builds the batched emit+consume sweep: the galaxy workload
// at every batch window, over one Redis-backed and one in-process dynamic
// mapping, at the scale's largest server process count. Each experiment
// pins both EmitBatch and PullBatch to its window; the caller distinguishes
// the resulting series by the window's Label.
func SweepBatching(s Scale) []Experiment {
	procs := s.ServerProcs[len(s.ServerProcs)-1]
	out := make([]Experiment, 0, len(BatchWindows()))
	for _, w := range BatchWindows() {
		size := w.Size
		out = append(out, Experiment{
			ID:         "batching-" + w.Label,
			Title:      "Batched emit+consume, " + w.Label + " (galaxy, server)",
			Platform:   platform.Server,
			Techniques: []string{"dyn_multi", "dyn_redis"},
			Processes:  []int{procs},
			MakeGraph:  s.galaxyGraph(1, false),
			Seed:       701,
			Configure: func(o *mapping.Options) {
				o.EmitBatch = size
				o.PullBatch = size
			},
		})
	}
	return out
}

// SweepRecovery builds the exactly-once-recovery overhead scenario: the
// managed-state sentiment workload on the batched dyn_redis path, once with
// replay recovery off (the baseline) and once with Options.RecoverStale on —
// which implies ExactlyOnceState, i.e. task identity stamping, the
// applied-ledger fence on every managed store write, and consumer-fenced
// acknowledgements. The gap between the two series is the price of
// exactly-once-effect recovery on a healthy run (target: < 5%).
func SweepRecovery(s Scale) []Experiment {
	procs := s.ServerProcs[len(s.ServerProcs)-1]
	mk := func() *graph.Graph {
		return sentiment.New(sentiment.Config{Articles: s.Articles, ManagedState: true})
	}
	base := Experiment{
		ID:         "recovery-unfenced",
		Title:      "Managed-state sentiment, recovery off (dyn_redis, server)",
		Platform:   platform.Server,
		Techniques: []string{"dyn_redis"},
		Processes:  []int{procs},
		MakeGraph:  mk,
		Seed:       801,
	}
	fenced := base
	fenced.ID = "recovery-fenced"
	fenced.Title = "Managed-state sentiment, exactly-once recovery (dyn_redis, server)"
	fenced.Configure = func(o *mapping.Options) {
		o.RecoverStale = true
		// RecoverIdle above the worst-case residency of a prefetched batch:
		// on a healthy run nothing is reclaimed, so the measured gap is the
		// fencing machinery itself (stamping, applied-ledger writes, fenced
		// acks), not duplicate executions from over-eager XAUTOCLAIM.
		o.RecoverIdle = 2 * time.Second
	}
	return []Experiment{base, fenced}
}

// TablePair is one A/B comparison of the ratio tables.
type TablePair struct{ A, B string }

// Table1Pairs are the galaxy comparisons (Table 1).
var Table1Pairs = []TablePair{
	{A: "dyn_auto_multi", B: "dyn_multi"},
	{A: "dyn_auto_redis", B: "dyn_redis"},
}

// Table3Pairs are the sentiment comparisons (Table 3).
var Table3Pairs = []TablePair{{A: "hybrid_redis", B: "multi"}}

// BuildTables pools the panels of one platform and produces the ratio
// tables for the requested pairs. Panels whose technique set lacks a pair
// member contribute nothing for that pair.
func BuildTables(platformName string, pairs []TablePair, panels [][]metrics.Series) []metrics.RatioTable {
	var out []metrics.RatioTable
	for _, pair := range pairs {
		var pooled []metrics.RatioPair
		for _, panel := range panels {
			var a, b *metrics.Series
			for i := range panel {
				switch panel[i].Label {
				case pair.A:
					a = &panel[i]
				case pair.B:
					b = &panel[i]
				}
			}
			if a == nil || b == nil {
				continue
			}
			pooled = append(pooled, metrics.PairsFromSeries(*a, *b)...)
		}
		table, err := metrics.BuildRatioTable(platformName, pair.A, pair.B, pooled)
		if err != nil {
			continue
		}
		out = append(out, table)
	}
	return out
}
