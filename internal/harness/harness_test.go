package harness_test

import (
	"bytes"
	"strings"
	"testing"

	_ "repro/internal/dynamic"
	"repro/internal/harness"
	"repro/internal/metrics"
	_ "repro/internal/multiproc"
	_ "repro/internal/redismap"
	"repro/internal/workflows/galaxy"
)

func quickRunner(t *testing.T) *harness.Runner {
	t.Helper()
	r := &harness.Runner{}
	t.Cleanup(r.Close)
	return r
}

func TestRunExperimentGalaxyQuick(t *testing.T) {
	s := harness.QuickScale()
	r := quickRunner(t)
	exp := harness.Fig8(s)[0] // 1X standard on server
	exp.Techniques = []string{"multi", "dyn_multi", "dyn_auto_multi"}
	series, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series: %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Errorf("%s has %d points, want 2", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Runtime <= 0 || p.ProcessTime <= 0 || p.Outputs == 0 {
				t.Errorf("%s: bad point %+v", s.Label, p)
			}
		}
	}
	// Render the panel without error.
	text := metrics.RenderSeries(exp.Title, series)
	if !strings.Contains(text, "multi") || !strings.Contains(text, "procs") {
		t.Errorf("render: %q", text)
	}
	csv := metrics.CSV(series)
	if !strings.Contains(csv, "galaxy,multi,server,4") {
		t.Errorf("csv: %q", csv)
	}
}

func TestRunExperimentSkipsBelowStaticMinimum(t *testing.T) {
	s := harness.QuickScale()
	r := quickRunner(t)
	var buf bytes.Buffer
	r.Out = &buf
	exp := harness.Fig12(s)[0] // sentiment on server: multi needs 14
	exp.Processes = []int{8, 14}
	exp.Techniques = []string{"multi"}
	series, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 1 {
		t.Fatalf("series: %+v", series)
	}
	if series[0].Points[0].Processes != 14 {
		t.Errorf("surviving point: %+v", series[0].Points[0])
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Error("skip not reported")
	}
}

func TestRunExperimentRedisTechniques(t *testing.T) {
	s := harness.QuickScale()
	r := quickRunner(t)
	e := harness.Fig8(s)[0]
	e.Techniques = []string{"dyn_redis", "hybrid_redis"}
	e.Processes = []int{4}
	series, err := r.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range series {
		if len(sr.Points) != 1 {
			t.Errorf("%s: %+v", sr.Label, sr.Points)
		}
	}
}

func TestRunTraceProducesPoints(t *testing.T) {
	s := harness.QuickScale()
	r := quickRunner(t)
	for _, e := range harness.Fig13(s)[:2] { // one multi, one redis panel
		trace, rep, err := r.RunTrace(e)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if rep.Outputs == 0 {
			t.Errorf("%s: no outputs", e.ID)
		}
		if len(trace.Points()) == 0 {
			t.Errorf("%s: empty trace", e.ID)
		}
		text := harness.RenderTrace(e.Title, trace)
		if !strings.Contains(text, "iteration") {
			t.Errorf("%s render: %q", e.ID, text)
		}
		csv := harness.TraceCSV(trace)
		if !strings.HasPrefix(csv, "iteration,active,metric\n") {
			t.Errorf("%s csv: %q", e.ID, csv)
		}
	}
}

func TestBuildTablesPoolsPanels(t *testing.T) {
	s := harness.QuickScale()
	r := quickRunner(t)
	exp := harness.Fig8(s)[0]
	exp.Techniques = []string{"dyn_multi", "dyn_auto_multi"}
	series, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	tables := harness.BuildTables("server", harness.Table1Pairs, [][]metrics.Series{series})
	// Only the multi pair can be built (no redis series in the panel).
	if len(tables) != 1 {
		t.Fatalf("tables: %+v", tables)
	}
	tb := tables[0]
	if tb.A != "dyn_auto_multi" || tb.B != "dyn_multi" || tb.N != 2 {
		t.Errorf("table: %+v", tb)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("rows: %+v", tb.Rows)
	}
	rendered := tb.Render()
	if !strings.Contains(rendered, "runtime ratio") || !strings.Contains(rendered, "[mean, std]") {
		t.Errorf("render: %q", rendered)
	}
}

func TestCatalogShapes(t *testing.T) {
	full := harness.FullScale()
	if len(harness.Fig8(full)) != 3 || len(harness.Fig9(full)) != 3 || len(harness.Fig10(full)) != 3 {
		t.Error("galaxy figures must have 3 panels each")
	}
	if len(harness.Fig11(full)) != 3 {
		t.Error("fig11 must have 3 panels")
	}
	if len(harness.Fig12(full)) != 2 {
		t.Error("fig12 must have 2 panels")
	}
	if len(harness.Fig13(full)) != 6 {
		t.Error("fig13 must have 6 panels")
	}
	for _, e := range harness.Fig10(full) {
		for _, tech := range e.Techniques {
			if strings.Contains(tech, "redis") {
				t.Errorf("%s: redis technique %s on HPC", e.ID, tech)
			}
		}
	}
	// MakeGraph must return fresh graphs.
	e := harness.Fig8(full)[0]
	if e.MakeGraph() == e.MakeGraph() {
		t.Error("MakeGraph must build a fresh graph per call")
	}
}

func TestFullScaleMatchesPaperParameters(t *testing.T) {
	s := harness.FullScale()
	if s.GalaxyBase != 100 {
		t.Error("1X workload is 100 galaxies")
	}
	if s.Stations != 50 {
		t.Error("seismic input is 50 stations")
	}
	if got := s.ServerProcs; len(got) != 4 || got[0] != 4 || got[3] != 16 {
		t.Errorf("server sweep: %v", got)
	}
	if got := s.HPCProcs; got[len(got)-1] != 64 {
		t.Errorf("hpc sweep: %v", got)
	}
	if got := s.SentimentProcs; got[0] != 8 || got[len(got)-1] != 16 {
		t.Errorf("sentiment sweep: %v", got)
	}
}

// Silence unused-import style complaints for galaxy (used via catalog).
var _ = galaxy.BaseGalaxies
