// Package harness defines and runs the paper's evaluation: every figure and
// table of Section 5 is encoded as an Experiment (workflow × platform ×
// technique set × process sweep), executed against the simulated platforms
// and the embedded mini-Redis server, and rendered as aligned text series,
// CSV, and the paper's ratio tables.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/miniredis"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// Experiment is one evaluation panel (one subplot of a figure).
type Experiment struct {
	// ID names the experiment ("fig8-1x-std", ...).
	ID string
	// Title is the human-readable panel title.
	Title string
	// Platform is the simulated host.
	Platform platform.Platform
	// Techniques are the mapping names to sweep.
	Techniques []string
	// Processes is the process-count sweep.
	Processes []int
	// MakeGraph builds a fresh abstract workflow per run.
	MakeGraph func() *graph.Graph
	// Seed drives run determinism.
	Seed int64
	// Configure, when non-nil, adjusts the options of every run — the hook
	// the batching sweep uses to pin EmitBatch/PullBatch per experiment.
	Configure func(*mapping.Options)
}

// Runner executes experiments. It owns an embedded mini-Redis server,
// started lazily for the first Redis-backed technique.
type Runner struct {
	// Out receives progress and rendered results. Nil silences output.
	Out io.Writer
	// RedisOpDelay configures the embedded server's per-command service
	// delay (the Redis-weight ablation knob).
	RedisOpDelay time.Duration
	// RedisDispatchDelay configures the embedded servers' per-command delay
	// held under the dispatch lock — the per-shard bandwidth model the shard
	// sweep uses (see miniredis.Options.DispatchDelay).
	RedisDispatchDelay time.Duration
	// Shards is how many embedded Redis servers back the Redis techniques;
	// 0 or 1 means the classic single server. Runs receive all shard
	// addresses via Options.RedisAddrs (ring order = start order).
	Shards int
	// Repetitions averages each point over this many runs; 0 means 1.
	Repetitions int
	// Telemetry, when non-nil, is handed to every run so the whole suite
	// accumulates into one registry (counters and histograms sum across
	// runs; gauge sources re-register per run).
	Telemetry *telemetry.Registry
	// Diag, when non-nil, is handed to every run so diagnosis accumulates
	// like the registry: flow-ledger rows and journal entries sum across the
	// suite's runs.
	Diag *diagnosis.Diag

	redis []*miniredis.Server
}

// Close shuts down the embedded Redis servers if any were started.
func (r *Runner) Close() {
	for _, srv := range r.redis {
		srv.Close()
	}
	r.redis = nil
}

func (r *Runner) printf(format string, args ...any) {
	if r.Out != nil {
		fmt.Fprintf(r.Out, format, args...)
	}
}

func (r *Runner) redisAddrs() ([]string, error) {
	n := r.Shards
	if n <= 0 {
		n = 1
	}
	for len(r.redis) < n {
		srv := miniredis.NewServer(miniredis.Options{
			OpDelay:       r.RedisOpDelay,
			DispatchDelay: r.RedisDispatchDelay,
		})
		if err := srv.Start(); err != nil {
			return nil, err
		}
		r.redis = append(r.redis, srv)
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = r.redis[i].Addr()
	}
	return addrs, nil
}

// setRedis wires the shard addresses into a run's options: RedisAddrs
// carries the ring, RedisAddr keeps the first shard for anything still
// reading the single-server field.
func setRedis(opts *mapping.Options, addrs []string) {
	opts.RedisAddr = addrs[0]
	opts.RedisAddrs = addrs
}

// needsRedis reports whether a technique runs against Redis.
func needsRedis(technique string) bool {
	return strings.Contains(technique, "redis")
}

// skippable reports whether an execution error is a legitimate
// configuration gap (static mapping below its process minimum) rather than
// a failure. The paper's plots have exactly these holes (multi starts at 12
// on seismic and 14 on sentiment).
func skippable(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "needs at least") || strings.Contains(msg, "at least")
}

// RunExperiment sweeps all techniques over all process counts and returns
// one series per technique.
func (r *Runner) RunExperiment(e Experiment) ([]metrics.Series, error) {
	reps := r.Repetitions
	if reps <= 0 {
		reps = 1
	}
	var out []metrics.Series
	for _, tech := range e.Techniques {
		m, err := mapping.Get(tech)
		if err != nil {
			return nil, fmt.Errorf("harness %s: %w", e.ID, err)
		}
		series := metrics.Series{Label: tech}
		for _, procs := range e.Processes {
			var acc metrics.Report
			skipped := false
			for rep := 0; rep < reps; rep++ {
				opts := mapping.Options{
					Processes: procs,
					Platform:  e.Platform,
					Seed:      e.Seed + int64(rep),
					Telemetry: r.Telemetry,
					Diagnosis: r.Diag,
				}
				if needsRedis(tech) {
					addrs, err := r.redisAddrs()
					if err != nil {
						return nil, fmt.Errorf("harness %s: start redis: %w", e.ID, err)
					}
					setRedis(&opts, addrs)
				}
				if e.Configure != nil {
					e.Configure(&opts)
				}
				rep, err := m.Execute(e.MakeGraph(), opts)
				if err != nil {
					if skippable(err) {
						skipped = true
						break
					}
					return nil, fmt.Errorf("harness %s: %s procs=%d: %w", e.ID, tech, procs, err)
				}
				acc.Workflow = rep.Workflow
				acc.Mapping = rep.Mapping
				acc.Platform = rep.Platform
				acc.Processes = rep.Processes
				acc.Runtime += rep.Runtime
				acc.ProcessTime += rep.ProcessTime
				acc.Tasks += rep.Tasks
				acc.Outputs += rep.Outputs
				// Store-op counts are deterministic per configuration, so the
				// last repetition's counters stand for the point.
				acc.State = rep.State
			}
			if skipped {
				r.printf("  %-16s procs=%-3d skipped (below static minimum)\n", tech, procs)
				continue
			}
			acc.Runtime /= time.Duration(reps)
			acc.ProcessTime /= time.Duration(reps)
			acc.Tasks /= int64(reps)
			acc.Outputs /= int64(reps)
			series.Points = append(series.Points, acc)
			r.printf("  %s\n", acc)
		}
		series.Sort()
		out = append(out, series)
	}
	return out, nil
}

// TraceExperiment is one auto-scaler trace panel (Figure 13).
type TraceExperiment struct {
	// ID and Title label the panel.
	ID, Title string
	// Technique is dyn_auto_multi or dyn_auto_redis.
	Technique string
	// Platform is the simulated host.
	Platform platform.Platform
	// Processes is the worker budget (the max pool size).
	Processes int
	// MakeGraph builds the workflow.
	MakeGraph func() *graph.Graph
	// Seed drives determinism.
	Seed int64
}

// RunTrace executes the experiment and returns the recorded trace.
func (r *Runner) RunTrace(e TraceExperiment) (*autoscale.Trace, metrics.Report, error) {
	m, err := mapping.Get(e.Technique)
	if err != nil {
		return nil, metrics.Report{}, err
	}
	trace := &autoscale.Trace{}
	opts := mapping.Options{
		Processes: e.Processes,
		Platform:  e.Platform,
		Seed:      e.Seed,
		Trace:     trace,
		Telemetry: r.Telemetry,
		Diagnosis: r.Diag,
	}
	if needsRedis(e.Technique) {
		addrs, err := r.redisAddrs()
		if err != nil {
			return nil, metrics.Report{}, err
		}
		setRedis(&opts, addrs)
	}
	rep, err := m.Execute(e.MakeGraph(), opts)
	if err != nil {
		return nil, metrics.Report{}, fmt.Errorf("harness %s: %w", e.ID, err)
	}
	return trace, rep, nil
}

// RenderTrace formats a trace as the Figure 13 data series: iteration,
// active process count, and the monitored metric.
func RenderTrace(title string, trace *autoscale.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-8s %s\n", "iteration", "active", "metric")
	pts := trace.Points()
	// Long traces are downsampled for readability; the CSV keeps all points.
	step := 1
	if len(pts) > 60 {
		step = len(pts) / 60
	}
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Fprintf(&b, "%-10d %-8d %.1f\n", p.Iteration, p.Active, p.Metric)
	}
	fmt.Fprintf(&b, "(%d points total)\n", len(pts))
	return b.String()
}

// TraceCSV renders all trace points as CSV.
func TraceCSV(trace *autoscale.Trace) string {
	var b strings.Builder
	b.WriteString("iteration,active,metric\n")
	for _, p := range trace.Points() {
		fmt.Fprintf(&b, "%d,%d,%.3f\n", p.Iteration, p.Active, p.Metric)
	}
	return b.String()
}
