package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/synth"
)

func init() {
	codec.Register(synth.SessionEvent{})
	codec.Register(synth.SessionUpdate{})
}

// OpenLoopConfig describes one open-loop run: a paced source offers events
// at a fixed target rate for a fixed duration regardless of how fast the
// system drains them — unlike the closed-loop figure experiments, whose
// sources emit as fast as the pipeline admits and therefore can't expose
// steady-state latency or the throughput wall.
type OpenLoopConfig struct {
	// Mapping is the technique under test (default dyn_redis).
	Mapping string
	// Workload selects the pipeline shape: "session" (zipfian-keyed
	// sessionization over managed keyed state, the high-cardinality stateful
	// shape) or "relay" (stateless pass-through, isolating transport+codec).
	Workload string
	// Processes is the worker count (default 8).
	Processes int
	// Rate is the offered arrival rate in events/second (default 1000).
	Rate float64
	// Duration is how long the source offers load (default 30s).
	Duration time.Duration
	// Users is the zipfian key-space cardinality (default 100000).
	Users int
	// Skew is the zipf s parameter (default 1.1).
	Skew float64
	// LatencyBound is the p99 ceiling a sustainable run must hold
	// (default 1s).
	LatencyBound time.Duration
	// Seed drives determinism of keys and actions (not of pacing).
	Seed int64
	// StateCoalesce switches on per-shard AddInt group commit in the run's
	// state backend (mapping.Options.StateCoalesce) — the sessionize hot
	// path's batching lever.
	StateCoalesce bool
}

// withDefaults fills the zero fields.
func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Mapping == "" {
		c.Mapping = "dyn_redis"
	}
	if c.Workload == "" {
		c.Workload = "session"
	}
	if c.Processes <= 0 {
		c.Processes = 8
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Users <= 0 {
		c.Users = 100_000
	}
	if c.Skew == 0 {
		c.Skew = 1.1
	}
	if c.LatencyBound <= 0 {
		c.LatencyBound = time.Second
	}
	return c
}

// OpenLoopPoint is the measured result of one open-loop run.
type OpenLoopPoint struct {
	// Workload, Mapping, Processes identify the configuration.
	Workload  string
	Mapping   string
	Processes int
	// TargetRate is the configured arrival rate; OfferedRate is what the
	// pacer actually achieved (it falls below target when emission itself
	// backpressures — already a sign the rate is past the wall).
	TargetRate  float64
	OfferedRate float64
	// DeliveredRate is end-to-end throughput: delivered / (generation +
	// drain time).
	DeliveredRate float64
	// Offered and Delivered count events in and updates out.
	Offered   int64
	Delivered int64
	// GenSeconds is the time the source spent offering load; DrainSeconds is
	// how long past generation the run needed to finish what was in flight.
	GenSeconds   float64
	DrainSeconds float64
	// P50/P99/Max are exact-sample emission→delivery latencies.
	P50 time.Duration
	P99 time.Duration
	Max time.Duration
	// Sustainable: the pacer held ≥95% of the target rate, p99 stayed under
	// the latency bound, and the backlog at end-of-generation drained in
	// ≤ max(duration/10, 1s) — i.e. the system was keeping up, not queueing.
	Sustainable bool
	// Verdict is the bottleneck attribution after this run, when the runner
	// carries a Diag. With a shared Diag the ledger accumulates across the
	// sweep, so each point's verdict reflects the ladder so far — dominated
	// by the current (highest-rate) run, which offers the most tasks.
	Verdict *diagnosis.Verdict `json:",omitempty"`
}

func (p OpenLoopPoint) String() string {
	return fmt.Sprintf("%-8s %-10s procs=%-3d target=%7.0f/s offered=%7.0f/s delivered=%7.0f/s p50=%-9v p99=%-9v drain=%5.2fs sustainable=%v",
		p.Workload, p.Mapping, p.Processes, p.TargetRate, p.OfferedRate, p.DeliveredRate, p.P50, p.P99, p.DrainSeconds, p.Sustainable)
}

// olCollector accumulates the open-loop measurements across workers. The
// mappings run workers as goroutines of this process, so a shared collector
// reaches every PE instance regardless of transport.
type olCollector struct {
	offered   atomic.Int64
	delivered atomic.Int64
	genStart  atomic.Int64 // UnixNano of first offered event
	genEnd    atomic.Int64 // UnixNano when the source stopped offering

	mu      sync.Mutex
	samples []int64 // emission→delivery latency, nanoseconds
}

func (c *olCollector) observe(lat int64) {
	c.delivered.Add(1)
	c.mu.Lock()
	c.samples = append(c.samples, lat)
	c.mu.Unlock()
}

// sorted returns the latency samples sorted ascending.
func (c *olCollector) sorted() []int64 {
	c.mu.Lock()
	out := make([]int64, len(c.samples))
	copy(out, c.samples)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func percentileNanos(sorted []int64, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx])
}

// openLoopGraph builds source → sessionize → deliver. The source paces an
// absolute schedule (tick i fires at start + i·interval): when emission or
// scheduling falls behind it bursts to catch up rather than silently
// stretching the schedule, which is what makes the offered load open-loop.
func openLoopGraph(cfg OpenLoopConfig, col *olCollector) *graph.Graph {
	g := graph.New("openloop_" + cfg.Workload)
	g.Add(func() core.PE {
		return core.NewSource("events", func(ctx *core.Context) error {
			gen := synth.NewSessionGen(cfg.Seed, cfg.Users, cfg.Skew)
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			start := time.Now()
			col.genStart.Store(start.UnixNano())
			for i := 0; ; i++ {
				next := start.Add(time.Duration(i) * interval)
				now := time.Now()
				if now.Before(next) {
					time.Sleep(next.Sub(now))
					now = time.Now()
				}
				if now.Sub(start) >= cfg.Duration {
					break
				}
				ev := gen.Next()
				ev.At = time.Now().UnixNano()
				col.offered.Add(1)
				if err := ctx.EmitDefault(ev); err != nil {
					return err
				}
			}
			col.genEnd.Store(time.Now().UnixNano())
			return nil
		})
	})
	if cfg.Workload == "relay" {
		g.Add(func() core.PE {
			return core.NewMap("sessionize", func(ctx *core.Context, v any) (any, error) {
				ev, ok := v.(synth.SessionEvent)
				if !ok {
					return nil, fmt.Errorf("relay: unexpected payload %T", v)
				}
				return synth.SessionUpdate{User: ev.User, Count: 1, At: ev.At}, nil
			})
		})
	} else {
		g.Add(func() core.PE {
			return core.NewEach("sessionize", func(ctx *core.Context, v any) error {
				ev, ok := v.(synth.SessionEvent)
				if !ok {
					return fmt.Errorf("sessionize: unexpected payload %T", v)
				}
				n, err := ctx.State().AddInt(ev.User, 1)
				if err != nil {
					return err
				}
				return ctx.EmitDefault(synth.SessionUpdate{User: ev.User, Count: n, At: ev.At})
			})
		}).SetKeyedState()
	}
	g.Add(func() core.PE {
		return core.NewSink("deliver", func(ctx *core.Context, v any) error {
			u, ok := v.(synth.SessionUpdate)
			if !ok {
				return fmt.Errorf("deliver: unexpected payload %T", v)
			}
			col.observe(time.Now().UnixNano() - u.At)
			return nil
		})
	})
	events := g.Pipe("events", "sessionize")
	if cfg.Workload != "relay" {
		// Managed keyed state requires key-affine routing: all of one user's
		// events land on the same sessionize instance.
		events.SetGrouping(graph.GroupByKey(func(v any) string { return v.(synth.SessionEvent).User }))
	}
	g.Pipe("sessionize", "deliver")
	return g
}

// RunOpenLoop executes one open-loop run and reduces it to a point.
func (r *Runner) RunOpenLoop(cfg OpenLoopConfig) (OpenLoopPoint, error) {
	cfg = cfg.withDefaults()
	m, err := mapping.Get(cfg.Mapping)
	if err != nil {
		return OpenLoopPoint{}, err
	}
	col := &olCollector{}
	g := openLoopGraph(cfg, col)
	opts := mapping.Options{
		Processes:     cfg.Processes,
		Platform:      platform.Server,
		Seed:          cfg.Seed,
		Telemetry:     r.Telemetry,
		Diagnosis:     r.Diag,
		StateCoalesce: cfg.StateCoalesce,
	}
	if needsRedis(cfg.Mapping) {
		addrs, err := r.redisAddrs()
		if err != nil {
			return OpenLoopPoint{}, fmt.Errorf("openloop: start redis: %w", err)
		}
		setRedis(&opts, addrs)
	}
	if _, err := m.Execute(g, opts); err != nil {
		return OpenLoopPoint{}, fmt.Errorf("openloop %s %s @%.0f/s: %w", cfg.Workload, cfg.Mapping, cfg.Rate, err)
	}
	wallEnd := time.Now()

	p := OpenLoopPoint{
		Workload:   cfg.Workload,
		Mapping:    cfg.Mapping,
		Processes:  cfg.Processes,
		TargetRate: cfg.Rate,
		Offered:    col.offered.Load(),
		Delivered:  col.delivered.Load(),
	}
	genStart, genEnd := col.genStart.Load(), col.genEnd.Load()
	if genEnd > genStart && genStart > 0 {
		p.GenSeconds = time.Duration(genEnd - genStart).Seconds()
		p.DrainSeconds = wallEnd.Sub(time.Unix(0, genEnd)).Seconds()
	}
	if p.GenSeconds > 0 {
		p.OfferedRate = float64(p.Offered) / p.GenSeconds
	}
	if total := p.GenSeconds + p.DrainSeconds; total > 0 {
		p.DeliveredRate = float64(p.Delivered) / total
	}
	samples := col.sorted()
	p.P50 = percentileNanos(samples, 0.50)
	p.P99 = percentileNanos(samples, 0.99)
	p.Max = percentileNanos(samples, 1.0)

	drainBudget := (cfg.Duration / 10).Seconds()
	if drainBudget < 1 {
		drainBudget = 1
	}
	p.Sustainable = p.OfferedRate >= 0.95*cfg.Rate &&
		p.P99 > 0 && p.P99 <= cfg.LatencyBound &&
		p.DrainSeconds <= drainBudget
	if r.Diag != nil {
		v := r.Diag.Diagnose(r.Telemetry).Verdict
		p.Verdict = &v
	}
	r.printf("  %s\n", p)
	return p, nil
}

// OpenLoopSweep climbs a rate ladder and reports every measured point plus
// the highest sustainable rate. The climb stops at the first unsustainable
// rate — past the wall every higher rate only queues harder (and takes
// proportionally longer to drain), so the remaining ladder carries no
// information worth its wall-clock.
func (r *Runner) OpenLoopSweep(base OpenLoopConfig, rates []float64) ([]OpenLoopPoint, float64, error) {
	var pts []OpenLoopPoint
	max := 0.0
	for _, rate := range rates {
		cfg := base
		cfg.Rate = rate
		p, err := r.RunOpenLoop(cfg)
		if err != nil {
			return pts, max, err
		}
		pts = append(pts, p)
		if !p.Sustainable {
			break
		}
		if rate > max {
			max = rate
		}
	}
	return pts, max, nil
}

// RenderOpenLoop formats points as an aligned table.
func RenderOpenLoop(title string, pts []OpenLoopPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-10s %-6s %-9s %-9s %-11s %-10s %-10s %-10s %-8s %s\n",
		"workload", "mapping", "procs", "target/s", "offered/s", "delivered/s", "p50", "p99", "max", "drain_s", "sustainable")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8s %-10s %-6d %-9.0f %-9.0f %-11.0f %-10v %-10v %-10v %-8.2f %v\n",
			p.Workload, p.Mapping, p.Processes, p.TargetRate, p.OfferedRate, p.DeliveredRate, p.P50, p.P99, p.Max, p.DrainSeconds, p.Sustainable)
	}
	return b.String()
}

// OpenLoopCSV renders points as CSV.
func OpenLoopCSV(pts []OpenLoopPoint) string {
	var b strings.Builder
	b.WriteString("workload,mapping,processes,target_rate,offered_rate,delivered_rate,offered,delivered,gen_seconds,drain_seconds,p50_ms,p99_ms,max_ms,sustainable,bottleneck,stage\n")
	for _, p := range pts {
		bn, stage := "", ""
		if p.Verdict != nil {
			bn, stage = p.Verdict.Bottleneck, p.Verdict.Stage
		}
		fmt.Fprintf(&b, "%s,%s,%d,%.0f,%.2f,%.2f,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%v,%s,%s\n",
			p.Workload, p.Mapping, p.Processes, p.TargetRate, p.OfferedRate, p.DeliveredRate,
			p.Offered, p.Delivered, p.GenSeconds, p.DrainSeconds,
			float64(p.P50)/1e6, float64(p.P99)/1e6, float64(p.Max)/1e6, p.Sustainable, bn, stage)
	}
	return b.String()
}
