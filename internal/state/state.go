// Package state is the managed keyed-state subsystem: it externalizes PE
// state from struct fields into named Stores served by pluggable backends,
// which is what lets stateful PEs scale out, survive restarts, and run under
// dynamic scheduling.
//
// A Store is a keyed map of binary-safe string values living in a namespace.
// Managed-state nodes use one namespace per (workflow, PE): instances of the
// same PE share the namespace, and correctness at instances > 1 comes from
// one of two regimes:
//
//   - partitioned access — GroupBy routing guarantees each key is only
//     touched by its owner instance (static and hybrid mappings);
//   - shared atomic access — any worker may process any task because every
//     store mutation (Put/AddInt/Update) is atomic per key (dynamic
//     mappings, where tasks have no instance affinity).
//
// Two backends implement the contract: a lock-sharded in-memory backend for
// the in-process mappings, and a Redis backend (hashes via
// internal/redisclient) for the distributed ones. Both support durable
// checkpoints, so a killed run can be resumed from its last snapshot —
// "state as the unit of optimization and recovery".
package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Snapshot is a point-in-time copy of one namespace's entries.
type Snapshot map[string]string

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Store is one namespace of keyed state. Implementations are safe for
// concurrent use; Put, Delete, AddInt and Update are atomic per key.
type Store interface {
	// Namespace returns the store's namespace name.
	Namespace() string
	// Get fetches a key; ok=false when absent.
	Get(key string) (value string, ok bool, err error)
	// Put stores a key.
	Put(key, value string) error
	// Delete removes a key (absent keys are not an error).
	Delete(key string) error
	// Keys lists all keys in unspecified order.
	Keys() ([]string, error)
	// Len counts the entries.
	Len() (int, error)
	// AddInt atomically adds delta to an integer-valued key (absent keys
	// count as 0) and returns the new value. It is the fast path for keyed
	// aggregation: Redis serves it server-side as HINCRBY.
	AddInt(key string, delta int64) (int64, error)
	// Update atomically applies fn to the current value of key. fn receives
	// the value and whether it exists and returns the next value, keep=false
	// to delete the key, or an error to abort without writing.
	Update(key string, fn func(cur string, exists bool) (next string, keep bool, err error)) error
	// Snapshot copies the whole namespace.
	Snapshot() (Snapshot, error)
	// Restore replaces the namespace's content with the snapshot.
	Restore(Snapshot) error
	// Clear removes every entry.
	Clear() error
}

// Backend creates Stores and owns their durability: live namespaces plus one
// checkpoint slot per namespace.
type Backend interface {
	// Name labels the backend ("memory", "redis") in reports and benches.
	Name() string
	// Open returns the Store for a namespace, creating it when new. Opening
	// the same namespace twice returns handles onto the same data.
	Open(namespace string) (Store, error)
	// SaveCheckpoint durably replaces the namespace's checkpoint with snap.
	SaveCheckpoint(namespace string, snap Snapshot) error
	// LoadCheckpoint fetches the namespace's last checkpoint; ok=false when
	// none was ever saved.
	LoadCheckpoint(namespace string) (Snapshot, bool, error)
	// DropNamespace removes the namespace's live data and checkpoint.
	DropNamespace(namespace string) error
	// Ops reports the cumulative store-operation counters.
	Ops() metrics.StateOps
	// Close releases backend resources. Stores must not be used afterwards.
	Close() error
}

// Namespace derives the canonical per-PE namespace. It deliberately excludes
// the instance index: instances of one PE share a namespace (see the package
// comment), which is what makes keyed state rescalable and recoverable — a
// resumed run may use a different instance count.
func Namespace(workflow, pe string) string {
	return workflow + "/" + pe
}

// SortedKeys returns the store's keys in lexical order, for deterministic
// finalization sweeps. Applied-ledger entries of the exactly-once fence are
// skipped, so a Final sweep over a fenced (or fenced-then-resumed) namespace
// only ever sees workflow data.
func SortedKeys(st Store) ([]string, error) {
	keys, err := st.Keys()
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if !IsFenceKey(k) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Entry is one key/value pair of a sorted sweep.
type Entry struct {
	Key, Value string
}

// SortedEntries reads the whole namespace in one Snapshot (a single round
// trip on the Redis backend, versus Keys + one Get per key) and returns the
// entries in lexical key order — the efficient form of a Final flush.
func SortedEntries(st Store) ([]Entry, error) {
	snap, err := st.Snapshot()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(snap))
	for k, v := range snap {
		if IsFenceKey(k) {
			continue
		}
		out = append(out, Entry{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// --- Typed value helpers -----------------------------------------------------

// EncodeValue gob-encodes a value to a binary-safe string.
func EncodeValue[T any](v T) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return "", fmt.Errorf("state: encode %T: %w", v, err)
	}
	return buf.String(), nil
}

// DecodeValue decodes a string produced by EncodeValue.
func DecodeValue[T any](s string) (T, error) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader([]byte(s))).Decode(&v); err != nil {
		return v, fmt.Errorf("state: decode %T: %w", v, err)
	}
	return v, nil
}

// GetAs fetches and decodes a typed value.
func GetAs[T any](st Store, key string) (T, bool, error) {
	var zero T
	s, ok, err := st.Get(key)
	if err != nil || !ok {
		return zero, false, err
	}
	v, err := DecodeValue[T](s)
	if err != nil {
		return zero, false, err
	}
	return v, true, nil
}

// PutAs encodes and stores a typed value.
func PutAs[T any](st Store, key string, v T) error {
	s, err := EncodeValue(v)
	if err != nil {
		return err
	}
	return st.Put(key, s)
}

// UpdateAs atomically applies fn to the decoded current value of key (zero
// value when absent) and stores the encoded result.
func UpdateAs[T any](st Store, key string, fn func(cur T, exists bool) (T, error)) error {
	return st.Update(key, func(cur string, exists bool) (string, bool, error) {
		var v T
		if exists {
			var err error
			if v, err = DecodeValue[T](cur); err != nil {
				return "", false, err
			}
		}
		next, err := fn(v, exists)
		if err != nil {
			return "", false, err
		}
		enc, err := EncodeValue(next)
		if err != nil {
			return "", false, err
		}
		return enc, true, nil
	})
}

// --- Checkpointing -----------------------------------------------------------

// Checkpoint snapshots the store and saves the snapshot as the namespace's
// durable checkpoint on b.
func Checkpoint(b Backend, st Store) error {
	snap, err := st.Snapshot()
	if err != nil {
		return err
	}
	return b.SaveCheckpoint(st.Namespace(), snap)
}

// RestoreLatest loads the namespace's last checkpoint into the store,
// replacing its live content. It reports whether a checkpoint existed.
func RestoreLatest(b Backend, st Store) (bool, error) {
	snap, ok, err := b.LoadCheckpoint(st.Namespace())
	if err != nil || !ok {
		return false, err
	}
	return true, st.Restore(snap)
}

// CheckpointStore decorates a Store with automatic checkpointing: after
// every Interval mutations it persists a snapshot to the backend, bounding
// how much state a crash can lose. It implements Store.
type CheckpointStore struct {
	Store
	backend  Backend
	interval int

	// OnCheckpoint, when set, is called after each successful checkpoint
	// write — the diagnosis journal's checkpoint feed. It runs under the
	// checkpoint serialization lock, so it must not re-enter the store. Set
	// it before the store is shared across workers.
	OnCheckpoint func()

	mu        sync.Mutex
	mutations int
	// ckptMu serializes snapshot+save so concurrent workers cannot overwrite
	// a newer checkpoint with an older snapshot.
	ckptMu sync.Mutex
}

// NewCheckpointStore wraps st so that every interval-th mutation triggers a
// checkpoint to b. interval <= 0 means 1 (checkpoint on every mutation).
func NewCheckpointStore(st Store, b Backend, interval int) *CheckpointStore {
	if interval <= 0 {
		interval = 1
	}
	return &CheckpointStore{Store: st, backend: b, interval: interval}
}

// noteMutation counts one mutation and checkpoints when the interval is hit.
func (cs *CheckpointStore) noteMutation() error {
	cs.mu.Lock()
	cs.mutations++
	due := cs.mutations%cs.interval == 0
	cs.mu.Unlock()
	if !due {
		return nil
	}
	return cs.checkpoint()
}

// checkpoint snapshots and saves under ckptMu: each saved snapshot is taken
// after every earlier save completed, so the durable checkpoint never
// regresses past an acknowledged mutation.
func (cs *CheckpointStore) checkpoint() error {
	cs.ckptMu.Lock()
	defer cs.ckptMu.Unlock()
	if err := Checkpoint(cs.backend, cs.Store); err != nil {
		return err
	}
	if cs.OnCheckpoint != nil {
		cs.OnCheckpoint()
	}
	return nil
}

// Put implements Store.
func (cs *CheckpointStore) Put(key, value string) error {
	if err := cs.Store.Put(key, value); err != nil {
		return err
	}
	return cs.noteMutation()
}

// Delete implements Store.
func (cs *CheckpointStore) Delete(key string) error {
	if err := cs.Store.Delete(key); err != nil {
		return err
	}
	return cs.noteMutation()
}

// AddInt implements Store.
func (cs *CheckpointStore) AddInt(key string, delta int64) (int64, error) {
	n, err := cs.Store.AddInt(key, delta)
	if err != nil {
		return 0, err
	}
	return n, cs.noteMutation()
}

// FencedAddInt forwards the exactly-once fence's atomic record+apply to the
// wrapped store (both backends implement it), counting one mutation — so a
// checkpointing chain keeps the fence's atomicity instead of degrading to
// the two-operation fallback.
func (cs *CheckpointStore) FencedAddInt(ledgerField, key string, delta int64) (bool, int64, error) {
	fa, ok := cs.Store.(fencedAdder)
	if !ok {
		return false, 0, errNoFencedAdder
	}
	applied, n, err := fa.FencedAddInt(ledgerField, key, delta)
	if err != nil {
		return false, 0, err
	}
	return applied, n, cs.noteMutation()
}

// FencedPut forwards the atomic fenced set, counting one mutation.
func (cs *CheckpointStore) FencedPut(ledgerField, key, value string) (bool, error) {
	fm, ok := cs.Store.(fencedMutator)
	if !ok {
		return false, errNoFencedMutator
	}
	applied, err := fm.FencedPut(ledgerField, key, value)
	if err != nil {
		return false, err
	}
	return applied, cs.noteMutation()
}

// FencedDelete forwards the atomic fenced delete, counting one mutation.
func (cs *CheckpointStore) FencedDelete(ledgerField, key string) (bool, error) {
	fm, ok := cs.Store.(fencedMutator)
	if !ok {
		return false, errNoFencedMutator
	}
	applied, err := fm.FencedDelete(ledgerField, key)
	if err != nil {
		return false, err
	}
	return applied, cs.noteMutation()
}

// FencedUpdate forwards the atomic fenced read-modify-write, counting one
// mutation.
func (cs *CheckpointStore) FencedUpdate(ledgerField, key string, fn func(string, bool) (string, bool, error)) (bool, error) {
	fm, ok := cs.Store.(fencedMutator)
	if !ok {
		return false, errNoFencedMutator
	}
	applied, err := fm.FencedUpdate(ledgerField, key, fn)
	if err != nil {
		return false, err
	}
	return applied, cs.noteMutation()
}

// TaskGateRef implements TaskGater by forwarding to the wrapped store.
func (cs *CheckpointStore) TaskGateRef(tok Token) (hashKey, field string, ok bool) {
	if tg, ok := cs.Store.(TaskGater); ok {
		return tg.TaskGateRef(tok)
	}
	return "", "", false
}

// Update implements Store.
func (cs *CheckpointStore) Update(key string, fn func(string, bool) (string, bool, error)) error {
	if err := cs.Store.Update(key, fn); err != nil {
		return err
	}
	return cs.noteMutation()
}

// Clear implements Store; like every other mutation it advances the
// checkpoint, so a resume cannot resurrect cleared state.
func (cs *CheckpointStore) Clear() error {
	if err := cs.Store.Clear(); err != nil {
		return err
	}
	return cs.noteMutation()
}

// Restore implements Store, immediately re-checkpointing the restored
// content so the checkpoint slot tracks the live state.
func (cs *CheckpointStore) Restore(snap Snapshot) error {
	if err := cs.Store.Restore(snap); err != nil {
		return err
	}
	return cs.checkpoint()
}

var _ Store = (*CheckpointStore)(nil)
