package state

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
)

func coalesceClient(t *testing.T) *redisclient.Client {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	cl := redisclient.Dial(srv.Addr())
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return cl
}

// TestFlushAddsMergesIntoOneRoundTrip pins the group-commit mechanics
// deterministically: a batch with repeated and distinct fields costs exactly
// one pipeline round trip, lands the right totals server-side, and hands each
// op the exact intermediate value its arrival position produced.
func TestFlushAddsMergesIntoOneRoundTrip(t *testing.T) {
	cl := coalesceClient(t)
	if _, err := cl.HIncrBy("h", "a", 100); err != nil {
		t.Fatal(err)
	}

	mkOp := func(hash, field string, delta int64) addOp {
		return addOp{hash: hash, field: field, delta: delta, reply: make(chan addReply, 1)}
	}
	ops := []addOp{
		mkOp("h", "a", 1),
		mkOp("h", "b", 10),
		mkOp("h", "a", 2),
		mkOp("g", "a", 5),
		mkOp("h", "a", 3),
	}
	before := cl.Stats().RoundTrips
	flushAdds(cl, ops)
	if got := cl.Stats().RoundTrips - before; got != 1 {
		t.Fatalf("flushAdds cost %d round trips, want 1", got)
	}

	// Exact intermediate values in arrival order: h.a walks 101, 103, 106
	// (from its pre-batch 100); h.b and g.a see their own deltas.
	want := []int64{101, 10, 103, 5, 106}
	for i, op := range ops {
		r := <-op.reply
		if r.err != nil {
			t.Fatalf("op %d: %v", i, r.err)
		}
		if r.val != want[i] {
			t.Fatalf("op %d observed %d, want %d", i, r.val, want[i])
		}
	}
	if v, err := cl.HIncrBy("h", "a", 0); err != nil || v != 106 {
		t.Fatalf("server h.a = %d (%v), want 106", v, err)
	}
	if v, err := cl.HIncrBy("g", "a", 0); err != nil || v != 5 {
		t.Fatalf("server g.a = %d (%v), want 5", v, err)
	}
}

// TestCoalescedAddIntExactUnderConcurrency is the contract test for the
// sessionize hot path: many goroutines hammering one counter through the
// coalescer must each observe a distinct exact value — collectively a
// permutation of 1..N, exactly as if every increment had been its own
// HINCRBY — and fewer round trips than ops.
func TestCoalescedAddIntExactUnderConcurrency(t *testing.T) {
	cl := coalesceClient(t)
	b := NewRedisBackend(cl, "coal")
	b.EnableCoalescing()
	defer b.Close()
	st, err := b.Open("ns")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 8, 50
	vals := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v, err := st.AddInt("hot", 1)
				if err != nil {
					t.Error(err)
					return
				}
				vals[g] = append(vals[g], v)
			}
		}(g)
	}
	wg.Wait()

	var all []int64
	for _, vs := range vals {
		// Each goroutine's own increments must observe strictly increasing
		// values (it caused each of them).
		for i := 1; i < len(vs); i++ {
			if vs[i] <= vs[i-1] {
				t.Fatalf("goroutine observed non-increasing values %d then %d", vs[i-1], vs[i])
			}
		}
		all = append(all, vs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i+1) {
			t.Fatalf("observed values are not the permutation 1..%d: position %d holds %d", goroutines*perG, i, v)
		}
	}
	if trips := cl.Stats().RoundTrips; trips >= goroutines*perG {
		t.Fatalf("coalescing used %d round trips for %d ops; group commit is not merging", trips, goroutines*perG)
	}
}

// TestCoalescerCloseDegradesToDirect pins the shutdown path: after the
// backend closes the coalescer, AddInt still works via plain HIncrBy.
func TestCoalescerCloseDegradesToDirect(t *testing.T) {
	cl := coalesceClient(t)
	b := NewRedisBackend(cl, "coal2")
	b.EnableCoalescing()
	st, err := b.Open("ns")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddInt("k", 1); err != nil {
		t.Fatal(err)
	}
	b.coal.close()
	v, err := st.AddInt("k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("AddInt after close = %d, want 2", v)
	}
}
