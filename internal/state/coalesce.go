package state

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/redisclient"
)

// maxAddBatch bounds the ops merged into one group commit: large enough to
// absorb a whole pulled frame's worth of concurrent increments, small enough
// that a flush's pipeline stays a single write.
const maxAddBatch = 256

// laneDepth is the per-shard queue capacity. Senders block when the lane is
// this far ahead of the flusher — natural backpressure onto the hot path.
const laneDepth = 1024

// addOp is one caller's increment waiting in a shard lane.
type addOp struct {
	hash  string
	field string
	delta int64
	reply chan addReply
}

// addReply carries the caller's exact post-increment value.
type addReply struct {
	val int64
	err error
}

// coalescer group-commits unfenced AddInt ops per shard: all increments
// that arrive while a flush is in flight merge into the next one — one
// pipelined round trip carrying one HINCRBY per distinct (hash, field)
// instead of one round trip per call. This is the sessionize hot path's
// batching: under a zipfian key distribution most of a frame's increments
// hit a handful of hot keys, so the merge collapses them into single
// server-side adds.
//
// The trick is that AddInt's contract returns the caller's exact
// intermediate value, which a naive batch would destroy. The group commit
// preserves it: a batch's merged delta lands atomically per field (one
// HINCRBY under the server's dispatch lock), so the sequence of
// intermediate values is fully determined by the batch's arrival order —
// the flusher replays that order client-side from the final value and hands
// each caller the value its own delta produced. The interleaving is one of
// the serializations that could have happened unbatched; no caller can
// observe a value that skips its own delta.
type coalescer struct {
	mu     sync.RWMutex
	closed bool
	lanes  map[int]chan addOp
}

func newCoalescer() *coalescer {
	return &coalescer{lanes: map[int]chan addOp{}}
}

// addInt funnels one increment through the shard's lane and waits for its
// exact value. After close (or before a lane exists mid-close) it degrades
// to the direct single-op path.
func (c *coalescer) addInt(shard int, cl *redisclient.Client, hash, field string, delta int64) (int64, error) {
	op := addOp{hash: hash, field: field, delta: delta, reply: make(chan addReply, 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return cl.HIncrBy(hash, field, delta)
	}
	ch := c.lanes[shard]
	if ch == nil {
		c.mu.RUnlock()
		ch = c.lane(shard, cl)
		if ch == nil {
			return cl.HIncrBy(hash, field, delta)
		}
		c.mu.RLock()
		if c.closed {
			c.mu.RUnlock()
			return cl.HIncrBy(hash, field, delta)
		}
	}
	// Send under the read lock: close() takes the write lock before closing
	// lanes, so a send can never race a close.
	ch <- op
	c.mu.RUnlock()
	r := <-op.reply
	return r.val, r.err
}

// lane returns the shard's lane, starting its flusher on first use; nil
// when the coalescer is closed.
func (c *coalescer) lane(shard int, cl *redisclient.Client) chan addOp {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	ch := c.lanes[shard]
	if ch == nil {
		ch = make(chan addOp, laneDepth)
		c.lanes[shard] = ch
		go flushLane(cl, ch)
	}
	return ch
}

// close drains the lanes: flushers finish the ops already queued, then exit.
func (c *coalescer) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, ch := range c.lanes {
		close(ch)
	}
}

// flushLane is one shard's flusher: block for the first op, sweep whatever
// else is already queued, commit the merged batch, repeat.
func flushLane(cl *redisclient.Client, ch chan addOp) {
	ops := make([]addOp, 0, maxAddBatch)
	for {
		op, ok := <-ch
		if !ok {
			return
		}
		ops = append(ops[:0], op)
	sweep:
		for len(ops) < maxAddBatch {
			select {
			case more, ok := <-ch:
				if !ok {
					break sweep
				}
				ops = append(ops, more)
			default:
				break sweep
			}
		}
		flushAdds(cl, ops)
	}
}

// fieldRef identifies one HINCRBY target within a batch.
type fieldRef struct {
	hash  string
	field string
}

// flushAdds commits one merged batch — one HINCRBY per distinct field in a
// single pipeline — and serves each caller its exact intermediate value,
// reconstructed by replaying the batch's arrival order backwards from the
// server's post-batch value.
func flushAdds(cl *redisclient.Client, ops []addOp) {
	totals := make(map[fieldRef]int64, len(ops))
	order := make([]fieldRef, 0, len(ops))
	for _, op := range ops {
		ref := fieldRef{hash: op.hash, field: op.field}
		if _, seen := totals[ref]; !seen {
			order = append(order, ref)
		}
		totals[ref] += op.delta
	}
	cmds := make([][]string, len(order))
	for i, ref := range order {
		cmds[i] = []string{"HINCRBY", ref.hash, ref.field, strconv.FormatInt(totals[ref], 10)}
	}
	vals, err := cl.Pipeline(cmds)
	if err == nil && len(vals) != len(cmds) {
		err = fmt.Errorf("state: coalesced HINCRBY: %d replies for %d commands", len(vals), len(cmds))
	}
	if err != nil {
		for _, op := range ops {
			op.reply <- addReply{err: err}
		}
		return
	}
	// running[ref] walks from the field's pre-batch value back up through
	// each caller's delta in arrival order.
	running := make(map[fieldRef]int64, len(order))
	for i, ref := range order {
		running[ref] = vals[i].Int - totals[ref]
	}
	for _, op := range ops {
		ref := fieldRef{hash: op.hash, field: op.field}
		running[ref] += op.delta
		op.reply <- addReply{val: running[ref]}
	}
}
