package state_test

import (
	"errors"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/miniredis"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// armInj installs a process-global injector for one test; chaos tests must
// therefore not run in parallel.
func armInj(t *testing.T, faults ...faultinject.Fault) *faultinject.Injector {
	t.Helper()
	inj := faultinject.New(1)
	for _, f := range faults {
		inj.Schedule(f)
	}
	faultinject.Arm(inj)
	t.Cleanup(faultinject.Disarm)
	return inj
}

// TestFencedMutationsSurviveConnDrops: every fenced mutation shape on the
// Redis backend lands exactly once even when the reply to its compound
// command is lost and the client retries against a server that already
// executed it.
func TestFencedMutationsSurviveConnDrops(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dshard", shards), func(t *testing.T) {
			addrs := make([]string, shards)
			for i := range addrs {
				srv, err := miniredis.StartTestServer()
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				addrs[i] = srv.Addr()
			}
			b := state.DialRedisClusterBackend(addrs, "chaos")
			defer b.Close()

			// One namespace per shard count keeps a scope's gate, ledger and
			// state fields on a single shard (the co-location invariant), so
			// the lost-reply retry races one server, never two.
			st, err := b.Open("ns")
			if err != nil {
				t.Fatal(err)
			}
			fs := state.NewFencedStore(st)
			scope := fs.NewScope()

			// Drop the reply of every first FENCEAPPLY occurrence three times
			// over the run: each fenced write crosses the lost-reply window at
			// least once.
			armInj(t,
				faultinject.Fault{Probe: faultinject.ProbeConnRead, Cmd: "FENCEAPPLY", Hits: 1, Kind: faultinject.ConnDrop},
				faultinject.Fault{Probe: faultinject.ProbeConnRead, Cmd: "FENCEAPPLY", Hits: 3, Kind: faultinject.ConnDrop},
				faultinject.Fault{Probe: faultinject.ProbeConnRead, Cmd: "FENCEAPPLY", Hits: 5, Kind: faultinject.ConnDrop},
			)

			for seq := uint64(1); seq <= 4; seq++ {
				scope.SetToken(state.Token{Src: 1, Seq: seq})
				if _, err := scope.AddInt("sum", 10); err != nil {
					t.Fatal(err)
				}
				if err := scope.Put("last", strconv.FormatUint(seq, 10)); err != nil {
					t.Fatal(err)
				}
				if err := scope.Update("sq", func(cur string, exists bool) (string, bool, error) {
					n := int64(0)
					if exists {
						n, _ = strconv.ParseInt(cur, 10, 64)
					}
					return strconv.FormatInt(n+int64(seq), 10), true, nil
				}); err != nil {
					t.Fatal(err)
				}
				scope.ClearToken()
			}

			if n, _ := scope.AddInt("sum", 0); n != 40 {
				t.Fatalf("sum=%d want 40", n)
			}
			if v, _, _ := scope.Get("last"); v != "4" {
				t.Fatalf("last=%q want 4", v)
			}
			if v, _, _ := scope.Get("sq"); v != "10" {
				t.Fatalf("sq=%q want 10", v)
			}
			if err := scope.Delete("last"); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := scope.Get("last"); ok {
				t.Fatal("delete lost")
			}
		})
	}
}

// TestAfterRecordWindowClosed: on both built-in backends the record-then-
// apply crash window no longer exists — mutations ride one compound
// operation, so a kill scheduled between record and apply can never fire.
func TestAfterRecordWindowClosed(t *testing.T) {
	fenceBackends(t, func(t *testing.T, b state.Backend) {
		st, err := b.Open("ns")
		if err != nil {
			t.Fatal(err)
		}
		fs := state.NewFencedStore(st)
		scope := fs.NewScope()
		inj := armInj(t, faultinject.Fault{
			Probe: faultinject.ProbeAfterRecord, Kind: faultinject.Kill, Hits: 1,
		})

		scope.SetToken(state.Token{Src: 2, Seq: 9})
		defer scope.ClearToken()
		if err := scope.Put("k", "v"); err != nil {
			t.Fatal(err)
		}
		if _, err := scope.AddInt("n", 3); err != nil {
			t.Fatal(err)
		}
		if err := scope.Update("k", func(cur string, exists bool) (string, bool, error) {
			return cur + "!", true, nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := scope.Delete("n"); err != nil {
			t.Fatal(err)
		}
		if got := inj.FiredCount(faultinject.ProbeAfterRecord); got != 0 {
			t.Fatalf("after-record probe fired %d times on a built-in backend", got)
		}
	})
}

// bareStore strips the fenced fast path: it forwards only the base Store
// interface, modelling a third-party Store with no compound support.
type bareStore struct{ inner state.Store }

func (s bareStore) Namespace() string                       { return s.inner.Namespace() }
func (s bareStore) Get(k string) (string, bool, error)      { return s.inner.Get(k) }
func (s bareStore) Put(k, v string) error                   { return s.inner.Put(k, v) }
func (s bareStore) Delete(k string) error                   { return s.inner.Delete(k) }
func (s bareStore) Keys() ([]string, error)                 { return s.inner.Keys() }
func (s bareStore) Len() (int, error)                       { return s.inner.Len() }
func (s bareStore) AddInt(k string, d int64) (int64, error) { return s.inner.AddInt(k, d) }
func (s bareStore) Snapshot() (state.Snapshot, error)       { return s.inner.Snapshot() }
func (s bareStore) Restore(sn state.Snapshot) error         { return s.inner.Restore(sn) }
func (s bareStore) Clear() error                            { return s.inner.Clear() }
func (s bareStore) Update(k string, fn func(string, bool) (string, bool, error)) error {
	return s.inner.Update(k, fn)
}

// TestThirdPartyFallbackKeepsWindow documents the flip side: a Store without
// compound support falls back to record-then-apply, where the injected kill
// does land — and a retry of the same token is then (conservatively)
// dropped by the ledger record that survived.
func TestThirdPartyFallbackKeepsWindow(t *testing.T) {
	mb := state.NewMemoryBackend()
	defer mb.Close()
	st, err := mb.Open("ns")
	if err != nil {
		t.Fatal(err)
	}
	fs := state.NewFencedStore(bareStore{inner: st})
	scope := fs.NewScope()
	inj := armInj(t, faultinject.Fault{
		Probe: faultinject.ProbeAfterRecord, Kind: faultinject.Kill, Hits: 1,
	})

	scope.SetToken(state.Token{Src: 3, Seq: 1})
	defer scope.ClearToken()
	if err := scope.Put("k", "v"); !errors.Is(err, faultinject.ErrKill) {
		t.Fatalf("want ErrKill through the fallback window, got %v", err)
	}
	if got := inj.FiredCount(faultinject.ProbeAfterRecord); got != 1 {
		t.Fatalf("fallback probe fired %d times, want 1", got)
	}
	if _, ok, _ := scope.Get("k"); ok {
		t.Fatal("killed fallback applied its write")
	}
}

// TestMemoryFencedMutatorSemantics pins the memory backend's compound
// behavior: duplicate drops, and an Update whose fn errors leaves no ledger
// record so a retry can still apply.
func TestMemoryFencedMutatorSemantics(t *testing.T) {
	mb := state.NewMemoryBackend()
	defer mb.Close()
	st, err := mb.Open("ns")
	if err != nil {
		t.Fatal(err)
	}
	fs := state.NewFencedStore(st)
	drops := &telemetry.Counter{}
	fs.SetDropCounter(drops)
	scope := fs.NewScope()
	tok := state.Token{Src: 4, Seq: 1}

	boom := errors.New("boom")
	scope.SetToken(tok)
	if err := scope.Update("k", func(string, bool) (string, bool, error) {
		return "", false, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("fn error: %v", err)
	}
	scope.ClearToken()

	// The failed attempt must not have burned the token's ledger slots:
	// replaying the task applies cleanly.
	scope.SetToken(tok)
	if err := scope.Update("k", func(cur string, exists bool) (string, bool, error) {
		if exists {
			t.Fatalf("phantom value %q", cur)
		}
		return "ok", true, nil
	}); err != nil {
		t.Fatal(err)
	}
	scope.ClearToken()
	if v, _, _ := scope.Get("k"); v != "ok" {
		t.Fatalf("k=%q want ok", v)
	}

	// Duplicate delivery of the whole task: the mutation drops.
	if got := drops.Load(); got != 0 {
		t.Fatalf("premature drops: %d", got)
	}
	scope.SetToken(tok)
	if err := scope.Update("k", func(string, bool) (string, bool, error) {
		return "clobbered", true, nil
	}); err != nil {
		t.Fatal(err)
	}
	scope.ClearToken()
	if v, _, _ := scope.Get("k"); v != "ok" {
		t.Fatalf("duplicate applied: k=%q", v)
	}
	if got := drops.Load(); got != 1 {
		t.Fatalf("drops=%d want 1", got)
	}
}
