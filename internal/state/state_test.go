package state_test

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"testing"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
	"repro/internal/state"
)

// withBackends runs a subtest against both backend implementations.
func withBackends(t *testing.T, fn func(t *testing.T, b state.Backend)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) {
		b := state.NewMemoryBackend()
		defer b.Close()
		fn(t, b)
	})
	t.Run("redis", func(t *testing.T) {
		srv, err := miniredis.StartTestServer()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cl := redisclient.Dial(srv.Addr())
		defer cl.Close()
		b := state.NewRedisBackend(cl, "test")
		defer b.Close()
		fn(t, b)
	})
}

func TestStoreCRUD(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, err := b.Open(state.Namespace("wf", "pe"))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := st.Get("missing"); ok {
			t.Error("missing key reported present")
		}
		if err := st.Put("a", "1"); err != nil {
			t.Fatal(err)
		}
		if err := st.Put("b", "2"); err != nil {
			t.Fatal(err)
		}
		if v, ok, err := st.Get("a"); err != nil || !ok || v != "1" {
			t.Errorf("get a: %q %v %v", v, ok, err)
		}
		if n, err := st.Len(); err != nil || n != 2 {
			t.Errorf("len: %d %v", n, err)
		}
		keys, err := state.SortedKeys(st)
		if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
			t.Errorf("keys: %v %v", keys, err)
		}
		if err := st.Delete("a"); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := st.Get("a"); ok {
			t.Error("deleted key still present")
		}
		if err := st.Clear(); err != nil {
			t.Fatal(err)
		}
		if n, _ := st.Len(); n != 0 {
			t.Errorf("len after clear: %d", n)
		}
	})
}

func TestStoreBinaryValuesRoundTrip(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/bin")
		raw := string([]byte{0, 1, 2, 255, '\r', '\n', 0})
		if err := st.Put("k", raw); err != nil {
			t.Fatal(err)
		}
		if v, ok, err := st.Get("k"); err != nil || !ok || v != raw {
			t.Errorf("binary round trip failed: %q %v %v", v, ok, err)
		}
	})
}

func TestNamespaceIsolation(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		a, _ := b.Open("wf/a")
		c, _ := b.Open("wf/b")
		if err := a.Put("k", "from-a"); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := c.Get("k"); ok {
			t.Error("namespaces leaked")
		}
		// Re-opening a namespace sees the same data.
		a2, _ := b.Open("wf/a")
		if v, ok, _ := a2.Get("k"); !ok || v != "from-a" {
			t.Errorf("reopen lost data: %q %v", v, ok)
		}
	})
}

func TestAddIntConcurrent(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/counters")
		const workers, perWorker = 8, 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				key := fmt.Sprintf("k%d", w%3) // contend on 3 keys
				for i := 0; i < perWorker; i++ {
					if _, err := st.AddInt(key, 1); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		total := int64(0)
		keys, _ := st.Keys()
		for _, k := range keys {
			v, _, _ := st.Get(k)
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("non-integer counter %q", v)
			}
			total += n
		}
		if total != workers*perWorker {
			t.Errorf("lost increments: total=%d want %d", total, workers*perWorker)
		}
	})
}

func TestUpdateAtomicUnderContention(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/upd")
		const workers, perWorker = 6, 30
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					err := st.Update("shared", func(cur string, ok bool) (string, bool, error) {
						n := int64(0)
						if ok {
							var err error
							if n, err = strconv.ParseInt(cur, 10, 64); err != nil {
								return "", false, err
							}
						}
						return strconv.FormatInt(n+1, 10), true, nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		v, _, _ := st.Get("shared")
		if v != strconv.Itoa(workers*perWorker) {
			t.Errorf("update lost writes: %s want %d", v, workers*perWorker)
		}
	})
}

func TestUpdateDeleteAndError(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/ud")
		_ = st.Put("k", "v")
		// keep=false deletes.
		if err := st.Update("k", func(string, bool) (string, bool, error) { return "", false, nil }); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := st.Get("k"); ok {
			t.Error("update keep=false did not delete")
		}
		// fn error aborts without writing.
		_ = st.Put("k", "orig")
		wantErr := fmt.Errorf("nope")
		if err := st.Update("k", func(string, bool) (string, bool, error) { return "x", true, wantErr }); err == nil {
			t.Error("update error not propagated")
		}
		if v, _, _ := st.Get("k"); v != "orig" {
			t.Errorf("failed update wrote: %q", v)
		}
	})
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/snap")
		for i := 0; i < 10; i++ {
			_ = st.Put(fmt.Sprintf("k%d", i), strconv.Itoa(i*i))
		}
		snap, err := st.Snapshot()
		if err != nil || len(snap) != 10 {
			t.Fatalf("snapshot: %d entries, err=%v", len(snap), err)
		}
		_ = st.Clear()
		_ = st.Put("garbage", "1")
		if err := st.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := st.Get("garbage"); ok {
			t.Error("restore kept pre-existing key")
		}
		for i := 0; i < 10; i++ {
			v, ok, _ := st.Get(fmt.Sprintf("k%d", i))
			if !ok || v != strconv.Itoa(i*i) {
				t.Errorf("k%d after restore: %q %v", i, v, ok)
			}
		}
	})
}

func TestCheckpointRestoreAcrossStores(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		ns := state.Namespace("wf", "agg")
		st, _ := b.Open(ns)
		_ = st.Put("ohio", "42")
		_ = st.Put("texas", "7")
		if err := state.Checkpoint(b, st); err != nil {
			t.Fatal(err)
		}
		// Simulate the instance dying: its live namespace is dropped, then a
		// fresh store resumes from the checkpoint.
		_ = st.Clear()
		st2, _ := b.Open(ns)
		ok, err := state.RestoreLatest(b, st2)
		if err != nil || !ok {
			t.Fatalf("restore latest: %v %v", ok, err)
		}
		if v, _, _ := st2.Get("ohio"); v != "42" {
			t.Errorf("ohio after restore: %q", v)
		}
		if n, _ := st2.Len(); n != 2 {
			t.Errorf("restored %d entries, want 2", n)
		}
	})
}

func TestLoadCheckpointMissing(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		if _, ok, err := b.LoadCheckpoint("wf/never"); ok || err != nil {
			t.Errorf("missing checkpoint: ok=%v err=%v", ok, err)
		}
		st, _ := b.Open("wf/never")
		if ok, err := state.RestoreLatest(b, st); ok || err != nil {
			t.Errorf("restore from missing checkpoint: ok=%v err=%v", ok, err)
		}
	})
}

func TestEmptyCheckpointRepresentable(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/empty")
		if err := state.Checkpoint(b, st); err != nil {
			t.Fatal(err)
		}
		snap, ok, err := b.LoadCheckpoint("wf/empty")
		if err != nil || !ok || len(snap) != 0 {
			t.Errorf("empty checkpoint: snap=%v ok=%v err=%v", snap, ok, err)
		}
	})
}

func TestDropNamespaceRemovesLiveAndCheckpoint(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		ns := "wf/drop"
		st, _ := b.Open(ns)
		_ = st.Put("k", "v")
		_ = state.Checkpoint(b, st)
		if err := b.DropNamespace(ns); err != nil {
			t.Fatal(err)
		}
		st2, _ := b.Open(ns)
		if n, _ := st2.Len(); n != 0 {
			t.Error("live data survived drop")
		}
		if _, ok, _ := b.LoadCheckpoint(ns); ok {
			t.Error("checkpoint survived drop")
		}
	})
}

func TestCheckpointStoreAutoCheckpoints(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		raw, _ := b.Open("wf/auto")
		cs := state.NewCheckpointStore(raw, b, 3)
		for i := 0; i < 7; i++ { // checkpoints fire at mutations 3 and 6
			if _, err := cs.AddInt("n", 1); err != nil {
				t.Fatal(err)
			}
		}
		snap, ok, err := b.LoadCheckpoint("wf/auto")
		if err != nil || !ok {
			t.Fatalf("no auto checkpoint: %v %v", ok, err)
		}
		if snap["n"] != "6" {
			t.Errorf("checkpoint at %q, want \"6\" (last interval boundary)", snap["n"])
		}
		// Live state is ahead of the checkpoint by one mutation.
		if v, _, _ := cs.Get("n"); v != "7" {
			t.Errorf("live value %q, want \"7\"", v)
		}
	})
}

func TestTypedHelpers(t *testing.T) {
	type pos struct{ X, Y int }
	withBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("wf/typed")
		if err := state.PutAs(st, "p", pos{X: 3, Y: 4}); err != nil {
			t.Fatal(err)
		}
		got, ok, err := state.GetAs[pos](st, "p")
		if err != nil || !ok || got != (pos{3, 4}) {
			t.Errorf("GetAs: %+v %v %v", got, ok, err)
		}
		err = state.UpdateAs(st, "p", func(cur pos, exists bool) (pos, error) {
			if !exists {
				t.Error("UpdateAs lost existing value")
			}
			cur.X++
			return cur, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _, _ = state.GetAs[pos](st, "p")
		if got.X != 4 {
			t.Errorf("UpdateAs result: %+v", got)
		}
		if _, ok, _ := state.GetAs[pos](st, "missing"); ok {
			t.Error("GetAs on missing key reported present")
		}
	})
}

func TestOpsCountersAccumulate(t *testing.T) {
	withBackends(t, func(t *testing.T, b state.Backend) {
		before := b.Ops()
		st, _ := b.Open("wf/ops")
		_ = st.Put("a", "1")
		_, _, _ = st.Get("a")
		_, _ = st.AddInt("n", 2)
		_ = st.Update("a", func(string, bool) (string, bool, error) { return "2", true, nil })
		_ = st.Delete("a")
		_, _ = st.Keys()
		_, _ = st.Snapshot()
		_ = st.Restore(state.Snapshot{})
		_ = state.Checkpoint(b, st)
		d := b.Ops().Sub(before)
		if d.Puts != 1 || d.Gets != 1 || d.Adds != 1 || d.Updates != 1 || d.Deletes != 1 ||
			d.Lists != 1 || d.Snapshots != 2 || d.Restores != 1 || d.Checkpoints != 1 {
			t.Errorf("ops delta: %+v", d)
		}
	})
}

func TestSortedKeysDeterministic(t *testing.T) {
	b := state.NewMemoryBackend()
	defer b.Close()
	st, _ := b.Open("wf/sorted")
	for _, k := range []string{"zeta", "alpha", "mid"} {
		_ = st.Put(k, "1")
	}
	got, err := state.SortedKeys(st)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if !sort.StringsAreSorted(got) || len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Errorf("sorted keys: %v", got)
	}
}
