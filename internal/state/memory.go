package state

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/metrics"
)

// memShards is the lock-shard fan-out of one in-memory namespace. Sharding
// keeps concurrent keyed updates from different workers off a single mutex:
// two keys contend only when they hash to the same shard.
const memShards = 16

// MemoryBackend is the in-process state backend: lock-sharded maps per
// namespace plus an in-memory checkpoint slot per namespace. It serves the
// in-process mappings (simple, multi, dyn_multi, dyn_auto_multi) and tests.
type MemoryBackend struct {
	mu          sync.RWMutex
	namespaces  map[string]*memStore
	checkpoints map[string]Snapshot
	counter     metrics.StateCounter
	closed      bool
}

// NewMemoryBackend creates an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{
		namespaces:  make(map[string]*memStore),
		checkpoints: make(map[string]Snapshot),
	}
}

// Name implements Backend.
func (b *MemoryBackend) Name() string { return "memory" }

// Open implements Backend.
func (b *MemoryBackend) Open(namespace string) (Store, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("state: memory backend closed")
	}
	st, ok := b.namespaces[namespace]
	if !ok {
		st = newMemStore(namespace, &b.counter)
		b.namespaces[namespace] = st
	}
	return st, nil
}

// SaveCheckpoint implements Backend.
func (b *MemoryBackend) SaveCheckpoint(namespace string, snap Snapshot) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("state: memory backend closed")
	}
	b.checkpoints[namespace] = snap.Clone()
	b.counter.IncCheckpoint()
	return nil
}

// LoadCheckpoint implements Backend.
func (b *MemoryBackend) LoadCheckpoint(namespace string) (Snapshot, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	snap, ok := b.checkpoints[namespace]
	if !ok {
		return nil, false, nil
	}
	return snap.Clone(), true, nil
}

// DropNamespace implements Backend.
func (b *MemoryBackend) DropNamespace(namespace string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.namespaces, namespace)
	delete(b.checkpoints, namespace)
	return nil
}

// Ops implements Backend.
func (b *MemoryBackend) Ops() metrics.StateOps { return b.counter.Snapshot() }

// Close implements Backend.
func (b *MemoryBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.namespaces = make(map[string]*memStore)
	b.checkpoints = make(map[string]Snapshot)
	return nil
}

// memStore is one lock-sharded in-memory namespace.
type memStore struct {
	namespace string
	counter   *metrics.StateCounter
	shards    [memShards]memShard
}

type memShard struct {
	mu sync.Mutex
	m  map[string]string
}

func newMemStore(namespace string, counter *metrics.StateCounter) *memStore {
	st := &memStore{namespace: namespace, counter: counter}
	for i := range st.shards {
		st.shards[i].m = make(map[string]string)
	}
	return st
}

// shardIndexOf hashes a key onto its shard index with FNV-1a.
func shardIndexOf(key string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % memShards)
}

// shardOf returns the shard owning key.
func (st *memStore) shardOf(key string) *memShard {
	return &st.shards[shardIndexOf(key)]
}

// Namespace implements Store.
func (st *memStore) Namespace() string { return st.namespace }

// Get implements Store.
func (st *memStore) Get(key string) (string, bool, error) {
	st.counter.IncGet()
	sh := st.shardOf(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok, nil
}

// Put implements Store.
func (st *memStore) Put(key, value string) error {
	st.counter.IncPut()
	sh := st.shardOf(key)
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
	return nil
}

// Delete implements Store.
func (st *memStore) Delete(key string) error {
	st.counter.IncDelete()
	sh := st.shardOf(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return nil
}

// Keys implements Store.
func (st *memStore) Keys() ([]string, error) {
	st.counter.IncList()
	var keys []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys, nil
}

// Len implements Store.
func (st *memStore) Len() (int, error) {
	st.counter.IncList()
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n, nil
}

// AddInt implements Store.
func (st *memStore) AddInt(key string, delta int64) (int64, error) {
	st.counter.IncAdd()
	sh := st.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := int64(0)
	if s, ok := sh.m[key]; ok {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("state: AddInt on non-integer value %q of key %q", s, key)
		}
		cur = n
	}
	cur += delta
	sh.m[key] = strconv.FormatInt(cur, 10)
	return cur, nil
}

// FencedAddInt implements the fence's atomic fast path in process: the
// ledger check-and-record and the data increment happen under both shard
// locks at once (ordered by shard index to rule out lock cycles), so a
// racing duplicate execution can neither double-apply nor observe the gap
// between record and apply.
func (st *memStore) FencedAddInt(ledgerField, key string, delta int64) (bool, int64, error) {
	st.counter.IncAdd()
	li, di := shardIndexOf(ledgerField), shardIndexOf(key)
	la, da := &st.shards[li], &st.shards[di]
	first, second := la, da
	if li > di {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if second != first {
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	count := int64(0)
	if s, ok := la.m[ledgerField]; ok {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return false, 0, fmt.Errorf("state: fence ledger holds non-integer %q", s)
		}
		count = n
	}
	count++
	la.m[ledgerField] = strconv.FormatInt(count, 10)
	cur := int64(0)
	if s, ok := da.m[key]; ok {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return false, 0, fmt.Errorf("state: AddInt on non-integer value %q of key %q", s, key)
		}
		cur = n
	}
	if count > 1 {
		return false, cur, nil
	}
	cur += delta
	da.m[key] = strconv.FormatInt(cur, 10)
	return true, cur, nil
}

// Update implements Store. The shard stays locked for the duration of fn,
// making the read-modify-write atomic with respect to every other mutation
// of the key.
func (st *memStore) Update(key string, fn func(string, bool) (string, bool, error)) error {
	st.counter.IncUpdate()
	sh := st.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.m[key]
	next, keep, err := fn(cur, ok)
	if err != nil {
		return err
	}
	if !keep {
		delete(sh.m, key)
		return nil
	}
	sh.m[key] = next
	return nil
}

// Snapshot implements Store.
func (st *memStore) Snapshot() (Snapshot, error) {
	st.counter.IncSnapshot()
	snap := make(Snapshot)
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			snap[k] = v
		}
		sh.mu.Unlock()
	}
	return snap, nil
}

// Restore implements Store.
func (st *memStore) Restore(snap Snapshot) error {
	st.counter.IncRestore()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]string)
		sh.mu.Unlock()
	}
	for k, v := range snap {
		sh := st.shardOf(k)
		sh.mu.Lock()
		sh.m[k] = v
		sh.mu.Unlock()
	}
	return nil
}

// Clear implements Store.
func (st *memStore) Clear() error {
	st.counter.IncDelete()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]string)
		sh.mu.Unlock()
	}
	return nil
}

var (
	_ Store   = (*memStore)(nil)
	_ Backend = (*MemoryBackend)(nil)
)
