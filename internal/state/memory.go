package state

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/metrics"
)

// memShards is the lock-shard fan-out of one in-memory namespace. Sharding
// keeps concurrent keyed updates from different workers off a single mutex:
// two keys contend only when they hash to the same shard.
const memShards = 16

// MemoryBackend is the in-process state backend: lock-sharded maps per
// namespace plus an in-memory checkpoint slot per namespace. It serves the
// in-process mappings (simple, multi, dyn_multi, dyn_auto_multi) and tests.
type MemoryBackend struct {
	mu          sync.RWMutex
	namespaces  map[string]*memStore
	checkpoints map[string]Snapshot
	counter     metrics.StateCounter
	closed      bool
}

// NewMemoryBackend creates an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{
		namespaces:  make(map[string]*memStore),
		checkpoints: make(map[string]Snapshot),
	}
}

// Name implements Backend.
func (b *MemoryBackend) Name() string { return "memory" }

// Open implements Backend.
func (b *MemoryBackend) Open(namespace string) (Store, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("state: memory backend closed")
	}
	st, ok := b.namespaces[namespace]
	if !ok {
		st = newMemStore(namespace, &b.counter)
		b.namespaces[namespace] = st
	}
	return st, nil
}

// SaveCheckpoint implements Backend.
func (b *MemoryBackend) SaveCheckpoint(namespace string, snap Snapshot) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("state: memory backend closed")
	}
	b.checkpoints[namespace] = snap.Clone()
	b.counter.IncCheckpoint()
	return nil
}

// LoadCheckpoint implements Backend.
func (b *MemoryBackend) LoadCheckpoint(namespace string) (Snapshot, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	snap, ok := b.checkpoints[namespace]
	if !ok {
		return nil, false, nil
	}
	return snap.Clone(), true, nil
}

// DropNamespace implements Backend.
func (b *MemoryBackend) DropNamespace(namespace string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.namespaces, namespace)
	delete(b.checkpoints, namespace)
	return nil
}

// Ops implements Backend.
func (b *MemoryBackend) Ops() metrics.StateOps { return b.counter.Snapshot() }

// Close implements Backend.
func (b *MemoryBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.namespaces = make(map[string]*memStore)
	b.checkpoints = make(map[string]Snapshot)
	return nil
}

// memStore is one lock-sharded in-memory namespace.
type memStore struct {
	namespace string
	counter   *metrics.StateCounter
	shards    [memShards]memShard
}

type memShard struct {
	mu sync.Mutex
	m  map[string]string
}

func newMemStore(namespace string, counter *metrics.StateCounter) *memStore {
	st := &memStore{namespace: namespace, counter: counter}
	for i := range st.shards {
		st.shards[i].m = make(map[string]string)
	}
	return st
}

// shardIndexOf hashes a key onto its shard index with FNV-1a.
func shardIndexOf(key string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % memShards)
}

// shardOf returns the shard owning key.
func (st *memStore) shardOf(key string) *memShard {
	return &st.shards[shardIndexOf(key)]
}

// Namespace implements Store.
func (st *memStore) Namespace() string { return st.namespace }

// Get implements Store.
func (st *memStore) Get(key string) (string, bool, error) {
	st.counter.IncGet()
	sh := st.shardOf(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok, nil
}

// Put implements Store.
func (st *memStore) Put(key, value string) error {
	st.counter.IncPut()
	sh := st.shardOf(key)
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
	return nil
}

// Delete implements Store.
func (st *memStore) Delete(key string) error {
	st.counter.IncDelete()
	sh := st.shardOf(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return nil
}

// Keys implements Store.
func (st *memStore) Keys() ([]string, error) {
	st.counter.IncList()
	var keys []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys, nil
}

// Len implements Store.
func (st *memStore) Len() (int, error) {
	st.counter.IncList()
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n, nil
}

// AddInt implements Store.
func (st *memStore) AddInt(key string, delta int64) (int64, error) {
	st.counter.IncAdd()
	sh := st.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := int64(0)
	if s, ok := sh.m[key]; ok {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("state: AddInt on non-integer value %q of key %q", s, key)
		}
		cur = n
	}
	cur += delta
	sh.m[key] = strconv.FormatInt(cur, 10)
	return cur, nil
}

// lockPair locks the ledger field's and the data key's shards together
// (ordered by shard index to rule out lock cycles), returning both shards
// and the unlock. Everything done before unlock is one atomic section: the
// in-process analogue of a FENCEAPPLY compound command.
func (st *memStore) lockPair(ledgerField, key string) (la, da *memShard, unlock func()) {
	li, di := shardIndexOf(ledgerField), shardIndexOf(key)
	la, da = &st.shards[li], &st.shards[di]
	first, second := la, da
	if li > di {
		first, second = second, first
	}
	first.mu.Lock()
	if second == first {
		return la, da, first.mu.Unlock
	}
	second.mu.Lock()
	return la, da, func() {
		second.mu.Unlock()
		first.mu.Unlock()
	}
}

// ledgerCount reads the applied-ledger count under the caller's lock.
func ledgerCount(la *memShard, ledgerField string) (int64, error) {
	s, ok := la.m[ledgerField]
	if !ok {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("state: fence ledger holds non-integer %q", s)
	}
	return n, nil
}

// ledgerBump records one more execution in the applied ledger under the
// caller's lock, returning the pre-bump count (0 = first record, the
// mutation must be applied).
func ledgerBump(la *memShard, ledgerField string) (int64, error) {
	cnt, err := ledgerCount(la, ledgerField)
	if err != nil {
		return 0, err
	}
	la.m[ledgerField] = strconv.FormatInt(cnt+1, 10)
	return cnt, nil
}

// FencedAddInt implements the fence's atomic fast path in process: the
// ledger check-and-record and the data increment happen under both shard
// locks at once, so a racing duplicate execution can neither double-apply
// nor observe the gap between record and apply.
func (st *memStore) FencedAddInt(ledgerField, key string, delta int64) (bool, int64, error) {
	st.counter.IncAdd()
	la, da, unlock := st.lockPair(ledgerField, key)
	defer unlock()
	cnt, err := ledgerBump(la, ledgerField)
	if err != nil {
		return false, 0, err
	}
	cur := int64(0)
	if s, ok := da.m[key]; ok {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return false, 0, fmt.Errorf("state: AddInt on non-integer value %q of key %q", s, key)
		}
		cur = n
	}
	if cnt > 0 {
		return false, cur, nil
	}
	cur += delta
	da.m[key] = strconv.FormatInt(cur, 10)
	return true, cur, nil
}

// FencedPut implements fencedMutator: ledger record + set in one
// double-locked section.
func (st *memStore) FencedPut(ledgerField, key, value string) (bool, error) {
	st.counter.IncPut()
	la, da, unlock := st.lockPair(ledgerField, key)
	defer unlock()
	cnt, err := ledgerBump(la, ledgerField)
	if err != nil || cnt > 0 {
		return false, err
	}
	da.m[key] = value
	return true, nil
}

// FencedDelete implements fencedMutator: ledger record + delete in one
// double-locked section.
func (st *memStore) FencedDelete(ledgerField, key string) (bool, error) {
	st.counter.IncDelete()
	la, da, unlock := st.lockPair(ledgerField, key)
	defer unlock()
	cnt, err := ledgerBump(la, ledgerField)
	if err != nil || cnt > 0 {
		return false, err
	}
	delete(da.m, key)
	return true, nil
}

// FencedUpdate implements fencedMutator. A duplicate bumps the ledger and
// returns without invoking fn; an error from fn leaves no record, so a
// clean retry of the same delivery can re-run the update.
func (st *memStore) FencedUpdate(ledgerField, key string, fn func(string, bool) (string, bool, error)) (bool, error) {
	st.counter.IncUpdate()
	la, da, unlock := st.lockPair(ledgerField, key)
	defer unlock()
	cnt, err := ledgerCount(la, ledgerField)
	if err != nil {
		return false, err
	}
	if cnt > 0 {
		la.m[ledgerField] = strconv.FormatInt(cnt+1, 10)
		return false, nil
	}
	cur, ok := da.m[key]
	next, keep, err := fn(cur, ok)
	if err != nil {
		return false, err
	}
	la.m[ledgerField] = "1"
	if !keep {
		delete(da.m, key)
	} else {
		da.m[key] = next
	}
	return true, nil
}

// Update implements Store. The shard stays locked for the duration of fn,
// making the read-modify-write atomic with respect to every other mutation
// of the key.
func (st *memStore) Update(key string, fn func(string, bool) (string, bool, error)) error {
	st.counter.IncUpdate()
	sh := st.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.m[key]
	next, keep, err := fn(cur, ok)
	if err != nil {
		return err
	}
	if !keep {
		delete(sh.m, key)
		return nil
	}
	sh.m[key] = next
	return nil
}

// Snapshot implements Store.
func (st *memStore) Snapshot() (Snapshot, error) {
	st.counter.IncSnapshot()
	snap := make(Snapshot)
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			snap[k] = v
		}
		sh.mu.Unlock()
	}
	return snap, nil
}

// Restore implements Store.
func (st *memStore) Restore(snap Snapshot) error {
	st.counter.IncRestore()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]string)
		sh.mu.Unlock()
	}
	for k, v := range snap {
		sh := st.shardOf(k)
		sh.mu.Lock()
		sh.m[k] = v
		sh.mu.Unlock()
	}
	return nil
}

// Clear implements Store.
func (st *memStore) Clear() error {
	st.counter.IncDelete()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]string)
		sh.mu.Unlock()
	}
	return nil
}

var (
	_ Store   = (*memStore)(nil)
	_ Backend = (*MemoryBackend)(nil)
)
