package state_test

import (
	"testing"

	"repro/internal/miniredis"
	"repro/internal/state"
)

// fenceBackends runs a subtest against both backend kinds.
func fenceBackends(t *testing.T, run func(t *testing.T, b state.Backend)) {
	t.Run("memory", func(t *testing.T) {
		b := state.NewMemoryBackend()
		defer b.Close()
		run(t, b)
	})
	t.Run("redis", func(t *testing.T) {
		srv, err := miniredis.StartTestServer()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		b := state.DialRedisBackend(srv.Addr(), "fence")
		defer b.Close()
		run(t, b)
	})
}

// TestFenceDropsDuplicateExecutions is the core exactly-once property: the
// same delivery token applied twice (a replayed task raced by its original)
// mutates the store once, while distinct tokens — and distinct mutations
// within one execution — all apply.
func TestFenceDropsDuplicateExecutions(t *testing.T) {
	fenceBackends(t, func(t *testing.T, b state.Backend) {
		st, err := b.Open("ns")
		if err != nil {
			t.Fatal(err)
		}
		fs := state.NewFencedStore(st)
		scope := fs.NewScope()

		execute := func(tok state.Token) {
			// One task execution: two mutations on different keys.
			scope.SetToken(tok)
			defer scope.ClearToken()
			if _, err := scope.AddInt("hits", 1); err != nil {
				t.Fatal(err)
			}
			if err := scope.Put("last", "x"); err != nil {
				t.Fatal(err)
			}
		}
		execute(state.Token{Src: 7, Seq: 1})
		execute(state.Token{Src: 7, Seq: 1}) // duplicate delivery
		execute(state.Token{Src: 7, Seq: 2}) // distinct task

		if n, _ := scope.AddInt("hits", 0); n != 2 {
			t.Fatalf("hits = %d after {apply, duplicate, apply}, want 2", n)
		}

		// Unfenced scopes pass straight through.
		scope.ClearToken()
		if _, err := scope.AddInt("hits", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := scope.AddInt("hits", 1); err != nil {
			t.Fatal(err)
		}
		if n, _ := scope.AddInt("hits", 0); n != 4 {
			t.Fatalf("unfenced increments fenced: hits = %d, want 4", n)
		}
	})
}

// TestFenceDuplicateAddIntReturnsCurrentValue: a dropped duplicate increment
// still reports the key's present value, so PE code observing the return
// stays coherent.
func TestFenceDuplicateAddIntReturnsCurrentValue(t *testing.T) {
	fenceBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("ns")
		scope := state.NewFencedStore(st).NewScope()
		scope.SetToken(state.Token{Src: 1, Seq: 1})
		if n, err := scope.AddInt("k", 5); err != nil || n != 5 {
			t.Fatalf("first apply: n=%d err=%v", n, err)
		}
		scope.SetToken(state.Token{Src: 1, Seq: 1}) // replay of the same delivery
		if n, err := scope.AddInt("k", 5); err != nil || n != 5 {
			t.Fatalf("duplicate apply: n=%d err=%v, want current value 5", n, err)
		}
	})
}

// TestFenceHidesLedgerFromUserViews: the applied ledger must be invisible to
// Keys/Len/Snapshot through the scope and to the SortedKeys/SortedEntries
// helpers (the Final-flush path), while remaining present in the inner
// chain's snapshot — the durability view checkpoints are taken from.
func TestFenceHidesLedgerFromUserViews(t *testing.T) {
	fenceBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("ns")
		scope := state.NewFencedStore(st).NewScope()
		scope.SetToken(state.Token{Src: 3, Seq: 9})
		if err := scope.Put("data", "v"); err != nil {
			t.Fatal(err)
		}
		keys, err := scope.Keys()
		if err != nil || len(keys) != 1 || keys[0] != "data" {
			t.Fatalf("scope keys = %v (%v), want [data]", keys, err)
		}
		if n, _ := scope.Len(); n != 1 {
			t.Fatalf("scope len = %d, want 1", n)
		}
		snap, _ := scope.Snapshot()
		if len(snap) != 1 {
			t.Fatalf("scope snapshot = %v, want only workflow data", snap)
		}
		entries, err := state.SortedEntries(scope)
		if err != nil || len(entries) != 1 || entries[0].Key != "data" {
			t.Fatalf("SortedEntries = %v (%v)", entries, err)
		}
		sorted, err := state.SortedKeys(st)
		if err != nil || len(sorted) != 1 || sorted[0] != "data" {
			t.Fatalf("SortedKeys over the raw store = %v (%v), want ledger filtered", sorted, err)
		}
		inner, _ := st.Snapshot()
		if len(inner) != 2 {
			t.Fatalf("inner snapshot = %d entries, want data + ledger entry", len(inner))
		}
	})
}

// TestFenceSurvivesCheckpointRestore: the ledger rides the namespace through
// checkpoint and restore, so a resumed run (StateResume) still drops the
// updates the crashed run already applied — replaying the same deliveries
// against the restored state must leave it byte-identical.
func TestFenceSurvivesCheckpointRestore(t *testing.T) {
	fenceBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("ns")
		ckpt := state.NewCheckpointStore(st, b, 1)
		scope := state.NewFencedStore(ckpt).NewScope()

		scope.SetToken(state.Token{Src: 11, Seq: 4})
		if _, err := scope.AddInt("total", 10); err != nil {
			t.Fatal(err)
		}

		// Crash: a fresh store resumes from the checkpoint.
		st2, _ := b.Open("ns")
		if ok, err := state.RestoreLatest(b, st2); err != nil || !ok {
			t.Fatalf("restore: ok=%v err=%v", ok, err)
		}
		scope2 := state.NewFencedStore(st2).NewScope()
		scope2.SetToken(state.Token{Src: 11, Seq: 4}) // the same delivery, replayed
		if _, err := scope2.AddInt("total", 10); err != nil {
			t.Fatal(err)
		}
		v, ok, err := st2.Get("total")
		if err != nil || !ok || v != "10" {
			t.Fatalf("total = %q (%v, %v) after replay against restored state, want 10", v, ok, err)
		}
	})
}

// TestFenceFinalGate: AcquireTask admits a delivery's first execution only.
func TestFenceFinalGate(t *testing.T) {
	fenceBackends(t, func(t *testing.T, b state.Backend) {
		st, _ := b.Open("ns")
		scope := state.NewFencedStore(st).NewScope()
		tok := state.Token{Src: 21, Seq: 0}
		if first, err := scope.AcquireTask(tok); err != nil || !first {
			t.Fatalf("first acquire: %v %v", first, err)
		}
		if first, err := scope.AcquireTask(tok); err != nil || first {
			t.Fatalf("duplicate acquire admitted: %v %v", first, err)
		}
		// The zero token never gates (fencing off).
		if first, err := scope.AcquireTask(state.Token{}); err != nil || !first {
			t.Fatalf("zero-token acquire: %v %v", first, err)
		}
	})
}
