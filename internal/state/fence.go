package state

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Token identifies one fenced delivery: the task's provenance hash and its
// sequence number within that provenance (see codec.Task.Src/Seq). The zero
// token means "unfenced" — mutations pass straight through.
type Token struct {
	Src uint64
	Seq uint64
}

// IsZero reports whether the token carries no fencing identity.
func (t Token) IsZero() bool { return t.Src == 0 && t.Seq == 0 }

// fencePrefix marks applied-ledger entries inside a namespace. The leading
// NUL byte cannot collide with workflow keys produced by ordinary string
// handling, and keeping the ledger *inside* the namespace is what makes the
// fence durable for free: Snapshot/Restore and every checkpoint carry the
// ledger together with the data it guards, so a resumed run (StateResume)
// still drops updates the crashed run already applied.
const fencePrefix = "\x00fence:"

// IsFenceKey reports whether a state key belongs to the applied ledger
// rather than to workflow data. SortedKeys/SortedEntries skip such keys so
// Final flushes never observe fence bookkeeping.
func IsFenceKey(key string) bool { return strings.HasPrefix(key, fencePrefix) }

// fenceField builds the ledger key of one mutation: provenance, sequence and
// the mutation's index within the delivery's execution. The index is what
// admits several mutations from one execution while rejecting every mutation
// of a duplicate execution of the same delivery.
func fenceField(tok Token, mut uint64) string {
	return fencePrefix + strconv.FormatUint(tok.Src, 36) + ":" +
		strconv.FormatUint(tok.Seq, 36) + ":" + strconv.FormatUint(mut, 36)
}

// taskFenceField is the ledger key gating a whole delivery (Final hooks,
// whose effect is their emissions rather than store mutations).
func taskFenceField(tok Token) string {
	return fencePrefix + strconv.FormatUint(tok.Src, 36) + ":" +
		strconv.FormatUint(tok.Seq, 36) + ":task"
}

// fencedAdder is the atomic fast path a store may implement: record the
// ledger entry and apply the increment in one operation (the Redis store
// sends one FENCEAPPLY compound command, the memory store holds both shard
// locks; CheckpointStore forwards to whichever it wraps).
type fencedAdder interface {
	// FencedAddInt applies delta to key iff ledgerField was never recorded,
	// recording it. It returns whether the delta was applied and the key's
	// resulting value either way.
	FencedAddInt(ledgerField, key string, delta int64) (applied bool, n int64, err error)
}

// errNoFencedAdder reports that a forwarding wrapper's inner store has no
// atomic fenced-increment; the scope falls back to the two-operation path.
var errNoFencedAdder = errors.New("state: wrapped store implements no fenced AddInt")

// fencedMutator is the atomic compound path for the remaining mutation
// shapes: ledger record plus Put/Delete/Update in one indivisible operation.
// Both backends implement it (FENCEAPPLY on Redis, dual shard locks in
// memory); CheckpointStore and the instrumentation wrapper forward it, so a
// full store chain keeps the atomicity end to end.
type fencedMutator interface {
	// FencedPut sets key iff ledgerField was never recorded, recording it.
	FencedPut(ledgerField, key, value string) (applied bool, err error)
	// FencedDelete removes key iff ledgerField was never recorded, recording it.
	FencedDelete(ledgerField, key string) (applied bool, err error)
	// FencedUpdate runs the read-modify-write iff ledgerField was never
	// recorded; a duplicate returns applied=false without invoking fn.
	FencedUpdate(ledgerField, key string, fn func(cur string, exists bool) (next string, keep bool, err error)) (applied bool, err error)
}

// errNoFencedMutator reports that a forwarding wrapper's inner store has no
// atomic fenced mutations; the scope falls back to the two-operation path.
var errNoFencedMutator = errors.New("state: wrapped store implements no fenced mutations")

// TaskGater is implemented by stores that can name the storage-level address
// of a delivery's task gate — the (hash key, ledger field) pair a transport
// speaking to the same server can record inside an atomic output flush
// (SINKAPPEND). The address is only meaningful when transport and state share
// one server, which every Redis mapping in this repository does.
type TaskGater interface {
	TaskGateRef(tok Token) (hashKey, field string, ok bool)
}

// FencedStore guards one namespace's mutations against duplicate
// application under at-least-once replay. It wraps the namespace's store
// chain (the raw backend store, optionally inside a CheckpointStore, so
// ledger writes are checkpointed like data writes) and hands out per-worker
// Scopes; a Scope bound to a delivery token applies each mutation at most
// once across every execution of that delivery, dropping the rest.
//
// The ledger is exact — one entry per applied (delivery, mutation) — so
// out-of-order duplicate deliveries are caught without assuming ordered
// consumption. Entries live in the namespace itself (see fencePrefix) and
// are filtered from the user-facing key/snapshot views.
//
// Atomicity scope: every mutation shape records its ledger entry and
// applies its effect in one indivisible operation on both backends — a
// single FENCEAPPLY compound command on Redis (fence-check + record +
// HSET/HDEL/HINCRBY under the server's one dispatch lock), a
// double-shard-locked section in memory — forwarded through
// CheckpointStore and the instrumentation wrapper, so no crash point
// between "recorded" and "applied" exists: a worker killed mid-mutation
// either left no record (the replay re-applies) or left record+effect
// together (the replay drops). Only a third-party Store that implements
// neither fencedAdder nor fencedMutator falls back to the generic
// record-first, apply-second sequence, which keeps exactly-once under
// racing duplicates (the record step is atomic) but can lose the one
// in-flight mutation of a worker killed between the two steps.
// Record-first is the deliberate bias for that fallback: the inverse
// order would double-apply on the same crash, which is the corruption
// this subsystem exists to prevent.
type FencedStore struct {
	inner  Store
	drops  []*telemetry.Counter
	notify func()
}

// NewFencedStore wraps a namespace's store chain with the fence.
func NewFencedStore(inner Store) *FencedStore { return &FencedStore{inner: inner} }

// SetDropCounter routes a count of dropped (already-applied) mutations into
// telemetry. It may be called more than once — every registered counter is
// incremented per drop, so the run-wide state counter and a per-PE diagnosis
// row can both observe the same fence. Call before any scope is used; nil is
// ignored.
func (fs *FencedStore) SetDropCounter(c *telemetry.Counter) {
	if c != nil {
		fs.drops = append(fs.drops, c)
	}
}

// SetDropNotify installs a callback invoked once per dropped mutation, after
// the counters — the diagnosis journal's fence-drop feed. Drops are the cold
// replay path, so the callback may allocate. Call before any scope is used.
func (fs *FencedStore) SetDropNotify(fn func()) { fs.notify = fn }

// dropped records one duplicate application being discarded.
func (fs *FencedStore) dropped() {
	for _, c := range fs.drops {
		c.Inc()
	}
	if fs.notify != nil {
		fs.notify()
	}
}

// ObserveDrop records a duplicate detected outside the store path — the
// transport's fenced sink flush (SINKAPPEND) arbitrates the task gate on the
// server and reports the loss here so the drop counters and journal stay the
// single source of truth for fence activity.
func (fs *FencedStore) ObserveDrop() { fs.dropped() }

// TaskGateRef exposes the storage address of a delivery's task gate when the
// wrapped chain can name one (the Redis backend can; memory cannot). A
// transport sharing the server can then record the gate inside its own atomic
// flush instead of the two-step acquire-then-emit sequence.
func (fs *FencedStore) TaskGateRef(tok Token) (hashKey, field string, ok bool) {
	if tok.IsZero() {
		return "", "", false
	}
	if tg, ok := fs.inner.(TaskGater); ok {
		return tg.TaskGateRef(tok)
	}
	return "", "", false
}

// Inner returns the wrapped store chain (the unfiltered durability view).
func (fs *FencedStore) Inner() Store { return fs.inner }

// NewScope creates a per-worker view of the namespace. Scopes are not safe
// for concurrent use — each worker goroutine owns its own.
func (fs *FencedStore) NewScope() *FenceScope { return &FenceScope{fs: fs} }

// acquire records one ledger entry, reporting whether this caller was first.
// It rides the store's atomic AddInt, so two racing executions of the same
// delivery resolve to exactly one applier on every backend.
func (fs *FencedStore) acquire(field string) (bool, error) {
	n, err := fs.inner.AddInt(field, 1)
	if err != nil {
		return false, err
	}
	if n != 1 {
		fs.dropped()
	}
	return n == 1, nil
}

// FenceScope is one worker's handle onto a FencedStore. It implements Store:
// reads pass through; with a delivery token set, mutations are applied at
// most once per (token, mutation-index) across duplicate executions.
type FenceScope struct {
	fs  *FencedStore
	tok Token
	mut uint64
}

// SetToken binds the scope to a delivery before its task executes,
// restarting the per-execution mutation index.
func (s *FenceScope) SetToken(tok Token) {
	s.tok = tok
	s.mut = 0
}

// ClearToken unbinds the scope; subsequent mutations pass through unfenced.
func (s *FenceScope) ClearToken() { s.tok = Token{}; s.mut = 0 }

// AcquireTask gates a whole delivery (the Finalize path): it reports whether
// this execution is the delivery's first, so a duplicate Final is skipped
// before it can re-emit its flush values.
func (s *FenceScope) AcquireTask(tok Token) (bool, error) {
	if tok.IsZero() {
		return true, nil
	}
	return s.fs.acquire(taskFenceField(tok))
}

// nextField issues the ledger key for the execution's next mutation.
func (s *FenceScope) nextField() string {
	f := fenceField(s.tok, s.mut)
	s.mut++
	return f
}

// Namespace implements Store.
func (s *FenceScope) Namespace() string { return s.fs.inner.Namespace() }

// Get implements Store.
func (s *FenceScope) Get(key string) (string, bool, error) { return s.fs.inner.Get(key) }

// Put implements Store: a duplicate execution's Put is dropped. Both
// backends apply record+set atomically (fencedMutator); the generic
// fallback records first, with the fault probe marking the crash window the
// compound path does not have.
func (s *FenceScope) Put(key, value string) error {
	if s.tok.IsZero() {
		return s.fs.inner.Put(key, value)
	}
	field := s.nextField()
	if fm, ok := s.fs.inner.(fencedMutator); ok {
		applied, err := fm.FencedPut(field, key, value)
		if err == nil || !errors.Is(err, errNoFencedMutator) {
			if err == nil && !applied {
				s.fs.dropped()
			}
			return err
		}
	}
	applied, err := s.fs.acquire(field)
	if err != nil || !applied {
		return err
	}
	if ferr := faultinject.Fire(faultinject.ProbeAfterRecord); ferr != nil {
		return ferr
	}
	return s.fs.inner.Put(key, value)
}

// Delete implements Store: a duplicate execution's Delete is dropped.
func (s *FenceScope) Delete(key string) error {
	if s.tok.IsZero() {
		return s.fs.inner.Delete(key)
	}
	field := s.nextField()
	if fm, ok := s.fs.inner.(fencedMutator); ok {
		applied, err := fm.FencedDelete(field, key)
		if err == nil || !errors.Is(err, errNoFencedMutator) {
			if err == nil && !applied {
				s.fs.dropped()
			}
			return err
		}
	}
	applied, err := s.fs.acquire(field)
	if err != nil || !applied {
		return err
	}
	if ferr := faultinject.Fire(faultinject.ProbeAfterRecord); ferr != nil {
		return ferr
	}
	return s.fs.inner.Delete(key)
}

// Keys implements Store, hiding the applied ledger.
func (s *FenceScope) Keys() ([]string, error) {
	keys, err := s.fs.inner.Keys()
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if !IsFenceKey(k) {
			out = append(out, k)
		}
	}
	return out, nil
}

// Len implements Store, counting only workflow entries.
func (s *FenceScope) Len() (int, error) {
	keys, err := s.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// AddInt implements Store: a duplicate execution's increment is dropped and
// the key's current value is returned instead. Both backends (and their
// CheckpointStore chains) take the atomic fenced path, where record and
// apply are indivisible; the generic fallback for third-party stores
// records first and applies second, so its duplicate branch may observe
// the winner mid-flight — the caveat is on the fallback only.
func (s *FenceScope) AddInt(key string, delta int64) (int64, error) {
	if s.tok.IsZero() {
		return s.fs.inner.AddInt(key, delta)
	}
	field := s.nextField()
	if fa, ok := s.fs.inner.(fencedAdder); ok {
		applied, n, err := fa.FencedAddInt(field, key, delta)
		if err == nil || !errors.Is(err, errNoFencedAdder) {
			if err == nil && !applied {
				s.fs.dropped()
			}
			return n, err
		}
	}
	applied, err := s.fs.acquire(field)
	if err != nil {
		return 0, err
	}
	if !applied {
		cur, ok, err := s.fs.inner.Get(key)
		if err != nil || !ok {
			return 0, err
		}
		n, err := strconv.ParseInt(cur, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("state: AddInt duplicate read non-integer value %q of key %q", cur, key)
		}
		return n, nil
	}
	if ferr := faultinject.Fire(faultinject.ProbeAfterRecord); ferr != nil {
		return 0, ferr
	}
	return s.fs.inner.AddInt(key, delta)
}

// Update implements Store: a duplicate execution's read-modify-write is
// dropped without invoking fn.
func (s *FenceScope) Update(key string, fn func(string, bool) (string, bool, error)) error {
	if s.tok.IsZero() {
		return s.fs.inner.Update(key, fn)
	}
	field := s.nextField()
	if fm, ok := s.fs.inner.(fencedMutator); ok {
		applied, err := fm.FencedUpdate(field, key, fn)
		if err == nil || !errors.Is(err, errNoFencedMutator) {
			if err == nil && !applied {
				s.fs.dropped()
			}
			return err
		}
	}
	applied, err := s.fs.acquire(field)
	if err != nil || !applied {
		return err
	}
	if ferr := faultinject.Fire(faultinject.ProbeAfterRecord); ferr != nil {
		return ferr
	}
	return s.fs.inner.Update(key, fn)
}

// Snapshot implements Store, hiding the applied ledger. Durability paths
// (CheckpointStore, RestoreLatest) snapshot the inner chain directly and so
// keep the ledger; this filtered view serves Final flushes and user code.
func (s *FenceScope) Snapshot() (Snapshot, error) {
	snap, err := s.fs.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	for k := range snap {
		if IsFenceKey(k) {
			delete(snap, k)
		}
	}
	return snap, nil
}

// Restore implements Store.
func (s *FenceScope) Restore(snap Snapshot) error { return s.fs.inner.Restore(snap) }

// Clear implements Store. Clearing wipes the ledger with the data — which is
// coherent: with no data left there is nothing a replayed update could
// corrupt, and Clear itself is idempotent.
func (s *FenceScope) Clear() error { return s.fs.inner.Clear() }

var _ Store = (*FenceScope)(nil)
