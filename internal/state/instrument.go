package state

import (
	"time"

	"repro/internal/telemetry"
)

// instrumentedStore times every store operation into the run's shared
// StateMetrics histograms. It sits between the durability chain (backend
// store, optionally inside a CheckpointStore — so a mutation's latency
// includes any checkpoint it triggers) and the exactly-once fence, and
// forwards the atomic fenced-increment so instrumentation never downgrades
// the fence to its two-operation fallback.
type instrumentedStore struct {
	inner Store
	sm    *telemetry.StateMetrics
}

// InstrumentStore wraps a store chain with per-operation latency telemetry.
func InstrumentStore(inner Store, sm *telemetry.StateMetrics) Store {
	return &instrumentedStore{inner: inner, sm: sm}
}

// Namespace implements Store.
func (s *instrumentedStore) Namespace() string { return s.inner.Namespace() }

// Get implements Store.
func (s *instrumentedStore) Get(key string) (string, bool, error) {
	start := time.Now()
	v, ok, err := s.inner.Get(key)
	s.sm.Get.ObserveSince(start)
	return v, ok, err
}

// Put implements Store.
func (s *instrumentedStore) Put(key, value string) error {
	start := time.Now()
	err := s.inner.Put(key, value)
	s.sm.Put.ObserveSince(start)
	return err
}

// Delete implements Store.
func (s *instrumentedStore) Delete(key string) error {
	start := time.Now()
	err := s.inner.Delete(key)
	s.sm.Delete.ObserveSince(start)
	return err
}

// Keys implements Store.
func (s *instrumentedStore) Keys() ([]string, error) {
	start := time.Now()
	keys, err := s.inner.Keys()
	s.sm.List.ObserveSince(start)
	return keys, err
}

// Len implements Store.
func (s *instrumentedStore) Len() (int, error) {
	start := time.Now()
	n, err := s.inner.Len()
	s.sm.List.ObserveSince(start)
	return n, err
}

// AddInt implements Store.
func (s *instrumentedStore) AddInt(key string, delta int64) (int64, error) {
	start := time.Now()
	n, err := s.inner.AddInt(key, delta)
	s.sm.Add.ObserveSince(start)
	return n, err
}

// FencedAddInt forwards the fence's atomic fast path, timed as an Add.
func (s *instrumentedStore) FencedAddInt(ledgerField, key string, delta int64) (bool, int64, error) {
	fa, ok := s.inner.(fencedAdder)
	if !ok {
		return false, 0, errNoFencedAdder
	}
	start := time.Now()
	applied, n, err := fa.FencedAddInt(ledgerField, key, delta)
	s.sm.Add.ObserveSince(start)
	return applied, n, err
}

// FencedPut forwards the atomic fenced set, timed as a Put.
func (s *instrumentedStore) FencedPut(ledgerField, key, value string) (bool, error) {
	fm, ok := s.inner.(fencedMutator)
	if !ok {
		return false, errNoFencedMutator
	}
	start := time.Now()
	applied, err := fm.FencedPut(ledgerField, key, value)
	s.sm.Put.ObserveSince(start)
	return applied, err
}

// FencedDelete forwards the atomic fenced delete, timed as a Delete.
func (s *instrumentedStore) FencedDelete(ledgerField, key string) (bool, error) {
	fm, ok := s.inner.(fencedMutator)
	if !ok {
		return false, errNoFencedMutator
	}
	start := time.Now()
	applied, err := fm.FencedDelete(ledgerField, key)
	s.sm.Delete.ObserveSince(start)
	return applied, err
}

// FencedUpdate forwards the atomic fenced read-modify-write, timed as an
// Update.
func (s *instrumentedStore) FencedUpdate(ledgerField, key string, fn func(string, bool) (string, bool, error)) (bool, error) {
	fm, ok := s.inner.(fencedMutator)
	if !ok {
		return false, errNoFencedMutator
	}
	start := time.Now()
	applied, err := fm.FencedUpdate(ledgerField, key, fn)
	s.sm.Update.ObserveSince(start)
	return applied, err
}

// TaskGateRef implements TaskGater by forwarding to the wrapped chain.
func (s *instrumentedStore) TaskGateRef(tok Token) (hashKey, field string, ok bool) {
	if tg, ok := s.inner.(TaskGater); ok {
		return tg.TaskGateRef(tok)
	}
	return "", "", false
}

// Update implements Store.
func (s *instrumentedStore) Update(key string, fn func(string, bool) (string, bool, error)) error {
	start := time.Now()
	err := s.inner.Update(key, fn)
	s.sm.Update.ObserveSince(start)
	return err
}

// Snapshot implements Store.
func (s *instrumentedStore) Snapshot() (Snapshot, error) {
	start := time.Now()
	snap, err := s.inner.Snapshot()
	s.sm.Snapshot.ObserveSince(start)
	return snap, err
}

// Restore implements Store.
func (s *instrumentedStore) Restore(snap Snapshot) error {
	start := time.Now()
	err := s.inner.Restore(snap)
	s.sm.Restore.ObserveSince(start)
	return err
}

// Clear implements Store (untimed: it runs outside the execution hot path).
func (s *instrumentedStore) Clear() error { return s.inner.Clear() }

var _ Store = (*instrumentedStore)(nil)
var _ fencedAdder = (*instrumentedStore)(nil)
var _ fencedMutator = (*instrumentedStore)(nil)
