package state

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/redisclient"
)

// lockToken issues update-lock ownership tokens; lockNonce makes them unique
// across OS processes sharing one server (pid alone can recur across
// container restarts).
var (
	lockToken atomic.Int64
	lockNonce = time.Now().UnixNano()
)

// RedisBackend serves namespaces out of a sharded Redis data plane: each
// namespace is one hash (field = state key), checkpoints are single
// gob-encoded string keys (so an empty checkpoint is representable and the
// save is one atomic SET). It works against internal/miniredis or any RESP2
// server and backs the distributed mappings, where workers in different
// processes must see the same state.
//
// Sharding is by namespace: every key the backend writes for a namespace —
// live hash, checkpoint, update locks, and the fence-ledger fields living
// inside the live hash — embeds the same "{namespace}" hash tag, so the
// cluster's ring places them on one shard together. That co-location is
// what keeps FENCEAPPLY (ledger + apply) and the transport's SINKAPPEND
// (task gate + sink entries) single-shard transactions; see
// redisclient.Cluster.
type RedisBackend struct {
	cluster     *redisclient.Cluster
	ownsCluster bool
	prefix      string
	counter     metrics.StateCounter
	coal        *coalescer

	// LockRetry is the sleep between attempts on a contended per-key update
	// lock. Zero means 200µs.
	LockRetry time.Duration
	// LockAttempts bounds lock acquisition; zero means 30000 attempts —
	// chosen so that retry × attempts (6s) outlasts the default LockTTL: a
	// lock orphaned by a killed holder delays an update until the TTL reaps
	// it rather than failing the run.
	LockAttempts int
	// LockTTL expires an update lock whose holder died before releasing it,
	// so a killed run cannot deadlock a key forever. Zero means 5s.
	LockTTL time.Duration
}

// NewRedisBackend creates a single-shard backend on an existing client. The
// caller keeps ownership of cl (Close does not close it). prefix namespaces
// every key the backend writes, isolating concurrent runs on one server.
func NewRedisBackend(cl *redisclient.Client, prefix string) *RedisBackend {
	return &RedisBackend{cluster: redisclient.Single(cl), prefix: prefix}
}

// NewRedisClusterBackend creates a backend routing namespaces across the
// cluster's shards. The caller keeps ownership of the cluster (Close does
// not close it); the transport of the same run must share it so gates and
// sinks co-locate.
func NewRedisClusterBackend(cluster *redisclient.Cluster, prefix string) *RedisBackend {
	return &RedisBackend{cluster: cluster, prefix: prefix}
}

// DialRedisBackend creates a backend with its own client connection pool to
// addr; Close closes the pool.
func DialRedisBackend(addr, prefix string) *RedisBackend {
	return DialRedisClusterBackend([]string{addr}, prefix)
}

// DialRedisClusterBackend creates a backend with its own cluster over the
// shard addresses (in ring order); Close closes it. An external observer
// dialing the same addresses computes the same placement as the run it
// inspects.
func DialRedisClusterBackend(addrs []string, prefix string) *RedisBackend {
	cluster, err := redisclient.NewCluster(addrs)
	if err != nil {
		// Preserve DialRedisBackend's never-fails contract: surface the
		// configuration error on first use instead.
		cluster = redisclient.Single(redisclient.Dial(""))
	}
	return &RedisBackend{cluster: cluster, ownsCluster: true, prefix: prefix}
}

// EnableCoalescing turns on per-shard group commit for unfenced AddInt ops:
// concurrent increments funnel into one pipelined HINCRBY flush per shard
// instead of one round trip per call, while every caller still observes its
// exact intermediate value. See coalescer.
func (b *RedisBackend) EnableCoalescing() { b.coal = newCoalescer() }

// Name implements Backend.
func (b *RedisBackend) Name() string { return "redis" }

// liveKey is the hash holding a namespace's live entries.
func (b *RedisBackend) liveKey(ns string) string { return b.prefix + ":st:{" + ns + "}" }

// ckptKey is the string key holding a namespace's checkpoint.
func (b *RedisBackend) ckptKey(ns string) string { return b.prefix + ":ck:{" + ns + "}" }

// lockKey is the SETNX spin-lock guarding one state key's read-modify-write.
func (b *RedisBackend) lockKey(ns, key string) string {
	return b.prefix + ":lk:{" + ns + "}:" + key
}

// Open implements Backend. The namespace's shard is resolved once here —
// every key of the namespace carries the same hash tag, so one lookup
// covers them all.
func (b *RedisBackend) Open(namespace string) (Store, error) {
	shard := b.cluster.ShardFor(b.liveKey(namespace))
	return &redisStore{b: b, namespace: namespace, shard: shard, cl: b.cluster.Shard(shard)}, nil
}

// SaveCheckpoint implements Backend.
func (b *RedisBackend) SaveCheckpoint(namespace string, snap Snapshot) error {
	enc, err := EncodeValue(map[string]string(snap))
	if err != nil {
		return err
	}
	if err := b.cluster.For(b.ckptKey(namespace)).Set(b.ckptKey(namespace), enc); err != nil {
		return fmt.Errorf("state: save checkpoint %s: %w", namespace, err)
	}
	b.counter.IncCheckpoint()
	return nil
}

// LoadCheckpoint implements Backend.
func (b *RedisBackend) LoadCheckpoint(namespace string) (Snapshot, bool, error) {
	key := b.ckptKey(namespace)
	s, ok, err := b.cluster.For(key).Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	m, err := DecodeValue[map[string]string](s)
	if err != nil {
		return nil, false, fmt.Errorf("state: load checkpoint %s: %w", namespace, err)
	}
	return Snapshot(m), true, nil
}

// DropNamespace implements Backend. Orphaned update locks are left to their
// TTL (a KEYS/SCAN sweep would block or burden a shared production server);
// the Update spin budget outlasts the TTL, so they delay, never deadlock.
func (b *RedisBackend) DropNamespace(namespace string) error {
	// liveKey and ckptKey share the namespace tag: one shard holds both.
	_, err := b.cluster.For(b.liveKey(namespace)).Del(b.liveKey(namespace), b.ckptKey(namespace))
	return err
}

// Ops implements Backend.
func (b *RedisBackend) Ops() metrics.StateOps { return b.counter.Snapshot() }

// Close implements Backend.
func (b *RedisBackend) Close() error {
	if b.coal != nil {
		b.coal.close()
	}
	if b.ownsCluster {
		return b.cluster.Close()
	}
	return nil
}

// lockParams resolves the retry configuration.
func (b *RedisBackend) lockParams() (retry time.Duration, attempts int, ttl time.Duration) {
	retry = b.LockRetry
	if retry <= 0 {
		retry = 200 * time.Microsecond
	}
	attempts = b.LockAttempts
	if attempts <= 0 {
		attempts = 30000
	}
	ttl = b.LockTTL
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	return retry, attempts, ttl
}

// redisStore is one namespace on a RedisBackend, pinned to the shard its
// hash tag maps to.
type redisStore struct {
	b         *RedisBackend
	namespace string
	shard     int
	cl        *redisclient.Client
}

// Namespace implements Store.
func (st *redisStore) Namespace() string { return st.namespace }

// Get implements Store.
func (st *redisStore) Get(key string) (string, bool, error) {
	st.b.counter.IncGet()
	return st.cl.HGet(st.b.liveKey(st.namespace), key)
}

// Put implements Store.
func (st *redisStore) Put(key, value string) error {
	st.b.counter.IncPut()
	return st.cl.HSet(st.b.liveKey(st.namespace), key, value)
}

// Delete implements Store.
func (st *redisStore) Delete(key string) error {
	st.b.counter.IncDelete()
	_, err := st.cl.HDel(st.b.liveKey(st.namespace), key)
	return err
}

// Keys implements Store.
func (st *redisStore) Keys() ([]string, error) {
	st.b.counter.IncList()
	return st.cl.HKeys(st.b.liveKey(st.namespace))
}

// Len implements Store.
func (st *redisStore) Len() (int, error) {
	st.b.counter.IncList()
	n, err := st.cl.HLen(st.b.liveKey(st.namespace))
	return int(n), err
}

// AddInt implements Store. HINCRBY executes atomically on the server, so no
// client-side lock is needed. With coalescing enabled, concurrent
// increments across workers group-commit into one pipelined flush per
// shard; each caller still gets the exact value its own delta produced.
func (st *redisStore) AddInt(key string, delta int64) (int64, error) {
	st.b.counter.IncAdd()
	if st.b.coal != nil {
		return st.b.coal.addInt(st.shard, st.cl, st.b.liveKey(st.namespace), key, delta)
	}
	return st.cl.HIncrBy(st.b.liveKey(st.namespace), key, delta)
}

// FencedAddInt implements the fence's atomic fast path: one FENCEAPPLY
// compound command checks the ledger, records it, and applies the increment
// under the server's dispatch lock — a single round trip with no
// record/apply gap, no duplicate-delta transient, and no compensating undo.
// A duplicate applies nothing and the server reports the field's current
// value, so the caller always observes the effective count. The command is
// ledger-gated and therefore retry-safe: the client re-sends it across a
// lost reply without risk of double application.
func (st *redisStore) FencedAddInt(ledgerField, key string, delta int64) (bool, int64, error) {
	st.b.counter.IncAdd()
	return st.cl.FenceApplyIncr(st.b.liveKey(st.namespace), ledgerField, key, delta)
}

// FencedPut implements the atomic fenced set: ledger record + HSET in one
// FENCEAPPLY round trip.
func (st *redisStore) FencedPut(ledgerField, key, value string) (bool, error) {
	st.b.counter.IncPut()
	return st.cl.FenceApplySet(st.b.liveKey(st.namespace), ledgerField, key, value)
}

// FencedDelete implements the atomic fenced delete: ledger record + HDEL in
// one FENCEAPPLY round trip.
func (st *redisStore) FencedDelete(ledgerField, key string) (bool, error) {
	st.b.counter.IncDelete()
	return st.cl.FenceApplyDel(st.b.liveKey(st.namespace), ledgerField, key)
}

// FencedUpdate implements the fenced read-modify-write. The per-key spin
// lock serializes concurrent updaters as in Update; under the lock the
// ledger is consulted first (stable: ledger counts only grow, so a recorded
// duplicate stays recorded) and a duplicate returns without invoking fn.
// The final write rides FENCEAPPLY, so record and apply land atomically
// even if the lock TTL were breached mid-section — the server, not the
// lock, arbitrates the exactly-once decision.
func (st *redisStore) FencedUpdate(ledgerField, key string, fn func(string, bool) (string, bool, error)) (bool, error) {
	st.b.counter.IncUpdate()
	live := st.b.liveKey(st.namespace)
	applied := false
	err := st.withKeyLock(key, func() error {
		if _, recorded, err := st.cl.HGet(live, ledgerField); err != nil || recorded {
			return err
		}
		cur, exists, err := st.cl.HGet(live, key)
		if err != nil {
			return err
		}
		next, keep, err := fn(cur, exists)
		if err != nil {
			return err
		}
		if keep {
			applied, err = st.cl.FenceApplySet(live, ledgerField, key, next)
		} else {
			applied, err = st.cl.FenceApplyDel(live, ledgerField, key)
		}
		return err
	})
	return applied, err
}

// Update implements Store. The read-modify-write is guarded by a per-key
// SET NX PX spin lock, making concurrent updates of the same key from
// different workers serialize (the Redis idiom for client-side atomic
// sections when scripting is unavailable). The TTL reaps locks whose holder
// died mid-update, at the cost of a theoretical double-execution when an
// update outlives the TTL — acceptable for the engine's microsecond-scale
// update sections.
func (st *redisStore) Update(key string, fn func(string, bool) (string, bool, error)) error {
	st.b.counter.IncUpdate()
	live := st.b.liveKey(st.namespace)
	return st.withKeyLock(key, func() error {
		cur, exists, err := st.cl.HGet(live, key)
		if err != nil {
			return err
		}
		next, keep, err := fn(cur, exists)
		if err != nil {
			return err
		}
		if !keep {
			_, err = st.cl.HDel(live, key)
			return err
		}
		return st.cl.HSet(live, key, next)
	})
}

// withKeyLock runs body under the per-key SET NX PX spin lock. The lock
// lives on the namespace's own shard (its key shares the namespace tag), so
// lock and data cannot disagree about placement. The lock value is an
// ownership token: release only deletes the lock while it still holds our
// token, so a holder that outlived the TTL cannot delete a successor's lock
// and cascade the breach to a third writer. (GET+DEL is not atomic without
// scripting, but it shrinks the misrelease window from "always after TTL
// expiry" to one round trip.)
func (st *redisStore) withKeyLock(key string, body func() error) error {
	lock := st.b.lockKey(st.namespace, key)
	retry, attempts, ttl := st.b.lockParams()
	token := fmt.Sprintf("%d-%d-%d", os.Getpid(), lockNonce, lockToken.Add(1))
	acquired := false
	for i := 0; i < attempts; i++ {
		ok, err := st.cl.SetNX(lock, token, ttl)
		if err != nil {
			return err
		}
		if ok {
			acquired = true
			break
		}
		time.Sleep(retry)
	}
	if !acquired {
		return fmt.Errorf("state: update lock on %s/%s not acquired after %d attempts", st.namespace, key, attempts)
	}
	defer func() {
		if v, ok, err := st.cl.Get(lock); err == nil && ok && v == token {
			_, _ = st.cl.Del(lock)
		}
	}()
	return body()
}

// TaskGateRef implements TaskGater: it names the (hash key, ledger field)
// address of a delivery's task gate so a transport sharing this backend's
// cluster can record the gate inside its own atomic SINKAPPEND flush. The
// transport routes the flush by hashing the returned key through the shared
// ring, landing it on this namespace's shard — gate, ledger and sink
// entries co-locate by construction. Valid only when the transport and this
// backend share one cluster — true for every mapping in this repository
// that pairs a Redis transport with a Redis backend.
func (st *redisStore) TaskGateRef(tok Token) (hashKey, field string, ok bool) {
	if tok.IsZero() {
		return "", "", false
	}
	return st.b.liveKey(st.namespace), taskFenceField(tok), true
}

// Snapshot implements Store.
func (st *redisStore) Snapshot() (Snapshot, error) {
	st.b.counter.IncSnapshot()
	m, err := st.cl.HGetAll(st.b.liveKey(st.namespace))
	if err != nil {
		return nil, err
	}
	return Snapshot(m), nil
}

// Restore implements Store.
func (st *redisStore) Restore(snap Snapshot) error {
	st.b.counter.IncRestore()
	live := st.b.liveKey(st.namespace)
	if _, err := st.cl.Del(live); err != nil {
		return err
	}
	if len(snap) == 0 {
		return nil
	}
	fv := make([]string, 0, 2*len(snap))
	for k, v := range snap {
		fv = append(fv, k, v)
	}
	return st.cl.HSet(live, fv...)
}

// Clear implements Store.
func (st *redisStore) Clear() error {
	st.b.counter.IncDelete()
	_, err := st.cl.Del(st.b.liveKey(st.namespace))
	return err
}

var (
	_ Store   = (*redisStore)(nil)
	_ Backend = (*RedisBackend)(nil)
)
