package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/synth"
)

// Mapping is the static MPI-style enactment: the same instance allocation
// as multi, but every connection is realized as tagged point-to-point
// messages between fixed ranks. Like the paper's MPI mapping it is static
// only — there is no shared queue, so neither dynamic scheduling nor
// auto-scaling can be layered on it.
type Mapping struct{}

func init() { mapping.Register(Mapping{}) }

// Name implements mapping.Mapping.
func (Mapping) Name() string { return "mpi" }

// tags: data messages use the destination's edge index; EOS uses tagEOS.
const tagEOS = 1 << 20

// rankAssignment maps every PE instance to a dedicated rank.
type rankAssignment struct {
	rankOf map[string][]int // node name → instance index → rank
	total  int
}

func assignRanks(g *graph.Graph, alloc map[string]int) rankAssignment {
	ra := rankAssignment{rankOf: make(map[string][]int, len(alloc))}
	for _, n := range g.Nodes() {
		ranks := make([]int, alloc[n.Name])
		for i := range ranks {
			ranks[i] = ra.total
			ra.total++
		}
		ra.rankOf[n.Name] = ranks
	}
	return ra
}

// Execute implements mapping.Mapping.
func (Mapping) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if g.HasManagedState() {
		// Managed state needs either instance-affine finalization barriers
		// (multi) or a drain coordinator (dynamic, hybrid); the rank-based
		// engine has neither yet.
		return metrics.Report{}, fmt.Errorf("mpi: workflow %s declares managed state; use multi, the dynamic mappings, or hybrid_redis", g.Name)
	}
	alloc, err := g.AllocateInstances(opts.Processes)
	if err != nil {
		return metrics.Report{}, err
	}
	ra := assignRanks(g, alloc)
	world, err := NewWorld(ra.total)
	if err != nil {
		return metrics.Report{}, err
	}
	defer world.Close()
	host := platform.NewHost(opts.Platform)

	var tasks, outputs atomic.Int64
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		world.Close()
	}

	// envelope carried on the wire.
	type envelope struct {
		Port  string
		Value any
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, n := range g.Nodes() {
		for inst, rank := range ra.rankOf[n.Name] {
			wg.Add(1)
			go func(n *graph.Node, inst, rank int) {
				defer wg.Done()
				proc := host.NewProcess(fmt.Sprintf("mpi:%s:%d", n.Name, inst))
				proc.Activate()
				defer proc.Deactivate()

				pe := n.Factory()
				seq := map[*graph.Edge]uint64{}
				emit := func(port string, value any) error {
					for _, e := range g.OutEdges(n.Name) {
						if e.FromPort != port {
							continue
						}
						dsts := ra.rankOf[e.To]
						if len(g.OutEdges(e.To)) == 0 {
							outputs.Add(1)
						}
						idx := e.Grouping.RouteInstance(value, seq[e], len(dsts))
						seq[e]++
						if idx < 0 {
							for _, dr := range dsts {
								if err := world.Send(rank, dr, 0, envelope{Port: e.ToPort, Value: value}); err != nil {
									return err
								}
							}
							continue
						}
						if err := world.Send(rank, dsts[idx], 0, envelope{Port: e.ToPort, Value: value}); err != nil {
							return err
						}
					}
					return nil
				}
				ctx := core.NewContext(n.Name, inst, host,
					synth.NewRand(opts.Seed^int64(rank*6151)), emit)

				sendEOS := func() {
					for _, e := range g.OutEdges(n.Name) {
						for _, dr := range ra.rankOf[e.To] {
							if err := world.Send(rank, dr, tagEOS, nil); err != nil {
								return
							}
						}
					}
				}

				if ini, ok := pe.(core.Initializer); ok {
					if err := ini.Init(ctx); err != nil {
						fail(fmt.Errorf("mpi: init %s[%d]: %w", n.Name, inst, err))
						return
					}
				}
				if src, ok := pe.(core.Source); ok && len(g.InEdges(n.Name)) == 0 {
					tasks.Add(1)
					if err := src.Generate(ctx); err != nil {
						fail(fmt.Errorf("mpi: source %s[%d]: %w", n.Name, inst, err))
						return
					}
					if fin, ok := pe.(core.Finalizer); ok {
						if err := fin.Final(ctx); err != nil {
							fail(fmt.Errorf("mpi: source final %s[%d]: %w", n.Name, inst, err))
							return
						}
					}
					sendEOS()
					return
				}

				// Expected EOS markers: one per upstream instance per in-edge.
				expect := 0
				for _, e := range g.InEdges(n.Name) {
					expect += len(ra.rankOf[e.From])
				}
				for expect > 0 {
					m, err := world.Recv(rank, AnySource, AnyTag)
					if err != nil {
						return // closed (failure elsewhere)
					}
					if m.Tag == tagEOS {
						expect--
						continue
					}
					env := m.Data.(envelope)
					tasks.Add(1)
					if err := pe.Process(ctx, env.Port, env.Value); err != nil {
						fail(fmt.Errorf("mpi: PE %s[%d]: %w", n.Name, inst, err))
						return
					}
				}
				if fin, ok := pe.(core.Finalizer); ok {
					if err := fin.Final(ctx); err != nil {
						fail(fmt.Errorf("mpi: final %s[%d]: %w", n.Name, inst, err))
						return
					}
				}
				sendEOS()
			}(n, inst, rank)
		}
	}
	wg.Wait()
	runtime := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return metrics.Report{}, err
	}
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     "mpi",
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
	}, nil
}
