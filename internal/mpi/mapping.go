package mpi

import (
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/state"
)

// Mapping is the static MPI-style enactment: the same instance allocation
// as multi, but every connection is realized as point-to-point messages
// between fixed ranks over a World. Like the paper's MPI mapping it is
// static only — there is no shared queue, so neither dynamic scheduling nor
// auto-scaling can be layered on it (the rank transport rejects pool
// routing outright).
//
// Managed keyed state is supported: the shared runtime coordinator drains
// the rank mailboxes and flushes each managed node's Final exactly once, so
// the rank-level finalization barrier the seed lacked now falls out of the
// unified termination protocol instead of needing an MPI-specific one.
type Mapping struct{}

func init() { mapping.Register(Mapping{}) }

// Name implements mapping.Mapping.
func (Mapping) Name() string { return "mpi" }

// Execute implements mapping.Mapping.
func (Mapping) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	// Rank mailboxes are in-process, so batching defaults off like multi's;
	// the knobs remain available (buffered mailbox draining on the pull
	// side, one Send per task on the emit side either way).
	opts = opts.ResolveBatching(1, 1).WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	alloc, err := g.AllocateInstances(opts.Processes)
	if err != nil {
		return metrics.Report{}, err
	}
	plan := runtime.PinnedPlan(g, alloc)
	world, err := NewWorld(len(plan.Workers))
	if err != nil {
		return metrics.Report{}, err
	}
	defer world.Close()
	tr, err := runtime.NewRankTransport(world, plan)
	if err != nil {
		return metrics.Report{}, err
	}
	return runtime.Execute(g, opts, runtime.Config{
		Name:              "mpi",
		Plan:              plan,
		Transport:         tr,
		Host:              platform.NewHost(opts.Platform),
		NewStateBackend:   func() state.Backend { return state.NewMemoryBackend() },
		PinnedIdleStandby: true,
	})
}
