package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("zero-size world should fail")
	}
	w, err := NewWorld(3)
	if err != nil || w.Size() != 3 {
		t.Fatalf("NewWorld: %v", err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	w, _ := NewWorld(2)
	done := make(chan Message, 1)
	go func() {
		m, err := w.Recv(1, 0, 7)
		if err != nil {
			t.Error(err)
		}
		done <- m
	}()
	if err := w.Send(0, 1, 7, "hello"); err != nil {
		t.Fatal(err)
	}
	m := <-done
	if m.Source != 0 || m.Tag != 7 || m.Data.(string) != "hello" {
		t.Errorf("message: %+v", m)
	}
}

func TestRecvWildcards(t *testing.T) {
	w, _ := NewWorld(3)
	if err := w.Send(2, 0, 5, "fromtwo"); err != nil {
		t.Fatal(err)
	}
	m, err := w.Recv(0, AnySource, AnyTag)
	if err != nil || m.Source != 2 || m.Data.(string) != "fromtwo" {
		t.Fatalf("wildcard recv: %+v %v", m, err)
	}
}

func TestRecvFiltersByTag(t *testing.T) {
	w, _ := NewWorld(2)
	if err := w.Send(0, 1, 1, "one"); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(0, 1, 2, "two"); err != nil {
		t.Fatal(err)
	}
	m, err := w.Recv(1, 0, 2)
	if err != nil || m.Data.(string) != "two" {
		t.Fatalf("tag filter: %+v %v", m, err)
	}
	m, err = w.Recv(1, 0, 1)
	if err != nil || m.Data.(string) != "one" {
		t.Fatalf("remaining message: %+v %v", m, err)
	}
}

func TestFIFOPerPairAndTag(t *testing.T) {
	w, _ := NewWorld(2)
	for i := 0; i < 10; i++ {
		if err := w.Send(0, 1, 3, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := w.Recv(1, 0, 3)
		if err != nil || m.Data.(int) != i {
			t.Fatalf("order violated at %d: %+v %v", i, m, err)
		}
	}
}

func TestProbe(t *testing.T) {
	w, _ := NewWorld(2)
	ok, err := w.Probe(1, AnySource, AnyTag)
	if err != nil || ok {
		t.Fatalf("empty probe: %v %v", ok, err)
	}
	if err := w.Send(0, 1, 9, nil); err != nil {
		t.Fatal(err)
	}
	ok, err = w.Probe(1, 0, 9)
	if err != nil || !ok {
		t.Fatalf("probe after send: %v %v", ok, err)
	}
	// Probe must not consume.
	if _, err := w.Recv(1, 0, 9); err != nil {
		t.Fatal(err)
	}
}

func TestRankValidation(t *testing.T) {
	w, _ := NewWorld(2)
	if err := w.Send(0, 5, 0, nil); err == nil {
		t.Error("send to invalid rank should fail")
	}
	if err := w.Send(9, 0, 0, nil); err == nil {
		t.Error("send from invalid rank should fail")
	}
	if _, err := w.Recv(-2, AnySource, AnyTag); err == nil {
		t.Error("recv on invalid rank should fail")
	}
}

func TestBarrier(t *testing.T) {
	const n = 4
	w, _ := NewWorld(n)
	var phase [n]int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			mu.Lock()
			phase[r] = 1
			mu.Unlock()
			if err := w.Barrier(); err != nil {
				t.Error(err)
				return
			}
			// After the barrier, everyone must have reached phase 1.
			mu.Lock()
			for i := 0; i < n; i++ {
				if phase[i] != 1 {
					t.Errorf("rank %d passed barrier before rank %d arrived", r, i)
				}
			}
			mu.Unlock()
		}(r)
	}
	wg.Wait()
}

func TestCloseUnblocksRecv(t *testing.T) {
	w, _ := NewWorld(2)
	errc := make(chan error, 1)
	go func() {
		_, err := w.Recv(1, AnySource, AnyTag)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Errorf("err=%v want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	if err := w.Send(0, 1, 0, nil); err != ErrClosed {
		t.Errorf("send after close: %v", err)
	}
}
