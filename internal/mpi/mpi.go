// Package mpi is a small in-process message-passing substrate modeled on
// the MPI point-to-point core: a World of ranks with tagged, typed
// Send/Recv/Probe operations and barriers. The paper lists an MPI mapping
// among dispel4py's enactment engines and explains why dynamic scheduling
// does not fit it ("traditional MPI lacks support for a queue-based system
// crucial for dynamic task assignments"); this package exists so the static
// MPI-style mapping can be built and that architectural argument exercised
// in code rather than prose.
//
// Semantics: Send blocks until a matching Recv accepts the message
// (rendezvous, like MPI_Send for large messages); Recv blocks for a
// matching (source, tag) envelope, with wildcard AnySource/AnyTag;
// Barrier synchronizes all ranks. Messages between a pair of ranks with the
// same tag arrive in send order.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv/Probe matching.
const (
	// AnySource matches messages from every rank.
	AnySource = -1
	// AnyTag matches every tag.
	AnyTag = -1
)

// Message is one delivered envelope.
type Message struct {
	// Source is the sending rank.
	Source int
	// Tag is the message tag.
	Tag int
	// Data is the payload.
	Data any
}

// World is a communicator over a fixed number of ranks.
type World struct {
	size int

	mu      sync.Mutex
	cond    *sync.Cond
	mailbox [][]Message // per destination rank
	closed  bool

	barrierGen   int
	barrierCount int
}

// NewWorld creates a communicator with size ranks.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	w := &World{size: size, mailbox: make([][]Message, size)}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// QueueLen reports how many messages are queued for rank (a telemetry gauge;
// out-of-range ranks report 0).
func (w *World) QueueLen(rank int) int {
	if rank < 0 || rank >= w.size {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.mailbox[rank])
}

// Close aborts the world: all blocked operations return ErrClosed.
func (w *World) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// ErrClosed is returned by operations on a closed world.
var ErrClosed = fmt.Errorf("mpi: world closed")

// Send delivers data to rank dest with the given tag. It returns once the
// message is enqueued at the destination (buffered standard-mode send).
func (w *World) Send(from, dest, tag int, data any) error {
	if err := w.checkRank(dest); err != nil {
		return err
	}
	if err := w.checkRank(from); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.mailbox[dest] = append(w.mailbox[dest], Message{Source: from, Tag: tag, Data: data})
	w.cond.Broadcast()
	return nil
}

// Recv blocks until a message matching (source, tag) is available for rank
// me, then removes and returns it. Use AnySource/AnyTag as wildcards.
func (w *World) Recv(me, source, tag int) (Message, error) {
	if err := w.checkRank(me); err != nil {
		return Message{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return Message{}, ErrClosed
		}
		if i := w.match(me, source, tag); i >= 0 {
			m := w.mailbox[me][i]
			w.mailbox[me] = append(w.mailbox[me][:i], w.mailbox[me][i+1:]...)
			return m, nil
		}
		w.cond.Wait()
	}
}

// RecvDataTimeout removes and returns the payload of the next message
// queued for rank me, waiting up to timeout when the mailbox is empty
// (ok is false on timeout). It is the bounded-wait primitive the runtime's
// rank transport drives: unlike Recv it cannot block a worker past its
// termination-protocol poll interval, and unlike a polling loop it parks on
// the world's condition variable between messages.
func (w *World) RecvDataTimeout(me int, timeout time.Duration) (any, bool, error) {
	if err := w.checkRank(me); err != nil {
		return nil, false, err
	}
	deadline := time.Now().Add(timeout)
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return nil, false, ErrClosed
		}
		if i := w.match(me, AnySource, AnyTag); i >= 0 {
			m := w.mailbox[me][i]
			w.mailbox[me] = append(w.mailbox[me][:i], w.mailbox[me][i+1:]...)
			return m.Data, true, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false, nil
		}
		// sync.Cond has no timed wait; a one-shot timer broadcasts so this
		// waiter rechecks its deadline. Senders broadcast on delivery, so
		// the common wake-up path is event-driven, not polled.
		timer := time.AfterFunc(remaining, w.cond.Broadcast)
		w.cond.Wait()
		timer.Stop()
	}
}

// Probe reports whether a matching message is available without removing it.
func (w *World) Probe(me, source, tag int) (bool, error) {
	if err := w.checkRank(me); err != nil {
		return false, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false, ErrClosed
	}
	return w.match(me, source, tag) >= 0, nil
}

// match finds the first queued message for rank me matching source/tag.
// Callers hold w.mu.
func (w *World) match(me, source, tag int) int {
	for i, m := range w.mailbox[me] {
		if (source == AnySource || m.Source == source) && (tag == AnyTag || m.Tag == tag) {
			return i
		}
	}
	return -1
}

// Barrier blocks until all ranks have entered it.
func (w *World) Barrier() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	gen := w.barrierGen
	w.barrierCount++
	if w.barrierCount == w.size {
		w.barrierCount = 0
		w.barrierGen++
		w.cond.Broadcast()
		return nil
	}
	for gen == w.barrierGen && !w.closed {
		w.cond.Wait()
	}
	if w.closed {
		return ErrClosed
	}
	return nil
}

func (w *World) checkRank(r int) error {
	if r < 0 || r >= w.size {
		return fmt.Errorf("mpi: rank %d out of range [0, %d)", r, w.size)
	}
	return nil
}
