package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket atomic histogram over int64 values. Bounds are
// ascending inclusive upper limits with an implicit +Inf bucket at the end;
// all histograms built by the same constructor share one bounds slice, which
// is what lets per-worker shards merge bucket-wise into one snapshot.
// Observe is lock-free: a binary search over ≤25 bounds plus three atomic
// adds and two bounded CAS loops for the exact running min/max.
type Histogram struct {
	unit   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Int64
	n      atomic.Int64
	min    atomic.Int64 // exact running min; math.MaxInt64 until first Observe
	max    atomic.Int64 // exact running max; math.MinInt64 until first Observe
}

func newHistogram(unit string, bounds []int64) *Histogram {
	h := &Histogram{unit: unit, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// latencyBounds covers 1µs..~16.8s in exponential nanosecond buckets — wide
// enough for an in-process channel send and a slow Redis round trip alike.
var latencyBounds = func() []int64 {
	bounds := make([]int64, 0, 25)
	for b := int64(1000); len(bounds) < 25; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}()

// sizeBounds covers batch sizes 1..4096 in powers of two.
var sizeBounds = func() []int64 {
	bounds := make([]int64, 0, 13)
	for b := int64(1); len(bounds) < 13; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}()

// NewLatencyHistogram creates a nanosecond-latency histogram (1µs..~16.8s).
func NewLatencyHistogram() *Histogram { return newHistogram("ns", latencyBounds) }

// NewSizeHistogram creates a batch-size histogram (1..4096).
func NewSizeHistogram() *Histogram { return newHistogram("count", sizeBounds) }

// Observe records one value. Min/max are updated before the counts so a
// racing snapshot never sees a non-zero total with sentinel extremes.
func (h *Histogram) Observe(v int64) {
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// HistogramSnapshot is the JSON-marshalable view of one (or several merged)
// histograms. Quantiles are linearly interpolated within their bucket, so
// they are estimates with bucket-width resolution.
type HistogramSnapshot struct {
	Unit  string  `json:"unit"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	// Min and Max are exact observed extremes (not bucket bounds), so the
	// tail is no longer clamped to twice the last finite bucket edge.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// Snapshot extracts the histogram's current quantile view.
func (h *Histogram) Snapshot() HistogramSnapshot { return mergeHistograms(h) }

// mergeHistograms sums same-bounds histograms bucket-wise (the per-worker
// shards of one metric) and extracts quantiles from the merged counts. The
// total is recomputed from the bucket counts so the snapshot is internally
// consistent even while writers race the read.
func mergeHistograms(hs ...*Histogram) HistogramSnapshot {
	if len(hs) == 0 {
		return HistogramSnapshot{}
	}
	base := hs[0]
	counts := make([]int64, len(base.counts))
	var sum int64
	obsMin, obsMax := int64(math.MaxInt64), int64(math.MinInt64)
	for _, h := range hs {
		for i := range h.counts {
			counts[i] += h.counts[i].Load()
		}
		sum += h.sum.Load()
		if m := h.min.Load(); m < obsMin {
			obsMin = m
		}
		if m := h.max.Load(); m > obsMax {
			obsMax = m
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	snap := HistogramSnapshot{Unit: base.unit, Count: total, Sum: sum}
	if total == 0 {
		return snap
	}
	snap.Mean = float64(sum) / float64(total)
	snap.Min, snap.Max = obsMin, obsMax
	snap.P50 = bucketQuantile(base.bounds, counts, total, 0.50, obsMin, obsMax)
	snap.P90 = bucketQuantile(base.bounds, counts, total, 0.90, obsMin, obsMax)
	snap.P99 = bucketQuantile(base.bounds, counts, total, 0.99, obsMin, obsMax)
	return snap
}

// bucketQuantile interpolates the q-quantile from bucket counts. The +Inf
// bucket uses the exact observed max as its upper edge, and results are
// clamped to the observed [min, max] so estimates never leave the data range.
func bucketQuantile(bounds []int64, counts []int64, total int64, q float64, obsMin, obsMax int64) int64 {
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := obsMax
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return clampInt64(lo+int64(float64(hi-lo)*frac), obsMin, obsMax)
	}
	return obsMax
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
