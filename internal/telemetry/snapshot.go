package telemetry

import "time"

// WorkerSnapshot is the JSON view of one worker shard (or, with Worker = -1,
// the bucket-wise merge of every shard).
type WorkerSnapshot struct {
	Worker    int               `json:"worker"`
	Tasks     int64             `json:"tasks"`
	IdlePolls int64             `json:"idle_polls"`
	Prefetch  int64             `json:"prefetch"`
	Pull      HistogramSnapshot `json:"pull"`
	Ack       HistogramSnapshot `json:"ack"`
	EmitFlush HistogramSnapshot `json:"emit_flush"`
	PullBatch HistogramSnapshot `json:"pull_batch"`
	EmitBatch HistogramSnapshot `json:"emit_batch"`
}

// StateSnapshot is the JSON view of the state-operation metrics. Ops holds
// only operations that were actually observed.
type StateSnapshot struct {
	Ops        map[string]HistogramSnapshot `json:"ops,omitempty"`
	FenceDrops int64                        `json:"fence_drops"`
}

// Snapshot is the JSON-marshalable view of a whole Registry at one instant —
// the payload of the /metrics endpoint and of d4pbench's embedded telemetry.
type Snapshot struct {
	At time.Time `json:"at"`
	// Workers is the merged view across all worker shards (Worker == -1).
	Workers WorkerSnapshot `json:"workers"`
	// PerWorker holds each shard, indexed by worker slot.
	PerWorker []WorkerSnapshot `json:"per_worker,omitempty"`
	// Gauges holds every registered gauge source's samples as "source.key".
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// State is present once any state operation was observed.
	State *StateSnapshot `json:"state,omitempty"`
	// Traces are the highest-value assembled task traces; TraceEvents is the
	// total number of trace events ever recorded (ring evictions included).
	Traces      []Trace `json:"traces,omitempty"`
	TraceEvents int64   `json:"trace_events,omitempty"`
}

// snapshotTraces caps how many assembled traces a snapshot embeds.
const snapshotTraces = 8

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(withTraces bool) Snapshot {
	r.mu.Lock()
	workers := append([]*WorkerMetrics(nil), r.workers...)
	r.mu.Unlock()

	snap := Snapshot{At: time.Now()}
	merged := WorkerSnapshot{Worker: -1}
	var pulls, ackHs, flushes, pullSizes, emitSizes []*Histogram
	for w, wm := range workers {
		ws := WorkerSnapshot{
			Worker:    w,
			Tasks:     wm.Tasks.Load(),
			IdlePolls: wm.IdlePolls.Load(),
			Prefetch:  wm.Prefetch.Load(),
			Pull:      wm.Pull.Snapshot(),
			Ack:       wm.Ack.Snapshot(),
			EmitFlush: wm.EmitFlush.Snapshot(),
			PullBatch: wm.PullBatch.Snapshot(),
			EmitBatch: wm.EmitBatch.Snapshot(),
		}
		snap.PerWorker = append(snap.PerWorker, ws)
		merged.Tasks += ws.Tasks
		merged.IdlePolls += ws.IdlePolls
		merged.Prefetch += ws.Prefetch
		pulls = append(pulls, wm.Pull)
		ackHs = append(ackHs, wm.Ack)
		flushes = append(flushes, wm.EmitFlush)
		pullSizes = append(pullSizes, wm.PullBatch)
		emitSizes = append(emitSizes, wm.EmitBatch)
	}
	if len(workers) > 0 {
		merged.Pull = mergeHistograms(pulls...)
		merged.Ack = mergeHistograms(ackHs...)
		merged.EmitFlush = mergeHistograms(flushes...)
		merged.PullBatch = mergeHistograms(pullSizes...)
		merged.EmitBatch = mergeHistograms(emitSizes...)
	}
	snap.Workers = merged

	// Gauge sampling may hit the transport (a Redis round trip); still a cold
	// path — only Snapshot/RecordFlight callers pay it.
	r.mu.Lock()
	snap.Gauges = r.sampleGauges()
	r.mu.Unlock()
	if len(snap.Gauges) == 0 {
		snap.Gauges = nil
	}

	ops := map[string]HistogramSnapshot{}
	for name, h := range map[string]*Histogram{
		"get": r.state.Get, "put": r.state.Put, "delete": r.state.Delete,
		"add": r.state.Add, "update": r.state.Update, "list": r.state.List,
		"snapshot": r.state.Snapshot, "restore": r.state.Restore,
	} {
		if hs := h.Snapshot(); hs.Count > 0 {
			ops[name] = hs
		}
	}
	if len(ops) > 0 || r.state.FenceDrops.Load() > 0 {
		snap.State = &StateSnapshot{Ops: ops, FenceDrops: r.state.FenceDrops.Load()}
	}

	if withTraces && r.tracer != nil {
		snap.Traces = r.tracer.Assemble(snapshotTraces)
		_, snap.TraceEvents = r.tracer.Events()
	}
	return snap
}
