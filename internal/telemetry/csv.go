package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// SnapshotCSV renders a Snapshot as a long-form metric CSV: one row per
// histogram (merged, per-worker, and state ops) with the exact observed
// min/max alongside the interpolated quantiles, plus one row per gauge.
// It is served by /metrics?format=csv and written next to BENCH JSON files.
func SnapshotCSV(s Snapshot) string {
	var b strings.Builder
	b.WriteString("scope,metric,unit,count,sum,mean,p50,p90,p99,min,max\n")
	hist := func(scope, metric string, h HistogramSnapshot) {
		if h.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%.1f,%d,%d,%d,%d,%d\n",
			scope, metric, h.Unit, h.Count, h.Sum, h.Mean, h.P50, h.P90, h.P99, h.Min, h.Max)
	}
	worker := func(scope string, ws WorkerSnapshot) {
		hist(scope, "pull", ws.Pull)
		hist(scope, "ack", ws.Ack)
		hist(scope, "emit_flush", ws.EmitFlush)
		hist(scope, "pull_batch", ws.PullBatch)
		hist(scope, "emit_batch", ws.EmitBatch)
	}
	worker("workers", s.Workers)
	for _, ws := range s.PerWorker {
		worker(fmt.Sprintf("w%d", ws.Worker), ws)
	}
	if s.State != nil {
		ops := make([]string, 0, len(s.State.Ops))
		for name := range s.State.Ops {
			ops = append(ops, name)
		}
		sort.Strings(ops)
		for _, name := range ops {
			hist("state", name, s.State.Ops[name])
		}
	}
	gauges := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	sort.Strings(gauges)
	for _, name := range gauges {
		v := s.Gauges[name]
		fmt.Fprintf(&b, "gauge,%s,value,1,%d,%.1f,%d,%d,%d,%d,%d\n", name, v, float64(v), v, v, v, v, v)
	}
	return b.String()
}
