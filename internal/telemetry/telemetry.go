// Package telemetry is the live metrics plane of the runtime: a registry of
// atomic counters, gauges and fixed-bucket latency histograms that workers
// update lock-free while a run executes, plus a bounded task-hop tracer and a
// JSON-marshalable snapshot served over an optional HTTP endpoint.
//
// The package is deliberately dependency-light — standard library only, no
// imports of other internal packages — so the state layer, the transports and
// the runtime can all hang instrumentation off it without import cycles. The
// hot path is allocation-free: each worker slot owns a WorkerMetrics shard
// (cached once, no map lookups per task), every histogram observation is two
// atomic adds plus a bucket search, and tracing touches a mutex only for the
// sampled fraction of tasks.
//
// It exists for ROADMAP items 4 and 5: feedback autoscaling needs live
// queue-depth and latency signals, and the open-loop bench needs p50/p99
// service latencies — both read the same Registry this package provides.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Counter is an atomic monotone counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reads the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load reads the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// WorkerMetrics is one worker slot's shard of the registry. The worker loop
// caches the pointer once and updates fields without any shared lock.
type WorkerMetrics struct {
	// Pull, Ack and EmitFlush time the worker loop's transport round trips:
	// non-empty PullBatch calls (empty polls land in IdlePolls instead),
	// batched Ack flushes, and batched emit (Push) flushes.
	Pull, Ack, EmitFlush *Histogram
	// PullBatch and EmitBatch record the delivered/flushed batch sizes the
	// BatchSizer (or fixed windows) actually produced.
	PullBatch, EmitBatch *Histogram
	// Prefetch is the worker's current prefetch-buffer occupancy.
	Prefetch Gauge
	// IdlePolls counts empty pull round trips; Tasks counts processed tasks.
	IdlePolls, Tasks Counter
}

func newWorkerMetrics() *WorkerMetrics {
	return &WorkerMetrics{
		Pull:      NewLatencyHistogram(),
		Ack:       NewLatencyHistogram(),
		EmitFlush: NewLatencyHistogram(),
		PullBatch: NewSizeHistogram(),
		EmitBatch: NewSizeHistogram(),
	}
}

// StateMetrics times managed-state store operations (one shared set per run —
// store ops already pay a lock or a network round trip, so a shared histogram
// is not the bottleneck) and counts exactly-once fence drops.
type StateMetrics struct {
	// Per-operation latency histograms, matching the Store interface.
	Get, Put, Delete, Add, Update, List, Snapshot, Restore *Histogram
	// FenceDrops counts mutations the exactly-once fence dropped as already
	// applied — non-zero exactly when duplicate executions reached the store.
	FenceDrops Counter
}

func newStateMetrics() *StateMetrics {
	return &StateMetrics{
		Get:      NewLatencyHistogram(),
		Put:      NewLatencyHistogram(),
		Delete:   NewLatencyHistogram(),
		Add:      NewLatencyHistogram(),
		Update:   NewLatencyHistogram(),
		List:     NewLatencyHistogram(),
		Snapshot: NewLatencyHistogram(),
		Restore:  NewLatencyHistogram(),
	}
}

// GaugeSource samples a named set of instantaneous values (queue depths, the
// transport's pending count). ok=false means the source is gone — typically
// the transport of a finished run — and the registry then keeps serving the
// last good sample, so post-run snapshots stay meaningful.
type GaugeSource func() (map[string]int64, bool)

// Config sizes a Registry. The zero value gives useful defaults.
type Config struct {
	// TraceSampleEvery starts a task trace on every Nth emission from an
	// untraced execution; 0 means 64, negative disables tracing entirely.
	TraceSampleEvery int
	// TraceRing bounds the trace-event ring buffer; 0 means 4096.
	TraceRing int
	// FlightRing bounds the flight-recorder ring; 0 means 32.
	FlightRing int
}

// Registry is one live metrics plane: per-worker shards, state metrics, named
// gauge sources, the task tracer, and the flight-recorder ring. A Registry
// may outlive a single run — the harness shares one across repetitions, in
// which case counters and histograms accumulate and gauge sources re-register
// per run (same name replaces).
type Registry struct {
	mu      sync.Mutex
	workers []*WorkerMetrics
	gauges  map[string]*gaugeEntry
	order   []string   // gauge source names in registration order
	flights []Snapshot // flight-recorder ring, oldest first once full
	flightN int
	state   *StateMetrics
	tracer  *Tracer

	flightCap int
}

type gaugeEntry struct {
	fn   GaugeSource
	last map[string]int64
}

// New creates a registry.
func New(cfg Config) *Registry {
	r := &Registry{
		gauges:    map[string]*gaugeEntry{},
		state:     newStateMetrics(),
		flightCap: cfg.FlightRing,
	}
	if r.flightCap <= 0 {
		r.flightCap = 32
	}
	if cfg.TraceSampleEvery >= 0 {
		every := cfg.TraceSampleEvery
		if every == 0 {
			every = 64
		}
		ring := cfg.TraceRing
		if ring <= 0 {
			ring = 4096
		}
		r.tracer = newTracer(every, ring)
	}
	return r
}

// Worker returns worker slot w's metrics shard, growing the shard table on
// first use. Callers cache the pointer; only this call takes the lock.
func (r *Registry) Worker(w int) *WorkerMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.workers) <= w {
		r.workers = append(r.workers, newWorkerMetrics())
	}
	return r.workers[w]
}

// State returns the shared state-operation metrics.
func (r *Registry) State() *StateMetrics { return r.state }

// Tracer returns the task-hop tracer, nil when tracing is disabled
// (Config.TraceSampleEvery < 0).
func (r *Registry) Tracer() *Tracer { return r.tracer }

// RegisterGauges adds (or replaces) a named gauge source. Each sampled key is
// reported as "source.key" in snapshots. Re-registering a name — a new run on
// a shared registry — replaces the sampler but keeps the cached last sample
// until the new source produces one.
func (r *Registry) RegisterGauges(source string, fn GaugeSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.gauges[source]; ok {
		e.fn = fn
		return
	}
	r.gauges[source] = &gaugeEntry{fn: fn}
	r.order = append(r.order, source)
}

// sampleGauges evaluates every source under the registry lock (a cold path;
// workers never take this lock).
func (r *Registry) sampleGauges() map[string]int64 {
	out := map[string]int64{}
	for _, name := range r.order {
		e := r.gauges[name]
		vals, ok := e.fn()
		if ok {
			e.last = vals
		} else {
			vals = e.last
		}
		for k, v := range vals {
			out[name+"."+k] = v
		}
	}
	return out
}

// RecordFlight appends the current snapshot (without traces, which the trace
// ring already retains) to the bounded flight-recorder ring. The runtime
// calls it on the Options.TelemetryEvery ticker.
func (r *Registry) RecordFlight() {
	snap := r.snapshot(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.flights) < r.flightCap {
		r.flights = append(r.flights, snap)
		return
	}
	r.flights[r.flightN%r.flightCap] = snap
	r.flightN++
}

// Flights returns the flight-recorder ring, oldest first.
func (r *Registry) Flights() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, len(r.flights))
	if len(r.flights) < r.flightCap {
		return append(out, r.flights...)
	}
	at := r.flightN % r.flightCap
	out = append(out, r.flights[at:]...)
	return append(out, r.flights[:at]...)
}
