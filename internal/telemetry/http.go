package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is the runtime inspection endpoint: /metrics serves the registry's
// snapshot as JSON (`?traces=0` skips trace assembly for high-frequency
// scrapers, `?format=csv` renders the long-form metric CSV), /flights the
// flight-recorder ring, and /debug/pprof the standard Go profiling handlers.
// Additional handlers (e.g. diagnosis endpoints) mount via Handle.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Serve binds addr (host:port; ":0" picks a free port) and serves reg on it.
// The listen happens synchronously so a bad address fails here, not in a
// goroutine log line.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		snap := reg.snapshot(q.Get("traces") != "0")
		if q.Get("format") == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			_, _ = w.Write([]byte(SnapshotCSV(snap)))
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/flights", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Flights())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, mux: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Handle mounts an extra handler on the server's mux — the seam higher layers
// (which telemetry must not import) use to add endpoints like /diagnosis.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
