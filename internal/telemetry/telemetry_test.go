package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 1000 observations spread uniformly over 1µs..1ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Unit != "ns" {
		t.Fatalf("unit = %q", s.Unit)
	}
	// Bucket resolution is a factor of two, so require the right power-of-two
	// neighborhood rather than exact values.
	if s.P50 < 250_000 || s.P50 > 1_000_000 {
		t.Errorf("p50 = %d outside [250µs, 1ms]", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > 2_000_000 {
		t.Errorf("p99 = %d (p50 = %d)", s.P99, s.P50)
	}
	if s.Mean < 400_000 || s.Mean > 600_000 {
		t.Errorf("mean = %f", s.Mean)
	}
}

func TestHistogramMergeAcrossWorkers(t *testing.T) {
	reg := New(Config{})
	for w := 0; w < 4; w++ {
		wm := reg.Worker(w)
		for i := 0; i < 10; i++ {
			wm.Pull.Observe(2000)
			wm.Tasks.Inc()
		}
	}
	snap := reg.Snapshot()
	if snap.Workers.Pull.Count != 40 {
		t.Fatalf("merged pull count = %d, want 40", snap.Workers.Pull.Count)
	}
	if snap.Workers.Tasks != 40 {
		t.Fatalf("merged tasks = %d, want 40", snap.Workers.Tasks)
	}
	if len(snap.PerWorker) != 4 || snap.PerWorker[2].Pull.Count != 10 {
		t.Fatalf("per-worker shards wrong: %+v", snap.PerWorker)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g+1) * 1000)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestGaugeSourceLastGoodCaching(t *testing.T) {
	reg := New(Config{})
	alive := true
	reg.RegisterGauges("transport", func() (map[string]int64, bool) {
		if !alive {
			return nil, false
		}
		return map[string]int64{"pending": 7}, true
	})
	if got := reg.Snapshot().Gauges["transport.pending"]; got != 7 {
		t.Fatalf("live sample = %d", got)
	}
	alive = false
	if got := reg.Snapshot().Gauges["transport.pending"]; got != 7 {
		t.Fatalf("cached sample = %d, want last good 7", got)
	}
}

func TestTracerAssemblesChain(t *testing.T) {
	reg := New(Config{TraceSampleEvery: 1})
	tr := reg.Tracer()
	// Synthetic three-hop chain: generate(100) → mid(200) → sink(300), with a
	// replayed execution of the sink.
	tr.RecordEmit(100, 0, "gen", 200, 0, 0, true, 10)
	tr.RecordExec(200, 0, "mid", 1, 10, 11, 12, 13)
	tr.RecordEmit(200, 0, "mid", 300, 0, 1, false, 13)
	tr.RecordExec(300, 0, "sink", 2, 13, 14, 15, 16)
	tr.RecordExec(300, 0, "sink", 3, 13, 20, 21, 22) // replay
	tr.RecordAck(300, 0, 2, 17)

	traces := tr.Assemble(4)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	trace := traces[0]
	if !trace.Complete {
		t.Fatalf("trace not complete: %+v", trace)
	}
	if len(trace.Hops) != 3 {
		t.Fatalf("hops = %d, want 3: %+v", len(trace.Hops), trace.Hops)
	}
	root, mid, sink := trace.Hops[0], trace.Hops[1], trace.Hops[2]
	if !root.Synthesized || root.PE != "gen" {
		t.Errorf("root hop: %+v", root)
	}
	if mid.PE != "mid" || mid.Worker != 1 || mid.EnqueuedAt != 10 {
		t.Errorf("mid hop: %+v", mid)
	}
	if sink.PE != "sink" || sink.Executions != 2 || sink.AckedAt != 17 {
		t.Errorf("sink hop: %+v", sink)
	}
}

func TestTracerSamplePeriod(t *testing.T) {
	tr := newTracer(4, 16)
	hits := 0
	for i := 0; i < 16; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("hits = %d, want 4", hits)
	}
	every1 := newTracer(1, 16)
	for i := 0; i < 3; i++ {
		if !every1.Sample() {
			t.Fatal("sampleEvery=1 must always sample")
		}
	}
}

func TestTracerDisabled(t *testing.T) {
	reg := New(Config{TraceSampleEvery: -1})
	if reg.Tracer() != nil {
		t.Fatal("tracer should be nil when disabled")
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := newTracer(1, 8)
	for i := 0; i < 100; i++ {
		tr.RecordAck(uint64(i+1), 0, 0, int64(i))
	}
	events, total := tr.Events()
	if len(events) != 8 {
		t.Fatalf("retained = %d, want 8", len(events))
	}
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if events[0].Src != 93 || events[7].Src != 100 {
		t.Fatalf("ring order wrong: first=%d last=%d", events[0].Src, events[7].Src)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := New(Config{TraceSampleEvery: 1})
	wm := reg.Worker(0)
	wm.Pull.Observe(5000)
	wm.Tasks.Inc()
	reg.State().Add.Observe(3000)
	reg.State().FenceDrops.Inc()
	reg.Tracer().RecordExec(1, 0, "pe", 0, 1, 2, 3, 4)

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workers.Pull.Count != 1 || back.State == nil || back.State.FenceDrops != 1 {
		t.Fatalf("round trip lost data: %s", raw)
	}
	if _, ok := back.State.Ops["add"]; !ok {
		t.Fatalf("state ops missing add: %s", raw)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	reg := New(Config{FlightRing: 3, TraceSampleEvery: -1})
	for i := 0; i < 5; i++ {
		reg.Worker(0).Tasks.Inc()
		reg.RecordFlight()
	}
	flights := reg.Flights()
	if len(flights) != 3 {
		t.Fatalf("flights = %d, want 3", len(flights))
	}
	// Oldest-first: task counts 3, 4, 5.
	for i, want := range []int64{3, 4, 5} {
		if flights[i].Workers.Tasks != want {
			t.Fatalf("flight %d tasks = %d, want %d", i, flights[i].Workers.Tasks, want)
		}
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	reg := New(Config{})
	reg.Worker(0).Pull.Observe(1500)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics is not snapshot JSON: %v\n%s", err, body)
	}
	if snap.Workers.Pull.Count != 1 {
		t.Fatalf("snapshot over HTTP lost data: %s", body)
	}

	pp, err := client.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pp.StatusCode)
	}
}
