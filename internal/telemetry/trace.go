package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Trace-event kinds. An emit event links a child task to the execution that
// produced it; an exec event spans one execution of a task on a worker; an
// ack event marks the task's delivery being released back to the transport.
const (
	KindEmit = iota
	KindExec
	KindAck
)

// TraceEvent is one recorded hop event, keyed by the task's deterministic
// provenance identity (codec.Task.Src/Seq) — the same identity the
// exactly-once fence rides, so a replayed execution of a task lands in the
// same trace as its original.
type TraceEvent struct {
	Kind int
	// Src/Seq identify the task the event describes (the child for emits).
	Src, Seq uint64
	// ParentSrc/ParentSeq (emit only) identify the execution that emitted it.
	ParentSrc, ParentSeq uint64
	// PE is the executing node (exec) or the emitting node (emit).
	PE string
	// Worker is the worker slot the event happened on.
	Worker int
	// Root (emit only) marks an emission from a source's Generate execution —
	// the head of a complete source→sink trace.
	Root bool
	// Timestamps in UnixNano. Exec events carry all four (EnqueuedAt is the
	// emission time stamped into the task); emit and ack events carry only At.
	EnqueuedAt, PulledAt, StartAt, EndAt, At int64
}

// Tracer samples task traces into a bounded ring buffer. A task is traced
// when its TraceAt stamp is non-zero; every child of a traced task is traced
// in turn, and untraced executions start a new trace on every sampleEvery-th
// emission. Recording takes a mutex — acceptable because only the sampled
// fraction of tasks ever reaches it.
type Tracer struct {
	every int64
	n     atomic.Int64

	mu     sync.Mutex
	ring   []TraceEvent
	at     int
	filled bool
	total  int64
}

func newTracer(every, ring int) *Tracer {
	return &Tracer{every: int64(every), ring: make([]TraceEvent, 0, ring)}
}

// SampleEvery returns the sampling period.
func (t *Tracer) SampleEvery() int { return int(t.every) }

// Sample reports whether a new trace should start at this emission: every
// every-th call returns true (the first call always does, so short runs still
// produce a trace).
func (t *Tracer) Sample() bool { return (t.n.Add(1)-1)%t.every == 0 }

func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if !t.filled && len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		if len(t.ring) == cap(t.ring) {
			t.filled = true
		}
		return
	}
	t.ring[t.at] = e
	t.at = (t.at + 1) % len(t.ring)
}

// RecordEmit records a traced emission: parent execution identity → child
// identity, with the emitting PE and the emission timestamp.
func (t *Tracer) RecordEmit(parentSrc, parentSeq uint64, parentPE string, childSrc, childSeq uint64, worker int, root bool, at int64) {
	t.record(TraceEvent{Kind: KindEmit, Src: childSrc, Seq: childSeq,
		ParentSrc: parentSrc, ParentSeq: parentSeq, PE: parentPE, Worker: worker, Root: root, At: at})
}

// RecordExec records one execution span of a traced task.
func (t *Tracer) RecordExec(src, seq uint64, pe string, worker int, enqueuedAt, pulledAt, startAt, endAt int64) {
	t.record(TraceEvent{Kind: KindExec, Src: src, Seq: seq, PE: pe, Worker: worker,
		EnqueuedAt: enqueuedAt, PulledAt: pulledAt, StartAt: startAt, EndAt: endAt})
}

// RecordAck records a traced delivery's release.
func (t *Tracer) RecordAck(src, seq uint64, worker int, at int64) {
	t.record(TraceEvent{Kind: KindAck, Src: src, Seq: seq, Worker: worker, At: at})
}

// Events returns the retained events, oldest first, plus the total number
// ever recorded (events beyond the ring size were evicted).
func (t *Tracer) Events() ([]TraceEvent, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.ring))
	if !t.filled {
		return append(out, t.ring...), t.total
	}
	out = append(out, t.ring[t.at:]...)
	return append(out, t.ring[:t.at]...), t.total
}

// Hop is one task's passage through one worker within a trace.
type Hop struct {
	// ID is the task identity as "src:seq" (base-16).
	ID string `json:"id"`
	// PE is the node that executed (or, for synthesized hops, emitted).
	PE string `json:"pe,omitempty"`
	// Worker is the executing worker slot.
	Worker int `json:"worker"`
	// Span timestamps in UnixNano; zero when the event was not captured.
	EnqueuedAt int64 `json:"enqueued_at,omitempty"`
	PulledAt   int64 `json:"pulled_at,omitempty"`
	StartedAt  int64 `json:"started_at,omitempty"`
	EndedAt    int64 `json:"ended_at,omitempty"`
	AckedAt    int64 `json:"acked_at,omitempty"`
	// Executions counts recorded executions of the task — >1 exactly when a
	// kill-and-replay (or stale-claim race) re-ran it.
	Executions int `json:"executions,omitempty"`
	// Synthesized marks a hop reconstructed from its emit record alone (the
	// untraced root execution that started the trace).
	Synthesized bool `json:"synthesized,omitempty"`
}

// Trace is one reconstructed task path, root first.
type Trace struct {
	// ID is the root hop's task identity.
	ID string `json:"id"`
	// Complete reports that the path reaches back to a source's Generate
	// execution — a full source→sink reconstruction.
	Complete bool  `json:"complete"`
	Hops     []Hop `json:"hops"`
}

type traceID struct{ src, seq uint64 }

func (id traceID) String() string { return fmt.Sprintf("%x:%x", id.src, id.seq) }

// Assemble joins the retained events into per-task traces: leaves (executed
// tasks that emitted nothing traced) are walked back through emit parent
// links to their root. It returns at most max traces, complete and longer
// paths first.
func (t *Tracer) Assemble(max int) []Trace {
	events, _ := t.Events()
	execs := map[traceID][]TraceEvent{}
	emits := map[traceID]TraceEvent{} // child id → its emit record
	acks := map[traceID]int64{}
	parents := map[traceID]bool{} // ids that emitted a traced child
	for _, e := range events {
		id := traceID{e.Src, e.Seq}
		switch e.Kind {
		case KindExec:
			execs[id] = append(execs[id], e)
		case KindEmit:
			emits[id] = e
			parents[traceID{e.ParentSrc, e.ParentSeq}] = true
		case KindAck:
			acks[id] = e.At
		}
	}

	var leaves []traceID
	for id := range execs {
		if !parents[id] {
			leaves = append(leaves, id)
		}
	}
	sort.Slice(leaves, func(i, j int) bool {
		a, b := leaves[i], leaves[j]
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})

	var traces []Trace
	for _, leaf := range leaves {
		var hops []Hop
		complete := false
		cur := leaf
		for depth := 0; depth < 64; depth++ {
			em, hasEmit := emits[cur]
			hops = append([]Hop{hopFor(cur, execs[cur], acks[cur], em, hasEmit)}, hops...)
			if !hasEmit {
				break
			}
			pid := traceID{em.ParentSrc, em.ParentSeq}
			if len(execs[pid]) == 0 {
				// The parent execution was untraced (the trace started at this
				// emission): reconstruct its hop from the emit record alone.
				hops = append([]Hop{{ID: pid.String(), PE: em.PE, Worker: em.Worker,
					EndedAt: em.At, Synthesized: true}}, hops...)
				complete = em.Root
				break
			}
			cur = pid
		}
		traces = append(traces, Trace{ID: hops[0].ID, Complete: complete, Hops: hops})
	}
	sort.SliceStable(traces, func(i, j int) bool {
		if traces[i].Complete != traces[j].Complete {
			return traces[i].Complete
		}
		return len(traces[i].Hops) > len(traces[j].Hops)
	})
	if len(traces) > max {
		traces = traces[:max]
	}
	return traces
}

// hopFor builds the hop of one traced task from its recorded events. The
// earliest execution supplies the span; the emit record that created the task
// supplies the enqueue time when no execution was captured.
func hopFor(id traceID, execs []TraceEvent, ackedAt int64, em TraceEvent, hasEmit bool) Hop {
	hop := Hop{ID: id.String(), AckedAt: ackedAt, Executions: len(execs)}
	if len(execs) == 0 {
		if hasEmit {
			hop.EnqueuedAt = em.At
		}
		return hop
	}
	first := execs[0]
	for _, e := range execs[1:] {
		if e.StartAt < first.StartAt {
			first = e
		}
	}
	hop.PE = first.PE
	hop.Worker = first.Worker
	hop.EnqueuedAt = first.EnqueuedAt
	hop.PulledAt = first.PulledAt
	hop.StartedAt = first.StartAt
	hop.EndedAt = first.EndAt
	return hop
}
