package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// linear builds src → a → b → sink.
func linear(t *testing.T) *Graph {
	t.Helper()
	g := New("linear")
	g.Add(func() core.PE {
		return core.NewSource("src", func(ctx *core.Context) error { return nil })
	})
	g.Add(func() core.PE {
		return core.NewMap("a", func(ctx *core.Context, v any) (any, error) { return v, nil })
	})
	g.Add(func() core.PE {
		return core.NewMap("b", func(ctx *core.Context, v any) (any, error) { return v, nil })
	})
	g.Add(func() core.PE {
		return core.NewSink("sink", func(ctx *core.Context, v any) error { return nil })
	})
	g.Pipe("src", "a")
	g.Pipe("a", "b")
	g.Pipe("b", "sink")
	return g
}

func TestValidateLinear(t *testing.T) {
	g := linear(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"src", "a", "b", "sink"}
	for i, name := range want {
		if order[i] != name {
			t.Fatalf("topo order %v", order)
		}
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := linear(t)
	if s := g.Sources(); len(s) != 1 || s[0].Name != "src" {
		t.Fatalf("sources: %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0].Name != "sink" {
		t.Fatalf("sinks: %v", s)
	}
	if len(g.OutEdges("a")) != 1 || len(g.InEdges("a")) != 1 {
		t.Error("edge lookup")
	}
	if g.Node("a") == nil || g.Node("zzz") != nil {
		t.Error("node lookup")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	g := New("dup")
	add := func() {
		g.Add(func() core.PE {
			return core.NewSource("same", func(ctx *core.Context) error { return nil })
		})
	}
	add()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	add()
}

func TestConnectUnknownPanics(t *testing.T) {
	g := linear(t)
	for _, fn := range []func(){
		func() { g.Pipe("nope", "a") },
		func() { g.Pipe("a", "nope") },
		func() { g.Connect("a", "badport", "b", core.PortIn) },
		func() { g.Connect("a", core.PortOut, "b", "badport") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New("cycle")
	g.Add(func() core.PE {
		return core.NewSource("src", func(ctx *core.Context) error { return nil })
	})
	g.Add(func() core.PE {
		return core.NewMap("a", func(ctx *core.Context, v any) (any, error) { return v, nil })
	})
	g.Add(func() core.PE {
		return core.NewMap("b", func(ctx *core.Context, v any) (any, error) { return v, nil })
	})
	g.Pipe("src", "a")
	g.Pipe("a", "b")
	g.Pipe("b", "a")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestValidateRejectsEmptyAndSourceless(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Error("empty graph must fail validation")
	}
	g := New("nosource")
	g.Add(func() core.PE {
		return core.NewMap("only", func(ctx *core.Context, v any) (any, error) { return v, nil })
	})
	// "only" has no in-edges but is not a Source implementation.
	if err := g.Validate(); err == nil {
		t.Error("map-without-inputs must fail validation")
	}
}

func TestValidateRejectsGroupByWithoutKey(t *testing.T) {
	g := linear(t)
	g.OutEdges("a")[0].SetGrouping(Grouping{Kind: GroupBy})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "key") {
		t.Fatalf("want key error, got %v", err)
	}
}

func TestGroupingRouting(t *testing.T) {
	shuffle := ShuffleGrouping()
	seen := map[int]bool{}
	for seq := uint64(0); seq < 8; seq++ {
		seen[shuffle.RouteInstance(nil, seq, 4)] = true
	}
	if len(seen) != 4 {
		t.Errorf("shuffle should cover all instances, got %v", seen)
	}

	groupBy := GroupByKey(func(v any) string { return v.(string) })
	a1 := groupBy.RouteInstance("Texas", 0, 4)
	a2 := groupBy.RouteInstance("Texas", 99, 4)
	if a1 != a2 {
		t.Error("group-by must be stable per key")
	}
	if a1 < 0 || a1 >= 4 {
		t.Errorf("instance out of range: %d", a1)
	}

	global := GlobalGrouping()
	for seq := uint64(0); seq < 5; seq++ {
		if global.RouteInstance("x", seq, 4) != 0 {
			t.Error("global must route to instance 0")
		}
	}

	if OneToAllGrouping().RouteInstance("x", 0, 4) != -1 {
		t.Error("one-to-all must signal broadcast")
	}
	// Single instance: everything goes to 0.
	if groupBy.RouteInstance("x", 0, 1) != 0 {
		t.Error("n=1 routes to 0")
	}
}

func TestGroupByDistributesKeysProperty(t *testing.T) {
	groupBy := GroupByKey(func(v any) string { return v.(string) })
	f := func(key string, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		inst := groupBy.RouteInstance(key, 0, n)
		return inst >= 0 && inst < n &&
			inst == groupBy.RouteInstance(key, 12345, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupingString(t *testing.T) {
	names := map[GroupingKind]string{
		Shuffle: "shuffle", GroupBy: "group-by", Global: "global", OneToAll: "one-to-all",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d → %q want %q", k, k.String(), want)
		}
	}
}

func TestAllocateInstancesEvenSplit(t *testing.T) {
	g := linear(t)
	alloc, err := g.AllocateInstances(10)
	if err != nil {
		t.Fatal(err)
	}
	// src gets 1; a, b, sink split the remaining 9 → 3 each.
	if alloc["src"] != 1 || alloc["a"] != 3 || alloc["b"] != 3 || alloc["sink"] != 3 {
		t.Fatalf("alloc: %v", alloc)
	}
}

func TestAllocateInstancesRespectsExplicit(t *testing.T) {
	g := linear(t)
	g.Node("a").SetInstances(4)
	alloc, err := g.AllocateInstances(12)
	if err != nil {
		t.Fatal(err)
	}
	if alloc["a"] != 4 || alloc["src"] != 1 {
		t.Fatalf("alloc: %v", alloc)
	}
	// b and sink split 12-5=7 → 3 each.
	if alloc["b"] != 3 || alloc["sink"] != 3 {
		t.Fatalf("alloc: %v", alloc)
	}
}

func TestAllocateInstancesInsufficientBudget(t *testing.T) {
	g := linear(t)
	g.Node("a").SetInstances(6)
	if _, err := g.AllocateInstances(4); err == nil {
		t.Fatal("expected insufficient-budget error")
	}
	if g.MinStaticProcesses() != 1+6+1+1 {
		t.Errorf("MinStaticProcesses=%d", g.MinStaticProcesses())
	}
}

func TestStatefulMarkers(t *testing.T) {
	g := linear(t)
	if g.HasStateful() {
		t.Error("no stateful nodes yet")
	}
	g.Node("b").SetStateful(true)
	if !g.HasStateful() {
		t.Error("stateful marker lost")
	}
	if g.HasNonShuffleGrouping() {
		t.Error("no grouped edges yet")
	}
	g.OutEdges("a")[0].SetGrouping(GlobalGrouping())
	if !g.HasNonShuffleGrouping() {
		t.Error("grouping marker lost")
	}
}

func TestDiamondTopology(t *testing.T) {
	g := New("diamond")
	g.Add(func() core.PE {
		return core.NewSource("src", func(ctx *core.Context) error { return nil })
	})
	for _, name := range []string{"left", "right"} {
		name := name
		g.Add(func() core.PE {
			return core.NewMap(name, func(ctx *core.Context, v any) (any, error) { return v, nil })
		})
	}
	g.Add(func() core.PE {
		return core.NewSink("join", func(ctx *core.Context, v any) error { return nil })
	})
	g.Pipe("src", "left")
	g.Pipe("src", "right")
	g.Pipe("left", "join")
	g.Pipe("right", "join")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.InEdges("join")) != 2 || len(g.OutEdges("src")) != 2 {
		t.Error("diamond edges")
	}
	order, _ := g.TopoSort()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["src"] < pos["left"] && pos["left"] < pos["join"] && pos["right"] < pos["join"]) {
		t.Errorf("order: %v", order)
	}
}
