// Package graph models dispel4py abstract workflows: directed acyclic graphs
// whose nodes are processing elements (PEs) and whose edges carry streaming
// data between PE ports under a grouping discipline.
//
// A node holds a PE *factory* rather than a PE value: every mapping creates
// fresh PE copies per instance (and, for dynamic mappings, per worker
// process), mirroring how dispel4py ships a copy of the workflow to each
// process. The prototype PE produced at Add time is used only for port
// introspection and validation.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// GroupingKind enumerates the paper's connection grouping disciplines.
type GroupingKind int

const (
	// Shuffle distributes values round-robin across destination instances
	// (dispel4py's default when no grouping is declared).
	Shuffle GroupingKind = iota
	// GroupBy routes values with equal keys to the same destination instance
	// ("operates akin to MapReduce").
	GroupBy
	// Global routes every value to a single destination instance (the
	// paper's "global grouping" used by the top-3-happiest PE).
	Global
	// OneToAll broadcasts every value to all destination instances.
	OneToAll
)

// String names the grouping kind.
func (k GroupingKind) String() string {
	switch k {
	case Shuffle:
		return "shuffle"
	case GroupBy:
		return "group-by"
	case Global:
		return "global"
	case OneToAll:
		return "one-to-all"
	default:
		return fmt.Sprintf("grouping(%d)", int(k))
	}
}

// KeyFunc extracts the grouping key from a value for GroupBy edges.
type KeyFunc func(value any) string

// Grouping is a routing discipline attached to an edge.
type Grouping struct {
	Kind GroupingKind
	Key  KeyFunc // required for GroupBy
}

// ShuffleGrouping returns the default grouping.
func ShuffleGrouping() Grouping { return Grouping{Kind: Shuffle} }

// GroupByKey returns a group-by grouping with the given key extractor.
func GroupByKey(key KeyFunc) Grouping { return Grouping{Kind: GroupBy, Key: key} }

// GlobalGrouping routes everything to one instance.
func GlobalGrouping() Grouping { return Grouping{Kind: Global} }

// OneToAllGrouping broadcasts to every instance.
func OneToAllGrouping() Grouping { return Grouping{Kind: OneToAll} }

// RouteInstance picks the destination instance(s) for a value among n
// instances. seq is the sender's per-edge emission counter (for round-robin).
// For OneToAll the caller must broadcast to all instances; RouteInstance
// returns -1 to signal that.
func (g Grouping) RouteInstance(value any, seq uint64, n int) int {
	if n <= 1 {
		return 0
	}
	switch g.Kind {
	case GroupBy:
		if g.Key == nil {
			return int(seq % uint64(n))
		}
		return int(Hash32(g.Key(value)) % uint32(n))
	case Global:
		return 0
	case OneToAll:
		return -1
	default:
		return int(seq % uint64(n))
	}
}

// Hash32 hashes a string with FNV-1a. It is the one hash the engine uses
// everywhere a stable name-derived value is needed: group-by routing here,
// and per-node/per-instance RNG seeds in package runtime.
func Hash32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// StateKind declares how a PE's cross-call state is managed.
type StateKind int

const (
	// StateNone is the default: any state lives in PE struct fields and is
	// invisible to the engine (the seed's legacy model).
	StateNone StateKind = iota
	// StateKeyed declares managed state partitioned by the GroupBy key of
	// the node's in-edges: each key's entry is owned by whichever instance
	// (or worker) the key routes to, so the PE scales past one instance.
	StateKeyed
	// StateSingleton declares one managed state cell for the whole PE
	// (top-k style global aggregates). With instances > 1 the in-edges must
	// use Global grouping so a single instance observes the stream.
	StateSingleton
)

// String names the state kind.
func (k StateKind) String() string {
	switch k {
	case StateNone:
		return "none"
	case StateKeyed:
		return "keyed"
	case StateSingleton:
		return "singleton"
	default:
		return fmt.Sprintf("state(%d)", int(k))
	}
}

// Node is one PE in the abstract workflow.
type Node struct {
	// Name is the unique node name (defaults to the prototype PE's name).
	Name string
	// Factory creates a fresh PE copy for one instance.
	Factory func() core.PE
	// Prototype is one PE created at Add time, used for port introspection.
	Prototype core.PE
	// Instances is the requested instance count; 0 means "let the mapping
	// decide" (the static allocation formula).
	Instances int
	// Stateful marks PEs whose cross-call state must be preserved per
	// instance. Dynamic (non-hybrid) mappings reject stateful nodes whose
	// state is not managed (State == StateNone).
	Stateful bool
	// State declares managed state (package state). Managed-state nodes get
	// a Store wired into their Context, may run under dynamic mappings, and
	// have their Final hook invoked exactly once per run by the engine.
	State StateKind
}

// SetInstances fixes the node's instance count and returns the node for
// chaining.
func (n *Node) SetInstances(count int) *Node {
	n.Instances = count
	return n
}

// SetStateful marks the node stateful and returns it for chaining.
func (n *Node) SetStateful(stateful bool) *Node {
	n.Stateful = stateful
	return n
}

// SetKeyedState declares managed keyed state. The node is implicitly
// stateful (static mappings pin its instances; hybrid gives it private
// queues), but unlike legacy field state it may also run under the plain
// dynamic mappings, because the managed store is shared and atomic.
func (n *Node) SetKeyedState() *Node {
	n.State = StateKeyed
	n.Stateful = true
	return n
}

// SetSingletonState declares managed singleton state.
func (n *Node) SetSingletonState() *Node {
	n.State = StateSingleton
	n.Stateful = true
	return n
}

// HasManagedState reports whether the node declared managed state.
func (n *Node) HasManagedState() bool { return n.State != StateNone }

// IsSource reports whether the node's PE generates the input stream.
func (n *Node) IsSource() bool {
	_, ok := n.Prototype.(core.Source)
	return ok
}

// Edge is one connection between PE ports.
type Edge struct {
	From     string
	FromPort string
	To       string
	ToPort   string
	Grouping Grouping
}

// SetGrouping attaches a grouping discipline and returns the edge.
func (e *Edge) SetGrouping(g Grouping) *Edge {
	e.Grouping = g
	return e
}

// Graph is an abstract workflow.
type Graph struct {
	// Name labels the workflow in reports.
	Name string

	nodes map[string]*Node
	order []string // insertion order for deterministic iteration
	edges []*Edge
}

// New creates an empty workflow graph.
func New(name string) *Graph {
	return &Graph{Name: name, nodes: make(map[string]*Node)}
}

// Add registers a PE factory under the prototype's name and returns the
// node. It panics on duplicate names (a programming error in workflow
// construction, caught immediately at composition time).
func (g *Graph) Add(factory func() core.PE) *Node {
	proto := factory()
	name := proto.Name()
	if _, dup := g.nodes[name]; dup {
		panic(fmt.Sprintf("graph: duplicate PE name %q", name))
	}
	n := &Node{Name: name, Factory: factory, Prototype: proto}
	g.nodes[name] = n
	g.order = append(g.order, name)
	return n
}

// Connect wires from:fromPort → to:toPort with the default shuffle grouping
// and returns the edge for grouping customization. It panics on unknown
// nodes or ports (composition-time programming errors).
func (g *Graph) Connect(from, fromPort, to, toPort string) *Edge {
	src, ok := g.nodes[from]
	if !ok {
		panic(fmt.Sprintf("graph: connect from unknown PE %q", from))
	}
	dst, ok := g.nodes[to]
	if !ok {
		panic(fmt.Sprintf("graph: connect to unknown PE %q", to))
	}
	if !contains(src.Prototype.OutPorts(), fromPort) {
		panic(fmt.Sprintf("graph: PE %q has no output port %q", from, fromPort))
	}
	if !contains(dst.Prototype.InPorts(), toPort) {
		panic(fmt.Sprintf("graph: PE %q has no input port %q", to, toPort))
	}
	e := &Edge{From: from, FromPort: fromPort, To: to, ToPort: toPort, Grouping: ShuffleGrouping()}
	g.edges = append(g.edges, e)
	return e
}

// Pipe connects the default output of from to the default input of to.
func (g *Graph) Pipe(from, to string) *Edge {
	return g.Connect(from, core.PortOut, to, core.PortIn)
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[name] }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, g.nodes[name])
	}
	return out
}

// Edges returns all edges in insertion order.
func (g *Graph) Edges() []*Edge { return g.edges }

// OutEdges returns edges leaving the named node (any port).
func (g *Graph) OutEdges(name string) []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns edges entering the named node (any port).
func (g *Graph) InEdges(name string) []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// Sources returns nodes with no incoming edges, in insertion order.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, name := range g.order {
		if len(g.InEdges(name)) == 0 {
			out = append(out, g.nodes[name])
		}
	}
	return out
}

// Sinks returns nodes with no outgoing edges, in insertion order.
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, name := range g.order {
		if len(g.OutEdges(name)) == 0 {
			out = append(out, g.nodes[name])
		}
	}
	return out
}

// HasStateful reports whether any node is marked stateful.
func (g *Graph) HasStateful() bool {
	for _, n := range g.nodes {
		if n.Stateful {
			return true
		}
	}
	return false
}

// HasManagedState reports whether any node declares managed state.
func (g *Graph) HasManagedState() bool {
	for _, n := range g.nodes {
		if n.HasManagedState() {
			return true
		}
	}
	return false
}

// HasUnmanagedStateful reports whether any node is stateful without managed
// state (the legacy field-state model dynamic mappings cannot run).
func (g *Graph) HasUnmanagedStateful() bool {
	for _, n := range g.nodes {
		if n.Stateful && !n.HasManagedState() {
			return true
		}
	}
	return false
}

// ManagedStateNodes returns the managed-state nodes in insertion order.
func (g *Graph) ManagedStateNodes() []*Node {
	var out []*Node
	for _, name := range g.order {
		if n := g.nodes[name]; n.HasManagedState() {
			out = append(out, n)
		}
	}
	return out
}

// HasNonShuffleGrouping reports whether any edge uses a grouping other than
// shuffle. Plain dynamic scheduling cannot honor such groupings (the paper's
// motivation for hybrid_redis).
func (g *Graph) HasNonShuffleGrouping() bool {
	for _, e := range g.edges {
		if e.Grouping.Kind != Shuffle {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: at least one source, acyclicity,
// every GroupBy edge has a key function, stateful sanity (group-by edges
// should target stateful PEs when instances > 1 — warning-level issues
// return as errors to keep workflows honest).
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("graph %s: empty workflow", g.Name)
	}
	if len(g.Sources()) == 0 {
		return fmt.Errorf("graph %s: no source PE (every workflow needs a generator)", g.Name)
	}
	for _, src := range g.Sources() {
		if !src.IsSource() {
			return fmt.Errorf("graph %s: PE %q has no inputs but does not implement core.Source", g.Name, src.Name)
		}
	}
	for _, e := range g.edges {
		if e.Grouping.Kind == GroupBy && e.Grouping.Key == nil {
			return fmt.Errorf("graph %s: edge %s→%s uses group-by without a key function", g.Name, e.From, e.To)
		}
	}
	for _, name := range g.order {
		n := g.nodes[name]
		if !n.HasManagedState() {
			continue
		}
		if n.IsSource() {
			return fmt.Errorf("graph %s: source PE %q cannot declare managed state", g.Name, n.Name)
		}
		switch n.State {
		case StateKeyed:
			// Keyed state is partitioned by the group key: every in-edge
			// must carry one, or the partition contract is meaningless.
			for _, e := range g.InEdges(n.Name) {
				if e.Grouping.Kind != GroupBy {
					return fmt.Errorf("graph %s: edge %s→%s must use group-by (PE %s declares keyed state)",
						g.Name, e.From, e.To, n.Name)
				}
			}
		case StateSingleton:
			if n.Instances > 1 {
				for _, e := range g.InEdges(n.Name) {
					if e.Grouping.Kind != Global {
						return fmt.Errorf("graph %s: edge %s→%s must use global grouping (PE %s declares singleton state with %d instances)",
							g.Name, e.From, e.To, n.Name, n.Instances)
					}
				}
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns node names in topological order, or an error when the
// graph has a cycle.
func (g *Graph) TopoSort() ([]string, error) {
	inDeg := make(map[string]int, len(g.nodes))
	for name := range g.nodes {
		inDeg[name] = 0
	}
	for _, e := range g.edges {
		inDeg[e.To]++
	}
	// Deterministic: seed the queue in insertion order.
	var queue []string
	for _, name := range g.order {
		if inDeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	var out []string
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		out = append(out, name)
		for _, e := range g.OutEdges(name) {
			inDeg[e.To]--
			if inDeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("graph %s: cycle detected (%d of %d nodes sorted)", g.Name, len(out), len(g.nodes))
	}
	return out, nil
}

// AllocateInstances resolves per-node instance counts for a static mapping
// with the given total process budget, following dispel4py's allocation: a
// node with an explicit Instances keeps it; sources default to 1 instance;
// the remaining processes are split evenly among the remaining nodes (at
// least 1 each). The returned error reports an insufficient budget (the
// paper: multi "demands a minimum of processes" equal to total instances).
func (g *Graph) AllocateInstances(processes int) (map[string]int, error) {
	alloc := make(map[string]int, len(g.nodes))
	fixed := 0
	var flexible []string
	for _, name := range g.order {
		n := g.nodes[name]
		switch {
		case n.Instances > 0:
			alloc[name] = n.Instances
			fixed += n.Instances
		case n.IsSource():
			alloc[name] = 1
			fixed++
		case n.State == StateSingleton:
			// A singleton-state node with no explicit count must not be
			// spread by the flexible split: its Global-grouping contract is
			// only validated for explicit Instances > 1, so pin it at 1.
			alloc[name] = 1
			fixed++
		default:
			flexible = append(flexible, name)
		}
	}
	if len(flexible) > 0 {
		per := (processes - fixed) / len(flexible)
		if per < 1 {
			per = 1
		}
		for _, name := range flexible {
			alloc[name] = per
			fixed += per
		}
	}
	if fixed > processes {
		return nil, fmt.Errorf(
			"graph %s: static mapping needs at least %d processes (one per PE instance), got %d",
			g.Name, minProcesses(alloc), processes)
	}
	return alloc, nil
}

// minProcesses sums an allocation with every flexible count forced to 1.
func minProcesses(alloc map[string]int) int {
	total := 0
	names := make([]string, 0, len(alloc))
	for name := range alloc {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := alloc[name]
		if c < 1 {
			c = 1
		}
		total += c
	}
	return total
}

// MinStaticProcesses returns the minimum process budget a static mapping
// needs for this graph (sum of explicit instance counts, sources at 1,
// flexible nodes at 1).
func (g *Graph) MinStaticProcesses() int {
	total := 0
	for _, name := range g.order {
		n := g.nodes[name]
		switch {
		case n.Instances > 0:
			total += n.Instances
		default:
			total++
		}
	}
	return total
}
