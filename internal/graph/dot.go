package graph

import (
	"fmt"
	"strings"
)

// DOT renders the abstract workflow in Graphviz dot format: PEs as boxes
// (stateful ones shaded, sources and sinks shaped), edges labeled with
// their ports when non-default and with their grouping when non-shuffle.
// Pipe the output through `dot -Tsvg` to get the paper-style workflow
// diagrams (Figures 5–7).
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes() {
		attrs := []string{fmt.Sprintf("label=%q", nodeLabel(n))}
		switch {
		case n.IsSource():
			attrs = append(attrs, "shape=cds")
		case len(g.OutEdges(n.Name)) == 0:
			attrs = append(attrs, "shape=note")
		}
		if n.Stateful {
			attrs = append(attrs, "style=filled", "fillcolor=lightgrey")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name, strings.Join(attrs, ", "))
	}
	for _, e := range g.Edges() {
		var labels []string
		if e.FromPort != "out" || e.ToPort != "in" {
			labels = append(labels, e.FromPort+"→"+e.ToPort)
		}
		if e.Grouping.Kind != Shuffle {
			labels = append(labels, e.Grouping.Kind.String())
		}
		if len(labels) > 0 {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, strings.Join(labels, "\\n"))
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// nodeLabel renders a node name with its instance count when pinned.
func nodeLabel(n *Node) string {
	if n.Instances > 1 {
		return fmt.Sprintf("%s ×%d", n.Name, n.Instances)
	}
	return n.Name
}
