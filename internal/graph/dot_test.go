package graph

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDOTRendersStructure(t *testing.T) {
	g := New("demo")
	g.Add(func() core.PE {
		return core.NewSource("src", func(ctx *core.Context) error { return nil })
	})
	g.Add(func() core.PE {
		return core.NewMap("work", func(ctx *core.Context, v any) (any, error) { return v, nil })
	})
	g.Add(func() core.PE {
		return core.NewSink("agg", func(ctx *core.Context, v any) error { return nil })
	}).SetInstances(4).SetStateful(true)
	g.Pipe("src", "work")
	g.Pipe("work", "agg").SetGrouping(GroupByKey(func(v any) string { return "k" }))

	dot := g.DOT()
	for _, want := range []string{
		`digraph "demo"`,
		`"src" [label="src", shape=cds]`,
		`"agg" [label="agg ×4", shape=note, style=filled, fillcolor=lightgrey]`,
		`"src" -> "work";`,
		`"work" -> "agg" [label="group-by"];`,
		"rankdir=LR",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTLabelsNonDefaultPorts(t *testing.T) {
	g := New("ports")
	g.Add(func() core.PE {
		return &multiOutPE{Base: core.NewBase("src2", nil, []string{"a", "b"})}
	})
	g.Add(func() core.PE {
		return core.NewSink("s1", func(ctx *core.Context, v any) error { return nil })
	})
	g.Connect("src2", "a", "s1", core.PortIn)
	dot := g.DOT()
	if !strings.Contains(dot, `label="a→in"`) {
		t.Errorf("port label missing:\n%s", dot)
	}
}

// multiOutPE is a source with two output ports for the port-label test.
type multiOutPE struct {
	core.Base
}

func (p *multiOutPE) Process(ctx *core.Context, port string, v any) error { return nil }
func (p *multiOutPE) Generate(ctx *core.Context) error                    { return nil }
