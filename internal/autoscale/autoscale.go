// Package autoscale implements the paper's Algorithm 1: the auto-scaler that
// gives dynamic scheduling its active/idle process states. A Controller owns
// the active_size; worker processes gate on it (workers whose index is at or
// beyond active_size park in an idle, non-accounted state); a monitoring
// loop samples a workload metric and applies a Strategy to grow or shrink
// the active size by one, as in the paper's "simple incremental approach".
//
// Two strategies mirror Section 3.2.2:
//
//   - QueueSizeStrategy (dyn_auto_multi): grow when the queue size increased
//     compared to the previous observation and sits above a floor threshold,
//     shrink otherwise.
//   - IdleTimeStrategy (dyn_auto_redis): shrink when the consumer group's
//     average idle time exceeds the configured reactivation threshold, grow
//     when consumers are busy.
package autoscale

import (
	"sync"
	"time"
)

// Config parameterizes a Controller (Algorithm 1's constructor parameters).
type Config struct {
	// MaxPoolSize is the total number of worker processes.
	MaxPoolSize int
	// InitialActive is the starting active size; 0 means MaxPoolSize/2 (the
	// paper's default).
	InitialActive int
	// MinActive floors shrinking; 0 means 1.
	MinActive int
	// Interval is the monitor sampling period; 0 means 2ms (scaled-down
	// counterpart of the paper's monitoring cadence).
	Interval time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxPoolSize < 1 {
		c.MaxPoolSize = 1
	}
	if c.InitialActive <= 0 {
		c.InitialActive = c.MaxPoolSize / 2
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.InitialActive < c.MinActive {
		c.InitialActive = c.MinActive
	}
	if c.InitialActive > c.MaxPoolSize {
		c.InitialActive = c.MaxPoolSize
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	return c
}

// Strategy decides the scaling delta from a metric sample ("when to scale"
// and "how to scale"; this work always answers the latter with ±1).
type Strategy interface {
	// Name identifies the strategy in traces.
	Name() string
	// Decide maps the latest metric sample to a size delta (-1, 0 or +1).
	Decide(sample float64) int
}

// QueueSizeStrategy is the dyn_auto_multi policy: scale up while the queue
// is growing and above Floor, scale down while it is shrinking or small.
type QueueSizeStrategy struct {
	// Floor is the "minimum threshold [that] prevents unnecessary scaling
	// during low demand".
	Floor float64

	prev    float64
	started bool
}

// Name implements Strategy.
func (s *QueueSizeStrategy) Name() string { return "queue-size" }

// Decide implements Strategy.
func (s *QueueSizeStrategy) Decide(queueSize float64) int {
	defer func() { s.prev = queueSize; s.started = true }()
	if !s.started {
		return 0
	}
	switch {
	case queueSize > s.prev && queueSize >= s.Floor:
		return +1
	case queueSize < s.prev || queueSize < s.Floor:
		return -1
	default:
		return 0
	}
}

// IdleTimeStrategy is the dyn_auto_redis policy: when the average idle time
// of active consumers exceeds Threshold (the time worth a reactivation and
// redeployment), deactivate a process; otherwise activate one.
type IdleTimeStrategy struct {
	// Threshold is the average idle duration above which a process is
	// logically deactivated.
	Threshold time.Duration
}

// Name implements Strategy.
func (s *IdleTimeStrategy) Name() string { return "idle-time" }

// Decide implements Strategy; the sample is the average idle time in
// milliseconds.
func (s *IdleTimeStrategy) Decide(avgIdleMs float64) int {
	if time.Duration(avgIdleMs*float64(time.Millisecond)) > s.Threshold {
		return -1
	}
	return +1
}

// TracePoint is one record of the auto-scaler's behaviour, the raw data of
// the paper's Figure 13.
type TracePoint struct {
	// Iteration counts monitor evaluations with changed metrics.
	Iteration int
	// Active is the active size after the decision.
	Active int
	// Metric is the sampled monitor value (queue size or avg idle ms).
	Metric float64
}

// Trace collects TracePoints; safe for concurrent use.
type Trace struct {
	mu     sync.Mutex
	points []TracePoint
}

// Record appends a point.
func (t *Trace) Record(p TracePoint) {
	t.mu.Lock()
	t.points = append(t.points, p)
	t.mu.Unlock()
}

// Points returns a snapshot of the recorded points.
func (t *Trace) Points() []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TracePoint(nil), t.points...)
}

// Controller is Algorithm 1's Auto_scaler: it owns active_size and lets
// worker goroutines park while their index is beyond it.
type Controller struct {
	cfg      Config
	strategy Strategy
	trace    *Trace

	mu         sync.Mutex
	cond       *sync.Cond
	active     int
	terminated bool
	iter       int
	lastMetric float64
	hasMetric  bool
}

// NewController builds a controller. trace may be nil.
func NewController(cfg Config, strategy Strategy, trace *Trace) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, strategy: strategy, trace: trace, active: cfg.InitialActive}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// ActiveSize returns the current active size.
func (c *Controller) ActiveSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

// Grow increases active_size by n, capped at MaxPoolSize (Algorithm 1's
// grow procedure), waking parked workers.
func (c *Controller) Grow(n int) {
	c.mu.Lock()
	c.active += n
	if c.active > c.cfg.MaxPoolSize {
		c.active = c.cfg.MaxPoolSize
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Shrink decreases active_size by n with the configured minimum (Algorithm
// 1's shrink procedure).
func (c *Controller) Shrink(n int) {
	c.mu.Lock()
	c.active -= n
	if c.active < c.cfg.MinActive {
		c.active = c.cfg.MinActive
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Step feeds one monitor sample through the strategy (Algorithm 1's
// auto_scale procedure) and records a trace point when the metric changed.
// Strategies implementing StepStrategy may request multi-step adjustments.
func (c *Controller) Step(sample float64) {
	var delta int
	if ss, ok := c.strategy.(StepStrategy); ok {
		delta = ss.DecideN(sample, c.ActiveSize())
	} else {
		delta = c.strategy.Decide(sample)
	}
	switch {
	case delta > 0:
		c.Grow(delta)
	case delta < 0:
		c.Shrink(-delta)
	}
	c.mu.Lock()
	changed := !c.hasMetric || sample != c.lastMetric
	c.lastMetric = sample
	c.hasMetric = true
	if changed {
		c.iter++
		if c.trace != nil {
			c.trace.Record(TracePoint{Iteration: c.iter, Active: c.active, Metric: sample})
		}
	}
	c.mu.Unlock()
}

// Admit blocks while worker index is beyond the active size (the idle /
// low-energy standby state). It returns false when the controller has been
// terminated, true when the worker is (again) active. The caller is
// responsible for process-time accounting around the call.
func (c *Controller) Admit(worker int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for worker >= c.active && !c.terminated {
		c.cond.Wait()
	}
	return !c.terminated
}

// Idle reports whether the worker would currently have to park.
func (c *Controller) Idle(worker int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return worker >= c.active
}

// Terminate releases all parked workers and stops the monitor loop.
func (c *Controller) Terminate() {
	c.mu.Lock()
	c.terminated = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Terminated reports whether Terminate was called.
func (c *Controller) Terminated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.terminated
}

// RunMonitor samples monitor every Interval and feeds the controller until
// Terminate is called. Call it in its own goroutine.
func (c *Controller) RunMonitor(monitor func() float64) {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for range ticker.C {
		if c.Terminated() {
			return
		}
		c.Step(monitor())
	}
}
