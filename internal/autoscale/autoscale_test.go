package autoscale

import (
	"sync"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	c := NewController(Config{MaxPoolSize: 16}, &QueueSizeStrategy{}, nil)
	cfg := c.Config()
	if cfg.InitialActive != 8 {
		t.Errorf("default initial active %d, want max/2=8", cfg.InitialActive)
	}
	if cfg.MinActive != 1 || cfg.Interval <= 0 {
		t.Errorf("defaults: %+v", cfg)
	}
	if c.ActiveSize() != 8 {
		t.Errorf("active=%d", c.ActiveSize())
	}
}

func TestGrowShrinkBounds(t *testing.T) {
	c := NewController(Config{MaxPoolSize: 4, InitialActive: 2}, &QueueSizeStrategy{}, nil)
	c.Grow(10)
	if c.ActiveSize() != 4 {
		t.Errorf("grow capped at max: %d", c.ActiveSize())
	}
	c.Shrink(10)
	if c.ActiveSize() != 1 {
		t.Errorf("shrink floored at min: %d", c.ActiveSize())
	}
}

func TestQueueSizeStrategy(t *testing.T) {
	s := &QueueSizeStrategy{Floor: 2}
	if d := s.Decide(5); d != 0 {
		t.Errorf("first sample should be neutral, got %d", d)
	}
	if d := s.Decide(8); d != 1 {
		t.Errorf("growing queue above floor should grow, got %d", d)
	}
	if d := s.Decide(3); d != -1 {
		t.Errorf("shrinking queue should shrink, got %d", d)
	}
	if d := s.Decide(3); d != 0 {
		t.Errorf("flat queue above floor should hold, got %d", d)
	}
	// Flat and above floor: hold.
	s2 := &QueueSizeStrategy{Floor: 2}
	s2.Decide(5)
	s2.Decide(6)
	if d := s2.Decide(6); d != 0 {
		t.Errorf("flat queue above floor should hold, got %d", d)
	}
	// Growing but under the floor: shrink (low-demand guard).
	s3 := &QueueSizeStrategy{Floor: 10}
	s3.Decide(1)
	if d := s3.Decide(2); d != -1 {
		t.Errorf("growth under floor should still shrink, got %d", d)
	}
}

func TestIdleTimeStrategy(t *testing.T) {
	s := &IdleTimeStrategy{Threshold: 50 * time.Millisecond}
	if d := s.Decide(80); d != -1 {
		t.Errorf("idle above threshold should shrink, got %d", d)
	}
	if d := s.Decide(10); d != 1 {
		t.Errorf("busy consumers should grow, got %d", d)
	}
}

func TestStepAppliesStrategyAndTraces(t *testing.T) {
	trace := &Trace{}
	c := NewController(Config{MaxPoolSize: 8, InitialActive: 4}, &QueueSizeStrategy{Floor: 1}, trace)
	c.Step(5) // first sample: neutral, records iteration 1
	c.Step(9) // grew → +1
	c.Step(9) // flat → hold, metric unchanged → no new trace point
	c.Step(2) // shrank → -1
	if got := c.ActiveSize(); got != 4 {
		t.Errorf("active=%d want 4 (4+1-1)", got)
	}
	pts := trace.Points()
	if len(pts) != 3 {
		t.Fatalf("trace points: %+v", pts)
	}
	if pts[1].Active != 5 || pts[1].Metric != 9 {
		t.Errorf("trace[1]: %+v", pts[1])
	}
	if pts[0].Iteration != 1 || pts[2].Iteration != 3 {
		t.Errorf("iterations: %+v", pts)
	}
}

func TestAdmitBlocksIdleWorkers(t *testing.T) {
	c := NewController(Config{MaxPoolSize: 4, InitialActive: 1}, &QueueSizeStrategy{}, nil)
	if !c.Admit(0) {
		t.Fatal("worker 0 must be admitted")
	}
	if !c.Idle(2) {
		t.Fatal("worker 2 should be idle at active=1")
	}
	admitted := make(chan bool, 1)
	go func() { admitted <- c.Admit(2) }()
	select {
	case <-admitted:
		t.Fatal("worker 2 admitted while idle")
	case <-time.After(30 * time.Millisecond):
	}
	c.Grow(2) // active=3 admits worker 2
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("admission after grow should be true")
		}
	case <-time.After(time.Second):
		t.Fatal("worker 2 never admitted after grow")
	}
}

func TestTerminateReleasesWorkers(t *testing.T) {
	c := NewController(Config{MaxPoolSize: 4, InitialActive: 1}, &QueueSizeStrategy{}, nil)
	var wg sync.WaitGroup
	results := make(chan bool, 3)
	for w := 1; w <= 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results <- c.Admit(w)
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	c.Terminate()
	wg.Wait()
	close(results)
	for ok := range results {
		if ok {
			t.Error("Admit should return false after Terminate")
		}
	}
	if !c.Terminated() {
		t.Error("Terminated flag")
	}
}

func TestRunMonitorLoop(t *testing.T) {
	trace := &Trace{}
	c := NewController(
		Config{MaxPoolSize: 8, InitialActive: 4, Interval: time.Millisecond},
		&IdleTimeStrategy{Threshold: 10 * time.Millisecond}, trace)
	go c.RunMonitor(func() float64 {
		return 2 // always below the 10ms threshold → keep growing
	})
	time.Sleep(40 * time.Millisecond)
	c.Terminate()
	time.Sleep(5 * time.Millisecond)
	if c.ActiveSize() != 8 {
		t.Errorf("monitor should have grown to max, active=%d", c.ActiveSize())
	}
	if len(trace.Points()) == 0 {
		t.Error("monitor produced no trace points")
	}
}
