package autoscale

import (
	"testing"
	"testing/quick"
)

func TestProportionalDecideN(t *testing.T) {
	s := &ProportionalQueueStrategy{TargetPerWorker: 2, MaxStep: 4}
	// Backlog 20 at target 2 wants 10 workers; at 4 active that's +6,
	// clamped to +4.
	if d := s.DecideN(20, 4); d != 4 {
		t.Errorf("burst: %d want 4", d)
	}
	// Backlog 2 wants 1 worker; at 8 active that's -7, clamped to -4.
	if d := s.DecideN(2, 8); d != -4 {
		t.Errorf("drain: %d want -4", d)
	}
	// At equilibrium (queue ≈ active × target), hold.
	if d := s.DecideN(8, 4); d != 0 {
		t.Errorf("equilibrium: %d want 0", d)
	}
}

func TestProportionalDefaults(t *testing.T) {
	s := &ProportionalQueueStrategy{}
	if s.Name() != "proportional-queue" {
		t.Error("name")
	}
	// Defaults: target 2, max step 4. Zero active is treated as 1.
	if d := s.DecideN(100, 0); d != 4 {
		t.Errorf("default clamp: %d", d)
	}
	// Decide collapses to sign.
	if s.Decide(100) != 1 || s.Decide(0) <= -5 {
		t.Error("Decide sign collapse")
	}
}

func TestControllerUsesStepStrategy(t *testing.T) {
	c := NewController(Config{MaxPoolSize: 16, InitialActive: 4},
		&ProportionalQueueStrategy{TargetPerWorker: 1, MaxStep: 8}, nil)
	// Queue of 12 at target 1 wants 12 workers → +8 step from 4, capped by
	// max pool anyway.
	c.Step(12)
	if got := c.ActiveSize(); got != 12 {
		t.Errorf("active=%d want 12 (multi-step growth)", got)
	}
	// Empty queue wants 1 worker → big shrink, floored at MinActive.
	c.Step(0)
	c.Step(0)
	if got := c.ActiveSize(); got != 1 {
		t.Errorf("active=%d want 1 after drain", got)
	}
}

func TestQuickProportionalBounds(t *testing.T) {
	f := func(q uint16, active uint8) bool {
		s := &ProportionalQueueStrategy{TargetPerWorker: 2, MaxStep: 4}
		d := s.DecideN(float64(q%1000), int(active%64))
		return d >= -4 && d <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
