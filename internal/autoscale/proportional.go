package autoscale

import "math"

// StepStrategy is the refined strategy interface the paper's future-work
// section asks for: unlike Strategy's fixed ±1 answer to "how to scale",
// a StepStrategy sees the current active size and may request multi-step
// adjustments. Controllers detect it with a type assertion, so existing
// Strategy implementations keep working unchanged.
type StepStrategy interface {
	Strategy
	// DecideN maps a metric sample and the current active size to a signed
	// size delta (possibly larger than 1 in magnitude).
	DecideN(sample float64, active int) int
}

// ProportionalQueueStrategy is a refined dyn_auto_multi policy: it targets a
// fixed backlog per active worker and scales by the (clamped) proportional
// error in one step instead of creeping ±1 — addressing the inertia the
// paper observes in Figure 13 ("active process numbers lag behind metric
// changes due to inertia in the naive auto-scaling strategy").
type ProportionalQueueStrategy struct {
	// TargetPerWorker is the desired queue length per active process;
	// 0 means 2.
	TargetPerWorker float64
	// MaxStep caps a single adjustment; 0 means 4.
	MaxStep int
}

// Name implements Strategy.
func (s *ProportionalQueueStrategy) Name() string { return "proportional-queue" }

// Decide implements Strategy for controllers that ignore StepStrategy: the
// proportional decision collapsed to its sign.
func (s *ProportionalQueueStrategy) Decide(queueSize float64) int {
	d := s.DecideN(queueSize, 1)
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	default:
		return 0
	}
}

// DecideN implements StepStrategy.
func (s *ProportionalQueueStrategy) DecideN(queueSize float64, active int) int {
	target := s.TargetPerWorker
	if target <= 0 {
		target = 2
	}
	maxStep := s.MaxStep
	if maxStep <= 0 {
		maxStep = 4
	}
	if active < 1 {
		active = 1
	}
	// Error in units of workers: how many workers the backlog wants.
	wanted := queueSize / target
	delta := int(math.Round(wanted - float64(active)))
	if delta > maxStep {
		delta = maxStep
	}
	if delta < -maxStep {
		delta = -maxStep
	}
	return delta
}

var _ StepStrategy = (*ProportionalQueueStrategy)(nil)
