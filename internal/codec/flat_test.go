package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestFlatScalarPayloads pins the inline fast path: every scalar payload
// type round-trips with its exact dynamic type and value, no gob involved.
func TestFlatScalarPayloads(t *testing.T) {
	values := []any{
		nil,
		"",
		"hello \x00 world",
		[]byte{0x00, 0xff, 0x80},
		true,
		false,
		int(-42),
		int(1 << 40),
		int64(math.MinInt64),
		uint64(math.MaxUint64),
		float64(-2.25),
		math.Inf(1),
		float32(3.5),
		int32(-7),
	}
	for i, v := range values {
		in := Task{PE: "pe", Port: "in", Value: v, Instance: -1}
		s, err := Encode(in)
		if err != nil {
			t.Fatalf("value %d (%T): %v", i, v, err)
		}
		out, err := Decode(s)
		if err != nil {
			t.Fatalf("value %d (%T): %v", i, v, err)
		}
		switch want := v.(type) {
		case []byte:
			got, ok := out.Value.([]byte)
			if !ok || !bytes.Equal(got, want) {
				t.Errorf("value %d: got %#v want %#v", i, out.Value, v)
			}
		default:
			if out.Value != v {
				t.Errorf("value %d: got %#v (%T) want %#v (%T)", i, out.Value, out.Value, v, v)
			}
		}
	}
}

// TestFlatEnvelopeQuick round-trips arbitrary envelopes — including
// zero-value Src/Seq, empty strings, and negative instances — and requires
// re-encoding the decoded task to reproduce the frame byte-for-byte.
func TestFlatEnvelopeQuick(t *testing.T) {
	f := func(pe, port string, inst int32, poison, finalize bool, src, seq uint64, traceAt int64, payload string, hasPayload bool) bool {
		in := Task{
			PE: pe, Port: port, Instance: int(inst),
			Poison: poison, Finalize: finalize,
			Src: src, Seq: seq, TraceAt: traceAt,
		}
		if hasPayload {
			in.Value = payload
		}
		s, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(s)
		if err != nil {
			return false
		}
		if out != in {
			return false
		}
		s2, err := Encode(out)
		return err == nil && s2 == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFlatBatchInterleavedPayloads packs scalar and gob payloads in one
// frame: the trailing gob stream must hand values back to the right tasks.
func TestFlatBatchInterleavedPayloads(t *testing.T) {
	in := []Task{
		{PE: "a", Value: samplePayload{Name: "first", Values: []float64{1}}},
		{PE: "b", Value: "scalar"},
		{PE: "c", Value: samplePayload{Name: "second", Nested: map[string]int{"k": 2}}},
		{PE: "d"},
		{PE: "e", Value: int64(9), Src: 7, Seq: 3},
	}
	s, err := EncodeBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tasks, want %d", len(out), len(in))
	}
	if p, ok := out[0].Value.(samplePayload); !ok || p.Name != "first" {
		t.Errorf("task 0 payload: %#v", out[0].Value)
	}
	if out[1].Value != "scalar" {
		t.Errorf("task 1 payload: %#v", out[1].Value)
	}
	if p, ok := out[2].Value.(samplePayload); !ok || p.Name != "second" || p.Nested["k"] != 2 {
		t.Errorf("task 2 payload: %#v", out[2].Value)
	}
	if out[3].Value != nil {
		t.Errorf("task 3 payload: %#v", out[3].Value)
	}
	if out[4].Value != int64(9) || out[4].Src != 7 || out[4].Seq != 3 {
		t.Errorf("task 4: %+v", out[4])
	}
}

// TestFlatMaxSizeBatch round-trips a batch far beyond any sizer window.
func TestFlatMaxSizeBatch(t *testing.T) {
	in := make([]Task, 4096)
	for i := range in {
		in[i] = Task{PE: "pe", Port: "in", Value: i, Instance: -1, Src: uint64(i + 1), Seq: uint64(i)}
	}
	s, err := EncodeBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tasks, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("task %d: %+v vs %+v", i, out[i], in[i])
		}
	}
}

// TestCrossVersionGobFramesDecode replays the exact frames the previous
// codec wrote — bare gob single frames and 0x00-prefixed gob batch frames —
// through the current Decode/DecodeBatch.
func TestCrossVersionGobFramesDecode(t *testing.T) {
	orig := Task{
		PE: "getVOTable", Port: "in", Instance: 3,
		Value: samplePayload{Name: "g1", Values: []float64{1.5, -2.25}},
		Src:   0xdead_beef, Seq: 41, TraceAt: 123456789,
	}
	single, err := encodeGob(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(single)
	if err != nil {
		t.Fatalf("legacy single frame: %v", err)
	}
	if got.PE != orig.PE || got.Src != orig.Src || got.Seq != orig.Seq || got.TraceAt != orig.TraceAt {
		t.Errorf("legacy single frame envelope: %+v", got)
	}
	if p, ok := got.Value.(samplePayload); !ok || p.Name != "g1" || p.Values[1] != -2.25 {
		t.Errorf("legacy single frame payload: %#v", got.Value)
	}
	if ts, err := DecodeBatch(single); err != nil || len(ts) != 1 || ts[0].PE != orig.PE {
		t.Errorf("legacy single frame via DecodeBatch: %v %+v", err, ts)
	}

	batch := []Task{orig, {PE: "agg", Instance: 0, Finalize: true}, {Poison: true}}
	frame, err := encodeGobBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := DecodeBatch(frame)
	if err != nil {
		t.Fatalf("legacy batch frame: %v", err)
	}
	if len(ts) != 3 || ts[0].Src != orig.Src || !ts[1].Finalize || !ts[2].Poison {
		t.Errorf("legacy batch frame: %+v", ts)
	}
}

// TestEncodeSteadyStateZeroAllocs is the allocation-regression gate: the
// steady-state encode path — a reused buffer, inline-scalar payloads,
// stamped identities — must not allocate at all.
func TestEncodeSteadyStateZeroAllocs(t *testing.T) {
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i] = Task{PE: "sessionize", Port: "in", Value: "user-1234", Instance: -1, Src: uint64(i + 1), Seq: uint64(i), TraceAt: 0}
	}
	dst := make([]byte, 0, 8192)
	var err error
	if dst, err = AppendBatch(dst[:0], tasks); err != nil { // warm the capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		dst, err = AppendBatch(dst[:0], tasks)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state AppendBatch allocates %.1f times per frame, want 0", allocs)
	}

	var one []byte
	one, err = AppendTask(dst[:0], tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	_ = one
	allocs = testing.AllocsPerRun(1000, func() {
		one, err = AppendTask(one[:0], tasks[0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendTask allocates %.1f times per task, want 0", allocs)
	}
}

// FuzzDecodeBatch asserts the decoder never panics on hostile bytes.
func FuzzDecodeBatch(f *testing.F) {
	seed1, _ := Encode(Task{PE: "pe", Port: "in", Value: "v", Src: 1, Seq: 2})
	seed2, _ := EncodeBatch([]Task{{PE: "a", Value: int64(1)}, {Poison: true}, {PE: "b", Value: samplePayload{Name: "x"}}})
	seed3, _ := encodeGob(Task{PE: "legacy", Value: "old"})
	seed4, _ := encodeGobBatch([]Task{{PE: "l1"}, {PE: "l2", Value: 3.5}})
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add(seed4)
	f.Add("")
	f.Add("\x00\x00\x01\x02garbage")
	f.Add("\x00not-a-gob-batch")
	f.Fuzz(func(t *testing.T, s string) {
		ts, err := DecodeBatch(s)
		if err == nil && len(ts) == 0 {
			t.Fatal("nil error with empty batch")
		}
	})
}
