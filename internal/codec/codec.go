// Package codec serializes workflow task payloads for transport through
// Redis. It wraps encoding/gob: workflows register their concrete payload
// types once (in init functions or before running), after which arbitrary
// task values round-trip as binary-safe strings. This plays the role pickle
// plays for dispel4py's Redis mapping.
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Register makes a concrete payload type encodable inside interface values.
// It is safe to register the same type multiple times from different
// workflows only if the registrations agree; duplicate identical
// registrations panic in gob, so Register swallows that one specific case.
func Register(value any) {
	defer func() {
		if r := recover(); r != nil {
			// gob panics on duplicate registration of the same type; that is
			// harmless for our use (idempotent workflow init).
			if s, ok := r.(string); ok && len(s) >= 3 {
				return
			}
			panic(r)
		}
	}()
	gob.Register(value)
}

// Task is the unit shipped through the Redis global queue: which PE to run,
// which input port the value arrives on, and the value itself. Generate
// tasks (for source PEs) carry an empty port and nil value.
type Task struct {
	// PE is the destination node name.
	PE string
	// Port is the destination input port; empty for source-generate tasks.
	Port string
	// Value is the payload.
	Value any
	// Instance is the destination instance for grouped (stateful) routing;
	// -1 means "any instance" (the dynamic pool).
	Instance int
	// Poison marks a termination pill.
	Poison bool
	// Finalize asks a stateful instance to run its Final hook (hybrid
	// mapping's coordinated flush phase).
	Finalize bool
	// Src and Seq identify the task for exactly-once fencing under
	// at-least-once replay: Src names the task's provenance (a hash mixing
	// the parent task's identity with the emitting edge, or a seed/finalize
	// constant), Seq is the per-(provenance) sequence number. The pair is
	// deterministic — a replayed parent re-emits children with identical
	// identities — which is what lets the managed-state fence drop updates
	// whose sequence was already applied. Both zero means the task is
	// unstamped (fencing off); gob omits zero fields, so unstamped tasks pay
	// nothing on the wire.
	Src uint64
	Seq uint64
	// TraceAt, when non-zero, marks the task as sampled by the telemetry
	// tracer and carries the UnixNano timestamp of the emission that created
	// it. Children of a traced task are traced in turn, so a sampled task's
	// whole downstream path is reconstructable across workers (and, because
	// Src/Seq are deterministic, across kill-and-replay). gob omits the zero
	// value, so untraced tasks pay nothing on the wire.
	TraceAt int64
}

func init() {
	gob.Register(Task{})
}

// Encode serializes a task to a binary-safe string.
func Encode(t Task) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		return "", fmt.Errorf("codec: encode task for PE %q: %w", t.PE, err)
	}
	return buf.String(), nil
}

// Decode deserializes a task produced by Encode.
func Decode(s string) (Task, error) {
	var t Task
	if err := gob.NewDecoder(bytes.NewReader([]byte(s))).Decode(&t); err != nil {
		return Task{}, fmt.Errorf("codec: decode task: %w", err)
	}
	return t, nil
}

// batchMagic prefixes multi-task frames. A gob stream starts with a
// length-prefixed message whose count is at least 1, and gob's uint encoding
// makes that first byte either the count itself (1..127) or a marker
// >= 0x80 — never 0x00 — so the byte unambiguously separates batch frames
// from single-task frames on the wire.
const batchMagic = 0x00

// EncodeBatch serializes several tasks into one frame with a single encoder
// and buffer: the gob type descriptors are transmitted once per frame
// instead of once per task, which is the (de)serialization half of the
// batched transport path. A one-task batch degrades to the plain Encode
// frame, so anything EncodeBatch writes stays readable by old-style readers
// whenever it could have been written by them.
func EncodeBatch(ts []Task) (string, error) {
	if len(ts) == 0 {
		return "", fmt.Errorf("codec: encode empty batch")
	}
	if len(ts) == 1 {
		return Encode(ts[0])
	}
	var buf bytes.Buffer
	buf.WriteByte(batchMagic)
	if err := gob.NewEncoder(&buf).Encode(ts); err != nil {
		return "", fmt.Errorf("codec: encode batch of %d tasks: %w", len(ts), err)
	}
	return buf.String(), nil
}

// DecodeBatch deserializes a frame produced by EncodeBatch or Encode: batch
// frames decode with one decoder setup for all tasks, single-task frames
// (including every frame written before batching existed) come back as a
// one-element slice.
func DecodeBatch(s string) ([]Task, error) {
	if len(s) == 0 || s[0] != batchMagic {
		t, err := Decode(s)
		if err != nil {
			return nil, err
		}
		return []Task{t}, nil
	}
	var ts []Task
	if err := gob.NewDecoder(bytes.NewReader([]byte(s[1:]))).Decode(&ts); err != nil {
		return nil, fmt.Errorf("codec: decode batch: %w", err)
	}
	return ts, nil
}
