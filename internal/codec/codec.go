// Package codec serializes workflow task envelopes for transport through
// Redis. It plays the role pickle plays for dispel4py's Redis mapping.
//
// The wire format is a flat, length-prefixed binary frame (version 1):
//
//	frame  = 0x00 0x00            magic (two NUL bytes)
//	         0x01                 format version
//	         uvarint(count)       tasks in the frame
//	         record*              one per task, in order
//	         gob-stream           trailer, present iff any record defers
//	                              its payload to gob (tag 0xFF below)
//
//	record = flags byte:
//	           0x01 Poison        0x02 Finalize
//	           0x04 identity      Src/Seq present (fencing provenance)
//	           0x08 traced        TraceAt present (telemetry sampling)
//	           0x10 value         payload present (Value != nil)
//	         uvarint(len) PE-bytes
//	         uvarint(len) Port-bytes
//	         zigzag-uvarint Instance        (-1 = dynamic pool)
//	         [identity] fixed64-LE Src, uvarint Seq
//	         [traced]   fixed64-LE TraceAt
//	         [value]    tag byte + payload (see value tags below)
//
// Scalar payloads are encoded inline with one-byte tags (string, []byte,
// bool, int, int64, uint64, float64, float32, int32). Everything else —
// the registered workflow structs — carries tag 0xFF and is written to a
// single gob stream trailing the records, so a frame pays for gob's type
// descriptors at most once no matter how many tasks it packs.
//
// Encoding is allocation-free in steady state: AppendTask/AppendBatch write
// into a caller-supplied byte slice (GetBuffer/Release pool them), and
// inline-scalar frames touch neither gob nor the heap. Decoding recognizes
// the two legacy gob formats — a bare gob frame (first byte never 0x00) and
// the 0x00-prefixed gob batch frame — so frames written by earlier versions
// still decode.
package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"strings"
	"sync"
)

// Register makes a concrete payload type encodable inside interface values.
// Registration is idempotent: gob panics with a "gob: registering duplicate"
// message when the same type or name is registered twice, and Register
// swallows exactly that panic (workflow init functions run once per import
// path but several workflows share payload types). Any other panic — a nil
// value, an unnamed type — is re-raised.
func Register(value any) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(string); ok && strings.HasPrefix(s, "gob: registering duplicate") {
				return
			}
			panic(r)
		}
	}()
	gob.Register(value)
}

// Task is the unit shipped through the Redis global queue: which PE to run,
// which input port the value arrives on, and the value itself. Generate
// tasks (for source PEs) carry an empty port and nil value.
type Task struct {
	// PE is the destination node name.
	PE string
	// Port is the destination input port; empty for source-generate tasks.
	Port string
	// Value is the payload.
	Value any
	// Instance is the destination instance for grouped (stateful) routing;
	// -1 means "any instance" (the dynamic pool).
	Instance int
	// Poison marks a termination pill.
	Poison bool
	// Finalize asks a stateful instance to run its Final hook (hybrid
	// mapping's coordinated flush phase).
	Finalize bool
	// Src and Seq identify the task for exactly-once fencing under
	// at-least-once replay: Src names the task's provenance (a hash mixing
	// the parent task's identity with the emitting edge, or a seed/finalize
	// constant), Seq is the per-(provenance) sequence number. The pair is
	// deterministic — a replayed parent re-emits children with identical
	// identities — which is what lets the managed-state fence drop updates
	// whose sequence was already applied. Both zero means the task is
	// unstamped (fencing off); the wire format omits zero identities, so
	// unstamped tasks pay nothing on the wire.
	Src uint64
	Seq uint64
	// TraceAt, when non-zero, marks the task as sampled by the telemetry
	// tracer and carries the UnixNano timestamp of the emission that created
	// it. Children of a traced task are traced in turn, so a sampled task's
	// whole downstream path is reconstructable across workers (and, because
	// Src/Seq are deterministic, across kill-and-replay). The wire format
	// omits the zero value, so untraced tasks pay nothing on the wire.
	TraceAt int64
}

func init() {
	gob.Register(Task{})
}

// Wire constants. A legacy gob stream starts with a length-prefixed message
// whose first byte is never 0x00, and the legacy batch frame is exactly one
// 0x00 followed by a gob stream — so two leading NULs are unreachable by
// either legacy format and unambiguously mark a flat frame.
const (
	flatMagic   = 0x00 // first two bytes of a flat frame
	flatVersion = 0x01 // current flat format version

	legacyBatchMagic = 0x00 // single 0x00 prefix of the legacy gob batch
)

// Record flag bits.
const (
	flagPoison   = 0x01
	flagFinalize = 0x02
	flagIdentity = 0x04 // Src/Seq present
	flagTraced   = 0x08 // TraceAt present
	flagValue    = 0x10 // payload present
)

// Inline payload tags.
const (
	tagString  = 0x01
	tagBytes   = 0x02
	tagTrue    = 0x03
	tagFalse   = 0x04
	tagInt     = 0x05
	tagInt64   = 0x06
	tagUint64  = 0x07
	tagFloat64 = 0x08
	tagFloat32 = 0x09
	tagInt32   = 0x0A
	tagGob     = 0xFF // payload deferred to the frame's trailing gob stream
)

// Buffer is a pooled scratch slice for frame encoding. Transports hold one
// per push, append frames into B, and Release it when the wire bytes have
// been handed to the client.
type Buffer struct {
	B []byte
}

// maxPooledBuffer caps what Release returns to the pool so one giant frame
// does not pin its buffer forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 1024)} }}

// GetBuffer fetches a pooled encode buffer with length 0.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool.
func (b *Buffer) Release() {
	if cap(b.B) <= maxPooledBuffer {
		bufPool.Put(b)
	}
}

// sliceWriter lets a gob encoder append directly to the frame under
// construction.
type sliceWriter struct{ b *[]byte }

func (w sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// AppendTask appends a one-task flat frame to dst and returns the extended
// slice. Inline-scalar payloads allocate nothing beyond dst's own growth.
func AppendTask(dst []byte, t Task) ([]byte, error) {
	dst = append(dst, flatMagic, flatMagic, flatVersion, 1)
	dst, needsGob := appendRecord(dst, &t)
	if needsGob {
		return appendGobTrailer(dst, []Task{t}, []int{0})
	}
	return dst, nil
}

// AppendBatch appends one flat frame holding all of ts to dst and returns
// the extended slice. Payloads that need gob share a single encoder writing
// a trailer after the records, so the frame carries each type's descriptors
// at most once.
func AppendBatch(dst []byte, ts []Task) ([]byte, error) {
	if len(ts) == 0 {
		return dst, fmt.Errorf("codec: encode empty batch")
	}
	dst = append(dst, flatMagic, flatMagic, flatVersion)
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	var gobIdx []int
	for i := range ts {
		var needsGob bool
		dst, needsGob = appendRecord(dst, &ts[i])
		if needsGob {
			gobIdx = append(gobIdx, i)
		}
	}
	if len(gobIdx) > 0 {
		return appendGobTrailer(dst, ts, gobIdx)
	}
	return dst, nil
}

// appendGobTrailer writes the shared gob stream for the tasks at gobIdx.
// It is a separate function so taking dst's address here does not force the
// inline-scalar path in the callers to heap-allocate their slice headers.
func appendGobTrailer(dst []byte, ts []Task, gobIdx []int) ([]byte, error) {
	enc := gob.NewEncoder(sliceWriter{&dst})
	for _, i := range gobIdx {
		if err := enc.Encode(&ts[i].Value); err != nil {
			return dst, fmt.Errorf("codec: encode payload for PE %q: %w", ts[i].PE, err)
		}
	}
	return dst, nil
}

// appendRecord writes one task record (without its gob payload, if any) and
// reports whether the payload was deferred to the frame's gob trailer.
func appendRecord(dst []byte, t *Task) ([]byte, bool) {
	flags := byte(0)
	if t.Poison {
		flags |= flagPoison
	}
	if t.Finalize {
		flags |= flagFinalize
	}
	if t.Src != 0 || t.Seq != 0 {
		flags |= flagIdentity
	}
	if t.TraceAt != 0 {
		flags |= flagTraced
	}
	if t.Value != nil {
		flags |= flagValue
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(t.PE)))
	dst = append(dst, t.PE...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Port)))
	dst = append(dst, t.Port...)
	dst = appendZigzag(dst, int64(t.Instance))
	if flags&flagIdentity != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, t.Src)
		dst = binary.AppendUvarint(dst, t.Seq)
	}
	if flags&flagTraced != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(t.TraceAt))
	}
	if flags&flagValue == 0 {
		return dst, false
	}
	switch v := t.Value.(type) {
	case string:
		dst = append(dst, tagString)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	case []byte:
		dst = append(dst, tagBytes)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	case bool:
		if v {
			dst = append(dst, tagTrue)
		} else {
			dst = append(dst, tagFalse)
		}
	case int:
		dst = append(dst, tagInt)
		dst = appendZigzag(dst, int64(v))
	case int64:
		dst = append(dst, tagInt64)
		dst = appendZigzag(dst, v)
	case uint64:
		dst = append(dst, tagUint64)
		dst = binary.AppendUvarint(dst, v)
	case float64:
		dst = append(dst, tagFloat64)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	case float32:
		dst = append(dst, tagFloat32)
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	case int32:
		dst = append(dst, tagInt32)
		dst = appendZigzag(dst, int64(v))
	default:
		dst = append(dst, tagGob)
		return dst, true
	}
	return dst, false
}

// Encode serializes a task to a binary-safe string (a one-task flat frame).
func Encode(t Task) (string, error) {
	buf := GetBuffer()
	defer buf.Release()
	b, err := AppendTask(buf.B, t)
	buf.B = b[:0]
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// EncodeBatch serializes several tasks into one flat frame.
func EncodeBatch(ts []Task) (string, error) {
	buf := GetBuffer()
	defer buf.Release()
	b, err := AppendBatch(buf.B, ts)
	buf.B = b[:0]
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// isFlat reports whether s starts with a flat-frame magic.
func isFlat(s string) bool {
	return len(s) >= 4 && s[0] == flatMagic && s[1] == flatMagic
}

// Decode deserializes a one-task frame produced by Encode — current flat
// frames and legacy single-task gob frames both decode.
func Decode(s string) (Task, error) {
	if isFlat(s) {
		ts, err := decodeFlat(s)
		if err != nil {
			return Task{}, err
		}
		if len(ts) != 1 {
			return Task{}, fmt.Errorf("codec: decode task: frame holds %d tasks", len(ts))
		}
		return ts[0], nil
	}
	return decodeGob(s)
}

// DecodeBatch deserializes any frame this package has ever written: flat
// frames (any count), legacy gob batch frames, and legacy single-task gob
// frames (returned as a one-element slice).
func DecodeBatch(s string) ([]Task, error) {
	if isFlat(s) {
		return decodeFlat(s)
	}
	if len(s) > 0 && s[0] == legacyBatchMagic {
		var ts []Task
		if err := gob.NewDecoder(strings.NewReader(s[1:])).Decode(&ts); err != nil {
			return nil, fmt.Errorf("codec: decode batch: %w", err)
		}
		return ts, nil
	}
	t, err := decodeGob(s)
	if err != nil {
		return nil, err
	}
	return []Task{t}, nil
}

func decodeFlat(s string) ([]Task, error) {
	if s[2] != flatVersion {
		return nil, fmt.Errorf("codec: unknown wire format version %d", s[2])
	}
	count, off, err := readUvarint(s, 3)
	if err != nil {
		return nil, fmt.Errorf("codec: decode frame count: %w", err)
	}
	// Every record costs at least 4 bytes, so a count anywhere near the frame
	// length is corrupt; reject before allocating.
	if count == 0 || count > uint64(len(s)) {
		return nil, fmt.Errorf("codec: implausible frame count %d for %d-byte frame", count, len(s))
	}
	ts := make([]Task, count)
	var gobIdx []int
	for i := range ts {
		var needsGob bool
		off, needsGob, err = decodeRecord(s, off, &ts[i])
		if err != nil {
			return nil, fmt.Errorf("codec: decode task %d/%d: %w", i+1, count, err)
		}
		if needsGob {
			gobIdx = append(gobIdx, i)
		}
	}
	if len(gobIdx) > 0 {
		dec := gob.NewDecoder(strings.NewReader(s[off:]))
		for _, i := range gobIdx {
			if err := dec.Decode(&ts[i].Value); err != nil {
				return nil, fmt.Errorf("codec: decode payload for PE %q: %w", ts[i].PE, err)
			}
		}
	} else if off != len(s) {
		return nil, fmt.Errorf("codec: %d trailing bytes after frame", len(s)-off)
	}
	return ts, nil
}

// decodeRecord parses one task record starting at off and reports whether
// its payload must be read from the frame's gob trailer.
func decodeRecord(s string, off int, t *Task) (int, bool, error) {
	if off >= len(s) {
		return off, false, fmt.Errorf("truncated record")
	}
	flags := s[off]
	off++
	var err error
	if t.PE, off, err = readString(s, off); err != nil {
		return off, false, fmt.Errorf("PE: %w", err)
	}
	if t.Port, off, err = readString(s, off); err != nil {
		return off, false, fmt.Errorf("port: %w", err)
	}
	var inst int64
	if inst, off, err = readZigzag(s, off); err != nil {
		return off, false, fmt.Errorf("instance: %w", err)
	}
	t.Instance = int(inst)
	t.Poison = flags&flagPoison != 0
	t.Finalize = flags&flagFinalize != 0
	if flags&flagIdentity != 0 {
		if t.Src, off, err = readFixed64(s, off); err != nil {
			return off, false, fmt.Errorf("src: %w", err)
		}
		if t.Seq, off, err = readUvarint(s, off); err != nil {
			return off, false, fmt.Errorf("seq: %w", err)
		}
	}
	if flags&flagTraced != 0 {
		var at uint64
		if at, off, err = readFixed64(s, off); err != nil {
			return off, false, fmt.Errorf("traceAt: %w", err)
		}
		t.TraceAt = int64(at)
	}
	if flags&flagValue == 0 {
		return off, false, nil
	}
	if off >= len(s) {
		return off, false, fmt.Errorf("truncated payload tag")
	}
	tag := s[off]
	off++
	switch tag {
	case tagString:
		var v string
		if v, off, err = readString(s, off); err != nil {
			return off, false, fmt.Errorf("string payload: %w", err)
		}
		t.Value = v
	case tagBytes:
		var v string
		if v, off, err = readString(s, off); err != nil {
			return off, false, fmt.Errorf("bytes payload: %w", err)
		}
		t.Value = []byte(v)
	case tagTrue:
		t.Value = true
	case tagFalse:
		t.Value = false
	case tagInt:
		var v int64
		if v, off, err = readZigzag(s, off); err != nil {
			return off, false, fmt.Errorf("int payload: %w", err)
		}
		t.Value = int(v)
	case tagInt64:
		var v int64
		if v, off, err = readZigzag(s, off); err != nil {
			return off, false, fmt.Errorf("int64 payload: %w", err)
		}
		t.Value = v
	case tagUint64:
		var v uint64
		if v, off, err = readUvarint(s, off); err != nil {
			return off, false, fmt.Errorf("uint64 payload: %w", err)
		}
		t.Value = v
	case tagFloat64:
		var bits uint64
		if bits, off, err = readFixed64(s, off); err != nil {
			return off, false, fmt.Errorf("float64 payload: %w", err)
		}
		t.Value = math.Float64frombits(bits)
	case tagFloat32:
		var bits uint32
		if bits, off, err = readFixed32(s, off); err != nil {
			return off, false, fmt.Errorf("float32 payload: %w", err)
		}
		t.Value = math.Float32frombits(bits)
	case tagInt32:
		var v int64
		if v, off, err = readZigzag(s, off); err != nil {
			return off, false, fmt.Errorf("int32 payload: %w", err)
		}
		t.Value = int32(v)
	case tagGob:
		return off, true, nil
	default:
		return off, false, fmt.Errorf("unknown payload tag 0x%02x", tag)
	}
	return off, false, nil
}

// --- legacy gob format, retained for cross-version decode and benchmarks ---

// decodeGob deserializes a legacy single-task gob frame.
func decodeGob(s string) (Task, error) {
	var t Task
	if err := gob.NewDecoder(strings.NewReader(s)).Decode(&t); err != nil {
		return Task{}, fmt.Errorf("codec: decode task: %w", err)
	}
	return t, nil
}

// encodeGob writes the legacy single-task gob frame (what Encode produced
// before the flat format).
func encodeGob(t Task) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		return "", fmt.Errorf("codec: encode task for PE %q: %w", t.PE, err)
	}
	return buf.String(), nil
}

// encodeGobBatch writes the legacy batch frame (0x00 magic + gob of []Task);
// like the old EncodeBatch, a one-task batch degrades to the single frame.
func encodeGobBatch(ts []Task) (string, error) {
	if len(ts) == 0 {
		return "", fmt.Errorf("codec: encode empty batch")
	}
	if len(ts) == 1 {
		return encodeGob(ts[0])
	}
	var buf bytes.Buffer
	buf.WriteByte(legacyBatchMagic)
	if err := gob.NewEncoder(&buf).Encode(ts); err != nil {
		return "", fmt.Errorf("codec: encode batch of %d tasks: %w", len(ts), err)
	}
	return buf.String(), nil
}

// --- primitive readers/writers over strings (no []byte conversions) ---

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func readUvarint(s string, off int) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := off; i < len(s); i++ {
		b := s[i]
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, i, fmt.Errorf("uvarint overflows 64 bits")
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, len(s), fmt.Errorf("truncated uvarint")
}

func readZigzag(s string, off int) (int64, int, error) {
	u, off, err := readUvarint(s, off)
	if err != nil {
		return 0, off, err
	}
	return int64(u>>1) ^ -int64(u&1), off, nil
}

func readString(s string, off int) (string, int, error) {
	n, off, err := readUvarint(s, off)
	if err != nil {
		return "", off, err
	}
	if n > uint64(len(s)-off) {
		return "", off, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(s)-off)
	}
	return s[off : off+int(n)], off + int(n), nil
}

func readFixed64(s string, off int) (uint64, int, error) {
	if len(s)-off < 8 {
		return 0, off, fmt.Errorf("truncated fixed64")
	}
	v := uint64(s[off]) | uint64(s[off+1])<<8 | uint64(s[off+2])<<16 | uint64(s[off+3])<<24 |
		uint64(s[off+4])<<32 | uint64(s[off+5])<<40 | uint64(s[off+6])<<48 | uint64(s[off+7])<<56
	return v, off + 8, nil
}

func readFixed32(s string, off int) (uint32, int, error) {
	if len(s)-off < 4 {
		return 0, off, fmt.Errorf("truncated fixed32")
	}
	v := uint32(s[off]) | uint32(s[off+1])<<8 | uint32(s[off+2])<<16 | uint32(s[off+3])<<24
	return v, off + 4, nil
}
