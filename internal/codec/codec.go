// Package codec serializes workflow task payloads for transport through
// Redis. It wraps encoding/gob: workflows register their concrete payload
// types once (in init functions or before running), after which arbitrary
// task values round-trip as binary-safe strings. This plays the role pickle
// plays for dispel4py's Redis mapping.
package codec

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Register makes a concrete payload type encodable inside interface values.
// It is safe to register the same type multiple times from different
// workflows only if the registrations agree; duplicate identical
// registrations panic in gob, so Register swallows that one specific case.
func Register(value any) {
	defer func() {
		if r := recover(); r != nil {
			// gob panics on duplicate registration of the same type; that is
			// harmless for our use (idempotent workflow init).
			if s, ok := r.(string); ok && len(s) >= 3 {
				return
			}
			panic(r)
		}
	}()
	gob.Register(value)
}

// Task is the unit shipped through the Redis global queue: which PE to run,
// which input port the value arrives on, and the value itself. Generate
// tasks (for source PEs) carry an empty port and nil value.
type Task struct {
	// PE is the destination node name.
	PE string
	// Port is the destination input port; empty for source-generate tasks.
	Port string
	// Value is the payload.
	Value any
	// Instance is the destination instance for grouped (stateful) routing;
	// -1 means "any instance" (the dynamic pool).
	Instance int
	// Poison marks a termination pill.
	Poison bool
	// Finalize asks a stateful instance to run its Final hook (hybrid
	// mapping's coordinated flush phase).
	Finalize bool
}

func init() {
	gob.Register(Task{})
}

// Encode serializes a task to a binary-safe string.
func Encode(t Task) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		return "", fmt.Errorf("codec: encode task for PE %q: %w", t.PE, err)
	}
	return buf.String(), nil
}

// Decode deserializes a task produced by Encode.
func Decode(s string) (Task, error) {
	var t Task
	if err := gob.NewDecoder(bytes.NewReader([]byte(s))).Decode(&t); err != nil {
		return Task{}, fmt.Errorf("codec: decode task: %w", err)
	}
	return t, nil
}
