package codec

import (
	"strings"
	"testing"
	"testing/quick"
)

type samplePayload struct {
	Name   string
	Values []float64
	Nested map[string]int
}

func init() {
	Register(samplePayload{})
}

func TestTaskRoundTrip(t *testing.T) {
	in := Task{
		PE:       "getVOTable",
		Port:     "in",
		Value:    samplePayload{Name: "g1", Values: []float64{1.5, -2.25}, Nested: map[string]int{"a": 1}},
		Instance: 3,
		Src:      0xdead_beef_cafe,
		Seq:      41,
	}
	s, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.PE != in.PE || out.Port != in.Port || out.Instance != 3 || out.Poison || out.Finalize {
		t.Errorf("header: %+v", out)
	}
	if out.Src != in.Src || out.Seq != in.Seq {
		t.Errorf("fencing identity lost: Src=%x Seq=%d", out.Src, out.Seq)
	}
	p, ok := out.Value.(samplePayload)
	if !ok {
		t.Fatalf("payload type %T", out.Value)
	}
	if p.Name != "g1" || len(p.Values) != 2 || p.Values[1] != -2.25 || p.Nested["a"] != 1 {
		t.Errorf("payload: %+v", p)
	}
}

func TestControlTasks(t *testing.T) {
	for _, in := range []Task{{Poison: true}, {PE: "agg", Instance: 1, Finalize: true}} {
		s, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decode(s)
		if err != nil {
			t.Fatal(err)
		}
		if out.Poison != in.Poison || out.Finalize != in.Finalize {
			t.Errorf("control flags lost: %+v vs %+v", out, in)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode("not gob data"); err == nil {
		t.Error("garbage must not decode")
	}
	if _, err := Decode(""); err == nil {
		t.Error("empty string must not decode")
	}
}

func TestEncodeUnregisteredType(t *testing.T) {
	type private struct{ X int }
	_, err := Encode(Task{PE: "x", Value: private{X: 1}})
	if err == nil || !strings.Contains(err.Error(), "encode") {
		t.Errorf("unregistered type should fail encode, got %v", err)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	// Re-registering the same type must not panic.
	Register(samplePayload{})
	Register(samplePayload{})
}

func TestBatchRoundTrip(t *testing.T) {
	in := []Task{
		{PE: "getVOTable", Port: "in", Value: samplePayload{Name: "g1", Values: []float64{1.5}}, Instance: -1},
		{PE: "filterColumns", Port: "in", Value: "row", Instance: 2},
		{PE: "agg", Instance: 0, Finalize: true},
	}
	s, err := EncodeBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tasks, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].PE != in[i].PE || out[i].Port != in[i].Port || out[i].Instance != in[i].Instance || out[i].Finalize != in[i].Finalize {
			t.Errorf("task %d: %+v vs %+v", i, out[i], in[i])
		}
	}
	if p, ok := out[0].Value.(samplePayload); !ok || p.Name != "g1" {
		t.Errorf("payload 0: %#v", out[0].Value)
	}
}

func TestBatchWireCompatibility(t *testing.T) {
	// A single-task flat frame written by Encode must decode through
	// DecodeBatch, and a one-task EncodeBatch must stay readable by plain
	// Decode — a pulled stream entry may hold either shape.
	single, err := Encode(Task{PE: "pe", Port: "in", Value: "v"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PE != "pe" || got[0].Value != "v" {
		t.Errorf("single frame through DecodeBatch: %+v", got)
	}

	one, err := EncodeBatch([]Task{{PE: "pe", Port: "in", Value: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	task, err := Decode(one)
	if err != nil {
		t.Fatal(err)
	}
	if task.PE != "pe" || task.Value != "v" {
		t.Errorf("one-task batch through Decode: %+v", task)
	}
}

func TestBatchEdgeCases(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Error("empty batch must not encode")
	}
	if _, err := DecodeBatch(""); err == nil {
		t.Error("empty string must not decode")
	}
	if _, err := DecodeBatch(string([]byte{legacyBatchMagic}) + "garbage"); err == nil {
		t.Error("garbage legacy batch frame must not decode")
	}
	if _, err := DecodeBatch(string([]byte{flatMagic, flatMagic, flatVersion, 200}) + "x"); err == nil {
		t.Error("flat frame with implausible count must not decode")
	}
	if _, err := DecodeBatch(string([]byte{flatMagic, flatMagic, 0x7f, 1, 0})); err == nil {
		t.Error("unknown wire version must not decode")
	}
}

func TestQuickRoundTripStrings(t *testing.T) {
	f := func(pe, port string, inst int) bool {
		in := Task{PE: pe, Port: port, Value: pe + port, Instance: inst}
		s, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(s)
		if err != nil {
			return false
		}
		return out.PE == pe && out.Port == port && out.Instance == inst && out.Value == pe+port
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
