package codec

import "testing"

// The BenchmarkCodec* family compares the flat wire format against the
// legacy gob path it replaced. CI runs these with -benchmem as the
// allocation-regression smoke alongside TestEncodeSteadyStateZeroAllocs.

func benchTask(i int) Task {
	return Task{PE: "sessionize", Port: "in", Value: "user-1234", Instance: -1, Src: uint64(i + 1), Seq: uint64(i)}
}

func benchBatch(n int) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = benchTask(i)
	}
	return ts
}

func BenchmarkCodecEncode(b *testing.B) {
	task := benchTask(0)
	dst := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = AppendTask(dst[:0], task)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeGob(b *testing.B) {
	task := benchTask(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeGob(task); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	s, err := Encode(benchTask(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeGob(b *testing.B) {
	s, err := encodeGob(benchTask(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeBatch64(b *testing.B) {
	ts := benchBatch(64)
	dst := make([]byte, 0, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = AppendBatch(dst[:0], ts)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeBatch64Gob(b *testing.B) {
	ts := benchBatch(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeGobBatch(ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeBatch64(b *testing.B) {
	s, err := EncodeBatch(benchBatch(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeBatch64Gob(b *testing.B) {
	s, err := encodeGobBatch(benchBatch(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(s); err != nil {
			b.Fatal(err)
		}
	}
}

// Struct payloads exercise the shared gob trailer: descriptors once per
// frame, records flat.
func BenchmarkCodecEncodeStructBatch64(b *testing.B) {
	ts := make([]Task, 64)
	for i := range ts {
		ts[i] = Task{PE: "filter", Port: "in", Instance: -1, Value: samplePayload{Name: "g", Values: []float64{1.5, 2.5}}}
	}
	dst := make([]byte, 0, 16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = AppendBatch(dst[:0], ts)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeStructBatch64Gob(b *testing.B) {
	ts := make([]Task, 64)
	for i := range ts {
		ts[i] = Task{PE: "filter", Port: "in", Instance: -1, Value: samplePayload{Name: "g", Values: []float64{1.5, 2.5}}}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeGobBatch(ts); err != nil {
			b.Fatal(err)
		}
	}
}
