package runtime_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
	"repro/internal/runtime"
)

// BenchmarkEmitBatching compares unbatched task emission (one transport push
// per emitted value, the seed behaviour) against batched emission
// (Options.EmitBatch: one push per batch) on the hot emit path. On the
// Redis transport a batch becomes one pipelined round trip — INCRBY plus all
// XADDs sharing a single network exchange — which is where the throughput
// win of Zhao et al.'s batching optimization comes from; on the in-process
// queue a batch pays one lock acquisition and one modeled synchronization
// cost instead of per-task ones.
//
// The reported tasks/op metric is fixed (256 emissions per op); compare
// ns/op across sub-benchmarks: batch=64 must beat unbatched on redis.
func BenchmarkEmitBatching(b *testing.B) {
	const emits = 256
	batches := []int{1, 16, 64}

	poolPlan := runtime.NewPlan(make([]runtime.WorkerSpec, 1), map[string]int{"pe": 0})
	task := runtime.Task{PE: "pe", Port: "in", Value: 7, Instance: -1}

	// pushAll emits the workload through the transport in chunks of batch,
	// mirroring what the worker's batcher hands to Push.
	pushAll := func(b *testing.B, tr runtime.Transport, batch int) {
		b.Helper()
		buf := make([]runtime.Task, 0, batch)
		for i := 0; i < emits; i++ {
			buf = append(buf, task)
			if len(buf) == batch {
				if err := tr.Push(buf...); err != nil {
					b.Fatal(err)
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			if err := tr.Push(buf...); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("redis", func(b *testing.B) {
		srv, err := miniredis.StartTestServer()
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cl := redisclient.Dial(srv.Addr())
		defer cl.Close()
		for _, batch := range batches {
			name := "unbatched"
			if batch > 1 {
				name = fmt.Sprintf("batch=%d", batch)
			}
			b.Run(name, func(b *testing.B) {
				keys := runtime.NewRunKeys("bench", int64(batch))
				tr, err := runtime.NewRedisTransport(redisclient.Single(cl), keys, poolPlan, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pushAll(b, tr, batch)
					// Reset the stream outside the measured region so the
					// server's memory stays bounded across iterations.
					b.StopTimer()
					if _, err := cl.Del(keys.Queue, keys.PendingKey); err != nil {
						b.Fatal(err)
					}
					if err := cl.XGroupCreate(keys.Queue, keys.Group, "0"); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(emits), "tasks/op")
			})
		}
	})

	b.Run("queue", func(b *testing.B) {
		for _, batch := range batches {
			name := "unbatched"
			if batch > 1 {
				name = fmt.Sprintf("batch=%d", batch)
			}
			b.Run(name, func(b *testing.B) {
				// The modeled per-op synchronization cost is what batching
				// amortizes on the in-process path.
				q := runtime.NewQueue(2 * time.Microsecond)
				tr := runtime.NewQueueTransport(q)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pushAll(b, tr, batch)
					b.StopTimer()
					for {
						if _, ok := q.Pop(0); !ok {
							break
						}
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(emits), "tasks/op")
			})
		}
	})
}
