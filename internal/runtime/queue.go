package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/platform"
)

// Queue is the dynamic global queue (formerly package dynamic's). Every
// operation holds the queue lock for the platform's synchronization cost, so
// contending workers serialize exactly as processes serialize on a
// multiprocessing.Queue — the overhead that makes total process time creep
// upward with larger active pools. PushAll pays that cost once per batch,
// which is what batched emission amortizes on the in-process path.
type Queue struct {
	mu       sync.Mutex
	items    []Task
	syncCost time.Duration
	pushes   int64
	pops     int64
}

// NewQueue creates a queue with the given per-op synchronization cost.
func NewQueue(syncCost time.Duration) *Queue {
	return &Queue{syncCost: syncCost}
}

// Push appends a task. Waiting poppers notice on their next poll slice (see
// Pop); there is no wakeup signal to deliver.
func (q *Queue) Push(t Task) {
	q.mu.Lock()
	platform.SpinWait(q.syncCost)
	q.items = append(q.items, t)
	q.pushes++
	q.mu.Unlock()
}

// PushAll appends a batch of tasks under one lock hold and one
// synchronization cost, preserving order.
func (q *Queue) PushAll(ts []Task) {
	if len(ts) == 0 {
		return
	}
	q.mu.Lock()
	platform.SpinWait(q.syncCost)
	q.items = append(q.items, ts...)
	q.pushes += int64(len(ts))
	q.mu.Unlock()
}

// Pop removes the head task, blocking up to timeout when the queue is
// empty. ok is false on timeout.
func (q *Queue) Pop(timeout time.Duration) (t Task, ok bool) {
	deadline := time.Now().Add(timeout)
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Task{}, false
		}
		// Empty-queue waiters poll in small slices (there is deliberately no
		// condition-variable wakeup: workers must return to their loop to
		// run the termination protocol anyway). The slice is a fraction of
		// the poll timeout to keep wake-up latency low without busy-spinning.
		q.mu.Unlock()
		slice := remaining
		if slice > time.Millisecond {
			slice = time.Millisecond
		}
		time.Sleep(slice)
		q.mu.Lock()
	}
	platform.SpinWait(q.syncCost)
	t = q.items[0]
	q.items = q.items[1:]
	q.pops++
	return t, true
}

// PopN removes up to max head tasks under one lock hold and one
// synchronization cost — the single-lock multi-dequeue that mirrors PushAll
// on the consume path. Like Pop it blocks up to timeout for the first task
// and never waits for more; a poison pill ends its batch (the pill is the
// last element returned) so sibling pool workers keep their pills visible.
func (q *Queue) PopN(max int, timeout time.Duration) []Task {
	if max < 1 {
		max = 1
	}
	deadline := time.Now().Add(timeout)
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		// Same empty-queue poll slices as Pop (see there for why no condvar).
		q.mu.Unlock()
		slice := remaining
		if slice > time.Millisecond {
			slice = time.Millisecond
		}
		time.Sleep(slice)
		q.mu.Lock()
	}
	platform.SpinWait(q.syncCost)
	n := max
	if n > len(q.items) {
		n = len(q.items)
	}
	out := make([]Task, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, q.items[i])
		if q.items[i].Poison {
			break
		}
	}
	q.items = q.items[len(out):]
	q.pops += int64(len(out))
	return out
}

// Len returns the current queue length (the dyn_auto_multi monitor metric).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Ops reports total pushes and pops, for tests and diagnostics.
func (q *Queue) Ops() (pushes, pops int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushes, q.pops
}

// QueueTransport runs a dynamic pool over the in-process global queue. It
// supports pool routing only: every worker is interchangeable, so tasks
// addressed to a pinned instance are a planning error.
type QueueTransport struct {
	q       *Queue
	pending atomic.Int64
	closed  atomic.Bool
}

// NewQueueTransport wraps a Queue as a Transport. The queue is shared so the
// planner can also hand it to an autoscale monitor (queue-size strategy).
func NewQueueTransport(q *Queue) *QueueTransport {
	return &QueueTransport{q: q}
}

// Push implements Transport.
func (t *QueueTransport) Push(tasks ...Task) error {
	for _, task := range tasks {
		if task.Instance >= 0 && !task.Poison {
			return fmt.Errorf("runtime: queue transport cannot address pinned instance %s[%d]", task.PE, task.Instance)
		}
		if !task.Poison {
			t.pending.Add(1)
		}
	}
	t.q.PushAll(tasks)
	return nil
}

// PullBatch implements Transport: one multi-dequeue pays one lock hold and
// one modeled synchronization cost for the whole window.
func (t *QueueTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if t.closed.Load() {
		return nil, errTransportClosed
	}
	tasks := t.q.PopN(max, timeout)
	if len(tasks) == 0 {
		return nil, nil
	}
	envs := make([]Env, len(tasks))
	for i, task := range tasks {
		envs[i] = Env{Task: task}
	}
	return envs, nil
}

// Ack implements Transport.
func (t *QueueTransport) Ack(w int, envs ...Env) error {
	var n int64
	for _, env := range envs {
		if !env.Poison {
			n++
		}
	}
	if n > 0 {
		t.pending.Add(-n)
	}
	return nil
}

// Pending implements Transport.
func (t *QueueTransport) Pending() (int64, error) { return t.pending.Load(), nil }

// QueueDepths implements DepthReporter.
func (t *QueueTransport) QueueDepths() map[string]int64 {
	return map[string]int64{"queue": int64(t.q.Len())}
}

// Done implements Transport.
func (t *QueueTransport) Done() error {
	t.closed.Store(true)
	return nil
}
