package runtime_test

import (
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
	"repro/internal/runtime"
)

// newEntryFixture is newRedisFixture with the run keys exposed, so tests can
// inspect the stream and PEL behind the Transport interface.
func newEntryFixture(t *testing.T, workers int, recoverStale bool) (*runtime.RedisTransport, *redisclient.Client, runtime.RedisKeys) {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := redisclient.Dial(srv.Addr())
	t.Cleanup(func() { cl.Close() })
	keys := runtime.NewRunKeys("entrytest", 1)
	plan := runtime.NewPlan(make([]runtime.WorkerSpec, workers), map[string]int{"pe": 0})
	tr, err := runtime.NewRedisTransport(redisclient.Single(cl), keys, plan, recoverStale)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cl, keys
}

func poolTasks(n int) []runtime.Task {
	ts := make([]runtime.Task, n)
	for i := range ts {
		ts[i] = runtime.Task{PE: "pe", Port: "in", Value: i, Instance: -1, Src: uint64(i + 1), Seq: uint64(i)}
	}
	return ts
}

// TestRedisPackedPushSingleEntry pins the tentpole wire change: one Push of
// a pool batch lands as ONE stream entry, and one window unit of PullBatch
// delivers the whole frame.
func TestRedisPackedPushSingleEntry(t *testing.T) {
	tr, cl, keys := newEntryFixture(t, 1, false)
	if err := tr.Push(poolTasks(8)...); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.XLen(keys.Queue); err != nil || n != 1 {
		t.Fatalf("stream holds %d entries (%v), want 1 packed frame", n, err)
	}
	envs, err := tr.PullBatch(0, 1, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 8 {
		t.Fatalf("pulled %d envs from a window of 1 entry, want 8", len(envs))
	}
	for i, env := range envs {
		if env.AckID == "" || env.AckID != envs[0].AckID {
			t.Fatalf("env %d AckID %q, want all envs to share the entry ID %q", i, env.AckID, envs[0].AckID)
		}
		if env.Value != i {
			t.Fatalf("env %d value %v, want in-order delivery", i, env.Value)
		}
	}
	if err := tr.Ack(0, envs...); err != nil {
		t.Fatal(err)
	}
	if p, err := tr.Pending(); err != nil || p != 0 {
		t.Fatalf("pending = %d (%v) after full ack, want 0", p, err)
	}
	if ids, err := cl.XPendingIDs(keys.Queue, keys.Group, "w0", 16); err != nil || len(ids) != 0 {
		t.Fatalf("PEL holds %v (%v) after full ack, want empty", ids, err)
	}
}

// TestRedisEntryRangeAckPartial acks a packed entry in two halves: the entry
// must stay in the PEL until the last of its tasks is released, while the
// unfenced pending counter still drains per task.
func TestRedisEntryRangeAckPartial(t *testing.T) {
	tr, cl, keys := newEntryFixture(t, 1, false)
	if err := tr.Push(poolTasks(4)...); err != nil {
		t.Fatal(err)
	}
	envs, err := tr.PullBatch(0, 1, 5*time.Millisecond)
	if err != nil || len(envs) != 4 {
		t.Fatalf("pull: %d envs, %v", len(envs), err)
	}
	if err := tr.Ack(0, envs[:2]...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 2 {
		t.Fatalf("pending = %d after half the frame acked, want 2", p)
	}
	if ids, err := cl.XPendingIDs(keys.Queue, keys.Group, "w0", 16); err != nil || len(ids) != 1 {
		t.Fatalf("PEL %v (%v) with the frame half-acked, want the entry still pending", ids, err)
	}
	if err := tr.Ack(0, envs[2:]...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 0 {
		t.Fatalf("pending = %d after the full frame, want 0", p)
	}
	if ids, _ := cl.XPendingIDs(keys.Queue, keys.Group, "w0", 16); len(ids) != 0 {
		t.Fatalf("PEL %v after the full frame, want empty", ids)
	}
}

// TestRedisEntryRangeAckFencedPartial is the fenced variant: with
// recoverStale on, decrements are backed by entry removal, so a half-acked
// frame holds its full weight on the pending counter — the drain check can
// never observe a packed frame as partially done.
func TestRedisEntryRangeAckFencedPartial(t *testing.T) {
	tr, _, _ := newEntryFixture(t, 1, true)
	if err := tr.Push(poolTasks(4)...); err != nil {
		t.Fatal(err)
	}
	envs, err := tr.PullBatch(0, 1, 5*time.Millisecond)
	if err != nil || len(envs) != 4 {
		t.Fatalf("pull: %d envs, %v", len(envs), err)
	}
	if err := tr.Ack(0, envs[:2]...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 4 {
		t.Fatalf("fenced pending = %d after half the frame acked, want the full 4 until the entry completes", p)
	}
	if err := tr.Ack(0, envs[2:]...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 0 {
		t.Fatalf("fenced pending = %d after the full frame, want 0", p)
	}
}

// TestRedisClaimedPackedEntryFenced reruns the late-ack interleaving over a
// packed frame: the whole entry is claimed away, the original worker's late
// ack of all its tasks must not release anything, and the new owner's ack
// releases the entry's full weight exactly once.
func TestRedisClaimedPackedEntryFenced(t *testing.T) {
	tr, _, _ := newEntryFixture(t, 2, true)
	if err := tr.Push(poolTasks(3)...); err != nil {
		t.Fatal(err)
	}
	const pollTimeout = 5 * time.Millisecond
	stalled, err := tr.PullBatch(0, 1, pollTimeout)
	if err != nil || len(stalled) != 3 {
		t.Fatalf("pull w0: %d envs, %v", len(stalled), err)
	}
	time.Sleep(10 * pollTimeout)
	claimed, err := tr.PullBatch(1, 1, pollTimeout)
	if err != nil || len(claimed) != 3 || claimed[0].AckID != stalled[0].AckID {
		t.Fatalf("claim w1: %d envs, %v (want the stalled frame)", len(claimed), err)
	}
	if err := tr.Ack(0, stalled...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 3 {
		t.Fatalf("pending = %d after the late ack of the claimed frame, want 3", p)
	}
	if err := tr.Ack(1, claimed...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 0 {
		t.Fatalf("pending = %d after the owner's ack, want 0", p)
	}
	// Repeated stale acks of the long-released frame stay no-ops.
	if err := tr.Ack(0, stalled...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 0 {
		t.Fatalf("pending = %d after a repeated stale ack, want 0", p)
	}
}

// TestRedisLeaseExtendBlocksClaim pins the liveness contract packing
// introduced: a worker heartbeating through Extend keeps its pulled frame
// ineligible for XAUTOCLAIM even though the frame's total processing time is
// far past the idle threshold, while a silent worker's frame is claimed away
// as before. Without the heartbeat a frame slower than the threshold
// ping-pongs between claimers forever and the run never drains.
func TestRedisLeaseExtendBlocksClaim(t *testing.T) {
	tr, _, _ := newEntryFixture(t, 2, true)
	if err := tr.Push(poolTasks(6)...); err != nil {
		t.Fatal(err)
	}
	const pollTimeout = 5 * time.Millisecond // claim threshold 8× = 40ms
	envs, err := tr.PullBatch(0, 1, pollTimeout)
	if err != nil || len(envs) != 6 {
		t.Fatalf("pull w0: %d envs, %v", len(envs), err)
	}
	// Simulate a healthy worker mid-frame: heartbeat across 3 thresholds'
	// worth of wall clock without acking anything.
	for i := 0; i < 12; i++ {
		time.Sleep(pollTimeout * 2)
		if err := tr.Extend(0); err != nil {
			t.Fatal(err)
		}
	}
	claimed, err := tr.PullBatch(1, 1, pollTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(claimed) != 0 {
		t.Fatalf("w1 claimed %d envs from a heartbeating owner, want 0", len(claimed))
	}
	// The owner stops heartbeating (stalls): the frame ages out and w1
	// claims it whole.
	time.Sleep(10 * pollTimeout)
	claimed, err = tr.PullBatch(1, 1, pollTimeout)
	if err != nil || len(claimed) != 6 {
		t.Fatalf("w1 claimed %d envs from a stalled owner (%v), want the full frame of 6", len(claimed), err)
	}
	// The late owner's Extend must not steal the frame back: it no longer
	// owns the entry, so the heartbeat is a no-op.
	if err := tr.Extend(0); err != nil {
		t.Fatal(err)
	}
	if again, err := tr.PullBatch(0, 1, pollTimeout); err != nil || len(again) != 0 {
		t.Fatalf("stalled owner re-pulled %d envs (%v) after its late Extend, want 0", len(again), err)
	}
	if err := tr.Ack(1, claimed...); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Pending(); p != 0 {
		t.Fatalf("pending = %d after the claimer's full ack, want 0", p)
	}
}

// TestRedisPillsBreakFrames asserts poison pills never ride inside a packed
// frame: they get their own entries so they spread across consumers and
// order survives.
func TestRedisPillsBreakFrames(t *testing.T) {
	tr, cl, keys := newEntryFixture(t, 1, false)
	tasks := []runtime.Task{
		{PE: "pe", Value: 1, Instance: -1},
		{PE: "pe", Value: 2, Instance: -1},
		{Poison: true, Instance: -1},
		{PE: "pe", Value: 3, Instance: -1},
	}
	if err := tr.Push(tasks...); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.XLen(keys.Queue); err != nil || n != 3 {
		t.Fatalf("stream holds %d entries (%v), want run + pill + run = 3", n, err)
	}
	envs, err := tr.PullBatch(0, 10, 5*time.Millisecond)
	if err != nil || len(envs) != 4 {
		t.Fatalf("pull: %d envs, %v", len(envs), err)
	}
	if envs[0].Value != 1 || envs[1].Value != 2 || !envs[2].Poison || envs[3].Value != 3 {
		t.Fatalf("delivery order broken: %+v", envs)
	}
}
