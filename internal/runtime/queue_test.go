package runtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 100; i++ {
		q.Push(Task{PE: "pe", Value: i})
	}
	for i := 0; i < 100; i++ {
		task, ok := q.Pop(time.Millisecond)
		if !ok || task.Value.(int) != i {
			t.Fatalf("pop %d: %+v %v", i, task, ok)
		}
	}
}

func TestQueuePopTimeoutBounds(t *testing.T) {
	q := NewQueue(0)
	start := time.Now()
	_, ok := q.Pop(30 * time.Millisecond)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("empty queue returned a task")
	}
	if elapsed < 25*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Errorf("timeout elapsed %v", elapsed)
	}
}

func TestQueuePopWakesOnPush(t *testing.T) {
	q := NewQueue(0)
	got := make(chan Task, 1)
	go func() {
		task, ok := q.Pop(5 * time.Second)
		if ok {
			got <- task
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(Task{PE: "late"})
	select {
	case task := <-got:
		if task.PE != "late" {
			t.Errorf("task: %+v", task)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(0)
	const producers, perProducer, consumers = 4, 50, 3
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(Task{PE: "pe", Value: p*perProducer + i})
			}
		}(p)
	}
	seen := make(chan int, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				task, ok := q.Pop(50 * time.Millisecond)
				if !ok {
					return
				}
				seen <- task.Value.(int)
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	close(seen)
	got := map[int]bool{}
	for v := range seen {
		if got[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		got[v] = true
	}
	if len(got) != producers*perProducer {
		t.Fatalf("delivered %d of %d tasks", len(got), producers*perProducer)
	}
}

func TestQueueSyncCostSerializes(t *testing.T) {
	const cost = 500 * time.Microsecond
	q := NewQueue(cost)
	const n = 40
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n/4; j++ {
				q.Push(Task{PE: "pe"})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 40 pushes × 0.5ms serialized under one lock ≥ ~20ms regardless of the
	// number of pushers.
	if elapsed < time.Duration(n)*cost-5*time.Millisecond {
		t.Errorf("pushes finished in %v, want ≥ %v", elapsed, time.Duration(n)*cost)
	}
}

// Property: any interleaving of pushes preserves multiset of payloads.
func TestQuickQueueNoLoss(t *testing.T) {
	f := func(values []int16) bool {
		q := NewQueue(0)
		for _, v := range values {
			q.Push(Task{Value: int(v)})
		}
		counts := map[int]int{}
		for range values {
			task, ok := q.Pop(time.Millisecond)
			if !ok {
				return false
			}
			counts[task.Value.(int)]++
		}
		if _, ok := q.Pop(time.Millisecond); ok {
			return false // extra task appeared
		}
		want := map[int]int{}
		for _, v := range values {
			want[int(v)]++
		}
		if len(counts) != len(want) {
			return false
		}
		for k, n := range want {
			if counts[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
