package runtime_test

import (
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/mpi"
	"repro/internal/redisclient"
	"repro/internal/runtime"
)

// newRedisFixture builds a Redis transport over a fresh embedded server.
func newRedisFixture(t *testing.T, plan runtime.Plan, recoverStale bool) (*runtime.RedisTransport, *redisclient.Client) {
	t.Helper()
	srv, err := miniredis.StartTestServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := redisclient.Dial(srv.Addr())
	t.Cleanup(func() { cl.Close() })
	tr, err := runtime.NewRedisTransport(redisclient.Single(cl), runtime.NewRunKeys("fencetest", 1), plan, recoverStale)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cl
}

// TestRedisLateAckAfterClaimIsFenced drives the late-ack double-decrement
// interleaving directly: worker 0 pulls a task and stalls; XAUTOCLAIM (via
// worker 1's empty-handed pull under recoverStale) moves the pending entry
// to worker 1; then worker 0's pipelined ack lands late. Without consumer
// fencing that ack would XACK the claimed entry and decrement the shared
// pending counter while the task is still in flight on worker 1 — the
// coordinator would observe pending == 0 and start poisoning workers early.
// The fenced ack must drop it: the task stays pending until its new owner
// releases it, and repeated late acks never drive the counter negative.
func TestRedisLateAckAfterClaimIsFenced(t *testing.T) {
	plan := runtime.NewPlan(make([]runtime.WorkerSpec, 2), map[string]int{"pe": 0})
	tr, _ := newRedisFixture(t, plan, true)

	if err := tr.Push(runtime.Task{PE: "pe", Port: "in", Value: 1, Instance: -1}); err != nil {
		t.Fatal(err)
	}
	const pollTimeout = 5 * time.Millisecond

	// Worker 0 takes the delivery and stalls mid-processing.
	stalled, err := tr.PullBatch(0, 1, pollTimeout)
	if err != nil || len(stalled) != 1 {
		t.Fatalf("pull w0: %v %v", stalled, err)
	}

	// The entry's idle time crosses the reclaim threshold (8 × poll
	// timeout); worker 1's empty-handed pull claims it.
	time.Sleep(10 * pollTimeout)
	claimed, err := tr.PullBatch(1, 1, pollTimeout)
	if err != nil || len(claimed) != 1 || claimed[0].AckID != stalled[0].AckID {
		t.Fatalf("claim w1: %v %v (want the stalled entry %s)", claimed, err, stalled[0].AckID)
	}

	// Worker 0 wakes up and its ack lands late.
	if err := tr.Ack(0, stalled...); err != nil {
		t.Fatal(err)
	}
	if p, err := tr.Pending(); err != nil || p != 1 {
		t.Fatalf("pending = %d (%v) after the late ack, want 1 — the claimed task is still in flight on w1", p, err)
	}

	// The new owner releases it; only now does the counter drain.
	if err := tr.Ack(1, claimed...); err != nil {
		t.Fatal(err)
	}
	if p, err := tr.Pending(); err != nil || p != 0 {
		t.Fatalf("pending = %d (%v) after the owner's ack, want 0", p, err)
	}

	// A second stale ack of the long-released delivery stays a no-op.
	if err := tr.Ack(0, stalled...); err != nil {
		t.Fatal(err)
	}
	if p, err := tr.Pending(); err != nil || p != 0 {
		t.Fatalf("pending = %d (%v) after a repeated stale ack, want 0 (counter went negative)", p, err)
	}
}

// TestTransportsPoisonPillBatchFraming pins how each transport frames a
// push interleaving tasks and a poison pill — the contract PR 3's worker
// re-routing relies on but no test held down:
//
//   - reversible transports (chan, queue, rank) end the batch at the pill,
//     so a worker can never swallow work queued behind its own pill;
//   - the Redis transports may return tasks behind the pill in one batch
//     (irreversible stream deliveries, whole private-list frames); the
//     worker's re-route — push the surplus back, then release the batch —
//     must lose nothing and leave the pending counter exactly drained.
func TestTransportsPoisonPillBatchFraming(t *testing.T) {
	const pollTimeout = 50 * time.Millisecond

	// assertReversible: [task, pill, task] pushed in one call must come back
	// as [task, pill], with the trailing task still pullable afterwards.
	assertReversible := func(t *testing.T, tr runtime.Transport, mk func(v int, poison bool) runtime.Task) {
		if err := tr.Push(mk(1, false), mk(0, true), mk(2, false)); err != nil {
			t.Fatal(err)
		}
		batch, err := tr.PullBatch(0, 10, pollTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != 2 || batch[0].Poison || !batch[1].Poison {
			t.Fatalf("batch = %+v, want [task, pill] (pill must end its batch)", batch)
		}
		rest, err := tr.PullBatch(0, 10, pollTimeout)
		if err != nil || len(rest) != 1 || rest[0].Poison || rest[0].Value != 2 {
			t.Fatalf("task behind the pill lost: %+v %v", rest, err)
		}
		if err := tr.Ack(0, append(batch, rest...)...); err != nil {
			t.Fatal(err)
		}
		if p, err := tr.Pending(); err != nil || p != 0 {
			t.Fatalf("pending = %d (%v) after acking everything, want 0", p, err)
		}
	}

	t.Run("chan", func(t *testing.T) {
		plan := runtime.NewPlan([]runtime.WorkerSpec{{PE: "pe", Instance: 0}}, map[string]int{"pe": 1})
		assertReversible(t, runtime.NewChanTransport(plan, 0), func(v int, poison bool) runtime.Task {
			return runtime.Task{PE: "pe", Port: "in", Value: v, Instance: 0, Poison: poison}
		})
	})
	t.Run("queue", func(t *testing.T) {
		assertReversible(t, runtime.NewQueueTransport(runtime.NewQueue(0)), func(v int, poison bool) runtime.Task {
			return runtime.Task{PE: "pe", Port: "in", Value: v, Instance: -1, Poison: poison}
		})
	})
	t.Run("rank", func(t *testing.T) {
		world, err := mpi.NewWorld(1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(world.Close)
		plan := runtime.NewPlan([]runtime.WorkerSpec{{PE: "pe", Instance: 0}}, map[string]int{"pe": 1})
		tr, err := runtime.NewRankTransport(world, plan)
		if err != nil {
			t.Fatal(err)
		}
		assertReversible(t, tr, func(v int, poison bool) runtime.Task {
			return runtime.Task{PE: "pe", Port: "in", Value: v, Instance: 0, Poison: poison}
		})
	})

	// rerouteSurplus emulates the worker loop's retirePoison on a batch that
	// carries tasks behind a pill: push the surplus back, release the batch.
	rerouteSurplus := func(t *testing.T, tr runtime.Transport, batch []runtime.Env) {
		pill := -1
		for i, env := range batch {
			if env.Poison {
				pill = i
				break
			}
		}
		if pill < 0 {
			t.Fatalf("no pill in batch %+v", batch)
		}
		var surplus []runtime.Task
		for _, env := range batch[pill+1:] {
			surplus = append(surplus, env.Task)
		}
		if len(surplus) > 0 {
			if err := tr.Push(surplus...); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Ack(0, batch[pill:]...); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("redis-stream", func(t *testing.T) {
		plan := runtime.NewPlan(make([]runtime.WorkerSpec, 2), map[string]int{"pe": 0})
		tr, _ := newRedisFixture(t, plan, false)
		mk := func(v int, poison bool) runtime.Task {
			return runtime.Task{PE: "pe", Port: "in", Value: v, Instance: -1, Poison: poison}
		}
		if err := tr.Push(mk(1, false), mk(0, true), mk(2, false)); err != nil {
			t.Fatal(err)
		}
		batch, err := tr.PullBatch(0, 10, pollTimeout)
		if err != nil || len(batch) != 3 {
			t.Fatalf("stream batch = %+v (%v), want all 3 entries (irreversible deliveries)", batch, err)
		}
		if err := tr.Ack(0, batch[0]); err != nil { // the task ahead of the pill is processed normally
			t.Fatal(err)
		}
		rerouteSurplus(t, tr, batch)
		redelivered, err := tr.PullBatch(1, 10, pollTimeout)
		if err != nil || len(redelivered) != 1 || redelivered[0].Value != 2 {
			t.Fatalf("re-routed task not redelivered: %+v %v", redelivered, err)
		}
		if err := tr.Ack(1, redelivered...); err != nil {
			t.Fatal(err)
		}
		if p, err := tr.Pending(); err != nil || p != 0 {
			t.Fatalf("pending = %d (%v) after the re-route, want 0", p, err)
		}
	})
	t.Run("redis-private-list", func(t *testing.T) {
		plan := runtime.NewPlan([]runtime.WorkerSpec{{PE: "pe", Instance: 0}}, map[string]int{"pe": 1})
		tr, _ := newRedisFixture(t, plan, false)
		mk := func(v int, poison bool) runtime.Task {
			return runtime.Task{PE: "pe", Port: "in", Value: v, Instance: 0, Poison: poison}
		}
		// One batched push → one list frame holding the interleaved batch.
		if err := tr.Push(mk(1, false), mk(0, true), mk(2, false)); err != nil {
			t.Fatal(err)
		}
		batch, err := tr.PullBatch(0, 10, pollTimeout)
		if err != nil || len(batch) != 3 {
			t.Fatalf("frame batch = %+v (%v), want the whole 3-task frame", batch, err)
		}
		if batch[0].Value != 1 || !batch[1].Poison || batch[2].Value != 2 {
			t.Fatalf("frame order mangled: %+v", batch)
		}
		if err := tr.Ack(0, batch[0]); err != nil {
			t.Fatal(err)
		}
		rerouteSurplus(t, tr, batch)
		redelivered, err := tr.PullBatch(0, 10, pollTimeout)
		if err != nil || len(redelivered) != 1 || redelivered[0].Value != 2 {
			t.Fatalf("re-routed task not redelivered: %+v %v", redelivered, err)
		}
		if err := tr.Ack(0, redelivered...); err != nil {
			t.Fatal(err)
		}
		if p, err := tr.Pending(); err != nil || p != 0 {
			t.Fatalf("pending = %d (%v) after the re-route, want 0", p, err)
		}
	})
}
