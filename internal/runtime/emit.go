package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/telemetry"
)

// batcher buffers one worker's emitted tasks and hands them to the transport
// in a single Push when the batch fills or ages out. It is single-goroutine
// (one per worker), so it needs no locking.
//
// The worker loop flushes the batch before releasing any task that emitted
// into it (the refill-time emits-then-acks ordering), so a task's children
// are always counted as pending before the task itself is released —
// buffering never creates a window in which the coordinator could observe a
// spuriously drained transport.
type batcher struct {
	tr         Transport
	max        int         // fixed window; ignored when sizer is set
	sizer      *BatchSizer // adaptive window (Options.EmitBatch = AutoBatch)
	flushEvery time.Duration
	buf        []Task
	firstAt    time.Time

	// Hold mode diverts pushed tasks into held instead of the transport — no
	// size- or age-trigger flushes — so a fenced Final's emissions can be
	// collected in full and shipped atomically via PushFenced. See hold/take.
	holding bool
	held    []Task

	// Telemetry (optional): flush latency and flushed batch sizes. nil keeps
	// the fast paths free of time.Now calls.
	flushHist *telemetry.Histogram
	sizeHist  *telemetry.Histogram
}

// newBatcher sizes the buffer from the EmitBatch knob: <= 1 passes tasks
// straight through, mapping.AutoBatch attaches an adaptive sizer fed by the
// observed Push round-trip cost.
func newBatcher(tr Transport, batch int, flushEvery time.Duration) *batcher {
	b := &batcher{tr: tr, flushEvery: flushEvery}
	if batch == mapping.AutoBatch {
		b.sizer = NewBatchSizer()
		return b
	}
	if batch < 1 {
		batch = 1
	}
	b.max = batch
	b.buf = make([]Task, 0, batch)
	return b
}

// window is the current flush threshold.
func (b *batcher) window() int {
	if b.sizer != nil {
		return b.sizer.Next()
	}
	return b.max
}

// hold starts collecting pushed tasks instead of sending them. The caller
// must have flushed the batcher first so earlier unfenced emissions cannot
// leak into the held set.
func (b *batcher) hold() {
	b.holding = true
	b.held = b.held[:0]
}

// take ends hold mode and returns the collected tasks (valid until the next
// hold).
func (b *batcher) take() []Task {
	b.holding = false
	return b.held
}

// push buffers one task, flushing on size or age.
func (b *batcher) push(t Task) error {
	if b.holding {
		b.held = append(b.held, t)
		return nil
	}
	if b.sizer == nil && b.max <= 1 {
		// Unbatched passthrough: each emission is its own flush.
		if b.flushHist == nil {
			return b.tr.Push(t)
		}
		start := time.Now()
		err := b.tr.Push(t)
		b.flushHist.Observe(int64(time.Since(start)))
		b.sizeHist.Observe(1)
		return err
	}
	if len(b.buf) == 0 {
		b.firstAt = time.Now()
	}
	b.buf = append(b.buf, t)
	if len(b.buf) >= b.window() || (b.flushEvery > 0 && time.Since(b.firstAt) >= b.flushEvery) {
		return b.flush()
	}
	return nil
}

// flush pushes the buffered tasks, if any, feeding the adaptive sizer with
// the round trip's cost.
func (b *batcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	tasks := b.buf
	b.buf = b.buf[:0]
	if b.sizer == nil && b.flushHist == nil {
		return b.tr.Push(tasks...)
	}
	start := time.Now()
	err := b.tr.Push(tasks...)
	elapsed := time.Since(start)
	if b.sizer != nil {
		b.sizer.Observe(elapsed, len(tasks))
	}
	if b.flushHist != nil {
		b.flushHist.Observe(int64(elapsed))
		b.sizeHist.Observe(int64(len(tasks)))
	}
	return err
}

// ackBatch buffers one worker's acknowledgements so a pulled batch is
// released in one amortized transport operation (a single pipelined
// XACK + decrement on Redis). It is single-goroutine, like the batcher.
//
// Deferring an ack only ever keeps the pending count high, never low, so
// the termination invariant is untouched; what matters is that the batch is
// flushed — after the emit batch, so children land first — before the
// worker's prefetch buffer refills, before it parks idle, and before it
// exits, all of which the worker loop owns.
type ackBatch struct {
	tr  Transport
	w   int
	buf []Env

	// Telemetry (optional): ack-flush latency and traced-delivery ack events.
	hist   *telemetry.Histogram
	tracer *telemetry.Tracer
}

// add buffers one processed delivery for the next flush.
func (a *ackBatch) add(env Env) { a.buf = append(a.buf, env) }

// flush releases the buffered deliveries, if any.
func (a *ackBatch) flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	envs := a.buf
	a.buf = a.buf[:0]
	if a.hist == nil && a.tracer == nil {
		return a.tr.Ack(a.w, envs...)
	}
	start := time.Now()
	err := a.tr.Ack(a.w, envs...)
	if a.hist != nil {
		a.hist.Observe(int64(time.Since(start)))
	}
	if a.tracer != nil && err == nil {
		now := time.Now().UnixNano()
		for _, env := range envs {
			if env.TraceAt != 0 {
				a.tracer.RecordAck(env.Src, env.Seq, a.w, now)
			}
		}
	}
	return err
}

// router turns PE emissions into transport tasks: for every out-edge
// matching the emitted port it resolves the destination — a pinned instance
// chosen by the edge grouping, or the shared pool — and counts workflow
// outputs. It is the one copy of the routing logic formerly duplicated in
// every mapping.
type router struct {
	g       *graph.Graph
	plan    Plan
	outputs *atomic.Int64
	out     func(Task) error
	seq     map[*graph.Edge]uint64

	// Identity-stamping state: when stamped is on (exactly-once fencing, or
	// task tracing, which rides the same provenance identities), every
	// emitted task is stamped with a provenance derived from the task being
	// executed (cur) and the emitting edge, plus a per-(execution, edge)
	// sequence. gen versions the current execution so the per-edge counters
	// of each emit closure reset lazily at the first emission of a new task.
	stamped bool
	cur     Task
	gen     uint64

	// Tracing state (tracer nil when tracing is off): the worker slot, and
	// whether the current execution is itself traced / a source Generate.
	tracer    *telemetry.Tracer
	worker    int
	curPE     string
	curTraced bool
	curIsGen  bool

	// diag (nil when diagnosis is off) feeds the per-PE out counters and
	// per-edge flow rows; emitFor caches the rows per closure.
	diag *diagnosis.Diag
}

func newRouter(g *graph.Graph, plan Plan, outputs *atomic.Int64, out func(Task) error, stamped bool, tracer *telemetry.Tracer, worker int, diag *diagnosis.Diag) *router {
	return &router{g: g, plan: plan, outputs: outputs, out: out, seq: map[*graph.Edge]uint64{},
		stamped: stamped, tracer: tracer, worker: worker, diag: diag}
}

// begin marks the start of one task execution: subsequent emissions derive
// their stamped identity (and trace membership) from this task. A replayed
// execution of the same task therefore re-stamps identical children,
// wherever it runs.
func (r *router) begin(t Task) {
	if !r.stamped {
		return
	}
	r.cur = t
	r.gen++
	if r.tracer != nil {
		r.curPE = t.PE
		r.curTraced = t.TraceAt != 0
		r.curIsGen = t.PE != "" && t.Port == "" && !t.Finalize && !t.Poison
	}
}

// emitFor builds the emit closure for one sending node. The closure is
// single-goroutine (each worker owns its router).
func (r *router) emitFor(node string) func(port string, value any) error {
	edges := r.g.OutEdges(node)
	// Per-closure stamping state: a stable salt per out-edge and one child
	// sequence per out-edge, reset when the router moves to the next task
	// execution.
	var childSeq, salts []uint64
	var seqGen uint64
	if r.stamped {
		childSeq = make([]uint64, len(edges))
		salts = make([]uint64, len(edges))
		for i, e := range edges {
			salts[i] = edgeSalt(e.From, e.FromPort, e.To, e.ToPort)
		}
	}
	// Diagnosis flow rows, resolved once per closure (build time, not emit
	// time): the sender's ledger row plus one row per out-edge.
	var outFlow *diagnosis.PEFlow
	var edgeFlows []*diagnosis.EdgeFlow
	if r.diag != nil {
		outFlow = r.diag.PE(node)
		edgeFlows = make([]*diagnosis.EdgeFlow, len(edges))
		for i, e := range edges {
			edgeFlows[i] = r.diag.Edge(diagnosis.EdgeName(e.From, e.FromPort, e.To, e.ToPort))
		}
	}
	stamp := func(t Task, edgeIdx int) Task {
		if !r.stamped {
			return t
		}
		if seqGen != r.gen {
			seqGen = r.gen
			for i := range childSeq {
				childSeq[i] = 0
			}
		}
		t.Src = childSrc(r.cur.Src, r.cur.Seq, salts[edgeIdx])
		t.Seq = childSeq[edgeIdx]
		childSeq[edgeIdx]++
		if r.tracer != nil {
			// Traced parent ⇒ traced child; untraced executions start a new
			// trace on every sampleEvery-th emission, marked Root when the
			// trace begins at a source's Generate (a complete path head).
			if r.curTraced {
				t.TraceAt = time.Now().UnixNano()
				r.tracer.RecordEmit(r.cur.Src, r.cur.Seq, r.curPE, t.Src, t.Seq, r.worker, false, t.TraceAt)
			} else if r.tracer.Sample() {
				t.TraceAt = time.Now().UnixNano()
				r.tracer.RecordEmit(r.cur.Src, r.cur.Seq, r.curPE, t.Src, t.Seq, r.worker, r.curIsGen, t.TraceAt)
			}
		}
		return t
	}
	return func(port string, value any) error {
		for ei, e := range edges {
			if e.FromPort != port {
				continue
			}
			if len(r.g.OutEdges(e.To)) == 0 {
				// Delivery into a terminal PE counts as a workflow output.
				r.outputs.Add(1)
			}
			nInst := r.plan.Instances[e.To]
			if nInst == 0 {
				// Pooled destination: any worker may process the task.
				if outFlow != nil {
					vb := diagnosis.ValueBytes(value)
					outFlow.ObserveOut(vb)
					edgeFlows[ei].ObserveTask(vb)
				}
				if err := r.out(stamp(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: -1}, ei)); err != nil {
					return err
				}
				continue
			}
			idx := e.Grouping.RouteInstance(value, r.seq[e], nInst)
			r.seq[e]++
			if idx < 0 { // one-to-all broadcast
				for i := 0; i < nInst; i++ {
					if outFlow != nil {
						vb := diagnosis.ValueBytes(value)
						outFlow.ObserveOut(vb)
						edgeFlows[ei].ObserveTask(vb)
					}
					if err := r.out(stamp(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: i}, ei)); err != nil {
						return err
					}
				}
				continue
			}
			if outFlow != nil {
				vb := diagnosis.ValueBytes(value)
				outFlow.ObserveOut(vb)
				edgeFlows[ei].ObserveTask(vb)
			}
			if err := r.out(stamp(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: idx}, ei)); err != nil {
				return err
			}
		}
		return nil
	}
}
