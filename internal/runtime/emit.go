package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// batcher buffers one worker's emitted tasks and hands them to the transport
// in a single Push when the batch fills or ages out. It is single-goroutine
// (one per worker), so it needs no locking.
//
// The worker loop flushes the batch before acknowledging the task that
// emitted it, so a task's children are always counted as pending before the
// task itself is released — buffering never creates a window in which the
// coordinator could observe a spuriously drained transport.
type batcher struct {
	tr         Transport
	max        int
	flushEvery time.Duration
	buf        []Task
	firstAt    time.Time
}

// newBatcher sizes the buffer; max <= 1 passes tasks straight through.
func newBatcher(tr Transport, max int, flushEvery time.Duration) *batcher {
	if max < 1 {
		max = 1
	}
	return &batcher{tr: tr, max: max, flushEvery: flushEvery, buf: make([]Task, 0, max)}
}

// push buffers one task, flushing on size or age.
func (b *batcher) push(t Task) error {
	if b.max <= 1 {
		return b.tr.Push(t)
	}
	if len(b.buf) == 0 {
		b.firstAt = time.Now()
	}
	b.buf = append(b.buf, t)
	if len(b.buf) >= b.max || (b.flushEvery > 0 && time.Since(b.firstAt) >= b.flushEvery) {
		return b.flush()
	}
	return nil
}

// flush pushes the buffered tasks, if any.
func (b *batcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	tasks := b.buf
	b.buf = b.buf[:0]
	return b.tr.Push(tasks...)
}

// router turns PE emissions into transport tasks: for every out-edge
// matching the emitted port it resolves the destination — a pinned instance
// chosen by the edge grouping, or the shared pool — and counts workflow
// outputs. It is the one copy of the routing logic formerly duplicated in
// every mapping.
type router struct {
	g       *graph.Graph
	plan    Plan
	outputs *atomic.Int64
	out     func(Task) error
	seq     map[*graph.Edge]uint64
}

func newRouter(g *graph.Graph, plan Plan, outputs *atomic.Int64, out func(Task) error) *router {
	return &router{g: g, plan: plan, outputs: outputs, out: out, seq: map[*graph.Edge]uint64{}}
}

// emitFor builds the emit closure for one sending node. The closure is
// single-goroutine (each worker owns its router).
func (r *router) emitFor(node string) func(port string, value any) error {
	edges := r.g.OutEdges(node)
	return func(port string, value any) error {
		for _, e := range edges {
			if e.FromPort != port {
				continue
			}
			if len(r.g.OutEdges(e.To)) == 0 {
				// Delivery into a terminal PE counts as a workflow output.
				r.outputs.Add(1)
			}
			nInst := r.plan.Instances[e.To]
			if nInst == 0 {
				// Pooled destination: any worker may process the task.
				if err := r.out(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: -1}); err != nil {
					return err
				}
				continue
			}
			idx := e.Grouping.RouteInstance(value, r.seq[e], nInst)
			r.seq[e]++
			if idx < 0 { // one-to-all broadcast
				for i := 0; i < nInst; i++ {
					if err := r.out(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: i}); err != nil {
						return err
					}
				}
				continue
			}
			if err := r.out(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: idx}); err != nil {
				return err
			}
		}
		return nil
	}
}
