package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/mapping"
)

// batcher buffers one worker's emitted tasks and hands them to the transport
// in a single Push when the batch fills or ages out. It is single-goroutine
// (one per worker), so it needs no locking.
//
// The worker loop flushes the batch before releasing any task that emitted
// into it (the refill-time emits-then-acks ordering), so a task's children
// are always counted as pending before the task itself is released —
// buffering never creates a window in which the coordinator could observe a
// spuriously drained transport.
type batcher struct {
	tr         Transport
	max        int         // fixed window; ignored when sizer is set
	sizer      *BatchSizer // adaptive window (Options.EmitBatch = AutoBatch)
	flushEvery time.Duration
	buf        []Task
	firstAt    time.Time
}

// newBatcher sizes the buffer from the EmitBatch knob: <= 1 passes tasks
// straight through, mapping.AutoBatch attaches an adaptive sizer fed by the
// observed Push round-trip cost.
func newBatcher(tr Transport, batch int, flushEvery time.Duration) *batcher {
	b := &batcher{tr: tr, flushEvery: flushEvery}
	if batch == mapping.AutoBatch {
		b.sizer = NewBatchSizer()
		return b
	}
	if batch < 1 {
		batch = 1
	}
	b.max = batch
	b.buf = make([]Task, 0, batch)
	return b
}

// window is the current flush threshold.
func (b *batcher) window() int {
	if b.sizer != nil {
		return b.sizer.Next()
	}
	return b.max
}

// push buffers one task, flushing on size or age.
func (b *batcher) push(t Task) error {
	if b.sizer == nil && b.max <= 1 {
		return b.tr.Push(t)
	}
	if len(b.buf) == 0 {
		b.firstAt = time.Now()
	}
	b.buf = append(b.buf, t)
	if len(b.buf) >= b.window() || (b.flushEvery > 0 && time.Since(b.firstAt) >= b.flushEvery) {
		return b.flush()
	}
	return nil
}

// flush pushes the buffered tasks, if any, feeding the adaptive sizer with
// the round trip's cost.
func (b *batcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	tasks := b.buf
	b.buf = b.buf[:0]
	if b.sizer == nil {
		return b.tr.Push(tasks...)
	}
	start := time.Now()
	err := b.tr.Push(tasks...)
	b.sizer.Observe(time.Since(start), len(tasks))
	return err
}

// ackBatch buffers one worker's acknowledgements so a pulled batch is
// released in one amortized transport operation (a single pipelined
// XACK + decrement on Redis). It is single-goroutine, like the batcher.
//
// Deferring an ack only ever keeps the pending count high, never low, so
// the termination invariant is untouched; what matters is that the batch is
// flushed — after the emit batch, so children land first — before the
// worker's prefetch buffer refills, before it parks idle, and before it
// exits, all of which the worker loop owns.
type ackBatch struct {
	tr  Transport
	w   int
	buf []Env
}

// add buffers one processed delivery for the next flush.
func (a *ackBatch) add(env Env) { a.buf = append(a.buf, env) }

// flush releases the buffered deliveries, if any.
func (a *ackBatch) flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	envs := a.buf
	a.buf = a.buf[:0]
	return a.tr.Ack(a.w, envs...)
}

// router turns PE emissions into transport tasks: for every out-edge
// matching the emitted port it resolves the destination — a pinned instance
// chosen by the edge grouping, or the shared pool — and counts workflow
// outputs. It is the one copy of the routing logic formerly duplicated in
// every mapping.
type router struct {
	g       *graph.Graph
	plan    Plan
	outputs *atomic.Int64
	out     func(Task) error
	seq     map[*graph.Edge]uint64

	// Exactly-once fencing state: with fencing on, every emitted task is
	// stamped with a provenance derived from the task being executed (cur)
	// and the emitting edge, plus a per-(execution, edge) sequence. gen
	// versions the current execution so the per-edge counters of each emit
	// closure reset lazily at the first emission of a new task.
	fencing bool
	cur     Task
	gen     uint64
}

func newRouter(g *graph.Graph, plan Plan, outputs *atomic.Int64, out func(Task) error, fencing bool) *router {
	return &router{g: g, plan: plan, outputs: outputs, out: out, seq: map[*graph.Edge]uint64{}, fencing: fencing}
}

// begin marks the start of one task execution: subsequent emissions derive
// their fencing identity from this task. A replayed execution of the same
// task therefore re-stamps identical children, wherever it runs.
func (r *router) begin(t Task) {
	if !r.fencing {
		return
	}
	r.cur = t
	r.gen++
}

// emitFor builds the emit closure for one sending node. The closure is
// single-goroutine (each worker owns its router).
func (r *router) emitFor(node string) func(port string, value any) error {
	edges := r.g.OutEdges(node)
	// Per-closure fencing state: a stable salt per out-edge and one child
	// sequence per out-edge, reset when the router moves to the next task
	// execution.
	var childSeq, salts []uint64
	var seqGen uint64
	if r.fencing {
		childSeq = make([]uint64, len(edges))
		salts = make([]uint64, len(edges))
		for i, e := range edges {
			salts[i] = edgeSalt(e.From, e.FromPort, e.To, e.ToPort)
		}
	}
	stamp := func(t Task, edgeIdx int) Task {
		if !r.fencing {
			return t
		}
		if seqGen != r.gen {
			seqGen = r.gen
			for i := range childSeq {
				childSeq[i] = 0
			}
		}
		t.Src = childSrc(r.cur.Src, r.cur.Seq, salts[edgeIdx])
		t.Seq = childSeq[edgeIdx]
		childSeq[edgeIdx]++
		return t
	}
	return func(port string, value any) error {
		for ei, e := range edges {
			if e.FromPort != port {
				continue
			}
			if len(r.g.OutEdges(e.To)) == 0 {
				// Delivery into a terminal PE counts as a workflow output.
				r.outputs.Add(1)
			}
			nInst := r.plan.Instances[e.To]
			if nInst == 0 {
				// Pooled destination: any worker may process the task.
				if err := r.out(stamp(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: -1}, ei)); err != nil {
					return err
				}
				continue
			}
			idx := e.Grouping.RouteInstance(value, r.seq[e], nInst)
			r.seq[e]++
			if idx < 0 { // one-to-all broadcast
				for i := 0; i < nInst; i++ {
					if err := r.out(stamp(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: i}, ei)); err != nil {
						return err
					}
				}
				continue
			}
			if err := r.out(stamp(Task{PE: e.To, Port: e.ToPort, Value: value, Instance: idx}, ei)); err != nil {
				return err
			}
		}
		return nil
	}
}
