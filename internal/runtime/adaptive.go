package runtime

import "time"

// Bounds and amortization budget of the adaptive batch sizer.
const (
	autoBatchMin = 1
	// autoBatchMax is a backstop bound on the window. The two-term cost
	// model normally stops growth at the amortization knee well before it;
	// the cap only matters while the model is still warming up or when the
	// observed costs are so large that even huge windows would amortize.
	autoBatchMax = 128
	// autoBatchBudget is the per-task share of a transport operation's
	// *fixed* cost the sizer is willing to pay: the window grows while
	// fixed-cost-per-task (F / window) exceeds the budget. 50ns lands the
	// in-process queue (≈2µs fixed per op) near a 64-task window and drives
	// the Redis transport (≈100µs fixed per round trip) to the cap.
	autoBatchBudget = 50 * time.Nanosecond
	// autoBatchAlpha is the EWMA smoothing factor of the cost moments.
	autoBatchAlpha = 0.25
)

// BatchSizer adaptively sizes one worker's batch window (emit or pull) from
// the transport's observed operation cost, the runtime's implementation of
// Options.EmitBatch/PullBatch = mapping.AutoBatch.
//
// It fits the two-term cost model the single-EWMA sizer approximated:
//
//	cost(n) ≈ fixed + n · marginal
//
// via an online least-squares regression over exponentially-weighted moments
// of (n, cost) observations. Only the fixed term is amortizable — the
// marginal per-task cost (decode, PEL bookkeeping, per-element lock work) is
// paid once per task at any window size — so the rules are:
//
//   - grow (double, up to the backstop cap) while the window comes back full
//     and the estimated fixed cost still exceeds budget × window: growth
//     stops exactly at the amortization knee, instead of drifting to the cap
//     on transports whose cost is linear in the batch size;
//   - shrink (halve, down to 1) when an operation moves at most a quarter of
//     the window — sparse traffic gets small windows and low latency.
//
// Operations that moved nothing (pull timeouts) still cost a full round
// trip, so they are not ignored: they drive the shrink rule — bursty
// traffic with idle gaps between bursts returns to small windows — but they
// are kept out of the cost moments, whose durations are dominated by the
// blocking wait rather than by transport cost. The sizer is owned by a
// single worker goroutine and needs no locking.
type BatchSizer struct {
	// OnResize, when set, is called with (old, new) whenever the window
	// changes — the diagnosis journal's sizer-resize feed. Resizes are
	// log-bounded (doubling/halving between 1 and the cap), so the callback
	// is cold. Set it before the first Observe; the sizer is single-owner.
	OnResize func(oldSize, newSize int)

	size int
	// Exponentially-weighted moments of the (tasks, duration) stream, in
	// tasks and nanoseconds: E[n], E[d], E[n·d], E[n²].
	mN, mD, mND, mN2 float64
	warm             bool
	// Last identifiable fit of d ≈ fixed + n·marginal. The split is only
	// estimable while n varies; once the window stabilizes the moments
	// collapse onto a single (n, d) point, so the fit is frozen here
	// instead of being recomputed — recomputing would re-attribute the
	// whole (linear) cost to the fixed term and resume growing past the
	// knee. Window changes re-introduce variance and unfreeze it.
	fixed, marginal float64
	fitted          bool
}

// NewBatchSizer starts a sizer at the minimum window.
func NewBatchSizer() *BatchSizer {
	return &BatchSizer{size: autoBatchMin}
}

// Next is the window to request for the next operation.
func (s *BatchSizer) Next() int { return s.size }

// FixedCost is the model's current estimate of an operation's amortizable
// fixed cost. Before any observation it is zero.
func (s *BatchSizer) FixedCost() time.Duration { return time.Duration(s.fixed) }

// MarginalCost is the model's current estimate of the per-task cost.
func (s *BatchSizer) MarginalCost() time.Duration { return time.Duration(s.marginal) }

// refit updates the least-squares fit of d ≈ fixed + n·marginal from the
// current moments. While the batch size still varies, the slope is
// identifiable and both terms are re-estimated; at a stable window the
// variance degenerates and the last fit is kept (see the field comment).
// Before any fit exists, the whole cost is attributed to the fixed term —
// the conservative choice, matching the previous single-EWMA behaviour
// until window changes add variance.
func (s *BatchSizer) refit() {
	variance := s.mN2 - s.mN*s.mN
	if variance > 1e-6 {
		m := (s.mND - s.mN*s.mD) / variance
		if m < 0 {
			m = 0
		}
		s.marginal = m
		s.fitted = true
	} else if !s.fitted {
		s.marginal = 0
	} else {
		return
	}
	s.fixed = s.mD - s.marginal*s.mN
	if s.fixed < 0 {
		s.fixed = 0
	}
}

// Observe feeds one transport operation that moved n tasks in d. Zero-task
// operations (timeouts) contribute no cost sample but count as underfull
// deliveries for the shrink rule.
func (s *BatchSizer) Observe(d time.Duration, n int) {
	old := s.size
	if n <= 0 {
		s.size = max(s.size/2, autoBatchMin)
		s.notifyResize(old)
		return
	}
	fn, fd := float64(n), float64(d)
	if !s.warm {
		s.mN, s.mD, s.mND, s.mN2 = fn, fd, fn*fd, fn*fn
		s.warm = true
	} else {
		s.mN += autoBatchAlpha * (fn - s.mN)
		s.mD += autoBatchAlpha * (fd - s.mD)
		s.mND += autoBatchAlpha * (fn*fd - s.mND)
		s.mN2 += autoBatchAlpha * (fn*fn - s.mN2)
	}
	s.refit()
	switch {
	case n >= s.size && s.fixed > float64(s.size)*float64(autoBatchBudget):
		s.size = min(s.size*2, autoBatchMax)
	case n <= s.size/4:
		s.size = max(s.size/2, autoBatchMin)
	}
	s.notifyResize(old)
}

func (s *BatchSizer) notifyResize(old int) {
	if s.OnResize != nil && s.size != old {
		s.OnResize(old, s.size)
	}
}
