package runtime

import "time"

// Bounds and amortization budget of the adaptive batch sizer.
const (
	autoBatchMin = 1
	// autoBatchMax bounds the window: past it the fixed round-trip cost is
	// amortized into noise on every transport here while per-task costs
	// (decode, PEL bookkeeping) keep growing linearly, so larger windows
	// only add latency and memory.
	autoBatchMax = 128
	// autoBatchBudget is the per-task share of one transport round trip the
	// sizer is willing to pay: the window grows while an average round trip
	// costs more than budget × window, i.e. until the fixed per-op cost is
	// amortized below the budget. 50ns lands the in-process queue (≈2µs per
	// op) near a 64-task window and drives the Redis transport (≈100µs per
	// round trip) to the window cap.
	autoBatchBudget = 50 * time.Nanosecond
	// autoBatchAlpha is the EWMA smoothing factor of the round-trip cost.
	autoBatchAlpha = 0.25
)

// BatchSizer adaptively sizes one worker's batch window (emit or pull) from
// the transport's observed per-operation round-trip cost, the runtime's
// implementation of Options.EmitBatch/PullBatch = mapping.AutoBatch. It
// keeps an EWMA of the round-trip duration and applies two rules after each
// operation:
//
//   - grow (double, up to the cap) while the window comes back full and the
//     amortized per-task share of a round trip is still above the budget —
//     full windows mean more work is waiting, so a larger window converts
//     round trips into throughput;
//   - shrink (halve, down to 1) when an operation moves at most a quarter of
//     the window — sparse traffic gets small windows and low latency, and a
//     transport whose round trips are cheap never grows far.
//
// On transports whose operation cost is linear in the batch size (in-process
// channels) the EWMA grows with the window and the sizer drifts toward the
// cap; that is benign — the amortized per-task cost is flat there, and the
// shrink rule still pulls the window down when traffic thins. The sizer is
// owned by a single worker goroutine and needs no locking.
type BatchSizer struct {
	size int
	ewma float64 // smoothed round-trip duration, ns
}

// NewBatchSizer starts a sizer at the minimum window.
func NewBatchSizer() *BatchSizer {
	return &BatchSizer{size: autoBatchMin}
}

// Next is the window to request for the next operation.
func (s *BatchSizer) Next() int { return s.size }

// Observe feeds one transport operation that moved n tasks in d. Operations
// that moved nothing (timeouts) carry no cost signal and are ignored.
func (s *BatchSizer) Observe(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	if s.ewma == 0 {
		s.ewma = float64(d)
	} else {
		s.ewma += autoBatchAlpha * (float64(d) - s.ewma)
	}
	switch {
	case n >= s.size && s.ewma > float64(s.size)*float64(autoBatchBudget):
		s.size = min(s.size*2, autoBatchMax)
	case n <= s.size/4:
		s.size = max(s.size/2, autoBatchMin)
	}
}
