// Package runtime is the shared execution core every parallel mapping runs
// on. It owns the one worker loop (task pull → PE process → batched emit →
// finalize → acknowledge) and the one termination protocol (a coordinator
// that drains the transport, flushes Final hooks in topological order, then
// poisons the workers), while the mappings shrink to planners: they decide
// how many workers exist, which are pinned to PE instances and which form a
// dynamic pool, and which Transport carries the tasks.
//
// Four transports implement the same contract:
//
//	ChanTransport   in-process channels, one per pinned instance (multi)
//	QueueTransport  the shared in-process global queue (dyn_multi)
//	RedisTransport  a Redis stream consumer group for the pool plus private
//	                lists for pinned instances (dyn_redis, hybrid_redis)
//	RankTransport   MPI-style per-rank mailboxes (mpi)
//
// Because termination and finalization are decided by one coordinator
// watching the transport's pending-task count, properties that previously
// had to be rebuilt per mapping — managed-state Final-once, no worker exits
// while tasks are in flight — hold uniformly. In particular the mpi mapping
// supports managed keyed state through exactly the same barrier as everyone
// else.
package runtime

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/graph"
)

// Task is one schedulable unit on a transport. It is the codec task type, so
// every transport — in-process or Redis — ships the same shape.
type Task = codec.Task

// Env is one delivered task plus its transport acknowledgement handle.
type Env struct {
	Task
	// AckID identifies the delivery for transports with explicit
	// acknowledgement (the Redis stream entry ID); empty elsewhere.
	AckID string
	// Shard is the data-plane shard the delivery was pulled from, for
	// transports that partition their queues across servers. Entry IDs are
	// only unique per shard, so (Shard, AckID) is the delivery identity;
	// single-server and in-process transports leave it 0.
	Shard int
}

// Transport moves tasks between workers. Implementations must be safe for
// concurrent use by all workers plus the coordinator.
//
// The pending-count contract is what the termination protocol rests on:
// Push counts every non-poison task as pending *before* it becomes visible
// to any consumer, and Ack releases it only after the worker has pushed the
// task's children. Pending() == 0 therefore implies no queued or in-flight
// work anywhere. Pulled-but-unacknowledged tasks — including everything
// sitting in a worker's prefetch buffer — therefore still count as pending,
// which is what keeps the coordinator's drain honest under batched consumes.
type Transport interface {
	// Push enqueues tasks for their destinations: Instance >= 0 addresses a
	// pinned (PE, instance) worker, Instance < 0 the shared pool. Batched
	// callers pass several tasks at once so implementations can amortize
	// synchronization (one lock hold, one pipelined round trip).
	Push(tasks ...Task) error
	// PullBatch blocks up to timeout for the first task addressed to worker
	// w, then returns it together with whatever is already queued, up to max
	// tasks, without further waiting (nil on timeout). max is advisory: a
	// transport whose wire format packs several tasks into one frame may
	// return more. Where the dequeue is reversible (in-process channels,
	// queue, rank mailboxes) a batch never extends past a poison pill — the
	// pill ends its batch — so one worker cannot swallow siblings' pills;
	// the Redis stream, whose deliveries are irreversible, may return
	// several pills at once and the worker loop re-routes the surplus.
	PullBatch(w, max int, timeout time.Duration) ([]Env, error)
	// Ack releases pulled tasks after they are fully processed (children
	// already pushed). A multi-task batch is released in one amortized
	// operation: a single pipelined round trip on Redis, one atomic
	// adjustment in process.
	Ack(w int, envs ...Env) error
	// Pending reports the queued + in-flight task count.
	Pending() (int64, error)
	// Done shuts the transport down: blocked Push/Pull calls unblock and
	// subsequent operations may fail. It must be idempotent.
	Done() error
}

// DepthReporter is an optional Transport refinement exposing per-queue depth
// gauges for telemetry: channel occupancies, stream entry counts, private
// list lengths. Keys name the queue ("shared", "stream", "box:<pe>:<i>", …);
// implementations best-effort skip queues they cannot sample.
type DepthReporter interface {
	QueueDepths() map[string]int64
}

// FencedPusher is an optional Transport extension for transports that can
// gate a push on a state-fence ledger field living on the same server: the
// whole batch and the gate record land in one server-side transaction
// (SINKAPPEND on Redis), or — when the gate was already recorded by a
// duplicate execution — nothing lands and applied is false. The worker loop
// uses it to make a fenced Final's emissions atomic with its
// exactly-once decision; hashKey/field come from the state layer's
// TaskGateRef, which only yields an address when transport and state share
// the server.
// entryCap bounds how many pool tasks pack into one queue entry so the
// atomic batch keeps the normal emit path's delivery granularity — a
// fenced Final's whole output in one entry would serialize its downstream
// fan-out on a single consumer. <=0 means unbounded.
type FencedPusher interface {
	PushFenced(hashKey, field string, entryCap int, tasks ...Task) (applied bool, err error)
}

// LeaseExtender is an optional Transport extension for transports whose
// recovery mechanism reclaims deliveries by idle time. The worker loop calls
// Extend between tasks of a pulled batch to signal it is still making
// progress on its unacked deliveries; implementations refresh the idle clock
// of every entry the worker still owns so recovery fires on genuinely
// stalled workers, not on healthy ones working through a packed frame whose
// total processing time exceeds the idle threshold. Extend is best-effort
// and must be cheap when called every task (implementations self-throttle).
type LeaseExtender interface {
	Extend(w int) error
}

// WorkerSpec describes one worker slot of a plan. The zero value is a pool
// worker; a non-empty PE pins the worker to that single (PE, instance).
type WorkerSpec struct {
	PE       string
	Instance int
}

// Pinned reports whether the worker runs a single dedicated PE instance.
func (s WorkerSpec) Pinned() bool { return s.PE != "" }

// Plan is a mapping's placement decision: the worker slots and the per-node
// instance discipline the router follows.
type Plan struct {
	// Workers lists the worker slots. Pool workers must precede pinned ones
	// so pool indices align with autoscale controller slots.
	Workers []WorkerSpec
	// Pool is the number of pool workers (the prefix of Workers).
	Pool int
	// Instances maps each node to its pinned instance count; 0 means the
	// node runs on the shared pool (any worker, Instance -1 routing).
	Instances map[string]int

	// workerOf resolves a pinned (PE, instance) to its worker index.
	workerOf map[string][]int
}

// NewPlan assembles a plan from worker specs (pool workers first) and the
// per-node instance map, wiring the pinned-worker index. It panics when a
// pool worker follows a pinned one: pool indices must be 0..Pool-1 to align
// with autoscale controller slots and Redis consumer names, so a violating
// plan is a planner programming error caught at composition time.
func NewPlan(workers []WorkerSpec, instances map[string]int) Plan {
	p := Plan{Workers: workers, Instances: instances, workerOf: map[string][]int{}}
	for w, spec := range p.Workers {
		if !spec.Pinned() {
			if w != p.Pool {
				panic(fmt.Sprintf("runtime: plan has pool worker at slot %d after pinned workers; pool workers must come first", w))
			}
			p.Pool++
			continue
		}
		ranks := p.workerOf[spec.PE]
		for len(ranks) <= spec.Instance {
			ranks = append(ranks, -1)
		}
		ranks[spec.Instance] = w
		p.workerOf[spec.PE] = ranks
	}
	return p
}

// WorkerFor resolves the worker index of a pinned (PE, instance).
func (p Plan) WorkerFor(pe string, instance int) (int, bool) {
	ranks := p.workerOf[pe]
	if instance < 0 || instance >= len(ranks) || ranks[instance] < 0 {
		return 0, false
	}
	return ranks[instance], true
}

// PinnedPlan places every PE instance of the allocation on its own dedicated
// worker — the static disciplines (multi, mpi).
func PinnedPlan(g *graph.Graph, alloc map[string]int) Plan {
	var workers []WorkerSpec
	instances := make(map[string]int, len(alloc))
	for _, n := range g.Nodes() {
		count := alloc[n.Name]
		instances[n.Name] = count
		for i := 0; i < count; i++ {
			workers = append(workers, WorkerSpec{PE: n.Name, Instance: i})
		}
	}
	return NewPlan(workers, instances)
}

// PoolPlan places every node on a shared pool of n workers — the dynamic
// disciplines (dyn_multi, dyn_redis and their auto variants).
func PoolPlan(g *graph.Graph, n int) Plan {
	instances := make(map[string]int, len(g.Nodes()))
	for _, node := range g.Nodes() {
		instances[node.Name] = 0
	}
	return NewPlan(make([]WorkerSpec, n), instances)
}

// NodeHash gives a stable per-node seed component. It is the single home of
// the FNV mix formerly copy-pasted across the mapping packages.
func NodeHash(name string) uint32 { return graph.Hash32(name) }

// fenceMix folds 64-bit words into an FNV-1a-style provenance hash for the
// exactly-once fence. The result is never zero (zero means "unstamped").
func fenceMix(parts ...uint64) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Salts separating the three provenance families: seeded generate tasks,
// coordinator-issued finalize tasks, and emitted children (per out-edge).
const (
	fenceSeedSalt  = 0x5eed
	fenceFinalSalt = 0xf17a
	fenceChildSalt = 0xc41d
)

// seedSrc is the provenance of a source node's seeded generate task. It
// depends only on (node, instance), so a replayed generate task keeps its
// identity and its re-emitted children keep theirs.
func seedSrc(node string, instance int) uint64 {
	return fenceMix(uint64(NodeHash(node)), fenceSeedSalt, uint64(instance)+1)
}

// finalSrc is the provenance of a coordinator-issued Finalize task.
func finalSrc(node string, instance int) uint64 {
	return fenceMix(uint64(NodeHash(node)), fenceFinalSalt, uint64(instance)+1)
}

// initSrc is the provenance of a worker's Init-hook emissions. It is
// per-worker — Init runs once per worker copy by design, so two workers'
// Init emissions must never be fenced against each other.
func initSrc(worker int) uint64 {
	return fenceMix(uint64(worker)+1, fenceSeedSalt, fenceChildSalt)
}

// edgeSalt is the stable identity of one out-edge in child provenances. It
// hashes the endpoints and ports rather than a closure-local index so that
// emissions from different nodes sharing one parent identity (the per-worker
// Init provenance) can never collide.
func edgeSalt(from, fromPort, to, toPort string) uint64 {
	return fenceMix(uint64(NodeHash(from)), uint64(NodeHash(fromPort)),
		uint64(NodeHash(to)), uint64(NodeHash(toPort)), fenceChildSalt)
}

// childSrc derives an emitted task's provenance from its parent's identity
// and the emitting edge — deterministic across re-executions of the parent
// on any worker, which is what makes duplicate children fungible to the
// managed-state fence.
func childSrc(parentSrc, parentSeq, edgeSalt uint64) uint64 {
	return fenceMix(parentSrc, parentSeq, edgeSalt)
}

// InstanceSeed mixes a PE name and instance index into a seed component, so
// pinned instances of one PE draw distinct deterministic random streams.
func InstanceSeed(name string, idx int) uint32 {
	const prime = 16777619
	h := graph.Hash32(name)
	h ^= uint32(idx)
	h *= prime
	return h
}

// ValidateDynamic rejects workflow features plain pool scheduling cannot
// honor, mirroring the paper's limitation statement ("dynamic scheduling
// exclusively manages stateless PEs and lacks support for grouping") — with
// one extension beyond the paper: nodes whose state is *managed* (package
// state) are accepted, because their state lives in a shared atomic store
// rather than in worker-local PE fields, so any worker may process any task
// and the coordinator flushes each managed node's Final exactly once.
func ValidateDynamic(g *graph.Graph, technique string) error {
	if g.HasUnmanagedStateful() {
		return fmt.Errorf("%s: workflow %s has stateful PEs with unmanaged field state; dynamic scheduling supports only stateless or managed-state PEs (declare SetKeyedState/SetSingletonState, or use hybrid_redis or multi)", technique, g.Name)
	}
	for _, e := range g.Edges() {
		if e.Grouping.Kind == graph.Shuffle {
			continue
		}
		dst := g.Node(e.To)
		if e.Grouping.Kind == graph.OneToAll {
			// Broadcast needs per-instance delivery, which a dynamic pool
			// cannot express regardless of how the state is managed.
			return fmt.Errorf("%s: edge %s→%s uses one-to-all grouping; dynamic scheduling has no instance identity to broadcast to (use hybrid_redis or multi)", technique, e.From, e.To)
		}
		if dst.HasManagedState() {
			// Routing affinity is unnecessary: keyed/global semantics come
			// from the shared store, not from which worker runs the task.
			continue
		}
		return fmt.Errorf("%s: edge %s→%s uses %s grouping into a PE without managed state; dynamic scheduling supports only the default shuffle grouping (use hybrid_redis or multi)", technique, e.From, e.To, e.Grouping.Kind)
	}
	for _, n := range g.Nodes() {
		if _, ok := n.Prototype.(core.Finalizer); ok && !n.HasManagedState() {
			return fmt.Errorf("%s: PE %s implements Final without managed state; per-instance finalization requires a stateful mapping (hybrid_redis or multi)", technique, n.Name)
		}
	}
	return nil
}
