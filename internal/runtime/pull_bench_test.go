package runtime_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
	"repro/internal/runtime"
)

// BenchmarkPullBatching is the consume-side mirror of BenchmarkEmitBatching:
// it measures draining a pre-filled transport through PullBatch + batched
// Ack at fixed windows and under the adaptive sizer. On the Redis transport
// a window becomes one XREADGROUP COUNT n round trip plus one pipelined
// XACK+decrement instead of 2n round trips; on the in-process queue it pays
// one lock hold and one modeled synchronization cost per window.
//
// The reported tasks/op metric is fixed (256 consumed per op); compare
// ns/op across sub-benchmarks: batch=64 must beat unbatched ≥2× on redis
// and ≥5× on queue, and auto must land within 20% of the best fixed window.
func BenchmarkPullBatching(b *testing.B) {
	const tasks = 256
	// 0 stands for the adaptive sizer.
	windows := []int{1, 8, 64, 0}
	name := func(w int) string {
		switch w {
		case 0:
			return "auto"
		case 1:
			return "unbatched"
		default:
			return fmt.Sprintf("batch=%d", w)
		}
	}

	poolPlan := runtime.NewPlan(make([]runtime.WorkerSpec, 1), map[string]int{"pe": 0})
	task := runtime.Task{PE: "pe", Port: "in", Value: 7, Instance: -1}

	// fill pushes the workload in large chunks (fill cost is excluded from
	// the measured region by the callers).
	fill := func(b *testing.B, tr runtime.Transport) {
		b.Helper()
		buf := make([]runtime.Task, 64)
		for i := range buf {
			buf[i] = task
		}
		for pushed := 0; pushed < tasks; pushed += len(buf) {
			if err := tr.Push(buf...); err != nil {
				b.Fatal(err)
			}
		}
	}

	// consume drains the workload through the batched pull + ack path. The
	// sizer, when present, persists across iterations like a worker's does
	// across pulls.
	consume := func(b *testing.B, tr runtime.Transport, window int, sizer *runtime.BatchSizer) {
		b.Helper()
		remaining := tasks
		for remaining > 0 {
			max := window
			if sizer != nil {
				max = sizer.Next()
			}
			start := time.Now()
			envs, err := tr.PullBatch(0, max, time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if len(envs) == 0 {
				b.Fatal("transport ran dry mid-workload")
			}
			if sizer != nil {
				sizer.Observe(time.Since(start), len(envs))
			}
			if err := tr.Ack(0, envs...); err != nil {
				b.Fatal(err)
			}
			remaining -= len(envs)
		}
	}

	b.Run("redis", func(b *testing.B) {
		srv, err := miniredis.StartTestServer()
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cl := redisclient.Dial(srv.Addr())
		defer cl.Close()
		for _, window := range windows {
			window := window
			b.Run(name(window), func(b *testing.B) {
				keys := runtime.NewRunKeys("pullbench", int64(window))
				tr, err := runtime.NewRedisTransport(redisclient.Single(cl), keys, poolPlan, false)
				if err != nil {
					b.Fatal(err)
				}
				var sizer *runtime.BatchSizer
				if window == 0 {
					sizer = runtime.NewBatchSizer()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					// Reset the stream so the server's memory stays bounded,
					// then refill outside the measured region.
					if _, err := cl.Del(keys.Queue, keys.PendingKey); err != nil {
						b.Fatal(err)
					}
					if err := cl.XGroupCreate(keys.Queue, keys.Group, "0"); err != nil {
						b.Fatal(err)
					}
					fill(b, tr)
					b.StartTimer()
					consume(b, tr, window, sizer)
				}
				b.ReportMetric(float64(tasks), "tasks/op")
			})
		}
	})

	b.Run("queue", func(b *testing.B) {
		for _, window := range windows {
			window := window
			b.Run(name(window), func(b *testing.B) {
				// The modeled per-op synchronization cost is what the
				// multi-dequeue amortizes on the in-process path.
				q := runtime.NewQueue(2 * time.Microsecond)
				tr := runtime.NewQueueTransport(q)
				var sizer *runtime.BatchSizer
				if window == 0 {
					sizer = runtime.NewBatchSizer()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fill(b, tr)
					b.StartTimer()
					consume(b, tr, window, sizer)
				}
				b.ReportMetric(float64(tasks), "tasks/op")
			})
		}
	})
}
