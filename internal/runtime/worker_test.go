package runtime_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	_ "repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mapping"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
)

// TestPullBatchingPreservesDelivery runs a fan-out pipeline under every
// combination of pull window (unbatched, fixed, adaptive) on an in-process
// mapping and checks that exactly the expected values arrive — prefetching
// and pipelined acks must be invisible to workflow semantics, including the
// coordinator's Final flush.
func TestPullBatchingPreservesDelivery(t *testing.T) {
	const fanOut = 40
	for _, pull := range []int{1, 8, mapping.AutoBatch} {
		t.Run(fmt.Sprintf("pull=%d", pull), func(t *testing.T) {
			var mu sync.Mutex
			sum := 0
			got := 0
			g := graph.New("pullbatch")
			g.Add(func() core.PE {
				return core.NewSource("gen", func(ctx *core.Context) error {
					for i := 1; i <= fanOut; i++ {
						if err := ctx.EmitDefault(i); err != nil {
							return err
						}
					}
					return nil
				})
			})
			g.Add(func() core.PE {
				return core.NewSink("sink", func(ctx *core.Context, v any) error {
					mu.Lock()
					sum += v.(int)
					got++
					mu.Unlock()
					return nil
				})
			})
			g.Pipe("gen", "sink")

			m, err := mapping.Get("dyn_multi")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Execute(g, mapping.Options{
				Processes: 4,
				Platform:  platform.Platform{Name: "test", Cores: 4},
				Seed:      1,
				EmitBatch: mapping.AutoBatch,
				PullBatch: pull,
			}); err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if want := fanOut * (fanOut + 1) / 2; got != fanOut || sum != want {
				t.Fatalf("sink saw %d values summing %d, want %d summing %d", got, sum, fanOut, want)
			}
		})
	}
}

// TestExecuteRejectsInvalidBatchOptions pins the validation seam: a typo'd
// negative batch size must fail loudly, not silently disable batching.
func TestExecuteRejectsInvalidBatchOptions(t *testing.T) {
	g := graph.New("badbatch")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error { return nil })
	})
	m, err := mapping.Get("dyn_multi")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []mapping.Options{{Processes: 1, EmitBatch: -7}, {Processes: 1, PullBatch: -2}} {
		if _, err := m.Execute(g, opts); err == nil {
			t.Fatalf("options %+v must be rejected", opts)
		}
	}
}

// initEmitPE emits values from its Init hook and nothing else.
type initEmitPE struct {
	core.Base
	n int
}

func (p *initEmitPE) Init(ctx *core.Context) error {
	for i := 0; i < p.n; i++ {
		if err := ctx.EmitDefault(i); err != nil {
			return err
		}
	}
	return nil
}

func (p *initEmitPE) Process(ctx *core.Context, port string, v any) error { return nil }

// TestInitEmissionsSurviveBatching pins the batcher contract for Init
// hooks: emissions buffered during Init must be flushed before the worker
// starts pulling, or a small batch would be invisible to the pending count
// and silently dropped at termination.
func TestInitEmissionsSurviveBatching(t *testing.T) {
	for _, name := range []string{"multi", "dyn_multi"} {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			got := 0
			g := graph.New("initemit")
			g.Add(func() core.PE {
				return core.NewSource("gen", func(ctx *core.Context) error { return nil })
			})
			g.Add(func() core.PE {
				return &initEmitPE{Base: core.NewBase("mid", core.In(), core.Out()), n: 3}
			})
			g.Add(func() core.PE {
				return core.NewSink("sink", func(ctx *core.Context, v any) error {
					mu.Lock()
					got++
					mu.Unlock()
					return nil
				})
			})
			g.Pipe("gen", "mid")
			g.Pipe("mid", "sink")

			m, err := mapping.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			workers := 3
			if _, err := m.Execute(g, mapping.Options{
				Processes: workers,
				Platform:  platform.Platform{Name: "test", Cores: 4},
				Seed:      1,
				EmitBatch: 64, // far larger than the Init emissions
			}); err != nil {
				t.Fatal(err)
			}
			// multi runs one mid instance; dyn_multi runs Init once per
			// worker copy. Either way every Init emission must arrive.
			want := 3
			if name == "dyn_multi" {
				want = 3 * workers
			}
			mu.Lock()
			defer mu.Unlock()
			if got != want {
				t.Fatalf("sink saw %d init emissions, want %d (batch dropped)", got, want)
			}
		})
	}
}
