package runtime_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	_ "repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/mapping"
	_ "repro/internal/multiproc"
	"repro/internal/platform"
)

// initEmitPE emits values from its Init hook and nothing else.
type initEmitPE struct {
	core.Base
	n int
}

func (p *initEmitPE) Init(ctx *core.Context) error {
	for i := 0; i < p.n; i++ {
		if err := ctx.EmitDefault(i); err != nil {
			return err
		}
	}
	return nil
}

func (p *initEmitPE) Process(ctx *core.Context, port string, v any) error { return nil }

// TestInitEmissionsSurviveBatching pins the batcher contract for Init
// hooks: emissions buffered during Init must be flushed before the worker
// starts pulling, or a small batch would be invisible to the pending count
// and silently dropped at termination.
func TestInitEmissionsSurviveBatching(t *testing.T) {
	for _, name := range []string{"multi", "dyn_multi"} {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			got := 0
			g := graph.New("initemit")
			g.Add(func() core.PE {
				return core.NewSource("gen", func(ctx *core.Context) error { return nil })
			})
			g.Add(func() core.PE {
				return &initEmitPE{Base: core.NewBase("mid", core.In(), core.Out()), n: 3}
			})
			g.Add(func() core.PE {
				return core.NewSink("sink", func(ctx *core.Context, v any) error {
					mu.Lock()
					got++
					mu.Unlock()
					return nil
				})
			})
			g.Pipe("gen", "mid")
			g.Pipe("mid", "sink")

			m, err := mapping.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			workers := 3
			if _, err := m.Execute(g, mapping.Options{
				Processes: workers,
				Platform:  platform.Platform{Name: "test", Cores: 4},
				Seed:      1,
				EmitBatch: 64, // far larger than the Init emissions
			}); err != nil {
				t.Fatal(err)
			}
			// multi runs one mid instance; dyn_multi runs Init once per
			// worker copy. Either way every Init emission must arrive.
			want := 3
			if name == "dyn_multi" {
				want = 3 * workers
			}
			mu.Lock()
			defer mu.Unlock()
			if got != want {
				t.Fatalf("sink saw %d init emissions, want %d (batch dropped)", got, want)
			}
		})
	}
}
