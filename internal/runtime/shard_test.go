package runtime_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/miniredis"
	"repro/internal/redisclient"
	"repro/internal/runtime"
)

// shardedCluster starts n embedded servers and a cluster over them.
func shardedCluster(t *testing.T, n int) *redisclient.Cluster {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv, err := miniredis.StartTestServer()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	c, err := redisclient.NewCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestShardedPoolSpreadsAndDrains pins the multi-shard pool path: unfenced
// entries round-robin across the shard partitions, depth gauges report per
// shard, every delivery carries its shard in the (Shard, AckID) identity,
// and acking everything drains the scatter-gathered pending count to zero.
func TestShardedPoolSpreadsAndDrains(t *testing.T) {
	const shards, workers, tasks = 2, 2, 8
	cluster := shardedCluster(t, shards)
	plan := runtime.NewPlan(make([]runtime.WorkerSpec, workers), map[string]int{"pe": 0})
	tr, err := runtime.NewRedisTransport(cluster, runtime.NewRunKeys("shardpool", 1), plan, false)
	if err != nil {
		t.Fatal(err)
	}
	// One Push per task: each call packs its own entry, so the round-robin
	// spreads entries (a single batched Push is one entry on one shard).
	for i := 0; i < tasks; i++ {
		if err := tr.Push(runtime.Task{PE: "pe", Port: "in", Instance: -1, Value: i}); err != nil {
			t.Fatal(err)
		}
	}

	depths := tr.QueueDepths()
	var total int64
	for s := 0; s < shards; s++ {
		key := fmt.Sprintf("s%d:stream", s)
		n, ok := depths[key]
		if !ok || n == 0 {
			t.Fatalf("gauge %q = %d; round-robin left a shard partition empty (depths %v)", key, n, depths)
		}
		total += n
	}
	if total != tasks {
		t.Fatalf("per-shard stream depths sum to %d, want %d (%v)", total, tasks, depths)
	}
	if p, err := tr.Pending(); err != nil || p != tasks {
		t.Fatalf("pending = %d (%v), want %d", p, err, tasks)
	}

	seenShards := map[int]bool{}
	acked := 0
	for w := 0; acked < tasks; w = (w + 1) % workers {
		envs, err := tr.PullBatch(w, 4, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		for _, env := range envs {
			seenShards[env.Shard] = true
		}
		if len(envs) > 0 {
			if err := tr.Ack(w, envs...); err != nil {
				t.Fatal(err)
			}
			acked += len(envs)
		}
	}
	if len(seenShards) != shards {
		t.Fatalf("deliveries came from shards %v, want all %d shards", seenShards, shards)
	}
	if p, err := tr.Pending(); err != nil || p != 0 {
		t.Fatalf("pending after full ack = %d (%v), want 0", p, err)
	}
	_ = tr.Done()
}

// TestShardedPushFencedStaysOnGateShard pins the co-location invariant: a
// fenced batch lands entirely on the shard of its gate key, so SINKAPPEND
// stays a single-shard transaction, and replaying the same gate is a no-op.
func TestShardedPushFencedStaysOnGateShard(t *testing.T) {
	const shards = 4
	cluster := shardedCluster(t, shards)
	plan := runtime.NewPlan(make([]runtime.WorkerSpec, 1), map[string]int{"pe": 0})
	tr, err := runtime.NewRedisTransport(cluster, runtime.NewRunKeys("shardfence", 1), plan, false)
	if err != nil {
		t.Fatal(err)
	}
	gate := "shardfence:state:gate:{sessionize/3}"
	home := cluster.ShardFor(gate)

	batch := make([]runtime.Task, 5)
	for i := range batch {
		batch[i] = runtime.Task{PE: "pe", Port: "in", Instance: -1, Value: i}
	}
	applied, err := tr.PushFenced(gate, "final", 0, batch...)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("first PushFenced reported the gate as already recorded")
	}
	for s := 0; s < shards; s++ {
		n := tr.QueueDepths()[fmt.Sprintf("s%d:stream", s)]
		if s == home && n == 0 {
			t.Fatalf("gate shard %d holds no entries after PushFenced", home)
		}
		if s != home && n != 0 {
			t.Fatalf("fenced batch leaked %d entries onto shard %d (gate shard %d)", n, s, home)
		}
	}
	if p, err := tr.Pending(); err != nil || p != int64(len(batch)) {
		t.Fatalf("pending = %d (%v), want %d", p, err, len(batch))
	}

	// A replayed flush with the same gate must change nothing.
	applied, err = tr.PushFenced(gate, "final", 0, batch...)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("replayed PushFenced applied again; the gate did not fence")
	}
	if p, _ := tr.Pending(); p != int64(len(batch)) {
		t.Fatalf("pending = %d after replayed flush, want %d", p, len(batch))
	}
	_ = tr.Done()
}

// TestShardedPinnedStreamFollowsRing pins the private-partition path: a
// pinned instance's frames go to the hash-ring home of its stream key, and
// its worker finds and acks them there.
func TestShardedPinnedStreamFollowsRing(t *testing.T) {
	const shards = 4
	cluster := shardedCluster(t, shards)
	keys := runtime.NewRunKeys("shardpriv", 1)
	plan := runtime.NewPlan(
		[]runtime.WorkerSpec{{}, {PE: "sess", Instance: 0}, {PE: "sess", Instance: 1}},
		map[string]int{"sess": 2},
	)
	tr, err := runtime.NewRedisTransport(cluster, keys, plan, false)
	if err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 2; inst++ {
		if err := tr.Push(runtime.Task{PE: "sess", Port: "in", Instance: inst, Value: inst}); err != nil {
			t.Fatal(err)
		}
	}
	depths := tr.QueueDepths()
	for inst := 0; inst < 2; inst++ {
		home := cluster.ShardFor(keys.PrivKey("sess", inst))
		for s := 0; s < shards; s++ {
			n := depths[fmt.Sprintf("s%d:priv:sess:%d", s, inst)]
			if s == home && n != 1 {
				t.Fatalf("instance %d: home shard %d partition holds %d frames, want 1 (%v)", inst, home, n, depths)
			}
			if s != home && n != 0 {
				t.Fatalf("instance %d: frame leaked onto shard %d (home %d)", inst, s, home)
			}
		}
	}
	for inst := 0; inst < 2; inst++ {
		w, ok := plan.WorkerFor("sess", inst)
		if !ok {
			t.Fatalf("no worker for instance %d", inst)
		}
		envs, err := tr.PullBatch(w, 4, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(envs) != 1 || envs[0].Value != inst {
			t.Fatalf("instance %d pulled %v", inst, envs)
		}
		if want := cluster.ShardFor(keys.PrivKey("sess", inst)); envs[0].Shard != want {
			t.Fatalf("instance %d delivery tagged shard %d, want %d", inst, envs[0].Shard, want)
		}
		if err := tr.Ack(w, envs...); err != nil {
			t.Fatal(err)
		}
	}
	if p, err := tr.Pending(); err != nil || p != 0 {
		t.Fatalf("pending = %d (%v), want 0", p, err)
	}
	_ = tr.Done()
}

// TestSingleShardKeepsLegacyGaugeNames pins the N=1 refactor purity: gauge
// keys stay unprefixed so dashboards built on the single-server layout read
// unchanged.
func TestSingleShardKeepsLegacyGaugeNames(t *testing.T) {
	cluster := shardedCluster(t, 1)
	plan := runtime.NewPlan(
		[]runtime.WorkerSpec{{}, {PE: "sess", Instance: 0}},
		map[string]int{"sess": 1},
	)
	tr, err := runtime.NewRedisTransport(cluster, runtime.NewRunKeys("shardone", 1), plan, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Push(
		runtime.Task{PE: "pe", Port: "in", Instance: -1},
		runtime.Task{PE: "sess", Port: "in", Instance: 0},
	); err != nil {
		t.Fatal(err)
	}
	depths := tr.QueueDepths()
	for _, key := range []string{"stream", "priv:sess:0"} {
		if n, ok := depths[key]; !ok || n != 1 {
			t.Fatalf("gauge %q = %d (present %v) at one shard; want legacy unprefixed key with depth 1 (%v)", key, n, ok, depths)
		}
	}
	for key := range depths {
		if key[0] == 's' && key != "stream" {
			t.Fatalf("unexpected shard-prefixed gauge %q at one shard (%v)", key, depths)
		}
	}
	_ = tr.Done()
}
