package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/state"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Config is a planner's placement decision handed to Execute: the worker
// plan, the transport carrying tasks, and the run-scoped services.
type Config struct {
	// Name is the technique label used in reports, errors and process names.
	Name string
	// Plan assigns worker slots and per-node instance counts.
	Plan Plan
	// Transport moves tasks between the workers.
	Transport Transport
	// Host is the simulated platform host accruing process time.
	Host *platform.Host
	// Controller optionally gates pool workers in and out of the idle state
	// (the auto-scaling mappings). Pinned workers are never gated.
	Controller *autoscale.Controller
	// NewStateBackend supplies the default managed-state backend when the
	// graph declares managed state and Options.StateBackend is nil.
	NewStateBackend func() state.Backend
	// PinnedIdleStandby makes pinned workers deactivate (stop accruing
	// process time) while their queue is empty. The static mappings (multi,
	// mpi) enable it: their pre-runtime instances exited outright once
	// their input stream drained, so idle standby reproduces that
	// process-time accounting under coordinator-owned termination. Hybrid
	// leaves it off — its pinned stateful processes are dedicated and stay
	// hot for the whole run, the inefficiency hybrid_auto_redis attacks.
	PinnedIdleStandby bool
}

// Execute runs a workflow on the shared worker runtime: it seeds one
// generate task per source, starts one worker goroutine per plan slot, and
// runs the termination coordinator that drains the transport, flushes Final
// hooks exactly once each (topological order, draining between nodes so
// flushed values propagate), and finally poisons the workers.
func Execute(g *graph.Graph, opts mapping.Options, cfg Config) (_ metrics.Report, err error) {
	opts = opts.WithDefaults()
	if err := opts.ValidateBatching(); err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	ms, err := mapping.OpenManagedState(g, opts, cfg.NewStateBackend)
	if err != nil {
		return metrics.Report{}, err
	}
	success := false
	defer func() { ms.Finish(g, success) }()

	r := &run{g: g, opts: opts, cfg: cfg, ms: ms, fencing: ms.ExactlyOnce(), abort: make(chan struct{})}
	r.tel = opts.Telemetry
	if r.tel != nil {
		r.tracer = r.tel.Tracer()
	}
	// Tracing rides the same deterministic Src/Seq provenance the fence
	// uses, so identities are stamped when either consumer is active.
	// Stamping without fencing is harmless: fence scopes only exist when
	// fenced stores do.
	r.stamped = r.fencing || r.tracer != nil
	r.diag = opts.Diagnosis
	r.diag.Log(diagnosis.EvRunStart, -1, "", cfg.Name+"/"+g.Name, int64(len(cfg.Plan.Workers)))
	// An armed fault injector journals every fired fault as a run event, so
	// /journal?kind=fault shows exactly which faults a chaos run saw and when
	// relative to the lifecycle events around them.
	if inj := faultinject.Active(); inj != nil && r.diag != nil {
		diag := r.diag
		inj.SetJournal(func(probe, detail string) {
			diag.Log(diagnosis.EvFault, -1, "", detail, 1)
		})
	}
	// Post-mortem observability must exist even when the run errors out: the
	// final flight (which also seeds the gauge sources' last-good cache while
	// the transport is still open) and the run_end journal entry are deferred,
	// so early-return failures — a seed push on a dead transport, a worker
	// error — still leave a snapshot and a terminal journal event behind.
	defer func() {
		if r.tel != nil {
			r.tel.RecordFlight()
		}
		if r.diag != nil {
			detail := "ok"
			if err != nil {
				detail = "error: " + err.Error()
			}
			r.diag.Log(diagnosis.EvRunEnd, -1, "", detail, r.tasks.Load())
		}
	}()
	if r.tel != nil {
		tr := cfg.Transport
		r.tel.RegisterGauges("transport", func() (map[string]int64, bool) {
			n, err := tr.Pending()
			if err != nil {
				return nil, false
			}
			vals := map[string]int64{"pending": n}
			if dr, ok := tr.(DepthReporter); ok {
				for k, v := range dr.QueueDepths() {
					vals[k] = v
				}
			}
			return vals, true
		})
		if opts.TelemetryEvery > 0 {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				tick := time.NewTicker(opts.TelemetryEvery)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						r.tel.RecordFlight()
					}
				}
			}()
		}
	}

	// Seed one generate task per source instance (pinned plans) or per
	// source (pool plans) before any worker starts, so the pending counter
	// is non-zero from the coordinator's first drain check. Under stamping,
	// seeds carry a (node, instance)-deterministic identity so a replayed
	// generate task — and every child it re-emits — keeps its provenance.
	seed := func(name string, instance int) Task {
		t := Task{PE: name, Instance: instance}
		if r.stamped {
			t.Src = seedSrc(name, instance)
		}
		return t
	}
	for _, src := range g.Sources() {
		count := cfg.Plan.Instances[src.Name]
		if count == 0 {
			if err := cfg.Transport.Push(seed(src.Name, -1)); err != nil {
				return metrics.Report{}, fmt.Errorf("%s: seed source %s: %w", cfg.Name, src.Name, err)
			}
			continue
		}
		for i := 0; i < count; i++ {
			if err := cfg.Transport.Push(seed(src.Name, i)); err != nil {
				return metrics.Report{}, fmt.Errorf("%s: seed source %s: %w", cfg.Name, src.Name, err)
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := range cfg.Plan.Workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.runWorker(w)
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.coordinate()
	}()
	wg.Wait()
	elapsed := time.Since(start)

	r.errMu.Lock()
	err = r.firstErr
	r.errMu.Unlock()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("%s: %w", cfg.Name, err)
	}
	success = true
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     cfg.Name,
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     elapsed,
		ProcessTime: cfg.Host.TotalProcessTime(),
		Tasks:       r.tasks.Load(),
		Outputs:     r.outputs.Load(),
		State:       ms.Ops(),
	}, nil
}

// run is the shared state of one Execute call.
type run struct {
	g    *graph.Graph
	opts mapping.Options
	cfg  Config
	ms   *mapping.ManagedState

	tasks   atomic.Int64
	outputs atomic.Int64

	// fencing is on when any managed namespace is wrapped in a FencedStore
	// (Options.ExactlyOnceState / RecoverStale): tasks are stamped with
	// deterministic identities and workers route managed-state access
	// through per-worker fence scopes. stamped additionally covers tracing,
	// which reuses the same identities without the fence scopes.
	fencing bool
	stamped bool

	// tel/tracer mirror Options.Telemetry (nil when uninstrumented); diag
	// mirrors Options.Diagnosis (nil keeps the attribution paths cold).
	tel    *telemetry.Registry
	tracer *telemetry.Tracer
	diag   *diagnosis.Diag

	abort     chan struct{}
	abortOnce sync.Once
	failed    atomic.Bool
	poisoned  atomic.Bool
	errMu     sync.Mutex
	firstErr  error
}

// fail records the first error and unwinds the run: the transport shuts
// down (unblocking workers), the controller releases idle workers, and the
// abort channel stops loops that are between transport operations.
func (r *run) fail(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
	r.failed.Store(true)
	r.abortOnce.Do(func() { close(r.abort) })
	_ = r.cfg.Transport.Done()
	if r.cfg.Controller != nil {
		r.cfg.Controller.Terminate()
	}
}

func (r *run) aborted() bool {
	select {
	case <-r.abort:
		return true
	default:
		return false
	}
}

// workerFail reports a worker-side error unless the run is already
// unwinding (transport shutdown errors are the unwind, not a new failure).
func (r *run) workerFail(err error) {
	if IsClosed(err) || r.aborted() {
		return
	}
	r.fail(err)
}

// runWorker is the one worker loop of the engine. A pinned worker owns a
// single PE instance; a pool worker owns a private copy of every pooled PE
// (the paper's cp_graph ← DeepCopy(graph)).
func (r *run) runWorker(w int) {
	spec := r.cfg.Plan.Workers[w]
	var procName string
	if spec.Pinned() {
		procName = fmt.Sprintf("%s:%s:%d", r.cfg.Name, spec.PE, spec.Instance)
	} else {
		procName = fmt.Sprintf("%s:w%d", r.cfg.Name, w)
	}
	proc := r.cfg.Host.NewProcess(procName)
	proc.Activate()
	defer proc.Deactivate()

	// The worker's telemetry shard is resolved once; a nil shard leaves every
	// hot-path branch on a simple pointer test. The diagnosis flow rows are
	// resolved the same way — once per worker at build time, never per task.
	var wm *telemetry.WorkerMetrics
	if r.tel != nil {
		wm = r.tel.Worker(w)
	}
	var flows map[string]*diagnosis.PEFlow
	if r.diag != nil {
		flows = map[string]*diagnosis.PEFlow{}
	}
	r.diag.Log(diagnosis.EvWorkerStart, w, spec.PE, procName, 0)
	exitReason := "error"
	defer func() { r.diag.Log(diagnosis.EvWorkerExit, w, spec.PE, exitReason, 0) }()

	b := newBatcher(r.cfg.Transport, r.opts.EmitBatch, r.opts.EmitFlushEvery)
	if wm != nil {
		b.flushHist = wm.EmitFlush
		b.sizeHist = wm.EmitBatch
	}
	if b.sizer != nil && r.diag != nil {
		b.sizer.OnResize = resizeLogger(r.diag, w, "emit")
	}
	rt := newRouter(r.g, r.cfg.Plan, &r.outputs, b.push, r.stamped, r.tracer, w, r.diag)

	// Build this worker's PE copies and contexts. Under fencing each
	// managed-state context is routed through a per-worker FenceScope, the
	// handle the loop binds to the current delivery before each task.
	pes := map[string]core.PE{}
	ctxs := map[string]*core.Context{}
	var scopes map[string]*state.FenceScope
	build := func(n *graph.Node, instance int, seed int64) {
		pes[n.Name] = n.Factory()
		if flows != nil {
			f := r.diag.PE(n.Name)
			f.AddServer()
			flows[n.Name] = f
		}
		ctx := core.NewContext(n.Name, instance, r.cfg.Host, synth.NewRand(seed), rt.emitFor(n.Name))
		if fs := r.ms.Fenced(n.Name); fs != nil {
			scope := fs.NewScope()
			if scopes == nil {
				scopes = map[string]*state.FenceScope{}
			}
			scopes[n.Name] = scope
			ctx = ctx.WithStore(scope)
		} else if st := r.ms.Store(n.Name); st != nil {
			ctx = ctx.WithStore(st)
		}
		ctxs[n.Name] = ctx
	}
	if spec.Pinned() {
		n := r.g.Node(spec.PE)
		build(n, spec.Instance, r.opts.Seed^int64(InstanceSeed(n.Name, spec.Instance)))
	} else {
		for _, n := range r.g.Nodes() {
			if r.cfg.Plan.Instances[n.Name] != 0 {
				continue // pinned elsewhere
			}
			build(n, w, r.opts.Seed^int64(w*7919)^int64(NodeHash(n.Name)))
		}
	}
	// Init emissions carry a per-worker provenance: Init runs once per
	// worker copy (never replayed), so its children must not be fenced
	// against another worker's.
	rt.begin(Task{Src: initSrc(w)})
	for name, pe := range pes {
		if ini, ok := pe.(core.Initializer); ok {
			if err := ini.Init(ctxs[name]); err != nil {
				r.workerFail(fmt.Errorf("worker %s: init %s: %w", procName, name, err))
				return
			}
		}
	}
	// Anything emitted from Init hooks must reach the transport before the
	// worker starts pulling: a batch held here would be invisible to the
	// pending count and silently dropped at termination.
	if err := b.flush(); err != nil {
		r.workerFail(fmt.Errorf("worker %s: flush init emissions: %w", procName, err))
		return
	}

	// Per-loop invariants are hoisted out of the hot loop: the poll timeout
	// and batch windows are read from Options once here, not chased on every
	// pull iteration.
	tr := r.cfg.Transport
	pollTimeout := r.opts.PollTimeout
	pullWindow := r.opts.PullBatch
	var pullSizer *BatchSizer
	if pullWindow == mapping.AutoBatch {
		pullSizer = NewBatchSizer()
		if r.diag != nil {
			pullSizer.OnResize = resizeLogger(r.diag, w, "pull")
		}
	} else if pullWindow < 1 {
		pullWindow = 1
	}
	acks := &ackBatch{tr: tr, w: w, tracer: r.tracer}
	if wm != nil {
		acks.hist = wm.Ack
	}
	// Transports that reclaim deliveries by idle time need a progress
	// heartbeat between tasks, or a healthy worker chewing through a packed
	// frame slower than the idle threshold loses it mid-flight (see
	// LeaseExtender). The call self-throttles; failures only risk an early
	// reclaim, which the recovery path already tolerates.
	leases, _ := tr.(LeaseExtender)

	ctrl := r.cfg.Controller
	// Pool workers accrue process time while polling an empty queue — the
	// always-active cost auto-scaling exists to cut. Pinned workers under
	// PinnedIdleStandby instead deactivate across empty polls (see Config).
	standby := r.cfg.PinnedIdleStandby && spec.Pinned()
	active := true
	var buf []Env // worker-local prefetch buffer
	next := 0
	var pulledAt int64 // UnixNano of the current buffer's pull (tracing only)
	for {
		if r.aborted() {
			exitReason = "abort"
			return
		}
		if next >= len(buf) {
			// Refill. Order matters: buffered emissions reach the transport
			// first (children become pending), then the processed deliveries
			// are released in one batched ack, and only then may the worker
			// block — on the idle gate or on the pull itself.
			if err := b.flush(); err != nil {
				r.workerFail(fmt.Errorf("worker %s: flush emissions: %w", procName, err))
				return
			}
			if err := acks.flush(); err != nil {
				r.workerFail(fmt.Errorf("worker %s: ack batch: %w", procName, err))
				return
			}
			if ctrl != nil && !spec.Pinned() && ctrl.Idle(w) {
				// Idle state: stop accruing process time until readmitted.
				proc.Deactivate()
				if !ctrl.Admit(w) {
					exitReason = "idle_release"
					return
				}
				proc.Activate()
			}
			window := pullWindow
			if pullSizer != nil {
				window = pullSizer.Next()
			}
			start := time.Now()
			envs, err := tr.PullBatch(w, window, pollTimeout)
			if err != nil {
				r.workerFail(fmt.Errorf("worker %s: pull: %w", procName, err))
				return
			}
			if pullSizer != nil {
				// Empty polls are observed too: a timed-out round trip is
				// real cost under bursty traffic and feeds the shrink rule
				// (without polluting the per-task cost estimate). The count
				// is frames, not tasks: the pull window (XREADGROUP COUNT)
				// is denominated in stream entries, and a packed entry
				// delivers many tasks for one unit of window — sizing on
				// tasks would starve the window long before the round trip
				// amortizes.
				pullSizer.Observe(time.Since(start), countFrames(envs))
			}
			if len(envs) == 0 {
				if wm != nil {
					wm.IdlePolls.Inc()
				}
				if standby && active {
					proc.Deactivate()
					active = false
				}
				continue // the coordinator owns termination
			}
			if wm != nil {
				wm.Pull.Observe(int64(time.Since(start)))
				wm.PullBatch.Observe(int64(len(envs)))
			}
			if r.tracer != nil {
				pulledAt = time.Now().UnixNano()
			}
			buf, next = envs, 0
		}
		if !active {
			proc.Activate()
			active = true
		}
		env := buf[next]
		next++
		if wm != nil {
			wm.Prefetch.Set(int64(len(buf) - next))
		}
		if env.Poison {
			exitReason = "poison"
			r.retirePoison(env, buf[next:], b, acks)
			return
		}
		if wm != nil {
			wm.Tasks.Inc()
		}
		if leases != nil {
			_ = leases.Extend(w)
		}
		traced := r.tracer != nil && env.TraceAt != 0
		flow := flows[env.PE] // nil map lookup is fine when diagnosis is off
		if !traced && flow == nil {
			if err := r.runTask(procName, pes, ctxs, rt, scopes, b, acks, env); err != nil {
				r.workerFail(err)
				return
			}
			continue
		}
		// Timed execution: a traced delivery records its span even on error
		// (a trace ending in a failed hop is still reconstructable), and the
		// flow ledger observes every execution's service time — plus, for
		// traced deliveries, the emit→start queue wait their TraceAt stamp
		// carries across the wire.
		startNs := time.Now().UnixNano()
		err := r.runTask(procName, pes, ctxs, rt, scopes, b, acks, env)
		endNs := time.Now().UnixNano()
		if traced {
			r.tracer.RecordExec(env.Src, env.Seq, env.PE, w, env.TraceAt, pulledAt, startNs, endNs)
		}
		if flow != nil {
			flow.ObserveExec(startNs, endNs, diagnosis.ValueBytes(env.Value), env.Port == "" && !env.Finalize)
			if env.TraceAt > 0 {
				flow.ObserveQueueWait(startNs - env.TraceAt)
			}
		}
		if err != nil {
			r.workerFail(err)
			return
		}
	}
}

// resizeLogger journals one BatchSizer's window changes.
func resizeLogger(d *diagnosis.Diag, w int, which string) func(oldSize, newSize int) {
	return func(oldSize, newSize int) {
		d.Log(diagnosis.EvResize, w, "", fmt.Sprintf("%s %d→%d", which, oldSize, newSize), int64(newSize))
	}
}

// retirePoison winds a worker down on its pill. A batch read off the Redis
// stream can deliver several pool pills to one consumer (stream deliveries
// are irreversible, so the transport cannot put them back); whatever was
// delivered behind this worker's pill is re-pushed for the workers it was
// meant for before the deliveries are released — push before ack, so even a
// non-poison straggler never dips the pending count. Errors are ignored:
// this path races transport shutdown by design.
func (r *run) retirePoison(pill Env, rest []Env, b *batcher, acks *ackBatch) {
	r.diag.Log(diagnosis.EvPill, acks.w, "", "retire", int64(len(rest)))
	if len(rest) > 0 {
		tasks := make([]Task, len(rest))
		for i, env := range rest {
			tasks[i] = env.Task
		}
		_ = r.cfg.Transport.Push(tasks...)
	}
	_ = b.flush()
	acks.add(pill)
	for _, env := range rest {
		acks.add(env)
	}
	_ = acks.flush()
}

// runTask executes one delivered task: generate, process, or finalize. The
// acknowledgement is deferred into the worker's ack batch; because the ack
// batch is only ever flushed after the emit batch, the task's children are
// pending before the task itself is released.
//
// Under fencing the router and the PE's fence scope are bound to the
// delivery's identity first, so re-emitted children are stamped
// deterministically and managed-state mutations of a duplicate execution
// are dropped by the store's applied ledger.
func (r *run) runTask(procName string, pes map[string]core.PE, ctxs map[string]*core.Context, rt *router, scopes map[string]*state.FenceScope, b *batcher, acks *ackBatch, env Env) error {
	pe, ok := pes[env.PE]
	if !ok {
		return fmt.Errorf("worker %s: task for unknown PE %q", procName, env.PE)
	}
	rt.begin(env.Task)
	scope := scopes[env.PE]
	if scope != nil {
		scope.SetToken(state.Token{Src: env.Src, Seq: env.Seq})
		defer scope.ClearToken()
	}
	var err error
	switch {
	case env.Finalize:
		if scope != nil {
			// A Final's effect is its emissions, not store writes, so the
			// whole delivery is gated: a replayed Finalize that raced its
			// original must not flush (and double-emit) the namespace again.
			tok := state.Token{Src: env.Src, Seq: env.Seq}
			fs := r.ms.Fenced(env.PE)
			fp, canPush := r.cfg.Transport.(FencedPusher)
			var gateKey, gateField string
			var gated bool
			if canPush && fs != nil {
				gateKey, gateField, gated = fs.TaskGateRef(tok)
			}
			if gated {
				// Atomic path: the transport and the state backend share a
				// server, so the Final's whole output batch and the task-gate
				// record ship as one SINKAPPEND transaction. The Final runs
				// with the batcher in hold mode (earlier emissions flushed
				// first, so nothing unfenced can leak into the held set); a
				// worker killed anywhere before the push leaves no gate
				// record, and the replayed Finalize redoes the flush in full —
				// exactly-once with no lost-output window at all. A duplicate
				// (gate already recorded) pushes nothing and is counted as a
				// fence drop.
				if err = b.flush(); err != nil {
					break
				}
				b.hold()
				if fin, isFin := pe.(core.Finalizer); isFin {
					if err = fin.Final(ctxs[env.PE]); err != nil {
						b.take()
						break
					}
				}
				held := b.take()
				if err = faultinject.Fire(faultinject.ProbeMidFinalFlush); err != nil {
					break
				}
				// Entries are capped at the emit window so the atomic batch
				// keeps the normal path's delivery granularity downstream.
				cap := b.window()
				if cap < 1 {
					cap = 1
				}
				applied, perr := fp.PushFenced(gateKey, gateField, cap, held...)
				if perr != nil {
					err = perr
					break
				}
				if !applied {
					fs.ObserveDrop()
				}
				break
			}
			// Two-step fallback (memory-backed state, or a transport without
			// fenced pushes): the gate is at-most-once by construction — a
			// worker killed between acquiring it and the flush below loses
			// some or all of the final output, because the replay will not
			// redo it (emissions cannot be retracted, so the inverse order
			// would double-count rows at the sink). The immediate flush
			// shrinks that window to the Final call itself; the aggregates
			// survive in the managed store either way. In-process transports
			// don't crash independently of their state, so the window only
			// matters for split Redis deployments.
			first, aerr := scope.AcquireTask(tok)
			if aerr != nil {
				err = aerr
				break
			}
			if !first {
				break
			}
			if err = faultinject.Fire(faultinject.ProbeMidFinalFlush); err != nil {
				break
			}
			if fin, isFin := pe.(core.Finalizer); isFin {
				if err = fin.Final(ctxs[env.PE]); err == nil {
					err = b.flush()
				}
			}
			break
		}
		if fin, isFin := pe.(core.Finalizer); isFin {
			err = fin.Final(ctxs[env.PE])
		}
	case env.Port == "":
		src, isSrc := pe.(core.Source)
		if !isSrc {
			err = fmt.Errorf("generate task for non-source PE %q", env.PE)
			break
		}
		r.tasks.Add(1)
		err = src.Generate(ctxs[env.PE])
	default:
		r.tasks.Add(1)
		err = pe.Process(ctxs[env.PE], env.Port, env.Value)
	}
	if err != nil {
		// Release the deliveries so a failed run does not hang on a counter
		// that can never drain, then surface the PE error.
		acks.add(env)
		_ = acks.flush()
		if IsClosed(err) {
			return err
		}
		return fmt.Errorf("worker %s: PE %s: %w", procName, env.PE, err)
	}
	acks.add(env)
	return nil
}

// coordinate owns termination: wait for the drain, flush Finals, poison.
func (r *run) coordinate() {
	err := r.drainAndFinalize()
	if err != nil && !errors.Is(err, errRunAborted) && !r.failed.Load() {
		r.fail(err)
		return
	}
	if r.failed.Load() {
		return
	}
	r.poisonAll()
	if r.cfg.Controller != nil {
		// Release workers parked in the idle state so they can observe
		// their poison pills (or exit directly).
		r.cfg.Controller.Terminate()
	}
}

// drainAndFinalize implements the unified finalization protocol that
// replaced the per-mapping drain variants: after the stream drains, each
// Finalizer node gets its Final flushed — once per pinned instance for
// field-state nodes, exactly once (instance 0, or any pool worker) for
// managed-state nodes, whose shared store is quiescent once the transport
// is drained.
func (r *run) drainAndFinalize() error {
	if err := r.awaitDrain(); err != nil {
		return err
	}
	r.diag.Log(diagnosis.EvDrain, -1, "", "stream drained", 0)
	order, err := r.g.TopoSort()
	if err != nil {
		return err
	}
	for _, name := range order {
		n := r.g.Node(name)
		if _, ok := n.Prototype.(core.Finalizer); !ok {
			continue
		}
		count := r.cfg.Plan.Instances[name]
		final := func(instance int) Task {
			t := Task{PE: name, Instance: instance, Finalize: true}
			if r.stamped {
				t.Src = finalSrc(name, instance)
			}
			return t
		}
		var finals []Task
		switch {
		case count == 0:
			// Pooled node: validation guarantees it is managed-state, so a
			// single Final on any worker flushes the shared namespace.
			finals = []Task{final(-1)}
		case n.HasManagedState():
			// One namespace shared by all instances ⇒ Final runs once.
			finals = []Task{final(0)}
		default:
			for i := 0; i < count; i++ {
				finals = append(finals, final(i))
			}
		}
		if err := r.cfg.Transport.Push(finals...); err != nil {
			return err
		}
		r.diag.Log(diagnosis.EvDrain, -1, name, "finals pushed", int64(len(finals)))
		if err := r.awaitDrain(); err != nil {
			return err
		}
	}
	return nil
}

// errRunAborted signals that a worker failed first; fail() owns the unwind.
var errRunAborted = errors.New("runtime: run aborted")

func (r *run) awaitDrain() error {
	return AwaitDrain(r.cfg.Transport, r.opts.PollTimeout, r.opts.Retries, &r.failed)
}

// AwaitDrain blocks until the transport's pending count stays zero across
// the retry budget — the engine-wide version of the paper's Section 3.2.3
// retry termination check. A non-nil failed flag aborts the wait when set.
func AwaitDrain(tr Transport, pollTimeout time.Duration, retries int, failed *atomic.Bool) error {
	zeros := 0
	for {
		if failed != nil && failed.Load() {
			return errRunAborted
		}
		n, err := tr.Pending()
		if err != nil {
			return err
		}
		if n == 0 {
			zeros++
			if zeros > retries {
				return nil
			}
		} else {
			zeros = 0
		}
		time.Sleep(pollTimeout)
	}
}

// poisonAll pushes one pill per worker, once: pool pills on the shared
// route, addressed pills to every pinned instance.
func (r *run) poisonAll() {
	if r.poisoned.Swap(true) {
		return
	}
	var pills []Task
	for i := 0; i < r.cfg.Plan.Pool; i++ {
		pills = append(pills, Task{Poison: true, Instance: -1})
	}
	for _, spec := range r.cfg.Plan.Workers {
		if spec.Pinned() {
			pills = append(pills, Task{Poison: true, PE: spec.PE, Instance: spec.Instance})
		}
	}
	if len(pills) > 0 {
		r.diag.Log(diagnosis.EvPill, -1, "", "poison_all", int64(len(pills)))
		_ = r.cfg.Transport.Push(pills...)
	}
}

// countFrames counts the wire frames behind a pulled batch: a run of envs
// sharing a non-empty (Shard, AckID) came from one packed stream entry; envs
// without an AckID (in-process deliveries) count one each, so the frame
// count degrades to the task count on transports that don't pack. The pull
// sizer observes frames because its window (XREADGROUP COUNT) is denominated
// in entries.
func countFrames(envs []Env) int {
	n := 0
	for i, env := range envs {
		if env.AckID == "" || i == 0 ||
			envs[i-1].AckID != env.AckID || envs[i-1].Shard != env.Shard {
			n++
		}
	}
	return n
}
