package runtime_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/miniredis"
	"repro/internal/mpi"
	"repro/internal/redisclient"
	"repro/internal/runtime"
)

// transportFixture builds one transport kind over a single-worker plan: the
// chan, redis and rank transports exercise their pinned delivery path, the
// queue transport its pool path — together covering every route of the four
// transports. addr is a task template addressed to the fixture's worker 0.
type transportFixture struct {
	name string
	make func(t *testing.T) (tr runtime.Transport, addr runtime.Task)
}

func transportFixtures() []transportFixture {
	pinnedPlan := func() runtime.Plan {
		return runtime.NewPlan([]runtime.WorkerSpec{{PE: "pe", Instance: 0}}, map[string]int{"pe": 1})
	}
	return []transportFixture{
		{name: "chan", make: func(t *testing.T) (runtime.Transport, runtime.Task) {
			return runtime.NewChanTransport(pinnedPlan(), 0), runtime.Task{PE: "pe", Port: "in", Instance: 0}
		}},
		{name: "queue", make: func(t *testing.T) (runtime.Transport, runtime.Task) {
			return runtime.NewQueueTransport(runtime.NewQueue(0)), runtime.Task{PE: "pe", Port: "in", Instance: -1}
		}},
		{name: "redis", make: func(t *testing.T) (runtime.Transport, runtime.Task) {
			srv, err := miniredis.StartTestServer()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			cl := redisclient.Dial(srv.Addr())
			t.Cleanup(func() { cl.Close() })
			tr, err := runtime.NewRedisTransport(redisclient.Single(cl), runtime.NewRunKeys("tconf", 1), pinnedPlan(), false)
			if err != nil {
				t.Fatal(err)
			}
			return tr, runtime.Task{PE: "pe", Port: "in", Instance: 0}
		}},
		{name: "rank", make: func(t *testing.T) (runtime.Transport, runtime.Task) {
			world, err := mpi.NewWorld(1)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(world.Close)
			tr, err := runtime.NewRankTransport(world, pinnedPlan())
			if err != nil {
				t.Fatal(err)
			}
			return tr, runtime.Task{PE: "pe", Port: "in", Instance: 0}
		}},
	}
}

// TestTransportsHoldTerminationUntilDrained is the transport-level
// termination conformance property: with a deliberately slow consumer, the
// drain check the coordinator gates poison pills on must not pass while any
// task is queued or in flight — across all four transports. A violation is
// exactly the bug class the per-mapping protocols used to guard against
// individually: a worker exiting while tasks are pending.
func TestTransportsHoldTerminationUntilDrained(t *testing.T) {
	const n = 20
	for _, fx := range transportFixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			tr, addr := fx.make(t)

			tasks := make([]runtime.Task, n)
			for i := range tasks {
				task := addr
				task.Value = i
				tasks[i] = task
			}
			if err := tr.Push(tasks...); err != nil {
				t.Fatal(err)
			}

			var processed atomic.Int64
			go func() {
				for {
					envs, err := tr.PullBatch(0, 1, 2*time.Millisecond)
					if err != nil {
						return
					}
					if len(envs) == 0 {
						continue
					}
					// Slow consumer: the task stays in flight long enough
					// for many drain polls to observe it.
					time.Sleep(3 * time.Millisecond)
					processed.Add(int64(len(envs)))
					if err := tr.Ack(0, envs...); err != nil {
						return
					}
					if processed.Load() == n {
						return
					}
				}
			}()

			if err := runtime.AwaitDrain(tr, time.Millisecond, 3, nil); err != nil {
				t.Fatal(err)
			}
			if got := processed.Load(); got != n {
				t.Fatalf("drain passed with %d of %d tasks processed — workers would exit with tasks pending", got, n)
			}
			if p, err := tr.Pending(); err != nil || p != 0 {
				t.Fatalf("pending after drain: %d (%v)", p, err)
			}
			_ = tr.Done()
		})
	}
}

// TestTransportsHoldTerminationWithPrefetch extends the conformance
// property to the batched consume path: a slow consumer that pulls windows
// of several tasks and parks them in a non-empty prefetch buffer — acking
// the whole batch only after the last task is processed — must never let
// the coordinator's drain pass early, on all four transports. This is the
// invariant that makes prefetching safe: pulled-but-unacknowledged tasks
// still count as pending.
func TestTransportsHoldTerminationWithPrefetch(t *testing.T) {
	const n = 24
	const window = 8
	for _, fx := range transportFixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			tr, addr := fx.make(t)

			tasks := make([]runtime.Task, n)
			for i := range tasks {
				task := addr
				task.Value = i
				tasks[i] = task
			}
			if err := tr.Push(tasks...); err != nil {
				t.Fatal(err)
			}

			var acked atomic.Int64
			go func() {
				for acked.Load() < n {
					// max is advisory: a batch-framed transport may return
					// more than window tasks; hold however many arrived.
					envs, err := tr.PullBatch(0, window, 2*time.Millisecond)
					if err != nil {
						return
					}
					if len(envs) == 0 {
						continue
					}
					// The whole batch sits in the prefetch buffer while each
					// task is slowly processed; many drain polls observe the
					// buffer non-empty with the queue itself already short.
					for range envs {
						time.Sleep(time.Millisecond)
					}
					if err := tr.Ack(0, envs...); err != nil {
						return
					}
					acked.Add(int64(len(envs)))
				}
			}()

			if err := runtime.AwaitDrain(tr, time.Millisecond, 3, nil); err != nil {
				t.Fatal(err)
			}
			if got := acked.Load(); got != n {
				t.Fatalf("drain passed with %d of %d tasks acknowledged — a prefetch buffer would be dropped at termination", got, n)
			}
			if p, err := tr.Pending(); err != nil || p != 0 {
				t.Fatalf("pending after drain: %d (%v)", p, err)
			}
			_ = tr.Done()
		})
	}
}

// TestTransportsCountInFlightTasks pins the finer-grained half of the
// contract: a task that has been pulled but not acknowledged is still
// pending, even though the queue itself is empty.
func TestTransportsCountInFlightTasks(t *testing.T) {
	for _, fx := range transportFixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			tr, addr := fx.make(t)
			if err := tr.Push(addr); err != nil {
				t.Fatal(err)
			}
			envs, err := tr.PullBatch(0, 1, 50*time.Millisecond)
			if err != nil || len(envs) != 1 {
				t.Fatalf("pull: envs=%v err=%v", envs, err)
			}
			// Queue empty, task in flight: must still count as pending.
			if p, err := tr.Pending(); err != nil || p != 1 {
				t.Fatalf("in-flight pending = %d (%v), want 1", p, err)
			}
			if err := tr.Ack(0, envs[0]); err != nil {
				t.Fatal(err)
			}
			if p, err := tr.Pending(); err != nil || p != 0 {
				t.Fatalf("post-ack pending = %d (%v), want 0", p, err)
			}
			_ = tr.Done()
		})
	}
}

// TestSeedHelpersStable pins the deduplicated FNV helpers: stable across
// calls, distinct across instances and PE names.
func TestSeedHelpersStable(t *testing.T) {
	if runtime.InstanceSeed("getVOTable", 0) != runtime.InstanceSeed("getVOTable", 0) {
		t.Error("InstanceSeed not stable")
	}
	if runtime.InstanceSeed("getVOTable", 0) == runtime.InstanceSeed("getVOTable", 1) {
		t.Error("InstanceSeed must differ across instances")
	}
	if runtime.InstanceSeed("getVOTable", 0) == runtime.InstanceSeed("filterColumns", 0) {
		t.Error("InstanceSeed must differ across PEs")
	}
	if runtime.NodeHash("a") != graph.Hash32("a") || runtime.NodeHash("a") == runtime.NodeHash("b") {
		t.Error("NodeHash must be the graph FNV hash")
	}
}
