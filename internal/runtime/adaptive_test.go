package runtime

import (
	"testing"
	"time"
)

// TestBatchSizerGrowsOnExpensiveOps: a Redis-like transport (≈100µs per
// round trip) with full windows drives the window to the cap.
func TestBatchSizerGrowsOnExpensiveOps(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 20; i++ {
		s.Observe(100*time.Microsecond, s.Next())
	}
	if s.Next() != autoBatchMax {
		t.Fatalf("window = %d after sustained expensive full deliveries, want cap %d", s.Next(), autoBatchMax)
	}
}

// TestBatchSizerStopsAtAmortizedBudget: a queue-like transport (≈2.2µs per
// op, the modeled synchronization cost) settles where the per-task share of
// a round trip drops below the budget — 64 for these constants — instead of
// growing to the cap.
func TestBatchSizerStopsAtAmortizedBudget(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 30; i++ {
		s.Observe(2200*time.Nanosecond, s.Next())
	}
	if s.Next() != 64 {
		t.Fatalf("window = %d for a 2.2µs op under a %v budget, want 64", s.Next(), autoBatchBudget)
	}
}

// TestBatchSizerShrinksWhenUnderfull: sparse traffic (single-task
// deliveries against a grown window) pulls the window back down, restoring
// low latency when the stream thins.
func TestBatchSizerShrinksWhenUnderfull(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 20; i++ {
		s.Observe(100*time.Microsecond, s.Next())
	}
	for i := 0; i < 10; i++ {
		s.Observe(2*time.Millisecond, 1) // mostly poll wait, one task
	}
	if s.Next() > 4 {
		t.Fatalf("window = %d after sustained underfull deliveries, want near minimum", s.Next())
	}
}

// TestBatchSizerBounds: the window never leaves [min, cap] and timeouts
// (zero-task observations) are ignored.
func TestBatchSizerBounds(t *testing.T) {
	s := NewBatchSizer()
	if s.Next() != autoBatchMin {
		t.Fatalf("initial window = %d, want %d", s.Next(), autoBatchMin)
	}
	s.Observe(time.Second, 0) // timeout: no signal
	if s.Next() != autoBatchMin || s.ewma != 0 {
		t.Fatalf("zero-task observation moved the sizer: window=%d ewma=%v", s.Next(), s.ewma)
	}
	for i := 0; i < 100; i++ {
		s.Observe(time.Second, s.Next())
	}
	if s.Next() > autoBatchMax {
		t.Fatalf("window %d exceeded cap", s.Next())
	}
	for i := 0; i < 100; i++ {
		s.Observe(time.Nanosecond, 1)
	}
	if s.Next() < autoBatchMin {
		t.Fatalf("window %d below minimum", s.Next())
	}
}
