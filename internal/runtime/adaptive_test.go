package runtime

import (
	"testing"
	"time"
)

// TestBatchSizerGrowsOnExpensiveOps: a Redis-like transport (≈100µs per
// round trip) with full windows drives the window to the cap.
func TestBatchSizerGrowsOnExpensiveOps(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 20; i++ {
		s.Observe(100*time.Microsecond, s.Next())
	}
	if s.Next() != autoBatchMax {
		t.Fatalf("window = %d after sustained expensive full deliveries, want cap %d", s.Next(), autoBatchMax)
	}
}

// TestBatchSizerStopsAtAmortizedBudget: a queue-like transport (≈2.2µs per
// op, the modeled synchronization cost) settles where the per-task share of
// a round trip drops below the budget — 64 for these constants — instead of
// growing to the cap.
func TestBatchSizerStopsAtAmortizedBudget(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 30; i++ {
		s.Observe(2200*time.Nanosecond, s.Next())
	}
	if s.Next() != 64 {
		t.Fatalf("window = %d for a 2.2µs op under a %v budget, want 64", s.Next(), autoBatchBudget)
	}
}

// TestBatchSizerShrinksWhenUnderfull: sparse traffic (single-task
// deliveries against a grown window) pulls the window back down, restoring
// low latency when the stream thins.
func TestBatchSizerShrinksWhenUnderfull(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 20; i++ {
		s.Observe(100*time.Microsecond, s.Next())
	}
	for i := 0; i < 10; i++ {
		s.Observe(2*time.Millisecond, 1) // mostly poll wait, one task
	}
	if s.Next() > 4 {
		t.Fatalf("window = %d after sustained underfull deliveries, want near minimum", s.Next())
	}
}

// TestBatchSizerBounds: the window never leaves [min, cap] and timeouts
// (zero-task observations) never pollute the cost model.
func TestBatchSizerBounds(t *testing.T) {
	s := NewBatchSizer()
	if s.Next() != autoBatchMin {
		t.Fatalf("initial window = %d, want %d", s.Next(), autoBatchMin)
	}
	s.Observe(time.Second, 0) // timeout: shrink signal only, already at min
	if s.Next() != autoBatchMin || s.FixedCost() != 0 {
		t.Fatalf("zero-task observation moved the sizer: window=%d fixed=%v", s.Next(), s.FixedCost())
	}
	for i := 0; i < 100; i++ {
		s.Observe(time.Second, s.Next())
	}
	if s.Next() > autoBatchMax {
		t.Fatalf("window %d exceeded cap", s.Next())
	}
	for i := 0; i < 100; i++ {
		s.Observe(time.Nanosecond, 1)
	}
	if s.Next() < autoBatchMin {
		t.Fatalf("window %d below minimum", s.Next())
	}
}

// TestBatchSizerStopsAtLinearCostKnee pins the two-term estimator: on a
// transport whose operation cost is dominated by a per-task term (1µs fixed
// + 2µs per task, a channel-like shape), the window must stop growing at the
// fixed-cost amortization knee (1µs / 50ns = 20 → first power of two whose
// budget share covers the fixed cost is 32) instead of drifting to the
// backstop cap the way the old single-EWMA cost model did.
func TestBatchSizerStopsAtLinearCostKnee(t *testing.T) {
	s := NewBatchSizer()
	cost := func(n int) time.Duration {
		return time.Microsecond + time.Duration(n)*2*time.Microsecond
	}
	for i := 0; i < 40; i++ {
		s.Observe(cost(s.Next()), s.Next())
	}
	if s.Next() != 32 {
		t.Fatalf("window = %d for a 1µs-fixed + 2µs-per-task transport, want 32 (the amortization knee)", s.Next())
	}
	// Steady state: with the window stable, n stops varying and the moments
	// collapse onto one point — the fit must stay frozen rather than
	// re-attribute the linear cost to the fixed term and resume growing.
	for i := 0; i < 500; i++ {
		s.Observe(cost(s.Next()), s.Next())
	}
	if s.Next() != 32 {
		t.Fatalf("window drifted to %d under steady full-window traffic, want to stay at the knee (32)", s.Next())
	}
	if f := s.FixedCost(); f < 500*time.Nanosecond || f > 2*time.Microsecond {
		t.Errorf("fixed-cost estimate %v strayed from the true 1µs", f)
	}
	if m := s.MarginalCost(); m < time.Microsecond || m > 4*time.Microsecond {
		t.Errorf("marginal-cost estimate %v strayed from the true 2µs", m)
	}
}

// TestBatchSizerAccountsIdlePolls pins the bursty-traffic fix: between
// bursts every poll times out empty, and those polls must drive the shrink
// rule — without them the window would stay pinned at burst size, paying
// burst-sized latency and memory through every idle gap — while staying out
// of the cost moments, whose durations would otherwise be swamped by the
// blocking wait.
func TestBatchSizerAccountsIdlePolls(t *testing.T) {
	s := NewBatchSizer()
	for i := 0; i < 20; i++ {
		s.Observe(100*time.Microsecond, s.Next()) // burst: grow to the cap
	}
	if s.Next() != autoBatchMax {
		t.Fatalf("burst did not grow the window: %d", s.Next())
	}
	fixedBefore := s.FixedCost()
	for i := 0; i < 6; i++ {
		s.Observe(2*time.Millisecond, 0) // idle gap: timeouts only
	}
	if s.Next() > autoBatchMax/32 {
		t.Fatalf("window = %d after an idle gap, want shrunk (idle polls starved the shrink rule)", s.Next())
	}
	if s.FixedCost() != fixedBefore {
		t.Fatalf("idle polls polluted the cost estimate: %v → %v", fixedBefore, s.FixedCost())
	}
	for i := 0; i < 10; i++ {
		s.Observe(100*time.Microsecond, s.Next()) // next burst: regrow
	}
	if s.Next() < 32 {
		t.Fatalf("window = %d after the next burst, want regrown", s.Next())
	}
}
