package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// errTransportClosed reports an operation on a transport after Done. The
// worker loop treats it as a shutdown signal, not a workflow failure.
var errTransportClosed = errors.New("runtime: transport closed")

// IsClosed reports whether err is the transport-shutdown sentinel.
func IsClosed(err error) bool { return errors.Is(err, errTransportClosed) }

// ChanTransport carries tasks over in-process channels: one bounded channel
// per pinned worker (the multi mapping's per-instance input queue, with the
// same backpressure) plus one shared channel for pool routing.
type ChanTransport struct {
	plan    Plan
	boxes   []chan Task // per worker index; nil for pool workers
	shared  chan Task
	pending atomic.Int64
	closed  chan struct{}
	once    sync.Once
}

// NewChanTransport builds channels for the plan. buffer is the per-channel
// capacity (the classic 256-slot instance queue when 0).
func NewChanTransport(plan Plan, buffer int) *ChanTransport {
	if buffer <= 0 {
		buffer = 256
	}
	t := &ChanTransport{
		plan:   plan,
		boxes:  make([]chan Task, len(plan.Workers)),
		shared: make(chan Task, buffer),
		closed: make(chan struct{}),
	}
	for w, spec := range plan.Workers {
		if spec.Pinned() {
			t.boxes[w] = make(chan Task, buffer)
		}
	}
	return t
}

// Push implements Transport. Sends block when the destination buffer is full
// (backpressure) and abandon on shutdown to avoid deadlocking a failed run.
func (t *ChanTransport) Push(tasks ...Task) error {
	for _, task := range tasks {
		dst := t.shared
		if task.Instance >= 0 {
			w, ok := t.plan.WorkerFor(task.PE, task.Instance)
			if !ok {
				return fmt.Errorf("runtime: no pinned worker for %s[%d]", task.PE, task.Instance)
			}
			dst = t.boxes[w]
		}
		if !task.Poison {
			t.pending.Add(1)
		}
		select {
		case dst <- task:
		case <-t.closed:
			return errTransportClosed
		}
	}
	return nil
}

// PullBatch implements Transport: a blocking wait for the first task, then
// buffered draining — whatever is already queued joins the batch without
// further blocking. A poison pill ends its batch so sibling pool workers
// keep their pills visible.
func (t *ChanTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if max < 1 {
		max = 1
	}
	src := t.shared
	if box := t.boxes[w]; box != nil {
		src = box
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var envs []Env
	select {
	case task := <-src:
		envs = append(envs, Env{Task: task})
		if task.Poison {
			return envs, nil
		}
	case <-timer.C:
		return nil, nil
	case <-t.closed:
		return nil, errTransportClosed
	}
	for len(envs) < max {
		select {
		case task := <-src:
			envs = append(envs, Env{Task: task})
			if task.Poison {
				return envs, nil
			}
		default:
			return envs, nil
		}
	}
	return envs, nil
}

// Ack implements Transport.
func (t *ChanTransport) Ack(w int, envs ...Env) error {
	var n int64
	for _, env := range envs {
		if !env.Poison {
			n++
		}
	}
	if n > 0 {
		t.pending.Add(-n)
	}
	return nil
}

// Pending implements Transport.
func (t *ChanTransport) Pending() (int64, error) { return t.pending.Load(), nil }

// QueueDepths implements DepthReporter: the shared pool channel's occupancy
// plus one "box:<pe>:<i>" entry per pinned instance channel.
func (t *ChanTransport) QueueDepths() map[string]int64 {
	out := map[string]int64{"shared": int64(len(t.shared))}
	for w, box := range t.boxes {
		if box == nil {
			continue
		}
		spec := t.plan.Workers[w]
		out[fmt.Sprintf("box:%s:%d", spec.PE, spec.Instance)] = int64(len(box))
	}
	return out
}

// Done implements Transport.
func (t *ChanTransport) Done() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}
