package runtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// RankLink is the point-to-point substrate the rank transport drives. It is
// implemented by internal/mpi.World; the indirection keeps this package free
// of an mpi dependency so the mpi mapping can import runtime.
type RankLink interface {
	// Send delivers data to rank dest.
	Send(from, dest, tag int, data any) error
	// RecvDataTimeout removes and returns the next payload queued for rank
	// me, waiting up to timeout when the mailbox is empty (ok false on
	// timeout).
	RecvDataTimeout(me int, timeout time.Duration) (any, bool, error)
	// Close aborts the link: blocked and subsequent operations fail.
	Close()
}

// RankTransport carries tasks between fixed ranks, one rank per pinned
// worker — the MPI mapping's discipline. There is no shared pool: the
// paper's point that "traditional MPI lacks support for a queue-based
// system crucial for dynamic task assignments" is encoded in the transport
// rejecting Instance < 0 routing.
type RankTransport struct {
	link    RankLink
	plan    Plan
	pending atomic.Int64
	closed  atomic.Bool
}

// NewRankTransport wraps a rank link. The plan must be fully pinned with one
// worker per rank (worker index == rank).
func NewRankTransport(link RankLink, plan Plan) (*RankTransport, error) {
	if plan.Pool > 0 {
		return nil, fmt.Errorf("runtime: rank transport supports pinned workers only (plan has %d pool workers)", plan.Pool)
	}
	return &RankTransport{link: link, plan: plan}, nil
}

// Push implements Transport.
func (t *RankTransport) Push(tasks ...Task) error {
	for _, task := range tasks {
		if task.Instance < 0 {
			return fmt.Errorf("runtime: rank transport has no shared pool to route %s to", task.PE)
		}
		rank, ok := t.plan.WorkerFor(task.PE, task.Instance)
		if !ok {
			return fmt.Errorf("runtime: no rank for %s[%d]", task.PE, task.Instance)
		}
		if !task.Poison {
			t.pending.Add(1)
		}
		// The transport routes by destination only (Push carries no sender
		// identity — the coordinator and run seeding have none), so the
		// envelope is self-addressed: Message.Source is the receiving rank,
		// and receivers must match with AnySource, as RecvDataTimeout does.
		if err := t.link.Send(rank, rank, 0, task); err != nil {
			return t.maybeClosed(err)
		}
	}
	return nil
}

// PullBatch implements Transport: a bounded wait on the rank's mailbox for
// the first message, then zero-timeout drains of whatever is already queued
// — the buffered-draining consume path for per-rank mailboxes. A poison
// pill ends its batch.
func (t *RankTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if max < 1 {
		max = 1
	}
	var envs []Env
	wait := timeout
	for len(envs) < max {
		data, ok, err := t.link.RecvDataTimeout(w, wait)
		if err != nil {
			return nil, t.maybeClosed(err)
		}
		if !ok {
			break
		}
		task, isTask := data.(Task)
		if !isTask {
			return nil, fmt.Errorf("runtime: rank %d received non-task payload %T", w, data)
		}
		envs = append(envs, Env{Task: task})
		if task.Poison {
			break
		}
		wait = 0 // only the first receive blocks
	}
	return envs, nil
}

// Ack implements Transport.
func (t *RankTransport) Ack(w int, envs ...Env) error {
	var n int64
	for _, env := range envs {
		if !env.Poison {
			n++
		}
	}
	if n > 0 {
		t.pending.Add(-n)
	}
	return nil
}

// rankDepths is the optional mailbox-length refinement of RankLink (the same
// no-mpi-import indirection); mpi.World implements it.
type rankDepths interface {
	QueueLen(rank int) int
}

// QueueDepths implements DepthReporter when the link can report mailbox
// lengths ("rank:<i>" per worker); nil otherwise.
func (t *RankTransport) QueueDepths() map[string]int64 {
	ld, ok := t.link.(rankDepths)
	if !ok {
		return nil
	}
	out := make(map[string]int64, len(t.plan.Workers))
	for w := range t.plan.Workers {
		out[fmt.Sprintf("rank:%d", w)] = int64(ld.QueueLen(w))
	}
	return out
}

// Pending implements Transport.
func (t *RankTransport) Pending() (int64, error) { return t.pending.Load(), nil }

// Done implements Transport.
func (t *RankTransport) Done() error {
	if !t.closed.Swap(true) {
		t.link.Close()
	}
	return nil
}

func (t *RankTransport) maybeClosed(err error) error {
	if err != nil && t.closed.Load() {
		return errTransportClosed
	}
	return err
}
