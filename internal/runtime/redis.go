package runtime

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/redisclient"
)

// runNonce disambiguates concurrent runs against one server.
var runNonce atomic.Int64

// RedisKeys holds the Redis key names of one execution. The same names are
// used on every shard of the data plane: a key names a partition, the shard
// index says which server holds it, so a single-shard cluster reproduces the
// exact single-server layout.
type RedisKeys struct {
	// Prefix namespaces every key of the run.
	Prefix string
	// Queue is the pool stream, one partition per shard, consumed through
	// Group.
	Queue string
	// Group is the consumer group name.
	Group string
	// PendingKey is the outstanding-task counter, sharded: each shard counts
	// the tasks stored on it and Pending() scatter-gathers the sum.
	PendingKey string
}

// NewRunKeys derives a fresh key namespace for one run.
func NewRunKeys(workflow string, seed int64) RedisKeys {
	prefix := fmt.Sprintf("d4p:%s:%d:%d", workflow, seed, runNonce.Add(1))
	return RedisKeys{
		Prefix:     prefix,
		Queue:      prefix + ":queue",
		Group:      "workers",
		PendingKey: prefix + ":pending",
	}
}

// PrivKey is the private stream of one pinned PE instance (one reclaimable
// partition per shard, consumed through Group by that instance's worker).
func (k RedisKeys) PrivKey(pe string, instance int) string {
	return fmt.Sprintf("%s:priv:%s:%d", k.Prefix, pe, instance)
}

// taskField is the stream entry field carrying the encoded task.
const taskField = "task"

// RedisTransport carries tasks through a sharded Redis data plane: pool
// tasks on per-shard stream partitions consumed by a consumer group
// (consumer "w<index>" per pool worker), pinned tasks on per-instance
// private streams partitioned the same way — the paper's dyn_redis and
// hybrid_redis storage layout behind one Transport, spread over
// N servers by a redisclient.Cluster.
//
// Placement: unfenced pool batches round-robin across shards per packed
// entry; unfenced private frames go to the hash-ring home shard of their
// stream key; fenced batches land entirely on the shard of their task gate
// so the SINKAPPEND transaction stays single-shard (the co-location
// invariant — see PushFenced). Each worker therefore blocking-reads its home
// shard and sweeps the others non-blocking, so work is found wherever
// routing put it.
//
// Batched pushes are pipelined per shard and frame-packed: one INCRBY for
// the shard's pending counter, one XADD per contiguous run of pool tasks
// (the whole emit batch, in the common case), and one XADD batch frame per
// private stream share a round trip per shard. Acknowledgement is
// entry-range: a stream entry is XACKed on its own shard only once every
// task delivered from it has been acked, so the consumer group's bookkeeping
// stays per entry while the worker loop keeps acking per task.
type RedisTransport struct {
	cluster      *redisclient.Cluster
	keys         RedisKeys
	plan         Plan
	recoverStale bool
	closed       atomic.Bool

	// rr round-robins unfenced pool entries across shards.
	rr atomic.Uint64

	// frames[w] tracks the stream entries worker w has pulled but not fully
	// acknowledged: (shard, entry ID) → how many of its delivered tasks are
	// still unacked, and the pending-counter weight the entry releases when
	// its XACK removes it. Entry IDs are only unique per shard, hence the
	// compound key. Each map is touched only by worker w's goroutine
	// (PullBatch and Ack for w run on it), so no locking.
	frames []map[frameKey]*entryState

	// leases[w] throttles worker w's Extend heartbeats (same single-goroutine
	// ownership as frames[w]).
	leases []leaseState

	// RecoverIdle is the minimum idle time before an empty-handed pull
	// reclaims another consumer's pending entry (recoverStale only). Zero
	// means 8× the pull timeout. Entries sitting in a healthy worker's
	// prefetch buffer look idle to XAUTOCLAIM, so values below a batch's
	// worst-case residency trade duplicate executions (safe under the
	// exactly-once fence, but wasted work) for faster failure recovery.
	RecoverIdle time.Duration

	// diag (set via SetDiagnosis; nil keeps the paths cold) journals the
	// recovery lifecycle — per-shard XAUTOCLAIM reclaims and lease
	// extensions — and attributes reclaimed tasks to their PE's Replays
	// counter.
	diag *diagnosis.Diag
}

// SetDiagnosis attaches the diagnosis plane the planners thread through.
func (t *RedisTransport) SetDiagnosis(d *diagnosis.Diag) { t.diag = d }

// frameKey identifies one pulled stream entry: entry IDs are server-local,
// so the shard index is part of the identity.
type frameKey struct {
	shard int
	id    string
}

// entryState is the per-stream-entry ack bookkeeping.
type entryState struct {
	// remaining counts delivered-but-unacked tasks of the entry.
	remaining int
	// tasks is the entry's non-poison task count — what the pending counter
	// loses when the entry's XACK confirms removal.
	tasks int
}

// leaseState is one worker's heartbeat throttle: the last extension time and
// the poll timeout of its latest pull (which sets the recovery idle
// threshold the heartbeat must stay under).
type leaseState struct {
	last    time.Time
	timeout time.Duration
}

// NewRedisTransport creates the consumer groups on every shard and wraps the
// cluster. With recoverStale, empty-handed pulls XAUTOCLAIM tasks whose
// consumer stopped acknowledging them (at-least-once execution), sweeping
// shard by shard. A Single-wrapped client reproduces the old single-server
// transport exactly.
func NewRedisTransport(cluster *redisclient.Cluster, keys RedisKeys, plan Plan, recoverStale bool) (*RedisTransport, error) {
	streams := []string{keys.Queue}
	for _, spec := range plan.Workers {
		if spec.Pinned() {
			streams = append(streams, keys.PrivKey(spec.PE, spec.Instance))
		}
	}
	err := cluster.Each(func(shard int, cl *redisclient.Client) error {
		for _, stream := range streams {
			if err := cl.XGroupCreate(stream, keys.Group, "0"); err != nil {
				return fmt.Errorf("runtime: create consumer group on shard %d: %w", shard, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	frames := make([]map[frameKey]*entryState, len(plan.Workers))
	for i := range frames {
		frames[i] = map[frameKey]*entryState{}
	}
	return &RedisTransport{
		cluster: cluster, keys: keys, plan: plan, recoverStale: recoverStale,
		frames: frames, leases: make([]leaseState, len(plan.Workers)),
	}, nil
}

// streamFor is the stream key worker w consumes: pool workers share the
// queue partitions, pinned workers own their private stream's partitions.
func (t *RedisTransport) streamFor(w int) string {
	spec := t.plan.Workers[w]
	if spec.Pinned() {
		return t.keys.PrivKey(spec.PE, spec.Instance)
	}
	return t.keys.Queue
}

// homeShard is the shard worker w blocking-reads: pinned workers wait on the
// ring home of their private stream (where unfenced pushes place frames),
// pool workers spread round-robin so the blocking load covers every shard.
func (t *RedisTransport) homeShard(w int) int {
	n := t.cluster.NumShards()
	spec := t.plan.Workers[w]
	if spec.Pinned() {
		return t.cluster.ShardFor(t.keys.PrivKey(spec.PE, spec.Instance))
	}
	return w % n
}

// shardCmds accumulates one shard's slice of a push batch.
type shardCmds struct {
	// counted is the batch's non-poison task count landing on the shard —
	// the shard's pending-counter increment.
	counted int
	cmds    [][]string
}

// Push implements Transport. Each shard's pending counter is incremented
// before any task on any shard becomes readable, preserving the
// sum(pending) == 0 ⇒ fully drained invariant across the whole batch: when
// the batch spans shards, the counter increments land as a first
// scatter-gather phase and the task entries only ship after every increment
// is durable (a task acked on a fast shard can then never outrun a slow
// shard's increment and expose a transient zero). A single-shard batch —
// always, at one shard — keeps the original one-pipeline fast path.
//
// Contiguous runs of pool tasks pack into a single stream entry each (one
// XADD per emit batch instead of one per task), round-robined across
// shards; a poison pill always gets its own entry so delivery order
// survives the packing and pills spread across consumers instead of riding
// one frame. Tasks sharing a private stream ship as a single batch frame in
// one XADD on the stream's home shard.
func (t *RedisTransport) Push(tasks ...Task) error {
	if t.closed.Load() {
		return errTransportClosed
	}
	batches, err := t.pushCmds(tasks, 0, -1)
	if err != nil || len(batches) == 0 {
		return err
	}
	if len(batches) == 1 {
		for shard, sc := range batches {
			_, err := t.cluster.Shard(shard).Pipeline(sc.assemble(t.keys.PendingKey))
			return err
		}
	}
	// Phase 1: pending increments on every involved shard — all durable
	// before any entry ships.
	err = t.cluster.Gather(func(shard int, cl *redisclient.Client) error {
		sc, ok := batches[shard]
		if !ok || sc.counted == 0 {
			return nil
		}
		_, err := cl.IncrBy(t.keys.PendingKey, int64(sc.counted))
		return err
	})
	if err != nil {
		return err
	}
	// Phase 2: the entry pipelines, scatter-gathered per shard.
	return t.cluster.Gather(func(shard int, cl *redisclient.Client) error {
		sc, ok := batches[shard]
		if !ok || len(sc.cmds) == 0 {
			return nil
		}
		_, err := cl.Pipeline(sc.cmds)
		return err
	})
}

// PushFenced implements FencedPusher: the whole output batch of one fenced
// Final — pending-counter increment, packed stream entries, private-stream
// frames — rides a single SINKAPPEND transaction gated on the delivery's
// task-gate ledger field inside the state hash. Either the gate records and
// every task lands, or the gate was already recorded (a duplicate Final) and
// nothing does. This is the emit half of exactly-once, atomic with the state
// fence that guards the mutations.
//
// Sharding is what makes the routing here load-bearing: SINKAPPEND is a
// single-server transaction, so the entire batch is placed on the shard that
// owns the gate's hash key — the co-location invariant. The gate, its ledger
// entry (fields of the same state hash) and the sink entries written here
// hash together by construction, because the state backend routes the hash
// by its {namespace} tag and this method routes by the same key through the
// same ring. It requires the transport and the state backend to share one
// cluster, which TaskGateRef only affirms when true.
//
// entryCap chunks the batch's pool tasks into stream entries of at most
// that many tasks (the caller's emit window). The transaction is atomic
// either way; without the cap the whole Final output would land as one
// packed entry and its downstream fan-out would serialize on whichever
// single consumer pulls it.
func (t *RedisTransport) PushFenced(hashKey, field string, entryCap int, tasks ...Task) (bool, error) {
	if t.closed.Load() {
		return false, errTransportClosed
	}
	gateShard := t.cluster.ShardFor(hashKey)
	batches, err := t.pushCmds(tasks, entryCap, gateShard)
	if err != nil {
		return false, err
	}
	var cmds [][]string
	if sc, ok := batches[gateShard]; ok {
		cmds = sc.assemble(t.keys.PendingKey)
	}
	// An empty batch still records the gate: a Final with no emissions must
	// be marked done exactly once too.
	return t.cluster.Shard(gateShard).SinkAppend(hashKey, field, cmds)
}

// assemble prepends the shard's pending-counter increment to its entry
// commands — the increment must execute first within the pipeline so the
// count is visible before any of the shard's tasks are readable.
func (sc *shardCmds) assemble(pendingKey string) [][]string {
	if sc.counted == 0 {
		return sc.cmds
	}
	out := make([][]string, 0, len(sc.cmds)+1)
	out = append(out, []string{"INCRBY", pendingKey, strconv.Itoa(sc.counted)})
	return append(out, sc.cmds...)
}

// pushCmds packs a task batch into per-shard command sequences: one XADD per
// contiguous pool run (poison pills get their own entries), one XADD batch
// frame per private stream. entryCap > 0 bounds the tasks packed into one
// pool-run entry. fixedShard >= 0 pins every command to that shard (the
// fenced single-shard path); otherwise pool entries round-robin and private
// frames follow the ring.
func (t *RedisTransport) pushCmds(tasks []Task, entryCap, fixedShard int) (map[int]*shardCmds, error) {
	batches := map[int]*shardCmds{}
	shardOf := func(key string) int {
		if fixedShard >= 0 {
			return fixedShard
		}
		return t.cluster.ShardFor(key)
	}
	nextPool := func() int {
		if fixedShard >= 0 {
			return fixedShard
		}
		return int((t.rr.Add(1) - 1) % uint64(t.cluster.NumShards()))
	}
	get := func(shard int) *shardCmds {
		sc := batches[shard]
		if sc == nil {
			sc = &shardCmds{}
			batches[shard] = sc
		}
		return sc
	}
	buf := codec.GetBuffer()
	defer buf.Release()
	var run []Task
	flushRun := func() error {
		if len(run) == 0 {
			return nil
		}
		b, err := codec.AppendBatch(buf.B[:0], run)
		buf.B = b[:0]
		if err != nil {
			return err
		}
		sc := get(nextPool())
		sc.cmds = append(sc.cmds, []string{"XADD", t.keys.Queue, "*", taskField, string(b)})
		sc.counted += len(run)
		run = run[:0]
		return nil
	}
	var priv map[string][]Task
	for _, task := range tasks {
		if task.Instance >= 0 {
			key := t.keys.PrivKey(task.PE, task.Instance)
			if priv == nil {
				priv = map[string][]Task{}
			}
			priv[key] = append(priv[key], task)
			continue
		}
		if task.Poison {
			if err := flushRun(); err != nil {
				return nil, err
			}
			b, err := codec.AppendTask(buf.B[:0], task)
			buf.B = b[:0]
			if err != nil {
				return nil, err
			}
			sc := get(nextPool())
			sc.cmds = append(sc.cmds, []string{"XADD", t.keys.Queue, "*", taskField, string(b)})
			continue
		}
		run = append(run, task)
		if entryCap > 0 && len(run) >= entryCap {
			if err := flushRun(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushRun(); err != nil {
		return nil, err
	}
	for key, group := range priv {
		b, err := codec.AppendBatch(buf.B[:0], group)
		buf.B = b[:0]
		if err != nil {
			return nil, err
		}
		sc := get(shardOf(key))
		sc.cmds = append(sc.cmds, []string{"XADD", key, "*", taskField, string(b)})
		for _, task := range group {
			if !task.Poison {
				sc.counted++
			}
		}
	}
	return batches, nil
}

// PullBatch implements Transport. Every worker consumes its stream's
// partitions home-shard-first: a non-blocking sweep over all shards
// (home, home+1, …) picks up work wherever routing placed it, then an
// empty-handed worker parks in a blocking XREADGROUP on its home shard for
// the poll timeout. Each entry may itself be a packed batch frame, so the
// returned batch can exceed max — max is advisory.
//
// Because stream deliveries are irreversible (entries enter this consumer's
// PEL on their shard), a batch read may carry several poison pills; the
// worker loop re-routes any surplus to its siblings.
func (t *RedisTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if t.closed.Load() {
		return nil, errTransportClosed
	}
	if max < 1 {
		max = 1
	}
	stream := t.streamFor(w)
	consumer := fmt.Sprintf("w%d", w)
	home := t.homeShard(w)
	n := t.cluster.NumShards()
	t.leases[w].timeout = timeout

	var entries []redisclient.StreamEntry
	shard := home
	for i := 0; i < n; i++ {
		s := (home + i) % n
		es, err := t.cluster.Shard(s).XReadGroup(t.keys.Group, consumer, max, 0, stream)
		if err != nil {
			return nil, t.maybeClosed(err)
		}
		if len(es) > 0 {
			entries, shard = es, s
			break
		}
	}
	if len(entries) == 0 && timeout > 0 {
		es, err := t.cluster.Shard(home).XReadGroup(t.keys.Group, consumer, max, timeout, stream)
		if err != nil {
			return nil, t.maybeClosed(err)
		}
		entries = es
	}
	reclaimed := false
	if len(entries) == 0 && t.recoverStale {
		// Reclaim tasks whose consumer stopped acknowledging them (crashed
		// or descheduled), sweeping shard by shard: XAUTOCLAIM moves idle
		// pending entries of the shard's partition into this worker's PEL so
		// the stream's at-least-once guarantee actually holds under failures.
		for i := 0; i < n; i++ {
			s := (home + i) % n
			_, claimed, err := t.cluster.Shard(s).XAutoClaim(stream, t.keys.Group, consumer, t.minIdle(timeout), "0-0", max)
			if err == nil && len(claimed) > 0 {
				entries, shard, reclaimed = claimed, s, true
				break
			}
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	// Each entry may be a packed frame; fan its tasks out as one env per
	// task, all sharing the entry's (shard, ID), and register the entry so
	// Ack can XACK it once the last of them is released. A re-delivered
	// entry (XAUTOCLAIM bouncing it back to this worker) resets its
	// bookkeeping — redelivery means full re-execution.
	reg := t.frames[w]
	envs := make([]Env, 0, len(entries))
	for _, e := range entries {
		tasks, err := codec.DecodeBatch(e.Fields[taskField])
		if err != nil {
			return nil, err
		}
		nonPoison := 0
		for _, task := range tasks {
			if !task.Poison {
				nonPoison++
			}
			if reclaimed && t.diag != nil && !task.Poison {
				// Cold path (failure recovery): per-PE replay attribution may
				// take the ledger lock per task.
				t.diag.PE(task.PE).Replays.Inc()
			}
			envs = append(envs, Env{Task: task, AckID: e.ID, Shard: shard})
		}
		reg[frameKey{shard: shard, id: e.ID}] = &entryState{remaining: len(tasks), tasks: nonPoison}
	}
	if reclaimed && t.diag != nil {
		t.diag.Log(diagnosis.EvReclaim, w, "",
			fmt.Sprintf("%d stalled entries adopted on shard %d", len(entries), shard), int64(len(envs)))
	}
	return envs, nil
}

// ackShard accumulates one shard's slice of an Ack call.
type ackShard struct {
	// direct counts non-poison envs without a delivery ID (duplicate
	// deliveries stripped of their entry identity): not claimable, their
	// decrement lands as-is.
	direct int
	// streamTasks counts the non-poison stream tasks released by this call.
	streamTasks int
	completed   []doneEntry
}

// Ack implements Transport at entry-range granularity: each env releases one
// task of its stream entry, and the entry's XACK is issued on the entry's
// own shard only when every task delivered from it has been released.
// Unfenced, one pipelined round trip per involved shard carries the
// multi-ID XACK of the shard's completed entries plus a single
// pending-counter decrement for its released tasks. A shard's decrement
// always lands on the shard whose counter the task incremented — the env's
// Shard, stamped at pull time.
//
// With recoverStale on, stream acknowledgements are fenced by consumer: an
// XAUTOCLAIM may have moved a delivery to another consumer while this
// worker was still processing it, and the original's late XACK + decrement
// landing anyway would under-count the shard's pending counter — the
// coordinator would observe a drained transport while the claimed task is
// still in flight and start terminating early. fencedAck closes this with
// one atomic FENCEXACK per shard: ownership check, PEL removal and counter
// decrement in a single server-side step, no window between them.
func (t *RedisTransport) Ack(w int, envs ...Env) error {
	reg := t.frames[w]
	shards := map[int]*ackShard{}
	get := func(shard int) *ackShard {
		a := shards[shard]
		if a == nil {
			a = &ackShard{}
			shards[shard] = a
		}
		return a
	}
	// Envs from one entry arrive contiguously (PullBatch fans frames out in
	// order and the worker loop preserves it), so a linear run-group scan
	// replaces a map.
	for i := 0; i < len(envs); {
		env := envs[i]
		if env.AckID == "" {
			if !env.Poison {
				get(env.Shard).direct++
			}
			i++
			continue
		}
		id, shard := env.AckID, env.Shard
		acked, nonPoison := 0, 0
		for i < len(envs) && envs[i].AckID == id && envs[i].Shard == shard {
			acked++
			if !envs[i].Poison {
				nonPoison++
			}
			i++
		}
		a := get(shard)
		a.streamTasks += nonPoison
		es, ok := reg[frameKey{shard: shard, id: id}]
		if !ok {
			// Not in this worker's registry: a duplicate delivery or a
			// repeated ack of an entry already completed. Treat it as a
			// self-contained completed entry weighted by what this call saw;
			// under fencing the ownership filter and the XACK removal count
			// decide whether anything actually lands.
			a.completed = append(a.completed, doneEntry{id: id, tasks: nonPoison})
			continue
		}
		es.remaining -= acked
		if es.remaining <= 0 {
			a.completed = append(a.completed, doneEntry{id: id, tasks: es.tasks})
			delete(reg, frameKey{shard: shard, id: id})
		}
	}
	stream := t.streamFor(w)
	for shard, a := range shards {
		if err := t.ackShard(w, shard, stream, a); err != nil {
			return t.maybeClosed(err)
		}
	}
	return nil
}

// ackShard releases one shard's slice of an Ack call.
func (t *RedisTransport) ackShard(w, shard int, stream string, a *ackShard) error {
	if t.recoverStale && (len(a.completed) > 0 || a.streamTasks > 0) {
		return t.fencedAck(w, shard, stream, a.direct, a.completed)
	}
	cl := t.cluster.Shard(shard)
	cmds := make([][]string, 0, 2)
	if len(a.completed) > 0 {
		xack := make([]string, 0, len(a.completed)+3)
		xack = append(xack, "XACK", stream, t.keys.Group)
		for _, d := range a.completed {
			xack = append(xack, d.id)
		}
		cmds = append(cmds, xack)
	}
	if a.direct+a.streamTasks > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(-(a.direct + a.streamTasks))})
	}
	if len(cmds) == 0 {
		return nil
	}
	_, err := cl.Pipeline(cmds)
	return err
}

// doneEntry is a stream entry whose delivered tasks are all released:
// eligible for XACK, worth tasks pending-counter units on removal.
type doneEntry struct {
	id    string
	tasks int
}

// fencedAck releases one shard's completed entries under at-least-once
// replay with one FENCEXACK compound command: ownership filter, PEL removal
// and pending-counter decrement execute as a single atomic server-side step.
// Two properties fall out directly:
//
//   - no double decrement: the server removes each entry from the PEL and
//     credits its packed task weight in the same atomic section, so however
//     duplicate ackers interleave, exactly one decrement lands per entry;
//   - no late release at all: an entry is acknowledged only while this
//     consumer owns it per the server's own PEL at execution time, so a
//     delivery claimed away mid-processing stays pending until its new
//     owner releases it. The old read-filter-then-XACK sequence left a
//     one-round-trip window where a claim could slip between the check and
//     the ack; the compound command has no between.
//
// Under fencing, stream tasks therefore decrement in whole-entry units when
// their entry completes — never per env — so a partially acked frame holds
// its full weight on the pending counter until its last task releases.
// The command is retried by the client only when its direct decrement is
// zero (the PEL half is ownership-fenced and idempotent; the direct counter
// adjustment is not).
func (t *RedisTransport) fencedAck(w, shard int, stream string, direct int, completed []doneEntry) error {
	if direct == 0 && len(completed) == 0 {
		return nil
	}
	ids := make([]string, len(completed))
	weights := make([]int64, len(completed))
	for i, d := range completed {
		ids[i] = d.id
		weights[i] = int64(d.tasks)
	}
	_, _, _, err := t.cluster.Shard(shard).FenceXAck(
		stream, t.keys.Group, fmt.Sprintf("w%d", w),
		t.keys.PendingKey, int64(direct), ids, weights)
	return err
}

// minIdle resolves the recovery idle threshold for a pull with the given
// poll timeout.
func (t *RedisTransport) minIdle(timeout time.Duration) time.Duration {
	if t.RecoverIdle > 0 {
		return t.RecoverIdle
	}
	return 8 * timeout
}

// Extend implements LeaseExtender: it refreshes the idle clock of every
// stream entry worker w still owns, via a self-targeted XCLAIM ... JUSTID
// on each shard holding some of them. Packing made this load-bearing — the
// unit XAUTOCLAIM reclaims is a whole frame whose processing time scales
// with its task count, so without a progress heartbeat any frame slower
// than the idle threshold would be claimed away mid-processing, redelivered
// in full to the claimer, go stale there too, and ping-pong between live
// workers forever (the fenced pending counter, decremented only by the XACK
// that removes an entry, would never drain). With the heartbeat, reclaim
// keys on lack of progress rather than lack of completion: a worker that
// dies or stalls between tasks stops extending and its frames age out
// exactly as before.
//
// The ownership read and the claim are not atomic: an entry claimed away
// between them is stolen back. That one-round-trip race is safe — the
// thief's duplicate execution is absorbed by the state fence, the atomic
// FENCEXACK lets exactly one owner release the entry, and both contenders
// are by construction alive.
// Heartbeats are throttled to a quarter of the idle threshold, so the
// steady-state cost is two round trips per threshold-quarter, not per task.
func (t *RedisTransport) Extend(w int) error {
	if !t.recoverStale || t.closed.Load() {
		return nil
	}
	reg := t.frames[w]
	if len(reg) == 0 {
		return nil
	}
	ls := &t.leases[w]
	minIdle := t.minIdle(ls.timeout)
	if minIdle <= 0 {
		return nil
	}
	now := time.Now()
	if !ls.last.IsZero() && now.Sub(ls.last) < minIdle/4 {
		return nil
	}
	ls.last = now
	stream := t.streamFor(w)
	consumer := fmt.Sprintf("w%d", w)
	perShard := map[int]int{}
	for fk := range reg {
		perShard[fk.shard]++
	}
	extended := int64(0)
	for shard, count := range perShard {
		cl := t.cluster.Shard(shard)
		owned, err := cl.XPendingIDs(stream, t.keys.Group, consumer, count+256)
		if err != nil {
			return t.maybeClosed(err)
		}
		ids := owned[:0]
		for _, id := range owned {
			if _, ok := reg[frameKey{shard: shard, id: id}]; ok {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			continue
		}
		if _, err := cl.XClaimJustID(stream, t.keys.Group, consumer, 0, ids); err != nil {
			return t.maybeClosed(err)
		}
		extended += int64(len(ids))
	}
	if extended > 0 && t.diag != nil {
		t.diag.Log(diagnosis.EvLease, w, "", "heartbeat", extended)
	}
	return nil
}

// QueueDepths implements DepthReporter: each partition's entry count —
// the pool stream plus one "priv:<pe>:<i>" stream per pinned instance. On a
// multi-shard cluster every gauge is reported per shard under an "s<i>:"
// prefix ("s0:stream", "s1:priv:pe:0", …) so a hot shard is visible as
// such; a single-shard cluster keeps the legacy unprefixed names. Sampling
// errors skip the affected entry (the gauge set shrinks rather than failing
// the sample).
func (t *RedisTransport) QueueDepths() map[string]int64 {
	out := map[string]int64{}
	n := t.cluster.NumShards()
	for s := 0; s < n; s++ {
		cl := t.cluster.Shard(s)
		prefix := ""
		if n > 1 {
			prefix = fmt.Sprintf("s%d:", s)
		}
		if v, err := cl.XLen(t.keys.Queue); err == nil {
			out[prefix+"stream"] = v
		}
		for _, spec := range t.plan.Workers {
			if !spec.Pinned() {
				continue
			}
			if v, err := cl.XLen(t.keys.PrivKey(spec.PE, spec.Instance)); err == nil {
				out[fmt.Sprintf("%spriv:%s:%d", prefix, spec.PE, spec.Instance)] = v
			}
		}
	}
	return out
}

// Pending implements Transport: the scatter-gathered sum of the per-shard
// outstanding-task counters. The sum is safe as a termination signal
// because a task's decrement (on its own shard, at ack time) is only issued
// after its children's increments (on whatever shards routing chose) have
// durably landed — a transient cross-shard zero cannot hide in-flight work.
func (t *RedisTransport) Pending() (int64, error) {
	total, err := t.cluster.SumInt(func(_ int, cl *redisclient.Client) (int64, error) {
		s, ok, err := cl.Get(t.keys.PendingKey)
		if err != nil || !ok {
			return 0, err
		}
		return strconv.ParseInt(s, 10, 64)
	})
	if err != nil {
		return 0, t.maybeClosed(err)
	}
	return total, nil
}

// Done implements Transport. The cluster itself stays open — the planner
// owns it and still needs it for cleanup.
func (t *RedisTransport) Done() error {
	t.closed.Store(true)
	return nil
}

// Cleanup removes the run's queue, counter and private-stream keys from
// every shard.
func (t *RedisTransport) Cleanup(g *graph.Graph) {
	keys := []string{t.keys.Queue, t.keys.PendingKey}
	for _, spec := range t.plan.Workers {
		if spec.Pinned() {
			keys = append(keys, t.keys.PrivKey(spec.PE, spec.Instance))
		}
	}
	_ = t.cluster.Each(func(_ int, cl *redisclient.Client) error {
		_, _ = cl.Del(keys...)
		return nil
	})
}

// maybeClosed maps client errors after shutdown onto the closed sentinel so
// the worker loop unwinds silently instead of reporting a spurious failure.
func (t *RedisTransport) maybeClosed(err error) error {
	if err != nil && t.closed.Load() {
		return errTransportClosed
	}
	return err
}
