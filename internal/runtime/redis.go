package runtime

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/graph"
	"repro/internal/redisclient"
)

// runNonce disambiguates concurrent runs against one server.
var runNonce atomic.Int64

// RedisKeys holds the Redis key names of one execution.
type RedisKeys struct {
	// Prefix namespaces every key of the run.
	Prefix string
	// Queue is the global stream consumed through Group.
	Queue string
	// Group is the consumer group name.
	Group string
	// PendingKey is the outstanding-task counter.
	PendingKey string
}

// NewRunKeys derives a fresh key namespace for one run.
func NewRunKeys(workflow string, seed int64) RedisKeys {
	prefix := fmt.Sprintf("d4p:%s:%d:%d", workflow, seed, runNonce.Add(1))
	return RedisKeys{
		Prefix:     prefix,
		Queue:      prefix + ":queue",
		Group:      "workers",
		PendingKey: prefix + ":pending",
	}
}

// PrivKey is the private queue (Redis list) of one pinned PE instance.
func (k RedisKeys) PrivKey(pe string, instance int) string {
	return fmt.Sprintf("%s:priv:%s:%d", k.Prefix, pe, instance)
}

// taskField is the stream entry field carrying the encoded task.
const taskField = "task"

// RedisTransport carries tasks through a Redis server: pool tasks on a
// stream consumed by a consumer group (consumer "w<index>" per pool worker),
// pinned tasks on per-instance private lists — the paper's dyn_redis and
// hybrid_redis storage layout behind one Transport.
//
// Batched pushes are pipelined: one INCRBY for the pending counter plus all
// XADD/RPUSH commands share a single network round trip, which is where
// Options.EmitBatch buys its throughput on this transport.
type RedisTransport struct {
	cl           *redisclient.Client
	keys         RedisKeys
	plan         Plan
	recoverStale bool
	closed       atomic.Bool
}

// NewRedisTransport creates the consumer group and wraps the client. With
// recoverStale, empty-handed pool pulls XAUTOCLAIM tasks whose consumer
// stopped acknowledging them (at-least-once execution).
func NewRedisTransport(cl *redisclient.Client, keys RedisKeys, plan Plan, recoverStale bool) (*RedisTransport, error) {
	if err := cl.XGroupCreate(keys.Queue, keys.Group, "0"); err != nil {
		return nil, fmt.Errorf("runtime: create consumer group: %w", err)
	}
	return &RedisTransport{cl: cl, keys: keys, plan: plan, recoverStale: recoverStale}, nil
}

// Push implements Transport. The pending counter is incremented before any
// task becomes readable, preserving the pending == 0 ⇒ fully drained
// invariant across the whole pipelined batch. Pool tasks become one stream
// entry each (the consumer group acknowledges per entry); tasks sharing a
// private list ship as a single batch frame in one RPUSH element, so a
// batched emit pays one list element and one (de)serialization setup per
// destination instead of one per task.
func (t *RedisTransport) Push(tasks ...Task) error {
	if t.closed.Load() {
		return errTransportClosed
	}
	cmds := make([][]string, 0, len(tasks)+1)
	counted := 0
	for _, task := range tasks {
		if !task.Poison {
			counted++
		}
	}
	if counted > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(counted)})
	}
	var priv map[string][]Task
	for _, task := range tasks {
		if task.Instance >= 0 {
			key := t.keys.PrivKey(task.PE, task.Instance)
			if priv == nil {
				priv = map[string][]Task{}
			}
			priv[key] = append(priv[key], task)
			continue
		}
		payload, err := codec.Encode(task)
		if err != nil {
			return err
		}
		cmds = append(cmds, []string{"XADD", t.keys.Queue, "*", taskField, payload})
	}
	for key, group := range priv {
		payload, err := codec.EncodeBatch(group)
		if err != nil {
			return err
		}
		cmds = append(cmds, []string{"RPUSH", key, payload})
	}
	_, err := t.cl.Pipeline(cmds)
	return err
}

// PullBatch implements Transport. Pool workers read XREADGROUP COUNT max;
// pinned workers block on their private list and top the window up with one
// non-blocking LPOP count round trip (each popped element may itself be a
// batch frame, so the returned batch can exceed max — max is advisory).
// Because stream deliveries are irreversible (entries enter this consumer's
// PEL), a batch read off the stream may carry several poison pills; the
// worker loop re-routes any surplus to its siblings.
func (t *RedisTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if t.closed.Load() {
		return nil, errTransportClosed
	}
	if max < 1 {
		max = 1
	}
	spec := t.plan.Workers[w]
	if spec.Pinned() {
		key := t.keys.PrivKey(spec.PE, spec.Instance)
		_, payload, ok, err := t.cl.BLPop(timeout, key)
		if err != nil || !ok {
			return nil, t.maybeClosed(err)
		}
		tasks, err := codec.DecodeBatch(payload)
		if err != nil {
			return nil, err
		}
		if len(tasks) < max {
			frames, err := t.cl.LPopCount(key, max-len(tasks))
			if err != nil {
				return nil, t.maybeClosed(err)
			}
			for _, f := range frames {
				more, err := codec.DecodeBatch(f)
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, more...)
			}
		}
		envs := make([]Env, len(tasks))
		for i, task := range tasks {
			envs[i] = Env{Task: task}
		}
		return envs, nil
	}
	consumer := fmt.Sprintf("w%d", w)
	entries, err := t.cl.XReadGroup(t.keys.Group, consumer, max, timeout, t.keys.Queue)
	if err != nil {
		return nil, t.maybeClosed(err)
	}
	if len(entries) == 0 && t.recoverStale {
		// Reclaim tasks whose consumer stopped acknowledging them (crashed
		// or descheduled). XAUTOCLAIM moves idle pending entries into this
		// worker's PEL so the stream's at-least-once guarantee actually
		// holds under failures.
		_, claimed, err := t.cl.XAutoClaim(t.keys.Queue, t.keys.Group, consumer, 8*timeout, "0-0", max)
		if err == nil && len(claimed) > 0 {
			entries = claimed
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	envs := make([]Env, 0, len(entries))
	for _, e := range entries {
		task, err := codec.Decode(e.Fields[taskField])
		if err != nil {
			return nil, err
		}
		envs = append(envs, Env{Task: task, AckID: e.ID})
	}
	return envs, nil
}

// Ack implements Transport: one pipelined round trip releases the whole
// batch — a single multi-ID XACK for the stream deliveries plus a single
// pending-counter decrement for every non-poison task.
func (t *RedisTransport) Ack(w int, envs ...Env) error {
	var ids []string
	counted := 0
	for _, env := range envs {
		if env.AckID != "" {
			ids = append(ids, env.AckID)
		}
		if !env.Poison {
			counted++
		}
	}
	cmds := make([][]string, 0, 2)
	if len(ids) > 0 {
		cmds = append(cmds, append([]string{"XACK", t.keys.Queue, t.keys.Group}, ids...))
	}
	if counted > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(-counted)})
	}
	if len(cmds) == 0 {
		return nil
	}
	_, err := t.cl.Pipeline(cmds)
	return t.maybeClosed(err)
}

// Pending implements Transport.
func (t *RedisTransport) Pending() (int64, error) {
	s, ok, err := t.cl.Get(t.keys.PendingKey)
	if err != nil || !ok {
		return 0, t.maybeClosed(err)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Done implements Transport. The client itself stays open — the planner owns
// it and still needs it for cleanup.
func (t *RedisTransport) Done() error {
	t.closed.Store(true)
	return nil
}

// Cleanup removes the run's queue, counter and private-list keys.
func (t *RedisTransport) Cleanup(g *graph.Graph) {
	keys := []string{t.keys.Queue, t.keys.PendingKey}
	for _, spec := range t.plan.Workers {
		if spec.Pinned() {
			keys = append(keys, t.keys.PrivKey(spec.PE, spec.Instance))
		}
	}
	_, _ = t.cl.Del(keys...)
}

// maybeClosed maps client errors after shutdown onto the closed sentinel so
// the worker loop unwinds silently instead of reporting a spurious failure.
func (t *RedisTransport) maybeClosed(err error) error {
	if err != nil && t.closed.Load() {
		return errTransportClosed
	}
	return err
}
