package runtime

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/graph"
	"repro/internal/redisclient"
)

// runNonce disambiguates concurrent runs against one server.
var runNonce atomic.Int64

// RedisKeys holds the Redis key names of one execution.
type RedisKeys struct {
	// Prefix namespaces every key of the run.
	Prefix string
	// Queue is the global stream consumed through Group.
	Queue string
	// Group is the consumer group name.
	Group string
	// PendingKey is the outstanding-task counter.
	PendingKey string
}

// NewRunKeys derives a fresh key namespace for one run.
func NewRunKeys(workflow string, seed int64) RedisKeys {
	prefix := fmt.Sprintf("d4p:%s:%d:%d", workflow, seed, runNonce.Add(1))
	return RedisKeys{
		Prefix:     prefix,
		Queue:      prefix + ":queue",
		Group:      "workers",
		PendingKey: prefix + ":pending",
	}
}

// PrivKey is the private queue (Redis list) of one pinned PE instance.
func (k RedisKeys) PrivKey(pe string, instance int) string {
	return fmt.Sprintf("%s:priv:%s:%d", k.Prefix, pe, instance)
}

// taskField is the stream entry field carrying the encoded task.
const taskField = "task"

// RedisTransport carries tasks through a Redis server: pool tasks on a
// stream consumed by a consumer group (consumer "w<index>" per pool worker),
// pinned tasks on per-instance private lists — the paper's dyn_redis and
// hybrid_redis storage layout behind one Transport.
//
// Batched pushes are pipelined: one INCRBY for the pending counter plus all
// XADD/RPUSH commands share a single network round trip, which is where
// Options.EmitBatch buys its throughput on this transport.
type RedisTransport struct {
	cl           *redisclient.Client
	keys         RedisKeys
	plan         Plan
	recoverStale bool
	closed       atomic.Bool

	// RecoverIdle is the minimum idle time before an empty-handed pull
	// reclaims another consumer's pending entry (recoverStale only). Zero
	// means 8× the pull timeout. Entries sitting in a healthy worker's
	// prefetch buffer look idle to XAUTOCLAIM, so values below a batch's
	// worst-case residency trade duplicate executions (safe under the
	// exactly-once fence, but wasted work) for faster failure recovery.
	RecoverIdle time.Duration
}

// NewRedisTransport creates the consumer group and wraps the client. With
// recoverStale, empty-handed pool pulls XAUTOCLAIM tasks whose consumer
// stopped acknowledging them (at-least-once execution).
func NewRedisTransport(cl *redisclient.Client, keys RedisKeys, plan Plan, recoverStale bool) (*RedisTransport, error) {
	if err := cl.XGroupCreate(keys.Queue, keys.Group, "0"); err != nil {
		return nil, fmt.Errorf("runtime: create consumer group: %w", err)
	}
	return &RedisTransport{cl: cl, keys: keys, plan: plan, recoverStale: recoverStale}, nil
}

// Push implements Transport. The pending counter is incremented before any
// task becomes readable, preserving the pending == 0 ⇒ fully drained
// invariant across the whole pipelined batch. Pool tasks become one stream
// entry each (the consumer group acknowledges per entry); tasks sharing a
// private list ship as a single batch frame in one RPUSH element, so a
// batched emit pays one list element and one (de)serialization setup per
// destination instead of one per task.
func (t *RedisTransport) Push(tasks ...Task) error {
	if t.closed.Load() {
		return errTransportClosed
	}
	cmds := make([][]string, 0, len(tasks)+1)
	counted := 0
	for _, task := range tasks {
		if !task.Poison {
			counted++
		}
	}
	if counted > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(counted)})
	}
	var priv map[string][]Task
	for _, task := range tasks {
		if task.Instance >= 0 {
			key := t.keys.PrivKey(task.PE, task.Instance)
			if priv == nil {
				priv = map[string][]Task{}
			}
			priv[key] = append(priv[key], task)
			continue
		}
		payload, err := codec.Encode(task)
		if err != nil {
			return err
		}
		cmds = append(cmds, []string{"XADD", t.keys.Queue, "*", taskField, payload})
	}
	for key, group := range priv {
		payload, err := codec.EncodeBatch(group)
		if err != nil {
			return err
		}
		cmds = append(cmds, []string{"RPUSH", key, payload})
	}
	_, err := t.cl.Pipeline(cmds)
	return err
}

// PullBatch implements Transport. Pool workers read XREADGROUP COUNT max;
// pinned workers block on their private list and top the window up with one
// non-blocking LPOP count round trip (each popped element may itself be a
// batch frame, so the returned batch can exceed max — max is advisory).
// Because stream deliveries are irreversible (entries enter this consumer's
// PEL), a batch read off the stream may carry several poison pills; the
// worker loop re-routes any surplus to its siblings.
func (t *RedisTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if t.closed.Load() {
		return nil, errTransportClosed
	}
	if max < 1 {
		max = 1
	}
	spec := t.plan.Workers[w]
	if spec.Pinned() {
		key := t.keys.PrivKey(spec.PE, spec.Instance)
		_, payload, ok, err := t.cl.BLPop(timeout, key)
		if err != nil || !ok {
			return nil, t.maybeClosed(err)
		}
		tasks, err := codec.DecodeBatch(payload)
		if err != nil {
			return nil, err
		}
		if len(tasks) < max {
			frames, err := t.cl.LPopCount(key, max-len(tasks))
			if err != nil {
				return nil, t.maybeClosed(err)
			}
			for _, f := range frames {
				more, err := codec.DecodeBatch(f)
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, more...)
			}
		}
		envs := make([]Env, len(tasks))
		for i, task := range tasks {
			envs[i] = Env{Task: task}
		}
		return envs, nil
	}
	consumer := fmt.Sprintf("w%d", w)
	entries, err := t.cl.XReadGroup(t.keys.Group, consumer, max, timeout, t.keys.Queue)
	if err != nil {
		return nil, t.maybeClosed(err)
	}
	if len(entries) == 0 && t.recoverStale {
		// Reclaim tasks whose consumer stopped acknowledging them (crashed
		// or descheduled). XAUTOCLAIM moves idle pending entries into this
		// worker's PEL so the stream's at-least-once guarantee actually
		// holds under failures.
		minIdle := t.RecoverIdle
		if minIdle <= 0 {
			minIdle = 8 * timeout
		}
		_, claimed, err := t.cl.XAutoClaim(t.keys.Queue, t.keys.Group, consumer, minIdle, "0-0", max)
		if err == nil && len(claimed) > 0 {
			entries = claimed
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	envs := make([]Env, 0, len(entries))
	for _, e := range entries {
		task, err := codec.Decode(e.Fields[taskField])
		if err != nil {
			return nil, err
		}
		envs = append(envs, Env{Task: task, AckID: e.ID})
	}
	return envs, nil
}

// Ack implements Transport: one pipelined round trip releases the whole
// batch — a single multi-ID XACK for the stream deliveries plus a single
// pending-counter decrement for every non-poison task.
//
// With recoverStale on, stream acknowledgements are fenced by consumer: an
// XAUTOCLAIM may have moved a delivery to another consumer while this
// worker was still processing it, and the original's late XACK + decrement
// landing anyway would under-count the shared pending counter — the
// coordinator would observe a drained transport while the claimed task is
// still in flight and start terminating early. See fencedAck for the two
// properties (exact decrements unconditionally; late releases narrowed to
// a one-round-trip window) and their limits.
func (t *RedisTransport) Ack(w int, envs ...Env) error {
	var ids []string
	counted := 0
	for _, env := range envs {
		if env.AckID != "" {
			ids = append(ids, env.AckID)
		}
		if !env.Poison {
			counted++
		}
	}
	if t.recoverStale && len(ids) > 0 {
		return t.maybeClosed(t.fencedAck(w, envs, counted))
	}
	cmds := make([][]string, 0, 2)
	if len(ids) > 0 {
		cmds = append(cmds, append([]string{"XACK", t.keys.Queue, t.keys.Group}, ids...))
	}
	if counted > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(-counted)})
	}
	if len(cmds) == 0 {
		return nil
	}
	_, err := t.cl.Pipeline(cmds)
	return t.maybeClosed(err)
}

// fencedAck releases a batch under at-least-once replay. Two properties
// address the two halves of the late-ack hazard:
//
//   - no double decrement, unconditionally: every counter decrement is
//     backed by the server-confirmed XACK removal count — XACK removal is
//     atomic, so however checks and claims interleave, exactly one acker's
//     XACK removes each entry and exactly one decrement lands;
//   - no late release, up to one round trip: only entries this consumer
//     still owns per a fresh PEL read are acknowledged, so a delivery
//     claimed away while this worker was processing (the seconds-wide
//     window the hazard lives in) stays pending until its new owner
//     releases it. XACK itself carries no consumer condition, so a claim
//     landing between the PEL read and the XACK still releases the entry
//     early — the owned-filter narrows that window from the whole
//     processing time to one round trip; duplicates executing past a drain
//     are then absorbed by the state fence, not by the counter.
//
// counted is the batch's non-poison task count including non-stream
// (private-list) deliveries, which are not claimable and decrement as
// before.
func (t *RedisTransport) fencedAck(w int, envs []Env, counted int) error {
	owned, err := t.cl.XPendingIDs(t.keys.Queue, t.keys.Group, fmt.Sprintf("w%d", w), len(envs)+256)
	if err != nil {
		return err
	}
	ownedSet := make(map[string]bool, len(owned))
	for _, id := range owned {
		ownedSet[id] = true
	}
	// Tasks and pills are acknowledged as separate XACKs (one pipeline) so
	// pill removals never count toward the task decrement.
	var taskIDs, pillIDs []string
	for _, env := range envs {
		if env.AckID == "" {
			continue
		}
		if !env.Poison {
			counted-- // stream tasks decrement via the XACK reply below
		}
		if !ownedSet[env.AckID] {
			continue // claimed away: the new owner releases it
		}
		if env.Poison {
			pillIDs = append(pillIDs, env.AckID)
		} else {
			taskIDs = append(taskIDs, env.AckID)
		}
	}
	cmds := make([][]string, 0, 2)
	if len(taskIDs) > 0 {
		cmds = append(cmds, append([]string{"XACK", t.keys.Queue, t.keys.Group}, taskIDs...))
	}
	if len(pillIDs) > 0 {
		cmds = append(cmds, append([]string{"XACK", t.keys.Queue, t.keys.Group}, pillIDs...))
	}
	acked := int64(0)
	if len(cmds) > 0 {
		replies, err := t.cl.Pipeline(cmds)
		if err != nil {
			return err
		}
		if len(taskIDs) > 0 {
			acked = replies[0].Int
		}
	}
	if dec := int64(counted) + acked; dec > 0 {
		_, err = t.cl.IncrBy(t.keys.PendingKey, -dec)
		return err
	}
	return nil
}

// QueueDepths implements DepthReporter: the global stream's entry count plus
// one "priv:<pe>:<i>" list length per pinned instance. Sampling errors skip
// the affected entry (the gauge set shrinks rather than failing the sample).
func (t *RedisTransport) QueueDepths() map[string]int64 {
	out := map[string]int64{}
	if n, err := t.cl.XLen(t.keys.Queue); err == nil {
		out["stream"] = n
	}
	for _, spec := range t.plan.Workers {
		if !spec.Pinned() {
			continue
		}
		if n, err := t.cl.LLen(t.keys.PrivKey(spec.PE, spec.Instance)); err == nil {
			out[fmt.Sprintf("priv:%s:%d", spec.PE, spec.Instance)] = n
		}
	}
	return out
}

// Pending implements Transport.
func (t *RedisTransport) Pending() (int64, error) {
	s, ok, err := t.cl.Get(t.keys.PendingKey)
	if err != nil || !ok {
		return 0, t.maybeClosed(err)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Done implements Transport. The client itself stays open — the planner owns
// it and still needs it for cleanup.
func (t *RedisTransport) Done() error {
	t.closed.Store(true)
	return nil
}

// Cleanup removes the run's queue, counter and private-list keys.
func (t *RedisTransport) Cleanup(g *graph.Graph) {
	keys := []string{t.keys.Queue, t.keys.PendingKey}
	for _, spec := range t.plan.Workers {
		if spec.Pinned() {
			keys = append(keys, t.keys.PrivKey(spec.PE, spec.Instance))
		}
	}
	_, _ = t.cl.Del(keys...)
}

// maybeClosed maps client errors after shutdown onto the closed sentinel so
// the worker loop unwinds silently instead of reporting a spurious failure.
func (t *RedisTransport) maybeClosed(err error) error {
	if err != nil && t.closed.Load() {
		return errTransportClosed
	}
	return err
}
