package runtime

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/redisclient"
)

// runNonce disambiguates concurrent runs against one server.
var runNonce atomic.Int64

// RedisKeys holds the Redis key names of one execution.
type RedisKeys struct {
	// Prefix namespaces every key of the run.
	Prefix string
	// Queue is the global stream consumed through Group.
	Queue string
	// Group is the consumer group name.
	Group string
	// PendingKey is the outstanding-task counter.
	PendingKey string
}

// NewRunKeys derives a fresh key namespace for one run.
func NewRunKeys(workflow string, seed int64) RedisKeys {
	prefix := fmt.Sprintf("d4p:%s:%d:%d", workflow, seed, runNonce.Add(1))
	return RedisKeys{
		Prefix:     prefix,
		Queue:      prefix + ":queue",
		Group:      "workers",
		PendingKey: prefix + ":pending",
	}
}

// PrivKey is the private queue (Redis list) of one pinned PE instance.
func (k RedisKeys) PrivKey(pe string, instance int) string {
	return fmt.Sprintf("%s:priv:%s:%d", k.Prefix, pe, instance)
}

// taskField is the stream entry field carrying the encoded task.
const taskField = "task"

// RedisTransport carries tasks through a Redis server: pool tasks on a
// stream consumed by a consumer group (consumer "w<index>" per pool worker),
// pinned tasks on per-instance private lists — the paper's dyn_redis and
// hybrid_redis storage layout behind one Transport.
//
// Batched pushes are pipelined and frame-packed: one INCRBY for the pending
// counter, one XADD per contiguous run of pool tasks (the whole emit batch,
// in the common case), and one RPUSH per private list share a single network
// round trip. Acknowledgement is entry-range: a stream entry is XACKed only
// once every task delivered from it has been acked, so the consumer group's
// bookkeeping stays per entry while the worker loop keeps acking per task.
type RedisTransport struct {
	cl           *redisclient.Client
	keys         RedisKeys
	plan         Plan
	recoverStale bool
	closed       atomic.Bool

	// frames[w] tracks the stream entries worker w has pulled but not fully
	// acknowledged: entry ID → how many of its delivered tasks are still
	// unacked, and the pending-counter weight the entry releases when its
	// XACK removes it. Each map is touched only by worker w's goroutine
	// (PullBatch and Ack for w run on it), so no locking.
	frames []map[string]*entryState

	// leases[w] throttles worker w's Extend heartbeats (same single-goroutine
	// ownership as frames[w]).
	leases []leaseState

	// RecoverIdle is the minimum idle time before an empty-handed pull
	// reclaims another consumer's pending entry (recoverStale only). Zero
	// means 8× the pull timeout. Entries sitting in a healthy worker's
	// prefetch buffer look idle to XAUTOCLAIM, so values below a batch's
	// worst-case residency trade duplicate executions (safe under the
	// exactly-once fence, but wasted work) for faster failure recovery.
	RecoverIdle time.Duration

	// diag (set via SetDiagnosis; nil keeps the paths cold) journals the
	// recovery lifecycle — XAUTOCLAIM reclaims and lease extensions — and
	// attributes reclaimed tasks to their PE's Replays counter.
	diag *diagnosis.Diag
}

// SetDiagnosis attaches the diagnosis plane the planners thread through.
func (t *RedisTransport) SetDiagnosis(d *diagnosis.Diag) { t.diag = d }

// entryState is the per-stream-entry ack bookkeeping.
type entryState struct {
	// remaining counts delivered-but-unacked tasks of the entry.
	remaining int
	// tasks is the entry's non-poison task count — what the pending counter
	// loses when the entry's XACK confirms removal.
	tasks int
}

// leaseState is one worker's heartbeat throttle: the last extension time and
// the poll timeout of its latest pull (which sets the recovery idle
// threshold the heartbeat must stay under).
type leaseState struct {
	last    time.Time
	timeout time.Duration
}

// NewRedisTransport creates the consumer group and wraps the client. With
// recoverStale, empty-handed pool pulls XAUTOCLAIM tasks whose consumer
// stopped acknowledging them (at-least-once execution).
func NewRedisTransport(cl *redisclient.Client, keys RedisKeys, plan Plan, recoverStale bool) (*RedisTransport, error) {
	if err := cl.XGroupCreate(keys.Queue, keys.Group, "0"); err != nil {
		return nil, fmt.Errorf("runtime: create consumer group: %w", err)
	}
	frames := make([]map[string]*entryState, len(plan.Workers))
	for i := range frames {
		frames[i] = map[string]*entryState{}
	}
	return &RedisTransport{
		cl: cl, keys: keys, plan: plan, recoverStale: recoverStale,
		frames: frames, leases: make([]leaseState, len(plan.Workers)),
	}, nil
}

// Push implements Transport. The pending counter is incremented before any
// task becomes readable, preserving the pending == 0 ⇒ fully drained
// invariant across the whole pipelined batch. Contiguous runs of pool tasks
// pack into a single stream entry each (one XADD per emit batch instead of
// one per task); a poison pill always gets its own entry so delivery order
// survives the packing and pills spread across consumers instead of riding
// one frame. Tasks sharing a private list ship as a single batch frame in
// one RPUSH element.
func (t *RedisTransport) Push(tasks ...Task) error {
	if t.closed.Load() {
		return errTransportClosed
	}
	cmds, err := t.pushCmds(tasks, 0)
	if err != nil || len(cmds) == 0 {
		return err
	}
	_, err = t.cl.Pipeline(cmds)
	return err
}

// PushFenced implements FencedPusher: the whole output batch of one fenced
// Final — pending-counter increment, packed stream entries, private-list
// frames — rides a single SINKAPPEND transaction gated on the delivery's
// task-gate ledger field inside the state hash. Either the gate records and
// every task lands, or the gate was already recorded (a duplicate Final) and
// nothing does. This is the emit half of exactly-once, atomic with the state
// fence that guards the mutations; it requires the transport and the state
// backend to share one server, which TaskGateRef only affirms when true.
//
// entryCap chunks the batch's pool tasks into stream entries of at most
// that many tasks (the caller's emit window). The transaction is atomic
// either way; without the cap the whole Final output would land as one
// packed entry and its downstream fan-out would serialize on whichever
// single consumer pulls it.
func (t *RedisTransport) PushFenced(hashKey, field string, entryCap int, tasks ...Task) (bool, error) {
	if t.closed.Load() {
		return false, errTransportClosed
	}
	cmds, err := t.pushCmds(tasks, entryCap)
	if err != nil {
		return false, err
	}
	// An empty batch still records the gate: a Final with no emissions must
	// be marked done exactly once too.
	return t.cl.SinkAppend(hashKey, field, cmds)
}

// pushCmds packs a task batch into its command sequence: one INCRBY for the
// pending counter, one XADD per contiguous pool run (poison pills get their
// own entries), one RPUSH batch frame per private list. entryCap > 0 bounds
// the tasks packed into one pool-run entry.
func (t *RedisTransport) pushCmds(tasks []Task, entryCap int) ([][]string, error) {
	cmds := make([][]string, 0, 8)
	counted := 0
	for _, task := range tasks {
		if !task.Poison {
			counted++
		}
	}
	if counted > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(counted)})
	}
	buf := codec.GetBuffer()
	defer buf.Release()
	var run []Task
	flushRun := func() error {
		if len(run) == 0 {
			return nil
		}
		b, err := codec.AppendBatch(buf.B[:0], run)
		buf.B = b[:0]
		if err != nil {
			return err
		}
		cmds = append(cmds, []string{"XADD", t.keys.Queue, "*", taskField, string(b)})
		run = run[:0]
		return nil
	}
	var priv map[string][]Task
	for _, task := range tasks {
		if task.Instance >= 0 {
			key := t.keys.PrivKey(task.PE, task.Instance)
			if priv == nil {
				priv = map[string][]Task{}
			}
			priv[key] = append(priv[key], task)
			continue
		}
		if task.Poison {
			if err := flushRun(); err != nil {
				return nil, err
			}
			b, err := codec.AppendTask(buf.B[:0], task)
			buf.B = b[:0]
			if err != nil {
				return nil, err
			}
			cmds = append(cmds, []string{"XADD", t.keys.Queue, "*", taskField, string(b)})
			continue
		}
		run = append(run, task)
		if entryCap > 0 && len(run) >= entryCap {
			if err := flushRun(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushRun(); err != nil {
		return nil, err
	}
	for key, group := range priv {
		b, err := codec.AppendBatch(buf.B[:0], group)
		buf.B = b[:0]
		if err != nil {
			return nil, err
		}
		cmds = append(cmds, []string{"RPUSH", key, string(b)})
	}
	return cmds, nil
}

// PullBatch implements Transport. Pool workers read XREADGROUP COUNT max;
// pinned workers block on their private list and top the window up with one
// non-blocking LPOP count round trip (each popped element may itself be a
// batch frame, so the returned batch can exceed max — max is advisory).
// Because stream deliveries are irreversible (entries enter this consumer's
// PEL), a batch read off the stream may carry several poison pills; the
// worker loop re-routes any surplus to its siblings.
func (t *RedisTransport) PullBatch(w, max int, timeout time.Duration) ([]Env, error) {
	if t.closed.Load() {
		return nil, errTransportClosed
	}
	if max < 1 {
		max = 1
	}
	spec := t.plan.Workers[w]
	if spec.Pinned() {
		key := t.keys.PrivKey(spec.PE, spec.Instance)
		_, payload, ok, err := t.cl.BLPop(timeout, key)
		if err != nil || !ok {
			return nil, t.maybeClosed(err)
		}
		tasks, err := codec.DecodeBatch(payload)
		if err != nil {
			return nil, err
		}
		if len(tasks) < max {
			frames, err := t.cl.LPopCount(key, max-len(tasks))
			if err != nil {
				return nil, t.maybeClosed(err)
			}
			for _, f := range frames {
				more, err := codec.DecodeBatch(f)
				if err != nil {
					return nil, err
				}
				tasks = append(tasks, more...)
			}
		}
		envs := make([]Env, len(tasks))
		for i, task := range tasks {
			envs[i] = Env{Task: task}
		}
		return envs, nil
	}
	consumer := fmt.Sprintf("w%d", w)
	t.leases[w].timeout = timeout
	entries, err := t.cl.XReadGroup(t.keys.Group, consumer, max, timeout, t.keys.Queue)
	if err != nil {
		return nil, t.maybeClosed(err)
	}
	reclaimed := false
	if len(entries) == 0 && t.recoverStale {
		// Reclaim tasks whose consumer stopped acknowledging them (crashed
		// or descheduled). XAUTOCLAIM moves idle pending entries into this
		// worker's PEL so the stream's at-least-once guarantee actually
		// holds under failures.
		_, claimed, err := t.cl.XAutoClaim(t.keys.Queue, t.keys.Group, consumer, t.minIdle(timeout), "0-0", max)
		if err == nil && len(claimed) > 0 {
			entries = claimed
			reclaimed = true
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	// Each entry may be a packed frame; fan its tasks out as one env per
	// task, all sharing the entry ID, and register the entry so Ack can
	// XACK it once the last of them is released. A re-delivered entry
	// (XAUTOCLAIM bouncing it back to this worker) resets its bookkeeping —
	// redelivery means full re-execution.
	reg := t.frames[w]
	envs := make([]Env, 0, len(entries))
	for _, e := range entries {
		tasks, err := codec.DecodeBatch(e.Fields[taskField])
		if err != nil {
			return nil, err
		}
		nonPoison := 0
		for _, task := range tasks {
			if !task.Poison {
				nonPoison++
			}
			if reclaimed && t.diag != nil && !task.Poison {
				// Cold path (failure recovery): per-PE replay attribution may
				// take the ledger lock per task.
				t.diag.PE(task.PE).Replays.Inc()
			}
			envs = append(envs, Env{Task: task, AckID: e.ID})
		}
		reg[e.ID] = &entryState{remaining: len(tasks), tasks: nonPoison}
	}
	if reclaimed && t.diag != nil {
		t.diag.Log(diagnosis.EvReclaim, w, "",
			fmt.Sprintf("%d stalled entries adopted", len(entries)), int64(len(envs)))
	}
	return envs, nil
}

// Ack implements Transport at entry-range granularity: each env releases one
// task of its stream entry, and the entry's XACK is issued only when every
// task delivered from it has been released. Unfenced, one pipelined round
// trip carries the multi-ID XACK of the completed entries plus a single
// pending-counter decrement for every non-poison task.
//
// With recoverStale on, stream acknowledgements are fenced by consumer: an
// XAUTOCLAIM may have moved a delivery to another consumer while this
// worker was still processing it, and the original's late XACK + decrement
// landing anyway would under-count the shared pending counter — the
// coordinator would observe a drained transport while the claimed task is
// still in flight and start terminating early. fencedAck closes this with
// one atomic FENCEXACK: ownership check, PEL removal and counter decrement
// in a single server-side step, no window between them.
func (t *RedisTransport) Ack(w int, envs ...Env) error {
	reg := t.frames[w]
	direct := 0      // non-poison private-list tasks: not claimable, decrement as-is
	streamTasks := 0 // non-poison stream tasks released by this call
	var completed []doneEntry
	// Envs from one entry arrive contiguously (PullBatch fans frames out in
	// order and the worker loop preserves it), so a linear run-group scan
	// replaces a map.
	for i := 0; i < len(envs); {
		env := envs[i]
		if env.AckID == "" {
			if !env.Poison {
				direct++
			}
			i++
			continue
		}
		id := env.AckID
		acked, nonPoison := 0, 0
		for i < len(envs) && envs[i].AckID == id {
			acked++
			if !envs[i].Poison {
				nonPoison++
			}
			i++
		}
		streamTasks += nonPoison
		es, ok := reg[id]
		if !ok {
			// Not in this worker's registry: a duplicate delivery or a
			// repeated ack of an entry already completed. Treat it as a
			// self-contained completed entry weighted by what this call saw;
			// under fencing the ownership filter and the XACK removal count
			// decide whether anything actually lands.
			completed = append(completed, doneEntry{id: id, tasks: nonPoison})
			continue
		}
		es.remaining -= acked
		if es.remaining <= 0 {
			completed = append(completed, doneEntry{id: id, tasks: es.tasks})
			delete(reg, id)
		}
	}
	if t.recoverStale && (len(completed) > 0 || streamTasks > 0) {
		return t.maybeClosed(t.fencedAck(w, direct, completed))
	}
	cmds := make([][]string, 0, 2)
	if len(completed) > 0 {
		xack := make([]string, 0, len(completed)+3)
		xack = append(xack, "XACK", t.keys.Queue, t.keys.Group)
		for _, d := range completed {
			xack = append(xack, d.id)
		}
		cmds = append(cmds, xack)
	}
	if direct+streamTasks > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(-(direct + streamTasks))})
	}
	if len(cmds) == 0 {
		return nil
	}
	_, err := t.cl.Pipeline(cmds)
	return t.maybeClosed(err)
}

// doneEntry is a stream entry whose delivered tasks are all released:
// eligible for XACK, worth tasks pending-counter units on removal.
type doneEntry struct {
	id    string
	tasks int
}

// fencedAck releases completed entries under at-least-once replay with one
// FENCEXACK compound command: ownership filter, PEL removal and
// pending-counter decrement execute as a single atomic server-side step.
// Two properties fall out directly:
//
//   - no double decrement: the server removes each entry from the PEL and
//     credits its packed task weight in the same atomic section, so however
//     duplicate ackers interleave, exactly one decrement lands per entry;
//   - no late release at all: an entry is acknowledged only while this
//     consumer owns it per the server's own PEL at execution time, so a
//     delivery claimed away mid-processing stays pending until its new
//     owner releases it. The old read-filter-then-XACK sequence left a
//     one-round-trip window where a claim could slip between the check and
//     the ack; the compound command has no between.
//
// Under fencing, stream tasks therefore decrement in whole-entry units when
// their entry completes — never per env — so a partially acked frame holds
// its full weight on the pending counter until its last task releases.
// The command is retried by the client only when its direct decrement is
// zero (the PEL half is ownership-fenced and idempotent; the direct counter
// adjustment is not).
func (t *RedisTransport) fencedAck(w int, direct int, completed []doneEntry) error {
	if direct == 0 && len(completed) == 0 {
		return nil
	}
	ids := make([]string, len(completed))
	weights := make([]int64, len(completed))
	for i, d := range completed {
		ids[i] = d.id
		weights[i] = int64(d.tasks)
	}
	_, _, _, err := t.cl.FenceXAck(
		t.keys.Queue, t.keys.Group, fmt.Sprintf("w%d", w),
		t.keys.PendingKey, int64(direct), ids, weights)
	return err
}

// minIdle resolves the recovery idle threshold for a pull with the given
// poll timeout.
func (t *RedisTransport) minIdle(timeout time.Duration) time.Duration {
	if t.RecoverIdle > 0 {
		return t.RecoverIdle
	}
	return 8 * timeout
}

// Extend implements LeaseExtender: it refreshes the idle clock of every
// stream entry worker w still owns, via a self-targeted XCLAIM ... JUSTID.
// Packing made this load-bearing — the unit XAUTOCLAIM reclaims is now a
// whole frame whose processing time scales with its task count, so without a
// progress heartbeat any frame slower than the idle threshold would be
// claimed away mid-processing, redelivered in full to the claimer, go stale
// there too, and ping-pong between live workers forever (the fenced pending
// counter, decremented only by the XACK that removes an entry, would never
// drain). With the heartbeat, reclaim keys on lack of progress rather than
// lack of completion: a worker that dies or stalls between tasks stops
// extending and its frames age out exactly as before.
//
// The ownership read and the claim are not atomic: an entry claimed away
// between them is stolen back. That one-round-trip race is safe — the
// thief's duplicate execution is absorbed by the state fence, the atomic
// FENCEXACK lets exactly one owner release the entry, and both contenders
// are by construction alive.
// Heartbeats are throttled to a quarter of the idle threshold, so the
// steady-state cost is two round trips per threshold-quarter, not per task.
func (t *RedisTransport) Extend(w int) error {
	if !t.recoverStale || t.closed.Load() {
		return nil
	}
	reg := t.frames[w]
	if len(reg) == 0 {
		return nil
	}
	ls := &t.leases[w]
	minIdle := t.minIdle(ls.timeout)
	if minIdle <= 0 {
		return nil
	}
	now := time.Now()
	if !ls.last.IsZero() && now.Sub(ls.last) < minIdle/4 {
		return nil
	}
	ls.last = now
	consumer := fmt.Sprintf("w%d", w)
	owned, err := t.cl.XPendingIDs(t.keys.Queue, t.keys.Group, consumer, len(reg)+256)
	if err != nil {
		return t.maybeClosed(err)
	}
	ids := owned[:0]
	for _, id := range owned {
		if _, ok := reg[id]; ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	_, err = t.cl.XClaimJustID(t.keys.Queue, t.keys.Group, consumer, 0, ids)
	if err == nil && t.diag != nil {
		t.diag.Log(diagnosis.EvLease, w, "", "heartbeat", int64(len(ids)))
	}
	return t.maybeClosed(err)
}

// QueueDepths implements DepthReporter: the global stream's entry count plus
// one "priv:<pe>:<i>" list length per pinned instance. Sampling errors skip
// the affected entry (the gauge set shrinks rather than failing the sample).
func (t *RedisTransport) QueueDepths() map[string]int64 {
	out := map[string]int64{}
	if n, err := t.cl.XLen(t.keys.Queue); err == nil {
		out["stream"] = n
	}
	for _, spec := range t.plan.Workers {
		if !spec.Pinned() {
			continue
		}
		if n, err := t.cl.LLen(t.keys.PrivKey(spec.PE, spec.Instance)); err == nil {
			out[fmt.Sprintf("priv:%s:%d", spec.PE, spec.Instance)] = n
		}
	}
	return out
}

// Pending implements Transport.
func (t *RedisTransport) Pending() (int64, error) {
	s, ok, err := t.cl.Get(t.keys.PendingKey)
	if err != nil || !ok {
		return 0, t.maybeClosed(err)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Done implements Transport. The client itself stays open — the planner owns
// it and still needs it for cleanup.
func (t *RedisTransport) Done() error {
	t.closed.Store(true)
	return nil
}

// Cleanup removes the run's queue, counter and private-list keys.
func (t *RedisTransport) Cleanup(g *graph.Graph) {
	keys := []string{t.keys.Queue, t.keys.PendingKey}
	for _, spec := range t.plan.Workers {
		if spec.Pinned() {
			keys = append(keys, t.keys.PrivKey(spec.PE, spec.Instance))
		}
	}
	_, _ = t.cl.Del(keys...)
}

// maybeClosed maps client errors after shutdown onto the closed sentinel so
// the worker loop unwinds silently instead of reporting a spurious failure.
func (t *RedisTransport) maybeClosed(err error) error {
	if err != nil && t.closed.Load() {
		return errTransportClosed
	}
	return err
}
