package runtime

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/graph"
	"repro/internal/redisclient"
)

// runNonce disambiguates concurrent runs against one server.
var runNonce atomic.Int64

// RedisKeys holds the Redis key names of one execution.
type RedisKeys struct {
	// Prefix namespaces every key of the run.
	Prefix string
	// Queue is the global stream consumed through Group.
	Queue string
	// Group is the consumer group name.
	Group string
	// PendingKey is the outstanding-task counter.
	PendingKey string
}

// NewRunKeys derives a fresh key namespace for one run.
func NewRunKeys(workflow string, seed int64) RedisKeys {
	prefix := fmt.Sprintf("d4p:%s:%d:%d", workflow, seed, runNonce.Add(1))
	return RedisKeys{
		Prefix:     prefix,
		Queue:      prefix + ":queue",
		Group:      "workers",
		PendingKey: prefix + ":pending",
	}
}

// PrivKey is the private queue (Redis list) of one pinned PE instance.
func (k RedisKeys) PrivKey(pe string, instance int) string {
	return fmt.Sprintf("%s:priv:%s:%d", k.Prefix, pe, instance)
}

// taskField is the stream entry field carrying the encoded task.
const taskField = "task"

// RedisTransport carries tasks through a Redis server: pool tasks on a
// stream consumed by a consumer group (consumer "w<index>" per pool worker),
// pinned tasks on per-instance private lists — the paper's dyn_redis and
// hybrid_redis storage layout behind one Transport.
//
// Batched pushes are pipelined: one INCRBY for the pending counter plus all
// XADD/RPUSH commands share a single network round trip, which is where
// Options.EmitBatch buys its throughput on this transport.
type RedisTransport struct {
	cl           *redisclient.Client
	keys         RedisKeys
	plan         Plan
	recoverStale bool
	closed       atomic.Bool
}

// NewRedisTransport creates the consumer group and wraps the client. With
// recoverStale, empty-handed pool pulls XAUTOCLAIM tasks whose consumer
// stopped acknowledging them (at-least-once execution).
func NewRedisTransport(cl *redisclient.Client, keys RedisKeys, plan Plan, recoverStale bool) (*RedisTransport, error) {
	if err := cl.XGroupCreate(keys.Queue, keys.Group, "0"); err != nil {
		return nil, fmt.Errorf("runtime: create consumer group: %w", err)
	}
	return &RedisTransport{cl: cl, keys: keys, plan: plan, recoverStale: recoverStale}, nil
}

// Push implements Transport. The pending counter is incremented before any
// task becomes readable, preserving the pending == 0 ⇒ fully drained
// invariant across the whole pipelined batch.
func (t *RedisTransport) Push(tasks ...Task) error {
	if t.closed.Load() {
		return errTransportClosed
	}
	cmds := make([][]string, 0, len(tasks)+1)
	counted := 0
	for _, task := range tasks {
		if !task.Poison {
			counted++
		}
	}
	if counted > 0 {
		cmds = append(cmds, []string{"INCRBY", t.keys.PendingKey, strconv.Itoa(counted)})
	}
	for _, task := range tasks {
		payload, err := codec.Encode(task)
		if err != nil {
			return err
		}
		if task.Instance >= 0 {
			cmds = append(cmds, []string{"RPUSH", t.keys.PrivKey(task.PE, task.Instance), payload})
		} else {
			cmds = append(cmds, []string{"XADD", t.keys.Queue, "*", taskField, payload})
		}
	}
	_, err := t.cl.Pipeline(cmds)
	return err
}

// Pull implements Transport.
func (t *RedisTransport) Pull(w int, timeout time.Duration) (Env, bool, error) {
	if t.closed.Load() {
		return Env{}, false, errTransportClosed
	}
	spec := t.plan.Workers[w]
	if spec.Pinned() {
		_, payload, ok, err := t.cl.BLPop(timeout, t.keys.PrivKey(spec.PE, spec.Instance))
		if err != nil || !ok {
			return Env{}, false, t.maybeClosed(err)
		}
		task, err := codec.Decode(payload)
		if err != nil {
			return Env{}, false, err
		}
		return Env{Task: task}, true, nil
	}
	consumer := fmt.Sprintf("w%d", w)
	entries, err := t.cl.XReadGroup(t.keys.Group, consumer, 1, timeout, t.keys.Queue)
	if err != nil {
		return Env{}, false, t.maybeClosed(err)
	}
	if len(entries) == 0 && t.recoverStale {
		// Reclaim tasks whose consumer stopped acknowledging them (crashed
		// or descheduled). XAUTOCLAIM moves idle pending entries into this
		// worker's PEL so the stream's at-least-once guarantee actually
		// holds under failures.
		_, claimed, err := t.cl.XAutoClaim(t.keys.Queue, t.keys.Group, consumer, 8*timeout, "0-0", 1)
		if err == nil && len(claimed) > 0 {
			entries = claimed
		}
	}
	if len(entries) == 0 {
		return Env{}, false, nil
	}
	task, err := codec.Decode(entries[0].Fields[taskField])
	if err != nil {
		return Env{}, false, err
	}
	return Env{Task: task, AckID: entries[0].ID}, true, nil
}

// Ack implements Transport: XACK for stream deliveries, and a pending
// decrement for every non-poison task.
func (t *RedisTransport) Ack(w int, env Env) error {
	if env.AckID != "" {
		if _, err := t.cl.XAck(t.keys.Queue, t.keys.Group, env.AckID); err != nil {
			return t.maybeClosed(err)
		}
	}
	if env.Poison {
		return nil
	}
	_, err := t.cl.IncrBy(t.keys.PendingKey, -1)
	return t.maybeClosed(err)
}

// Pending implements Transport.
func (t *RedisTransport) Pending() (int64, error) {
	s, ok, err := t.cl.Get(t.keys.PendingKey)
	if err != nil || !ok {
		return 0, t.maybeClosed(err)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Done implements Transport. The client itself stays open — the planner owns
// it and still needs it for cleanup.
func (t *RedisTransport) Done() error {
	t.closed.Store(true)
	return nil
}

// Cleanup removes the run's queue, counter and private-list keys.
func (t *RedisTransport) Cleanup(g *graph.Graph) {
	keys := []string{t.keys.Queue, t.keys.PendingKey}
	for _, spec := range t.plan.Workers {
		if spec.Pinned() {
			keys = append(keys, t.keys.PrivKey(spec.PE, spec.Instance))
		}
	}
	_, _ = t.cl.Del(keys...)
}

// maybeClosed maps client errors after shutdown onto the closed sentinel so
// the worker loop unwinds silently instead of reporting a spurious failure.
func (t *RedisTransport) maybeClosed(err error) error {
	if err != nil && t.closed.Load() {
		return errTransportClosed
	}
	return err
}
