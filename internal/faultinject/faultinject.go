// Package faultinject is the engine's deterministic fault-injection plane.
//
// A seeded Injector holds a schedule of faults, each bound to a named probe
// point — a location in the client, state, or runtime code that calls Fire
// when execution passes through it. When the injector is armed (process-wide,
// see Arm) and a scheduled fault matches the probe, the fault fires: the
// connection is dropped, the operation is delayed, a server error is
// synthesized, or the worker is killed mid-window. Unarmed, every probe is a
// single atomic pointer load returning nil, so production paths stay free.
//
// Determinism is the point: faults are keyed to the Nth matching hit of a
// probe (or to a seeded probability), so a chaos test can place a failure in
// an exact protocol window — "drop the connection after the first FENCEAPPLY
// was written but before its reply is read" — and replay it identically.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Probe points wired into the engine. Conn probes fire once per command with
// the command name; code probes fire with an empty command at the protocol
// windows the exactly-once design cares about.
const (
	// ProbeConnWrite fires in the client before a command is written to the
	// connection. A drop here loses the command before the server sees it.
	ProbeConnWrite = "conn-write"
	// ProbeConnRead fires in the client after a command was written and
	// flushed but before its reply is read. A drop here is the classic
	// reply-lost window: the server has executed the command, the client
	// cannot know — exactly what fenced retryable commands must survive.
	ProbeConnRead = "conn-read"
	// ProbeAfterRecord fires in the state fence's generic two-operation
	// fallback between recording the applied-ledger entry and applying the
	// mutation. On backends with atomic compound mutations this window does
	// not exist and the probe is never reached.
	ProbeAfterRecord = "after-record-before-apply"
	// ProbeMidFinalFlush fires in the worker between running a Final hook and
	// flushing its buffered emissions. With the fenced atomic flush, a kill
	// here loses nothing: the task gate is recorded with the push, so the
	// replay redoes the whole Final.
	ProbeMidFinalFlush = "mid-final-flush"
)

// Kind enumerates the fault actions.
type Kind int

const (
	// ConnDrop poisons the in-flight connection: the probe returns
	// ErrConnDrop and the client closes the conn and surfaces a transport
	// error (retryable for idempotent/fenced commands).
	ConnDrop Kind = iota
	// Delay sleeps Fault.Delay before letting the operation proceed —
	// a slow reply / stalled peer.
	Delay
	// ServerErr synthesizes an error reply (Fault.Err) in place of the real
	// one, as a ServerFault.
	ServerErr
	// Kill simulates the process dying at the probe: the probe returns
	// ErrKill, which the runtime treats as a terminal worker failure and the
	// client never retries.
	Kill
)

func (k Kind) String() string {
	switch k {
	case ConnDrop:
		return "conn-drop"
	case Delay:
		return "delay"
	case ServerErr:
		return "server-err"
	case Kill:
		return "kill"
	default:
		return "unknown"
	}
}

// ErrConnDrop is returned by a firing ConnDrop fault.
var ErrConnDrop = errors.New("faultinject: injected connection drop")

// ErrKill is returned by a firing Kill fault. It is terminal: the client must
// not retry it and the runtime fails the worker that hits it.
var ErrKill = errors.New("faultinject: injected kill")

// ServerFault is a synthesized server error reply.
type ServerFault string

// Error implements the error interface.
func (e ServerFault) Error() string {
	return "faultinject: injected server error: " + string(e)
}

// Fault is one scheduled fault.
type Fault struct {
	// Probe names the probe point the fault is bound to (required).
	Probe string
	// Cmd optionally restricts conn probes to one command name
	// (case-insensitive); empty matches every command.
	Cmd string
	// Hits arms the fault from the Nth matching hit on (1-based). Zero means
	// every hit. Ignored when Prob > 0.
	Hits int
	// Times bounds how often the fault fires. Zero means once when Hits
	// selects a specific occurrence, unlimited otherwise.
	Times int
	// Prob, when > 0, fires the fault with this probability per hit, drawn
	// from the injector's seeded generator — reproducible randomness.
	Prob float64
	// Kind selects the action.
	Kind Kind
	// Delay is the sleep of a Delay fault.
	Delay time.Duration
	// Err is the message of a ServerErr fault.
	Err string
}

// Event records one fired fault.
type Event struct {
	Seq   int
	Probe string
	Cmd   string
	Kind  Kind
}

// scheduled tracks one fault's match and fire counters.
type scheduled struct {
	f     Fault
	hits  int
	fired int
}

// Injector holds a fault schedule. Safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	faults  []*scheduled
	events  []Event
	seq     int
	journal func(probe, detail string)
}

// New creates an injector whose probabilistic faults draw from seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Schedule adds one fault to the schedule. Returns the injector for chaining.
func (i *Injector) Schedule(f Fault) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = append(i.faults, &scheduled{f: f})
	return i
}

// SetJournal installs a callback invoked once per fired fault (the diagnosis
// run-event journal's fault feed). It runs outside the injector lock.
func (i *Injector) SetJournal(fn func(probe, detail string)) {
	i.mu.Lock()
	i.journal = fn
	i.mu.Unlock()
}

// Fired returns the events fired so far, in firing order.
func (i *Injector) Fired() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// FiredCount counts fired events at one probe.
func (i *Injector) FiredCount(probe string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, e := range i.events {
		if e.Probe == probe {
			n++
		}
	}
	return n
}

// fire evaluates the schedule at one probe hit. At most one fault fires per
// hit; Delay faults sleep and return nil, the rest return their error.
func (i *Injector) fire(probe, cmd string) error {
	i.mu.Lock()
	var hit *scheduled
	for _, s := range i.faults {
		if s.f.Probe != probe {
			continue
		}
		if s.f.Cmd != "" && !strings.EqualFold(s.f.Cmd, cmd) {
			continue
		}
		s.hits++
		if hit != nil {
			continue // one fault per probe hit; later matches still count hits
		}
		times := s.f.Times
		if times == 0 {
			if s.f.Prob > 0 || s.f.Hits == 0 {
				times = math.MaxInt
			} else {
				times = 1
			}
		}
		if s.fired >= times {
			continue
		}
		if s.f.Prob > 0 {
			if i.rng.Float64() >= s.f.Prob {
				continue
			}
		} else if s.hits < s.f.Hits {
			continue
		}
		s.fired++
		hit = s
	}
	if hit == nil {
		i.mu.Unlock()
		return nil
	}
	i.seq++
	ev := Event{Seq: i.seq, Probe: probe, Cmd: cmd, Kind: hit.f.Kind}
	i.events = append(i.events, ev)
	f := hit.f
	journal := i.journal
	i.mu.Unlock()

	if journal != nil {
		detail := f.Kind.String()
		if cmd != "" {
			detail += " " + strings.ToUpper(cmd)
		}
		detail += " @" + probe
		journal(probe, detail)
	}
	switch f.Kind {
	case Delay:
		time.Sleep(f.Delay)
		return nil
	case ServerErr:
		return ServerFault(f.Err)
	case Kill:
		return fmt.Errorf("%w at %s", ErrKill, probe)
	default:
		return fmt.Errorf("%w at %s", ErrConnDrop, probe)
	}
}

// --- Process-wide arming -----------------------------------------------------

// active is the armed injector; nil keeps every probe a single atomic load.
var active atomic.Pointer[Injector]

// Arm makes i the process-wide injector consulted by every probe. Chaos tests
// arm one injector for a run and Disarm in cleanup; concurrent tests against
// different injectors must not run in parallel.
func Arm(i *Injector) { active.Store(i) }

// Disarm removes the armed injector.
func Disarm() { active.Store(nil) }

// Active returns the armed injector, or nil.
func Active() *Injector { return active.Load() }

// Fire evaluates the armed injector at a code probe (no command context).
// It returns nil when no injector is armed or no fault fires.
func Fire(probe string) error { return FireCmd(probe, "") }

// FireCmd evaluates the armed injector at a conn probe carrying the command
// name being executed.
func FireCmd(probe, cmd string) error {
	i := active.Load()
	if i == nil {
		return nil
	}
	return i.fire(probe, cmd)
}
