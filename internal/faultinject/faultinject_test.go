package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedProbesAreFree(t *testing.T) {
	Disarm()
	if err := Fire(ProbeAfterRecord); err != nil {
		t.Fatalf("unarmed probe fired: %v", err)
	}
	if err := FireCmd(ProbeConnRead, "GET"); err != nil {
		t.Fatalf("unarmed conn probe fired: %v", err)
	}
}

func TestHitScheduling(t *testing.T) {
	inj := New(1).Schedule(Fault{Probe: ProbeConnRead, Cmd: "GET", Hits: 2})
	Arm(inj)
	t.Cleanup(Disarm)

	if err := FireCmd(ProbeConnRead, "SET"); err != nil {
		t.Fatalf("non-matching cmd fired: %v", err)
	}
	if err := FireCmd(ProbeConnRead, "GET"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := FireCmd(ProbeConnRead, "get"); !errors.Is(err, ErrConnDrop) {
		t.Fatalf("hit 2 (case-insensitive) should drop: %v", err)
	}
	// Hits with zero Times fires exactly once.
	if err := FireCmd(ProbeConnRead, "GET"); err != nil {
		t.Fatalf("fault fired past its Times budget: %v", err)
	}
	if got := inj.FiredCount(ProbeConnRead); got != 1 {
		t.Fatalf("FiredCount=%d want 1", got)
	}
}

func TestKindsAndEvents(t *testing.T) {
	inj := New(1).
		Schedule(Fault{Probe: "p-kill", Kind: Kill, Hits: 1}).
		Schedule(Fault{Probe: "p-err", Kind: ServerErr, Err: "LOADING try later", Hits: 1}).
		Schedule(Fault{Probe: "p-delay", Kind: Delay, Delay: time.Millisecond, Hits: 1})
	Arm(inj)
	t.Cleanup(Disarm)

	if err := Fire("p-kill"); !errors.Is(err, ErrKill) {
		t.Fatalf("kill: %v", err)
	}
	var sf ServerFault
	if err := Fire("p-err"); !errors.As(err, &sf) || string(sf) != "LOADING try later" {
		t.Fatalf("server-err: %v", err)
	}
	start := time.Now()
	if err := Fire("p-delay"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay fault did not sleep")
	}
	evs := inj.Fired()
	if len(evs) != 3 || evs[0].Kind != Kill || evs[1].Kind != ServerErr || evs[2].Kind != Delay {
		t.Fatalf("events: %+v", evs)
	}
}

func TestJournalCallback(t *testing.T) {
	inj := New(1).Schedule(Fault{Probe: ProbeMidFinalFlush, Kind: Kill, Hits: 1})
	var details []string
	inj.SetJournal(func(probe, detail string) { details = append(details, probe+"|"+detail) })
	Arm(inj)
	t.Cleanup(Disarm)
	_ = Fire(ProbeMidFinalFlush)
	if len(details) != 1 || details[0] != ProbeMidFinalFlush+"|kill @"+ProbeMidFinalFlush {
		t.Fatalf("journal: %v", details)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []int {
		inj := New(42).Schedule(Fault{Probe: "p", Prob: 0.3})
		Arm(inj)
		defer Disarm()
		var fired []int
		for n := 0; n < 50; n++ {
			if Fire("p") != nil {
				fired = append(fired, n)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("degenerate draw: %d fires", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a, b)
		}
	}
}
