// Package multiproc implements the paper's baseline "multi" mapping: the
// native static Multiprocessing enactment. Every PE instance is pinned to
// its own simulated process (goroutine + platform.Process accounting) with a
// private input channel; senders route values across destination instances
// according to the edge grouping; termination uses the classic poison-pill
// protocol ("the source PE would signal the end of its input to all
// subsequent instances"), generalized to reference-counted end-of-stream
// markers so diamond topologies and multi-instance PEs terminate correctly.
//
// Because each instance is a dedicated process holding its own PE value,
// multi supports stateful PEs and every grouping out of the box — the
// property that makes it the paper's baseline for the stateful comparison.
package multiproc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/state"
	"repro/internal/synth"
)

// Multi is the static Multiprocessing mapping.
type Multi struct{}

func init() { mapping.Register(Multi{}) }

// Name implements mapping.Mapping.
func (Multi) Name() string { return "multi" }

// message is one unit on an instance's input channel.
type message struct {
	port  string
	value any
	eos   bool
}

// instance is one running PE copy.
type instance struct {
	node  *graph.Node
	index int
	in    chan message
	// expectEOS is how many end-of-stream markers must arrive before this
	// instance finalizes (one per upstream instance per in-edge).
	expectEOS int
}

// Execute implements mapping.Mapping.
func (Multi) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	opts = opts.WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	alloc, err := g.AllocateInstances(opts.Processes)
	if err != nil {
		return metrics.Report{}, err
	}
	host := platform.NewHost(opts.Platform)

	ms, err := mapping.OpenManagedState(g, opts, func() state.Backend { return state.NewMemoryBackend() })
	if err != nil {
		return metrics.Report{}, err
	}
	success := false
	defer func() { ms.Finish(g, success) }()

	// Build all instances. Managed-state nodes get a finalization barrier:
	// instance 0 runs the node's single Final only after every sibling has
	// stopped mutating the shared store.
	instances := make(map[string][]*instance, len(g.Nodes()))
	barriers := make(map[string]*sync.WaitGroup, len(g.Nodes()))
	for _, n := range g.Nodes() {
		count := alloc[n.Name]
		list := make([]*instance, count)
		for i := 0; i < count; i++ {
			list[i] = &instance{node: n, index: i, in: make(chan message, 256)}
		}
		instances[n.Name] = list
		if n.HasManagedState() {
			bar := &sync.WaitGroup{}
			bar.Add(count - 1) // siblings of instance 0
			barriers[n.Name] = bar
		}
	}
	// Expected EOS per destination instance: one per (in-edge × upstream
	// instance). Every upstream instance broadcasts EOS on each of its
	// out-edges to all destination instances.
	for _, e := range g.Edges() {
		nSrc := len(instances[e.From])
		for _, dst := range instances[e.To] {
			dst.expectEOS += nSrc
		}
	}

	var tasks, outputs atomic.Int64
	abort := make(chan struct{})
	var abortOnce sync.Once
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	// send delivers a message, abandoning on abort to avoid deadlock.
	send := func(dst *instance, m message) bool {
		select {
		case dst.in <- m:
			return true
		case <-abort:
			return false
		}
	}

	// newEmit builds the routing closure for one sender instance.
	newEmit := func(n *graph.Node) func(port string, value any) error {
		seq := make(map[*graph.Edge]*uint64, 4)
		for _, e := range g.OutEdges(n.Name) {
			var c uint64
			seq[e] = &c
		}
		return func(port string, value any) error {
			for _, e := range g.OutEdges(n.Name) {
				if e.FromPort != port {
					continue
				}
				dsts := instances[e.To]
				idx := e.Grouping.RouteInstance(value, atomic.AddUint64(seq[e], 1)-1, len(dsts))
				if len(g.OutEdges(e.To)) == 0 {
					outputs.Add(1)
				}
				if idx < 0 { // one-to-all broadcast
					for _, dst := range dsts {
						if !send(dst, message{port: e.ToPort, value: value}) {
							return errAborted
						}
					}
					continue
				}
				if !send(dsts[idx], message{port: e.ToPort, value: value}) {
					return errAborted
				}
			}
			return nil
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, n := range g.Nodes() {
		for _, inst := range instances[n.Name] {
			wg.Add(1)
			go func(n *graph.Node, inst *instance) {
				defer wg.Done()
				proc := host.NewProcess(fmt.Sprintf("multi:%s:%d", n.Name, inst.index))
				proc.Activate()
				defer proc.Deactivate()
				if err := runInstance(g, n, inst, instances, host, opts, ms, barriers[n.Name], newEmit(n), send, &tasks, abort); err != nil {
					if err != errAborted {
						fail(err)
					}
				}
			}(n, inst)
		}
	}
	wg.Wait()
	runtime := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("multi: %w", err)
	}
	success = true
	return metrics.Report{
		Workflow:    g.Name,
		Mapping:     "multi",
		Platform:    opts.Platform.Name,
		Processes:   opts.Processes,
		Runtime:     runtime,
		ProcessTime: host.TotalProcessTime(),
		Tasks:       tasks.Load(),
		Outputs:     outputs.Load(),
		State:       ms.Ops(),
	}, nil
}

// errAborted is an internal sentinel: another instance already failed.
var errAborted = fmt.Errorf("multiproc: aborted")

// runInstance executes one PE instance to completion.
func runInstance(
	g *graph.Graph,
	n *graph.Node,
	inst *instance,
	instances map[string][]*instance,
	host *platform.Host,
	opts mapping.Options,
	ms *mapping.ManagedState,
	barrier *sync.WaitGroup,
	emit func(port string, value any) error,
	send func(dst *instance, m message) bool,
	tasks *atomic.Int64,
	abort <-chan struct{},
) error {
	pe := n.Factory()
	rng := synth.NewRand(opts.Seed ^ int64(instSeed(n.Name, inst.index)))
	ctx := core.NewContext(n.Name, inst.index, host, rng, emit)
	if st := ms.Store(n.Name); st != nil {
		ctx = ctx.WithStore(st)
	}

	// Sibling instances of a managed-state node must release the barrier on
	// every exit path, or instance 0 would wait forever on an aborted run.
	var barrierOnce sync.Once
	barrierDone := func() {
		if barrier != nil && inst.index != 0 {
			barrierOnce.Do(barrier.Done)
		}
	}
	defer barrierDone()

	// sendEOS broadcasts end-of-stream on every out-edge.
	sendEOS := func() {
		for _, e := range g.OutEdges(n.Name) {
			for _, dst := range instances[e.To] {
				if !send(dst, message{eos: true}) {
					return
				}
			}
		}
	}

	if ini, ok := pe.(core.Initializer); ok {
		if err := ini.Init(ctx); err != nil {
			return fmt.Errorf("PE %s[%d] init: %w", n.Name, inst.index, err)
		}
	}

	if src, ok := pe.(core.Source); ok && len(g.InEdges(n.Name)) == 0 {
		tasks.Add(1)
		if err := src.Generate(ctx); err != nil {
			return fmt.Errorf("source %s[%d]: %w", n.Name, inst.index, err)
		}
		if fin, ok := pe.(core.Finalizer); ok {
			if err := fin.Final(ctx); err != nil {
				return fmt.Errorf("source %s[%d] final: %w", n.Name, inst.index, err)
			}
		}
		sendEOS()
		return nil
	}

	remaining := inst.expectEOS
	for remaining > 0 {
		select {
		case m := <-inst.in:
			if m.eos {
				remaining--
				continue
			}
			tasks.Add(1)
			if err := pe.Process(ctx, m.port, m.value); err != nil {
				return fmt.Errorf("PE %s[%d]: %w", n.Name, inst.index, err)
			}
		case <-abort:
			return errAborted
		}
	}
	if n.HasManagedState() {
		// The engine's Final-once contract: siblings release the barrier and
		// go straight to EOS; instance 0 waits for them (no more writes to
		// the shared store) and runs the node's single Final over the whole
		// namespace. Its own EOS follows the Final emissions, so downstream
		// cannot terminate before seeing them.
		if inst.index != 0 {
			barrierDone()
			sendEOS()
			return nil
		}
		if !waitBarrier(barrier, abort) {
			return errAborted
		}
		if fin, ok := pe.(core.Finalizer); ok {
			if err := fin.Final(ctx); err != nil {
				return fmt.Errorf("PE %s[%d] final: %w", n.Name, inst.index, err)
			}
		}
		sendEOS()
		return nil
	}
	if fin, ok := pe.(core.Finalizer); ok {
		if err := fin.Final(ctx); err != nil {
			return fmt.Errorf("PE %s[%d] final: %w", n.Name, inst.index, err)
		}
	}
	sendEOS()
	return nil
}

// waitBarrier waits for wg, abandoning on abort.
func waitBarrier(wg *sync.WaitGroup, abort <-chan struct{}) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-abort:
		return false
	}
}

// instSeed mixes a PE name and instance index into a seed component.
func instSeed(name string, idx int) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	h ^= uint32(idx)
	h *= 16777619
	return h
}
