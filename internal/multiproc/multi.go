// Package multiproc implements the paper's baseline "multi" mapping: the
// native static Multiprocessing enactment. Every PE instance is pinned to
// its own simulated process with a private bounded input channel; senders
// route values across destination instances according to the edge grouping.
//
// Since the unified worker runtime (package runtime) absorbed the worker
// loop, this package is a planner: it resolves the instance allocation,
// pins one worker per instance, and runs the plan on the in-process channel
// transport. Because each instance is a dedicated process holding its own
// PE value, multi supports stateful PEs and every grouping out of the box —
// the property that makes it the paper's baseline for the stateful
// comparison.
package multiproc

import (
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/state"
)

// Multi is the static Multiprocessing mapping.
type Multi struct{}

func init() { mapping.Register(Multi{}) }

// Name implements mapping.Mapping.
func (Multi) Name() string { return "multi" }

// Execute implements mapping.Mapping.
func (Multi) Execute(g *graph.Graph, opts mapping.Options) (metrics.Report, error) {
	// Channel sends are cheap, so batching defaults off to preserve the
	// paper's per-instance queue behaviour; the knobs remain available.
	opts = opts.ResolveBatching(1, 1).WithDefaults()
	if err := g.Validate(); err != nil {
		return metrics.Report{}, err
	}
	alloc, err := g.AllocateInstances(opts.Processes)
	if err != nil {
		return metrics.Report{}, err
	}
	plan := runtime.PinnedPlan(g, alloc)
	return runtime.Execute(g, opts, runtime.Config{
		Name:              "multi",
		Plan:              plan,
		Transport:         runtime.NewChanTransport(plan, 256),
		Host:              platform.NewHost(opts.Platform),
		NewStateBackend:   func() state.Backend { return state.NewMemoryBackend() },
		PinnedIdleStandby: true,
	})
}
