package multiproc

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
)

func TestNameAndRegistration(t *testing.T) {
	if (Multi{}).Name() != "multi" {
		t.Error("name")
	}
	if _, err := mapping.Get("multi"); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineBackpressure fills the bounded instance channels: a slow sink
// with a fast producer must neither deadlock nor drop data.
func TestPipelineBackpressure(t *testing.T) {
	const n = 600 // > the 256-slot channel buffer
	var mu sync.Mutex
	var got int
	g := graph.New("backpressure")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < n; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	g.Add(func() core.PE {
		return core.NewSink("slow", func(ctx *core.Context, v any) error {
			time.Sleep(20 * time.Microsecond)
			mu.Lock()
			got++
			mu.Unlock()
			return nil
		})
	})
	g.Pipe("gen", "slow")

	done := make(chan error, 1)
	go func() {
		_, err := (Multi{}).Execute(g, mapping.Options{
			Processes: 2,
			Platform:  platform.Platform{Name: "t", Cores: 4},
			Seed:      1,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("backpressure deadlock")
	}
	mu.Lock()
	defer mu.Unlock()
	if got != n {
		t.Fatalf("sink saw %d of %d values", got, n)
	}
}

// TestDiamondEOSTermination checks the reference-counted poison-pill
// protocol on a fan-out/fan-in topology with multi-instance middles: the
// join instance must wait for EOS from every upstream instance before
// finalizing.
func TestDiamondEOSTermination(t *testing.T) {
	var mu sync.Mutex
	var beforeFinal int
	var finalCount int

	g := graph.New("diamond")
	g.Add(func() core.PE {
		return core.NewSource("gen", func(ctx *core.Context) error {
			for i := 0; i < 30; i++ {
				if err := ctx.EmitDefault(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	for _, name := range []string{"left", "right"} {
		name := name
		g.Add(func() core.PE {
			return core.NewMap(name, func(ctx *core.Context, v any) (any, error) { return v, nil })
		}).SetInstances(2)
	}
	g.Add(func() core.PE {
		return &joinPE{onData: func() {
			mu.Lock()
			beforeFinal++
			mu.Unlock()
		}, onFinal: func() {
			mu.Lock()
			finalCount++
			mu.Unlock()
		}}
	}).SetInstances(1)
	g.Pipe("gen", "left")
	g.Pipe("gen", "right")
	g.Pipe("left", "join")
	g.Pipe("right", "join")

	if _, err := (Multi{}).Execute(g, mapping.Options{
		Processes: 8,
		Platform:  platform.Platform{Name: "t", Cores: 4},
		Seed:      1,
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if beforeFinal != 60 {
		t.Errorf("join saw %d values, want 60 (30 per branch)", beforeFinal)
	}
	if finalCount != 1 {
		t.Errorf("join finalized %d times, want 1", finalCount)
	}
}

// joinPE counts deliveries and finalizations.
type joinPE struct {
	core.Base
	onData  func()
	onFinal func()
}

func (p *joinPE) Name() string      { return "join" }
func (p *joinPE) InPorts() []string { return core.In() }
func (p *joinPE) Process(ctx *core.Context, port string, v any) error {
	p.onData()
	return nil
}
func (p *joinPE) Final(ctx *core.Context) error {
	p.onFinal()
	return nil
}
