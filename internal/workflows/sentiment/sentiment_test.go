package sentiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/synth"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Articles != 120 || cfg.HappyInstances != 4 || cfg.TopInstances != 2 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestGraphShapeMatchesFigure7(t *testing.T) {
	g := New(Config{Articles: 5})
	if len(g.Nodes()) != 8 {
		t.Fatalf("%d PEs", len(g.Nodes()))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Stateful markers and instance counts from the paper's setup.
	happy := g.Node("happyState")
	top := g.Node("top3Happiest")
	if !happy.Stateful || happy.Instances != 4 {
		t.Errorf("happyState: %+v", happy)
	}
	if !top.Stateful || top.Instances != 2 {
		t.Errorf("top3Happiest: %+v", top)
	}
	// Groupings: both edges into happyState are group-by; happy→top3 is
	// global.
	for _, e := range g.InEdges("happyState") {
		if e.Grouping.Kind != graph.GroupBy {
			t.Errorf("edge %s→happyState grouping %s", e.From, e.Grouping.Kind)
		}
	}
	for _, e := range g.InEdges("top3Happiest") {
		if e.Grouping.Kind != graph.Global {
			t.Errorf("edge into top3 grouping %s", e.Grouping.Kind)
		}
	}
	// The dual-pathway fan-out from the reader.
	if len(g.OutEdges("readArticles")) != 2 {
		t.Error("reader must feed both scoring pathways")
	}
	if g.MinStaticProcesses() != 14 {
		t.Errorf("min static processes %d, want the paper's 14", g.MinStaticProcesses())
	}
}

func TestFindStateDropsUnknownStates(t *testing.T) {
	g := New(Config{Articles: 1})
	pe := g.Node("findStateAFINN").Factory()
	var emitted int
	ctx := core.NewContext("findStateAFINN", 0, nil, nil, func(string, any) error {
		emitted++
		return nil
	})
	if err := pe.Process(ctx, core.PortIn, ScoredPayload{State: "Atlantis", Score: 1}); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Error("unknown state should be dropped")
	}
	if err := pe.Process(ctx, core.PortIn, ScoredPayload{State: "Texas", Score: 1}); err != nil {
		t.Fatal(err)
	}
	if emitted != 1 {
		t.Error("known state should pass")
	}
}

func TestHappyStateAggregatesOrderIndependently(t *testing.T) {
	runOrder := func(scores []float64) float64 {
		h := newHappyState().(*happyState)
		ctx := core.NewContext("happyState", 0, nil, nil, func(string, any) error { return nil })
		for _, s := range scores {
			if err := h.Process(ctx, core.PortIn, ScoredPayload{State: "Ohio", Score: s}); err != nil {
				t.Fatal(err)
			}
		}
		var got float64
		fctx := core.NewContext("happyState", 0, nil, nil, func(port string, v any) error {
			got = v.(StateScore).Score
			return nil
		})
		if err := h.Final(fctx); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := runOrder([]float64{0.1, 0.2, 0.3, -0.05, 1.17})
	b := runOrder([]float64{1.17, -0.05, 0.3, 0.2, 0.1})
	if a != b {
		t.Errorf("aggregation order-dependent: %v vs %v", a, b)
	}
}

func TestTop3RanksAndTruncates(t *testing.T) {
	var got []StateScore
	tp := newTop3(func(s []StateScore) { got = s }).(*top3)
	ctx := core.NewContext("top3Happiest", 0, nil, nil, func(string, any) error { return nil })
	for _, ss := range []StateScore{
		{State: "Ohio", Score: 5}, {State: "Texas", Score: 9},
		{State: "Utah", Score: 7}, {State: "Iowa", Score: 1},
	} {
		if err := tp.Process(ctx, core.PortIn, ss); err != nil {
			t.Fatal(err)
		}
	}
	fctx := core.NewContext("top3Happiest", 0, nil, nil, func(string, any) error { return nil })
	if err := tp.Final(fctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].State != "Texas" || got[1].State != "Utah" || got[2].State != "Ohio" {
		t.Errorf("top3: %+v", got)
	}
}

func TestTop3EmptyInstanceStaysSilent(t *testing.T) {
	called := false
	tp := newTop3(func([]StateScore) { called = true }).(*top3)
	ctx := core.NewContext("top3Happiest", 1, nil, nil, func(string, any) error { return nil })
	if err := tp.Final(ctx); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("instance without data must not report")
	}
}

func TestTop3TieBreaksByName(t *testing.T) {
	var got []StateScore
	tp := newTop3(func(s []StateScore) { got = s }).(*top3)
	ctx := core.NewContext("top3Happiest", 0, nil, nil, func(string, any) error { return nil })
	for _, st := range []string{"Utah", "Ohio", "Iowa"} {
		if err := tp.Process(ctx, core.PortIn, StateScore{State: st, Score: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.Final(ctx); err != nil {
		t.Fatal(err)
	}
	if got[0].State != "Iowa" || got[1].State != "Ohio" || got[2].State != "Utah" {
		t.Errorf("tie break: %+v", got)
	}
}

func TestScorersAgreeInSign(t *testing.T) {
	g := New(Config{Articles: 1})
	art := synth.Articles(1, 1)[0]
	var afinnScore, swn3Score float64
	actx := core.NewContext("sentimentAFINN", 0, nil, nil, func(port string, v any) error {
		afinnScore = v.(ScoredPayload).Score
		return nil
	})
	if err := g.Node("sentimentAFINN").Factory().Process(actx, core.PortIn, art); err != nil {
		t.Fatal(err)
	}
	var tokens TokensPayload
	tctx := core.NewContext("tokenizeWD", 0, nil, nil, func(port string, v any) error {
		tokens = v.(TokensPayload)
		return nil
	})
	if err := g.Node("tokenizeWD").Factory().Process(tctx, core.PortIn, art); err != nil {
		t.Fatal(err)
	}
	sctx := core.NewContext("sentimentSWN3", 0, nil, nil, func(port string, v any) error {
		swn3Score = v.(ScoredPayload).Score
		return nil
	})
	if err := g.Node("sentimentSWN3").Factory().Process(sctx, core.PortIn, tokens); err != nil {
		t.Fatal(err)
	}
	if tokens.State != art.State {
		t.Error("tokenizer lost the state")
	}
	if (afinnScore > 0) != (swn3Score > 0) && afinnScore != 0 && swn3Score != 0 {
		t.Errorf("lexicons disagree in sign: afinn=%v swn3=%v", afinnScore, swn3Score)
	}
}
